// Structural helpers: triu/tril/diag/pattern/symmetrize, including the
// paper's incidence-to-adjacency identity A = E^T E - diag(d) on the
// exact Fig. 1 example.

#include <vector>

#include <gtest/gtest.h>

#include "la/reduce.hpp"
#include "la/spgemm.hpp"
#include "la/structure.hpp"
#include "test_helpers.hpp"

namespace graphulo::la {
namespace {

using graphulo::testing::paper_example_adjacency;
using graphulo::testing::paper_example_incidence;
using graphulo::testing::random_sparse_int;
using graphulo::testing::random_undirected;

TEST(Structure, TriuKeepsStrictUpperByDefault) {
  auto a = SpMat<double>::from_dense(
      3, 3, std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8, 9});
  EXPECT_EQ(triu(a).to_dense(),
            (std::vector<double>{0, 2, 3, 0, 0, 6, 0, 0, 0}));
  EXPECT_EQ(triu(a, 0).to_dense(),
            (std::vector<double>{1, 2, 3, 0, 5, 6, 0, 0, 9}));
}

TEST(Structure, TrilMirrorsTriu) {
  auto a = random_sparse_int(10, 10, 0.4, 111);
  EXPECT_EQ(tril(a), transpose(triu(transpose(a))));
}

TEST(Structure, TriuPlusTrilPlusDiagReassembles) {
  auto a = random_sparse_int(12, 12, 0.4, 112);
  auto reassembled =
      add(add(triu(a), tril(a)), diag_matrix(diag_vector(a)));
  EXPECT_EQ(reassembled, a);
}

TEST(Structure, DiagVectorReadsMainDiagonal) {
  auto a = SpMat<double>::from_dense(
      2, 2, std::vector<double>{7, 1, 0, 9});
  EXPECT_EQ(diag_vector(a), (std::vector<double>{7, 9}));
  SpMat<double> rect(2, 3);
  EXPECT_THROW(diag_vector(rect), std::invalid_argument);
}

TEST(Structure, DiagMatrixSkipsZeros) {
  auto d = diag_matrix<double>({1.0, 0.0, 3.0});
  EXPECT_EQ(d.nnz(), 2);
  EXPECT_EQ(d.at(0, 0), 1.0);
  EXPECT_EQ(d.at(2, 2), 3.0);
}

TEST(Structure, RemoveDiagClearsSelfLoops) {
  auto a = SpMat<double>::from_dense(
      2, 2, std::vector<double>{5, 1, 2, 6});
  auto b = remove_diag(a);
  EXPECT_EQ(b.to_dense(), (std::vector<double>{0, 1, 2, 0}));
}

TEST(Structure, PatternSetsAllValuesToOne) {
  auto a = random_sparse_int(8, 8, 0.3, 113);
  auto p = pattern(a);
  EXPECT_EQ(p.nnz(), a.nnz());
  for (double v : p.values()) EXPECT_EQ(v, 1.0);
}

TEST(Structure, SymmetrizeProducesSymmetricMatrix) {
  auto a = random_sparse_int(15, 15, 0.2, 114);
  auto s = symmetrize(a);
  EXPECT_TRUE(is_symmetric(s));
  // Every original entry survives (possibly increased to the mirror max).
  for (const auto& t : a.to_triples()) {
    EXPECT_GE(s.at(t.row, t.col), t.val);
  }
}

TEST(Structure, IsSymmetricDetectsAsymmetry) {
  auto sym = random_undirected(10, 0.3, 115);
  EXPECT_TRUE(is_symmetric(sym));
  auto asym = SpMat<double>::from_triples(3, 3, {{0, 1, 1.0}});
  EXPECT_FALSE(is_symmetric(asym));
}

TEST(Structure, PaperIncidenceToAdjacencyIdentity) {
  // A = E^T E - diag(d), with d = sum(E) (column sums), Section III-B.
  const auto e = paper_example_incidence();
  const auto d = col_sums(e);
  EXPECT_EQ(d, (std::vector<double>{3, 3, 3, 2, 1}));  // printed in paper
  auto ete = spgemm<PlusTimes<double>>(transpose(e), e);
  auto a = subtract(ete, diag_matrix(d));
  EXPECT_EQ(a, paper_example_adjacency());
}

TEST(Structure, IncidenceIdentityHoldsOnRandomGraphs) {
  // Property: for any simple undirected graph, building the unoriented
  // incidence matrix and forming E^T E - diag(degrees) recovers A.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    auto a = random_undirected(20, 0.25, seed);
    // Build incidence from the upper triangle.
    std::vector<Triple<double>> inc;
    Index edge = 0;
    for (const auto& t : triu(a).to_triples()) {
      inc.push_back({edge, t.row, 1.0});
      inc.push_back({edge, t.col, 1.0});
      ++edge;
    }
    auto e = SpMat<double>::from_triples(edge, 20, std::move(inc));
    auto rebuilt = subtract(spgemm<PlusTimes<double>>(transpose(e), e),
                            diag_matrix(col_sums(e)));
    EXPECT_EQ(rebuilt, a) << "seed " << seed;
  }
}

}  // namespace
}  // namespace graphulo::la
