// Concurrency: writers, scanners, and compactions racing on the same
// tables. With a 1-core host these mostly exercise lock correctness and
// snapshot isolation of the scan path (scans must never see torn state,
// and nothing may deadlock).

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "assoc/table_io.hpp"
#include "core/tablemult.hpp"
#include "gen/rmat.hpp"
#include "nosql/nosql.hpp"
#include "util/strings.hpp"

namespace graphulo::nosql {
namespace {

TEST(Concurrency, ParallelWritersDisjointRows) {
  Instance db(2);
  TableConfig cfg;
  cfg.flush_entries = 64;  // force compactions mid-flight
  db.create_table("t", std::move(cfg));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&db, w] {
      for (int i = 0; i < kPerThread; ++i) {
        // Built up in steps: the one-expression concatenation trips
        // GCC 12's false-positive -Wrestrict (PR105329).
        std::string row = "w";
        row += std::to_string(w);
        row += '|';
        row += util::zero_pad(static_cast<std::uint64_t>(i), 4);
        Mutation m(std::move(row));
        m.put("f", "q", "v");
        db.apply("t", m);
      }
    });
  }
  for (auto& t : writers) t.join();
  Scanner scan(db, "t");
  EXPECT_EQ(scan.read_all().size(),
            static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(Concurrency, WritersAndScannersInterleave) {
  Instance db(2);
  TableConfig cfg;
  cfg.flush_entries = 32;
  db.create_table("t", std::move(cfg));
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> scan_errors{0};

  std::thread writer([&] {
    for (int i = 0; i < 2000 && !stop.load(); ++i) {
      Mutation m(util::zero_pad(static_cast<std::uint64_t>(i % 100), 3));
      m.put("f", util::zero_pad(static_cast<std::uint64_t>(i), 5), "v");
      db.apply("t", m);
    }
    stop.store(true);
  });
  std::thread scanner([&] {
    std::size_t last = 0;
    while (!stop.load()) {
      Scanner scan(db, "t");
      std::size_t count = 0;
      std::string prev;
      bool ordered = true;
      scan.for_each([&](const Key& k, const Value&) {
        const std::string current = k.row + '\x01' + k.qualifier;
        if (!prev.empty() && current < prev) ordered = false;
        prev = current;
        ++count;
      });
      // Each snapshot must be internally ordered, and counts must be
      // monotone non-decreasing across scans: the writer only adds
      // cells, and scan i+1 snapshots every tablet after scan i did.
      if (!ordered || count < last) scan_errors.fetch_add(1);
      last = std::max(last, count);
    }
  });
  writer.join();
  stop.store(true);
  scanner.join();
  EXPECT_EQ(scan_errors.load(), 0u);
  Scanner final_scan(db, "t");
  EXPECT_EQ(final_scan.read_all().size(), 2000u);
}

TEST(Concurrency, CompactionsRaceWithScans) {
  Instance db;
  TableConfig cfg;
  cfg.flush_entries = 16;
  cfg.compaction_fanin = 2;
  db.create_table("t", std::move(cfg));
  for (int i = 0; i < 300; ++i) {
    Mutation m(util::zero_pad(static_cast<std::uint64_t>(i), 4));
    m.put("f", "q", std::to_string(i));
    db.apply("t", m);
  }
  std::atomic<bool> stop{false};
  std::thread compactor([&] {
    while (!stop.load()) {
      db.flush("t");
      db.compact("t");
    }
  });
  for (int round = 0; round < 50; ++round) {
    Scanner scan(db, "t");
    EXPECT_EQ(scan.read_all().size(), 300u) << "round " << round;
  }
  stop.store(true);
  compactor.join();
}

TEST(Concurrency, TableMultEightWorkersRacingCompactions) {
  // The parallel TableMult pipeline under fire: 8 workers scanning two
  // tables and writing partial products through concurrent BatchWriters,
  // while another thread keeps flushing and major-compacting the result
  // table (folding partials through the majc-scope combiner mid-write).
  // The folded table must equal the serial 1-worker product exactly.
  gen::RmatParams p;
  p.scale = 7;
  p.edge_factor = 6;
  const auto a = gen::rmat_simple_adjacency(p);
  Instance db(4);
  assoc::write_matrix(db, "A", a);
  db.add_splits("A", {assoc::vertex_key(a.rows() / 4),
                      assoc::vertex_key(a.rows() / 2),
                      assoc::vertex_key(3 * a.rows() / 4)});

  core::create_sum_table(db, "C");
  std::atomic<bool> stop{false};
  std::thread compactor([&] {
    while (!stop.load()) {
      db.flush("C");
      db.compact("C");
    }
  });
  const auto stats =
      core::table_mult(db, "A", "A", "C", {.num_workers = 8});
  stop.store(true);
  compactor.join();
  db.compact("C");

  const auto serial = core::table_mult(
      db, "A", "A", "Cserial", {.compact_result = true, .num_workers = 1});
  EXPECT_EQ(stats.rows_joined, serial.rows_joined);
  EXPECT_EQ(stats.partial_products, serial.partial_products);
  EXPECT_EQ(assoc::read_matrix(db, "C", a.cols(), a.cols()),
            assoc::read_matrix(db, "Cserial", a.cols(), a.cols()));
}

TEST(Concurrency, BatchScannerParallelDelivery) {
  util::ThreadPool pool(4);
  Instance db(4);
  db.create_table("t");
  db.add_splits("t", {"250", "500", "750"});
  for (int i = 0; i < 1000; ++i) {
    Mutation m(util::zero_pad(static_cast<std::uint64_t>(i), 3));
    m.put("f", "q", "v");
    db.apply("t", m);
  }
  BatchScanner scan(db, "t", &pool);
  std::atomic<std::size_t> seen{0};
  scan.for_each([&seen](const Key&, const Value&) {
    seen.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(seen.load(), 1000u);
}

}  // namespace
}  // namespace graphulo::nosql
