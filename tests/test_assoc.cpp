// Associative arrays: key algebra (union-add, intersection-multiply,
// correlation), sub-referencing, schemas (adjacency, incidence, D4M).

#include <gtest/gtest.h>

#include "assoc/assoc_array.hpp"
#include "assoc/schemas.hpp"
#include "gen/tweets.hpp"
#include "la/reduce.hpp"

namespace graphulo::assoc {
namespace {

AssocArray small_array() {
  return AssocArray::from_entries({{"alice", "bob", 1.0},
                                   {"alice", "carol", 2.0},
                                   {"bob", "carol", 3.0}});
}

TEST(AssocArray, FromEntriesBuildsSortedDictionaries) {
  auto a = small_array();
  EXPECT_EQ(a.row_keys(), (std::vector<std::string>{"alice", "bob"}));
  EXPECT_EQ(a.col_keys(), (std::vector<std::string>{"bob", "carol"}));
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_EQ(a.at("alice", "carol"), 2.0);
  EXPECT_EQ(a.at("bob", "bob"), 0.0);
  EXPECT_EQ(a.at("nobody", "bob"), 0.0);
}

TEST(AssocArray, DuplicateEntriesCombine) {
  auto a = AssocArray::from_entries({{"r", "c", 1.0}, {"r", "c", 2.5}});
  EXPECT_EQ(a.at("r", "c"), 3.5);
  auto mx = AssocArray::from_entries(
      {{"r", "c", 1.0}, {"r", "c", 2.5}},
      [](double x, double y) { return std::max(x, y); });
  EXPECT_EQ(mx.at("r", "c"), 2.5);
}

TEST(AssocArray, FromMatrixValidates) {
  auto m = la::SpMat<double>::from_triples(2, 1, {{0, 0, 1.0}});
  EXPECT_NO_THROW(AssocArray::from_matrix({"a", "b"}, {"x"}, m));
  EXPECT_THROW(AssocArray::from_matrix({"a"}, {"x"}, m), std::invalid_argument);
  EXPECT_THROW(AssocArray::from_matrix({"b", "a"}, {"x"}, m),
               std::invalid_argument);
  EXPECT_THROW(AssocArray::from_matrix({"a", "a"}, {"x"}, m),
               std::invalid_argument);
}

TEST(AssocArray, EntriesRoundTrip) {
  auto a = small_array();
  auto rebuilt = AssocArray::from_entries(a.entries());
  EXPECT_EQ(a, rebuilt);
}

TEST(AssocArray, AddUnionsKeys) {
  // Section II-A: summing arrays with disjoint keys unions their
  // supports.
  auto a = AssocArray::from_entries({{"r1", "c1", 1.0}});
  auto b = AssocArray::from_entries({{"r2", "c2", 2.0}});
  auto c = a.add(b);
  EXPECT_EQ(c.nnz(), 2);
  EXPECT_EQ(c.at("r1", "c1"), 1.0);
  EXPECT_EQ(c.at("r2", "c2"), 2.0);
  // Overlapping keys sum.
  auto d = a.add(AssocArray::from_entries({{"r1", "c1", 5.0}}));
  EXPECT_EQ(d.at("r1", "c1"), 6.0);
}

TEST(AssocArray, EwiseMultIntersectsKeys) {
  auto a = AssocArray::from_entries({{"r", "c1", 2.0}, {"r", "c2", 3.0}});
  auto b = AssocArray::from_entries({{"r", "c2", 4.0}, {"r", "c3", 5.0}});
  auto c = a.ewise_mult(b);
  EXPECT_EQ(c.nnz(), 1);
  EXPECT_EQ(c.at("r", "c2"), 12.0);
  // Completely disjoint -> empty.
  auto empty = a.ewise_mult(AssocArray::from_entries({{"z", "z", 1.0}}));
  EXPECT_TRUE(empty.empty());
}

TEST(AssocArray, MultiplyCorrelatesOnMatchingKeys) {
  // docs x terms  times  terms x topics: only shared term keys correlate.
  auto docs = AssocArray::from_entries(
      {{"d1", "apple", 1.0}, {"d1", "pear", 1.0}, {"d2", "apple", 2.0}});
  auto topics = AssocArray::from_entries(
      {{"apple", "fruit", 1.0}, {"pear", "fruit", 1.0}, {"car", "vehicle", 1.0}});
  auto c = docs.multiply(topics);
  EXPECT_EQ(c.at("d1", "fruit"), 2.0);
  EXPECT_EQ(c.at("d2", "fruit"), 2.0);
  EXPECT_EQ(c.col_keys(), (std::vector<std::string>{"fruit"}));  // condensed
}

TEST(AssocArray, MultiplyWithNoSharedKeysIsEmpty) {
  auto a = AssocArray::from_entries({{"r", "x", 1.0}});
  auto b = AssocArray::from_entries({{"y", "c", 1.0}});
  EXPECT_TRUE(a.multiply(b).empty());
}

TEST(AssocArray, TransposeSwapsKeys) {
  auto a = small_array();
  auto t = a.transposed();
  EXPECT_EQ(t.row_keys(), a.col_keys());
  EXPECT_EQ(t.at("carol", "alice"), 2.0);
  EXPECT_EQ(t.transposed(), a);
}

TEST(AssocArray, ApplyAndScale) {
  auto a = small_array();
  auto doubled = a.scale(2.0);
  EXPECT_EQ(doubled.at("bob", "carol"), 6.0);
  auto indicator = a.apply([](double v) { return v >= 2.0 ? 1.0 : 0.0; });
  EXPECT_EQ(indicator.nnz(), 2);
  EXPECT_EQ(indicator.at("alice", "bob"), 0.0);
  // Dictionaries condense after the zero-drop: "alice"/"bob" rows remain
  // because both still hold entries, but scaling by 0 empties everything.
  EXPECT_TRUE(a.scale(0.0).empty());
  EXPECT_TRUE(a.scale(0.0).row_keys().empty());
}

TEST(AssocArray, SelectRowsAndCols) {
  auto a = small_array();
  auto rows = a.select_rows({"alice", "nobody"});
  EXPECT_EQ(rows.row_keys(), (std::vector<std::string>{"alice"}));
  EXPECT_EQ(rows.nnz(), 2);
  auto cols = a.select_cols({"carol"});
  EXPECT_EQ(cols.nnz(), 2);
  EXPECT_EQ(cols.at("bob", "carol"), 3.0);
}

TEST(AssocArray, SelectRowRangeAndPrefix) {
  auto a = AssocArray::from_entries({{"user|ann", "x", 1.0},
                                     {"user|bob", "x", 2.0},
                                     {"item|1", "x", 3.0}});
  auto users = a.select_row_prefix("user|");
  EXPECT_EQ(users.nnz(), 2);
  auto range = a.select_row_range("item|0", "item|9");
  EXPECT_EQ(range.nnz(), 1);
  EXPECT_EQ(range.at("item|1", "x"), 3.0);
}

TEST(AssocArray, RowAndColSums) {
  auto a = small_array();
  const auto rs = a.row_sums();
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs[0], (std::pair<std::string, double>{"alice", 3.0}));
  EXPECT_EQ(rs[1], (std::pair<std::string, double>{"bob", 3.0}));
  const auto cs = a.col_sums();
  EXPECT_EQ(cs[0], (std::pair<std::string, double>{"bob", 1.0}));
  EXPECT_EQ(cs[1], (std::pair<std::string, double>{"carol", 5.0}));
}

TEST(AssocArray, ToStringListsEntries) {
  const auto s = small_array().to_string();
  EXPECT_NE(s.find("(alice, bob) = 1"), std::string::npos);
  EXPECT_NE(s.find("2x2"), std::string::npos);
}

TEST(Schemas, AdjacencyDirectedAndUndirected) {
  const std::vector<LabeledEdge> edges = {{"a", "b", 1.0}, {"b", "c", 2.0}};
  auto directed = adjacency_schema(edges, false);
  EXPECT_EQ(directed.at("a", "b"), 1.0);
  EXPECT_EQ(directed.at("b", "a"), 0.0);
  auto undirected = adjacency_schema(edges, true);
  EXPECT_EQ(undirected.at("b", "a"), 1.0);
  EXPECT_EQ(undirected.at("c", "b"), 2.0);
}

TEST(Schemas, AdjacencyAccumulatesMultiEdges) {
  auto a = adjacency_schema({{"a", "b", 1.0}, {"a", "b", 1.0}}, false);
  EXPECT_EQ(a.at("a", "b"), 2.0);  // A(i,j) = # edges, per Section II-B-1
}

TEST(Schemas, UnorientedIncidenceMatchesKTrussForm) {
  const std::vector<LabeledEdge> edges = {{"v1", "v2"}, {"v2", "v3"}};
  auto e = incidence_schema(edges, false);
  EXPECT_EQ(e.row_count(), 2u);
  EXPECT_EQ(e.at("e|000000", "v1"), 1.0);
  EXPECT_EQ(e.at("e|000000", "v2"), 1.0);
  EXPECT_EQ(e.at("e|000001", "v3"), 1.0);
}

TEST(Schemas, OrientedIncidenceSignsDirection) {
  auto e = incidence_schema({{"src", "dst", 2.0}}, true);
  EXPECT_EQ(e.at("e|000000", "dst"), 2.0);   // +|e| into v_j
  EXPECT_EQ(e.at("e|000000", "src"), -2.0);  // -|e| leaving v_j
}

TEST(Schemas, IncidenceSelfLoopSingleEntry) {
  auto e = incidence_schema({{"v", "v", 1.0}}, false);
  EXPECT_EQ(e.nnz(), 1);
}

TEST(Schemas, D4MExplodeBuildsFourTables) {
  const std::vector<std::pair<std::string, Record>> records = {
      {"rec1", {{"color", "red"}, {"size", "big"}}},
      {"rec2", {{"color", "red"}, {"size", "small"}}},
  };
  auto d4m = d4m_explode(records);
  // Tedge: record x "field|value".
  EXPECT_EQ(d4m.tedge.at("rec1", "color|red"), 1.0);
  EXPECT_EQ(d4m.tedge.at("rec2", "size|small"), 1.0);
  EXPECT_EQ(d4m.tedge.at("rec1", "size|small"), 0.0);
  // TedgeT is the transpose.
  EXPECT_EQ(d4m.tedge_t.at("color|red", "rec1"), 1.0);
  // Tdeg counts records per exploded column.
  EXPECT_EQ(d4m.tdeg.at("color|red", "deg"), 2.0);
  EXPECT_EQ(d4m.tdeg.at("size|big", "deg"), 1.0);
  // Traw keeps the raw field text.
  bool found = false;
  for (const auto& [key, text] : d4m.raw_values) {
    if (key.first == "rec1" && key.second == "color") {
      EXPECT_EQ(text, "red");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Schemas, D4MCorrelationViaMultiply) {
  // Section II-B-3: multiplying exploded arrays correlates records.
  const std::vector<std::pair<std::string, Record>> records = {
      {"rec1", {{"color", "red"}}},
      {"rec2", {{"color", "red"}}},
      {"rec3", {{"color", "blue"}}},
  };
  auto d4m = d4m_explode(records);
  auto corr = d4m.tedge.multiply(d4m.tedge_t);
  EXPECT_EQ(corr.at("rec1", "rec2"), 1.0);  // share color|red
  EXPECT_EQ(corr.at("rec1", "rec3"), 0.0);
}

TEST(Schemas, TweetsIncidenceCountsTerms) {
  gen::TweetParams params;
  params.num_tweets = 30;
  const auto corpus = gen::generate_tweets(params);
  auto inc = tweets_to_incidence(corpus);
  EXPECT_EQ(inc.row_count(), 30u);
  // Every column is word|-prefixed and every value a positive count.
  for (const auto& key : inc.col_keys()) {
    EXPECT_EQ(key.rfind("word|", 0), 0u);
  }
  for (const auto& e : inc.entries()) EXPECT_GE(e.val, 1.0);
  // Row sums equal tweet lengths.
  const auto sums = inc.row_sums();
  for (std::size_t i = 0; i < corpus.tweets.size(); ++i) {
    EXPECT_EQ(sums[i].second, static_cast<double>(corpus.tweets[i].words.size()));
  }
}

TEST(KeyHelpers, UnionAndIntersection) {
  const std::vector<std::string> a = {"a", "c", "e"};
  const std::vector<std::string> b = {"b", "c", "e", "f"};
  EXPECT_EQ(key_union(a, b), (std::vector<std::string>{"a", "b", "c", "e", "f"}));
  EXPECT_EQ(key_intersection(a, b), (std::vector<std::string>{"c", "e"}));
  EXPECT_TRUE(key_intersection(a, {}).empty());
}

}  // namespace
}  // namespace graphulo::assoc
