// Kronecker product kernel.

#include <vector>

#include <gtest/gtest.h>

#include "la/kron.hpp"
#include "test_helpers.hpp"

namespace graphulo::la {
namespace {

using graphulo::testing::random_sparse_int;

TEST(Kron, KnownSmallProduct) {
  auto a = SpMat<double>::from_dense(2, 2, std::vector<double>{1, 2, 3, 4});
  auto b = SpMat<double>::from_dense(2, 2, std::vector<double>{0, 5, 6, 7});
  auto c = kron(a, b);
  EXPECT_EQ(c.rows(), 4);
  EXPECT_EQ(c.cols(), 4);
  EXPECT_EQ(c.to_dense(), (std::vector<double>{
      0, 5, 0, 10,
      6, 7, 12, 14,
      0, 15, 0, 20,
      18, 21, 24, 28}));
}

TEST(Kron, NnzIsProductOfNnz) {
  auto a = random_sparse_int(5, 4, 0.4, 131);
  auto b = random_sparse_int(3, 6, 0.4, 132);
  auto c = kron(a, b);
  EXPECT_EQ(c.nnz(), a.nnz() * b.nnz());
  c.check_invariants();
}

TEST(Kron, IdentityKronIdentityIsIdentity) {
  EXPECT_EQ(kron(identity<double>(3), identity<double>(4)),
            identity<double>(12));
}

TEST(Kron, MatchesDenseDefinition) {
  auto a = random_sparse_int(3, 4, 0.5, 133);
  auto b = random_sparse_int(2, 5, 0.5, 134);
  auto c = kron(a, b);
  const auto ad = a.to_dense();
  const auto bd = b.to_dense();
  for (Index ia = 0; ia < 3; ++ia) {
    for (Index ja = 0; ja < 4; ++ja) {
      for (Index ib = 0; ib < 2; ++ib) {
        for (Index jb = 0; jb < 5; ++jb) {
          EXPECT_EQ(c.at(ia * 2 + ib, ja * 5 + jb),
                    ad[static_cast<std::size_t>(ia) * 4 + ja] *
                        bd[static_cast<std::size_t>(ib) * 5 + jb]);
        }
      }
    }
  }
}

TEST(Kron, CustomMulOperator) {
  auto a = SpMat<double>::from_dense(1, 2, std::vector<double>{2, 3});
  auto b = SpMat<double>::from_dense(1, 2, std::vector<double>{4, 5});
  auto c = kron(a, b, [](double x, double y) { return std::min(x, y); });
  EXPECT_EQ(c.to_dense(), (std::vector<double>{2, 2, 3, 3}));
}

}  // namespace
}  // namespace graphulo::la
