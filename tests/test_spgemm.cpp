// SpGEMM correctness: checked against a dense reference over a parameter
// grid of shapes, densities, semirings, and SPA strategies.

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "la/apply.hpp"
#include "la/ewise.hpp"
#include "la/spgemm.hpp"
#include "la/spmat.hpp"
#include "test_helpers.hpp"

namespace graphulo::la {
namespace {

using graphulo::testing::dense_gemm_ref;
using graphulo::testing::random_sparse_int;

TEST(SpGemm, TinyKnownProduct) {
  // [1 2; 0 3] * [0 1; 4 0] = [8 1; 12 0]
  auto a = SpMat<double>::from_dense(2, 2, std::vector<double>{1, 2, 0, 3});
  auto b = SpMat<double>::from_dense(2, 2, std::vector<double>{0, 1, 4, 0});
  auto c = spgemm<PlusTimes<double>>(a, b);
  EXPECT_EQ(c.to_dense(), (std::vector<double>{8, 1, 12, 0}));
}

TEST(SpGemm, InnerDimensionMismatchThrows) {
  SpMat<double> a(2, 3), b(4, 2);
  EXPECT_THROW(spgemm<PlusTimes<double>>(a, b), std::invalid_argument);
}

TEST(SpGemm, EmptyOperandsYieldEmptyResult) {
  SpMat<double> a(4, 3), b(3, 5);
  auto c = spgemm<PlusTimes<double>>(a, b);
  EXPECT_EQ(c.rows(), 4);
  EXPECT_EQ(c.cols(), 5);
  EXPECT_EQ(c.nnz(), 0);
}

TEST(SpGemm, IdentityIsNeutral) {
  auto a = random_sparse_int(9, 9, 0.3, 17);
  auto eye = identity<double>(9);
  EXPECT_EQ(spgemm<PlusTimes<double>>(a, eye), a);
  EXPECT_EQ(spgemm<PlusTimes<double>>(eye, a), a);
}

TEST(SpGemm, CancellationDropsEntries) {
  // Row [1, -1] times column [1; 1] -> exact zero must not be stored.
  auto a = SpMat<double>::from_dense(1, 2, std::vector<double>{1, -1});
  auto b = SpMat<double>::from_dense(2, 1, std::vector<double>{1, 1});
  auto c = spgemm<PlusTimes<double>>(a, b);
  EXPECT_EQ(c.nnz(), 0);
}

TEST(SpGemm, MinPlusComputesShortestTwoHopPaths) {
  // Path graph 0-1-2 with weights 2 and 3; A^2 over min-plus gives the
  // 2-hop distance 0->2 = 5.
  auto a = SpMat<double>::from_triples(3, 3, {{0, 1, 2.0}, {1, 2, 3.0}});
  auto a2 = spgemm<MinPlus<double>>(a, a);
  EXPECT_EQ(a2.at(0, 2, MinPlus<double>::zero()), 5.0);
  EXPECT_EQ(a2.nnz(), 1);
}

TEST(SpGemm, DenseAndHashSpaAgree) {
  auto a = random_sparse_int(40, 60, 0.15, 3);
  auto b = random_sparse_int(60, 50, 0.15, 4);
  auto dense_spa = spgemm<PlusTimes<double>>(a, b, SpaKind::kDense);
  auto hash_spa = spgemm<PlusTimes<double>>(a, b, SpaKind::kHash);
  EXPECT_EQ(dense_spa, hash_spa);
}

TEST(SpGemm, ParallelAgreesWithSerial) {
  auto a = random_sparse_int(300, 200, 0.05, 5);
  auto b = random_sparse_int(200, 250, 0.05, 6);
  auto serial = spgemm<PlusTimes<double>>(a, b, SpaKind::kAuto,
                                          {.grain = 1 << 30});
  auto parallel = spgemm<PlusTimes<double>>(a, b, SpaKind::kAuto, {.grain = 16});
  EXPECT_EQ(serial, parallel);
}

TEST(SpGemmMasked, ComputesOnlyMaskedEntries) {
  auto a = random_sparse_int(12, 10, 0.4, 61);
  auto b = random_sparse_int(10, 11, 0.4, 62);
  auto mask = random_sparse_int(12, 11, 0.3, 63);
  const auto full = spgemm<PlusTimes<double>>(a, b);
  const auto masked = spgemm_masked<PlusTimes<double>>(a, b, mask);
  // Every masked entry equals the full product; nothing outside the
  // mask is stored.
  for (const auto& t : masked.to_triples()) {
    EXPECT_NE(mask.at(t.row, t.col), 0.0);
    EXPECT_EQ(t.val, full.at(t.row, t.col));
  }
  for (const auto& t : full.to_triples()) {
    if (mask.at(t.row, t.col) != 0.0) {
      EXPECT_EQ(masked.at(t.row, t.col), t.val);
    }
  }
}

TEST(SpGemmMasked, EmptyMaskYieldsEmptyResult) {
  auto a = random_sparse_int(6, 6, 0.5, 64);
  SpMat<double> empty_mask(6, 6);
  EXPECT_EQ(spgemm_masked<PlusTimes<double>>(a, a, empty_mask).nnz(), 0);
}

TEST(SpGemmMasked, ShapeValidation) {
  SpMat<double> a(3, 4), b(4, 5), bad_mask(3, 4);
  EXPECT_THROW(spgemm_masked<PlusTimes<double>>(a, b, bad_mask),
               std::invalid_argument);
  SpMat<double> bad_b(5, 5);
  SpMat<double> mask(3, 5);
  EXPECT_THROW(spgemm_masked<PlusTimes<double>>(a, bad_b, mask),
               std::invalid_argument);
}

TEST(SpGemmMasked, KTrussSupportUseCase) {
  // Edge supports = (A*A) masked by A — the pattern the k-truss and
  // Jaccard table algorithms want.
  auto a = graphulo::testing::random_undirected(20, 0.3, 65);
  const auto masked = spgemm_masked<PlusTimes<double>>(a, a, a);
  const auto reference = hadamard(
      spgemm<PlusTimes<double>>(a, a),
      apply(a, [](double) { return 1.0; }));
  // Same pattern restricted to edges, same counts.
  for (const auto& t : reference.to_triples()) {
    EXPECT_EQ(masked.at(t.row, t.col), t.val);
  }
  EXPECT_EQ(masked.nnz(), reference.nnz());
}

TEST(SpGemmMasked, ComplementKeepsExactlyTheUnmaskedEntries) {
  auto a = random_sparse_int(12, 10, 0.4, 66);
  auto b = random_sparse_int(10, 11, 0.4, 67);
  auto mask = random_sparse_int(12, 11, 0.3, 68);
  const auto full = spgemm<PlusTimes<double>>(a, b);
  const auto kept = spgemm_masked<PlusTimes<double>>(a, b, mask, false);
  const auto dropped = spgemm_masked<PlusTimes<double>>(a, b, mask, true);
  // C<M> and C<!M> partition the full product: disjoint supports whose
  // union (with values) reproduces it.
  for (const auto& t : dropped.to_triples()) {
    EXPECT_EQ(mask.at(t.row, t.col), 0.0);
    EXPECT_EQ(t.val, full.at(t.row, t.col));
  }
  EXPECT_EQ(kept.nnz() + dropped.nnz(), full.nnz());
  for (const auto& t : full.to_triples()) {
    const bool in_mask = mask.at(t.row, t.col) != 0.0;
    EXPECT_EQ((in_mask ? kept : dropped).at(t.row, t.col), t.val);
  }
}

TEST(SpGemmMasked, ComplementFalseMatchesPlainMaskedOverload) {
  auto a = random_sparse_int(9, 9, 0.4, 69);
  auto mask = random_sparse_int(9, 9, 0.3, 70);
  EXPECT_EQ(spgemm_masked<PlusTimes<double>>(a, a, mask, false),
            spgemm_masked<PlusTimes<double>>(a, a, mask));
}

TEST(SpGemmMasked, ComplementOfEmptyMaskIsFullProduct) {
  auto a = random_sparse_int(7, 7, 0.5, 71);
  SpMat<double> empty_mask(7, 7);
  EXPECT_EQ(spgemm_masked<PlusTimes<double>>(a, a, empty_mask, true),
            spgemm<PlusTimes<double>>(a, a));
}

TEST(SpGemmMasked, ComplementShapeValidation) {
  SpMat<double> a(3, 4), b(4, 5), bad_mask(3, 4);
  EXPECT_THROW(spgemm_masked<PlusTimes<double>>(a, b, bad_mask, true),
               std::invalid_argument);
}

struct SpGemmCase {
  int m, k, n;
  double density;
  SpaKind spa;
};

class SpGemmVsDense : public ::testing::TestWithParam<SpGemmCase> {};

TEST_P(SpGemmVsDense, MatchesDenseReferencePlusTimes) {
  const auto p = GetParam();
  auto a = random_sparse_int(p.m, p.k, p.density, 11);
  auto b = random_sparse_int(p.k, p.n, p.density, 13);
  auto c = spgemm<PlusTimes<double>>(a, b, p.spa);
  c.check_invariants();
  const auto ref = dense_gemm_ref<PlusTimes<double>>(a.to_dense(), p.m, p.k,
                                                     b.to_dense(), p.n);
  EXPECT_EQ(c.to_dense(), ref);
}

TEST_P(SpGemmVsDense, MatchesDenseReferenceOrAndViaDoubles) {
  // Use PlusAnd-then-indicator to emulate boolean structure products on
  // double storage, checked against an explicit reference.
  const auto p = GetParam();
  auto a = random_sparse_int(p.m, p.k, p.density, 21, 1);
  auto b = random_sparse_int(p.k, p.n, p.density, 23, 1);
  auto c = spgemm<PlusAnd<double>>(a, b, p.spa);
  const auto ad = a.to_dense();
  const auto bd = b.to_dense();
  for (Index i = 0; i < p.m; ++i) {
    for (Index j = 0; j < p.n; ++j) {
      double count = 0;
      for (Index t = 0; t < p.k; ++t) {
        if (ad[static_cast<std::size_t>(i) * p.k + t] != 0 &&
            bd[static_cast<std::size_t>(t) * p.n + j] != 0) {
          count += 1;
        }
      }
      EXPECT_EQ(c.at(i, j), count) << "(" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SpGemmVsDense,
    ::testing::Values(SpGemmCase{1, 1, 1, 1.0, SpaKind::kAuto},
                      SpGemmCase{8, 8, 8, 0.5, SpaKind::kDense},
                      SpGemmCase{8, 8, 8, 0.5, SpaKind::kHash},
                      SpGemmCase{20, 30, 10, 0.2, SpaKind::kDense},
                      SpGemmCase{20, 30, 10, 0.2, SpaKind::kHash},
                      SpGemmCase{50, 40, 60, 0.05, SpaKind::kAuto},
                      SpGemmCase{33, 1, 33, 0.6, SpaKind::kAuto},
                      SpGemmCase{1, 50, 1, 0.3, SpaKind::kHash},
                      SpGemmCase{64, 64, 64, 0.1, SpaKind::kAuto}));

}  // namespace
}  // namespace graphulo::la
