// Property test for the block scan protocol: for any iterator stack,
// reading through next_block() must produce byte-identical output to
// the cell-at-a-time top/next loop — including across re-seeks and for
// stacks that filter, version, delete-suppress, or combine. Stacks and
// data are randomized; block sizes span 1..4096.

#include <algorithm>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/table_scan.hpp"
#include "nosql/block_cache.hpp"
#include "nosql/block_codec.hpp"
#include "nosql/codec.hpp"
#include "nosql/combiner.hpp"
#include "nosql/filter_iterators.hpp"
#include "nosql/merge_iterator.hpp"
#include "nosql/nosql.hpp"
#include "nosql/rfile.hpp"
#include "util/strings.hpp"

namespace graphulo::nosql {
namespace {

/// Drains an iterator cell-at-a-time (the reference semantics).
std::vector<Cell> drain_cellwise(SortedKVIterator& it) {
  std::vector<Cell> out;
  while (it.has_top()) {
    out.push_back({it.top_key(), it.top_value()});
    it.next();
  }
  return out;
}

/// Drains an iterator through next_block() with a (possibly varying)
/// block size schedule.
std::vector<Cell> drain_blockwise(SortedKVIterator& it, std::mt19937& rng) {
  std::vector<Cell> out;
  CellBlock block;
  while (it.has_top()) {
    block.clear();
    const std::size_t max = 1 + rng() % 4096;
    const std::size_t n = it.next_block(block, max);
    EXPECT_GE(n, 1u) << "has_top() promised a cell but next_block gave none";
    EXPECT_EQ(n, block.size());
    out.insert(out.end(), block.begin(), block.end());
  }
  // Exhausted iterators must keep returning 0 and append nothing.
  block.clear();
  EXPECT_EQ(it.next_block(block, 64), 0u);
  EXPECT_TRUE(block.empty());
  return out;
}

void expect_identical(const std::vector<Cell>& a, const std::vector<Cell>& b,
                      const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key) << what << " cell " << i;
    EXPECT_EQ(a[i].value, b[i].value) << what << " cell " << i;
  }
}

/// Random sorted cell set: duplicate keys at multiple timestamps, some
/// deletes, a few column families/qualifiers.
std::vector<Cell> random_cells(std::mt19937& rng, std::size_t rows) {
  std::map<Key, Value> cells;  // Key ordering dedupes identical keys
  const std::size_t n = rows * (1 + rng() % 4);
  for (std::size_t i = 0; i < n; ++i) {
    Cell c;
    c.key.row = util::zero_pad(rng() % rows, 4);
    c.key.family = (rng() % 2) ? "fa" : "fb";
    c.key.qualifier = "q" + std::to_string(rng() % 3);
    c.key.ts = static_cast<std::int64_t>(rng() % 8);
    c.key.deleted = (rng() % 10 == 0);
    c.value = c.key.deleted ? "" : encode_double(double(rng() % 100));
    cells[c.key] = c.value;
  }
  std::vector<Cell> out;
  out.reserve(cells.size());
  for (auto& [k, v] : cells) out.push_back({k, v});
  return out;
}

/// Builds a randomized stack over 1..4 sorted runs: merge, then a random
/// subset of {deleting, versioning, column filter, summing combiner}.
IterPtr random_stack(std::mt19937& rng, const std::vector<Cell>& cells,
                     std::uint32_t shape) {
  const std::size_t ways = 1 + rng() % 4;
  std::vector<std::vector<Cell>> runs(ways);
  for (const auto& c : cells) runs[rng() % ways].push_back(c);
  std::vector<IterPtr> children;
  for (auto& run : runs) {
    children.push_back(
        std::make_unique<VectorIterator>(std::make_shared<std::vector<Cell>>(
            std::move(run))));
  }
  IterPtr it = std::make_unique<MergeIterator>(std::move(children));
  if (shape & 1) it = std::make_unique<DeletingIterator>(std::move(it));
  if (shape & 2) {
    it = std::make_unique<VersioningIterator>(std::move(it), 1 + rng() % 3);
  }
  if (shape & 4) {
    it = std::make_unique<FilterIterator>(
        std::move(it),
        [](const Key& k, const Value&) { return k.family == "fa"; });
  }
  if (shape & 8) {
    it = std::make_unique<CombinerIterator>(std::move(it),
                                            sum_double_reducer());
  }
  return it;
}

TEST(BlockScan, MatchesCellAtATimeAcrossRandomStacks) {
  std::mt19937 rng(20260806);
  for (int trial = 0; trial < 48; ++trial) {
    const auto cells = random_cells(rng, 40 + rng() % 120);
    // Same shape + same seed stream for both drains: clone the rng so
    // the stacks (and their random parameters) are identical.
    const std::uint32_t shape = rng() % 16;
    std::mt19937 stack_rng = rng;
    auto ref_it = random_stack(stack_rng, cells, shape);
    stack_rng = rng;
    auto blk_it = random_stack(stack_rng, cells, shape);
    rng = stack_rng;  // advance the outer stream once

    ref_it->seek(Range::all());
    blk_it->seek(Range::all());
    const auto ref = drain_cellwise(*ref_it);
    const auto blk = drain_blockwise(*blk_it, rng);
    expect_identical(ref, blk, "trial " + std::to_string(trial) + " shape " +
                                   std::to_string(shape));
  }
}

TEST(BlockScan, MatchesCellAtATimeAcrossRandomSeeks) {
  std::mt19937 rng(987654);
  for (int trial = 0; trial < 24; ++trial) {
    const auto cells = random_cells(rng, 80);
    const std::uint32_t shape = rng() % 16;
    std::mt19937 stack_rng = rng;
    auto ref_it = random_stack(stack_rng, cells, shape);
    stack_rng = rng;
    auto blk_it = random_stack(stack_rng, cells, shape);
    rng = stack_rng;

    // Random seek/re-seek sequence: each seek targets a random row
    // range; after each, both reads must agree. Interleave partial
    // block reads with partial cell reads before re-seeking to stress
    // mixed-mode state.
    for (int s = 0; s < 6; ++s) {
      const auto lo = util::zero_pad(rng() % 80, 4);
      const auto hi = util::zero_pad(rng() % 80, 4);
      const Range r = (s % 3 == 0) ? Range::exact_row(lo)
                      : (lo <= hi) ? Range::row_range(lo, hi)
                                   : Range::row_range(hi, lo);
      ref_it->seek(r);
      blk_it->seek(r);

      // Partial mixed-mode read: a few cells one way, a block the
      // other, then compare the remainder of both streams.
      std::vector<Cell> ref, blk;
      for (int i = 0; i < 3 && ref_it->has_top(); ++i) {
        ref.push_back({ref_it->top_key(), ref_it->top_value()});
        ref_it->next();
      }
      {
        CellBlock b;
        blk_it->next_block(b, 3);
        blk.insert(blk.end(), b.begin(), b.end());
      }
      auto rest_ref = drain_blockwise(*ref_it, rng);  // swap modes too
      auto rest_blk = drain_cellwise(*blk_it);
      ref.insert(ref.end(), rest_ref.begin(), rest_ref.end());
      blk.insert(blk.end(), rest_blk.begin(), rest_blk.end());
      expect_identical(ref, blk, "trial " + std::to_string(trial) + " seek " +
                                     std::to_string(s));
    }
  }
}

TEST(BlockScan, RowReaderBlockSizesAgree) {
  // RowReader must produce the same row stream at any block size,
  // including size 1 (degenerates to the old cell path).
  std::mt19937 rng(4242);
  auto cells = random_cells(rng, 60);
  // Strip deletes/dup timestamps: feed a clean sorted run.
  auto data = std::make_shared<std::vector<Cell>>();
  for (auto& c : cells) {
    if (!c.key.deleted) data->push_back(c);
  }
  auto rows_at = [&](std::size_t bs) {
    auto it = std::make_unique<VectorIterator>(data);
    it->seek(Range::all());
    core::RowReader reader(std::move(it), Range::all(), bs);
    std::vector<core::RowBlock> out;
    while (reader.has_next()) out.push_back(reader.next_row());
    return out;
  };
  const auto ref = rows_at(1);
  for (const std::size_t bs : {2u, 7u, 64u, 1024u, 4096u}) {
    const auto got = rows_at(bs);
    ASSERT_EQ(got.size(), ref.size()) << "block size " << bs;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i].row, ref[i].row);
      ASSERT_EQ(got[i].cells.size(), ref[i].cells.size());
      for (std::size_t j = 0; j < ref[i].cells.size(); ++j) {
        EXPECT_EQ(got[i].cells[j].key, ref[i].cells[j].key);
        EXPECT_EQ(got[i].cells[j].value, ref[i].cells[j].value);
      }
    }
  }
}

TEST(BlockScan, ScannerBatchSizesAgreeOnLiveTable) {
  // End to end through Instance/Scanner: a table with deletes, a
  // versioning config, and attached combiner must read identically at
  // batch sizes 1 (legacy path) and 1024 (block path).
  auto run = [](std::size_t batch) {
    Instance db;
    db.create_table("t");
    db.table_config("t").max_versions = 2;
    BatchWriter writer(db, "t");
    std::mt19937 rng(777);
    for (int i = 0; i < 400; ++i) {
      Mutation m(util::zero_pad(rng() % 120, 4));
      if (rng() % 12 == 0) {
        m.put_delete("f", "q" + std::to_string(rng() % 3));
      } else {
        m.put("f", "q" + std::to_string(rng() % 3),
              encode_double(double(rng() % 50)));
      }
      writer.add_mutation(std::move(m));
      if (i % 97 == 0) {
        writer.flush();
        db.flush("t");  // force multi-rfile tablets mid-stream
      }
    }
    writer.flush();
    Scanner sc(db, "t");
    sc.set_batch_size(batch);
    std::vector<Cell> out;
    sc.for_each([&](const Key& k, const Value& v) { out.push_back({k, v}); });
    return out;
  };
  const auto a = run(1);
  const auto b = run(1024);
  expect_identical(a, b, "scanner batch 1 vs 1024");
  EXPECT_FALSE(a.empty());
}

// ---- prefix-encoded RFile blocks (RFL3) property tests -------------------

/// The codec round-trips byte-identically at any restart interval.
TEST(EncodedBlocks, CodecRoundTripAcrossRestartIntervals) {
  std::mt19937 rng(31337);
  for (int trial = 0; trial < 20; ++trial) {
    const auto cells = random_cells(rng, 20 + rng() % 200);
    for (const std::size_t interval : {1u, 2u, 3u, 7u, 16u, 64u, 4096u}) {
      const std::string raw =
          blockcodec::encode_block(cells.data(), cells.size(), interval);
      std::vector<Cell> decoded;
      ASSERT_TRUE(blockcodec::decode_block(raw, cells.size(), decoded))
          << "interval " << interval;
      expect_identical(cells, decoded,
                       "codec interval " + std::to_string(interval));
      // Decoding into a dirty reused buffer must give the same result.
      ASSERT_TRUE(blockcodec::decode_block(raw, cells.size(), decoded));
      expect_identical(cells, decoded, "codec reuse");
    }
  }
}

/// block_lower_bound agrees with std::lower_bound for present, absent,
/// before-first and after-last probe keys.
TEST(EncodedBlocks, LowerBoundMatchesReference) {
  std::mt19937 rng(5150);
  for (int trial = 0; trial < 12; ++trial) {
    const auto cells = random_cells(rng, 30 + rng() % 100);
    for (const std::size_t interval : {1u, 3u, 16u, 50u}) {
      const std::string raw =
          blockcodec::encode_block(cells.data(), cells.size(), interval);
      auto probe = [&](const Key& k) {
        const auto ref = static_cast<std::size_t>(
            std::lower_bound(cells.begin(), cells.end(), k,
                             [](const Cell& c, const Key& key) {
                               return c.key < key;
                             }) -
            cells.begin());
        EXPECT_EQ(blockcodec::block_lower_bound(raw, cells.size(), interval, k),
                  ref)
            << "interval " << interval << " row " << k.row;
      };
      for (int i = 0; i < 40; ++i) {
        Key k = cells[rng() % cells.size()].key;
        switch (rng() % 4) {
          case 0: break;                            // exact hit
          case 1: k.qualifier += "~";    break;     // between keys
          case 2: k.row = "";            break;     // before first
          default: k.row = "\x7f\x7f";   break;     // after last
        }
        probe(k);
      }
    }
  }
}

/// An encoded RFile must be observationally identical to a plain one
/// built from the same cells — full scans, random range seeks, block
/// drains and bounded drains — across restart intervals, strides and
/// compressor settings.
TEST(EncodedBlocks, EncodedRFileMatchesPlainAcrossKnobs) {
  std::mt19937 rng(90210);
  for (int trial = 0; trial < 10; ++trial) {
    const auto cells = random_cells(rng, 40 + rng() % 150);
    RFileOptions plain_opts;
    plain_opts.index_stride = 1 + rng() % 64;
    const auto plain = RFile::from_sorted(cells, plain_opts);
    for (const auto compressor : {RFileCompressor::kNone, RFileCompressor::kLz}) {
      RFileOptions opts;
      opts.prefix_encode = true;
      opts.index_stride = plain_opts.index_stride;
      opts.restart_interval = 1 + rng() % 32;
      opts.compressor = compressor;
      const auto encoded = RFile::from_sorted(cells, opts);
      ASSERT_TRUE(encoded->prefix_encoded());
      ASSERT_EQ(encoded->entry_count(), cells.size());

      // Full scan, cellwise and blockwise.
      auto a = plain->iterator();
      auto b = encoded->iterator();
      a->seek(Range::all());
      b->seek(Range::all());
      expect_identical(drain_cellwise(*a), drain_cellwise(*b), "full scan");
      a->seek(Range::all());
      b->seek(Range::all());
      expect_identical(drain_blockwise(*a, rng), drain_blockwise(*b, rng),
                       "full block scan");

      // Random range seeks + lower_bound_pos agreement.
      for (int s = 0; s < 8; ++s) {
        const auto lo = util::zero_pad(rng() % 200, 4);
        const auto hi = util::zero_pad(rng() % 200, 4);
        const Range r = (s % 3 == 0) ? Range::exact_row(lo)
                        : (lo <= hi) ? Range::row_range(lo, hi)
                                     : Range::row_range(hi, lo);
        a->seek(r);
        b->seek(r);
        expect_identical(drain_cellwise(*a), drain_cellwise(*b), "range seek");
        EXPECT_EQ(plain->lower_bound_pos(min_key_for_row(lo)),
                  encoded->lower_bound_pos(min_key_for_row(lo)));
      }

      // Bounded drain (next_block_until) mid-stream.
      a->seek(Range::all());
      b->seek(Range::all());
      const Key bound = cells[cells.size() / 2].key;
      CellBlock ba, bb;
      while (a->next_block_until(ba, 7, bound, true) > 0) {
      }
      while (b->next_block_until(bb, 7, bound, true) > 0) {
      }
      ASSERT_EQ(ba.size(), bb.size()) << "bounded drain";
      for (std::size_t i = 0; i < ba.size(); ++i) {
        EXPECT_EQ(ba.begin()[i].key, bb.begin()[i].key);
      }
      expect_identical(drain_cellwise(*a), drain_cellwise(*b),
                       "post-bound remainder");

      // sample_rows must agree (same stride arithmetic, different
      // storage).
      for (const std::size_t n : {1u, 3u, 10u}) {
        EXPECT_EQ(plain->sample_rows(n), encoded->sample_rows(n));
      }
    }
  }
}

/// Decode-through-cache: scanning an encoded file twice through a
/// BlockCache decodes each block once — the second pass is pure hits —
/// and the cache charges the ENCODED bytes, not the decoded footprint.
TEST(EncodedBlocks, DecodeThroughCacheChargesEncodedBytes) {
  std::mt19937 rng(60601);
  const auto cells = random_cells(rng, 400);
  RFileOptions opts;
  opts.prefix_encode = true;
  opts.index_stride = 64;
  opts.compressor = RFileCompressor::kLz;
  const auto rf = RFile::from_sorted(cells, opts);
  BlockCache cache(64 << 20, 1);

  auto scan = [&] {
    auto it = rf->iterator(&cache);
    it->seek(Range::all());
    return drain_cellwise(*it);
  };
  const auto first = scan();
  const auto stats1 = cache.stats();
  EXPECT_EQ(stats1.misses, rf->block_count());
  EXPECT_EQ(stats1.entries, rf->block_count());
  // Budget accounting equals the sum of encoded block charges exactly.
  EXPECT_EQ(stats1.bytes, rf->total_block_bytes());
  // Encoded charges must be well under the materialized footprint.
  std::size_t materialized = 0;
  for (const auto& c : cells) {
    materialized += c.key.row.size() + c.key.family.size() +
                    c.key.qualifier.size() + c.key.visibility.size() +
                    c.value.size() + sizeof(Cell);
  }
  EXPECT_LT(stats1.bytes, materialized / 2);

  const auto second = scan();
  const auto stats2 = cache.stats();
  EXPECT_EQ(stats2.misses, stats1.misses) << "second pass must not decode";
  EXPECT_GT(stats2.hits, stats1.hits);
  expect_identical(first, second, "cached vs fresh scan");
}

/// A live table configured with prefix encoding reads identically to a
/// plain-configured one through the whole Instance/Scanner stack.
TEST(EncodedBlocks, ScannerAgreesWithPlainTableEndToEnd) {
  auto run = [](bool encode, RFileCompressor comp) {
    Instance db;
    db.create_table("t");
    auto& cfg = db.table_config("t");
    cfg.max_versions = 2;
    cfg.rfile.prefix_encode = encode;
    cfg.rfile.compressor = comp;
    cfg.rfile.index_stride = 32;
    cfg.rfile.cache_bytes = 1 << 20;
    BatchWriter writer(db, "t");
    std::mt19937 rng(424242);
    for (int i = 0; i < 500; ++i) {
      Mutation m(util::zero_pad(rng() % 150, 4));
      if (rng() % 12 == 0) {
        m.put_delete("f", "q" + std::to_string(rng() % 3));
      } else {
        m.put("f", "q" + std::to_string(rng() % 3),
              encode_double(double(rng() % 50)));
      }
      writer.add_mutation(std::move(m));
      if (i % 83 == 0) {
        writer.flush();
        db.flush("t");
      }
    }
    writer.flush();
    db.flush("t");
    Scanner sc(db, "t");
    sc.set_batch_size(256);
    std::vector<Cell> out;
    sc.for_each([&](const Key& k, const Value& v) { out.push_back({k, v}); });
    return out;
  };
  const auto plain = run(false, RFileCompressor::kNone);
  const auto packed = run(true, RFileCompressor::kNone);
  const auto packed_lz = run(true, RFileCompressor::kLz);
  expect_identical(plain, packed, "plain vs prefix-encoded table");
  expect_identical(plain, packed_lz, "plain vs prefix+lz table");
  EXPECT_FALSE(plain.empty());
}

}  // namespace
}  // namespace graphulo::nosql
