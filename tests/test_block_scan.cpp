// Property test for the block scan protocol: for any iterator stack,
// reading through next_block() must produce byte-identical output to
// the cell-at-a-time top/next loop — including across re-seeks and for
// stacks that filter, version, delete-suppress, or combine. Stacks and
// data are randomized; block sizes span 1..4096.

#include <algorithm>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/table_scan.hpp"
#include "nosql/codec.hpp"
#include "nosql/combiner.hpp"
#include "nosql/filter_iterators.hpp"
#include "nosql/merge_iterator.hpp"
#include "nosql/nosql.hpp"
#include "util/strings.hpp"

namespace graphulo::nosql {
namespace {

/// Drains an iterator cell-at-a-time (the reference semantics).
std::vector<Cell> drain_cellwise(SortedKVIterator& it) {
  std::vector<Cell> out;
  while (it.has_top()) {
    out.push_back({it.top_key(), it.top_value()});
    it.next();
  }
  return out;
}

/// Drains an iterator through next_block() with a (possibly varying)
/// block size schedule.
std::vector<Cell> drain_blockwise(SortedKVIterator& it, std::mt19937& rng) {
  std::vector<Cell> out;
  CellBlock block;
  while (it.has_top()) {
    block.clear();
    const std::size_t max = 1 + rng() % 4096;
    const std::size_t n = it.next_block(block, max);
    EXPECT_GE(n, 1u) << "has_top() promised a cell but next_block gave none";
    EXPECT_EQ(n, block.size());
    out.insert(out.end(), block.begin(), block.end());
  }
  // Exhausted iterators must keep returning 0 and append nothing.
  block.clear();
  EXPECT_EQ(it.next_block(block, 64), 0u);
  EXPECT_TRUE(block.empty());
  return out;
}

void expect_identical(const std::vector<Cell>& a, const std::vector<Cell>& b,
                      const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key) << what << " cell " << i;
    EXPECT_EQ(a[i].value, b[i].value) << what << " cell " << i;
  }
}

/// Random sorted cell set: duplicate keys at multiple timestamps, some
/// deletes, a few column families/qualifiers.
std::vector<Cell> random_cells(std::mt19937& rng, std::size_t rows) {
  std::map<Key, Value> cells;  // Key ordering dedupes identical keys
  const std::size_t n = rows * (1 + rng() % 4);
  for (std::size_t i = 0; i < n; ++i) {
    Cell c;
    c.key.row = util::zero_pad(rng() % rows, 4);
    c.key.family = (rng() % 2) ? "fa" : "fb";
    c.key.qualifier = "q" + std::to_string(rng() % 3);
    c.key.ts = static_cast<std::int64_t>(rng() % 8);
    c.key.deleted = (rng() % 10 == 0);
    c.value = c.key.deleted ? "" : encode_double(double(rng() % 100));
    cells[c.key] = c.value;
  }
  std::vector<Cell> out;
  out.reserve(cells.size());
  for (auto& [k, v] : cells) out.push_back({k, v});
  return out;
}

/// Builds a randomized stack over 1..4 sorted runs: merge, then a random
/// subset of {deleting, versioning, column filter, summing combiner}.
IterPtr random_stack(std::mt19937& rng, const std::vector<Cell>& cells,
                     std::uint32_t shape) {
  const std::size_t ways = 1 + rng() % 4;
  std::vector<std::vector<Cell>> runs(ways);
  for (const auto& c : cells) runs[rng() % ways].push_back(c);
  std::vector<IterPtr> children;
  for (auto& run : runs) {
    children.push_back(
        std::make_unique<VectorIterator>(std::make_shared<std::vector<Cell>>(
            std::move(run))));
  }
  IterPtr it = std::make_unique<MergeIterator>(std::move(children));
  if (shape & 1) it = std::make_unique<DeletingIterator>(std::move(it));
  if (shape & 2) {
    it = std::make_unique<VersioningIterator>(std::move(it), 1 + rng() % 3);
  }
  if (shape & 4) {
    it = std::make_unique<FilterIterator>(
        std::move(it),
        [](const Key& k, const Value&) { return k.family == "fa"; });
  }
  if (shape & 8) {
    it = std::make_unique<CombinerIterator>(std::move(it),
                                            sum_double_reducer());
  }
  return it;
}

TEST(BlockScan, MatchesCellAtATimeAcrossRandomStacks) {
  std::mt19937 rng(20260806);
  for (int trial = 0; trial < 48; ++trial) {
    const auto cells = random_cells(rng, 40 + rng() % 120);
    // Same shape + same seed stream for both drains: clone the rng so
    // the stacks (and their random parameters) are identical.
    const std::uint32_t shape = rng() % 16;
    std::mt19937 stack_rng = rng;
    auto ref_it = random_stack(stack_rng, cells, shape);
    stack_rng = rng;
    auto blk_it = random_stack(stack_rng, cells, shape);
    rng = stack_rng;  // advance the outer stream once

    ref_it->seek(Range::all());
    blk_it->seek(Range::all());
    const auto ref = drain_cellwise(*ref_it);
    const auto blk = drain_blockwise(*blk_it, rng);
    expect_identical(ref, blk, "trial " + std::to_string(trial) + " shape " +
                                   std::to_string(shape));
  }
}

TEST(BlockScan, MatchesCellAtATimeAcrossRandomSeeks) {
  std::mt19937 rng(987654);
  for (int trial = 0; trial < 24; ++trial) {
    const auto cells = random_cells(rng, 80);
    const std::uint32_t shape = rng() % 16;
    std::mt19937 stack_rng = rng;
    auto ref_it = random_stack(stack_rng, cells, shape);
    stack_rng = rng;
    auto blk_it = random_stack(stack_rng, cells, shape);
    rng = stack_rng;

    // Random seek/re-seek sequence: each seek targets a random row
    // range; after each, both reads must agree. Interleave partial
    // block reads with partial cell reads before re-seeking to stress
    // mixed-mode state.
    for (int s = 0; s < 6; ++s) {
      const auto lo = util::zero_pad(rng() % 80, 4);
      const auto hi = util::zero_pad(rng() % 80, 4);
      const Range r = (s % 3 == 0) ? Range::exact_row(lo)
                      : (lo <= hi) ? Range::row_range(lo, hi)
                                   : Range::row_range(hi, lo);
      ref_it->seek(r);
      blk_it->seek(r);

      // Partial mixed-mode read: a few cells one way, a block the
      // other, then compare the remainder of both streams.
      std::vector<Cell> ref, blk;
      for (int i = 0; i < 3 && ref_it->has_top(); ++i) {
        ref.push_back({ref_it->top_key(), ref_it->top_value()});
        ref_it->next();
      }
      {
        CellBlock b;
        blk_it->next_block(b, 3);
        blk.insert(blk.end(), b.begin(), b.end());
      }
      auto rest_ref = drain_blockwise(*ref_it, rng);  // swap modes too
      auto rest_blk = drain_cellwise(*blk_it);
      ref.insert(ref.end(), rest_ref.begin(), rest_ref.end());
      blk.insert(blk.end(), rest_blk.begin(), rest_blk.end());
      expect_identical(ref, blk, "trial " + std::to_string(trial) + " seek " +
                                     std::to_string(s));
    }
  }
}

TEST(BlockScan, RowReaderBlockSizesAgree) {
  // RowReader must produce the same row stream at any block size,
  // including size 1 (degenerates to the old cell path).
  std::mt19937 rng(4242);
  auto cells = random_cells(rng, 60);
  // Strip deletes/dup timestamps: feed a clean sorted run.
  auto data = std::make_shared<std::vector<Cell>>();
  for (auto& c : cells) {
    if (!c.key.deleted) data->push_back(c);
  }
  auto rows_at = [&](std::size_t bs) {
    auto it = std::make_unique<VectorIterator>(data);
    it->seek(Range::all());
    core::RowReader reader(std::move(it), Range::all(), bs);
    std::vector<core::RowBlock> out;
    while (reader.has_next()) out.push_back(reader.next_row());
    return out;
  };
  const auto ref = rows_at(1);
  for (const std::size_t bs : {2u, 7u, 64u, 1024u, 4096u}) {
    const auto got = rows_at(bs);
    ASSERT_EQ(got.size(), ref.size()) << "block size " << bs;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i].row, ref[i].row);
      ASSERT_EQ(got[i].cells.size(), ref[i].cells.size());
      for (std::size_t j = 0; j < ref[i].cells.size(); ++j) {
        EXPECT_EQ(got[i].cells[j].key, ref[i].cells[j].key);
        EXPECT_EQ(got[i].cells[j].value, ref[i].cells[j].value);
      }
    }
  }
}

TEST(BlockScan, ScannerBatchSizesAgreeOnLiveTable) {
  // End to end through Instance/Scanner: a table with deletes, a
  // versioning config, and attached combiner must read identically at
  // batch sizes 1 (legacy path) and 1024 (block path).
  auto run = [](std::size_t batch) {
    Instance db;
    db.create_table("t");
    db.table_config("t").max_versions = 2;
    BatchWriter writer(db, "t");
    std::mt19937 rng(777);
    for (int i = 0; i < 400; ++i) {
      Mutation m(util::zero_pad(rng() % 120, 4));
      if (rng() % 12 == 0) {
        m.put_delete("f", "q" + std::to_string(rng() % 3));
      } else {
        m.put("f", "q" + std::to_string(rng() % 3),
              encode_double(double(rng() % 50)));
      }
      writer.add_mutation(std::move(m));
      if (i % 97 == 0) {
        writer.flush();
        db.flush("t");  // force multi-rfile tablets mid-stream
      }
    }
    writer.flush();
    Scanner sc(db, "t");
    sc.set_batch_size(batch);
    std::vector<Cell> out;
    sc.for_each([&](const Key& k, const Value& v) { out.push_back({k, v}); });
    return out;
  };
  const auto a = run(1);
  const auto b = run(1024);
  expect_identical(a, b, "scanner batch 1 vs 1024");
  EXPECT_FALSE(a.empty());
}

}  // namespace
}  // namespace graphulo::nosql
