// Centrality metrics (Section III-A): degree, eigenvector, Katz,
// PageRank — checked against closed forms on structured graphs and a
// dense reference on random graphs.

#include <cmath>

#include <gtest/gtest.h>

#include "algo/centrality.hpp"
#include "gen/rmat.hpp"
#include "la/la.hpp"
#include "test_helpers.hpp"

namespace graphulo::algo {
namespace {

using graphulo::testing::random_undirected;
using la::Index;
using la::SpMat;

SpMat<double> star_graph(Index leaves) {
  // Vertex 0 is the hub.
  std::vector<la::Triple<double>> t;
  for (Index v = 1; v <= leaves; ++v) {
    t.push_back({0, v, 1.0});
    t.push_back({v, 0, 1.0});
  }
  return SpMat<double>::from_triples(leaves + 1, leaves + 1, t);
}

TEST(DegreeCentrality, RowAndColumnReductions) {
  auto a = SpMat<double>::from_triples(3, 3, {{0, 1, 1.0}, {0, 2, 1.0},
                                              {2, 1, 1.0}});
  EXPECT_EQ(out_degree_centrality(a), (std::vector<double>{2, 0, 1}));
  EXPECT_EQ(in_degree_centrality(a), (std::vector<double>{0, 2, 1}));
}

TEST(DegreeCentrality, WeightsAreSummed) {
  auto a = SpMat<double>::from_triples(2, 2, {{0, 1, 2.5}, {1, 0, 1.5}});
  EXPECT_EQ(out_degree_centrality(a), (std::vector<double>{2.5, 1.5}));
}

TEST(EigenvectorCentrality, HubDominatesStar) {
  const auto result = eigenvector_centrality(star_graph(6));
  EXPECT_TRUE(result.converged);
  for (std::size_t v = 1; v < result.scores.size(); ++v) {
    EXPECT_GT(result.scores[0], result.scores[v]);
  }
  // Star eigenvector: hub = 1/sqrt(2), each leaf = 1/sqrt(2k). The
  // cosine stopping rule at tolerance t leaves O(sqrt(t)) component
  // error, hence the loose bound.
  EXPECT_NEAR(result.scores[0], 1.0 / std::sqrt(2.0), 1e-4);
  EXPECT_NEAR(result.scores[1], 1.0 / std::sqrt(12.0), 1e-4);
}

TEST(EigenvectorCentrality, UniformOnCompleteGraph) {
  const Index n = 5;
  std::vector<la::Triple<double>> t;
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      if (i != j) t.push_back({i, j, 1.0});
    }
  }
  const auto result =
      eigenvector_centrality(SpMat<double>::from_triples(n, n, t));
  EXPECT_TRUE(result.converged);
  for (double s : result.scores) {
    EXPECT_NEAR(s, 1.0 / std::sqrt(static_cast<double>(n)), 2e-5);
  }
}

TEST(EigenvectorCentrality, MatchesDensePowerIteration) {
  const auto a = random_undirected(25, 0.3, 81);
  const auto result = eigenvector_centrality(a, {.max_iterations = 500,
                                                 .tolerance = 1e-14});
  // Residual check: A x ~ lambda x.
  const auto ax = la::spmv<la::PlusTimes<double>>(a, result.scores);
  const double lambda = la::dot(result.scores, ax);
  double residual = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    const double r = ax[i] - lambda * result.scores[i];
    residual += r * r;
  }
  EXPECT_LT(std::sqrt(residual), 1e-4 * std::abs(lambda));
}

TEST(KatzCentrality, HigherAlphaWeighsDistantPaths) {
  // Path graph 0-1-2-3: Katz of the interior beats the exterior.
  auto a = SpMat<double>::from_triples(
      4, 4, {{0, 1, 1.0}, {1, 0, 1.0}, {1, 2, 1.0}, {2, 1, 1.0},
             {2, 3, 1.0}, {3, 2, 1.0}});
  const auto result = katz_centrality(a, 0.3);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.scores[1], result.scores[0]);
  EXPECT_GT(result.scores[2], result.scores[3]);
  EXPECT_NEAR(result.scores[1], result.scores[2], 1e-9);  // symmetric
}

TEST(KatzCentrality, MatchesSeriesClosedFormOnTinyGraph) {
  // Two vertices, one undirected edge: d_k alternates between the two
  // columns; x = sum_k alpha^k (A^k 1). For this graph A^k 1 = 1, so
  // x_v = alpha/(1-alpha) at convergence.
  auto a = SpMat<double>::from_triples(2, 2, {{0, 1, 1.0}, {1, 0, 1.0}});
  const double alpha = 0.5;
  const auto result = katz_centrality(a, alpha, {.max_iterations = 200,
                                                 .tolerance = 1e-14});
  EXPECT_NEAR(result.scores[0], alpha / (1 - alpha), 1e-6);
  EXPECT_NEAR(result.scores[1], alpha / (1 - alpha), 1e-6);
}

TEST(KatzCentrality, RejectsBadAlpha) {
  auto a = star_graph(3);
  EXPECT_THROW(katz_centrality(a, 0.0), std::invalid_argument);
  EXPECT_THROW(katz_centrality(a, 1.0), std::invalid_argument);
}

TEST(PageRank, SumsToOneAndConverges) {
  gen::RmatParams p;
  p.scale = 7;
  p.edge_factor = 6;
  const auto a = gen::rmat_simple_adjacency(p);
  const auto result = pagerank(a);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(la::vec_sum(result.scores), 1.0, 1e-9);
  for (double s : result.scores) EXPECT_GT(s, 0.0);  // jump term floor
}

TEST(PageRank, UniformOnCycle) {
  const Index n = 6;
  std::vector<la::Triple<double>> t;
  for (Index i = 0; i < n; ++i) t.push_back({i, (i + 1) % n, 1.0});
  const auto result = pagerank(SpMat<double>::from_triples(n, n, t));
  for (double s : result.scores) {
    EXPECT_NEAR(s, 1.0 / static_cast<double>(n), 1e-9);
  }
}

TEST(PageRank, DanglingVertexHandled) {
  // 0 -> 1, 1 dangles: mass must not leak.
  auto a = SpMat<double>::from_triples(2, 2, {{0, 1, 1.0}});
  const auto result = pagerank(a);
  EXPECT_NEAR(la::vec_sum(result.scores), 1.0, 1e-12);
  EXPECT_GT(result.scores[1], result.scores[0]);  // 1 receives from 0
}

TEST(PageRank, MatchesDenseReference) {
  for (std::uint64_t seed : {91u, 92u}) {
    const auto a = random_undirected(20, 0.25, seed);
    const auto sparse = pagerank(a, 0.15, {.max_iterations = 300,
                                           .tolerance = 1e-15});
    const auto dense = pagerank_dense_reference(a, 0.15, 300);
    ASSERT_EQ(sparse.scores.size(), dense.size());
    for (std::size_t v = 0; v < dense.size(); ++v) {
      EXPECT_NEAR(sparse.scores[v], dense[v], 1e-8) << "v=" << v;
    }
  }
}

TEST(PageRank, HubOutranksLeavesInStar) {
  const auto result = pagerank(star_graph(8));
  for (std::size_t v = 1; v < result.scores.size(); ++v) {
    EXPECT_GT(result.scores[0], result.scores[v]);
  }
}

TEST(Centrality, RejectsNonSquare) {
  SpMat<double> rect(2, 3);
  EXPECT_THROW(eigenvector_centrality(rect), std::invalid_argument);
  EXPECT_THROW(katz_centrality(rect, 0.1), std::invalid_argument);
  EXPECT_THROW(pagerank(rect), std::invalid_argument);
}

}  // namespace
}  // namespace graphulo::algo
