// NMF and the Newton-Schulz inverse — Algorithms 3, 4, 5 — plus
// triangle counting.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "algo/inverse.hpp"
#include "algo/nmf.hpp"
#include "algo/tricount.hpp"
#include "assoc/schemas.hpp"
#include "gen/tweets.hpp"
#include "la/la.hpp"
#include "test_helpers.hpp"

namespace graphulo::algo {
namespace {

using graphulo::testing::random_undirected;
using la::Dense;
using la::Index;
using la::SpMat;

TEST(NewtonInverse, InvertsWellConditionedMatrix) {
  const auto a = Dense<double>::from_rows(2, 2, {4, 1, 2, 3});
  const auto result = newton_inverse(a);
  EXPECT_TRUE(result.converged);
  const auto prod = la::matmul(a, result.inverse);
  EXPECT_LT(la::fro_diff(prod, Dense<double>::eye(2)), 1e-9);
}

TEST(NewtonInverse, MatchesGaussJordan) {
  util::Xoshiro256 rng(3);
  // Diagonally dominant random matrices are safely invertible.
  for (int trial = 0; trial < 5; ++trial) {
    const Index n = 8;
    Dense<double> a(n, n);
    for (Index i = 0; i < n; ++i) {
      double off = 0;
      for (Index j = 0; j < n; ++j) {
        if (i != j) {
          a(i, j) = rng.uniform(-1.0, 1.0);
          off += std::abs(a(i, j));
        }
      }
      a(i, i) = off + 1.0;
    }
    const auto newton = newton_inverse(a, 1e-14, 500);
    ASSERT_TRUE(newton.converged) << "trial " << trial;
    const auto gj = gauss_jordan_inverse(a);
    EXPECT_LT(la::fro_diff(newton.inverse, gj), 1e-8);
  }
}

TEST(NewtonInverse, IdentityIsFixed) {
  const auto result = newton_inverse(Dense<double>::eye(5));
  EXPECT_TRUE(result.converged);
  EXPECT_LT(la::fro_diff(result.inverse, Dense<double>::eye(5)), 1e-10);
}

TEST(NewtonInverse, RejectsBadInput) {
  EXPECT_THROW(newton_inverse(Dense<double>(2, 3)), std::invalid_argument);
  EXPECT_THROW(newton_inverse(Dense<double>(3, 3)), std::invalid_argument);
}

TEST(NewtonInverse, SingularConvergesToPseudoinverse) {
  // Rank-1 matrix: no inverse exists (Gauss-Jordan throws), but
  // Newton-Schulz started from cA^T is known to converge to the
  // Moore-Penrose pseudoinverse A+ = A^T / 25 instead.
  const auto a = Dense<double>::from_rows(2, 2, {1, 2, 2, 4});
  EXPECT_THROW(gauss_jordan_inverse(a), std::runtime_error);
  const auto result = newton_inverse(a, 1e-12, 200);
  Dense<double> pinv = a.transposed();
  for (auto& v : pinv.data()) v /= 25.0;
  EXPECT_LT(la::fro_diff(result.inverse, pinv), 1e-8);
  // A * A+ is a projector, not the identity.
  const auto proj = la::matmul(a, result.inverse);
  EXPECT_GT(la::fro_diff(proj, Dense<double>::eye(2)), 0.5);
}

TEST(NewtonInverse, IterationCountGrowsWithConditionNumber) {
  auto make = [](double eps) {
    auto m = Dense<double>::eye(4);
    m(3, 3) = eps;  // condition ~ 1/eps
    return m;
  };
  const auto easy = newton_inverse(make(0.5), 1e-12, 500);
  const auto hard = newton_inverse(make(0.01), 1e-12, 500);
  ASSERT_TRUE(easy.converged);
  ASSERT_TRUE(hard.converged);
  EXPECT_GT(hard.iterations, easy.iterations);
}

TEST(GaussJordan, KnownInverse) {
  const auto a = Dense<double>::from_rows(2, 2, {2, 0, 0, 4});
  const auto inv = gauss_jordan_inverse(a);
  EXPECT_NEAR(inv(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(inv(1, 1), 0.25, 1e-12);
}

// --------------------------------------------------------------------------

SpMat<double> planted_topic_matrix(Index docs, Index terms, int topics,
                                   std::uint64_t seed,
                                   std::vector<int>* labels) {
  // Block matrix: doc d in topic t uses terms from block t, counts 1-3.
  util::Xoshiro256 rng(seed);
  std::vector<la::Triple<double>> triples;
  labels->clear();
  const Index terms_per_topic = terms / topics;
  for (Index d = 0; d < docs; ++d) {
    const int topic = static_cast<int>(rng.uniform_int(
        static_cast<std::uint64_t>(topics)));
    labels->push_back(topic);
    for (int w = 0; w < 6; ++w) {
      const Index term = topic * terms_per_topic +
                         static_cast<Index>(rng.uniform_int(
                             static_cast<std::uint64_t>(terms_per_topic)));
      triples.push_back({d, term, 1.0 + static_cast<double>(rng.uniform_int(3))});
    }
  }
  return SpMat<double>::from_triples(docs, terms, std::move(triples));
}

TEST(NmfAlsNewton, ResidualDecreasesAndFactorsNonnegative) {
  std::vector<int> labels;
  const auto a = planted_topic_matrix(120, 40, 4, 5, &labels);
  NmfOptions opts;
  opts.rank = 4;
  opts.max_iterations = 40;
  const auto result = nmf_als_newton(a, opts);
  ASSERT_GE(result.residual_history.size(), 2u);
  // Residual at the end well below the starting residual.
  EXPECT_LT(result.residual_history.back(),
            0.9 * result.residual_history.front());
  for (double v : result.w.data()) EXPECT_GE(v, 0.0);
  for (double v : result.h.data()) EXPECT_GE(v, 0.0);
}

TEST(NmfAlsNewton, RecoversPlantedTopics) {
  std::vector<int> labels;
  const auto a = planted_topic_matrix(200, 40, 4, 7, &labels);
  NmfOptions opts;
  opts.rank = 4;
  opts.max_iterations = 60;
  const auto result = nmf_als_newton(a, opts);
  const double purity = topic_purity(assign_topics(result.w), labels);
  EXPECT_GT(purity, 0.9);  // block structure is clean; near-perfect
}

TEST(NmfMultiplicative, RecoversPlantedTopics) {
  std::vector<int> labels;
  const auto a = planted_topic_matrix(200, 40, 4, 9, &labels);
  NmfOptions opts;
  opts.rank = 4;
  opts.max_iterations = 80;
  const auto result = nmf_multiplicative(a, opts);
  const double purity = topic_purity(assign_topics(result.w), labels);
  EXPECT_GT(purity, 0.9);
  // Multiplicative updates never go negative by construction.
  for (double v : result.w.data()) EXPECT_GE(v, 0.0);
}

TEST(NmfMultiplicative, ResidualMonotonicallyNonIncreasing) {
  std::vector<int> labels;
  const auto a = planted_topic_matrix(80, 30, 3, 11, &labels);
  NmfOptions opts;
  opts.rank = 3;
  opts.max_iterations = 30;
  opts.tolerance = 0.0;  // run all iterations
  const auto result = nmf_multiplicative(a, opts);
  for (std::size_t i = 1; i < result.residual_history.size(); ++i) {
    EXPECT_LE(result.residual_history[i],
              result.residual_history[i - 1] + 1e-9);
  }
}

TEST(Nmf, SyntheticTweetsSeparateIntoTopics) {
  // The Fig. 3 scenario at test scale: 600 tweets, 5 topics.
  gen::TweetParams params;
  params.num_tweets = 600;
  params.seed = 17;
  const auto corpus = gen::generate_tweets(params);
  const auto incidence = assoc::tweets_to_incidence(corpus);
  NmfOptions opts;
  opts.rank = 5;
  opts.max_iterations = 60;
  opts.seed = 3;
  const auto result = nmf_multiplicative(incidence.matrix(), opts);
  std::vector<int> truth;
  for (const auto& t : corpus.tweets) truth.push_back(t.true_topic);
  const double purity = topic_purity(assign_topics(result.w), truth);
  EXPECT_GT(purity, 0.6);  // far above the 0.2 chance level
}

TEST(Nmf, RejectsBadRank) {
  SpMat<double> a(4, 4);
  EXPECT_THROW(nmf_als_newton(a, {.rank = 0}), std::invalid_argument);
}

TEST(TopicHelpers, AssignAndPurity) {
  auto w = Dense<double>::from_rows(3, 2, {0.9, 0.1, 0.2, 0.8, 0.6, 0.4});
  EXPECT_EQ(assign_topics(w), (std::vector<int>{0, 1, 0}));
  EXPECT_DOUBLE_EQ(topic_purity({0, 1, 0}, {5, 7, 5}), 1.0);
  EXPECT_DOUBLE_EQ(topic_purity({0, 0, 0, 0}, {1, 1, 2, 2}), 0.5);
  EXPECT_THROW(topic_purity({0}, {0, 1}), std::invalid_argument);
}

TEST(TopicHelpers, TopTermsSortedByWeight) {
  auto h = Dense<double>::from_rows(2, 4, {0.1, 0.9, 0.5, 0.2,
                                           0.7, 0.0, 0.3, 0.8});
  EXPECT_EQ(top_terms(h, 0, 2), (std::vector<Index>{1, 2}));
  EXPECT_EQ(top_terms(h, 1, 3), (std::vector<Index>{3, 0, 2}));
  EXPECT_THROW(top_terms(h, 2, 1), std::out_of_range);
}

// --------------------------------------------------------------------------

TEST(TriangleCount, KnownSmallGraphs) {
  // Triangle.
  auto tri = SpMat<double>::from_triples(
      3, 3, {{0, 1, 1.0}, {1, 0, 1.0}, {1, 2, 1.0}, {2, 1, 1.0},
             {0, 2, 1.0}, {2, 0, 1.0}});
  EXPECT_EQ(triangle_count_trace(tri), 1u);
  EXPECT_EQ(triangle_count_masked(tri), 1u);
  EXPECT_EQ(triangle_count_baseline(tri), 1u);
  // K4 has 4 triangles.
  std::vector<la::Triple<double>> k4;
  for (Index i = 0; i < 4; ++i) {
    for (Index j = 0; j < 4; ++j) {
      if (i != j) k4.push_back({i, j, 1.0});
    }
  }
  const auto a = SpMat<double>::from_triples(4, 4, k4);
  EXPECT_EQ(triangle_count_trace(a), 4u);
  EXPECT_EQ(triangle_count_masked(a), 4u);
  EXPECT_EQ(triangle_count_baseline(a), 4u);
  // 4-cycle has none.
  auto cyc = SpMat<double>::from_triples(
      4, 4, {{0, 1, 1.0}, {1, 0, 1.0}, {1, 2, 1.0}, {2, 1, 1.0},
             {2, 3, 1.0}, {3, 2, 1.0}, {3, 0, 1.0}, {0, 3, 1.0}});
  EXPECT_EQ(triangle_count_trace(cyc), 0u);
}

class TriangleAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TriangleAgreement, AllThreeMethodsAgree) {
  const auto a = random_undirected(60, 0.15, GetParam());
  const auto expected = triangle_count_baseline(a);
  EXPECT_EQ(triangle_count_trace(a), expected);
  EXPECT_EQ(triangle_count_masked(a), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriangleAgreement,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace graphulo::algo
