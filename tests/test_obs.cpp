// Observability subsystem tests: metrics registry semantics, trace
// spans + the trace ring, exporter correctness (Prometheus exposition
// grammar, JSON round-trip with a golden document), span overhead, and
// an end-to-end smoke workload asserting every instrumented subsystem
// reports into one global snapshot.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <regex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/tablemult.hpp"
#include "nosql/nosql.hpp"
#include "obs/obs.hpp"
#include "util/strings.hpp"

namespace graphulo {
namespace {

using obs::Labels;
using obs::MetricKind;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;

// ---------------------------------------------------------------------------
// Registry primitives
// ---------------------------------------------------------------------------

TEST(Metrics, CounterAccumulatesAcrossThreads) {
  MetricsRegistry reg;
  auto& c = reg.counter("test.ops.total", "ops");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  c.inc(5);
  EXPECT_EQ(c.value(), kThreads * kPerThread + 5);
}

TEST(Metrics, GaugeSetAddAndSnapshotValue) {
  MetricsRegistry reg;
  auto& g = reg.gauge("test.queue.depth", "depth");
  g.set(7);
  g.add(-3);
  g.add(1);
  EXPECT_EQ(g.value(), 5);
  EXPECT_DOUBLE_EQ(reg.snapshot().value("test.queue.depth"), 5.0);
}

TEST(Metrics, HistogramBucketsSumAndQuantiles) {
  MetricsRegistry reg;
  auto& h = reg.histogram("test.latency.seconds", "", {1.0, 2.0, 4.0, 8.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty
  for (const double v : {0.5, 1.5, 1.5, 3.0, 100.0}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.5);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 5u);  // 4 finite bounds + Inf
  EXPECT_EQ(counts[0], 1u);      // <= 1
  EXPECT_EQ(counts[1], 2u);      // <= 2
  EXPECT_EQ(counts[2], 1u);      // <= 4
  EXPECT_EQ(counts[3], 0u);      // <= 8
  EXPECT_EQ(counts[4], 1u);      // +Inf
  // Ranks in the +Inf bucket clamp to the largest finite bound.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 8.0);
  // The median rank lands in the (1, 2] bucket.
  const double p50 = h.quantile(0.5);
  EXPECT_GT(p50, 1.0);
  EXPECT_LE(p50, 2.0);
}

TEST(Metrics, SameNameReturnsSameObjectAndKindMismatchThrows) {
  MetricsRegistry reg;
  auto& a = reg.counter("test.dup.total");
  auto& b = reg.counter("test.dup.total");
  EXPECT_EQ(&a, &b);
  EXPECT_THROW(reg.gauge("test.dup.total"), std::logic_error);
  EXPECT_THROW(reg.histogram("test.dup.total"), std::logic_error);
}

TEST(Metrics, InvalidNamesAndLabelsThrow) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.counter(""), std::invalid_argument);
  EXPECT_THROW(reg.counter("9starts.with.digit"), std::invalid_argument);
  EXPECT_THROW(reg.counter("has space"), std::invalid_argument);
  EXPECT_THROW(reg.counter("ok.name", "", {{"bad-label", "v"}}),
               std::invalid_argument);
  EXPECT_NO_THROW(reg.counter("_ok.name2", "", {{"good_label", "v"}}));
}

TEST(Metrics, LabeledSeriesAreIndependent) {
  MetricsRegistry reg;
  reg.counter("test.srv.total", "", {{"server", "0"}}).inc(3);
  reg.counter("test.srv.total", "", {{"server", "1"}}).inc(11);
  const auto snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.value("test.srv.total", {{"server", "0"}}), 3.0);
  EXPECT_DOUBLE_EQ(snap.value("test.srv.total", {{"server", "1"}}), 11.0);
  EXPECT_EQ(snap.find("test.srv.total", {{"server", "2"}}), nullptr);
  EXPECT_DOUBLE_EQ(snap.value("test.srv.total", {{"server", "2"}}), 0.0);
}

TEST(Metrics, ResetValuesKeepsRegistrations) {
  MetricsRegistry reg;
  auto& c = reg.counter("test.reset.total");
  auto& h = reg.histogram("test.reset.seconds");
  c.inc(9);
  h.observe(0.01);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  // Same handle still registered and usable.
  EXPECT_EQ(&reg.counter("test.reset.total"), &c);
}

TEST(Metrics, CollectorsRunAtSnapshotTime) {
  MetricsRegistry reg;
  std::atomic<int> source{0};
  reg.register_collector([&source](MetricsRegistry& r) {
    r.gauge("test.pulled.value").set(source.load());
  });
  source = 42;
  EXPECT_DOUBLE_EQ(reg.snapshot().value("test.pulled.value"), 42.0);
  source = 7;
  EXPECT_DOUBLE_EQ(reg.snapshot().value("test.pulled.value"), 7.0);
}

TEST(Metrics, GlobalRegistryMirrorsFaultSites) {
  // The global registry installs a collector for util::fault sites;
  // snapshotting must not throw even with no sites armed.
  EXPECT_NO_THROW(MetricsRegistry::global().snapshot());
}

// ---------------------------------------------------------------------------
// Trace spans and the trace ring
// ---------------------------------------------------------------------------

TEST(Trace, SpanRecordsIntoNamedHistogram) {
  auto& reg = MetricsRegistry::global();
  auto& h = reg.histogram("test.unit_span.seconds");
  const std::uint64_t before = h.count();
  for (int i = 0; i < 3; ++i) {
    TRACE_SPAN("test.unit_span");
  }
  EXPECT_EQ(h.count(), before + 3);
}

TEST(Trace, DisabledSpansRecordNothing) {
  auto& reg = MetricsRegistry::global();
  auto& h = reg.histogram("test.disabled_span.seconds");
  const std::uint64_t before = h.count();
  obs::set_spans_enabled(false);
  {
    TRACE_SPAN("test.disabled_span");
  }
  obs::set_spans_enabled(true);
  EXPECT_EQ(h.count(), before);
  {
    TRACE_SPAN("test.disabled_span");
  }
  EXPECT_EQ(h.count(), before + 1);
}

TEST(Trace, RingKeepsMostRecentEventsAndExportsChromeTrace) {
  obs::set_trace_capacity(4);
  for (int i = 0; i < 6; ++i) {
    TRACE_SPAN("test.ring_span");
  }
  const auto events = obs::trace_events();
  ASSERT_EQ(events.size(), 4u);  // ring wrapped, newest 4 kept
  for (const auto& e : events) {
    EXPECT_STREQ(e.name, "test.ring_span");
    EXPECT_GE(e.duration_us, 0.0);
  }
  // Oldest first.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start_us, events[i - 1].start_us);
  }
  const std::string json = obs::trace_json();
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("test.ring_span"), std::string::npos);

  obs::clear_trace();
  EXPECT_TRUE(obs::trace_events().empty());
  obs::set_trace_capacity(0);
  {
    TRACE_SPAN("test.ring_span");
  }
  EXPECT_TRUE(obs::trace_events().empty());  // capture disabled
}

TEST(Trace, SpanOverheadStaysSmall) {
  // Budget check for DESIGN.md §10: an enabled span should cost tens of
  // nanoseconds; a disabled span a load+branch. Bounds are deliberately
  // loose so sanitizer builds pass; the measured numbers are printed
  // for EXPERIMENTS.md.
  constexpr int kIters = 200000;
  obs::set_spans_enabled(false);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    TRACE_SPAN("test.overhead_span");
  }
  const auto t1 = std::chrono::steady_clock::now();
  obs::set_spans_enabled(true);
  const auto t2 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    TRACE_SPAN("test.overhead_span");
  }
  const auto t3 = std::chrono::steady_clock::now();

  const double disabled_ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count() / kIters;
  const double enabled_ns =
      std::chrono::duration<double, std::nano>(t3 - t2).count() / kIters;
  std::printf("span overhead: disabled %.1f ns, enabled %.1f ns\n",
              disabled_ns, enabled_ns);
  RecordProperty("disabled_ns", static_cast<int>(disabled_ns));
  RecordProperty("enabled_ns", static_cast<int>(enabled_ns));
  EXPECT_LT(disabled_ns, 500.0);
  EXPECT_LT(enabled_ns, 10000.0);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

/// A small registry covering all three kinds, labels, and characters
/// the exporters must escape.
MetricsSnapshot exporter_fixture() {
  MetricsRegistry reg;
  reg.counter("demo.requests.total", "Requests served", {{"path", "/a\"b\\c"}})
      .inc(12);
  reg.counter("demo.requests.total", "Requests served", {{"path", "/plain"}})
      .inc(3);
  reg.gauge("demo.queue.depth", "Queue depth").set(-2);
  // Integer-valued bounds render exactly ("1", not "%.17g" noise), so
  // the exposition-format assertions can match sample lines verbatim.
  auto& h = reg.histogram("demo.latency.seconds", "Request latency",
                          {1.0, 10.0, 100.0});
  for (const double v : {0.5, 5.0, 5.0, 50.0, 2000.0}) h.observe(v);
  return reg.snapshot();
}

TEST(Export, PrometheusMatchesExpositionGrammar) {
  const std::string text = obs::to_prometheus(exporter_fixture());
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n');

  const std::regex help_re(R"(^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$)");
  const std::regex type_re(
      R"(^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$)");
  const std::regex sample_re(
      R"(^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:\\.|[^"\\])*")*\})? -?[0-9+][0-9eE.+-]*$)");

  std::set<std::string> typed_families;
  std::size_t samples = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    std::smatch m;
    if (std::regex_match(line, m, type_re)) {
      // Exactly one TYPE line per family.
      EXPECT_TRUE(typed_families.insert(m[1]).second) << line;
    } else if (std::regex_match(line, help_re)) {
      // ok
    } else {
      EXPECT_TRUE(std::regex_match(line, m, sample_re)) << "bad line: " << line;
      ++samples;
      // Every sample belongs to a family announced by a TYPE line
      // (histogram samples via their _bucket/_sum/_count suffix).
      std::string base = m[1];
      for (const char* suffix : {"_bucket", "_sum", "_count"}) {
        const std::string s = suffix;
        if (base.size() > s.size() &&
            base.compare(base.size() - s.size(), s.size(), s) == 0 &&
            typed_families.count(base.substr(0, base.size() - s.size()))) {
          base = base.substr(0, base.size() - s.size());
          break;
        }
      }
      EXPECT_TRUE(typed_families.count(base)) << "untyped sample: " << line;
    }
  }
  EXPECT_GT(samples, 0u);

  // Dots fold to underscores; no dotted names escape.
  EXPECT_NE(text.find("demo_requests_total"), std::string::npos);
  EXPECT_EQ(text.find("demo.requests"), std::string::npos);
  // Histogram expansion: cumulative buckets end at the mandatory +Inf,
  // which must equal _count.
  EXPECT_NE(text.find("demo_latency_seconds_bucket{le=\"+Inf\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("demo_latency_seconds_count 5"), std::string::npos);
  // Label values escape backslashes and quotes.
  EXPECT_NE(text.find("path=\"/a\\\"b\\\\c\""), std::string::npos);
}

TEST(Export, PrometheusBucketsAreCumulative) {
  const std::string text = obs::to_prometheus(exporter_fixture());
  // bounds {1, 10, 100} with observations 1/2/1 and one overflow.
  EXPECT_NE(text.find("demo_latency_seconds_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("demo_latency_seconds_bucket{le=\"10\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("demo_latency_seconds_bucket{le=\"100\"} 4"),
            std::string::npos);
}

TEST(Export, JsonRoundTripsByteForByte) {
  const MetricsSnapshot snap = exporter_fixture();
  const std::string once = obs::to_json(snap);
  MetricsSnapshot parsed;
  ASSERT_TRUE(obs::from_json(once, parsed));
  EXPECT_EQ(obs::to_json(parsed), once);

  // Parsed content matches the source snapshot, not just the bytes.
  EXPECT_DOUBLE_EQ(parsed.value("demo.requests.total", {{"path", "/plain"}}),
                   3.0);
  const auto* h = parsed.find("demo.latency.seconds");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 5u);
  ASSERT_EQ(h->bounds.size(), 3u);
  ASSERT_EQ(h->bucket_counts.size(), 4u);
  EXPECT_EQ(h->bucket_counts[3], 1u);
}

TEST(Export, JsonGoldenDocument) {
  MetricsRegistry reg;
  reg.counter("demo.total", "h", {{"a", "b"}}).inc(3);
  const std::string expected =
      "{\"families\": [\n"
      " {\"name\": \"demo.total\", \"help\": \"h\", \"type\": \"counter\","
      " \"series\": [\n"
      "  {\"labels\": {\"a\": \"b\"}, \"value\": 3}]}\n"
      "]}\n";
  EXPECT_EQ(obs::to_json(reg.snapshot()), expected);
}

TEST(Export, FromJsonRejectsMalformedInput) {
  MetricsSnapshot out;
  EXPECT_FALSE(obs::from_json("", out));
  EXPECT_FALSE(obs::from_json("{", out));
  EXPECT_FALSE(obs::from_json("[]", out));
  EXPECT_FALSE(obs::from_json("{\"families\": 3}", out));
  EXPECT_FALSE(obs::from_json("{\"families\": []} trailing", out));
  EXPECT_TRUE(obs::from_json("{\"families\": []}", out));
  EXPECT_TRUE(out.families.empty());
}

TEST(Export, MetricsTableRendersAllKinds) {
  const std::string table = obs::metrics_table(exporter_fixture(), "test");
  EXPECT_NE(table.find("demo.requests.total"), std::string::npos);
  EXPECT_NE(table.find("demo.queue.depth"), std::string::npos);
  EXPECT_NE(table.find("demo.latency.seconds"), std::string::npos);
  EXPECT_NE(table.find("histogram"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End to end: one workload, every instrumented subsystem reports
// ---------------------------------------------------------------------------

TEST(ObsEndToEnd, SmokeWorkloadPopulatesEverySubsystem) {
  auto& reg = MetricsRegistry::global();
  reg.reset_values();

  nosql::Instance db(2);
  const std::string wal_path = "/tmp/graphulo_test_obs.wal";
  std::remove(wal_path.c_str());
  nosql::TableConfig cfg;
  cfg.flush_entries = 64;
  cfg.rfile.cache_bytes = 16 * 1024;
  auto wal = std::make_shared<nosql::WriteAheadLog>(wal_path);
  db.attach_wal(wal);
  db.attach_compaction_scheduler(
      std::make_shared<nosql::CompactionScheduler>(2));
  db.create_table("A", cfg);
  db.create_table("B", cfg);
  {
    nosql::BatchWriter wa(db, "A");
    nosql::BatchWriter wb(db, "B");
    for (int k = 0; k < 24; ++k) {
      nosql::Mutation ma(util::zero_pad(static_cast<std::uint64_t>(k), 4));
      nosql::Mutation mb(util::zero_pad(static_cast<std::uint64_t>(k), 4));
      for (int j = 0; j < 6; ++j) {
        ma.put("f", "a" + std::to_string((k + j) % 8),
               nosql::encode_double(1.0 + j));
        mb.put("f", "b" + std::to_string((k * 3 + j) % 8),
               nosql::encode_double(2.0));
      }
      wa.add_mutation(std::move(ma));
      wb.add_mutation(std::move(mb));
    }
    wa.close();
    wb.close();
  }
  db.flush("A");
  db.flush("B");
  db.compact("A");
  db.quiesce_compactions();

  // Two scans so the second one hits the block cache.
  for (int pass = 0; pass < 2; ++pass) {
    nosql::BatchScanner scanner(db, "A");
    std::atomic<std::size_t> seen{0};
    scanner.for_each([&seen](const nosql::Key&, const nosql::Value&) {
      seen.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(seen.load(), 144u);
  }

  core::TableMultOptions options;
  options.num_workers = 2;
  const auto stats = core::table_mult(db, "A", "B", "C", options);
  EXPECT_GT(stats.partial_products, 0u);

  // The default interval-mode committer flushes on a timer; force the
  // pending batch through so the commit counters are deterministic.
  wal->sync();

  const auto snap = reg.snapshot();
  // WAL commit path.
  EXPECT_GT(snap.value("wal.appends.total"), 0.0);
  EXPECT_GT(snap.value("wal.commit.batches.total"), 0.0);
  EXPECT_GT(snap.value("wal.commit.bytes.total"), 0.0);
  // Flush + compaction.
  EXPECT_GT(snap.value("tablet.flush.total"), 0.0);
  EXPECT_GT(snap.value("tablet.compaction.total"), 0.0);
  EXPECT_GE(snap.value("compaction.tasks.total"), 0.0);
  // Block cache.
  EXPECT_GT(snap.value("cache.hits.total") + snap.value("cache.misses.total"),
            0.0);
  // Scan path.
  EXPECT_GT(snap.value("scan.cells.total"), 0.0);
  // BatchWriter.
  EXPECT_GT(snap.value("batch_writer.flushes.total"), 0.0);
  EXPECT_GE(snap.value("batch_writer.mutations.total"), 48.0);
  // TableMult.
  EXPECT_GT(snap.value("tablemult.partitions.total"), 0.0);
  EXPECT_GT(snap.value("tablemult.partial_products.total"), 0.0);
  // Span histograms captured wall time for the same paths.
  const auto* flush_h = snap.find("tablet.flush.seconds");
  ASSERT_NE(flush_h, nullptr);
  EXPECT_GT(flush_h->count, 0u);
  const auto* mult_h = snap.find("tablemult.partition.seconds");
  ASSERT_NE(mult_h, nullptr);
  EXPECT_GT(mult_h->count, 0u);

  // Exporters handle the full production snapshot.
  EXPECT_FALSE(obs::to_prometheus(snap).empty());
  MetricsSnapshot parsed;
  const std::string json = obs::to_json(snap);
  ASSERT_TRUE(obs::from_json(json, parsed));
  EXPECT_EQ(obs::to_json(parsed), json);

  // The Instance-level human report includes the registry table.
  const std::string report = db.metrics_report();
  EXPECT_NE(report.find("tablet servers"), std::string::npos);
  EXPECT_NE(report.find("runtime metrics"), std::string::npos);
  EXPECT_NE(report.find("wal.commit.batches.total"), std::string::npos);

  std::remove(wal_path.c_str());
}

}  // namespace
}  // namespace graphulo
