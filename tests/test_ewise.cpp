// SpEWiseX (intersection) / eWiseAdd (union) semantics, including the
// paper's Section II reading: "addition of two arrays represents a
// union, multiplication a correlation (intersection)".

#include <vector>

#include <gtest/gtest.h>

#include "la/ewise.hpp"
#include "test_helpers.hpp"

namespace graphulo::la {
namespace {

using graphulo::testing::random_sparse_int;

TEST(EWise, MultIntersectsPatterns) {
  auto a = SpMat<double>::from_triples(2, 3, {{0, 0, 2.0}, {0, 2, 3.0}, {1, 1, 4.0}});
  auto b = SpMat<double>::from_triples(2, 3, {{0, 2, 5.0}, {1, 0, 6.0}});
  auto c = hadamard(a, b);
  EXPECT_EQ(c.nnz(), 1);
  EXPECT_EQ(c.at(0, 2), 15.0);
}

TEST(EWise, AddUnionsPatterns) {
  auto a = SpMat<double>::from_triples(2, 3, {{0, 0, 2.0}});
  auto b = SpMat<double>::from_triples(2, 3, {{1, 2, 5.0}});
  auto c = add(a, b);
  EXPECT_EQ(c.nnz(), 2);
  EXPECT_EQ(c.at(0, 0), 2.0);
  EXPECT_EQ(c.at(1, 2), 5.0);
}

TEST(EWise, ShapeMismatchThrows) {
  SpMat<double> a(2, 3), b(3, 2);
  EXPECT_THROW(add(a, b), std::invalid_argument);
  EXPECT_THROW(hadamard(a, b), std::invalid_argument);
}

TEST(EWise, SubtractHandlesOneSidedEntries) {
  auto a = SpMat<double>::from_triples(2, 2, {{0, 0, 5.0}});
  auto b = SpMat<double>::from_triples(2, 2, {{0, 0, 2.0}, {1, 1, 3.0}});
  auto c = subtract(a, b);
  EXPECT_EQ(c.at(0, 0), 3.0);
  EXPECT_EQ(c.at(1, 1), -3.0);
}

TEST(EWise, SubtractSelfIsEmpty) {
  auto a = random_sparse_int(15, 15, 0.3, 71);
  EXPECT_EQ(subtract(a, a).nnz(), 0);
}

TEST(EWise, AddMatchesDenseReference) {
  auto a = random_sparse_int(20, 25, 0.2, 72);
  auto b = random_sparse_int(20, 25, 0.25, 73);
  const auto cd = add(a, b).to_dense();
  const auto ad = a.to_dense();
  const auto bd = b.to_dense();
  for (std::size_t i = 0; i < cd.size(); ++i) {
    EXPECT_DOUBLE_EQ(cd[i], ad[i] + bd[i]);
  }
}

TEST(EWise, MultMatchesDenseReference) {
  auto a = random_sparse_int(20, 25, 0.3, 74);
  auto b = random_sparse_int(20, 25, 0.35, 75);
  const auto cd = hadamard(a, b).to_dense();
  const auto ad = a.to_dense();
  const auto bd = b.to_dense();
  for (std::size_t i = 0; i < cd.size(); ++i) {
    EXPECT_DOUBLE_EQ(cd[i], ad[i] * bd[i]);
  }
}

TEST(EWise, CustomOpMinOverUnion) {
  auto a = SpMat<double>::from_triples(1, 3, {{0, 0, 3.0}, {0, 1, 1.0}});
  auto b = SpMat<double>::from_triples(1, 3, {{0, 0, 2.0}, {0, 2, 7.0}});
  auto c = ewise_add(a, b, [](double x, double y) { return std::min(x, y); });
  EXPECT_EQ(c.at(0, 0), 2.0);  // min where both present
  EXPECT_EQ(c.at(0, 1), 1.0);  // pass-through where one present
  EXPECT_EQ(c.at(0, 2), 7.0);
}

TEST(EWise, ResultZerosArePruned) {
  auto a = SpMat<double>::from_triples(1, 2, {{0, 0, 1.0}, {0, 1, 2.0}});
  auto b = SpMat<double>::from_triples(1, 2, {{0, 0, -1.0}, {0, 1, 2.0}});
  auto sum = add(a, b);
  EXPECT_EQ(sum.nnz(), 1);  // (0,0) cancels exactly
  EXPECT_EQ(sum.at(0, 1), 4.0);
}

TEST(EWise, AdditionIsCommutativeAndAssociative) {
  auto a = random_sparse_int(12, 12, 0.3, 81);
  auto b = random_sparse_int(12, 12, 0.3, 82);
  auto c = random_sparse_int(12, 12, 0.3, 83);
  EXPECT_EQ(add(a, b), add(b, a));
  EXPECT_EQ(add(add(a, b), c), add(a, add(b, c)));
}

TEST(EWise, UnionOfDisjointKeysHasSummedNnz) {
  // Paper, Section II-A: summing arrays with no common keys unions their
  // nonzero sets.
  auto a = SpMat<double>::from_triples(4, 4, {{0, 0, 1.0}, {1, 1, 1.0}});
  auto b = SpMat<double>::from_triples(4, 4, {{2, 2, 1.0}, {3, 3, 1.0}});
  EXPECT_EQ(add(a, b).nnz(), a.nnz() + b.nnz());
}

}  // namespace
}  // namespace graphulo::la
