// SpRef / SpAsgn / complement — the sub-array kernels Algorithm 1 uses
// for E(x, :) and E(xc, :).

#include <vector>

#include <gtest/gtest.h>

#include "la/spref.hpp"
#include "test_helpers.hpp"

namespace graphulo::la {
namespace {

using graphulo::testing::random_sparse_int;

TEST(SpRef, ExtractsSubmatrix) {
  auto a = SpMat<double>::from_dense(
      3, 3, std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8, 9});
  auto b = spref(a, {0, 2}, {1, 2});
  EXPECT_EQ(b.to_dense(), (std::vector<double>{2, 3, 8, 9}));
}

TEST(SpRef, ReordersAndDuplicates) {
  auto a = SpMat<double>::from_dense(2, 2, std::vector<double>{1, 2, 3, 4});
  auto b = spref(a, {1, 0, 1}, {1, 0});
  EXPECT_EQ(b.to_dense(), (std::vector<double>{4, 3, 2, 1, 4, 3}));
}

TEST(SpRef, OutOfRangeThrows) {
  auto a = random_sparse_int(4, 4, 0.5, 91);
  EXPECT_THROW(spref(a, {4}, {0}), std::out_of_range);
  EXPECT_THROW(spref(a, {0}, {-1}), std::out_of_range);
}

TEST(SpRefRows, KeepsFullRows) {
  auto a = random_sparse_int(10, 8, 0.4, 92);
  auto b = spref_rows(a, {2, 7, 3});
  EXPECT_EQ(b.rows(), 3);
  EXPECT_EQ(b.cols(), 8);
  for (Index j = 0; j < 8; ++j) {
    EXPECT_EQ(b.at(0, j), a.at(2, j));
    EXPECT_EQ(b.at(1, j), a.at(7, j));
    EXPECT_EQ(b.at(2, j), a.at(3, j));
  }
}

TEST(SpRefRows, MatchesGeneralSpRef) {
  auto a = random_sparse_int(12, 9, 0.3, 93);
  std::vector<Index> rows = {0, 5, 11, 3};
  std::vector<Index> all_cols;
  for (Index j = 0; j < 9; ++j) all_cols.push_back(j);
  EXPECT_EQ(spref_rows(a, rows), spref(a, rows, all_cols));
}

TEST(SpRefCols, KeepsFullColumns) {
  auto a = random_sparse_int(6, 10, 0.4, 94);
  auto b = spref_cols(a, {9, 0});
  EXPECT_EQ(b.rows(), 6);
  EXPECT_EQ(b.cols(), 2);
  for (Index i = 0; i < 6; ++i) {
    EXPECT_EQ(b.at(i, 0), a.at(i, 9));
    EXPECT_EQ(b.at(i, 1), a.at(i, 0));
  }
}

TEST(SpAsgn, ReplacesBlock) {
  auto a = SpMat<double>::from_dense(
      3, 3, std::vector<double>{1, 1, 1, 1, 1, 1, 1, 1, 1});
  auto b = SpMat<double>::from_dense(2, 2, std::vector<double>{5, 0, 0, 6});
  auto c = spasgn(a, {0, 2}, {0, 2}, b);
  // Assigned cross product (rows {0,2} x cols {0,2}): B's values, with
  // B's zeros clearing prior entries.
  EXPECT_EQ(c.at(0, 0), 5.0);
  EXPECT_EQ(c.at(0, 2), 0.0);
  EXPECT_EQ(c.at(2, 0), 0.0);
  EXPECT_EQ(c.at(2, 2), 6.0);
  // Untouched positions keep A's values.
  EXPECT_EQ(c.at(0, 1), 1.0);
  EXPECT_EQ(c.at(1, 1), 1.0);
  EXPECT_EQ(c.at(2, 1), 1.0);
}

TEST(SpAsgn, ShapeMismatchThrows) {
  auto a = random_sparse_int(4, 4, 0.5, 95);
  auto b = random_sparse_int(2, 3, 0.5, 96);
  EXPECT_THROW(spasgn(a, {0, 1}, {0, 1}, b), std::invalid_argument);
}

TEST(SpAsgn, DuplicateIndexThrows) {
  auto a = random_sparse_int(4, 4, 0.5, 97);
  auto b = random_sparse_int(2, 2, 0.5, 98);
  EXPECT_THROW(spasgn(a, {0, 0}, {0, 1}, b), std::invalid_argument);
}

TEST(SpAsgn, RoundTripWithSpRef) {
  // Assigning A(rows, cols) back into A must be a no-op.
  auto a = random_sparse_int(9, 9, 0.35, 99);
  const std::vector<Index> rows = {1, 4, 6};
  const std::vector<Index> cols = {0, 8, 2};
  auto block = spref(a, rows, cols);
  EXPECT_EQ(spasgn(a, rows, cols, block), a);
}

TEST(Complement, PartitionsIndexSpace) {
  const auto xc = complement({1, 3}, 5);
  EXPECT_EQ(xc, (std::vector<Index>{0, 2, 4}));
  EXPECT_EQ(complement({}, 3), (std::vector<Index>{0, 1, 2}));
  EXPECT_TRUE(complement({0, 1, 2}, 3).empty());
  EXPECT_THROW(complement({3}, 3), std::out_of_range);
}

}  // namespace
}  // namespace graphulo::la
