// Multi-process distributed mode: these tests fork/exec real
// graphulo_tsd daemons (binary path baked in via GRAPHULO_TSD_PATH),
// parse the "GRAPHULO_TSD LISTENING port=" handshake to learn each
// ephemeral port, and drive the fleet through distributed::Cluster.
//
//   * a 3-process RMAT TableMult checked cell-for-cell against the
//     client-side spgemm reference (the ISSUE acceptance equivalence),
//   * kill -9 one server mid-fleet and restart it on the same data dir:
//     WAL replay must reproduce byte-identical scans (keys, values,
//     timestamps),
//   * SIGTERM (graceful): the shutdown checkpoint alone must carry the
//     data, and the presets sidecar must restore the sum-combiner
//     config so the result table keeps folding after recovery.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "assoc/table_io.hpp"
#include "distributed/cluster.hpp"
#include "gen/rmat.hpp"
#include "la/la.hpp"
#include "nosql/codec.hpp"
#include "util/fault.hpp"

namespace graphulo {
namespace {

using namespace distributed;

/// One forked graphulo_tsd process. The destructor hard-kills it (tests
/// that want a graceful stop call terminate() themselves) and removes
/// nothing — the fixture owns the data dirs so restarts can reuse them.
class Daemon {
 public:
  Daemon(std::string data_dir, std::uint32_t server_index,
         const std::vector<std::string>& boundaries) {
    spawn(std::move(data_dir), server_index, boundaries);
  }

  ~Daemon() { kill_hard(); }

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  std::uint16_t port() const { return port_; }
  Endpoint endpoint() const { return {"127.0.0.1", port_}; }
  bool running() const { return pid_ > 0; }

  /// SIGKILL — no drain, no checkpoint; recovery must come from the
  /// WAL tail.
  void kill_hard() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    reap();
  }

  /// SIGTERM and wait: the daemon drains, checkpoints, and exits 0.
  void terminate() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGTERM);
    reap();
  }

 private:
  // ASSERT macros cannot live in a constructor (they return), so the
  // fallible spawn is a void member the constructor delegates to.
  void spawn(std::string data_dir, std::uint32_t server_index,
             const std::vector<std::string>& boundaries) {
    std::string joined;
    for (const auto& b : boundaries) {
      if (!joined.empty()) joined += ',';
      joined += b;
    }
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    pid_ = ::fork();
    ASSERT_GE(pid_, 0) << "fork failed";
    if (pid_ == 0) {
      ::close(fds[0]);
      ::dup2(fds[1], STDOUT_FILENO);
      ::close(fds[1]);
      const std::string index = std::to_string(server_index);
      std::vector<const char*> argv = {GRAPHULO_TSD_PATH,
                                       "--port",         "0",
                                       "--server-index", index.c_str(),
                                       "--data-dir",     data_dir.c_str(),
                                       "--lease-ttl-ms", "30000"};
      if (!joined.empty()) {
        argv.push_back("--boundaries");
        argv.push_back(joined.c_str());
      }
      argv.push_back(nullptr);
      ::execv(GRAPHULO_TSD_PATH, const_cast<char* const*>(argv.data()));
      ::perror("execv graphulo_tsd");
      ::_exit(127);
    }
    ::close(fds[1]);
    out_fd_ = fds[0];
    parse_handshake();
  }

  void parse_handshake() {
    // Read stdout until the LISTENING line; the daemon prints it as
    // soon as the listener is bound (recovery happens before that).
    std::string out;
    char buf[256];
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < deadline) {
      const ssize_t n = ::read(out_fd_, buf, sizeof(buf));
      if (n <= 0) break;
      out.append(buf, static_cast<std::size_t>(n));
      const auto at = out.find("GRAPHULO_TSD LISTENING port=");
      if (at != std::string::npos && out.find('\n', at) != std::string::npos) {
        port_ = static_cast<std::uint16_t>(
            std::stoul(out.substr(at + 28, out.find('\n', at) - (at + 28))));
        return;
      }
    }
    FAIL() << "daemon handshake not seen; stdout so far: " << out;
  }

  void reap() {
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    if (out_fd_ >= 0) {
      ::close(out_fd_);
      out_fd_ = -1;
    }
  }

  pid_t pid_ = -1;
  int out_fd_ = -1;
  std::uint16_t port_ = 0;
};

/// A 3-server fleet on fresh temp data dirs, restartable per server.
class Fleet {
 public:
  explicit Fleet(const std::string& tag, std::vector<std::string> boundaries)
      : boundaries_(std::move(boundaries)) {
    const auto base = ::testing::TempDir() + "/graphulo_tsd_" + tag + "_" +
                      std::to_string(::getpid());
    std::filesystem::remove_all(base);
    for (std::size_t i = 0; i <= boundaries_.size(); ++i) {
      dirs_.push_back(base + "/s" + std::to_string(i));
      daemons_.push_back(std::make_unique<Daemon>(
          dirs_.back(), static_cast<std::uint32_t>(i), boundaries_));
      if (::testing::Test::HasFatalFailure()) return;
    }
    base_ = base;
  }

  ~Fleet() {
    daemons_.clear();  // kill before removing the dirs under them
    if (!base_.empty()) std::filesystem::remove_all(base_);
  }

  Daemon& daemon(std::size_t i) { return *daemons_[i]; }

  /// Restarts server `i` on its existing data dir (new ephemeral port).
  void restart(std::size_t i) {
    daemons_[i] = std::make_unique<Daemon>(
        dirs_[i], static_cast<std::uint32_t>(i), boundaries_);
  }

  /// A fresh Cluster view over the CURRENT endpoints (ports move when a
  /// server restarts, so tests re-make this after a restart).
  Cluster cluster(ClusterOptions options = fast_options()) {
    std::vector<Endpoint> endpoints;
    for (const auto& d : daemons_) endpoints.push_back(d->endpoint());
    return Cluster(std::move(endpoints), boundaries_, options);
  }

  static ClusterOptions fast_options() {
    ClusterOptions options;
    options.retry.max_attempts = 4;
    options.retry.initial_backoff = std::chrono::microseconds(500);
    options.client.connect_timeout = std::chrono::milliseconds(2000);
    return options;
  }

 private:
  std::vector<std::string> boundaries_;
  std::vector<std::string> dirs_;
  std::vector<std::unique_ptr<Daemon>> daemons_;
  std::string base_;
};

std::vector<nosql::Cell> drain_scan(Cluster& cluster, const std::string& table) {
  auto it = cluster.scan(table, nosql::Range::all());
  std::vector<nosql::Cell> out;
  while (it->has_top()) {
    out.push_back({it->top_key(), it->top_value()});
    it->next();
  }
  return out;
}

void write_matrix_to_cluster(Cluster& cluster, const std::string& table,
                             const la::SpMat<double>& m,
                             const std::string& writer_id) {
  cluster.ensure_table(table, /*sum_combiner=*/false);
  auto writer = cluster.writer(table, writer_id);
  for (const auto& t : m.to_triples()) {
    nosql::Mutation mut(assoc::vertex_key(t.row));
    mut.put(assoc::kValueFamily, assoc::vertex_key(t.col),
            nosql::encode_double(t.val));
    writer->add_mutation(std::move(mut));
  }
  writer->close();
}

la::SpMat<double> read_matrix_from_cluster(Cluster& cluster,
                                           const std::string& table,
                                           la::Index rows, la::Index cols) {
  std::vector<la::Triple<double>> triples;
  for (const auto& cell : drain_scan(cluster, table)) {
    const auto value = nosql::decode_double(cell.value);
    EXPECT_TRUE(value.has_value()) << cell.key.to_string();
    triples.push_back({assoc::parse_vertex_key(cell.key.row),
                       assoc::parse_vertex_key(cell.key.qualifier),
                       value.value_or(0.0)});
  }
  return la::SpMat<double>::from_triples(rows, cols, std::move(triples));
}

/// The ISSUE acceptance bar: C += A^T*A of an RMAT graph across three
/// real server processes agrees cell-for-cell with the client-side
/// spgemm reference. 0/1 adjacency keeps every sum a small integer, so
/// distributed addition order cannot perturb the comparison.
TEST(DistributedTableMult, ThreeProcessRmatMatchesClientSide) {
  gen::RmatParams p;
  p.scale = 6;
  p.edge_factor = 6;
  const auto a = gen::rmat_simple_adjacency(p);
  const la::Index n = a.rows();
  const std::vector<std::string> boundaries = {
      assoc::vertex_key(n / 3), assoc::vertex_key(2 * n / 3)};

  Fleet fleet("rmat", boundaries);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  auto cluster = fleet.cluster();
  cluster.ping_all();

  write_matrix_to_cluster(cluster, "A", a, "loader");
  // The static tablet map spreads the rows: every server applied some.
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_GT(cluster.status(s).writes_applied, 0u) << "server " << s;
  }

  const auto stats =
      distributed::table_mult(cluster, "A", "A", "C", {.compact_result = true});
  EXPECT_GT(stats.rows_joined, 0u);
  EXPECT_EQ(stats.partitions.size(), 3u);  // one partition per server

  const auto expected = la::spgemm<la::PlusTimes<double>>(la::transpose(a), a);
  EXPECT_EQ(read_matrix_from_cluster(cluster, "C", n, n), expected);
}

/// kill -9 one server, restart it on the same data dir: WAL-replay
/// recovery must serve byte-identical cells (timestamps included — the
/// WAL records the assigned stamps and replay reuses them).
TEST(DistributedFault, KilledServerRecoversByteIdentical) {
  const std::vector<std::string> boundaries = {assoc::vertex_key(40),
                                               assoc::vertex_key(80)};
  Fleet fleet("kill", boundaries);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());

  std::vector<nosql::Cell> before;
  {
    auto cluster = fleet.cluster();
    cluster.ensure_table("T", false);
    auto writer = cluster.writer("T", "loader");
    for (int i = 0; i < 120; ++i) {
      nosql::Mutation m(assoc::vertex_key(i));
      m.put("f", "q", nosql::encode_double(i * 1.5));
      m.put("f", "r", std::string(1 + i % 7, 'x'));
      writer->add_mutation(std::move(m));
    }
    writer->close();  // acks are WAL-synced: data is durable from here
    before = drain_scan(cluster, "T");
    ASSERT_EQ(before.size(), 240u);
  }

  // No drain, no checkpoint — the middle server dies mid-fleet.
  fleet.daemon(1).kill_hard();

  {
    // A scan routed at the dead server's rows fails transiently (the
    // connection refuses), not fatally.
    auto cluster = fleet.cluster();
    EXPECT_THROW(
        cluster.scan("T", nosql::Range::exact_row(assoc::vertex_key(50))),
        util::TransientError);
  }

  fleet.restart(1);
  auto cluster = fleet.cluster();
  EXPECT_TRUE(cluster.table_exists("T"));
  const auto after = drain_scan(cluster, "T");
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i], before[i]) << "cell " << i << " diverged after "
                                   << before[i].key.to_string();
  }
}

/// SIGTERM path: the shutdown checkpoint alone carries the data (the
/// graceful exit may truncate the WAL), and the presets sidecar brings
/// the sum-combiner table back with its combiner attached — new writes
/// keep folding into recovered cells.
TEST(DistributedFault, GracefulRestartKeepsDataAndTableConfig) {
  Fleet fleet("term", {});  // single server: restart affects everything
  ASSERT_FALSE(::testing::Test::HasFatalFailure());

  {
    auto cluster = fleet.cluster();
    cluster.ensure_table("sums", /*sum_combiner=*/true);
    auto writer = cluster.writer("sums", "w1");
    nosql::Mutation m(assoc::vertex_key(1));
    m.put(assoc::kValueFamily, "c", nosql::encode_double(2.0));
    writer->add_mutation(std::move(m));
    writer->close();
  }

  fleet.daemon(0).terminate();  // drain + checkpoint + exit
  fleet.restart(0);

  auto cluster = fleet.cluster();
  EXPECT_TRUE(cluster.table_exists("sums"));
  {
    // The combiner must still fold: +3 onto the recovered 2 reads as 5.
    auto writer = cluster.writer("sums", "w2");
    nosql::Mutation m(assoc::vertex_key(1));
    m.put(assoc::kValueFamily, "c", nosql::encode_double(3.0));
    writer->add_mutation(std::move(m));
    writer->close();
  }
  const auto cells = drain_scan(cluster, "sums");
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(nosql::decode_double(cells[0].value), 5.0);
}

}  // namespace
}  // namespace graphulo
