// Apply / Scale / Select and Reduce kernels.

#include <vector>

#include <gtest/gtest.h>

#include "la/apply.hpp"
#include "la/reduce.hpp"
#include "test_helpers.hpp"

namespace graphulo::la {
namespace {

using graphulo::testing::random_sparse_int;

TEST(Apply, MapsStoredEntries) {
  auto a = SpMat<double>::from_triples(2, 2, {{0, 0, 2.0}, {1, 1, -3.0}});
  auto b = apply(a, [](double v) { return v * v; });
  EXPECT_EQ(b.at(0, 0), 4.0);
  EXPECT_EQ(b.at(1, 1), 9.0);
}

TEST(Apply, DropsResultsEqualToZero) {
  auto a = SpMat<double>::from_triples(1, 3, {{0, 0, 1.0}, {0, 1, 2.0}, {0, 2, 3.0}});
  auto b = apply(a, [](double v) { return v == 2.0 ? 1.0 : 0.0; });
  EXPECT_EQ(b.nnz(), 1);
  EXPECT_EQ(b.at(0, 1), 1.0);
}

TEST(Apply, EqualsIndicatorMatchesPaperUsage) {
  // (R == 2) from Algorithm 1.
  auto r = SpMat<double>::from_dense(2, 3, std::vector<double>{1, 2, 2, 0, 2, 1});
  auto ind = equals_indicator(r, 2.0);
  EXPECT_EQ(ind.to_dense(), (std::vector<double>{0, 1, 1, 0, 1, 0}));
}

TEST(Scale, MultipliesEveryEntry) {
  auto a = random_sparse_int(8, 8, 0.4, 101);
  auto b = scale(a, 3.0);
  EXPECT_EQ(b.nnz(), a.nnz());
  for (const auto& t : a.to_triples()) {
    EXPECT_DOUBLE_EQ(b.at(t.row, t.col), 3.0 * t.val);
  }
}

TEST(Scale, ByZeroEmptiesMatrix) {
  auto a = random_sparse_int(8, 8, 0.4, 102);
  EXPECT_EQ(scale(a, 0.0).nnz(), 0);
}

TEST(Select, FiltersByPosition) {
  auto a = SpMat<double>::from_dense(
      3, 3, std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8, 9});
  auto diag_only = select(a, [](Index i, Index j, double) { return i == j; });
  EXPECT_EQ(diag_only.to_dense(),
            (std::vector<double>{1, 0, 0, 0, 5, 0, 0, 0, 9}));
}

TEST(Select, FiltersByValue) {
  auto a = random_sparse_int(10, 10, 0.5, 103);
  auto big = select(a, [](Index, Index, double v) { return v >= 3.0; });
  for (const auto& t : big.to_triples()) EXPECT_GE(t.val, 3.0);
  for (const auto& t : a.to_triples()) {
    if (t.val >= 3.0) {
      EXPECT_EQ(big.at(t.row, t.col), t.val);
    }
  }
}

TEST(Reduce, RowSumsMatchDense) {
  auto a = random_sparse_int(12, 7, 0.3, 104);
  const auto sums = row_sums(a);
  const auto ad = a.to_dense();
  for (Index i = 0; i < 12; ++i) {
    double ref = 0;
    for (Index j = 0; j < 7; ++j) ref += ad[static_cast<std::size_t>(i) * 7 + j];
    EXPECT_DOUBLE_EQ(sums[static_cast<std::size_t>(i)], ref);
  }
}

TEST(Reduce, ColSumsMatchDense) {
  auto a = random_sparse_int(9, 11, 0.3, 105);
  const auto sums = col_sums(a);
  const auto ad = a.to_dense();
  for (Index j = 0; j < 11; ++j) {
    double ref = 0;
    for (Index i = 0; i < 9; ++i) ref += ad[static_cast<std::size_t>(i) * 11 + j];
    EXPECT_DOUBLE_EQ(sums[static_cast<std::size_t>(j)], ref);
  }
}

TEST(Reduce, CustomMonoidMax) {
  auto a = SpMat<double>::from_triples(2, 3, {{0, 0, 5.0}, {0, 2, 9.0}, {1, 1, 2.0}});
  const auto maxes = reduce_rows(
      a, [](double x, double y) { return std::max(x, y); }, -1.0);
  EXPECT_EQ(maxes, (std::vector<double>{9.0, 2.0}));
}

TEST(Reduce, EmptyRowYieldsInit) {
  SpMat<double> a(3, 3);
  const auto sums = row_sums(a);
  EXPECT_EQ(sums, (std::vector<double>{0.0, 0.0, 0.0}));
}

TEST(Reduce, AllSumsEverything) {
  auto a = SpMat<double>::from_triples(2, 2, {{0, 0, 1.5}, {1, 1, 2.5}});
  EXPECT_DOUBLE_EQ(reduce_all(a, [](double x, double y) { return x + y; }), 4.0);
}

TEST(Reduce, RowNnzCountsDegrees) {
  auto a = SpMat<double>::from_triples(3, 3, {{0, 0, 1.0}, {0, 1, 1.0}, {2, 2, 1.0}});
  EXPECT_EQ(row_nnz_counts(a), (std::vector<Index>{2, 0, 1}));
}

// Apply(Reduce) composition property: sum of squares equals reducing the
// squared matrix — over a parameter grid.
class ApplyReduceGrid : public ::testing::TestWithParam<double> {};

TEST_P(ApplyReduceGrid, SumOfSquaresComposition) {
  auto a = random_sparse_int(20, 20, GetParam(), 106);
  auto squared = apply(a, [](double v) { return v * v; });
  const auto via_apply = reduce_all(squared, [](double x, double y) { return x + y; });
  double direct = 0;
  for (double v : a.values()) direct += v * v;
  EXPECT_DOUBLE_EQ(via_apply, direct);
}

INSTANTIATE_TEST_SUITE_P(Densities, ApplyReduceGrid,
                         ::testing::Values(0.0, 0.1, 0.5, 1.0));

}  // namespace
}  // namespace graphulo::la
