// Dense matrix helpers and the sparse*dense products NMF relies on.

#include <vector>

#include <gtest/gtest.h>

#include "la/dense.hpp"
#include "la/spmm.hpp"
#include "test_helpers.hpp"

namespace graphulo::la {
namespace {

using graphulo::testing::random_sparse;

TEST(Dense, ConstructionAndIndexing) {
  Dense<double> m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m(1, 2), 1.5);
  m(1, 2) = 7.0;
  EXPECT_EQ(m(1, 2), 7.0);
}

TEST(Dense, FromRowsValidates) {
  EXPECT_THROW(Dense<double>::from_rows(2, 2, {1.0}), std::invalid_argument);
  auto m = Dense<double>::from_rows(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(m(1, 0), 3.0);
}

TEST(Dense, EyeAndMatmulIdentity) {
  auto m = Dense<double>::from_rows(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(matmul(m, Dense<double>::eye(2)), m);
  EXPECT_EQ(matmul(Dense<double>::eye(2), m), m);
}

TEST(Dense, MatmulKnownProduct) {
  auto a = Dense<double>::from_rows(2, 3, {1, 2, 3, 4, 5, 6});
  auto b = Dense<double>::from_rows(3, 2, {7, 8, 9, 10, 11, 12});
  auto c = matmul(a, b);
  EXPECT_EQ(c, Dense<double>::from_rows(2, 2, {58, 64, 139, 154}));
  EXPECT_THROW(matmul(a, a), std::invalid_argument);
}

TEST(Dense, TransposedSwapsIndices) {
  auto a = Dense<double>::from_rows(2, 3, {1, 2, 3, 4, 5, 6});
  auto t = a.transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t(2, 1), 6.0);
  EXPECT_EQ(t.transposed(), a);
}

TEST(Dense, LincombAndNorms) {
  auto a = Dense<double>::from_rows(1, 2, {3, 4});
  auto b = Dense<double>::from_rows(1, 2, {1, 1});
  EXPECT_EQ(lincomb(2.0, a, -1.0, b), Dense<double>::from_rows(1, 2, {5, 7}));
  EXPECT_DOUBLE_EQ(fro_norm(a), 5.0);
  EXPECT_DOUBLE_EQ(fro_diff(a, a), 0.0);
  EXPECT_DOUBLE_EQ(fro_diff(a, b), std::sqrt(4.0 + 9.0));
}

TEST(Dense, RowAndColNorms) {
  auto a = Dense<double>::from_rows(2, 2, {1, -2, 3, 4});
  EXPECT_DOUBLE_EQ(max_row_sum(a), 7.0);
  EXPECT_DOUBLE_EQ(max_col_sum(a), 6.0);
}

TEST(SpMM, SparseTimesDenseMatchesDense) {
  auto a = random_sparse(15, 10, 0.3, 121);
  Dense<double> b(10, 4);
  for (Index i = 0; i < 10; ++i) {
    for (Index j = 0; j < 4; ++j) b(i, j) = static_cast<double>(i + j);
  }
  auto c = spmm(a, b);
  const auto ad = a.to_dense();
  for (Index i = 0; i < 15; ++i) {
    for (Index j = 0; j < 4; ++j) {
      double ref = 0;
      for (Index k = 0; k < 10; ++k) {
        ref += ad[static_cast<std::size_t>(i) * 10 + k] * b(k, j);
      }
      EXPECT_NEAR(c(i, j), ref, 1e-12);
    }
  }
}

TEST(SpMM, DenseTimesSparseMatchesDense) {
  auto a = random_sparse(10, 12, 0.3, 122);
  Dense<double> b(3, 10);
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 10; ++j) b(i, j) = static_cast<double>(i * j % 5);
  }
  auto c = mmsp(b, a);
  const auto ad = a.to_dense();
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 12; ++j) {
      double ref = 0;
      for (Index k = 0; k < 10; ++k) {
        ref += b(i, k) * ad[static_cast<std::size_t>(k) * 12 + j];
      }
      EXPECT_NEAR(c(i, j), ref, 1e-12);
    }
  }
}

TEST(SpMM, ShapeMismatchThrows) {
  SpMat<double> a(3, 4);
  Dense<double> b(5, 2);
  EXPECT_THROW(spmm(a, b), std::invalid_argument);
  EXPECT_THROW(mmsp(b, a), std::invalid_argument);
}

TEST(SpMM, FroDiffSparseDenseMatchesExplicit) {
  auto a = random_sparse(8, 9, 0.3, 123);
  Dense<double> w(8, 3), h(3, 9);
  util::Xoshiro256 rng(7);
  for (auto& v : w.data()) v = rng.uniform();
  for (auto& v : h.data()) v = rng.uniform();
  const double fast = fro_diff_sparse_dense(a, w, h);
  // Explicit: densify A and W*H.
  auto wh = matmul(w, h);
  const auto ad = a.to_dense();
  double slow = 0;
  for (Index i = 0; i < 8; ++i) {
    for (Index j = 0; j < 9; ++j) {
      const double d = ad[static_cast<std::size_t>(i) * 9 + j] - wh(i, j);
      slow += d * d;
    }
  }
  EXPECT_NEAR(fast, std::sqrt(slow), 1e-12);
}

}  // namespace
}  // namespace graphulo::la
