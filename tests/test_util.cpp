// Unit tests for src/util: thread pool, parallel loops, RNG, Zipf,
// statistics, string helpers, CSV escaping, table printing, logging.

#include <atomic>
#include <cmath>
#include <random>
#include <set>
#include <string_view>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/lz.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table_printer.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"
#include "util/zipf.hpp"

namespace graphulo::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f1 = pool.submit([] { return 7; });
  auto f2 = pool.submit([](int x) { return x * 2; }, 21);
  EXPECT_EQ(f1.get(), 7);
  EXPECT_EQ(f2.get(), 42);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(5000);
  parallel_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); },
               {.grain = 64});
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(10, 10, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, PropagatesBodyException) {
  EXPECT_THROW(
      parallel_for(0, 100, [](std::size_t i) {
        if (i == 50) throw std::runtime_error("body");
      }, {.grain = 1}),
      std::runtime_error);
}

TEST(ParallelReduce, SumsRange) {
  const auto sum = parallel_reduce<long>(
      1, 1001, 0,
      [](std::size_t lo, std::size_t hi) {
        long s = 0;
        for (std::size_t i = lo; i < hi; ++i) s += static_cast<long>(i);
        return s;
      },
      [](long a, long b) { return a + b; }, {.grain = 37});
  EXPECT_EQ(sum, 500500);
}

TEST(Rng, DeterministicBySeed) {
  Xoshiro256 a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c.next();
  }
  Xoshiro256 a2(123), c2(124);
  bool all_equal = true;
  for (int i = 0; i < 100; ++i) {
    if (a2.next() != c2.next()) all_equal = false;
  }
  EXPECT_FALSE(all_equal);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntInRangeAndRoughlyUniform) {
  Xoshiro256 rng(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto v = rng.uniform_int(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(Rng, NormalMeanAndVariance) {
  Xoshiro256 rng(11);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, JumpProducesDisjointStream) {
  Xoshiro256 a(5);
  Xoshiro256 b(5);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Hash64, DistinctForDistinctInputs) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(hash64(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Zipf, ExponentZeroIsUniform) {
  ZipfSampler zipf(4, 0.0);
  for (std::size_t k = 0; k < 4; ++k) EXPECT_NEAR(zipf.pmf(k), 0.25, 1e-12);
}

TEST(Zipf, SkewFavorsLowRanks) {
  ZipfSampler zipf(100, 1.2);
  EXPECT_GT(zipf.pmf(0), zipf.pmf(1));
  EXPECT_GT(zipf.pmf(1), zipf.pmf(10));
  Xoshiro256 rng(3);
  int rank0 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (zipf.sample(rng) == 0) ++rank0;
  }
  EXPECT_NEAR(static_cast<double>(rank0) / n, zipf.pmf(0), 0.02);
}

TEST(Zipf, RejectsEmptyDomain) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

TEST(Stats, SummaryOfKnownSample) {
  const std::vector<double> v = {1, 2, 3, 4, 5};
  const auto s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_NEAR(s.stdev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, EmptySummaryIsZero) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v = {10, 20};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 15.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 20.0);
}

TEST(Stats, GeomeanAndGuards) {
  const std::vector<double> v = {1.0, 4.0};
  EXPECT_DOUBLE_EQ(geomean(v), 2.0);
  EXPECT_THROW(geomean({}), std::invalid_argument);
  EXPECT_THROW(geomean({{-1.0}}), std::invalid_argument);
}

TEST(Stats, HumanFormats) {
  EXPECT_EQ(human_rate(1500.0), "1.50K/s");
  EXPECT_EQ(human_bytes(1536.0), "1.50 KiB");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto f = split("a||b", '|');
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "");
  EXPECT_EQ(f[2], "b");
}

TEST(Strings, JoinRoundTrip) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(join(parts, ','), "x,y,z");
  EXPECT_EQ(split(join(parts, ','), ','), parts);
}

TEST(Strings, ZeroPadSorts) {
  EXPECT_EQ(zero_pad(7, 4), "0007");
  EXPECT_LT(zero_pad(9, 4), zero_pad(10, 4));  // lexicographic == numeric
}

TEST(Strings, StartsWithAndLower) {
  EXPECT_TRUE(starts_with("tweet|0001", "tweet|"));
  EXPECT_FALSE(starts_with("tw", "tweet|"));
  EXPECT_EQ(to_lower("AbC"), "abc");
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(TablePrinter, AlignsColumnsAndPadsShortRows) {
  TablePrinter t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer"});
  const std::string s = t.to_string("demo");
  EXPECT_NE(s.find("=== demo ==="), std::string::npos);
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TablePrinter, FormatsDoubles) {
  EXPECT_EQ(TablePrinter::fmt(1.23456, 2), "1.23");
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.millis(), t.seconds());  // ms value >= s value numerically
}

TEST(Log, ParseAndThreshold) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("WARN"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("nonsense"), LogLevel::kInfo);
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(saved);
}

TEST(Log, TryParseDistinguishesBadInput) {
  LogLevel level = LogLevel::kError;
  EXPECT_TRUE(try_parse_log_level("Debug", level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(try_parse_log_level("warning", level));
  EXPECT_EQ(level, LogLevel::kWarn);
  level = LogLevel::kError;
  EXPECT_FALSE(try_parse_log_level("nonsense", level));
  EXPECT_EQ(level, LogLevel::kError);  // untouched on failure

  LogFormat format = LogFormat::kPlain;
  EXPECT_TRUE(try_parse_log_format("KV", format));
  EXPECT_EQ(format, LogFormat::kKv);
  EXPECT_TRUE(try_parse_log_format("plain", format));
  EXPECT_EQ(format, LogFormat::kPlain);
  EXPECT_FALSE(try_parse_log_format("json", format));
}

TEST(Log, PlainLineHasTimestampLevelAndThreadId) {
  const std::string line =
      format_log_line(LogLevel::kWarn, "hello world", LogFormat::kPlain);
  // 2026-08-06T12:34:56.789Z [WARN] (tid N) hello world
  EXPECT_NE(line.find("Z [WARN] (tid "), std::string::npos);
  EXPECT_NE(line.find(") hello world"), std::string::npos);
  // ISO-8601 prefix: YYYY-MM-DDTHH:MM:SS.mmmZ
  ASSERT_GE(line.size(), 24u);
  EXPECT_EQ(line[4], '-');
  EXPECT_EQ(line[7], '-');
  EXPECT_EQ(line[10], 'T');
  EXPECT_EQ(line[13], ':');
  EXPECT_EQ(line[16], ':');
  EXPECT_EQ(line[19], '.');
  EXPECT_EQ(line[23], 'Z');
}

TEST(Log, KvLineQuotesAndEscapesMessage) {
  const std::string line = format_log_line(
      LogLevel::kError, "bad \"value\" seen", LogFormat::kKv);
  EXPECT_EQ(line.rfind("ts=", 0), 0u);
  EXPECT_NE(line.find(" level=error "), std::string::npos);
  EXPECT_NE(line.find(" tid="), std::string::npos);
  EXPECT_NE(line.find(" msg=\"bad \\\"value\\\" seen\""), std::string::npos);
}

TEST(Log, FormatSwitchIsGlobal) {
  const LogFormat saved = log_format();
  set_log_format(LogFormat::kKv);
  EXPECT_EQ(log_format(), LogFormat::kKv);
  set_log_format(saved);
}

TEST(Stats, PercentileSingleSampleIsThatSample) {
  const std::vector<double> v = {42.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 42.0);
  const auto s = summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.p50, 42.0);
  EXPECT_DOUBLE_EQ(s.p95, 42.0);
  EXPECT_DOUBLE_EQ(s.p99, 42.0);
  EXPECT_DOUBLE_EQ(s.stdev, 0.0);
}

TEST(Stats, PercentileEndpointsAreMinAndMax) {
  const std::vector<double> v = {5, 1, 3, 2, 4};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
}

TEST(Stats, PercentileTwoSampleInterpolation) {
  const std::vector<double> v = {10, 20};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 12.5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.75), 17.5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.99), 19.9);
}

TEST(Stats, PercentileRejectsEmptySample) {
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
}

TEST(Stats, HumanRateUnitBoundaries) {
  EXPECT_EQ(human_rate(0.0), "0.00/s");
  EXPECT_EQ(human_rate(999.0), "999.00/s");
  EXPECT_EQ(human_rate(1000.0), "1.00K/s");
  EXPECT_EQ(human_rate(1000.0 * 1000.0), "1.00M/s");
  EXPECT_EQ(human_rate(1000.0 * 1000.0 * 1000.0), "1.00G/s");
}

TEST(Stats, HumanBytesUnitBoundaries) {
  EXPECT_EQ(human_bytes(0.0), "0.00 B");
  EXPECT_EQ(human_bytes(1023.0), "1023.00 B");
  EXPECT_EQ(human_bytes(1024.0), "1.00 KiB");
  EXPECT_EQ(human_bytes(1024.0 * 1024.0), "1.00 MiB");
  EXPECT_EQ(human_bytes(1024.0 * 1024.0 * 1024.0), "1.00 GiB");
  EXPECT_EQ(human_bytes(1024.0 * 1024.0 * 1024.0 * 1024.0), "1.00 TiB");
}

TEST(Lz, RoundTripsAssortedInputs) {
  std::mt19937 rng(8080);
  auto check = [](const std::string& in) {
    const std::string packed = lz_compress(in);
    std::string out;
    ASSERT_TRUE(lz_decompress(packed, out, in.size())) << in.size();
    EXPECT_EQ(out, in);
  };
  check("");
  check("a");
  check("abc");
  check(std::string(100000, 'x'));  // extreme run: overlapping matches
  check("abcdabcdabcdabcdabcd");
  {
    // Incompressible: random bytes must still round-trip (stored as
    // literals when no matches exist).
    std::string noise(4096, '\0');
    for (auto& c : noise) c = static_cast<char>(rng());
    check(noise);
  }
  {
    // Prefix-heavy text shaped like encoded key blocks.
    std::string keys;
    for (int i = 0; i < 2000; ++i) {
      keys += "vertex/" + std::to_string(i % 97) + "/out/edge\x01";
    }
    const std::string packed = lz_compress(keys);
    EXPECT_LT(packed.size(), keys.size() / 2) << "repetitive input must shrink";
    check(keys);
  }
  for (int trial = 0; trial < 50; ++trial) {
    // Mixed compressibility: random-length runs of random chars.
    std::string s;
    while (s.size() < 1 + rng() % 9000) {
      s.append(1 + rng() % 40, static_cast<char>('a' + rng() % 8));
      if (rng() % 3 == 0) s.push_back(static_cast<char>(rng()));
    }
    check(s);
  }
}

TEST(Lz, DecompressRejectsMalformedStreams) {
  const std::string good = lz_compress("the quick brown fox the quick brown");
  std::string out;
  // Wrong expected size, both directions.
  EXPECT_FALSE(lz_decompress(good, out, 5));
  EXPECT_FALSE(lz_decompress(good, out, 4096));
  // Truncations must never crash, over-read, or silently yield wrong
  // data. (A truncation that drops only the redundant final empty
  // literal token still forms a complete stream — success is allowed
  // iff the output is exactly right.)
  const std::string original = "the quick brown fox the quick brown";
  for (std::size_t n = 0; n < good.size(); ++n) {
    if (lz_decompress(std::string_view(good.data(), n), out, 35)) {
      EXPECT_EQ(out, original) << "truncated to " << n;
    }
  }
  // Bogus offsets (pointing before the start of the output) rejected.
  std::string bogus;
  bogus.push_back(static_cast<char>(0x10));  // 1 literal, match code 0
  bogus.push_back('A');
  bogus.push_back(static_cast<char>(0x09));  // offset 9 > output size 1
  bogus.push_back(static_cast<char>(0x00));
  EXPECT_FALSE(lz_decompress(bogus, out, 40));
  // Offset 0 is never valid.
  bogus[2] = static_cast<char>(0x00);
  EXPECT_FALSE(lz_decompress(bogus, out, 40));
}

}  // namespace
}  // namespace graphulo::util
