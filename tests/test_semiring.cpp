// Property tests for the semiring policies: the axioms from Section II
// (associativity, commutativity of add, identities, annihilation) are
// checked on randomized operand triples. PlusAnd is intentionally NOT a
// semiring (see the Discussion in Section IV); its test documents which
// axiom fails.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "la/semiring.hpp"
#include "util/rng.hpp"

namespace graphulo::la {
namespace {

// Random small-integer doubles keep arithmetic exact so associativity
// holds bit-for-bit.
std::vector<double> random_operands(std::uint64_t seed, int count) {
  util::Xoshiro256 rng(seed);
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    v.push_back(static_cast<double>(rng.uniform_int(19)) - 9.0);
  }
  return v;
}

template <class SR>
void expect_semiring_axioms(const std::vector<double>& operands) {
  using T = typename SR::value_type;
  for (std::size_t i = 0; i + 2 < operands.size(); i += 3) {
    const T a = static_cast<T>(operands[i]);
    const T b = static_cast<T>(operands[i + 1]);
    const T c = static_cast<T>(operands[i + 2]);
    // add: associative, commutative, identity zero.
    EXPECT_EQ(SR::add(SR::add(a, b), c), SR::add(a, SR::add(b, c)));
    EXPECT_EQ(SR::add(a, b), SR::add(b, a));
    EXPECT_EQ(SR::add(a, SR::zero()), a);
    // mul: associative, identity one.
    EXPECT_EQ(SR::mul(SR::mul(a, b), c), SR::mul(a, SR::mul(b, c)));
    EXPECT_EQ(SR::mul(a, SR::one()), a);
    EXPECT_EQ(SR::mul(SR::one(), a), a);
    // zero annihilates.
    EXPECT_EQ(SR::mul(a, SR::zero()), SR::zero());
    EXPECT_EQ(SR::mul(SR::zero(), a), SR::zero());
    // distributivity.
    EXPECT_EQ(SR::mul(a, SR::add(b, c)), SR::add(SR::mul(a, b), SR::mul(a, c)));
  }
}

TEST(Semiring, PlusTimesAxioms) {
  expect_semiring_axioms<PlusTimes<double>>(random_operands(1, 300));
}

TEST(Semiring, MinPlusAxioms) {
  auto ops = random_operands(2, 300);
  ops.push_back(MinPlus<double>::zero());  // include infinity
  expect_semiring_axioms<MinPlus<double>>(ops);
}

TEST(Semiring, MaxPlusAxioms) {
  auto ops = random_operands(3, 300);
  ops.push_back(MaxPlus<double>::zero());
  expect_semiring_axioms<MaxPlus<double>>(ops);
}

TEST(Semiring, OrAndAxioms) {
  for (bool a : {false, true}) {
    for (bool b : {false, true}) {
      for (bool c : {false, true}) {
        EXPECT_EQ(OrAnd::add(OrAnd::add(a, b), c), OrAnd::add(a, OrAnd::add(b, c)));
        EXPECT_EQ(OrAnd::mul(a, OrAnd::add(b, c)),
                  OrAnd::add(OrAnd::mul(a, b), OrAnd::mul(a, c)));
      }
    }
    EXPECT_EQ(OrAnd::add(a, OrAnd::zero()), a);
    EXPECT_EQ(OrAnd::mul(a, OrAnd::one()), a);
    EXPECT_EQ(OrAnd::mul(a, OrAnd::zero()), OrAnd::zero());
  }
}

TEST(Semiring, MinMaxAxioms) {
  auto ops = random_operands(4, 300);
  expect_semiring_axioms<MinMax<double>>(ops);
}

TEST(Semiring, MinPlusIdentitiesBehaveAsPathLengths) {
  using SR = MinPlus<double>;
  // "No path" (infinity) never wins over a real path, and concatenating
  // with an infinite leg yields no path.
  EXPECT_EQ(SR::add(3.0, SR::zero()), 3.0);
  EXPECT_EQ(SR::mul(3.0, SR::zero()), SR::zero());
  EXPECT_EQ(SR::mul(3.0, SR::one()), 3.0);
  EXPECT_EQ(SR::mul(2.0, 5.0), 7.0);
}

TEST(Semiring, PlusAndCountsOverlapsButBreaksMulIdentity) {
  using SR = PlusAnd<double>;
  // The useful behaviour: mul is an AND indicator.
  EXPECT_EQ(SR::mul(2.0, 3.0), 1.0);
  EXPECT_EQ(SR::mul(0.0, 3.0), 0.0);
  EXPECT_EQ(SR::mul(2.0, 0.0), 0.0);
  // The documented axiom violation (Section IV): one() is not a true
  // multiplicative identity, since mul collapses magnitudes.
  EXPECT_NE(SR::mul(2.0, SR::one()), 2.0);
}

TEST(Semiring, IsZeroMatchesAdditiveIdentity) {
  EXPECT_TRUE(is_zero<PlusTimes<double>>(0.0));
  EXPECT_FALSE(is_zero<PlusTimes<double>>(1.0));
  EXPECT_TRUE(is_zero<MinPlus<double>>(MinPlus<double>::zero()));
  EXPECT_FALSE(is_zero<MinPlus<double>>(0.0));  // 0 is one(), not zero()
}

}  // namespace
}  // namespace graphulo::la
