// The RPC layer and the distributed verb semantics, in-process:
//   * proto codec round trips plus truncation / bit-flip / hostile-count
//     fuzz sweeps (mirroring the test_io RFL3 corruption sweep),
//   * frame-level torn-frame and corruption rejection over a real
//     loopback socket pair,
//   * RpcServer + TabletService + RpcClient coverage of every verb,
//     the status→exception mapping, exactly-once write dedup, lease
//     expiry + resume, and propagated deadlines,
//   * distributed::Cluster scan/writer surfaces and a two-server
//     TableMult checked against the client-side spgemm reference.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "assoc/table_io.hpp"
#include "core/tablemult.hpp"
#include "distributed/cluster.hpp"
#include "distributed/proto.hpp"
#include "distributed/tablet_service.hpp"
#include "la/la.hpp"
#include "nosql/admission.hpp"
#include "nosql/codec.hpp"
#include "nosql/instance.hpp"
#include "nosql/scanner.hpp"
#include "rpc/client.hpp"
#include "rpc/server.hpp"
#include "rpc/socket.hpp"
#include "rpc/wire.hpp"
#include "test_helpers.hpp"
#include "util/checksum.hpp"
#include "util/fault.hpp"

namespace graphulo {
namespace {

using namespace distributed;
using nosql::wire::WireError;

nosql::Key sample_key() {
  nosql::Key k;
  k.row = "v|0000042";
  k.family = "deg";
  k.qualifier = "out";
  k.visibility = "public";
  k.ts = 12345;
  k.deleted = false;
  return k;
}

proto::WriteBatchRequest sample_write_batch() {
  proto::WriteBatchRequest req;
  req.table = "A";
  req.writer_id = "tm/7/1";
  req.first_seq = 41;
  nosql::Mutation m1("v|0000001");
  m1.put("f", "q", nosql::encode_double(2.5));
  m1.put_delete("f", "old");
  nosql::Mutation m2("v|0000002");
  m2.put("f", "q", nosql::encode_double(-1.0));
  req.mutations = {m1, m2};
  return req;
}

proto::ScanOpenRequest sample_scan_open() {
  proto::ScanOpenRequest req;
  req.table = "A";
  req.range = nosql::Range::half_open_row_range("v|0000001", "v|0000009");
  req.batch_cells = 64;
  req.has_resume = true;
  req.resume_after = sample_key();
  return req;
}

void expect_range_eq(const nosql::Range& a, const nosql::Range& b) {
  EXPECT_EQ(a.has_start, b.has_start);
  EXPECT_EQ(a.start_inclusive, b.start_inclusive);
  EXPECT_EQ(a.has_end, b.has_end);
  EXPECT_EQ(a.end_inclusive, b.end_inclusive);
  if (a.has_start && b.has_start) {
    EXPECT_EQ(a.start, b.start);
  }
  if (a.has_end && b.has_end) {
    EXPECT_EQ(a.end, b.end);
  }
}

// ---- proto codec --------------------------------------------------------

TEST(ProtoCodec, WriteBatchRoundTrip) {
  const auto req = sample_write_batch();
  const auto back = proto::decode_write_batch_request(proto::encode(req));
  EXPECT_EQ(back.table, req.table);
  EXPECT_EQ(back.writer_id, req.writer_id);
  EXPECT_EQ(back.first_seq, req.first_seq);
  ASSERT_EQ(back.mutations.size(), req.mutations.size());
  for (std::size_t i = 0; i < req.mutations.size(); ++i) {
    EXPECT_EQ(back.mutations[i].row(), req.mutations[i].row());
    ASSERT_EQ(back.mutations[i].updates().size(),
              req.mutations[i].updates().size());
  }

  proto::WriteBatchResponse resp;
  resp.applied = 7;
  resp.skipped = 3;
  const auto rback = proto::decode_write_batch_response(proto::encode(resp));
  EXPECT_EQ(rback.applied, 7u);
  EXPECT_EQ(rback.skipped, 3u);
}

TEST(ProtoCodec, ScanMessagesRoundTrip) {
  const auto open = sample_scan_open();
  const auto oback = proto::decode_scan_open_request(proto::encode(open));
  EXPECT_EQ(oback.table, open.table);
  expect_range_eq(oback.range, open.range);
  EXPECT_EQ(oback.batch_cells, open.batch_cells);
  EXPECT_EQ(oback.has_resume, open.has_resume);
  EXPECT_EQ(oback.resume_after, open.resume_after);

  proto::ScanOpenResponse lease;
  lease.lease_id = 0xDEADBEEFCAFEull;
  EXPECT_EQ(proto::decode_scan_open_response(proto::encode(lease)).lease_id,
            lease.lease_id);

  proto::ScanContinueRequest cont;
  cont.lease_id = 99;
  EXPECT_EQ(proto::decode_scan_continue_request(proto::encode(cont)).lease_id,
            99u);

  proto::ScanContinueResponse cells;
  cells.done = true;
  cells.cells.push_back({sample_key(), "3.5"});
  nosql::Key k2 = sample_key();
  k2.row = "v|0000043";
  k2.deleted = true;
  cells.cells.push_back({k2, ""});
  const auto cback = proto::decode_scan_continue_response(proto::encode(cells));
  EXPECT_EQ(cback.done, true);
  ASSERT_EQ(cback.cells.size(), 2u);
  EXPECT_EQ(cback.cells[0], cells.cells[0]);
  EXPECT_EQ(cback.cells[1], cells.cells[1]);

  proto::ScanCloseRequest close_req;
  close_req.lease_id = 123;
  EXPECT_EQ(proto::decode_scan_close_request(proto::encode(close_req)).lease_id,
            123u);
}

TEST(ProtoCodec, ControlMessagesRoundTrip) {
  proto::TabletLookupRequest lookup;
  lookup.has_table = true;
  lookup.table = "edges";
  const auto lback = proto::decode_tablet_lookup_request(proto::encode(lookup));
  EXPECT_EQ(lback.has_table, true);
  EXPECT_EQ(lback.table, "edges");

  proto::TabletLookupResponse map;
  map.server_index = 1;
  map.server_count = 3;
  map.boundaries = {"v|0000100", "v|0000200"};
  map.table_exists = true;
  const auto mback = proto::decode_tablet_lookup_response(proto::encode(map));
  EXPECT_EQ(mback.server_index, 1u);
  EXPECT_EQ(mback.server_count, 3u);
  EXPECT_EQ(mback.boundaries, map.boundaries);
  EXPECT_EQ(mback.table_exists, true);

  proto::EnsureTableRequest ensure;
  ensure.table = "C";
  ensure.preset = "sum";
  const auto eback = proto::decode_ensure_table_request(proto::encode(ensure));
  EXPECT_EQ(eback.table, "C");
  EXPECT_EQ(eback.preset, "sum");

  proto::CompactTableRequest compact;
  compact.table = "C";
  EXPECT_EQ(proto::decode_compact_table_request(proto::encode(compact)).table,
            "C");

  proto::StatusResponse status;
  status.server_index = 2;
  status.tables = {"A", "B"};
  status.live_leases = 4;
  status.writes_applied = 1000;
  status.writes_skipped = 17;
  status.cells_scanned = 123456;
  const auto sback = proto::decode_status_response(proto::encode(status));
  EXPECT_EQ(sback.server_index, 2u);
  EXPECT_EQ(sback.tables, status.tables);
  EXPECT_EQ(sback.live_leases, 4u);
  EXPECT_EQ(sback.writes_applied, 1000u);
  EXPECT_EQ(sback.writes_skipped, 17u);
  EXPECT_EQ(sback.cells_scanned, 123456u);
}

/// Every proto decoder must reject every strict prefix of a valid
/// encoding (truncation can strike at any byte on a torn connection)
/// and trailing garbage after a complete message.
TEST(ProtoCodec, RejectsTruncationAtEveryLength) {
  const std::vector<std::pair<std::string, std::string>> encoded = {
      {"write_batch_request", proto::encode(sample_write_batch())},
      {"scan_open_request", proto::encode(sample_scan_open())},
      {"scan_continue_response",
       [] {
         proto::ScanContinueResponse m;
         m.cells.push_back({sample_key(), "1"});
         return proto::encode(m);
       }()},
      {"tablet_lookup_response",
       [] {
         proto::TabletLookupResponse m;
         m.server_count = 2;
         m.boundaries = {"v|0000100"};
         return proto::encode(m);
       }()},
      {"status_response",
       [] {
         proto::StatusResponse m;
         m.tables = {"A"};
         return proto::encode(m);
       }()},
  };
  const auto decode_any = [](const std::string& name, const std::string& body) {
    if (name == "write_batch_request") proto::decode_write_batch_request(body);
    if (name == "scan_open_request") proto::decode_scan_open_request(body);
    if (name == "scan_continue_response")
      proto::decode_scan_continue_response(body);
    if (name == "tablet_lookup_response")
      proto::decode_tablet_lookup_response(body);
    if (name == "status_response") proto::decode_status_response(body);
  };
  for (const auto& [name, body] : encoded) {
    ASSERT_GT(body.size(), 4u) << name;
    for (std::size_t len = 0; len < body.size(); ++len) {
      EXPECT_THROW(decode_any(name, body.substr(0, len)), WireError)
          << name << " truncated to " << len << " bytes not rejected";
    }
    EXPECT_THROW(decode_any(name, body + 'x'), WireError)
        << name << " with trailing garbage not rejected";
  }
}

/// Single-bit corruption sweep over every proto encoding: a flipped bit
/// may legally change decoded CONTENT (bodies carry no checksum — the
/// frame CRC owns integrity), but decoding must never crash, read out
/// of bounds, or allocate unboundedly. Anything structural throws
/// WireError; the ASan/TSan CI legs make the "never out of bounds" part
/// load-bearing.
TEST(ProtoCodec, BitFlipSweepNeverCrashes) {
  const std::vector<std::pair<std::string, std::string>> encoded = {
      {"write_batch_request", proto::encode(sample_write_batch())},
      {"scan_open_request", proto::encode(sample_scan_open())},
      {"scan_continue_response",
       [] {
         proto::ScanContinueResponse m;
         m.cells.push_back({sample_key(), "1"});
         m.cells.push_back({sample_key(), "2"});
         return proto::encode(m);
       }()},
      {"tablet_lookup_response",
       [] {
         proto::TabletLookupResponse m;
         m.server_count = 3;
         m.boundaries = {"v|0000100", "v|0000200"};
         return proto::encode(m);
       }()},
  };
  std::size_t rejected = 0, reinterpreted = 0;
  for (const auto& [name, body] : encoded) {
    for (std::size_t off = 0; off < body.size(); ++off) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string damaged = body;
        damaged[off] = static_cast<char>(damaged[off] ^ (1 << bit));
        try {
          if (name == "write_batch_request") {
            proto::decode_write_batch_request(damaged);
          } else if (name == "scan_open_request") {
            proto::decode_scan_open_request(damaged);
          } else if (name == "scan_continue_response") {
            proto::decode_scan_continue_response(damaged);
          } else {
            proto::decode_tablet_lookup_response(damaged);
          }
          ++reinterpreted;
        } catch (const WireError&) {
          ++rejected;
        }
      }
    }
  }
  // Most flips land in length prefixes / counts and must be rejected.
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(reinterpreted, 0u);  // flips inside string payloads are legal
}

/// A hostile list count (u32 max) must be rejected up front, not
/// trusted as a reserve() size.
TEST(ProtoCodec, RejectsHostileListCounts) {
  std::string body;
  nosql::wire::put_string(body, "A");        // table
  nosql::wire::put_string(body, "w");        // writer_id
  nosql::wire::put_u64(body, 0);             // first_seq
  nosql::wire::put_u32(body, 0xFFFFFFFFu);   // mutation count, no bytes behind
  EXPECT_THROW(proto::decode_write_batch_request(body), WireError);

  std::string scan;
  nosql::wire::put_u32(scan, 0xFFFFFF00u);   // cell count
  nosql::wire::put_u8(scan, 0);              // done
  EXPECT_THROW(proto::decode_scan_continue_response(scan), WireError);
}

// ---- request/response headers -------------------------------------------

TEST(WireHeaders, RequestResponseRoundTrip) {
  rpc::RequestHeader req;
  req.verb = rpc::Verb::kScanContinue;
  req.request_id = 77;
  req.deadline_ms = 1500;
  const auto payload = rpc::encode_request(req, "body-bytes");
  std::size_t offset = 0;
  const auto back = rpc::decode_request(payload, offset);
  EXPECT_EQ(back.verb, req.verb);
  EXPECT_EQ(back.request_id, 77u);
  EXPECT_EQ(back.deadline_ms, 1500u);
  EXPECT_EQ(payload.substr(offset), "body-bytes");

  rpc::ResponseHeader resp;
  resp.verb = rpc::Verb::kScanContinue;
  resp.request_id = 77;
  resp.status = rpc::Status::kNoSuchLease;
  const auto rpayload = rpc::encode_response(resp, "why");
  offset = 0;
  const auto rback = rpc::decode_response(rpayload, offset);
  EXPECT_EQ(rback.verb, resp.verb);
  EXPECT_EQ(rback.request_id, 77u);
  EXPECT_EQ(rback.status, rpc::Status::kNoSuchLease);
  EXPECT_EQ(rpayload.substr(offset), "why");
}

TEST(WireHeaders, RejectsUnknownVerbAndTruncation) {
  rpc::RequestHeader req;
  req.verb = rpc::Verb::kPing;
  auto payload = rpc::encode_request(req, "");
  payload[0] = static_cast<char>(rpc::kMaxVerb + 1);
  std::size_t offset = 0;
  EXPECT_THROW(rpc::decode_request(payload, offset), WireError);
  for (std::size_t len = 0; len < rpc::encode_request(req, "").size(); ++len) {
    std::size_t off = 0;
    EXPECT_THROW(
        rpc::decode_request(rpc::encode_request(req, "").substr(0, len), off),
        WireError)
        << len;
  }
}

// ---- framing over a real socket pair ------------------------------------

struct SocketPair {
  rpc::Listener listener;
  rpc::Socket client;
  rpc::Socket server;

  SocketPair() {
    listener = rpc::Listener::listen_tcp(0);
    client = rpc::Socket::connect_tcp("127.0.0.1", listener.port(),
                                      std::chrono::milliseconds(2000));
    server = listener.accept();
    // Corruption tests expect recv to fail fast, not hang.
    server.set_deadline(std::chrono::steady_clock::now() +
                        std::chrono::seconds(10));
  }
};

/// Hand-rolls a frame so tests can damage individual regions.
std::string raw_frame(const std::string& payload) {
  std::string frame;
  nosql::wire::put_u32(frame, rpc::kFrameMagic);
  nosql::wire::put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  nosql::wire::put_u32(frame, util::crc32(payload.data(), payload.size()));
  frame += payload;
  return frame;
}

TEST(Framing, RoundTripOverLoopback) {
  SocketPair pair;
  const std::string payload = "the quick brown graph";
  rpc::send_frame(pair.client, payload);
  EXPECT_EQ(rpc::recv_frame(pair.server), payload);
  // Hand-rolled framing agrees with send_frame's.
  const auto frame = raw_frame(payload);
  pair.client.send_all(frame.data(), frame.size());
  EXPECT_EQ(rpc::recv_frame(pair.server), payload);
}

/// A torn frame — connection dies mid-message — must surface as
/// ConnectionError at every tear point, never as a short/garbled read.
TEST(Framing, RejectsTornFrames) {
  const auto frame = raw_frame("payload-bytes-here");
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{11},
        rpc::kFrameHeaderBytes, frame.size() - 1}) {
    SocketPair pair;
    pair.client.send_all(frame.data(), keep);
    pair.client.close();
    EXPECT_THROW(rpc::recv_frame(pair.server), rpc::ConnectionError)
        << "torn after " << keep << " bytes";
  }
}

/// Bit flips anywhere in a frame — magic, length, crc, payload — are
/// rejected (the stream cannot be resynchronized, so the connection is
/// abandoned). Mirrors the RFL3 bit-flip sweep at the transport layer.
TEST(Framing, RejectsBitFlips) {
  const auto frame = raw_frame("integrity-checked-payload");
  const std::size_t offsets[] = {0,  2,                           // magic
                                 4,  6,                           // length
                                 8,  11,                          // crc
                                 rpc::kFrameHeaderBytes,          // payload
                                 frame.size() / 2, frame.size() - 1};
  for (const std::size_t off : offsets) {
    SocketPair pair;
    std::string damaged = frame;
    damaged[off] = static_cast<char>(damaged[off] ^ 0x10);
    pair.client.send_all(damaged.data(), damaged.size());
    pair.client.close();
    EXPECT_THROW(rpc::recv_frame(pair.server), rpc::ConnectionError)
        << "bit flip at offset " << off << " not detected";
  }
}

TEST(Framing, RejectsOversizedFrames) {
  SocketPair pair;
  std::string header;
  nosql::wire::put_u32(header, rpc::kFrameMagic);
  nosql::wire::put_u32(header, 1u << 30);  // 1 GiB claimed length
  nosql::wire::put_u32(header, 0);
  pair.client.send_all(header.data(), header.size());
  EXPECT_THROW(rpc::recv_frame(pair.server), rpc::ConnectionError);
  EXPECT_THROW(
      rpc::send_frame(pair.client, std::string(2048, 'x'), /*max=*/1024),
      std::length_error);
}

// ---- end-to-end: RpcServer + TabletService + RpcClient ------------------

/// One in-process tablet server: Instance + TabletService + RpcServer.
struct TestServer {
  nosql::Instance db;
  distributed::TabletService service;
  rpc::RpcServer server;

  explicit TestServer(std::vector<std::string> boundaries = {},
                      std::uint32_t server_index = 0,
                      TabletServiceOptions options = {})
      : service(db, std::move(boundaries), server_index, options),
        server(0,
               [this](rpc::Verb verb, const std::string& body,
                      std::optional<std::chrono::steady_clock::time_point>
                          deadline) { return service.handle(verb, body, deadline); }) {}

  Endpoint endpoint() const { return {"127.0.0.1", server.port()}; }
};

ClusterOptions fast_retries() {
  ClusterOptions options;
  options.retry.max_attempts = 4;
  options.retry.initial_backoff = std::chrono::microseconds(200);
  return options;
}

std::vector<nosql::Cell> drain(nosql::SortedKVIterator& it) {
  std::vector<nosql::Cell> out;
  while (it.has_top()) {
    out.push_back({it.top_key(), it.top_value()});
    it.next();
  }
  return out;
}

TEST(RpcEndToEnd, PingEchoesAndStatusReports) {
  TestServer ts;
  Cluster cluster({ts.endpoint()}, {}, fast_retries());
  cluster.ping_all();
  cluster.ensure_table("A", /*sum_combiner=*/false);
  EXPECT_TRUE(cluster.table_exists("A"));
  EXPECT_FALSE(cluster.table_exists("absent"));
  const auto status = cluster.status(0);
  EXPECT_EQ(status.server_index, 0u);
  EXPECT_EQ(status.tables, std::vector<std::string>{"A"});
  EXPECT_EQ(status.live_leases, 0u);
}

TEST(RpcEndToEnd, WriteThenScanRoundTrips) {
  TestServer ts;
  Cluster cluster({ts.endpoint()}, {}, fast_retries());
  cluster.ensure_table("T", false);
  {
    auto writer = cluster.writer("T", "w1");
    for (int i = 0; i < 50; ++i) {
      nosql::Mutation m(assoc::vertex_key(i));
      m.put("f", "q", nosql::encode_double(i * 0.5));
      writer->add_mutation(std::move(m));
    }
    writer->close();
    EXPECT_EQ(writer->mutations_written(), 50u);
    EXPECT_EQ(writer->last_error_kind(), nosql::MutationSink::ErrorKind::kNone);
  }
  auto it = cluster.scan("T", nosql::Range::all());
  const auto cells = drain(*it);
  ASSERT_EQ(cells.size(), 50u);
  EXPECT_EQ(cells.front().key.row, assoc::vertex_key(0));
  EXPECT_EQ(cells.back().key.row, assoc::vertex_key(49));
  EXPECT_TRUE(std::is_sorted(cells.begin(), cells.end(),
                             [](const nosql::Cell& a, const nosql::Cell& b) {
                               return a.key < b.key;
                             }));
  // Ranged scan clips.
  auto ranged = cluster.scan(
      "T", nosql::Range::half_open_row_range(assoc::vertex_key(10),
                                             assoc::vertex_key(20)));
  EXPECT_EQ(drain(*ranged).size(), 10u);
  // Re-seek restarts the remote scan.
  ranged->seek(nosql::Range::exact_row(assoc::vertex_key(15)));
  EXPECT_EQ(drain(*ranged).size(), 1u);
}

/// The exactly-once contract: a resent batch (same writer stream, same
/// first_seq) applies nothing and reports every mutation skipped.
TEST(RpcEndToEnd, WriteBatchResendIsDeduped) {
  TestServer ts;
  Cluster cluster({ts.endpoint()}, {}, fast_retries());
  cluster.ensure_table("T", false);

  proto::WriteBatchRequest req;
  req.table = "T";
  req.writer_id = "stream-1";
  req.first_seq = 0;
  for (int i = 0; i < 8; ++i) {
    nosql::Mutation m(assoc::vertex_key(i));
    m.put("f", "q", nosql::encode_double(1.0));
    req.mutations.push_back(std::move(m));
  }
  const auto first = proto::decode_write_batch_response(
      cluster.call(0, rpc::Verb::kWriteBatch, proto::encode(req)));
  EXPECT_EQ(first.applied, 8u);
  EXPECT_EQ(first.skipped, 0u);

  // Byte-identical resend: the lost-ack case.
  const auto resend = proto::decode_write_batch_response(
      cluster.call(0, rpc::Verb::kWriteBatch, proto::encode(req)));
  EXPECT_EQ(resend.applied, 0u);
  EXPECT_EQ(resend.skipped, 8u);

  // Overlapping continuation: seq 4..11 applies only the new suffix.
  req.first_seq = 4;
  const auto overlap = proto::decode_write_batch_response(
      cluster.call(0, rpc::Verb::kWriteBatch, proto::encode(req)));
  EXPECT_EQ(overlap.applied, 4u);
  EXPECT_EQ(overlap.skipped, 4u);

  const auto status = cluster.status(0);
  EXPECT_EQ(status.writes_applied, 12u);
  EXPECT_EQ(status.writes_skipped, 12u);

  // Nothing applied twice: 8 distinct rows, newest version each.
  auto it = cluster.scan("T", nosql::Range::all());
  std::set<std::string> rows;
  for (const auto& cell : drain(*it)) rows.insert(cell.key.row);
  EXPECT_EQ(rows.size(), 8u);
}

/// A mutation routed to a server that does not own its row is a
/// protocol violation, rejected as kBadRequest — never silently applied
/// to the wrong shard.
TEST(RpcEndToEnd, WrongServerRoutingRejected) {
  TestServer ts({"v|0000100"}, /*server_index=*/0);  // owns rows < v|0000100
  Cluster cluster({ts.endpoint(), ts.endpoint()}, {"v|0000100"},
                  fast_retries());
  cluster.ensure_table("T", false);
  proto::WriteBatchRequest req;
  req.table = "T";
  req.writer_id = "w";
  nosql::Mutation m(assoc::vertex_key(500));  // owned by server 1
  m.put("f", "q", "1");
  req.mutations.push_back(std::move(m));
  try {
    cluster.call(0, rpc::Verb::kWriteBatch, proto::encode(req));
    FAIL() << "misrouted mutation not rejected";
  } catch (const rpc::RemoteError& e) {
    EXPECT_EQ(e.status(), rpc::Status::kBadRequest);
  }
}

TEST(RpcEndToEnd, MissingTableReportsNoSuchTable) {
  TestServer ts;
  Cluster cluster({ts.endpoint()}, {}, fast_retries());
  proto::ScanOpenRequest open;
  open.table = "nope";
  open.range = nosql::Range::all();
  try {
    cluster.call(0, rpc::Verb::kScanOpen, proto::encode(open));
    FAIL() << "scan of missing table not rejected";
  } catch (const rpc::RemoteError& e) {
    EXPECT_EQ(e.status(), rpc::Status::kNoSuchTable);
  }
}

/// The server maps malformed bodies (WireError) to kBadRequest without
/// killing the connection — the next request on the same client works.
TEST(RpcEndToEnd, MalformedBodyIsBadRequestNotDisconnect) {
  TestServer ts;
  rpc::RpcClient client("127.0.0.1", ts.server.port());
  EXPECT_THROW(client.call(rpc::Verb::kWriteBatch, "garbage"),
               rpc::RemoteError);
  EXPECT_EQ(client.call(rpc::Verb::kPing, "still-alive"), "still-alive");
}

/// The full client-side status→exception mapping, driven by a handler
/// that returns whatever status the request names.
TEST(RpcEndToEnd, StatusMapsToTypedExceptions) {
  rpc::RpcServer server(
      0, [](rpc::Verb, const std::string& body,
            std::optional<std::chrono::steady_clock::time_point>) {
        rpc::RpcServer::Response resp;
        resp.status = static_cast<rpc::Status>(body[0]);
        resp.body = "injected";
        return resp;
      });
  rpc::RpcClient client("127.0.0.1", server.port());
  const auto call_status = [&](rpc::Status s) {
    client.call(rpc::Verb::kPing, std::string(1, static_cast<char>(s)));
  };
  EXPECT_NO_THROW(call_status(rpc::Status::kOk));
  EXPECT_THROW(call_status(rpc::Status::kTransient), util::TransientError);
  EXPECT_THROW(call_status(rpc::Status::kOverloaded), nosql::OverloadedError);
  EXPECT_THROW(call_status(rpc::Status::kDeadline), nosql::DeadlineExceeded);
  EXPECT_THROW(call_status(rpc::Status::kNoSuchLease), rpc::LeaseExpired);
  EXPECT_THROW(call_status(rpc::Status::kShuttingDown), rpc::ConnectionError);
  EXPECT_THROW(call_status(rpc::Status::kBadRequest), rpc::RemoteError);
  EXPECT_THROW(call_status(rpc::Status::kFatal), rpc::RemoteError);
}

/// The server-side exception→status mapping, driven by a handler that
/// throws whatever the request names.
TEST(RpcEndToEnd, ExceptionsMapToStatuses) {
  rpc::RpcServer server(
      0, [](rpc::Verb, const std::string& body,
            std::optional<std::chrono::steady_clock::time_point>)
            -> rpc::RpcServer::Response {
        if (body == "wire") throw WireError("bad bytes");
        if (body == "overload") throw nosql::OverloadedError("shed");
        if (body == "deadline") throw nosql::DeadlineExceeded("late");
        if (body == "lease") throw rpc::LeaseExpired("gone");
        if (body == "fatal") throw util::FatalError("broken");
        if (body == "transient") throw util::TransientError("blip");
        throw std::runtime_error("surprise");
      });
  rpc::RpcClient client("127.0.0.1", server.port());
  const auto status_of = [&](const std::string& body) {
    try {
      client.call(rpc::Verb::kPing, body);
    } catch (const rpc::RemoteError& e) {
      return e.status();
    } catch (const nosql::OverloadedError&) {
      return rpc::Status::kOverloaded;
    } catch (const nosql::DeadlineExceeded&) {
      return rpc::Status::kDeadline;
    } catch (const rpc::LeaseExpired&) {
      return rpc::Status::kNoSuchLease;
    } catch (const util::TransientError&) {
      return rpc::Status::kTransient;
    }
    return rpc::Status::kOk;
  };
  EXPECT_EQ(status_of("wire"), rpc::Status::kBadRequest);
  EXPECT_EQ(status_of("overload"), rpc::Status::kOverloaded);
  EXPECT_EQ(status_of("deadline"), rpc::Status::kDeadline);
  EXPECT_EQ(status_of("lease"), rpc::Status::kNoSuchLease);
  EXPECT_EQ(status_of("fatal"), rpc::Status::kFatal);
  EXPECT_EQ(status_of("transient"), rpc::Status::kTransient);
  EXPECT_EQ(status_of("other"), rpc::Status::kFatal);
}

/// Satellite check: a REMOTE admission shed classifies exactly like a
/// local one — the writer's last_error_kind() reports kOverloaded, so
/// callers keying backoff decisions off the kind need no remote special
/// case (DESIGN.md §14 mapping table).
TEST(RpcEndToEnd, RemoteOverloadClassifiesAsOverloaded) {
  rpc::RpcServer server(
      0, [](rpc::Verb verb, const std::string&,
            std::optional<std::chrono::steady_clock::time_point>)
            -> rpc::RpcServer::Response {
        if (verb == rpc::Verb::kWriteBatch) {
          return {rpc::Status::kOverloaded, "admission shed"};
        }
        return {rpc::Status::kOk, ""};
      });
  ClusterOptions options = fast_retries();
  options.retry.max_attempts = 2;
  Cluster cluster({{"127.0.0.1", server.port()}}, {}, options);
  auto writer = cluster.writer("T", "w");
  nosql::Mutation m("row");
  m.put("f", "q", "1");
  writer->add_mutation(std::move(m));
  EXPECT_THROW(writer->flush(), nosql::OverloadedError);
  EXPECT_EQ(writer->last_error_kind(),
            nosql::MutationSink::ErrorKind::kOverloaded);
  ASSERT_TRUE(writer->last_error().has_value());
  writer->abandon();
}

TEST(RpcEndToEnd, DrainingServerAnswersShuttingDown) {
  TestServer ts;
  rpc::RpcClient client("127.0.0.1", ts.server.port());
  EXPECT_EQ(client.call(rpc::Verb::kPing, "x"), "x");
  ts.server.set_draining(true);
  // kShuttingDown surfaces as ConnectionError: transient, so pooled
  // callers retry (elsewhere / later) instead of failing hard.
  EXPECT_THROW(client.call(rpc::Verb::kPing, "x"), rpc::ConnectionError);
}

/// An expired per-call deadline aborts the verb with DeadlineExceeded
/// (cooperative checks inside the write loop / scan fill).
TEST(RpcEndToEnd, ExpiredDeadlineAbortsVerb) {
  nosql::Instance db;
  db.create_table("T");
  TabletService service(db, {}, 0);
  proto::WriteBatchRequest req;
  req.table = "T";
  req.writer_id = "w";
  nosql::Mutation m("row");
  m.put("f", "q", "1");
  req.mutations.push_back(std::move(m));
  const auto past =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(5);
  EXPECT_THROW(
      service.handle(rpc::Verb::kWriteBatch, proto::encode(req), past),
      nosql::DeadlineExceeded);
}

/// Lease lifecycle: a reaped lease answers kNoSuchLease and the remote
/// scanner transparently re-opens from its last delivered key — the
/// drained cell stream has no gaps and no duplicates.
TEST(RpcEndToEnd, LeaseExpiryResumesWithoutGapsOrDuplicates) {
  TestServer ts;
  ClusterOptions options = fast_retries();
  options.scan_batch_cells = 4;  // many continues over 60 cells
  Cluster cluster({ts.endpoint()}, {}, options);
  cluster.ensure_table("T", false);
  {
    auto writer = cluster.writer("T", "w");
    for (int i = 0; i < 60; ++i) {
      nosql::Mutation m(assoc::vertex_key(i));
      m.put("f", "q", nosql::encode_double(i));
      writer->add_mutation(std::move(m));
    }
    writer->close();
  }
  auto it = cluster.scan("T", nosql::Range::all());
  std::vector<std::string> rows;
  std::size_t expiries = 0;
  while (it->has_top()) {
    rows.push_back(it->top_key().row);
    // Reap the lease mid-stream, twice, at different depths.
    if (rows.size() == 10 || rows.size() == 37) {
      ts.service.expire_leases_now();
      ++expiries;
    }
    it->next();
  }
  ASSERT_EQ(expiries, 2u);
  ASSERT_EQ(rows.size(), 60u);
  for (int i = 0; i < 60; ++i) EXPECT_EQ(rows[i], assoc::vertex_key(i));
  it.reset();
  EXPECT_EQ(ts.service.live_leases(), 0u);
}

TEST(RpcEndToEnd, ScanCloseReleasesLease) {
  TestServer ts;
  ClusterOptions options = fast_retries();
  options.scan_batch_cells = 2;
  Cluster cluster({ts.endpoint()}, {}, options);
  cluster.ensure_table("T", false);
  {
    auto writer = cluster.writer("T", "w");
    for (int i = 0; i < 20; ++i) {
      nosql::Mutation m(assoc::vertex_key(i));
      m.put("f", "q", "1");
      writer->add_mutation(std::move(m));
    }
    writer->close();
  }
  auto it = cluster.scan("T", nosql::Range::all());
  ASSERT_TRUE(it->has_top());
  EXPECT_EQ(ts.service.live_leases(), 1u);
  it.reset();  // destructor closes the lease
  EXPECT_EQ(ts.service.live_leases(), 0u);
}

/// A dropped connection mid-stream (injected at the send syscall) is
/// retried by the pooled call path: reconnect, resend, succeed.
TEST(RpcEndToEnd, InjectedSendFaultRetriesTransparently) {
  TestServer ts;
  Cluster cluster({ts.endpoint()}, {}, fast_retries());
  cluster.ping_all();  // connection up
  util::fault::reset();
  util::fault::arm(util::fault::sites::kRpcSend, {.fire_on_hits = {2}});
  cluster.ping_all();  // first send faults, retry reconnects
  util::fault::reset();
  EXPECT_TRUE(cluster.table_exists("absent") == false);
}

// ---- cluster-level TableMult --------------------------------------------

/// Two in-process servers, boundary mid-keyspace: the distributed
/// TableMult must agree cell-for-cell with the client-side spgemm
/// reference (small-integer inputs keep every partial-product sum
/// exact, so addition order cannot perturb it).
TEST(ClusterTableMult, TwoServerMatchesClientSide) {
  const la::Index n = 48;
  const auto a = testing::random_sparse_int(n, n, 0.12, 4242, 2);
  const std::string boundary = assoc::vertex_key(n / 2);

  TestServer s0({boundary}, 0);
  TestServer s1({boundary}, 1);
  Cluster cluster({s0.endpoint(), s1.endpoint()}, {boundary}, fast_retries());

  cluster.ensure_table("A", false);
  {
    auto writer = cluster.writer("A", "loader");
    for (const auto& t : a.to_triples()) {
      nosql::Mutation m(assoc::vertex_key(t.row));
      m.put(assoc::kValueFamily, assoc::vertex_key(t.col),
            nosql::encode_double(t.val));
      writer->add_mutation(std::move(m));
    }
    writer->close();
  }
  EXPECT_TRUE(cluster.table_exists("A"));
  // Both servers hold their row slice and only their slice.
  EXPECT_GT(cluster.status(0).writes_applied, 0u);
  EXPECT_GT(cluster.status(1).writes_applied, 0u);

  const auto stats = distributed::table_mult(cluster, "A", "A", "C",
                                             {.compact_result = true});
  EXPECT_GT(stats.rows_joined, 0u);
  EXPECT_EQ(stats.partitions.size(), 2u);  // one partition per server

  const auto expected = la::spgemm<la::PlusTimes<double>>(la::transpose(a), a);
  auto it = cluster.scan("C", nosql::Range::all());
  std::vector<la::Triple<double>> triples;
  for (const auto& cell : drain(*it)) {
    const auto value = nosql::decode_double(cell.value);
    ASSERT_TRUE(value.has_value());
    triples.push_back({assoc::parse_vertex_key(cell.key.row),
                       assoc::parse_vertex_key(cell.key.qualifier), *value});
  }
  EXPECT_EQ(la::SpMat<double>::from_triples(n, n, std::move(triples)),
            expected);
}

// ---- partition planning (satellite regression) --------------------------

/// Sampled split rows concentrate on hot rows when the key distribution
/// is skewed; planning must dedupe them so no partition range is empty.
TEST(PartitionPlanning, SkewedTablesNeverYieldEmptyRanges) {
  nosql::Instance db(4);
  db.create_table("T");
  // 3 distinct rows, 400 cells: every sampled split collides.
  for (int i = 0; i < 400; ++i) {
    nosql::Mutation m(assoc::vertex_key(i % 3));
    m.put("f", "q" + std::to_string(i), "1");
    db.apply("T", m);
  }
  for (const std::size_t target : {2u, 4u, 8u, 16u}) {
    const auto bounds = db.partition_rows("T", target);
    for (const auto& b : bounds) {
      EXPECT_FALSE(b.empty()) << "empty boundary masquerading as a bound";
    }
    EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
    EXPECT_EQ(std::adjacent_find(bounds.begin(), bounds.end()), bounds.end())
        << "duplicate boundary would create an empty partition range";
    // The ranges the boundaries induce are all non-empty.
    std::vector<std::string> cuts;
    cuts.push_back("");
    cuts.insert(cuts.end(), bounds.begin(), bounds.end());
    cuts.push_back("");
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
      EXPECT_FALSE(
          nosql::Range::half_open_row_range(cuts[i], cuts[i + 1]).is_empty());
    }
  }
}

}  // namespace
}  // namespace graphulo
