// Graphulo core: table I/O, server-side TableMult vs local SpGEMM,
// table-scope kernels, and the table-level graph algorithms.

#include <cmath>
#include <cstdint>
#include <tuple>

#include <gtest/gtest.h>

#include "assoc/table_io.hpp"
#include "core/table_algos.hpp"
#include "core/table_ops.hpp"
#include "core/table_scan.hpp"
#include "core/tablemult.hpp"
#include "gen/erdos.hpp"
#include "gen/rmat.hpp"
#include "la/la.hpp"
#include "nosql/codec.hpp"
#include "nosql/scanner.hpp"
#include "test_helpers.hpp"
#include "util/strings.hpp"

namespace graphulo::core {
namespace {

using assoc::read_matrix;
using assoc::write_matrix;
using graphulo::testing::paper_example_adjacency;
using graphulo::testing::random_sparse_int;

TEST(TableIO, MatrixRoundTrip) {
  nosql::Instance db(2);
  auto m = random_sparse_int(20, 15, 0.25, 201);
  write_matrix(db, "m", m);
  EXPECT_EQ(read_matrix(db, "m", 20, 15), m);
}

TEST(TableIO, AssocRoundTrip) {
  nosql::Instance db;
  auto a = assoc::AssocArray::from_entries(
      {{"alice", "bob", 1.5}, {"bob", "carol", -2.0}});
  assoc::write_assoc(db, "t", a);
  EXPECT_EQ(assoc::read_assoc(db, "t"), a);
}

TEST(TableIO, VertexKeyOrderMatchesNumericOrder) {
  EXPECT_LT(assoc::vertex_key(9), assoc::vertex_key(10));
  EXPECT_LT(assoc::vertex_key(99), assoc::vertex_key(100));
  EXPECT_EQ(assoc::parse_vertex_key(assoc::vertex_key(1234)), 1234);
  EXPECT_EQ(assoc::parse_vertex_key("garbage"), -1);
  EXPECT_EQ(assoc::parse_vertex_key("v|12x4"), -1);
}

TEST(TableScan, RowReaderGroupsRows) {
  nosql::Instance db;
  db.create_table("t");
  for (const char* row : {"a", "a", "b"}) {
    static int q = 0;
    nosql::Mutation m(row);
    std::string qual = "q";
    qual += std::to_string(q++);  // built in steps: GCC 12 -Wrestrict FP
    m.put("f", std::move(qual), "v");
    db.apply("t", m);
  }
  RowReader reader(open_table_scan(db, "t"));
  ASSERT_TRUE(reader.has_next());
  auto block = reader.next_row();
  EXPECT_EQ(block.row, "a");
  EXPECT_EQ(block.cells.size(), 2u);
  block = reader.next_row();
  EXPECT_EQ(block.row, "b");
  EXPECT_EQ(block.cells.size(), 1u);
  EXPECT_FALSE(reader.has_next());
}

// Counts the seek()/next() traffic RowReader sends down the stack.
class CountingIterator : public nosql::WrappingIterator {
 public:
  CountingIterator(nosql::IterPtr source, std::size_t* seeks,
                   std::size_t* nexts)
      : WrappingIterator(std::move(source)), seeks_(seeks), nexts_(nexts) {}

  void seek(const nosql::Range& range) override {
    ++*seeks_;
    WrappingIterator::seek(range);
  }
  void next() override {
    ++*nexts_;
    WrappingIterator::next();
  }

 private:
  std::size_t* seeks_;
  std::size_t* nexts_;
};

TEST(TableScan, AdvanceToSeeksInsteadOfDraining) {
  nosql::Instance db;
  db.create_table("t");
  constexpr std::uint64_t kRows = 200;
  for (std::uint64_t i = 0; i < kRows; ++i) {
    std::string row = "r";  // built in steps: GCC 12 -Wrestrict FP
    row += util::zero_pad(i, 3);
    nosql::Mutation m(std::move(row));
    m.put("f", "q", "v");
    db.apply("t", m);
  }
  std::size_t seeks = 0, nexts = 0;
  auto counting = std::make_unique<CountingIterator>(
      open_table_scan(db, "t"), &seeks, &nexts);
  // Small read-ahead so the skip target lies beyond the buffered block
  // and must go through the stack.
  RowReader reader(std::move(counting), nosql::Range::all(),
                   /*block_size=*/8);
  EXPECT_EQ(reader.next_row().row, "r000");
  const std::size_t nexts_before = nexts;
  reader.advance_to("r150");
  // The skip must be one seek on the stack, not a next() drain across
  // the 149 skipped rows.
  EXPECT_EQ(seeks, 1u);
  EXPECT_EQ(nexts, nexts_before);
  EXPECT_EQ(reader.seeks_performed(), 1u);
  ASSERT_TRUE(reader.has_next());
  EXPECT_EQ(reader.next_row().row, "r150");
  // Targets at or behind the current position are no-ops, never a
  // backwards seek (rows already passed stay passed).
  reader.advance_to("r100");
  EXPECT_EQ(seeks, 1u);
  EXPECT_EQ(reader.next_row().row, "r151");
  // A target inside the read-ahead block is skipped in place: no stack
  // seek, but the reader still lands on the first row >= target.
  reader.advance_to("r154");
  EXPECT_EQ(seeks, 1u);
  EXPECT_EQ(reader.seeks_performed(), 1u);
  EXPECT_EQ(reader.next_row().row, "r154");
}

TEST(TableScan, AdvanceToRespectsScanEndBound) {
  nosql::Instance db;
  db.create_table("t");
  for (std::uint64_t i = 0; i < 100; ++i) {
    std::string row = "r";
    row += util::zero_pad(i, 3);
    nosql::Mutation m(std::move(row));
    m.put("f", "q", "v");
    db.apply("t", m);
  }
  const auto range = nosql::Range::half_open_row_range("r010", "r050");
  RowReader reader(open_table_scan(db, "t", range), range);
  EXPECT_EQ(reader.next_row().row, "r010");
  // Seeking forward must keep the partition's end bound: a target past
  // the end exhausts the reader instead of spilling into [r050, ...).
  reader.advance_to("r060");
  EXPECT_FALSE(reader.has_next());
}

TEST(TableMult, MatchesLocalSpGemmTransposeProduct) {
  nosql::Instance db(2);
  auto a = random_sparse_int(12, 10, 0.3, 202);
  auto b = random_sparse_int(12, 9, 0.3, 203);
  write_matrix(db, "A", a);
  write_matrix(db, "B", b);
  const auto stats = table_mult(db, "A", "B", "C");
  EXPECT_GT(stats.partial_products, 0u);
  const auto expected =
      la::spgemm<la::PlusTimes<double>>(la::transpose(a), b);
  EXPECT_EQ(read_matrix(db, "C", 10, 9), expected);
}

TEST(TableMult, AccumulatesIntoExistingResult) {
  // Two multiplies into the same sink: C = A1^T B + A2^T B.
  nosql::Instance db;
  auto a1 = random_sparse_int(8, 6, 0.4, 204);
  auto a2 = random_sparse_int(8, 6, 0.4, 205);
  auto b = random_sparse_int(8, 7, 0.4, 206);
  write_matrix(db, "A1", a1);
  write_matrix(db, "A2", a2);
  write_matrix(db, "B", b);
  table_mult(db, "A1", "B", "C");
  table_mult(db, "A2", "B", "C");
  const auto expected = la::add(
      la::spgemm<la::PlusTimes<double>>(la::transpose(a1), b),
      la::spgemm<la::PlusTimes<double>>(la::transpose(a2), b));
  EXPECT_EQ(read_matrix(db, "C", 6, 7), expected);
}

TEST(TableMult, CompactionCollapsesPartialProducts) {
  nosql::Instance db;
  auto a = random_sparse_int(10, 8, 0.5, 207);
  write_matrix(db, "A", a);
  const auto stats =
      table_mult(db, "A", "A", "C", {.compact_result = true});
  const auto expected =
      la::spgemm<la::PlusTimes<double>>(la::transpose(a), a);
  // After compaction, the physical entry count equals the logical nnz:
  // the combiner folded the partial products on disk.
  EXPECT_GE(stats.partial_products, static_cast<std::size_t>(expected.nnz()));
  EXPECT_EQ(db.entry_estimate("C"), static_cast<std::size_t>(expected.nnz()));
  EXPECT_EQ(read_matrix(db, "C", 8, 8), expected);
}

TEST(TableMult, CustomMultiplyOp) {
  // min-multiply with sum-combine: counts handled by options.multiply.
  nosql::Instance db;
  auto a = random_sparse_int(6, 5, 0.5, 208, 3);
  write_matrix(db, "A", a);
  TableMultOptions opts;
  opts.multiply = [](double x, double y) { return std::min(x, y); };
  table_mult(db, "A", "A", "C", opts);
  // Reference: C(i,j) = sum_k min(A(k,i), A(k,j)).
  const auto ad = a.to_dense();
  const auto c = read_matrix(db, "C", 5, 5);
  for (la::Index i = 0; i < 5; ++i) {
    for (la::Index j = 0; j < 5; ++j) {
      double ref = 0;
      for (la::Index k = 0; k < 6; ++k) {
        const double x = ad[static_cast<std::size_t>(k) * 5 + i];
        const double y = ad[static_cast<std::size_t>(k) * 5 + j];
        if (x != 0 && y != 0) ref += std::min(x, y);
      }
      EXPECT_DOUBLE_EQ(c.at(i, j), ref) << i << "," << j;
    }
  }
}

TEST(TableMult, ClientSideBaselineAgrees) {
  nosql::Instance db;
  auto a = random_sparse_int(10, 8, 0.3, 209);
  auto b = random_sparse_int(10, 7, 0.3, 210);
  write_matrix(db, "A", a);
  write_matrix(db, "B", b);
  table_mult(db, "A", "B", "Cserver");
  client_side_mult(db, "A", "B", "Cclient", 10, 8, 7);
  EXPECT_EQ(read_matrix(db, "Cserver", 8, 7), read_matrix(db, "Cclient", 8, 7));
}

// Drains a table into (row, family, qualifier, decoded value) tuples —
// the physical cells, for exact comparisons after compaction.
std::vector<std::tuple<std::string, std::string, std::string, double>>
read_cells(nosql::Instance& db, const std::string& table) {
  std::vector<std::tuple<std::string, std::string, std::string, double>> out;
  nosql::Scanner scan(db, table);
  scan.for_each([&out](const nosql::Key& k, const nosql::Value& v) {
    const auto d = nosql::decode_double(v);
    ASSERT_TRUE(d.has_value()) << k.to_string();
    out.emplace_back(k.row, k.family, k.qualifier, *d);
  });
  return out;
}

TEST(TableMult, MultithreadedMatchesClientSideOnRmat) {
  gen::RmatParams p;
  p.scale = 7;
  p.edge_factor = 6;
  const auto a = gen::rmat_simple_adjacency(p);
  // tablets=1 exercises the sampled-boundary fallback (no split points);
  // tablets=4 exercises tablet-derived partitions.
  for (int tablets : {1, 4}) {
    nosql::Instance db(tablets);
    assoc::write_matrix(db, "A", a);
    if (tablets > 1) {
      std::vector<std::string> splits;
      for (int s = 1; s < tablets; ++s) {
        splits.push_back(assoc::vertex_key(a.rows() * s / tablets));
      }
      db.add_splits("A", splits);
    }
    const auto stats = table_mult(
        db, "A", "A", "Cs", {.compact_result = true, .num_workers = 4});
    EXPECT_GE(stats.partitions.size(), 2u) << "tablets=" << tablets;
    client_side_mult(db, "A", "A", "Cc", a.rows(), a.cols(), a.cols());
    db.compact("Cc");
    // Exact cell-by-cell agreement of the physical tables. Inputs are
    // 0/1 adjacency, so every partial-product sum is a small integer and
    // floating-point addition order cannot perturb it.
    const auto server = read_cells(db, "Cs");
    const auto client = read_cells(db, "Cc");
    EXPECT_GT(server.size(), 0u);
    EXPECT_EQ(server, client) << "tablets=" << tablets;
  }
}

TEST(TableMult, WorkerCountDoesNotChangeResult) {
  // 1-worker (serial path) vs 4-worker pipeline: identical tables.
  auto a = random_sparse_int(30, 25, 0.2, 212);
  for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    nosql::Instance db(2);
    write_matrix(db, "A", a);
    const auto stats = table_mult(db, "A", "A", "C",
                                  {.compact_result = true,
                                   .num_workers = workers});
    EXPECT_GT(stats.rows_joined, 0u);
    const auto expected =
        la::spgemm<la::PlusTimes<double>>(la::transpose(a), a);
    EXPECT_EQ(read_matrix(db, "C", 25, 25), expected) << workers;
  }
}

TEST(TableOps, ApplyRewritesValuesInPlace) {
  nosql::Instance db;
  auto a = random_sparse_int(8, 8, 0.4, 211);
  write_matrix(db, "A", a);
  table_apply(db, "A", [](double v) { return v * v; });
  const auto expected = la::apply(a, [](double v) { return v * v; });
  EXPECT_EQ(read_matrix(db, "A", 8, 8), expected);
}

TEST(TableOps, ScaleAndZeroPruning) {
  nosql::Instance db;
  auto a = random_sparse_int(6, 6, 0.5, 212);
  write_matrix(db, "A", a);
  table_scale(db, "A", 0.0);
  EXPECT_EQ(table_entry_count(db, "A"), 0u);
  EXPECT_EQ(db.entry_estimate("A"), 0u);  // physically pruned, not hidden
}

TEST(TableOps, FilterDeletesCells) {
  nosql::Instance db;
  auto a = random_sparse_int(10, 10, 0.4, 213, 5);
  write_matrix(db, "A", a);
  table_filter(db, "A",
               [](const nosql::Key&, double v) { return v >= 3.0; });
  const auto expected =
      la::select(a, [](la::Index, la::Index, double v) { return v >= 3.0; });
  EXPECT_EQ(read_matrix(db, "A", 10, 10), expected);
}

TEST(TableOps, ReduceAndSum) {
  nosql::Instance db(3);
  auto a = random_sparse_int(15, 15, 0.3, 214);
  write_matrix(db, "A", a);
  db.add_splits("A", {assoc::vertex_key(5), assoc::vertex_key(10)});
  double expected_sum = 0;
  double expected_max = 0;
  for (double v : a.values()) {
    expected_sum += v;
    expected_max = std::max(expected_max, v);
  }
  EXPECT_DOUBLE_EQ(table_sum(db, "A"), expected_sum);
  EXPECT_DOUBLE_EQ(table_reduce(
                       db, "A",
                       [](double x, double y) { return std::max(x, y); }, 0.0),
                   expected_max);
  nosql::Instance empty_db;
  empty_db.create_table("E");
  EXPECT_EQ(table_sum(empty_db, "E"), 0.0);
}

TEST(TableOps, RowDegrees) {
  nosql::Instance db;
  auto a = random_sparse_int(9, 9, 0.4, 215);
  write_matrix(db, "A", a);
  table_row_degrees(db, "A", "Adeg");
  const auto sums = la::row_sums(a);
  nosql::Scanner scan(db, "Adeg");
  std::size_t seen = 0;
  scan.for_each([&](const nosql::Key& k, const nosql::Value& v) {
    const auto i = assoc::parse_vertex_key(k.row);
    ASSERT_GE(i, 0);
    EXPECT_DOUBLE_EQ(nosql::decode_double(v).value_or(-1),
                     sums[static_cast<std::size_t>(i)]);
    ++seen;
  });
  // Rows with no entries are absent (associative arrays have no empty rows).
  std::size_t nonempty = 0;
  for (double s : sums) {
    if (s != 0) ++nonempty;
  }
  EXPECT_EQ(seen, nonempty);
}

TEST(TableOps, EwiseMultIntersectsTables) {
  nosql::Instance db;
  auto a = random_sparse_int(12, 12, 0.35, 216);
  auto b = random_sparse_int(12, 12, 0.35, 217);
  write_matrix(db, "A", a);
  write_matrix(db, "B", b);
  table_ewise_mult(db, "A", "B", "C");
  EXPECT_EQ(read_matrix(db, "C", 12, 12), la::hadamard(a, b));
}

TEST(TableAlgos, BfsLevelsMatchMatrixBfs) {
  nosql::Instance db;
  // Path 0-1-2-3 plus isolated 4: distances from 0 are 0,1,2,3.
  auto a = la::SpMat<double>::from_triples(
      5, 5, {{0, 1, 1.0}, {1, 0, 1.0}, {1, 2, 1.0}, {2, 1, 1.0},
             {2, 3, 1.0}, {3, 2, 1.0}});
  write_matrix(db, "A", a);
  const auto levels = adj_bfs(db, "A", {assoc::vertex_key(0)}, 10);
  EXPECT_EQ(levels.size(), 4u);  // vertex 4 unreachable
  EXPECT_EQ(levels.at(assoc::vertex_key(0)), 0);
  EXPECT_EQ(levels.at(assoc::vertex_key(1)), 1);
  EXPECT_EQ(levels.at(assoc::vertex_key(3)), 3);
}

TEST(TableAlgos, BfsHopLimitTruncates) {
  nosql::Instance db;
  auto a = la::SpMat<double>::from_triples(
      4, 4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}});
  write_matrix(db, "A", a);
  const auto levels = adj_bfs(db, "A", {assoc::vertex_key(0)}, 2);
  EXPECT_EQ(levels.size(), 3u);
  EXPECT_FALSE(levels.count(assoc::vertex_key(3)));
}

TEST(TableAlgos, BfsMultipleSeeds) {
  nosql::Instance db;
  auto a = la::SpMat<double>::from_triples(
      6, 6, {{0, 1, 1.0}, {4, 5, 1.0}});
  write_matrix(db, "A", a);
  const auto levels =
      adj_bfs(db, "A", {assoc::vertex_key(0), assoc::vertex_key(4)}, 3);
  EXPECT_EQ(levels.at(assoc::vertex_key(1)), 1);
  EXPECT_EQ(levels.at(assoc::vertex_key(5)), 1);
}

TEST(TableAlgos, JaccardMatchesPaperExample) {
  // Fig. 2 of the paper: J(1,2)=1/5, J(1,3)=1/2, J(1,4)=1/4, J(1,5)=1/3,
  // J(2,4)=2/3, J(3,5)=1/3 (1-indexed). Vertices map to v|000000...
  nosql::Instance db;
  write_matrix(db, "A", paper_example_adjacency());
  const auto written = table_jaccard(db, "A", "J");
  EXPECT_EQ(written, 8u);  // nonzero upper-triangle coefficients
  auto j = read_matrix(db, "J", 5, 5);
  EXPECT_NEAR(j.at(0, 1), 1.0 / 5.0, 1e-12);
  EXPECT_NEAR(j.at(0, 2), 1.0 / 2.0, 1e-12);
  EXPECT_NEAR(j.at(0, 3), 1.0 / 4.0, 1e-12);
  EXPECT_NEAR(j.at(0, 4), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(j.at(1, 3), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(j.at(2, 4), 1.0 / 3.0, 1e-12);
}

TEST(TableAlgos, KTrussRemovesDanglingEdge) {
  // The paper's Fig. 1 example: the 3-truss removes edge 6 (v2-v5) and
  // keeps the 5 remaining edges (10 directed cells).
  nosql::Instance db;
  write_matrix(db, "A", paper_example_adjacency());
  const auto cells = table_ktruss(db, "A", 3, "T");
  EXPECT_EQ(cells, 10u);
  auto t = read_matrix(db, "T", 5, 5);
  EXPECT_EQ(t.at(1, 4), 0.0);  // v2-v5 gone
  EXPECT_EQ(t.at(0, 1), 1.0);
  EXPECT_EQ(t.at(2, 3), 1.0);
}

TEST(TableAlgos, KTrussOfTriangleFreeGraphIsEmpty) {
  nosql::Instance db;
  // 4-cycle: no triangles, so the 3-truss is empty.
  auto a = la::SpMat<double>::from_triples(
      4, 4, {{0, 1, 1.0}, {1, 0, 1.0}, {1, 2, 1.0}, {2, 1, 1.0},
             {2, 3, 1.0}, {3, 2, 1.0}, {3, 0, 1.0}, {0, 3, 1.0}});
  write_matrix(db, "A", a);
  EXPECT_EQ(table_ktruss(db, "A", 3, "T"), 0u);
}

TEST(TableAlgos, KTrussKeepsClique) {
  nosql::Instance db;
  // K5 is a 5-truss: survives k=5 intact (20 directed cells).
  std::vector<la::Triple<double>> triples;
  for (la::Index i = 0; i < 5; ++i) {
    for (la::Index j = 0; j < 5; ++j) {
      if (i != j) triples.push_back({i, j, 1.0});
    }
  }
  write_matrix(db, "A", la::SpMat<double>::from_triples(5, 5, triples));
  EXPECT_EQ(table_ktruss(db, "A", 5, "T"), 20u);
  EXPECT_EQ(table_ktruss(db, "A", 6, "T6"), 0u);
}

}  // namespace
}  // namespace graphulo::core
