// MVCC snapshot scans + admission control: pinned cuts must stay
// byte-stable while writers/flushes/compactions race, compaction must
// never drop a cell or delete marker a live snapshot can observe, and
// the admission layer must bound concurrent scans with typed overload
// errors and cooperative deadlines.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/table_scan.hpp"
#include "nosql/nosql.hpp"
#include "util/strings.hpp"

namespace graphulo::nosql {
namespace {

using std::chrono::milliseconds;

void put_row(Instance& db, const std::string& table, const std::string& row,
             const std::string& qual, const std::string& value) {
  Mutation m(row);
  m.put("f", qual, value);
  db.apply(table, m);
}

std::vector<Cell> snapshot_cells(Instance& db, const std::string& table,
                                 std::shared_ptr<const Snapshot> snap) {
  Scanner scan(db, table);
  scan.set_snapshot(std::move(snap));
  return scan.read_all();
}

std::string flatten(const std::vector<Cell>& cells) {
  std::string out;
  for (const auto& c : cells) {
    out += c.key.row;
    out += '\x1f';
    out += c.key.family;
    out += '\x1f';
    out += c.key.qualifier;
    out += '\x1f';
    out += std::to_string(c.key.ts);
    out += '\x1f';
    out += c.value;
    out += '\n';
  }
  return out;
}

TEST(Snapshot, PinnedCutIgnoresLaterWrites) {
  Instance db;
  TableConfig cfg;
  cfg.flush_entries = 16;  // force file turnover after the pin
  db.create_table("t", std::move(cfg));
  for (int i = 0; i < 50; ++i) {
    put_row(db, "t", util::zero_pad(static_cast<std::uint64_t>(i), 4), "q",
            "old");
  }
  auto snap = db.open_snapshot("t");
  for (int i = 0; i < 50; ++i) {
    put_row(db, "t", util::zero_pad(static_cast<std::uint64_t>(i), 4), "q",
            "new");  // overwrite every row
    put_row(db, "t", "x" + util::zero_pad(static_cast<std::uint64_t>(i), 4),
            "q", "extra");
  }
  db.flush("t");
  db.compact("t");

  const auto pinned = snapshot_cells(db, "t", snap);
  ASSERT_EQ(pinned.size(), 50u);
  for (const auto& c : pinned) EXPECT_EQ(c.value, "old");

  Scanner live(db, "t");
  const auto now = live.read_all();
  EXPECT_EQ(now.size(), 100u);  // 50 overwritten + 50 extra
}

TEST(Snapshot, SurvivesDeleteAndCompaction) {
  Instance db;
  db.create_table("t");
  put_row(db, "t", "r", "q", "v");
  auto snap = db.open_snapshot("t");

  Mutation del("r");
  del.put_delete("f", "q");
  db.apply("t", del);
  db.flush("t");
  db.compact("t");

  Scanner live(db, "t");
  EXPECT_TRUE(live.read_all().empty());

  const auto pinned = snapshot_cells(db, "t", snap);
  ASSERT_EQ(pinned.size(), 1u);
  EXPECT_EQ(pinned[0].key.row, "r");
  EXPECT_EQ(pinned[0].value, "v");
}

TEST(Snapshot, CompactionRetainsMarkerUnderLiveSnapshotThenDrops) {
  Instance db;
  db.create_table("t");
  put_row(db, "t", "r", "q", "v");
  db.flush("t");
  db.compact("t");  // value now in the bottommost file

  Mutation del("r");
  del.put_delete("f", "q");
  db.apply("t", del);
  auto snap = db.open_snapshot("t");  // pins the marker (memtable)

  // Major compaction with a live snapshot at/above the inputs' seq: the
  // delete marker and the shadowed cell must BOTH survive in the
  // current file set (the §11 bottommost drop is suppressed).
  db.flush("t");
  db.compact("t");
  {
    auto tablets = db.tablets_for_range("t", Range::all());
    ASSERT_EQ(tablets.size(), 1u);
    auto raw = tablets[0].first->raw_stack();
    raw->seek(Range::all());
    std::size_t markers = 0, cells = 0;
    while (raw->has_top()) {
      if (raw->top_key().deleted) {
        ++markers;
      } else {
        ++cells;
      }
      raw->next();
    }
    EXPECT_EQ(markers, 1u) << "live snapshot must hold the delete marker";
    EXPECT_EQ(cells, 1u) << "live snapshot must hold the shadowed cell";
  }

  // Releasing the handle lifts the horizon; the next major compaction
  // resolves the delete and drops the marker (bottommost rule).
  snap.reset();
  db.compact("t");
  {
    auto tablets = db.tablets_for_range("t", Range::all());
    auto raw = tablets[0].first->raw_stack();
    raw->seek(Range::all());
    EXPECT_FALSE(raw->has_top()) << "marker + cell must be gone after release";
  }
}

TEST(Snapshot, StatsExposeRegistryState) {
  Instance db;
  db.create_table("t");
  put_row(db, "t", "r", "q", "v");
  auto tablets = db.tablets_for_range("t", Range::all());
  ASSERT_EQ(tablets.size(), 1u);
  const auto& tablet = tablets[0].first;

  auto s1 = db.open_snapshot("t");
  auto s2 = db.open_snapshot("t");
  auto stats = tablet->stats();
  EXPECT_EQ(stats.live_snapshots, 2u);
  EXPECT_GT(stats.oldest_snapshot_seq, 0u);
  EXPECT_LE(stats.oldest_snapshot_seq, s2->tablets()[0]->seq());

  s1.reset();
  s2.reset();
  stats = tablet->stats();
  EXPECT_EQ(stats.live_snapshots, 0u);
  EXPECT_EQ(stats.oldest_snapshot_seq, 0u);
}

TEST(Snapshot, ExpiryUnblocksCompactionAndFailsScans) {
  Instance db;
  TableConfig cfg;
  cfg.admission.max_snapshot_age = milliseconds(5);
  db.create_table("t", std::move(cfg));
  put_row(db, "t", "r", "q", "v");
  db.flush("t");
  db.compact("t");
  Mutation del("r");
  del.put_delete("f", "q");
  db.apply("t", del);

  auto snap = db.open_snapshot("t");
  std::this_thread::sleep_for(milliseconds(25));
  EXPECT_TRUE(snap->expired());

  // The expired handle no longer holds the horizon: the marker resolves.
  db.flush("t");
  db.compact("t");
  auto tablets = db.tablets_for_range("t", Range::all());
  auto raw = tablets[0].first->raw_stack();
  raw->seek(Range::all());
  EXPECT_FALSE(raw->has_top());

  Scanner scan(db, "t");
  scan.set_snapshot(snap);
  EXPECT_THROW(scan.read_all(), SnapshotExpired);

  EXPECT_GE(tablets[0].first->stats().snapshots_expired +
                (snap->tablets()[0]->expired() ? 0u : 1u),
            1u);
  snap.reset();  // releasing an already-swept handle must be harmless
  EXPECT_EQ(tablets[0].first->stats().live_snapshots, 0u);
}

TEST(Snapshot, WholeTableCutSurvivesSplits) {
  Instance db(3);
  db.create_table("t");
  for (int i = 0; i < 60; ++i) {
    put_row(db, "t", util::zero_pad(static_cast<std::uint64_t>(i), 4), "q",
            "v" + std::to_string(i));
  }
  auto snap = db.open_snapshot("t");
  const auto before = flatten(snapshot_cells(db, "t", snap));

  db.add_splits("t", {"0020", "0040"});
  for (int i = 60; i < 90; ++i) {
    put_row(db, "t", util::zero_pad(static_cast<std::uint64_t>(i), 4), "q",
            "late");
  }
  db.flush("t");

  const auto after = flatten(snapshot_cells(db, "t", snap));
  EXPECT_EQ(before, after) << "split + writes must not perturb an open cut";
  Scanner live(db, "t");
  EXPECT_EQ(live.read_all().size(), 90u);
}

TEST(Snapshot, RepeatedReadsAreByteIdentical) {
  Instance db;
  TableConfig cfg;
  cfg.flush_entries = 8;
  db.create_table("t", std::move(cfg));
  for (int i = 0; i < 40; ++i) {
    put_row(db, "t", "r" + util::zero_pad(static_cast<std::uint64_t>(i), 3),
            "q", std::to_string(i * i));
  }
  auto snap = db.open_snapshot("t");
  const auto first = flatten(snapshot_cells(db, "t", snap));
  for (int i = 0; i < 40; ++i) put_row(db, "t", "zz", "q", std::to_string(i));
  db.flush("t");
  db.compact("t");
  const auto second = flatten(snapshot_cells(db, "t", snap));
  EXPECT_EQ(first, second);
}

TEST(Snapshot, BatchScannerAndTableScanReadTheCut) {
  Instance db(2);
  db.create_table("t");
  for (int i = 0; i < 30; ++i) {
    put_row(db, "t", util::zero_pad(static_cast<std::uint64_t>(i), 3), "q",
            "v");
  }
  db.add_splits("t", {"010", "020"});
  auto snap = db.open_snapshot("t");
  for (int i = 30; i < 60; ++i) {
    put_row(db, "t", util::zero_pad(static_cast<std::uint64_t>(i), 3), "q",
            "late");
  }

  BatchScanner bs(db, "t");
  bs.set_snapshot(snap);
  EXPECT_EQ(bs.read_all().size(), 30u);

  auto iter = core::open_table_scan(*snap);
  std::size_t n = 0;
  std::string prev;
  while (iter->has_top()) {
    EXPECT_LE(prev, iter->top_key().row);
    prev = iter->top_key().row;
    ++n;
    iter->next();
  }
  EXPECT_EQ(n, 30u);
}

TEST(Snapshot, WrongTableRejected) {
  Instance db;
  db.create_table("a");
  db.create_table("b");
  auto snap = db.open_snapshot("a");
  Scanner scan(db, "b");
  EXPECT_THROW(scan.set_snapshot(snap), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(SnapshotAdmission, ShedPolicyThrowsTypedOverload) {
  Instance db;
  TableConfig cfg;
  cfg.admission.max_inflight_scans = 1;
  cfg.admission.policy = AdmissionPolicy::kShed;
  db.create_table("t", std::move(cfg));
  put_row(db, "t", "r", "q", "v");

  auto* ctrl = db.admission("t");
  ASSERT_NE(ctrl, nullptr);
  auto ticket = ctrl->admit_scan();  // occupy the only slot
  EXPECT_EQ(ctrl->inflight_scans(), 1u);

  Scanner scan(db, "t");
  EXPECT_THROW(scan.read_all(), OverloadedError);

  // OverloadedError must be retryable (TransientError) for with_retries.
  try {
    Scanner again(db, "t");
    again.read_all();
    FAIL() << "expected OverloadedError";
  } catch (const util::TransientError&) {
  }

  ticket = AdmissionController::ScanTicket();  // release the slot
  EXPECT_EQ(ctrl->inflight_scans(), 0u);
  Scanner ok(db, "t");
  EXPECT_EQ(ok.read_all().size(), 1u);
}

TEST(SnapshotAdmission, QueuePolicyWaitsForSlot) {
  Instance db;
  TableConfig cfg;
  cfg.admission.max_inflight_scans = 1;
  cfg.admission.policy = AdmissionPolicy::kQueue;
  cfg.admission.max_queue_wait = milliseconds(2000);
  db.create_table("t", std::move(cfg));
  put_row(db, "t", "r", "q", "v");

  auto* ctrl = db.admission("t");
  auto ticket = std::make_unique<AdmissionController::ScanTicket>(
      ctrl->admit_scan());
  std::thread releaser([&] {
    std::this_thread::sleep_for(milliseconds(30));
    ticket.reset();
  });
  Scanner scan(db, "t");
  EXPECT_EQ(scan.read_all().size(), 1u);  // queued, then admitted
  releaser.join();
}

TEST(SnapshotAdmission, QueueTimeoutShedsAsOverloaded) {
  Instance db;
  TableConfig cfg;
  cfg.admission.max_inflight_scans = 1;
  cfg.admission.policy = AdmissionPolicy::kQueue;
  cfg.admission.max_queue_wait = milliseconds(5);
  db.create_table("t", std::move(cfg));
  put_row(db, "t", "r", "q", "v");

  auto ticket = db.admission("t")->admit_scan();
  Scanner scan(db, "t");
  EXPECT_THROW(scan.read_all(), OverloadedError);
}

TEST(SnapshotAdmission, ScanRateLimitMetersASession) {
  Instance db;
  TableConfig cfg;
  cfg.admission.scan_rate = 500.0;  // 2ms per token once the burst is spent
  cfg.admission.scan_burst = 1.0;
  db.create_table("t", std::move(cfg));
  put_row(db, "t", "r", "q", "v");

  auto session = db.admission("t")->make_session();
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 4; ++i) {
    Scanner scan(db, "t");
    scan.set_session(session);
    EXPECT_EQ(scan.read_all().size(), 1u);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // Burst covers the first scan; the next three wait ~2ms each.
  EXPECT_GE(elapsed, milliseconds(4));
}

TEST(SnapshotAdmission, DeadlineAbortsMidScan) {
  Instance db;
  db.create_table("t");
  for (int i = 0; i < 2000; ++i) {
    put_row(db, "t", util::zero_pad(static_cast<std::uint64_t>(i), 5), "q",
            "v");
  }
  Scanner scan(db, "t");
  scan.set_batch_size(64);
  // The deadline is checked before each block, so the timeout must be
  // wide enough that setup + the first 64-cell block always lands
  // inside it (sanitizer builds on a loaded 1-core host included), yet
  // far smaller than the 2 s the full scan's callback sleeps add up to.
  scan.set_timeout(milliseconds(100));
  std::size_t delivered = 0;
  EXPECT_THROW(scan.for_each([&](const Key&, const Value&) {
    ++delivered;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }),
               DeadlineExceeded);
  EXPECT_GT(delivered, 0u);
  EXPECT_LT(delivered, 2000u);
}

TEST(SnapshotAdmission, WriteOverloadSurfacesTypedThroughBatchWriter) {
  Instance db;
  TableConfig cfg;
  cfg.admission.policy = AdmissionPolicy::kShed;
  cfg.admission.write_rate = 0.001;  // effectively never refills
  cfg.admission.write_burst = 2.0;
  db.create_table("t", std::move(cfg));

  BatchWriter writer(db, "t");
  EXPECT_EQ(writer.last_error_kind(), BatchWriter::ErrorKind::kNone);
  for (int i = 0; i < 5; ++i) {
    Mutation m("r" + std::to_string(i));
    m.put("f", "q", "v");
    writer.add_mutation(m);
  }
  EXPECT_THROW(writer.flush(), OverloadedError);
  EXPECT_EQ(writer.last_error_kind(), BatchWriter::ErrorKind::kOverloaded);

  // The burst-admitted prefix was applied exactly once.
  Scanner scan(db, "t");
  EXPECT_EQ(scan.read_all().size(), 2u);
  writer.abandon();
}

TEST(SnapshotAdmission, LastErrorKindClassifiesTransientAndFatal) {
  Instance db;
  db.create_table("t");

  {
    util::fault::reset();
    util::fault::FaultSpec spec;
    spec.probability = 1.0;
    util::fault::arm(util::fault::sites::kBatchWriterFlush, spec);
    BatchWriter writer(db, "t");
    Mutation m("r");
    m.put("f", "q", "v");
    writer.add_mutation(m);
    EXPECT_THROW(writer.flush(), util::TransientError);
    EXPECT_EQ(writer.last_error_kind(), BatchWriter::ErrorKind::kTransient);
    writer.abandon();
  }
  {
    util::fault::reset();
    util::fault::FaultSpec spec;
    spec.probability = 1.0;
    spec.fatal = true;
    util::fault::arm(util::fault::sites::kBatchWriterFlush, spec);
    BatchWriter writer(db, "t");
    Mutation m("r");
    m.put("f", "q", "v");
    writer.add_mutation(m);
    EXPECT_THROW(writer.flush(), util::FatalError);
    EXPECT_EQ(writer.last_error_kind(), BatchWriter::ErrorKind::kFatal);
    writer.abandon();
  }
  util::fault::reset();
}

// ---------------------------------------------------------------------------
// Randomized property test: N scanners x M writers x compactions
// ---------------------------------------------------------------------------

// Each writer w applies cells ("w<w>", "f", zero_pad(k)) for k = 0,1,...
// strictly in order, one mutation each. Any consistent cut must
// therefore contain, per writer, EXACTLY the prefix 0..k-1 for some k —
// gaps mean a torn cut, and two reads of one snapshot must be
// byte-identical no matter what flushes/compactions did in between.
void run_snapshot_race(bool with_faults) {
  Instance db(2);
  TableConfig cfg;
  cfg.flush_entries = 64;  // constant memtable turnover
  db.create_table("t", std::move(cfg));

  if (with_faults) {
    util::fault::reset();
    util::fault::seed(20260807);
    util::fault::FaultSpec spec;
    spec.probability = 0.05;
    util::fault::arm(util::fault::sites::kMemtableFlush, spec);
    util::fault::arm(util::fault::sites::kTabletCompact, spec);
  }

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 400;
  constexpr int kScanners = 3;
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> violations{0};
  std::atomic<std::size_t> snapshots_taken{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&db, w] {
      const std::string row = "w" + std::to_string(w);
      for (int k = 0; k < kPerWriter; ++k) {
        Mutation m(row);
        m.put("f", util::zero_pad(static_cast<std::uint64_t>(k), 5), "v");
        db.apply("t", m);
      }
    });
  }
  threads.emplace_back([&] {  // background compactor
    while (!stop.load()) {
      try {
        db.compact("t");
      } catch (const util::TransientError&) {
        // armed fault survived the bounded retries; next round re-runs
      }
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });
  for (int s = 0; s < kScanners; ++s) {
    threads.emplace_back([&, s] {
      std::mt19937 rng(static_cast<unsigned>(1234 + s));
      while (!stop.load()) {
        auto snap = db.open_snapshot("t");
        snapshots_taken.fetch_add(1);
        const auto first = snapshot_cells(db, "t", snap);
        // Per-writer prefix contiguity of the cut.
        std::vector<std::uint64_t> next(kWriters, 0);
        for (const auto& c : first) {
          const int w = c.key.row[1] - '0';
          const auto k = static_cast<std::uint64_t>(
              std::stoull(c.key.qualifier));
          if (w < 0 || w >= kWriters || k != next[static_cast<std::size_t>(w)]) {
            violations.fetch_add(1);
          } else {
            ++next[static_cast<std::size_t>(w)];
          }
        }
        // Stability: a re-read through the same handle after a random
        // pause (letting flushes/compactions churn) is byte-identical.
        std::this_thread::sleep_for(
            std::chrono::microseconds(rng() % 2000));
        const auto second = snapshot_cells(db, "t", snap);
        if (flatten(first) != flatten(second)) violations.fetch_add(1);
      }
    });
  }

  for (int w = 0; w < kWriters; ++w) threads[static_cast<std::size_t>(w)].join();
  stop.store(true);
  for (std::size_t i = kWriters; i < threads.size(); ++i) threads[i].join();
  if (with_faults) util::fault::reset();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(snapshots_taken.load(), 0u);

  // Serial ground truth: after the race settles, the live table holds
  // every writer's full prefix.
  db.flush("t");
  db.compact("t");
  Scanner scan(db, "t");
  EXPECT_EQ(scan.read_all().size(),
            static_cast<std::size_t>(kWriters * kPerWriter));
}

TEST(SnapshotProperty, ScannersWritersCompactionsRace) {
  run_snapshot_race(/*with_faults=*/false);
}

TEST(SnapshotProperty, RaceHoldsWithFlushAndCompactionFaultsArmed) {
  run_snapshot_race(/*with_faults=*/true);
}

}  // namespace
}  // namespace graphulo::nosql
