// Spectral bisection: Laplacian construction, Fiedler vector, and
// community recovery on planted partitions.

#include <cmath>

#include <gtest/gtest.h>

#include "algo/spectral.hpp"
#include "algo/traversal.hpp"
#include "gen/erdos.hpp"
#include "gen/planted.hpp"
#include "la/la.hpp"
#include "test_helpers.hpp"

namespace graphulo::algo {
namespace {

using graphulo::testing::random_undirected;
using la::Index;
using la::SpMat;

TEST(Laplacian, RowsSumToZero) {
  const auto a = random_undirected(20, 0.3, 501);
  const auto l = laplacian(a);
  for (double s : la::row_sums(l)) EXPECT_NEAR(s, 0.0, 1e-12);
  // Diagonal = degrees, off-diagonal = -A.
  const auto deg = la::row_sums(a);
  for (Index i = 0; i < 20; ++i) {
    EXPECT_EQ(l.at(i, i), deg[static_cast<std::size_t>(i)]);
  }
  EXPECT_THROW(laplacian(SpMat<double>(2, 3)), std::invalid_argument);
}

TEST(Spectral, SplitsTwoDisjointCliques) {
  // Two 5-cliques with no connection: lambda2 = 0, sides = components.
  std::vector<la::Triple<double>> t;
  for (Index block = 0; block < 2; ++block) {
    for (Index i = 0; i < 5; ++i) {
      for (Index j = 0; j < 5; ++j) {
        if (i != j) t.push_back({block * 5 + i, block * 5 + j, 1.0});
      }
    }
  }
  const auto result =
      spectral_bisection(SpMat<double>::from_triples(10, 10, t));
  EXPECT_NEAR(result.lambda2, 0.0, 1e-6);
  for (Index v = 1; v < 5; ++v) {
    EXPECT_EQ(result.side[static_cast<std::size_t>(v)], result.side[0]);
    EXPECT_EQ(result.side[static_cast<std::size_t>(5 + v)], result.side[5]);
  }
  EXPECT_NE(result.side[0], result.side[5]);
}

TEST(Spectral, PathGraphSplitsAtMidpoint) {
  // Fiedler vector of a path is monotone: the sign split is the middle.
  const Index n = 8;
  std::vector<la::Triple<double>> t;
  for (Index i = 0; i + 1 < n; ++i) {
    t.push_back({i, i + 1, 1.0});
    t.push_back({i + 1, i, 1.0});
  }
  const auto result =
      spectral_bisection(SpMat<double>::from_triples(n, n, t));
  // One side is {0..3}, the other {4..7} (orientation is arbitrary).
  for (Index v = 0; v < 4; ++v) {
    EXPECT_EQ(result.side[static_cast<std::size_t>(v)], result.side[0]);
    EXPECT_NE(result.side[static_cast<std::size_t>(4 + v)], result.side[0]);
  }
  // lambda2 of a path P_n is 2(1 - cos(pi/n)).
  EXPECT_NEAR(result.lambda2, 2.0 * (1.0 - std::cos(M_PI / n)), 1e-4);
}

TEST(Spectral, RecoversPlantedPartition) {
  const auto g = gen::planted_partition(120, 2, 0.3, 0.02, 502);
  const auto labels = gen::partition_labels(120, 2);
  const auto result = spectral_bisection(g.adjacency);
  // Count agreement up to side relabeling.
  std::size_t agree = 0;
  for (std::size_t v = 0; v < labels.size(); ++v) {
    if (result.side[v] == labels[v]) ++agree;
  }
  const double accuracy =
      std::max(agree, labels.size() - agree) / static_cast<double>(labels.size());
  EXPECT_GT(accuracy, 0.95);
}

TEST(Spectral, FiedlerIsUnitAndOrthogonalToOnes) {
  const auto a = random_undirected(30, 0.2, 503);
  const auto result = spectral_bisection(a);
  EXPECT_NEAR(la::norm2(result.fiedler), 1.0, 1e-9);
  EXPECT_NEAR(la::vec_sum(result.fiedler), 0.0, 1e-8);
  EXPECT_GE(result.lambda2, -1e-9);
}

TEST(Spectral, Lambda2MatchesRayleighLowerBoundOnCompleteGraph) {
  // K_n: lambda2 = n.
  const Index n = 6;
  std::vector<la::Triple<double>> t;
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      if (i != j) t.push_back({i, j, 1.0});
    }
  }
  const auto result =
      spectral_bisection(SpMat<double>::from_triples(n, n, t));
  EXPECT_NEAR(result.lambda2, static_cast<double>(n), 1e-6);
}

TEST(Modularity, TwoCliquesScoreHighWithCorrectLabels) {
  std::vector<la::Triple<double>> t;
  for (Index block = 0; block < 2; ++block) {
    for (Index i = 0; i < 5; ++i) {
      for (Index j = 0; j < 5; ++j) {
        if (i != j) t.push_back({block * 5 + i, block * 5 + j, 1.0});
      }
    }
  }
  // One bridging edge so the graph is connected.
  t.push_back({0, 5, 1.0});
  t.push_back({5, 0, 1.0});
  const auto a = SpMat<double>::from_triples(10, 10, t);
  const std::vector<int> good = {0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  const std::vector<int> all_one(10, 0);
  EXPECT_GT(modularity(a, good), 0.4);
  EXPECT_NEAR(modularity(a, all_one), 0.0, 1e-12);
  // Shuffled labels should be near (or below) zero.
  const std::vector<int> bad = {0, 1, 0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_LT(modularity(a, bad), modularity(a, good));
}

TEST(Modularity, SpectralSplitOfPlantedPartitionScoresWell) {
  const auto g = gen::planted_partition(100, 2, 0.3, 0.02, 504);
  const auto result = spectral_bisection(g.adjacency);
  EXPECT_GT(modularity(g.adjacency, result.side), 0.3);
}

TEST(Modularity, ValidatesInput) {
  SpMat<double> a(3, 3);
  EXPECT_EQ(modularity(a, {0, 0, 0}), 0.0);  // empty graph
  EXPECT_THROW(modularity(a, {0, 0}), std::invalid_argument);
}

TEST(WattsStrogatz, LatticeAndRewiredProperties) {
  // beta = 0: exact ring lattice, every vertex degree k.
  const auto lattice = gen::watts_strogatz(40, 4, 0.0, 1);
  const auto deg = la::row_nnz_counts(lattice);
  for (Index d : deg) EXPECT_EQ(d, 4);
  EXPECT_TRUE(la::is_symmetric(lattice));
  // beta > 0 keeps the edge count (rewired, not added/removed).
  const auto rewired = gen::watts_strogatz(40, 4, 0.3, 2);
  EXPECT_EQ(rewired.nnz(), lattice.nnz());
  EXPECT_TRUE(la::is_symmetric(rewired));
  EXPECT_NE(rewired, lattice);
  // Parameter validation.
  EXPECT_THROW(gen::watts_strogatz(10, 3, 0.1, 1), std::invalid_argument);
  EXPECT_THROW(gen::watts_strogatz(10, 4, 1.5, 1), std::invalid_argument);
  EXPECT_THROW(gen::watts_strogatz(4, 4, 0.1, 1), std::invalid_argument);
}

TEST(WattsStrogatz, SmallWorldShortensPaths) {
  // The defining effect: a little rewiring slashes the diameter.
  const auto lattice = gen::watts_strogatz(200, 4, 0.0, 3);
  const auto rewired = gen::watts_strogatz(200, 4, 0.2, 3);
  const auto bfs_lattice = bfs_classic(lattice, 0);
  const auto bfs_rewired = bfs_classic(rewired, 0);
  EXPECT_LT(bfs_rewired.max_level, bfs_lattice.max_level);
}

}  // namespace
}  // namespace graphulo::algo
