// SimRank, Adamic-Adar and truncated SVD (the remaining Table I
// similarity/community algorithms), plus the RemoteWrite iterator.

#include <cmath>

#include <gtest/gtest.h>

#include "algo/similarity_extra.hpp"
#include "algo/svd.hpp"
#include "assoc/table_io.hpp"
#include "core/remote_write.hpp"
#include "la/la.hpp"
#include "nosql/codec.hpp"
#include "nosql/scanner.hpp"
#include "test_helpers.hpp"

namespace graphulo::algo {
namespace {

using graphulo::testing::random_sparse;
using graphulo::testing::random_undirected;
using la::Dense;
using la::Index;
using la::SpMat;

TEST(SimRank, DiagonalIsOneAndSymmetric) {
  const auto a = random_undirected(15, 0.3, 401);
  const auto s = simrank(a);
  for (Index i = 0; i < 15; ++i) {
    EXPECT_DOUBLE_EQ(s(i, i), 1.0);
    for (Index j = 0; j < 15; ++j) {
      EXPECT_NEAR(s(i, j), s(j, i), 1e-9);
      EXPECT_GE(s(i, j), 0.0);
      EXPECT_LE(s(i, j), 1.0 + 1e-12);
    }
  }
}

TEST(SimRank, TwinsAreMaximallySimilar) {
  // Vertices 1 and 2 have identical in-neighborhoods ({0}): their
  // SimRank is C (one shared parent pair at similarity 1).
  auto a = SpMat<double>::from_triples(3, 3, {{0, 1, 1.0}, {0, 2, 1.0}});
  const auto s = simrank(a, {.decay = 0.8});
  EXPECT_NEAR(s(1, 2), 0.8, 1e-9);
  EXPECT_NEAR(s(0, 1), 0.0, 1e-12);  // 0 has no in-neighbors
}

TEST(SimRank, SatisfiesFixpointEquation) {
  const auto a = random_undirected(10, 0.4, 402);
  SimRankOptions opts;
  opts.max_iterations = 200;
  opts.tolerance = 1e-12;
  const auto s = simrank(a, opts);
  // Verify S(i,j) = C/(|I(i)||I(j)|) sum_{u in I(i), v in I(j)} S(u,v)
  // for i != j (Jeh-Widom definition; our W-normalized form is exactly
  // this).
  const auto at = la::transpose(a);
  for (Index i = 0; i < 10; ++i) {
    for (Index j = 0; j < 10; ++j) {
      if (i == j) continue;
      const auto in_i = at.row_cols(i);
      const auto in_j = at.row_cols(j);
      if (in_i.empty() || in_j.empty()) {
        EXPECT_NEAR(s(i, j), 0.0, 1e-9);
        continue;
      }
      double sum = 0.0;
      for (Index u : in_i) {
        for (Index v : in_j) sum += s(u, v);
      }
      const double expected =
          0.8 * sum /
          (static_cast<double>(in_i.size()) * static_cast<double>(in_j.size()));
      EXPECT_NEAR(s(i, j), expected, 1e-6) << i << "," << j;
    }
  }
}

TEST(SimRank, ValidatesParameters) {
  SpMat<double> rect(2, 3);
  EXPECT_THROW(simrank(rect), std::invalid_argument);
  SpMat<double> sq(3, 3);
  EXPECT_THROW(simrank(sq, {.decay = 1.0}), std::invalid_argument);
}

TEST(AdamicAdar, WeighsRareNeighborsHigher) {
  // Path 1-0-2 plus hub 3 connected to everything: pairs sharing only
  // the hub score lower than pairs sharing a low-degree vertex.
  auto a = SpMat<double>::from_triples(
      6, 6, {{0, 1, 1.0}, {1, 0, 1.0}, {0, 2, 1.0}, {2, 0, 1.0},
             // hub 3 adjacent to 1, 2, 4, 5
             {3, 1, 1.0}, {1, 3, 1.0}, {3, 2, 1.0}, {2, 3, 1.0},
             {3, 4, 1.0}, {4, 3, 1.0}, {3, 5, 1.0}, {5, 3, 1.0}});
  const auto aa = adamic_adar(a);
  // (1,2) share vertex 0 (deg 2) and hub 3 (deg 4):
  // expected = 1/log2 + 1/log4.
  EXPECT_NEAR(aa.at(1, 2), 1.0 / std::log(2.0) + 1.0 / std::log(4.0), 1e-12);
  // (4,5) share only the hub: 1/log4 — strictly less.
  EXPECT_NEAR(aa.at(4, 5), 1.0 / std::log(4.0), 1e-12);
  EXPECT_GT(aa.at(1, 2), aa.at(4, 5));
}

TEST(AdamicAdar, DegreeOneCommonNeighborContributesNothing) {
  // 0-1-2 path: vertices 0 and 2 share neighbor 1... deg(1) = 2 so it
  // counts; make the shared vertex degree 1 impossible by construction —
  // instead verify a pendant's contribution is excluded via weight 0.
  auto a = SpMat<double>::from_triples(3, 3, {{0, 1, 1.0}, {1, 0, 1.0}});
  // Only one edge: no pairs at distance 2 at all.
  EXPECT_EQ(adamic_adar(a).nnz(), 0);
}

TEST(AdamicAdar, PredictRanksAndExcludesEdges) {
  const auto a = random_undirected(30, 0.2, 403);
  const auto predictions = adamic_adar_predict(a, 8);
  EXPECT_LE(predictions.size(), 8u);
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    EXPECT_EQ(a.at(predictions[i].u, predictions[i].v), 0.0);
    if (i > 0) {
      EXPECT_GE(predictions[i - 1].score, predictions[i].score);
    }
  }
}

// --------------------------------------------------------------------------

TEST(Svd, RecoversKnownSingularValues) {
  // diag(5, 3, 1) padded: singular values are exactly 5, 3, 1.
  auto a = SpMat<double>::from_triples(
      4, 3, {{0, 0, 5.0}, {1, 1, 3.0}, {2, 2, 1.0}});
  const auto triplets = svd_truncated(a, {.rank = 3});
  ASSERT_EQ(triplets.size(), 3u);
  EXPECT_NEAR(triplets[0].sigma, 5.0, 1e-8);
  EXPECT_NEAR(triplets[1].sigma, 3.0, 1e-8);
  EXPECT_NEAR(triplets[2].sigma, 1.0, 1e-8);
  // Singular vectors align with the axes (up to sign).
  EXPECT_NEAR(std::abs(triplets[0].v[0]), 1.0, 1e-6);
  EXPECT_NEAR(std::abs(triplets[0].u[0]), 1.0, 1e-6);
}

TEST(Svd, SingularVectorsAreOrthonormal) {
  const auto a = random_sparse(20, 15, 0.3, 404);
  const auto triplets = svd_truncated(a, {.rank = 4});
  ASSERT_EQ(triplets.size(), 4u);
  for (std::size_t p = 0; p < triplets.size(); ++p) {
    EXPECT_NEAR(la::norm2(triplets[p].u), 1.0, 1e-8);
    EXPECT_NEAR(la::norm2(triplets[p].v), 1.0, 1e-8);
    for (std::size_t q = p + 1; q < triplets.size(); ++q) {
      EXPECT_NEAR(la::dot(triplets[p].v, triplets[q].v), 0.0, 1e-6);
      EXPECT_NEAR(la::dot(triplets[p].u, triplets[q].u), 0.0, 1e-5);
    }
  }
  // Descending singular values.
  for (std::size_t p = 1; p < triplets.size(); ++p) {
    EXPECT_GE(triplets[p - 1].sigma, triplets[p].sigma - 1e-9);
  }
}

TEST(Svd, ResidualDecreasesWithRank) {
  const auto a = random_sparse(25, 25, 0.25, 405);
  double prev = la::fro_norm(a);
  for (int rank : {1, 3, 6}) {
    const auto triplets = svd_truncated(a, {.rank = rank});
    const double residual = svd_residual(a, triplets);
    EXPECT_LT(residual, prev + 1e-9) << "rank " << rank;
    prev = residual;
  }
}

TEST(Svd, FullRankReconstructionIsNearExact) {
  // A tiny matrix fully reconstructed from all its singular triplets.
  auto a = SpMat<double>::from_dense(3, 3, std::vector<double>{
      2, 1, 0, 1, 3, 1, 0, 1, 2});
  const auto triplets = svd_truncated(a, {.rank = 3, .max_iterations = 2000,
                                          .tolerance = 1e-14});
  ASSERT_EQ(triplets.size(), 3u);
  EXPECT_LT(svd_residual(a, triplets), 1e-5);
}

TEST(Svd, RankBoundedByMatrixRank) {
  // Rank-1 matrix: requesting 3 components yields 1.
  auto a = SpMat<double>::from_dense(3, 3, std::vector<double>{
      1, 2, 3, 2, 4, 6, 3, 6, 9});
  const auto triplets = svd_truncated(a, {.rank = 3});
  ASSERT_GE(triplets.size(), 1u);
  EXPECT_NEAR(triplets[0].sigma, 14.0, 1e-6);  // ||A||_F of rank-1 = sigma
  // Any further components carry (numerically) zero weight.
  for (std::size_t p = 1; p < triplets.size(); ++p) {
    EXPECT_LT(triplets[p].sigma, 1e-5);
  }
}

// --------------------------------------------------------------------------

TEST(RemoteWrite, TeesScanIntoTargetTable) {
  nosql::Instance db;
  const auto a = graphulo::testing::random_sparse_int(10, 10, 0.4, 406);
  assoc::write_matrix(db, "src", a);
  const auto copied = core::table_copy_filtered(
      db, "src", "dst", [](const nosql::Key&, double) { return true; });
  EXPECT_EQ(copied, static_cast<std::size_t>(a.nnz()));
  EXPECT_EQ(assoc::read_matrix(db, "dst", 10, 10), a);
}

TEST(RemoteWrite, FilterRestrictsCopy) {
  nosql::Instance db;
  const auto a = graphulo::testing::random_sparse_int(12, 12, 0.5, 407, 5);
  assoc::write_matrix(db, "src", a);
  core::table_copy_filtered(db, "src", "big",
                            [](const nosql::Key&, double v) { return v >= 4; });
  const auto expected =
      la::select(a, [](Index, Index, double v) { return v >= 4; });
  EXPECT_EQ(assoc::read_matrix(db, "big", 12, 12), expected);
}

TEST(RemoteWrite, RangeRestrictsCopy) {
  nosql::Instance db;
  db.create_table("src");
  for (const char* row : {"a", "b", "c", "d"}) {
    nosql::Mutation m(row);
    m.put("f", "q", nosql::encode_double(1.0));
    db.apply("src", m);
  }
  const auto copied = core::table_copy_filtered(
      db, "src", "dst", [](const nosql::Key&, double) { return true; },
      nosql::Range::row_range("b", "c"));
  EXPECT_EQ(copied, 2u);
  nosql::Scanner scan(db, "dst");
  const auto cells = scan.read_all();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].key.row, "b");
  EXPECT_EQ(cells[1].key.row, "c");
}

}  // namespace
}  // namespace graphulo::algo
