// Write-ahead log + crash recovery, including failure injection
// (torn/corrupt log tails), and table cloning.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>

#include <gtest/gtest.h>

#include "nosql/nosql.hpp"
#include "util/strings.hpp"

namespace graphulo::nosql {
namespace {

std::string temp_wal_path(const char* name) {
  return ::testing::TempDir() + "/graphulo_" + name + ".wal";
}

TEST(Wal, RoundTripRecoversTablesAndData) {
  const auto path = temp_wal_path("roundtrip");
  std::remove(path.c_str());
  {
    Instance db(2);
    db.attach_wal(std::make_shared<WriteAheadLog>(path));
    db.create_table("users");
    db.create_table("scratch");
    for (int i = 0; i < 50; ++i) {
      Mutation m("user" + util::zero_pad(static_cast<std::uint64_t>(i), 3));
      m.put("f", "name", "value" + std::to_string(i));
      db.apply("users", m);
    }
    Mutation del("user007");
    del.put_delete("f", "name");
    db.apply("users", del);
    db.delete_table("scratch");
    db.sync_wal();
  }  // instance destroyed: the "crash"

  Instance recovered(2);
  const auto replayed = recover_from_wal(recovered, path);
  EXPECT_EQ(replayed, 54u);  // 2 creates + 50 puts + 1 delete + 1 drop
  EXPECT_TRUE(recovered.table_exists("users"));
  EXPECT_FALSE(recovered.table_exists("scratch"));
  Scanner scan(recovered, "users");
  const auto cells = scan.read_all();
  EXPECT_EQ(cells.size(), 49u);  // user007 deleted
  EXPECT_EQ(cells[0].key.row, "user000");
  EXPECT_EQ(cells[0].value, "value0");
  bool found_deleted = false;
  for (const auto& c : cells) {
    if (c.key.row == "user007") found_deleted = true;
  }
  EXPECT_FALSE(found_deleted);
  std::remove(path.c_str());
}

TEST(Wal, RecoveredInstanceAcceptsNewerWrites) {
  const auto path = temp_wal_path("clock");
  std::remove(path.c_str());
  {
    Instance db;
    db.attach_wal(std::make_shared<WriteAheadLog>(path));
    db.create_table("t");
    Mutation m("r");
    m.put("f", "q", "old");
    db.apply("t", m);
    db.sync_wal();
  }
  Instance recovered;
  recover_from_wal(recovered, path);
  // The recovered clock must be past the replayed timestamps so a new
  // write supersedes the old version.
  Mutation m("r");
  m.put("f", "q", "new");
  recovered.apply("t", m);
  Scanner scan(recovered, "t");
  const auto cells = scan.read_all();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].value, "new");
  std::remove(path.c_str());
}

TEST(Wal, TornTailIsIgnored) {
  const auto path = temp_wal_path("torn");
  std::remove(path.c_str());
  {
    Instance db;
    db.attach_wal(std::make_shared<WriteAheadLog>(path));
    db.create_table("t");
    for (int i = 0; i < 10; ++i) {
      Mutation m("row" + std::to_string(i));
      m.put("f", "q", "v");
      db.apply("t", m);
    }
    db.sync_wal();
  }
  // Failure injection: truncate the file mid-record.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.close();
  std::string content(size, '\0');
  {
    std::ifstream full(path, std::ios::binary);
    full.read(content.data(), static_cast<std::streamsize>(size));
  }
  content.resize(size - 7);  // cut into the last record
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
  }

  Instance recovered;
  const auto replayed = recover_from_wal(recovered, path);
  EXPECT_EQ(replayed, 10u);  // create + 9 intact mutations; torn 10th dropped
  Scanner scan(recovered, "t");
  EXPECT_EQ(scan.read_all().size(), 9u);
  std::remove(path.c_str());
}

TEST(Wal, GarbageFileReplaysNothing) {
  const auto path = temp_wal_path("garbage");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "this is not a wal";
  }
  Instance recovered;
  EXPECT_EQ(recover_from_wal(recovered, path), 0u);
  EXPECT_TRUE(recovered.table_names().empty());
  std::remove(path.c_str());
}

TEST(Wal, MissingFileReplaysNothing) {
  Instance recovered;
  EXPECT_EQ(recover_from_wal(recovered, "/does/not/exist.wal"), 0u);
}

TEST(Wal, MutationWithExplicitFieldsSurvives) {
  const auto path = temp_wal_path("fields");
  std::remove(path.c_str());
  {
    Instance db;
    db.attach_wal(std::make_shared<WriteAheadLog>(path));
    db.create_table("t");
    Mutation m("r");
    m.put("fam", "qual", "vis&label", 12345, "payload");
    db.apply("t", m);
    db.sync_wal();
  }
  Instance recovered;
  recover_from_wal(recovered, path);
  Scanner scan(recovered, "t");
  scan.set_authorizations({"vis", "label"});
  const auto cells = scan.read_all();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].key.family, "fam");
  EXPECT_EQ(cells[0].key.visibility, "vis&label");
  EXPECT_EQ(cells[0].key.ts, 12345);
  EXPECT_EQ(cells[0].value, "payload");
  std::remove(path.c_str());
}

TEST(Wal, CloneTableIsJournaledAndSurvivesRecovery) {
  const auto path = temp_wal_path("clone_journal");
  std::remove(path.c_str());
  {
    Instance db(2);
    db.attach_wal(std::make_shared<WriteAheadLog>(path));
    db.create_table("src");
    db.add_splits("src", {"m"});
    for (const char* row : {"a", "n", "z"}) {
      Mutation m(row);
      m.put("f", "q", std::string("v-") + row);
      db.apply("src", m);
    }
    db.clone_table("src", "copy");
    // Post-clone divergence must replay on the right table.
    Mutation m("extra");
    m.put("f", "q", "only-in-copy");
    db.apply("copy", m);
    db.sync_wal();
  }  // crash

  Instance recovered(2);
  recover_from_wal(recovered, path);
  ASSERT_TRUE(recovered.table_exists("src"));
  ASSERT_TRUE(recovered.table_exists("copy"));
  EXPECT_EQ(recovered.list_splits("copy"), recovered.list_splits("src"));
  Scanner scan_src(recovered, "src");
  EXPECT_EQ(scan_src.read_all().size(), 3u);
  Scanner scan_copy(recovered, "copy");
  EXPECT_EQ(scan_copy.read_all().size(), 4u);
  std::remove(path.c_str());
}

TEST(Wal, AddSplitsIsJournaledAndSurvivesRecovery) {
  const auto path = temp_wal_path("splits_journal");
  std::remove(path.c_str());
  {
    Instance db(2);
    db.attach_wal(std::make_shared<WriteAheadLog>(path));
    db.create_table("t");
    Mutation pre("before");
    pre.put("f", "q", "v");
    db.apply("t", pre);
    db.add_splits("t", {"g", "p"});
    Mutation post("zzz");
    post.put("f", "q", "v");
    db.apply("t", post);
    db.sync_wal();
  }  // crash

  Instance recovered(2);
  recover_from_wal(recovered, path);
  // The recovered table keeps its tablet layout, not just its data.
  EXPECT_EQ(recovered.list_splits("t"),
            (std::vector<std::string>{"g", "p"}));
  Scanner scan(recovered, "t");
  EXPECT_EQ(scan.read_all().size(), 2u);
  std::remove(path.c_str());
}

TEST(Wal, TornTailAtEveryByteOffsetDeliversTheIntactPrefix) {
  const auto path = temp_wal_path("torn_sweep");
  std::remove(path.c_str());
  // A log exercising every record kind: create, splits, mutations
  // (simple + explicit-fields), clone, create+delete, mutation on the
  // clone.
  {
    Instance db;
    db.attach_wal(std::make_shared<WriteAheadLog>(path));
    db.create_table("t1");                    // 1 kCreateTable
    db.add_splits("t1", {"m"});               // 2 kAddSplits
    Mutation a("alpha");
    a.put("f", "q", "v1");
    db.apply("t1", a);                        // 3 kMutation
    Mutation b("beta");
    b.put("fam", "qual", "vis", 777, "v2");
    db.apply("t1", b);                        // 4 kMutation
    db.clone_table("t1", "t2");               // 5 kCloneTable
    db.create_table("tmp");                   // 6 kCreateTable
    db.delete_table("tmp");                   // 7 kDeleteTable
    Mutation c("gamma");
    c.put("f", "q", "v3");
    db.apply("t2", c);                        // 8 kMutation
    db.sync_wal();
  }

  // Parse the record boundaries: each record is magic(u32) | len(u32) |
  // body(len).
  std::ifstream in(path, std::ios::binary);
  const std::string full((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  std::vector<std::size_t> record_ends;
  std::size_t off = 0;
  while (off + 8 <= full.size()) {
    std::uint32_t len = 0;
    std::memcpy(&len, full.data() + off + 4, sizeof(len));
    off += 8 + len;
    record_ends.push_back(off);
  }
  ASSERT_EQ(record_ends.size(), 8u);
  ASSERT_EQ(record_ends.back(), full.size());

  // Truncate at EVERY byte offset: replay must deliver exactly the
  // records that end at or before the cut, for all record kinds.
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(full.data(), static_cast<std::streamsize>(cut));
    }
    const std::size_t expected = static_cast<std::size_t>(
        std::count_if(record_ends.begin(), record_ends.end(),
                      [cut](std::size_t end) { return end <= cut; }));
    std::size_t delivered = 0;
    std::uint64_t last_seq = 0;
    replay_wal(path, [&](const WalRecord& r) {
      ++delivered;
      EXPECT_GT(r.seq, last_seq) << "seqs must be strictly increasing";
      last_seq = r.seq;
    });
    ASSERT_EQ(delivered, expected) << "torn at byte " << cut;
  }

  // Full-file recovery sanity: every kind replays into a live catalog.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(full.size()));
  }
  Instance recovered;
  EXPECT_EQ(recover_from_wal(recovered, path), 8u);
  EXPECT_TRUE(recovered.table_exists("t1"));
  EXPECT_TRUE(recovered.table_exists("t2"));
  EXPECT_FALSE(recovered.table_exists("tmp"));
  EXPECT_EQ(recovered.list_splits("t2"), (std::vector<std::string>{"m"}));
  Scanner scan(recovered, "t2");
  EXPECT_EQ(scan.read_all().size(), 3u);
  std::remove(path.c_str());
}

TEST(Wal, RoundTripsUnderEverySyncMode) {
  for (const auto mode : {WalSyncMode::kPerAppend, WalSyncMode::kGroup,
                          WalSyncMode::kInterval}) {
    const auto path = temp_wal_path("sync_modes");
    std::remove(path.c_str());
    WalOptions opts;
    opts.sync_mode = mode;
    {
      Instance db;
      db.attach_wal(std::make_shared<WriteAheadLog>(path, opts));
      TableConfig cfg;
      cfg.wal = opts;
      db.create_table("t", cfg);
      for (int i = 0; i < 40; ++i) {
        Mutation m("r" + util::zero_pad(static_cast<std::uint64_t>(i), 3));
        m.put("f", "q", "v" + std::to_string(i));
        db.apply("t", m);
      }
      db.sync_wal();
    }
    Instance recovered;
    const auto replayed = recover_from_wal(recovered, path);
    EXPECT_EQ(replayed, 41u) << "mode " << static_cast<int>(mode);
    Scanner scan(recovered, "t");
    EXPECT_EQ(scan.read_all().size(), 40u) << "mode " << static_cast<int>(mode);
    std::remove(path.c_str());
  }
}

TEST(Wal, SequenceNumbersSurviveRotationAndReopen) {
  const auto path = temp_wal_path("seq");
  std::remove(path.c_str());
  std::uint64_t seq_after_rotate = 0;
  {
    auto wal = std::make_shared<WriteAheadLog>(path);
    wal->log_create_table("t");
    wal->log_create_table("u");
    EXPECT_EQ(wal->next_seq(), 3u);
    wal->rotate();  // truncates the FILE, not the sequence
    EXPECT_EQ(wal->next_seq(), 3u);
    wal->log_create_table("v");
    wal->sync();
    seq_after_rotate = wal->next_seq();
    EXPECT_EQ(seq_after_rotate, 4u);
  }
  // Reopening continues after the last intact record.
  WriteAheadLog reopened(path);
  EXPECT_EQ(reopened.next_seq(), seq_after_rotate);
  // And replay with min_seq filters the already-covered records.
  std::size_t delivered = 0;
  replay_wal(path, [&](const WalRecord&) { ++delivered; }, 3);
  EXPECT_EQ(delivered, 1u);  // only "v" (seq 3) is at/past min_seq
  std::remove(path.c_str());
}

TEST(CloneTable, IndependentCopyWithDataAndSplits) {
  Instance db(2);
  db.create_table("src");
  db.add_splits("src", {"m"});
  for (const char* row : {"a", "n", "z"}) {
    Mutation m(row);
    m.put("f", "q", std::string("v-") + row);
    db.apply("src", m);
  }
  db.clone_table("src", "copy");
  EXPECT_EQ(db.list_splits("copy"), db.list_splits("src"));
  Scanner scan_copy(db, "copy");
  EXPECT_EQ(scan_copy.read_all().size(), 3u);
  // Mutating the copy leaves the source untouched.
  Mutation m("extra");
  m.put("f", "q", "only-in-copy");
  db.apply("copy", m);
  Scanner scan_src(db, "src");
  EXPECT_EQ(scan_src.read_all().size(), 3u);
  Scanner scan_copy2(db, "copy");
  EXPECT_EQ(scan_copy2.read_all().size(), 4u);
  // Cloning onto an existing name fails.
  EXPECT_THROW(db.clone_table("src", "copy"), std::invalid_argument);
}

TEST(CloneTable, PreservesConfigBehaviour) {
  Instance db;
  TableConfig cfg;
  cfg.versioning = false;
  cfg.attach_iterator({10, "sum", kAllScopes, [](IterPtr src) {
                         return std::make_unique<CombinerIterator>(
                             std::move(src), sum_double_reducer());
                       }});
  db.create_table("src", std::move(cfg));
  for (int i = 0; i < 5; ++i) {
    Mutation m("counter");
    m.put("f", "q", encode_double(1.0));
    db.apply("src", m);
  }
  db.clone_table("src", "copy");
  // The clone inherits the combiner: its scan folds the five versions.
  Scanner scan(db, "copy");
  const auto cells = scan.read_all();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(decode_double(cells[0].value), 5.0);
}

}  // namespace
}  // namespace graphulo::nosql
