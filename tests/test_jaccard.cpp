// Jaccard similarity — Algorithm 2, verified against the exact
// intermediate matrices and final coefficients of the paper's Fig. 2,
// plus agreement properties across the three implementations.

#include <gtest/gtest.h>

#include "algo/jaccard.hpp"
#include "la/la.hpp"
#include "test_helpers.hpp"

namespace graphulo::algo {
namespace {

using graphulo::testing::paper_example_adjacency;
using graphulo::testing::random_undirected;
using la::Index;
using la::SpMat;

TEST(JaccardPaperExample, IntermediateMatricesMatchFig2) {
  const auto a = paper_example_adjacency();
  const auto u = la::triu(a);
  // U as printed in Fig. 2.
  EXPECT_EQ(u.to_dense(), (std::vector<double>{
      0, 1, 1, 1, 0,
      0, 0, 1, 0, 1,
      0, 0, 0, 1, 0,
      0, 0, 0, 0, 0,
      0, 0, 0, 0, 0}));
  // U^2 as printed.
  const auto u2 = la::spgemm<la::PlusTimes<double>>(u, u);
  EXPECT_EQ(u2.to_dense(), (std::vector<double>{
      0, 0, 1, 1, 1,
      0, 0, 0, 1, 0,
      0, 0, 0, 0, 0,
      0, 0, 0, 0, 0,
      0, 0, 0, 0, 0}));
  // U U^T as printed.
  const auto uut = la::spgemm<la::PlusTimes<double>>(u, la::transpose(u));
  EXPECT_EQ(uut.to_dense(), (std::vector<double>{
      3, 1, 1, 0, 0,
      1, 2, 0, 0, 0,
      1, 0, 1, 0, 0,
      0, 0, 0, 0, 0,
      0, 0, 0, 0, 0}));
  // U^T U as printed.
  const auto utu = la::spgemm<la::PlusTimes<double>>(la::transpose(u), u);
  EXPECT_EQ(utu.to_dense(), (std::vector<double>{
      0, 0, 0, 0, 0,
      0, 1, 1, 1, 0,
      0, 1, 2, 1, 1,
      0, 1, 1, 2, 0,
      0, 0, 1, 0, 1}));
  // J (common-neighbor counts) = U^2 + triu(UU^T) + triu(U^TU) - diag.
  const auto counts = la::remove_diag(
      la::add(u2, la::add(la::triu(uut), la::triu(utu))));
  EXPECT_EQ(counts.to_dense(), (std::vector<double>{
      0, 1, 2, 1, 1,
      0, 0, 1, 2, 0,
      0, 0, 0, 1, 1,
      0, 0, 0, 0, 0,
      0, 0, 0, 0, 0}));
}

TEST(JaccardPaperExample, FinalCoefficientsMatchFig2) {
  const auto j = jaccard_linalg(paper_example_adjacency());
  EXPECT_NEAR(j.at(0, 1), 1.0 / 5.0, 1e-12);
  EXPECT_NEAR(j.at(0, 2), 1.0 / 2.0, 1e-12);
  EXPECT_NEAR(j.at(0, 3), 1.0 / 4.0, 1e-12);
  EXPECT_NEAR(j.at(0, 4), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(j.at(1, 2), 1.0 / 5.0, 1e-12);
  EXPECT_NEAR(j.at(1, 3), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(j.at(2, 3), 1.0 / 4.0, 1e-12);
  EXPECT_NEAR(j.at(2, 4), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(j.at(1, 4), 0.0);  // adjacent but no common neighbors
  EXPECT_EQ(j.at(3, 4), 0.0);
  // Symmetric, zero diagonal.
  EXPECT_TRUE(la::is_symmetric(j));
  for (Index i = 0; i < 5; ++i) EXPECT_EQ(j.at(i, i), 0.0);
}

TEST(Jaccard, RejectsNonSquareOrSelfLoops) {
  SpMat<double> rect(2, 3);
  EXPECT_THROW(jaccard_linalg(rect), std::invalid_argument);
  auto loop = SpMat<double>::from_triples(2, 2, {{0, 0, 1.0}});
  EXPECT_THROW(jaccard_linalg(loop), std::invalid_argument);
}

TEST(Jaccard, EmptyAndSingleEdgeGraphs) {
  SpMat<double> empty(4, 4);
  EXPECT_EQ(jaccard_linalg(empty).nnz(), 0);
  auto one_edge = SpMat<double>::from_triples(3, 3, {{0, 1, 1.0}, {1, 0, 1.0}});
  EXPECT_EQ(jaccard_linalg(one_edge).nnz(), 0);  // no common neighbors
}

TEST(Jaccard, CompleteGraphCoefficients) {
  // In K_n every pair shares n-2 neighbors and |union| = n:
  // J = (n-2)/( (n-1)+(n-1)-(n-2) ) = (n-2)/n.
  const Index n = 6;
  std::vector<la::Triple<double>> t;
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      if (i != j) t.push_back({i, j, 1.0});
    }
  }
  const auto j = jaccard_linalg(SpMat<double>::from_triples(n, n, t));
  for (Index p = 0; p < n; ++p) {
    for (Index q = 0; q < n; ++q) {
      if (p != q) {
        EXPECT_NEAR(j.at(p, q), (n - 2.0) / n, 1e-12);
      }
    }
  }
}

TEST(Jaccard, CoefficientsAreInUnitInterval) {
  const auto a = random_undirected(50, 0.15, 61);
  const auto j = jaccard_linalg(a);
  for (double v : j.values()) {
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

class JaccardAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JaccardAgreement, ThreeImplementationsAgree) {
  const auto a = random_undirected(45, 0.18, GetParam());
  const auto fast = jaccard_linalg(a);
  const auto naive = jaccard_naive(a);
  const auto brute = jaccard_baseline(a);
  ASSERT_EQ(fast.nnz(), naive.nnz());
  ASSERT_EQ(fast.nnz(), brute.nnz());
  for (const auto& t : fast.to_triples()) {
    EXPECT_NEAR(naive.at(t.row, t.col), t.val, 1e-12);
    EXPECT_NEAR(brute.at(t.row, t.col), t.val, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JaccardAgreement,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(LinkPrediction, RanksNonAdjacentPairs) {
  // Two triangles sharing vertex 2 with a missing chord: the pair with
  // the largest neighborhood overlap should top the prediction list.
  // Graph: 0-1, 0-2, 1-2, 2-3, 2-4, 3-4, plus 0-3.
  const auto a = SpMat<double>::from_triples(
      5, 5, {{0, 1, 1.0}, {1, 0, 1.0}, {0, 2, 1.0}, {2, 0, 1.0},
             {1, 2, 1.0}, {2, 1, 1.0}, {2, 3, 1.0}, {3, 2, 1.0},
             {2, 4, 1.0}, {4, 2, 1.0}, {3, 4, 1.0}, {4, 3, 1.0},
             {0, 3, 1.0}, {3, 0, 1.0}});
  const auto links = predict_links(a, 3);
  ASSERT_FALSE(links.empty());
  for (const auto& link : links) {
    EXPECT_EQ(a.at(link.u, link.v), 0.0);  // only non-edges predicted
    EXPECT_GT(link.score, 0.0);
  }
  // Scores are sorted descending.
  for (std::size_t i = 1; i < links.size(); ++i) {
    EXPECT_GE(links[i - 1].score, links[i].score);
  }
}

TEST(LinkPrediction, TopKTruncates) {
  const auto a = random_undirected(30, 0.2, 71);
  EXPECT_LE(predict_links(a, 5).size(), 5u);
}

}  // namespace
}  // namespace graphulo::algo
