// SpMV / vspm / SpMSpV correctness against dense references, over
// multiple semirings, plus frontier-expansion semantics used by BFS.

#include <vector>

#include <gtest/gtest.h>

#include "la/spmv.hpp"
#include "test_helpers.hpp"

namespace graphulo::la {
namespace {

using graphulo::testing::random_sparse_int;

TEST(SpMV, TinyKnownProduct) {
  // [1 2; 3 0] * [5, 7] = [19, 15]
  auto a = SpMat<double>::from_dense(2, 2, std::vector<double>{1, 2, 3, 0});
  const auto y = spmv<PlusTimes<double>>(a, {5.0, 7.0});
  EXPECT_EQ(y, (std::vector<double>{19.0, 15.0}));
}

TEST(SpMV, DimensionMismatchThrows) {
  SpMat<double> a(2, 3);
  EXPECT_THROW(spmv<PlusTimes<double>>(a, {1.0, 2.0}), std::invalid_argument);
}

TEST(SpMV, MatchesDenseReference) {
  const Index m = 37, n = 23;
  auto a = random_sparse_int(m, n, 0.2, 31);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (Index j = 0; j < n; ++j) x[static_cast<std::size_t>(j)] = j % 5 - 2;
  const auto y = spmv<PlusTimes<double>>(a, x);
  const auto ad = a.to_dense();
  for (Index i = 0; i < m; ++i) {
    double ref = 0;
    for (Index j = 0; j < n; ++j) {
      ref += ad[static_cast<std::size_t>(i) * n + j] * x[static_cast<std::size_t>(j)];
    }
    EXPECT_DOUBLE_EQ(y[static_cast<std::size_t>(i)], ref);
  }
}

TEST(SpMV, MinPlusRelaxesDistances) {
  // Star: 0->1 (w 4), 0->2 (w 1), 2->1 (w 2). One min-plus step from
  // x = [0, inf, inf] over A^T relaxes to the one-hop distances.
  auto a = SpMat<double>::from_triples(3, 3, {{0, 1, 4.0}, {0, 2, 1.0},
                                              {2, 1, 2.0}});
  using SR = MinPlus<double>;
  const double inf = SR::zero();
  const std::vector<double> x = {0.0, inf, inf};
  const auto y = vspm<SR>(x, a);  // x^T A: distances out of vertex 0
  EXPECT_EQ(y[0], inf);
  EXPECT_EQ(y[1], 4.0);
  EXPECT_EQ(y[2], 1.0);
}

TEST(VSpM, MatchesTransposeSpMV) {
  auto a = random_sparse_int(19, 26, 0.25, 41);
  std::vector<double> x(19);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i % 7);
  const auto via_vspm = vspm<PlusTimes<double>>(x, a);
  const auto via_transpose = spmv<PlusTimes<double>>(transpose(a), x);
  ASSERT_EQ(via_vspm.size(), via_transpose.size());
  for (std::size_t j = 0; j < via_vspm.size(); ++j) {
    EXPECT_DOUBLE_EQ(via_vspm[j], via_transpose[j]);
  }
}

TEST(SpMSpV, ExpandsFrontier) {
  // Directed edges 0->{1,2}, 1->3. Frontier {0} expands to {1, 2}.
  auto a = SpMat<double>::from_triples(4, 4, {{0, 1, 1.0}, {0, 2, 1.0},
                                              {1, 3, 1.0}});
  SpVec<double> frontier(4);
  frontier.push_back(0, 1.0);
  const auto next = spmspv<PlusTimes<double>>(frontier, a);
  EXPECT_EQ(next.indices(), (std::vector<Index>{1, 2}));
  EXPECT_EQ(next.values(), (std::vector<double>{1.0, 1.0}));
}

TEST(SpMSpV, AccumulatesMultiplePredecessors) {
  // 0->2 and 1->2: frontier {0, 1} hits 2 twice, values add.
  auto a = SpMat<double>::from_triples(3, 3, {{0, 2, 1.0}, {1, 2, 1.0}});
  SpVec<double> frontier(3);
  frontier.push_back(0, 1.0);
  frontier.push_back(1, 1.0);
  const auto next = spmspv<PlusTimes<double>>(frontier, a);
  ASSERT_EQ(next.nnz(), 1u);
  EXPECT_EQ(next.at(2), 2.0);
}

TEST(SpMSpV, MatchesDenseVspm) {
  auto a = random_sparse_int(31, 44, 0.15, 51);
  std::vector<std::pair<Index, double>> pairs = {{3, 2.0}, {10, 1.0}, {30, 3.0}};
  auto x = SpVec<double>::from_pairs(31, pairs);
  const auto sparse_result = spmspv<PlusTimes<double>>(x, a);
  const auto dense_result = vspm<PlusTimes<double>>(x.to_dense(), a);
  EXPECT_EQ(sparse_result.to_dense(), dense_result);
}

TEST(SpMSpV, EmptyFrontierYieldsEmptyResult) {
  auto a = random_sparse_int(10, 10, 0.3, 61);
  SpVec<double> empty(10);
  EXPECT_TRUE(spmspv<PlusTimes<double>>(empty, a).empty());
}

TEST(SpVec, FromPairsCombinesAndSorts) {
  auto v = SpVec<double>::from_pairs(10, {{7, 1.0}, {2, 2.0}, {7, 3.0}});
  EXPECT_EQ(v.indices(), (std::vector<Index>{2, 7}));
  EXPECT_EQ(v.at(7), 4.0);
  EXPECT_EQ(v.at(3), 0.0);
}

TEST(SpVec, PushBackEnforcesOrder) {
  SpVec<double> v(5);
  v.push_back(1, 1.0);
  EXPECT_THROW(v.push_back(1, 2.0), std::invalid_argument);
  EXPECT_THROW(v.push_back(0, 2.0), std::invalid_argument);
  EXPECT_THROW(v.push_back(5, 2.0), std::invalid_argument);
  v.push_back(4, 2.0);
  EXPECT_EQ(v.nnz(), 2u);
}

}  // namespace
}  // namespace graphulo::la
