// The server-side iterator framework: vector/merge iterators, delete
// handling, versioning, filters, combiners, transforms.

#include <memory>

#include <gtest/gtest.h>

#include "nosql/codec.hpp"
#include "nosql/combiner.hpp"
#include "nosql/filter_iterators.hpp"
#include "nosql/instance.hpp"
#include "nosql/iterator.hpp"
#include "nosql/merge_iterator.hpp"
#include "nosql/scanner.hpp"

namespace graphulo::nosql {
namespace {

Cell cell(std::string row, std::string fam, std::string qual, Timestamp ts,
          std::string value, bool deleted = false) {
  Cell c;
  c.key.row = std::move(row);
  c.key.family = std::move(fam);
  c.key.qualifier = std::move(qual);
  c.key.ts = ts;
  c.key.deleted = deleted;
  c.value = std::move(value);
  return c;
}

IterPtr vec_iter(std::vector<Cell> cells) {
  std::sort(cells.begin(), cells.end(),
            [](const Cell& a, const Cell& b) { return a.key < b.key; });
  return std::make_unique<VectorIterator>(
      std::make_shared<const std::vector<Cell>>(std::move(cells)));
}

TEST(VectorIterator, SeeksWithinRange) {
  auto it = vec_iter({cell("a", "f", "q", 1, "1"), cell("c", "f", "q", 1, "2"),
                      cell("e", "f", "q", 1, "3")});
  const auto cells = drain(*it, Range::row_range("b", "d"));
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].key.row, "c");
}

TEST(VectorIterator, FullScanInOrder) {
  auto it = vec_iter({cell("b", "f", "q", 1, "2"), cell("a", "f", "q", 1, "1")});
  const auto cells = drain(*it, Range::all());
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].key.row, "a");
  EXPECT_EQ(cells[1].key.row, "b");
}

TEST(VectorIterator, ReseekResets) {
  auto it = vec_iter({cell("a", "f", "q", 1, "1"), cell("b", "f", "q", 1, "2")});
  EXPECT_EQ(drain(*it, Range::exact_row("b")).size(), 1u);
  EXPECT_EQ(drain(*it, Range::all()).size(), 2u);  // reseek widens again
}

TEST(MergeIterator, InterleavesSources) {
  std::vector<IterPtr> children;
  children.push_back(vec_iter({cell("a", "f", "q", 1, "1"),
                               cell("c", "f", "q", 1, "3")}));
  children.push_back(vec_iter({cell("b", "f", "q", 1, "2"),
                               cell("d", "f", "q", 1, "4")}));
  MergeIterator merge(std::move(children));
  const auto cells = drain(merge, Range::all());
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].key.row, "a");
  EXPECT_EQ(cells[1].key.row, "b");
  EXPECT_EQ(cells[2].key.row, "c");
  EXPECT_EQ(cells[3].key.row, "d");
}

TEST(MergeIterator, TieBreaksTowardEarlierChild) {
  // Same key in both children: the first (newer source) must win first.
  std::vector<IterPtr> children;
  children.push_back(vec_iter({cell("a", "f", "q", 5, "new")}));
  children.push_back(vec_iter({cell("a", "f", "q", 5, "old")}));
  MergeIterator merge(std::move(children));
  merge.seek(Range::all());
  ASSERT_TRUE(merge.has_top());
  EXPECT_EQ(merge.top_value(), "new");
}

TEST(MergeIterator, EmptyChildrenHandled) {
  std::vector<IterPtr> children;
  children.push_back(vec_iter({}));
  MergeIterator merge(std::move(children));
  merge.seek(Range::all());
  EXPECT_FALSE(merge.has_top());
}

TEST(DeletingIterator, SuppressesOlderVersionsAndMarker) {
  auto src = vec_iter({cell("a", "f", "q", 5, "", true),   // delete at ts 5
                       cell("a", "f", "q", 7, "newer"),    // survives
                       cell("a", "f", "q", 5, "at-mark"),  // shadowed
                       cell("a", "f", "q", 3, "older"),    // shadowed
                       cell("b", "f", "q", 1, "keep")});
  DeletingIterator del(std::move(src));
  const auto cells = drain(del, Range::all());
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].value, "newer");
  EXPECT_EQ(cells[1].value, "keep");
}

TEST(DeletingIterator, MarkerOnlyAffectsItsCell) {
  auto src = vec_iter({cell("a", "f", "q1", 5, "", true),
                       cell("a", "f", "q2", 3, "other-col")});
  DeletingIterator del(std::move(src));
  const auto cells = drain(del, Range::all());
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].value, "other-col");
}

TEST(VersioningIterator, KeepsNewestVersion) {
  auto src = vec_iter({cell("a", "f", "q", 9, "v9"), cell("a", "f", "q", 5, "v5"),
                       cell("a", "f", "q", 1, "v1"), cell("b", "f", "q", 2, "b2")});
  VersioningIterator ver(std::move(src), 1);
  const auto cells = drain(ver, Range::all());
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].value, "v9");
  EXPECT_EQ(cells[1].value, "b2");
}

TEST(VersioningIterator, KeepsRequestedVersionCount) {
  auto src = vec_iter({cell("a", "f", "q", 9, "v9"), cell("a", "f", "q", 5, "v5"),
                       cell("a", "f", "q", 1, "v1")});
  VersioningIterator ver(std::move(src), 2);
  const auto cells = drain(ver, Range::all());
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].value, "v9");
  EXPECT_EQ(cells[1].value, "v5");
}

TEST(FilterIterator, DropsRejectedCells) {
  auto src = vec_iter({cell("a", "f", "q", 1, "keep"), cell("b", "f", "q", 1, "drop")});
  FilterIterator filter(std::move(src), [](const Key&, const Value& v) {
    return v == "keep";
  });
  const auto cells = drain(filter, Range::all());
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].value, "keep");
}

TEST(ColumnFamilyFilter, KeepsNamedFamilies) {
  auto src = vec_iter({cell("a", "deg", "q", 1, "3"), cell("a", "edge", "q", 1, "1")});
  auto filter = make_column_family_filter(std::move(src), {"deg"});
  const auto cells = drain(*filter, Range::all());
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].key.family, "deg");
}

TEST(TimestampFilter, KeepsWindow) {
  auto src = vec_iter({cell("a", "f", "q", 10, "t10"), cell("b", "f", "q", 5, "t5"),
                       cell("c", "f", "q", 1, "t1")});
  auto filter = make_timestamp_filter(std::move(src), 2, 7);
  const auto cells = drain(*filter, Range::all());
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].value, "t5");
}

TEST(GrepIterator, MatchesAnyField) {
  auto src = vec_iter({cell("user|alice", "f", "q", 1, "x"),
                       cell("user|bob", "f", "q", 1, "alice-friend"),
                       cell("user|carol", "f", "q", 1, "z")});
  auto grep = make_grep_iterator(std::move(src), "alice");
  EXPECT_EQ(drain(*grep, Range::all()).size(), 2u);
}

TEST(TransformIterator, RewritesValues) {
  auto src = vec_iter({cell("a", "f", "q", 1, encode_double(2.0))});
  TransformIterator tr(std::move(src), [](const Key&, const Value& v) {
    return encode_double(decode_double(v).value_or(0.0) * 10.0);
  });
  tr.seek(Range::all());
  ASSERT_TRUE(tr.has_top());
  EXPECT_EQ(decode_double(tr.top_value()), 20.0);
}

TEST(Combiner, SumsAllVersionsOfACell) {
  auto src = vec_iter({cell("a", "f", "q", 3, encode_double(1.5)),
                       cell("a", "f", "q", 2, encode_double(2.0)),
                       cell("a", "f", "q", 1, encode_double(0.5)),
                       cell("b", "f", "q", 1, encode_double(7.0))});
  CombinerIterator comb(std::move(src), sum_double_reducer());
  const auto cells = drain(comb, Range::all());
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(decode_double(cells[0].value), 4.0);
  EXPECT_EQ(cells[0].key.ts, 3);  // newest timestamp kept
  EXPECT_EQ(decode_double(cells[1].value), 7.0);
}

TEST(Combiner, RestrictsToNamedFamilies) {
  auto src = vec_iter({cell("a", "sum", "q", 2, encode_double(1.0)),
                       cell("a", "sum", "q", 1, encode_double(2.0)),
                       cell("a", "raw", "q", 2, "x"),
                       cell("a", "raw", "q", 1, "y")});
  CombinerIterator comb(std::move(src), sum_double_reducer(), {"sum"});
  const auto cells = drain(comb, Range::all());
  // raw family passes through with both versions; sum family collapsed.
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0].value, "x");
  EXPECT_EQ(cells[1].value, "y");
  EXPECT_EQ(decode_double(cells[2].value), 3.0);
}

TEST(Combiner, MinMaxIntReducers) {
  auto src1 = vec_iter({cell("a", "f", "q", 2, encode_double(5.0)),
                        cell("a", "f", "q", 1, encode_double(3.0))});
  CombinerIterator mn(std::move(src1), min_double_reducer());
  mn.seek(Range::all());
  EXPECT_EQ(decode_double(mn.top_value()), 3.0);

  auto src2 = vec_iter({cell("a", "f", "q", 2, encode_double(5.0)),
                        cell("a", "f", "q", 1, encode_double(3.0))});
  CombinerIterator mx(std::move(src2), max_double_reducer());
  mx.seek(Range::all());
  EXPECT_EQ(decode_double(mx.top_value()), 5.0);

  auto src3 = vec_iter({cell("a", "f", "q", 2, encode_int(40)),
                        cell("a", "f", "q", 1, encode_int(2))});
  CombinerIterator si(std::move(src3), sum_int_reducer());
  si.seek(Range::all());
  EXPECT_EQ(decode_int(si.top_value()), 42);
}

TEST(Stacking, AttachedIteratorPriorityOrdersStages) {
  // Two table-attached iterators: a doubler and a >=4 filter. With the
  // doubler at LOWER priority (closer to the data) a stored 2 becomes 4
  // and passes the filter; with priorities swapped the raw 2 is filtered
  // out before doubling. Priority must control composition order.
  auto make_double = [](IterPtr src) -> IterPtr {
    return std::make_unique<TransformIterator>(
        std::move(src), [](const Key&, const Value& v) {
          return encode_double(decode_double(v).value_or(0.0) * 2.0);
        });
  };
  auto make_filter = [](IterPtr src) -> IterPtr {
    return std::make_unique<FilterIterator>(
        std::move(src), [](const Key&, const Value& v) {
          return decode_double(v).value_or(0.0) >= 4.0;
        });
  };
  for (const bool double_first : {true, false}) {
    Instance db;
    TableConfig cfg;
    cfg.attach_iterator({double_first ? 10 : 20, "double", kScanScope,
                         make_double});
    cfg.attach_iterator({double_first ? 20 : 10, "filter", kScanScope,
                         make_filter});
    db.create_table("t", std::move(cfg));
    Mutation m("r");
    m.put("f", "q", encode_double(2.0));
    db.apply("t", m);
    Scanner scan(db, "t");
    const auto cells = scan.read_all();
    if (double_first) {
      ASSERT_EQ(cells.size(), 1u);
      EXPECT_EQ(decode_double(cells[0].value), 4.0);
    } else {
      EXPECT_TRUE(cells.empty());
    }
  }
}

TEST(Stacking, DeleteThenVersionThenCombine) {
  // Realistic stack: deletes resolved first, then a summing combiner
  // folds surviving versions.
  auto src = vec_iter({cell("a", "f", "q", 9, encode_double(1.0)),
                       cell("a", "f", "q", 5, "", true),
                       cell("a", "f", "q", 4, encode_double(100.0)),  // deleted
                       cell("a", "f", "q", 7, encode_double(2.0))});
  IterPtr stack = std::make_unique<DeletingIterator>(std::move(src));
  CombinerIterator comb(std::move(stack), sum_double_reducer());
  const auto cells = drain(comb, Range::all());
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(decode_double(cells[0].value), 3.0);  // 1.0 + 2.0, not 100
}

}  // namespace
}  // namespace graphulo::nosql
