// Fault injection, retry/recovery discipline, checkpointing, and the
// end-to-end crash-consistency property test: the whole failure model
// of DESIGN.md §8 under deterministic injected faults.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/tablemult.hpp"
#include "nosql/nosql.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace graphulo {
namespace {

using core::TableMultOptions;
using core::table_mult;
using nosql::BatchWriter;
using nosql::Cell;
using nosql::CombinerIterator;
using nosql::Instance;
using nosql::Mutation;
using nosql::Scanner;
using nosql::TableConfig;
using nosql::WriteAheadLog;
using nosql::decode_double;
using nosql::encode_double;
using nosql::kAllScopes;
using nosql::recover_from_wal;
using nosql::recover_instance;
using nosql::replay_wal;
using nosql::write_checkpoint;
namespace fault = util::fault;
namespace sites = util::fault::sites;

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/graphulo_fault_" + name;
}

/// Disarms every site after each test so injection never leaks.
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::reset(); }
};

/// A retry policy with enough attempts that a site armed with <= 10
/// scheduled fires can never exhaust it, and negligible backoff so the
/// tests stay fast.
util::RetryPolicy test_retry() {
  util::RetryPolicy p;
  p.max_attempts = 25;
  p.initial_backoff = std::chrono::microseconds(1);
  p.max_backoff = std::chrono::microseconds(10);
  return p;
}

/// The TableMult result-table config (versioning off + summing
/// combiner), as a value the recovery TableConfigProvider can return.
TableConfig sum_config() {
  TableConfig cfg;
  cfg.versioning = false;
  cfg.attach_iterator({10, "plus-combiner", kAllScopes, [](nosql::IterPtr src) {
                         return std::make_unique<CombinerIterator>(
                             std::move(src), nosql::sum_double_reducer());
                       }});
  return cfg;
}

std::vector<Cell> cells_of(Instance& db, const std::string& table) {
  Scanner scan(db, table);
  return scan.read_all();
}

/// Scan folded to (row|family|qualifier) -> decoded value, for
/// comparing combiner tables where timestamps are nondeterministic.
std::map<std::string, double> value_map(Instance& db,
                                        const std::string& table) {
  std::map<std::string, double> out;
  for (const auto& c : cells_of(db, table)) {
    const auto v = decode_double(c.value);
    out[c.key.row + "|" + c.key.family + "|" + c.key.qualifier] =
        v ? *v : -1.0;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Injector unit tests
// ---------------------------------------------------------------------------

TEST_F(FaultTest, DisarmedSiteIsTransparent) {
  EXPECT_FALSE(fault::enabled());
  EXPECT_NO_THROW(fault::point("never.armed"));
  EXPECT_EQ(fault::stats("never.armed").hits, 0u);  // fast path: no counting
}

TEST_F(FaultTest, ScheduledTriggerFiresOnExactHits) {
  fault::FaultSpec spec;
  spec.fire_on_hits = {4, 2};  // unsorted on purpose
  fault::arm("unit.sched", spec);
  EXPECT_TRUE(fault::enabled());
  std::vector<int> fired;
  for (int hit = 1; hit <= 5; ++hit) {
    try {
      fault::point("unit.sched");
    } catch (const util::TransientError&) {
      fired.push_back(hit);
    }
  }
  EXPECT_EQ(fired, (std::vector<int>{2, 4}));
  EXPECT_EQ(fault::stats("unit.sched").hits, 5u);
  EXPECT_EQ(fault::stats("unit.sched").fires, 2u);
}

TEST_F(FaultTest, MaxFiresCapsFiring) {
  fault::FaultSpec spec;
  spec.probability = 1.0;
  spec.max_fires = 3;
  fault::arm("unit.cap", spec);
  std::uint64_t fires = 0;
  for (int i = 0; i < 10; ++i) {
    try {
      fault::point("unit.cap");
    } catch (const util::TransientError&) {
      ++fires;
    }
  }
  EXPECT_EQ(fires, 3u);
  EXPECT_EQ(fault::stats("unit.cap").hits, 10u);
}

TEST_F(FaultTest, FatalSpecThrowsFatalError) {
  fault::FaultSpec spec;
  spec.fire_on_hits = {1};
  spec.fatal = true;
  fault::arm("unit.fatal", spec);
  EXPECT_THROW(fault::point("unit.fatal"), util::FatalError);
}

TEST_F(FaultTest, ProbabilisticStreamIsDeterministicUnderSeed) {
  auto run = [] {
    fault::seed(424242);
    fault::FaultSpec spec;
    spec.probability = 0.3;
    fault::arm("unit.prob", spec);
    std::vector<int> fired;
    for (int hit = 1; hit <= 200; ++hit) {
      try {
        fault::point("unit.prob");
      } catch (const util::TransientError&) {
        fired.push_back(hit);
      }
    }
    fault::reset();
    return fired;
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
  EXPECT_GT(first.size(), 20u);   // ~60 expected at p=0.3
  EXPECT_LT(first.size(), 150u);
}

TEST_F(FaultTest, ResetDisarmsAndClearsCounters) {
  fault::FaultSpec spec;
  spec.probability = 1.0;
  fault::arm("unit.reset", spec);
  EXPECT_THROW(fault::point("unit.reset"), util::TransientError);
  fault::reset();
  EXPECT_FALSE(fault::enabled());
  EXPECT_NO_THROW(fault::point("unit.reset"));
  EXPECT_EQ(fault::stats("unit.reset").hits, 0u);
  EXPECT_EQ(fault::total_fires(), 0u);
}

TEST_F(FaultTest, SiteCatalogCoversThePipeline) {
  const auto& all = fault::all_sites();
  EXPECT_GE(all.size(), 13u);
  for (const char* s : {sites::kWalAppend, sites::kWalSync, sites::kWalCommit,
                        sites::kRFileWrite, sites::kRFileRead,
                        sites::kRFileSeek, sites::kMemtableFlush,
                        sites::kTabletCompact, sites::kInstanceApply,
                        sites::kBatchWriterFlush, sites::kTableMultWorker,
                        sites::kCheckpointWrite, sites::kCheckpointLoad}) {
    EXPECT_NE(std::find(all.begin(), all.end(), std::string(s)), all.end())
        << "missing site " << s;
  }
}

// ---------------------------------------------------------------------------
// Retry machinery
// ---------------------------------------------------------------------------

TEST_F(FaultTest, WithRetriesAbsorbsTransientFailures) {
  int calls = 0;
  const int got = util::with_retries("test", test_retry(), [&] {
    if (++calls < 3) throw util::TransientError("flaky");
    return 41 + 1;
  });
  EXPECT_EQ(got, 42);
  EXPECT_EQ(calls, 3);
}

TEST_F(FaultTest, WithRetriesGivesUpAfterMaxAttempts) {
  util::RetryPolicy p = test_retry();
  p.max_attempts = 4;
  int calls = 0;
  EXPECT_THROW(util::with_retries("test", p,
                                  [&]() -> void {
                                    ++calls;
                                    throw util::TransientError("always");
                                  }),
               util::TransientError);
  EXPECT_EQ(calls, 4);
}

TEST_F(FaultTest, WithRetriesDoesNotRetryFatal) {
  int calls = 0;
  EXPECT_THROW(util::with_retries("test", test_retry(),
                                  [&]() -> void {
                                    ++calls;
                                    throw util::FatalError("disk died");
                                  }),
               util::FatalError);
  EXPECT_EQ(calls, 1);
}

// ---------------------------------------------------------------------------
// Write-path resilience
// ---------------------------------------------------------------------------

TEST_F(FaultTest, ApplySurvivesInjectedApplyAndWalFaults) {
  const auto path = temp_path("apply_retry.wal");
  std::remove(path.c_str());
  {
    Instance db;
    db.set_retry_policy(test_retry());
    db.attach_wal(std::make_shared<WriteAheadLog>(path));
    db.create_table("t");

    fault::FaultSpec spec;
    spec.fire_on_hits = {1};
    fault::arm(sites::kInstanceApply, spec);
    fault::FaultSpec wal_spec;
    wal_spec.fire_on_hits = {2};
    fault::arm(sites::kWalAppend, wal_spec);

    for (int i = 0; i < 2; ++i) {
      Mutation m("row" + std::to_string(i));
      m.put("f", "q", "v" + std::to_string(i));
      db.apply("t", m);
    }
    db.sync_wal();
    EXPECT_GE(fault::stats(sites::kInstanceApply).fires, 1u);
    EXPECT_GE(fault::stats(sites::kWalAppend).fires, 1u);
    fault::reset();
    EXPECT_EQ(cells_of(db, "t").size(), 2u);
  }
  // Retries must not duplicate log records: exactly 1 create + 2
  // mutations despite the injected append failure.
  std::size_t mutations = 0, total = 0;
  replay_wal(path, [&](const nosql::WalRecord& r) {
    ++total;
    if (r.kind == nosql::WalRecord::Kind::kMutation) ++mutations;
  });
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(mutations, 2u);
  std::remove(path.c_str());
}

TEST_F(FaultTest, GroupCommitAbsorbsTransientCommitFaults) {
  const auto path = temp_path("group_transient.wal");
  std::remove(path.c_str());
  fault::FaultSpec spec;
  spec.fire_on_hits = {1, 2, 5};
  fault::arm(sites::kWalCommit, spec);
  nosql::WalOptions opts;
  opts.sync_mode = nosql::WalSyncMode::kGroup;
  {
    WriteAheadLog wal(path, opts);
    for (int i = 0; i < 10; ++i) {
      Mutation m("r" + std::to_string(i));
      m.put("f", "q", "v");
      wal.log_mutation("t", m, static_cast<nosql::Timestamp>(i + 1));
    }
    // The committer retried through the injected failures; every
    // appender's record is durable and nothing was written twice (the
    // commit site fires before any batch byte lands).
    EXPECT_EQ(wal.durable_seq(), 10u);
    EXPECT_GE(fault::stats(sites::kWalCommit).fires, 3u);
  }
  std::size_t replayed = 0;
  std::uint64_t prev = 0;
  replay_wal(path, [&](const nosql::WalRecord& r) {
    EXPECT_EQ(r.seq, prev + 1);  // exactly once each, in order
    prev = r.seq;
    ++replayed;
  });
  EXPECT_EQ(replayed, 10u);
  std::remove(path.c_str());
}

TEST_F(FaultTest, FatalGroupCommitCrashLeavesPrefixConsistentWal) {
  const auto path = temp_path("group_fatal.wal");
  std::remove(path.c_str());
  nosql::WalOptions opts;
  opts.sync_mode = nosql::WalSyncMode::kGroup;
  {
    WriteAheadLog wal(path, opts);
    Mutation m("r");
    m.put("f", "q", "v");
    wal.log_mutation("t", m, 1);
    wal.log_mutation("t", m, 2);
    fault::FaultSpec spec;
    spec.fire_on_hits = {1};
    spec.fatal = true;
    fault::arm(sites::kWalCommit, spec);
    EXPECT_THROW(wal.log_mutation("t", m, 3), util::FatalError);
    // The failure is sticky: once a commit fails permanently the WAL
    // refuses further appends instead of risking a gapped tail.
    EXPECT_THROW(wal.log_mutation("t", m, 4), util::FatalError);
    EXPECT_EQ(wal.durable_seq(), 2u);
  }  // destructor stays quiet and drops the failed suffix
  std::size_t replayed = 0;
  std::uint64_t last = 0;
  replay_wal(path, [&](const nosql::WalRecord& r) {
    last = r.seq;
    ++replayed;
  });
  // Recovery sees exactly the clean prefix from before the crash.
  EXPECT_EQ(replayed, 2u);
  EXPECT_EQ(last, 2u);
  std::remove(path.c_str());
}

TEST_F(FaultTest, RetriesDoNotPerturbTimestamps) {
  auto workload = [](Instance& db) {
    db.set_retry_policy(test_retry());
    db.create_table("t");
    for (int i = 0; i < 6; ++i) {
      Mutation m("r" + std::to_string(i));
      m.put("f", "q", "v");
      db.apply("t", m);
    }
    return cells_of(db, "t");
  };

  Instance faulted;
  fault::FaultSpec spec;
  spec.fire_on_hits = {1, 3, 4};
  fault::arm(sites::kInstanceApply, spec);
  const auto faulted_cells = workload(faulted);
  EXPECT_GE(fault::stats(sites::kInstanceApply).fires, 3u);
  fault::reset();

  Instance reference;
  const auto reference_cells = workload(reference);
  // Byte-identical including timestamps: the clock is advanced once per
  // mutation, before the retry loop.
  EXPECT_EQ(faulted_cells, reference_cells);
}

TEST_F(FaultTest, BatchWriterResumesWithoutDuplicates) {
  Instance db;
  db.set_retry_policy(test_retry());
  db.create_table("c", sum_config());

  BatchWriter bw(db, "c");  // default policy: 5 attempts
  for (int i = 0; i < 8; ++i) {
    Mutation m("r");
    m.put("f", "q", encode_double(1.0));
    bw.add_mutation(std::move(m));
  }
  // Mutations 1-2 succeed (hits 1, 2); mutation 3 burns all 5 attempts
  // (hits 3-7) and the flush gives up with the suffix retained.
  fault::FaultSpec spec;
  spec.fire_on_hits = {3, 4, 5, 6, 7};
  fault::arm(sites::kBatchWriterFlush, spec);
  EXPECT_THROW(bw.flush(), util::TransientError);
  EXPECT_EQ(bw.mutations_written(), 2u);
  EXPECT_EQ(bw.mutations_pending(), 6u);
  ASSERT_TRUE(bw.last_error().has_value());

  // The schedule is exhausted: the next flush resumes at mutation 3.
  bw.close();
  EXPECT_EQ(bw.mutations_written(), 8u);
  EXPECT_EQ(bw.mutations_pending(), 0u);

  // Exactly-once: the sum sees each of the 8 increments exactly once.
  const auto sums = value_map(db, "c");
  ASSERT_EQ(sums.size(), 1u);
  EXPECT_EQ(sums.at("r|f|q"), 8.0);
}

TEST_F(FaultTest, BatchWriterCloseReportsErrorAndDestructorStaysQuiet) {
  Instance db;
  db.create_table("t");
  fault::FaultSpec spec;
  spec.probability = 1.0;
  spec.fatal = true;  // FatalError is not retried: fails immediately
  fault::arm(sites::kBatchWriterFlush, spec);
  {
    BatchWriter bw(db, "t");
    Mutation m("r");
    m.put("f", "q", "v");
    bw.add_mutation(std::move(m));
    EXPECT_THROW(bw.close(), util::FatalError);
    EXPECT_TRUE(bw.last_error().has_value());
  }  // closed: destructor is a no-op
  {
    BatchWriter bw(db, "t");
    Mutation m("r2");
    m.put("f", "q", "v");
    bw.add_mutation(std::move(m));
    // Destructor path: the final flush fails but only warns — never
    // throws out of a destructor.
  }
  SUCCEED();
}

TEST_F(FaultTest, ThresholdFlushFailureIsContainedNotLost) {
  Instance db;
  db.set_retry_policy(test_retry());
  TableConfig cfg;
  cfg.flush_entries = 4;  // force a threshold flush mid-ingest
  db.create_table("t", std::move(cfg));

  fault::FaultSpec spec;
  spec.fire_on_hits = {1};  // first memtable flush fails
  fault::arm(sites::kMemtableFlush, spec);
  for (int i = 0; i < 6; ++i) {
    Mutation m("r" + std::to_string(i));
    m.put("f", "q", "v");
    EXPECT_NO_THROW(db.apply("t", m));  // contained: the write succeeds
  }
  EXPECT_GE(fault::stats(sites::kMemtableFlush).fires, 1u);
  EXPECT_EQ(cells_of(db, "t").size(), 6u);  // nothing lost
  // An explicit flush later (schedule exhausted) drains the memtable.
  EXPECT_NO_THROW(db.flush("t"));
  EXPECT_EQ(cells_of(db, "t").size(), 6u);
}

// ---------------------------------------------------------------------------
// TableMult partition retry + deadline
// ---------------------------------------------------------------------------

/// A(k,i), B(k,j) over `rows` shared rows with small-integer values, so
/// C sums are exact regardless of fold order.
void fill_mult_inputs(Instance& db, int rows) {
  db.create_table("A");
  db.create_table("B");
  db.add_splits("A", {"r08", "r16", "r24"});
  for (int r = 0; r < rows; ++r) {
    Mutation ma("r" + util::zero_pad(static_cast<std::uint64_t>(r), 2));
    for (int c = 0; c < 4; ++c) {
      ma.put("", "i" + std::to_string(c),
             encode_double(static_cast<double>((r * 7 + c) % 5 + 1)));
    }
    db.apply("A", ma);
    Mutation mb("r" + util::zero_pad(static_cast<std::uint64_t>(r), 2));
    for (int c = 0; c < 3; ++c) {
      mb.put("", "j" + std::to_string(c),
             encode_double(static_cast<double>((r * 3 + c) % 4 + 1)));
    }
    db.apply("B", mb);
  }
}

TEST_F(FaultTest, TableMultRetriesFailedPartitionsExactlyOnce) {
  Instance reference;
  fill_mult_inputs(reference, 32);
  TableMultOptions opt;
  opt.num_workers = 4;
  opt.max_partition_retries = 8;
  table_mult(reference, "A", "B", "C", opt);
  const auto expected = value_map(reference, "C");
  ASSERT_FALSE(expected.empty());

  Instance db;
  db.set_retry_policy(test_retry());
  fill_mult_inputs(db, 32);
  db.flush("A");  // exercise the RFile read path in the workers too
  db.flush("B");
  fault::FaultSpec spec;
  spec.fire_on_hits = {3, 20, 35};
  fault::arm(sites::kTableMultWorker, spec);
  const auto stats = table_mult(db, "A", "B", "C", opt);
  EXPECT_GE(fault::stats(sites::kTableMultWorker).fires, 1u);
  EXPECT_GE(stats.retried_partitions, 1u);
  EXPECT_EQ(stats.timed_out_partitions, 0u);
  fault::reset();

  // Despite abandoned attempts and resumed partitions, every partial
  // product landed exactly once: the sums match the unfaulted run.
  EXPECT_EQ(value_map(db, "C"), expected);
}

TEST_F(FaultTest, PartitionDeadlineDegradesToWarningNotStall) {
  Instance db;
  fill_mult_inputs(db, 3);
  TableMultOptions opt;
  opt.num_workers = 1;
  opt.partition_deadline = std::chrono::milliseconds(1);
  opt.multiply = [](double a, double b) {
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    return a * b;
  };
  // Must return (with the partition marked lost), not throw or hang.
  const auto stats = table_mult(db, "A", "B", "C", opt);
  ASSERT_EQ(stats.partitions.size(), 1u);
  EXPECT_TRUE(stats.partitions[0].timed_out);
  EXPECT_EQ(stats.timed_out_partitions, 1u);
}

// ---------------------------------------------------------------------------
// Checkpoint + bounded recovery
// ---------------------------------------------------------------------------

TEST_F(FaultTest, CheckpointBoundsReplayToTheWalTail) {
  const auto wal_path = temp_path("ckpt_bound.wal");
  const auto ckpt_path = temp_path("ckpt_bound.ckpt");
  std::remove(wal_path.c_str());
  std::remove(ckpt_path.c_str());

  std::uint64_t covers = 0, end = 0;
  {
    Instance db(2);
    db.attach_wal(std::make_shared<WriteAheadLog>(wal_path));
    db.create_table("t");
    for (int i = 0; i < 100; ++i) {
      Mutation m("r" + util::zero_pad(static_cast<std::uint64_t>(i), 3));
      m.put("f", "q", "v" + std::to_string(i));
      db.apply("t", m);
    }
    db.sync_wal();
    const auto ck = write_checkpoint(db, ckpt_path);
    EXPECT_EQ(ck.tables, 1u);
    EXPECT_EQ(ck.cells, 100u);
    covers = ck.covers_seq;
    for (int i = 100; i < 105; ++i) {
      Mutation m("r" + util::zero_pad(static_cast<std::uint64_t>(i), 3));
      m.put("f", "q", "v" + std::to_string(i));
      db.apply("t", m);
    }
    db.sync_wal();
    end = db.wal()->next_seq();
  }  // crash

  Instance rec(2);
  const auto r = recover_instance(rec, ckpt_path, wal_path);
  EXPECT_TRUE(r.checkpoint_loaded);
  EXPECT_EQ(r.tables_restored, 1u);
  EXPECT_EQ(r.cells_restored, 100u);
  // Replay is bounded by the tail, NOT the write history: 5 records,
  // not 101.
  EXPECT_EQ(r.records_replayed, 5u);
  EXPECT_EQ(r.records_replayed, end - covers);
  EXPECT_EQ(cells_of(rec, "t").size(), 105u);

  // The recovered clock is past everything replayed: a new write wins.
  Mutation m("r000");
  m.put("f", "q", "new");
  rec.apply("t", m);
  Scanner scan(rec, "t");
  scan.set_range(nosql::Range::exact_row("r000"));
  const auto cells = scan.read_all();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].value, "new");
  std::remove(wal_path.c_str());
  std::remove(ckpt_path.c_str());
}

/// Reads a whole file into a string.
std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
}

TEST_F(FaultTest, StaleWalRecordsAreSkippedAfterCrashBeforeTruncation) {
  const auto wal_path = temp_path("ckpt_stale.wal");
  const auto ckpt_path = temp_path("ckpt_stale.ckpt");
  std::remove(wal_path.c_str());
  std::remove(ckpt_path.c_str());

  const auto config_for = [](const std::string&) { return sum_config(); };
  std::string pre_rotate_wal;
  {
    Instance db;
    db.attach_wal(std::make_shared<WriteAheadLog>(wal_path));
    db.create_table("c", sum_config());
    for (int i = 0; i < 10; ++i) {
      Mutation m("counter");
      m.put("f", "q", encode_double(1.0));
      db.apply("c", m);
    }
    db.sync_wal();
    pre_rotate_wal = slurp(wal_path);
    write_checkpoint(db, ckpt_path);
  }  // crash — and simulate it landing BEFORE the WAL truncation hit
     // disk, by restoring the pre-rotation log content:
  spit(wal_path, pre_rotate_wal);

  Instance rec;
  const auto r = recover_instance(rec, ckpt_path, wal_path, config_for);
  EXPECT_TRUE(r.checkpoint_loaded);
  // Every restored record predates the checkpoint: none replays, so the
  // 10 increments are NOT double-applied.
  EXPECT_EQ(r.records_replayed, 0u);
  const auto sums = value_map(rec, "c");
  ASSERT_EQ(sums.size(), 1u);
  EXPECT_EQ(sums.at("counter|f|q"), 10.0);
  std::remove(wal_path.c_str());
  std::remove(ckpt_path.c_str());
}

TEST_F(FaultTest, CorruptCheckpointFallsBackToFullWalReplay) {
  const auto wal_path = temp_path("ckpt_corrupt.wal");
  const auto ckpt_path = temp_path("ckpt_corrupt.ckpt");
  std::remove(wal_path.c_str());
  std::remove(ckpt_path.c_str());

  const auto config_for = [](const std::string&) { return sum_config(); };
  std::string full_wal;
  {
    Instance db;
    db.attach_wal(std::make_shared<WriteAheadLog>(wal_path));
    db.create_table("c", sum_config());
    for (int i = 0; i < 10; ++i) {
      Mutation m("counter");
      m.put("f", "q", encode_double(1.0));
      db.apply("c", m);
    }
    db.sync_wal();
    full_wal = slurp(wal_path);
    write_checkpoint(db, ckpt_path);
  }
  // Corrupt the checkpoint payload (CRC must catch it) and restore the
  // full WAL so fallback recovery has everything.
  auto ckpt = slurp(ckpt_path);
  ASSERT_GT(ckpt.size(), 40u);
  ckpt[ckpt.size() / 2] ^= 0x5a;
  spit(ckpt_path, ckpt);
  spit(wal_path, full_wal);

  Instance rec;
  const auto r = recover_instance(rec, ckpt_path, wal_path, config_for);
  EXPECT_FALSE(r.checkpoint_loaded);
  EXPECT_EQ(r.records_replayed, 11u);  // create + 10 mutations
  const auto sums = value_map(rec, "c");
  ASSERT_EQ(sums.size(), 1u);
  EXPECT_EQ(sums.at("counter|f|q"), 10.0);
  std::remove(wal_path.c_str());
  std::remove(ckpt_path.c_str());
}

TEST_F(FaultTest, CheckpointLoadRetriesTransientFaults) {
  const auto wal_path = temp_path("ckpt_load.wal");
  const auto ckpt_path = temp_path("ckpt_load.ckpt");
  std::remove(wal_path.c_str());
  std::remove(ckpt_path.c_str());
  {
    Instance db;
    db.attach_wal(std::make_shared<WriteAheadLog>(wal_path));
    db.create_table("t");
    Mutation m("r");
    m.put("f", "q", "v");
    db.apply("t", m);
    db.sync_wal();
    write_checkpoint(db, ckpt_path);
  }
  fault::FaultSpec spec;
  spec.fire_on_hits = {1};
  fault::arm(sites::kCheckpointLoad, spec);
  Instance rec;
  rec.set_retry_policy(test_retry());
  const auto r = recover_instance(rec, ckpt_path, wal_path);
  EXPECT_TRUE(r.checkpoint_loaded);
  EXPECT_GE(fault::stats(sites::kCheckpointLoad).fires, 1u);
  EXPECT_EQ(cells_of(rec, "t").size(), 1u);
  std::remove(wal_path.c_str());
  std::remove(ckpt_path.c_str());
}

TEST_F(FaultTest, CheckpointRequiresAnAttachedWal) {
  Instance db;
  db.create_table("t");
  EXPECT_THROW(write_checkpoint(db, temp_path("nowal.ckpt")),
               std::logic_error);
}

// ---------------------------------------------------------------------------
// Crash-consistency property test: the whole pipeline under mass
// injection, then crash + bounded recovery, byte-identical scans.
// ---------------------------------------------------------------------------

struct WorkloadMarks {
  std::uint64_t covers_seq = 0;  ///< WAL seq the mid-workload checkpoint covers
  std::uint64_t end_seq = 0;     ///< WAL seq after the workload
};

/// The deterministic ingest -> checkpoint -> ingest -> TableMult
/// workload, identical for the faulted and the reference instance (the
/// checkpoint step runs only when a WAL is attached).
void run_workload(Instance& db, const std::string& ckpt_path,
                  WorkloadMarks* marks) {
  db.set_retry_policy(test_retry());
  db.create_table("A");
  db.create_table("B");
  db.add_splits("A", {"r08", "r16", "r24"});
  db.add_splits("B", {"r12", "r24"});

  const auto ingest = [&db](const std::string& table, int row_lo, int row_hi,
                            int cols) {
    BatchWriter bw(db, table, 4 << 20, test_retry());
    int n = 0;
    for (int r = row_lo; r < row_hi; ++r) {
      Mutation m("r" + util::zero_pad(static_cast<std::uint64_t>(r), 2));
      for (int c = 0; c < cols; ++c) {
        m.put("f", "c" + std::to_string(c),
              encode_double(static_cast<double>((r * 7 + c) % 5 + 1)));
      }
      bw.add_mutation(std::move(m));
      if (++n % 4 == 0) {
        bw.flush();
        db.sync_wal();
      }
    }
    bw.close();
    db.sync_wal();
  };

  ingest("A", 0, 24, 4);
  ingest("B", 0, 24, 3);
  db.flush("A");  // materialize RFiles: rfile.write/seek see traffic
  db.flush("B");
  if (db.wal()) {
    const auto ck = write_checkpoint(db, ckpt_path);
    marks->covers_seq = ck.covers_seq;
  }
  ingest("A", 24, 48, 4);
  ingest("B", 24, 48, 3);

  TableMultOptions opt;
  opt.num_workers = 4;
  opt.max_partition_retries = 12;
  table_mult(db, "A", "B", "C", opt);
  db.sync_wal();
  if (db.wal()) marks->end_seq = db.wal()->next_seq();
}

TEST_F(FaultTest, CrashConsistencyUnderMassFaultInjection) {
  const auto wal_path = temp_path("crash.wal");
  const auto ckpt_path = temp_path("crash.ckpt");
  std::remove(wal_path.c_str());
  std::remove(ckpt_path.c_str());
  std::remove((ckpt_path + ".tmp").c_str());

  const auto config_for = [](const std::string& name) {
    return name == "C" ? sum_config() : TableConfig{};
  };

  // Arm 100+ deterministic (site, hit-number) triggers across every
  // pipeline site. Hit 2 is always included so every site with real
  // traffic fires at least once; the rest are drawn from a fixed seed.
  fault::seed(0xF417F417u);
  util::SplitMix64 schedule_rng(987654321u);
  std::size_t armed_triggers = 0;
  for (const auto& site : fault::all_sites()) {
    if (site == sites::kCheckpointLoad) continue;  // recovery runs clean
    fault::FaultSpec spec;
    std::set<std::uint64_t> hits{2};
    while (hits.size() < 10) hits.insert(1 + schedule_rng.next() % 120);
    spec.fire_on_hits.assign(hits.begin(), hits.end());
    armed_triggers += spec.fire_on_hits.size();
    fault::arm(site, spec);
  }
  ASSERT_GE(armed_triggers, 100u);

  // -- the faulted run ------------------------------------------------------
  WorkloadMarks marks;
  std::vector<Cell> a_pre, b_pre, c_pre;
  {
    Instance db(2);
    db.attach_wal(std::make_shared<WriteAheadLog>(wal_path));
    run_workload(db, ckpt_path, &marks);

    // Acceptance: at least one worker-partition failure and one WAL
    // sync failure actually fired.
    EXPECT_GE(fault::stats(sites::kTableMultWorker).fires, 1u);
    EXPECT_GE(fault::stats(sites::kWalSync).fires, 1u);
    EXPECT_GE(fault::total_fires(), 10u);
    fault::reset();  // scans below must run clean

    a_pre = cells_of(db, "A");
    b_pre = cells_of(db, "B");
    c_pre = cells_of(db, "C");
    EXPECT_EQ(a_pre.size(), 48u * 4u);
    EXPECT_EQ(b_pre.size(), 48u * 3u);
  }  // crash: drop the instance

  // -- recovery -------------------------------------------------------------
  Instance rec(2);
  const auto r = recover_instance(rec, ckpt_path, wal_path, config_for);
  EXPECT_TRUE(r.checkpoint_loaded);
  // Replay is bounded by the post-checkpoint tail (phase-2 ingest +
  // TableMult writes), not the full history.
  ASSERT_GT(marks.end_seq, marks.covers_seq);
  EXPECT_EQ(r.records_replayed, marks.end_seq - marks.covers_seq);
  EXPECT_LT(r.records_replayed, marks.end_seq - 1);  // strictly a tail

  // Byte-identical scans, timestamps included.
  EXPECT_EQ(cells_of(rec, "A"), a_pre);
  EXPECT_EQ(cells_of(rec, "B"), b_pre);
  EXPECT_EQ(cells_of(rec, "C"), c_pre);

  // -- unfaulted reference --------------------------------------------------
  Instance reference(2);
  WorkloadMarks unused;
  run_workload(reference, ckpt_path + ".ref", &unused);
  // A and B are byte-identical to the faulted run (same apply sequence,
  // timestamps assigned once per mutation regardless of retries).
  EXPECT_EQ(cells_of(reference, "A"), a_pre);
  EXPECT_EQ(cells_of(reference, "B"), b_pre);
  // C's timestamps depend on worker interleaving; its folded values do
  // not — and every partial product landed exactly once.
  EXPECT_EQ(value_map(reference, "C"), value_map(rec, "C"));

  std::remove(wal_path.c_str());
  std::remove(ckpt_path.c_str());
}

}  // namespace
}  // namespace graphulo
