// Matrix Market / TSV edge-list I/O, the D4M degree filter, and the
// RFile on-disk formats (RFL2 legacy + RFL3 packed blocks).

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>

#include <gtest/gtest.h>

#include "assoc/schemas.hpp"
#include "la/la.hpp"
#include "nosql/rfile.hpp"
#include "test_helpers.hpp"
#include "util/strings.hpp"

namespace graphulo::la {
namespace {

using graphulo::testing::random_sparse;

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/graphulo_io_" + name;
}

TEST(MatrixMarket, RoundTrip) {
  const auto a = random_sparse(17, 23, 0.2, 601);
  const auto path = temp_path("roundtrip.mtx");
  ASSERT_TRUE(write_matrix_market(a, path));
  const auto b = read_matrix_market(path);
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.cols(), b.cols());
  EXPECT_EQ(a.nnz(), b.nnz());
  for (const auto& t : a.to_triples()) {
    EXPECT_NEAR(b.at(t.row, t.col), t.val, 1e-12);
  }
  std::remove(path.c_str());
}

TEST(MatrixMarket, ReadsSymmetricAndPattern) {
  const auto path = temp_path("sym.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate pattern symmetric\n"
        << "% a comment line\n"
        << "3 3 2\n"
        << "2 1\n"
        << "3 3\n";
  }
  const auto a = read_matrix_market(path);
  EXPECT_EQ(a.at(1, 0), 1.0);
  EXPECT_EQ(a.at(0, 1), 1.0);  // mirrored
  EXPECT_EQ(a.at(2, 2), 1.0);  // diagonal not duplicated
  EXPECT_EQ(a.nnz(), 3);
  std::remove(path.c_str());
}

TEST(MatrixMarket, RejectsBadInput) {
  EXPECT_THROW(read_matrix_market("/no/such/file.mtx"), std::runtime_error);
  const auto path = temp_path("bad.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n";
  }
  EXPECT_THROW(read_matrix_market(path), std::runtime_error);
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 5 1.0\n";
  }
  EXPECT_THROW(read_matrix_market(path), std::runtime_error);  // out of range
  std::remove(path.c_str());
}

TEST(EdgeTsv, RoundTrip) {
  const auto a = graphulo::testing::random_sparse_int(12, 12, 0.3, 602);
  const auto path = temp_path("edges.tsv");
  ASSERT_TRUE(write_edge_tsv(a, path));
  EXPECT_EQ(read_edge_tsv(path, 12), a);
  std::remove(path.c_str());
}

TEST(EdgeTsv, InfersDimensionAndSkipsComments) {
  const auto path = temp_path("infer.tsv");
  {
    std::ofstream out(path);
    out << "# comment\n0 1\n1 2 2.5\n% other comment\n4 0\n";
  }
  const auto a = read_edge_tsv(path);
  EXPECT_EQ(a.rows(), 5);  // max id 4
  EXPECT_EQ(a.at(0, 1), 1.0);   // default weight
  EXPECT_EQ(a.at(1, 2), 2.5);
  EXPECT_EQ(a.at(4, 0), 1.0);
  std::remove(path.c_str());
}

TEST(EdgeTsv, DuplicatesSumAndErrorsSurface) {
  const auto path = temp_path("dups.tsv");
  {
    std::ofstream out(path);
    out << "0 1 2\n0 1 3\n";
  }
  EXPECT_EQ(read_edge_tsv(path).at(0, 1), 5.0);
  {
    std::ofstream out(path);
    out << "not numbers\n";
  }
  EXPECT_THROW(read_edge_tsv(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(DegreeFilter, DropsCommonAndRareColumns) {
  using assoc::AssocArray;
  // col "stop" in 3 rows, "mid" in 2, "rare" in 1.
  auto a = AssocArray::from_entries({{"r1", "stop", 1.0}, {"r2", "stop", 5.0},
                                     {"r3", "stop", 1.0}, {"r1", "mid", 1.0},
                                     {"r2", "mid", 1.0}, {"r3", "rare", 1.0}});
  const auto filtered = assoc::filter_cols_by_degree(a, 2.0, 2.0);
  EXPECT_EQ(filtered.col_keys(), (std::vector<std::string>{"mid"}));
  // Degree counts structure, not value sums (stop has value-sum 7 but
  // degree 3).
  const auto no_rare = assoc::filter_cols_by_degree(a, 2.0, 0.0);
  EXPECT_EQ(no_rare.col_keys(), (std::vector<std::string>{"mid", "stop"}));
}

}  // namespace
}  // namespace graphulo::la

namespace graphulo::nosql {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/graphulo_rfile_" + name;
}

/// Adjacency-shaped sorted cells: repeated row keys, shared qualifier
/// prefixes — the workload the prefix codec exists for.
std::vector<Cell> graph_cells(std::size_t rows, std::size_t degree) {
  std::vector<Cell> cells;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t d = 0; d < degree; ++d) {
      Cell c;
      c.key.row = "v" + util::zero_pad(r, 6);
      c.key.family = "out";
      c.key.qualifier = "v" + util::zero_pad((r * 7 + d * 13) % rows, 6);
      c.key.ts = static_cast<std::int64_t>(1000 + d);
      c.value = "1";
      cells.push_back(std::move(c));
    }
  }
  std::sort(cells.begin(), cells.end(),
            [](const Cell& a, const Cell& b) { return a.key < b.key; });
  return cells;
}

std::vector<Cell> drain(const RFile& f) {
  std::vector<Cell> out;
  auto it = f.iterator();
  it->seek(Range::all());
  while (it->has_top()) {
    out.push_back({it->top_key(), it->top_value()});
    it->next();
  }
  return out;
}

/// RFL2 files written before the packed layout existed must still load
/// — through the default reader AND when the options now ask for
/// prefix encoding (the cells are re-encoded in memory on load). The
/// plain-mode writer is byte-for-byte the pre-RFL3 writer, so a file
/// it produces IS a legacy file.
TEST(RFileFormat, Rfl2VersionDispatchRoundTrip) {
  const auto cells = graph_cells(40, 6);
  const auto plain = RFile::from_sorted(cells, {});
  const auto path = temp_path("rfl2_compat.rf");
  ASSERT_TRUE(plain->write_to(path));

  // Legacy magic on disk: "2LFR" little-endian (0x52464c32).
  {
    std::ifstream in(path, std::ios::binary);
    char magic[4] = {};
    ASSERT_TRUE(in.read(magic, 4));
    EXPECT_EQ(std::string(magic, 4), "2LFR");
  }

  const auto reread = RFile::read_from(path, {});
  ASSERT_NE(reread, nullptr);
  EXPECT_FALSE(reread->prefix_encoded());
  const auto ref = drain(*plain);
  {
    const auto got = drain(*reread);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i].key, ref[i].key);
      EXPECT_EQ(got[i].value, ref[i].value);
    }
  }

  RFileOptions encode_opts;
  encode_opts.prefix_encode = true;
  encode_opts.compressor = RFileCompressor::kLz;
  const auto upgraded = RFile::read_from(path, encode_opts);
  ASSERT_NE(upgraded, nullptr);
  EXPECT_TRUE(upgraded->prefix_encoded());
  {
    const auto got = drain(*upgraded);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i].key, ref[i].key);
      EXPECT_EQ(got[i].value, ref[i].value);
    }
  }
  std::remove(path.c_str());
}

TEST(RFileFormat, Rfl3RoundTripAcrossCompressors) {
  const auto cells = graph_cells(60, 5);
  for (const auto comp : {RFileCompressor::kNone, RFileCompressor::kLz}) {
    RFileOptions opts;
    opts.prefix_encode = true;
    opts.index_stride = 48;
    opts.restart_interval = 8;
    opts.compressor = comp;
    const auto rf = RFile::from_sorted(cells, opts);
    const auto path = temp_path("rfl3_roundtrip.rf");
    ASSERT_TRUE(rf->write_to(path));
    const auto reread = RFile::read_from(path, {});  // options don't matter
    ASSERT_NE(reread, nullptr);
    EXPECT_TRUE(reread->prefix_encoded());
    EXPECT_EQ(reread->entry_count(), cells.size());
    EXPECT_EQ(reread->block_stride(), rf->block_stride());
    EXPECT_EQ(reread->total_block_bytes(), rf->total_block_bytes());
    EXPECT_EQ(reread->first_key(), rf->first_key());
    EXPECT_EQ(reread->last_key(), rf->last_key());
    const auto a = drain(*rf);
    const auto b = drain(*reread);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].key, b[i].key);
      EXPECT_EQ(a[i].value, b[i].value);
    }
    // Pruning metadata survives the round trip.
    EXPECT_TRUE(reread->may_contain_row(cells.front().key.row));
    EXPECT_FALSE(reread->may_contain_row("zzz-absent"));
    EXPECT_EQ(reread->sample_rows(5), rf->sample_rows(5));
    std::remove(path.c_str());
  }
}

/// Every byte of an RFL3 file is covered by a checksum (header CRC or a
/// per-block CRC), so any single bit flip must be rejected at load.
TEST(RFileFormat, Rfl3RejectsBitFlips) {
  const auto cells = graph_cells(50, 6);
  RFileOptions opts;
  opts.prefix_encode = true;
  opts.index_stride = 32;
  opts.compressor = RFileCompressor::kLz;
  const auto rf = RFile::from_sorted(cells, opts);
  const auto path = temp_path("rfl3_corrupt.rf");
  ASSERT_TRUE(rf->write_to(path));

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 64u);
  // Offsets spanning magic, header length, header body, header CRC and
  // the packed block data section.
  const std::size_t offsets[] = {1,
                                 6,
                                 bytes.size() / 4,
                                 bytes.size() / 2,
                                 2 * bytes.size() / 3,
                                 bytes.size() - 3};
  for (const std::size_t off : offsets) {
    std::string damaged = bytes;
    damaged[off] = static_cast<char>(damaged[off] ^ 0x10);
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(damaged.data(), static_cast<std::streamsize>(damaged.size()));
    }
    EXPECT_EQ(RFile::read_from(path, {}), nullptr)
        << "bit flip at offset " << off << " not detected";
  }
  // Truncation and trailing garbage are rejected too.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 5));
  }
  EXPECT_EQ(RFile::read_from(path, {}), nullptr) << "truncation not detected";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.write("xx", 2);
  }
  EXPECT_EQ(RFile::read_from(path, {}), nullptr)
      << "trailing garbage not detected";
  // The pristine bytes still load (the harness above really was the
  // only difference).
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_NE(RFile::read_from(path, {}), nullptr);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace graphulo::nosql
