// Matrix Market / TSV edge-list I/O and the D4M degree filter.

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "assoc/schemas.hpp"
#include "la/la.hpp"
#include "test_helpers.hpp"

namespace graphulo::la {
namespace {

using graphulo::testing::random_sparse;

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/graphulo_io_" + name;
}

TEST(MatrixMarket, RoundTrip) {
  const auto a = random_sparse(17, 23, 0.2, 601);
  const auto path = temp_path("roundtrip.mtx");
  ASSERT_TRUE(write_matrix_market(a, path));
  const auto b = read_matrix_market(path);
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.cols(), b.cols());
  EXPECT_EQ(a.nnz(), b.nnz());
  for (const auto& t : a.to_triples()) {
    EXPECT_NEAR(b.at(t.row, t.col), t.val, 1e-12);
  }
  std::remove(path.c_str());
}

TEST(MatrixMarket, ReadsSymmetricAndPattern) {
  const auto path = temp_path("sym.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate pattern symmetric\n"
        << "% a comment line\n"
        << "3 3 2\n"
        << "2 1\n"
        << "3 3\n";
  }
  const auto a = read_matrix_market(path);
  EXPECT_EQ(a.at(1, 0), 1.0);
  EXPECT_EQ(a.at(0, 1), 1.0);  // mirrored
  EXPECT_EQ(a.at(2, 2), 1.0);  // diagonal not duplicated
  EXPECT_EQ(a.nnz(), 3);
  std::remove(path.c_str());
}

TEST(MatrixMarket, RejectsBadInput) {
  EXPECT_THROW(read_matrix_market("/no/such/file.mtx"), std::runtime_error);
  const auto path = temp_path("bad.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n";
  }
  EXPECT_THROW(read_matrix_market(path), std::runtime_error);
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 5 1.0\n";
  }
  EXPECT_THROW(read_matrix_market(path), std::runtime_error);  // out of range
  std::remove(path.c_str());
}

TEST(EdgeTsv, RoundTrip) {
  const auto a = graphulo::testing::random_sparse_int(12, 12, 0.3, 602);
  const auto path = temp_path("edges.tsv");
  ASSERT_TRUE(write_edge_tsv(a, path));
  EXPECT_EQ(read_edge_tsv(path, 12), a);
  std::remove(path.c_str());
}

TEST(EdgeTsv, InfersDimensionAndSkipsComments) {
  const auto path = temp_path("infer.tsv");
  {
    std::ofstream out(path);
    out << "# comment\n0 1\n1 2 2.5\n% other comment\n4 0\n";
  }
  const auto a = read_edge_tsv(path);
  EXPECT_EQ(a.rows(), 5);  // max id 4
  EXPECT_EQ(a.at(0, 1), 1.0);   // default weight
  EXPECT_EQ(a.at(1, 2), 2.5);
  EXPECT_EQ(a.at(4, 0), 1.0);
  std::remove(path.c_str());
}

TEST(EdgeTsv, DuplicatesSumAndErrorsSurface) {
  const auto path = temp_path("dups.tsv");
  {
    std::ofstream out(path);
    out << "0 1 2\n0 1 3\n";
  }
  EXPECT_EQ(read_edge_tsv(path).at(0, 1), 5.0);
  {
    std::ofstream out(path);
    out << "not numbers\n";
  }
  EXPECT_THROW(read_edge_tsv(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(DegreeFilter, DropsCommonAndRareColumns) {
  using assoc::AssocArray;
  // col "stop" in 3 rows, "mid" in 2, "rare" in 1.
  auto a = AssocArray::from_entries({{"r1", "stop", 1.0}, {"r2", "stop", 5.0},
                                     {"r3", "stop", 1.0}, {"r1", "mid", 1.0},
                                     {"r2", "mid", 1.0}, {"r3", "rare", 1.0}});
  const auto filtered = assoc::filter_cols_by_degree(a, 2.0, 2.0);
  EXPECT_EQ(filtered.col_keys(), (std::vector<std::string>{"mid"}));
  // Degree counts structure, not value sums (stop has value-sum 7 but
  // degree 3).
  const auto no_rare = assoc::filter_cols_by_degree(a, 2.0, 0.0);
  EXPECT_EQ(no_rare.col_keys(), (std::vector<std::string>{"mid", "stop"}));
}

}  // namespace
}  // namespace graphulo::la
