// Algorithms directly on associative arrays (the paper's Section IV
// next step) and the in-database PageRank on tables.

#include <cmath>

#include <gtest/gtest.h>

#include "algo/centrality.hpp"
#include "assoc/table_io.hpp"
#include "core/assoc_algos.hpp"
#include "core/table_algos.hpp"
#include "test_helpers.hpp"

namespace graphulo::core {
namespace {

using assoc::AssocArray;

AssocArray string_keyed_graph() {
  // Undirected triangle alice-bob-carol plus pendant dave-alice.
  std::vector<assoc::Entry> entries;
  auto edge = [&entries](const char* u, const char* v) {
    entries.push_back({u, v, 1.0});
    entries.push_back({v, u, 1.0});
  };
  edge("alice", "bob");
  edge("bob", "carol");
  edge("alice", "carol");
  edge("alice", "dave");
  return AssocArray::from_entries(std::move(entries));
}

TEST(AlignVertices, UnionsRowAndColumnKeys) {
  // A directed edge to a sink key that never appears as a row.
  auto a = AssocArray::from_entries({{"src", "sink", 1.0}});
  const auto g = align_vertices(a);
  EXPECT_EQ(g.vertices, (std::vector<std::string>{"sink", "src"}));
  EXPECT_EQ(g.adjacency.rows(), 2);
  EXPECT_EQ(g.adjacency.at(1, 0), 1.0);  // src -> sink
}

TEST(AssocPagerank, MatchesMatrixPagerank) {
  const auto a = string_keyed_graph();
  const auto scores = assoc_pagerank(a);
  ASSERT_EQ(scores.size(), 4u);
  double total = 0;
  for (const auto& [key, s] : scores) total += s;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // alice has the highest degree -> highest rank.
  EXPECT_GT(scores.at("alice"), scores.at("bob"));
  EXPECT_GT(scores.at("bob"), scores.at("dave"));
  // Cross-check against the matrix form on the aligned graph.
  const auto g = align_vertices(a);
  const auto matrix_result = algo::pagerank(g.adjacency);
  for (std::size_t v = 0; v < g.vertices.size(); ++v) {
    EXPECT_NEAR(scores.at(g.vertices[v]), matrix_result.scores[v], 1e-9);
  }
}

TEST(AssocBfs, LevelsByKey) {
  const auto levels = assoc_bfs(string_keyed_graph(), "dave");
  EXPECT_EQ(levels.at("dave"), 0);
  EXPECT_EQ(levels.at("alice"), 1);
  EXPECT_EQ(levels.at("bob"), 2);
  EXPECT_EQ(levels.at("carol"), 2);
  EXPECT_THROW(assoc_bfs(string_keyed_graph(), "nobody"),
               std::invalid_argument);
}

TEST(AssocKTruss, DropsPendantEdge) {
  const auto truss = assoc_ktruss(string_keyed_graph(), 3);
  // The triangle survives; the dangling alice-dave edge does not.
  EXPECT_EQ(truss.at("alice", "bob"), 1.0);
  EXPECT_EQ(truss.at("bob", "carol"), 1.0);
  EXPECT_EQ(truss.at("alice", "dave"), 0.0);
  // dave disappears from the key space entirely (condensed).
  EXPECT_FALSE(truss.row_index("dave").has_value());
}

TEST(AssocJaccard, CoefficientsByKey) {
  const auto j = assoc_jaccard(string_keyed_graph());
  // bob and dave share neighbor alice: J = 1 / (2 + 1 - 1) = 0.5.
  EXPECT_NEAR(j.at("bob", "dave"), 0.5, 1e-12);
  EXPECT_NEAR(j.at("dave", "bob"), 0.5, 1e-12);
  // bob and carol: common = alice; union = {alice,carol}+{alice,bob}
  // -> 1/3.
  EXPECT_NEAR(j.at("bob", "carol"), 1.0 / 3.0, 1e-12);
}

TEST(AssocDegrees, MatchesRowSums) {
  const auto degrees = assoc_degrees(string_keyed_graph());
  EXPECT_EQ(degrees.at("alice"), 3.0);
  EXPECT_EQ(degrees.at("bob"), 2.0);
  EXPECT_EQ(degrees.at("dave"), 1.0);
}

TEST(TablePagerank, MatchesMatrixPagerankOnTables) {
  nosql::Instance db(2);
  const auto a = graphulo::testing::random_undirected(30, 0.2, 77);
  assoc::write_matrix(db, "G", a);
  const auto table_scores = table_pagerank(db, "G", 0.15, 40);
  const auto matrix_result =
      algo::pagerank(a, 0.15, {.max_iterations = 40, .tolerance = 0.0});
  ASSERT_EQ(table_scores.size(), static_cast<std::size_t>(a.rows()));
  double total = 0;
  for (const auto& [key, s] : table_scores) {
    const auto v = assoc::parse_vertex_key(key);
    ASSERT_GE(v, 0);
    EXPECT_NEAR(s, matrix_result.scores[static_cast<std::size_t>(v)], 1e-6)
        << key;
    total += s;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(TablePagerank, HandlesSinksViaQualifierUniverse) {
  nosql::Instance db;
  // 0 -> 1, 1 is a pure sink (never a row key in the table).
  auto a = la::SpMat<double>::from_triples(2, 2, {{0, 1, 1.0}});
  assoc::write_matrix(db, "G", a);
  const auto scores = table_pagerank(db, "G", 0.15, 50);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_GT(scores.at(assoc::vertex_key(1)), scores.at(assoc::vertex_key(0)));
  const auto matrix_result =
      algo::pagerank(a, 0.15, {.max_iterations = 50, .tolerance = 0.0});
  EXPECT_NEAR(scores.at(assoc::vertex_key(0)), matrix_result.scores[0], 1e-6);
}

TEST(TablePagerank, EmptyTableYieldsEmptyScores) {
  nosql::Instance db;
  db.create_table("empty");
  EXPECT_TRUE(table_pagerank(db, "empty").empty());
}

}  // namespace
}  // namespace graphulo::core
