// Shortest paths over the tropical semiring: Bellman-Ford vs Dijkstra
// vs Floyd-Warshall vs Johnson, plus connected components and vertex
// nomination.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "algo/components.hpp"
#include "algo/nomination.hpp"
#include "algo/sssp.hpp"
#include "la/la.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace graphulo::algo {
namespace {

using graphulo::testing::random_undirected;
using la::Index;
using la::SpMat;

constexpr double kInf = std::numeric_limits<double>::infinity();

SpMat<double> weighted_example() {
  // Classic CLRS-style digraph.
  return SpMat<double>::from_triples(
      5, 5, {{0, 1, 10.0}, {0, 3, 5.0}, {1, 2, 1.0}, {1, 3, 2.0},
             {3, 1, 3.0}, {3, 2, 9.0}, {3, 4, 2.0}, {4, 2, 6.0},
             {4, 0, 7.0}, {2, 4, 4.0}});
}

SpMat<double> random_weighted(Index n, double density, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<la::Triple<double>> t;
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      if (i != j && rng.uniform() < density) {
        t.push_back({i, j, static_cast<double>(1 + rng.uniform_int(9))});
      }
    }
  }
  return SpMat<double>::from_triples(n, n, std::move(t));
}

TEST(BellmanFord, KnownDistances) {
  const auto d = bellman_ford(weighted_example(), 0);
  EXPECT_EQ(d, (std::vector<double>{0, 8, 9, 5, 7}));
}

TEST(BellmanFord, UnreachableIsInfinity) {
  auto a = SpMat<double>::from_triples(3, 3, {{0, 1, 2.0}});
  const auto d = bellman_ford(a, 0);
  EXPECT_EQ(d[2], kInf);
}

TEST(BellmanFord, HandlesNegativeEdges) {
  auto a = SpMat<double>::from_triples(
      4, 4, {{0, 1, 4.0}, {0, 2, 5.0}, {2, 1, -3.0}, {1, 3, 1.0}});
  const auto d = bellman_ford(a, 0);
  EXPECT_EQ(d[1], 2.0);  // via 2 with the negative edge
  EXPECT_EQ(d[3], 3.0);
}

TEST(BellmanFord, DetectsNegativeCycle) {
  auto a = SpMat<double>::from_triples(
      3, 3, {{0, 1, 1.0}, {1, 2, -2.0}, {2, 1, 1.0}});
  EXPECT_THROW(bellman_ford(a, 0), std::runtime_error);
}

TEST(Dijkstra, MatchesBellmanFordOnNonnegative) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto w = random_weighted(40, 0.1, seed);
    const auto bf = bellman_ford(w, 0);
    const auto dj = dijkstra(w, 0);
    ASSERT_EQ(bf.size(), dj.size());
    for (std::size_t v = 0; v < bf.size(); ++v) {
      EXPECT_EQ(bf[v], dj[v]) << "seed " << seed << " v " << v;
    }
  }
}

TEST(Dijkstra, RejectsNegativeWeights) {
  auto a = SpMat<double>::from_triples(2, 2, {{0, 1, -1.0}});
  EXPECT_THROW(dijkstra(a, 0), std::invalid_argument);
}

TEST(FloydWarshall, MatchesPerSourceBellmanFord) {
  const auto w = random_weighted(25, 0.15, 7);
  const auto all = floyd_warshall(w);
  for (Index s = 0; s < 25; ++s) {
    const auto d = bellman_ford(w, s);
    for (Index v = 0; v < 25; ++v) {
      EXPECT_EQ(all(s, v), d[static_cast<std::size_t>(v)])
          << s << "->" << v;
    }
  }
}

TEST(FloydWarshall, NegativeCycleThrows) {
  auto a = SpMat<double>::from_triples(
      2, 2, {{0, 1, 1.0}, {1, 0, -2.0}});
  EXPECT_THROW(floyd_warshall(a), std::runtime_error);
}

TEST(Johnson, MatchesFloydWarshallWithNegativeEdges) {
  // Mixed-sign weights, no negative cycles.
  auto w = SpMat<double>::from_triples(
      5, 5, {{0, 1, 3.0}, {0, 2, 8.0}, {0, 4, -4.0}, {1, 3, 1.0},
             {1, 4, 7.0}, {2, 1, 4.0}, {3, 0, 2.0}, {3, 2, -5.0},
             {4, 3, 6.0}});
  const auto fw = floyd_warshall(w);
  const auto jn = johnson(w);
  for (Index i = 0; i < 5; ++i) {
    for (Index j = 0; j < 5; ++j) {
      EXPECT_NEAR(jn(i, j), fw(i, j), 1e-9) << i << "->" << j;
    }
  }
}

TEST(Johnson, MatchesFloydWarshallOnRandomGraphs) {
  const auto w = random_weighted(20, 0.2, 11);
  const auto fw = floyd_warshall(w);
  const auto jn = johnson(w);
  for (Index i = 0; i < 20; ++i) {
    for (Index j = 0; j < 20; ++j) {
      if (fw(i, j) == kInf) {
        EXPECT_EQ(jn(i, j), kInf);
      } else {
        EXPECT_NEAR(jn(i, j), fw(i, j), 1e-9);
      }
    }
  }
}

TEST(Sssp, InputValidation) {
  SpMat<double> rect(2, 3);
  EXPECT_THROW(bellman_ford(rect, 0), std::invalid_argument);
  SpMat<double> sq(3, 3);
  EXPECT_THROW(bellman_ford(sq, 5), std::out_of_range);
  EXPECT_THROW(dijkstra(sq, -1), std::out_of_range);
}

// --------------------------------------------------------------------------

TEST(Components, TwoIslands) {
  auto a = SpMat<double>::from_triples(
      5, 5, {{0, 1, 1.0}, {1, 0, 1.0}, {3, 4, 1.0}, {4, 3, 1.0}});
  const auto labels = connected_components_linalg(a);
  EXPECT_EQ(labels, (std::vector<Index>{0, 0, 2, 3, 3}));
  EXPECT_EQ(component_count(labels), 3u);
}

TEST(Components, LinalgMatchesUnionFind) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto a = random_undirected(80, 0.02, seed);
    EXPECT_EQ(connected_components_linalg(a),
              connected_components_baseline(a))
        << "seed " << seed;
  }
}

TEST(Components, FullyConnectedSingleLabel) {
  const auto a = random_undirected(20, 0.5, 7);
  const auto labels = connected_components_linalg(a);
  EXPECT_EQ(component_count(labels), 1u);
  for (Index l : labels) EXPECT_EQ(l, 0);
}

// --------------------------------------------------------------------------

TEST(Nomination, DirectNeighborsOfCuesScoreHighest) {
  // Star around 0 plus a pendant chain 1-5.
  auto a = SpMat<double>::from_triples(
      6, 6, {{0, 1, 1.0}, {1, 0, 1.0}, {0, 2, 1.0}, {2, 0, 1.0},
             {0, 3, 1.0}, {3, 0, 1.0}, {1, 5, 1.0}, {5, 1, 1.0}});
  const auto ranked = vertex_nomination(a, {0}, 10);
  ASSERT_FALSE(ranked.empty());
  // 1 beats 2/3 (extra 2-hop evidence via 5? no — 1's score includes
  // 2-hop back paths). The hub's direct neighbors all score > 5.
  double score5 = 0;
  for (const auto& nom : ranked) {
    if (nom.vertex == 5) score5 = nom.score;
  }
  for (const auto& nom : ranked) {
    if (nom.vertex == 1 || nom.vertex == 2 || nom.vertex == 3) {
      EXPECT_GT(nom.score, score5);
    }
  }
}

TEST(Nomination, CuesExcludedAndSorted) {
  const auto a = random_undirected(30, 0.2, 13);
  const auto ranked = vertex_nomination(a, {0, 1, 2}, 10);
  for (const auto& nom : ranked) {
    EXPECT_GT(nom.vertex, 2);
  }
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].score, ranked[i].score);
  }
  EXPECT_LE(ranked.size(), 10u);
}

TEST(Nomination, ValidatesCues) {
  SpMat<double> a(3, 3);
  EXPECT_THROW(vertex_nomination(a, {3}, 1), std::out_of_range);
}

}  // namespace
}  // namespace graphulo::algo
