// Triangle counting, in memory and against tables: all formulations —
// trace(A^3)/6, masked sum(L .* (L·U)), neighborhood-intersection
// baseline, and the three table-level kernels (fused masked reduce,
// wedge-table trace, incidence join) — must agree on every graph.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "algo/tricount.hpp"
#include "assoc/table_io.hpp"
#include "core/table_algos.hpp"
#include "gen/rmat.hpp"
#include "la/la.hpp"
#include "test_helpers.hpp"

namespace graphulo {
namespace {

using assoc::write_matrix;
using graphulo::testing::paper_example_adjacency;
using graphulo::testing::random_undirected;

/// Runs all six formulations on one symmetric 0/1 adjacency matrix and
/// checks they agree; returns the count.
std::uint64_t check_all_formulations(const la::SpMat<double>& a,
                                     int tablets = 1) {
  const auto baseline = algo::triangle_count_baseline(a);
  EXPECT_EQ(algo::triangle_count_trace(a), baseline);
  EXPECT_EQ(algo::triangle_count_masked(a), baseline);

  nosql::Instance db(tablets);
  write_matrix(db, "G", a);
  if (tablets > 1) {
    std::vector<std::string> splits;
    for (int s = 1; s < tablets; ++s) {
      splits.push_back(assoc::vertex_key(a.rows() * s / tablets));
    }
    db.add_splits("G", splits);
  }
  EXPECT_EQ(core::table_triangle_count_masked(db, "G"), baseline);
  EXPECT_EQ(core::table_triangle_count_trace(db, "G"), baseline);
  EXPECT_EQ(core::table_triangle_count_incidence(db, "G"), baseline);
  return baseline;
}

TEST(TableTriangle, PaperExampleGraphHasTwoTriangles) {
  // Fig. 1's 5-vertex graph: triangles {v1,v2,v3} and {v1,v3,v4}.
  EXPECT_EQ(check_all_formulations(paper_example_adjacency()), 2u);
}

TEST(TableTriangle, EmptyAndTriangleFreeGraphs) {
  EXPECT_EQ(check_all_formulations(la::SpMat<double>(8, 8)), 0u);
  // A star graph has wedges but no triangles — the mask must prune
  // every partial product.
  std::vector<la::Triple<double>> star;
  for (la::Index i = 1; i < 8; ++i) {
    star.push_back({0, i, 1.0});
    star.push_back({i, 0, 1.0});
  }
  const auto a = la::SpMat<double>::from_triples(8, 8, std::move(star));
  EXPECT_EQ(check_all_formulations(a), 0u);

  nosql::Instance db(1);
  write_matrix(db, "G", a);
  core::TableMultStats stats;
  EXPECT_EQ(core::table_triangle_count_masked(db, "G", &stats), 0u);
  EXPECT_EQ(stats.partial_products, 0u);
}

TEST(TableTriangle, CompleteGraphCountsNChoose3) {
  // K6: C(6,3) = 20 triangles.
  std::vector<la::Triple<double>> triples;
  for (la::Index i = 0; i < 6; ++i) {
    for (la::Index j = 0; j < 6; ++j) {
      if (i != j) triples.push_back({i, j, 1.0});
    }
  }
  const auto k6 = la::SpMat<double>::from_triples(6, 6, std::move(triples));
  EXPECT_EQ(check_all_formulations(k6), 20u);
}

TEST(TableTriangle, RandomGraphsAcrossSeeds) {
  for (std::uint64_t seed : {3u, 11u, 19u}) {
    check_all_formulations(random_undirected(24, 0.3, seed));
  }
}

TEST(TableTriangle, RmatAcrossScalesAndSeedsPartitioned) {
  // The bench covers scales 10-13; here smaller RMAT graphs keep the
  // suite fast while exercising the same multi-tablet partitioned path.
  for (int scale : {6, 7}) {
    for (std::uint64_t seed : {1u, 5u}) {
      gen::RmatParams p;
      p.scale = scale;
      p.edge_factor = 6;
      p.seed = seed;
      check_all_formulations(gen::rmat_simple_adjacency(p), /*tablets=*/4);
    }
  }
}

TEST(TableTriangle, MaskedStatsEmitExactlyTheTriangles) {
  // Every surviving partial product of the masked formulation IS one
  // triangle; everything else the strict-upper wedges produced must be
  // counted as pruned.
  const auto a = random_undirected(20, 0.35, 23);
  nosql::Instance db(1);
  write_matrix(db, "G", a);
  core::TableMultStats masked_stats;
  const auto triangles =
      core::table_triangle_count_masked(db, "G", &masked_stats);
  EXPECT_EQ(masked_stats.partial_products, triangles);
  EXPECT_GT(masked_stats.partial_products_pruned, 0u);

  // The trace formulation's wedge multiply emits every open wedge — the
  // ablation the Weale bench reports as the masking win.
  core::TableMultStats trace_stats;
  EXPECT_EQ(core::table_triangle_count_trace(db, "G", &trace_stats),
            triangles);
  EXPECT_GT(trace_stats.partial_products, masked_stats.partial_products);
}

}  // namespace
}  // namespace graphulo
