// Key ordering, ranges, and codecs for the NoSQL substrate.

#include <gtest/gtest.h>

#include "nosql/codec.hpp"
#include "nosql/key.hpp"

namespace graphulo::nosql {
namespace {

Key make_key(std::string row, std::string fam = "", std::string qual = "",
             Timestamp ts = 0, bool deleted = false) {
  Key k;
  k.row = std::move(row);
  k.family = std::move(fam);
  k.qualifier = std::move(qual);
  k.ts = ts;
  k.deleted = deleted;
  return k;
}

TEST(Key, OrdersByRowThenColumn) {
  EXPECT_LT(make_key("a"), make_key("b"));
  EXPECT_LT(make_key("a", "f1"), make_key("a", "f2"));
  EXPECT_LT(make_key("a", "f", "q1"), make_key("a", "f", "q2"));
}

TEST(Key, NewestTimestampSortsFirst) {
  EXPECT_LT(make_key("a", "f", "q", 10), make_key("a", "f", "q", 5));
}

TEST(Key, DeleteSortsBeforePutAtSameTimestamp) {
  EXPECT_LT(make_key("a", "f", "q", 5, true), make_key("a", "f", "q", 5, false));
}

TEST(Key, SameCellIgnoresTimestampAndDelete) {
  EXPECT_TRUE(make_key("a", "f", "q", 1).same_cell(make_key("a", "f", "q", 9, true)));
  EXPECT_FALSE(make_key("a", "f", "q").same_cell(make_key("a", "f", "r")));
}

TEST(Key, ToStringIsReadable) {
  auto k = make_key("r1", "deg", "out", 7, true);
  const auto s = k.to_string();
  EXPECT_NE(s.find("r1"), std::string::npos);
  EXPECT_NE(s.find("deg:out"), std::string::npos);
  EXPECT_NE(s.find("(del)"), std::string::npos);
}

TEST(Range, AllContainsEverything) {
  const auto r = Range::all();
  EXPECT_TRUE(r.contains(make_key("")));
  EXPECT_TRUE(r.contains(make_key("zzz", "f", "q", 42)));
  EXPECT_FALSE(r.is_past_end(make_key("zzz")));
}

TEST(Range, ExactRowContainsOnlyThatRow) {
  const auto r = Range::exact_row("b");
  EXPECT_TRUE(r.contains(make_key("b")));
  EXPECT_TRUE(r.contains(make_key("b", "f", "q", 3)));
  EXPECT_FALSE(r.contains(make_key("a")));
  EXPECT_FALSE(r.contains(make_key("c")));
  EXPECT_FALSE(r.contains(make_key(std::string("b\0x", 3), "f")));
}

TEST(Range, RowRangeIsInclusiveBothEnds) {
  const auto r = Range::row_range("b", "d");
  EXPECT_FALSE(r.contains(make_key("a")));
  EXPECT_TRUE(r.contains(make_key("b")));
  EXPECT_TRUE(r.contains(make_key("c")));
  EXPECT_TRUE(r.contains(make_key("d", "f", "q")));
  EXPECT_FALSE(r.contains(make_key("e")));
  EXPECT_TRUE(r.is_past_end(make_key("e")));
}

TEST(Range, PrefixMatchesExtensions) {
  const auto r = Range::prefix("tweet|");
  EXPECT_TRUE(r.contains(make_key("tweet|0001")));
  EXPECT_TRUE(r.contains(make_key("tweet|zzz")));
  EXPECT_FALSE(r.contains(make_key("tweet")));
  EXPECT_FALSE(r.contains(make_key("user|1")));
}

TEST(Range, AtLeastRowIsHalfOpen) {
  const auto r = Range::at_least_row("m");
  EXPECT_FALSE(r.contains(make_key("l")));
  EXPECT_TRUE(r.contains(make_key("m")));
  EXPECT_TRUE(r.contains(make_key("z")));
}

TEST(Range, MayIntersectRows) {
  const auto r = Range::row_range("c", "f");
  EXPECT_TRUE(r.may_intersect_rows("", ""));       // unbounded tablet
  EXPECT_TRUE(r.may_intersect_rows("a", "d"));     // overlaps start
  EXPECT_TRUE(r.may_intersect_rows("d", "z"));     // overlaps end
  EXPECT_FALSE(r.may_intersect_rows("g", "z"));    // after
  EXPECT_FALSE(r.may_intersect_rows("", "c"));     // tablet [.., c) excludes row c
  EXPECT_TRUE(r.may_intersect_rows("", "d"));      // tablet [.., d) includes row c
  EXPECT_FALSE(r.may_intersect_rows("g", ""));
}

TEST(Codec, DoubleRoundTrip) {
  for (double v : {0.0, 1.5, -3.25, 1e-9, 12345.678, -0.0}) {
    const auto enc = encode_double(v);
    const auto dec = decode_double(enc);
    ASSERT_TRUE(dec.has_value()) << enc;
    EXPECT_EQ(*dec, v);
  }
}

TEST(Codec, DoubleRejectsGarbage) {
  EXPECT_FALSE(decode_double("abc").has_value());
  EXPECT_FALSE(decode_double("1.5x").has_value());
  EXPECT_FALSE(decode_double("").has_value());
}

TEST(Codec, IntRoundTrip) {
  for (std::int64_t v : {std::int64_t{0}, std::int64_t{-17},
                         std::int64_t{1} << 40}) {
    EXPECT_EQ(decode_int(encode_int(v)), v);
  }
  EXPECT_FALSE(decode_int("12.5").has_value());
}

TEST(Codec, U64BigEndianPreservesOrder) {
  EXPECT_LT(encode_u64_be(5), encode_u64_be(6));
  EXPECT_LT(encode_u64_be(255), encode_u64_be(256));
  EXPECT_LT(encode_u64_be(1), encode_u64_be(std::uint64_t{1} << 56));
  EXPECT_EQ(decode_u64_be(encode_u64_be(123456789ULL)), 123456789ULL);
  EXPECT_FALSE(decode_u64_be("short").has_value());
}

}  // namespace
}  // namespace graphulo::nosql
