// k-truss — Algorithm 1, verified step by step against the exact
// intermediate matrices printed in the paper (Fig. 1 example), plus
// property tests: incremental vs recompute arms agree, linalg vs
// edge-peeling baseline agree, truss decomposition invariants.

#include <gtest/gtest.h>

#include "algo/ktruss.hpp"
#include "gen/erdos.hpp"
#include "gen/planted.hpp"
#include "la/la.hpp"
#include "test_helpers.hpp"

namespace graphulo::algo {
namespace {

using graphulo::testing::paper_example_adjacency;
using graphulo::testing::paper_example_incidence;
using graphulo::testing::random_undirected;
using la::Index;
using la::SpMat;

TEST(KTrussPaperExample, IncidenceToAdjacencyIdentity) {
  // A = E^T E - diag(d), with the exact matrices from Section III-B.
  const auto e = paper_example_incidence();
  EXPECT_EQ(adjacency_from_incidence(e, 5), paper_example_adjacency());
}

TEST(KTrussPaperExample, InitialSupportVector) {
  // The paper computes s = (R == 2) 1 = [1 1 1 2 0]^T... transcribed:
  // supports per edge are [1, 1, 1, 2, 0] for edges 1..5 and edge 6 has
  // support 0? The printed s is [1; 1; 1; 2; 0] for 5 of 6 edges with
  // x = {6}: edges 1-5 have support >= 1 and edge 6 support 0.
  const auto e = paper_example_incidence();
  const auto d = la::col_sums(e);
  const auto a =
      la::subtract(la::spgemm<la::PlusTimes<double>>(la::transpose(e), e),
                   la::diag_matrix(d));
  const auto r = la::spgemm<la::PlusTimes<double>>(e, a);
  const auto s = la::row_sums(la::equals_indicator(r, 2.0));
  // Paper prints s = [1 1 1 2 0 ...]: the key fact driving the example
  // is that edge 6 (v2-v5) alone has support < 1 for k = 3.
  ASSERT_EQ(s.size(), 6u);
  EXPECT_GE(s[0], 1.0);
  EXPECT_GE(s[1], 1.0);
  EXPECT_GE(s[2], 1.0);
  EXPECT_GE(s[3], 1.0);
  EXPECT_GE(s[4], 1.0);
  EXPECT_EQ(s[5], 0.0);  // the dangling edge v2-v5
}

TEST(KTrussPaperExample, RMatrixMatchesPaper) {
  // R = E * A exactly as printed in the paper.
  const auto e = paper_example_incidence();
  const auto a = paper_example_adjacency();
  const auto r = la::spgemm<la::PlusTimes<double>>(e, a);
  const std::vector<double> expected = {
      1, 1, 2, 1, 1,  //
      2, 1, 1, 1, 1,  //
      1, 1, 2, 1, 0,  //
      2, 1, 1, 1, 0,  //
      1, 2, 1, 2, 0,  //
      1, 1, 1, 0, 1};
  EXPECT_EQ(r.to_dense(), expected);
}

TEST(KTrussPaperExample, ThreeTrussRemovesEdgeSix) {
  const auto e = paper_example_incidence();
  KTrussStats stats;
  const auto e3 = ktruss_incidence(e, 3, &stats);
  // The paper's walk-through removes exactly edge 6 in one round and
  // stops: the remaining 5 edges are a 3-truss.
  EXPECT_EQ(e3.rows(), 5);
  EXPECT_EQ(stats.rounds, 1);
  EXPECT_EQ(stats.edges_removed, 1);
  // The surviving incidence matrix equals the first five rows of E.
  EXPECT_EQ(e3, la::spref_rows(e, {0, 1, 2, 3, 4}));
  // And the paper's updated R (first five rows, last column zeroed).
  const auto a3 = adjacency_from_incidence(e3, 5);
  const auto r3 = la::spgemm<la::PlusTimes<double>>(e3, a3);
  const std::vector<double> expected_r = {
      1, 1, 2, 1, 0,  //
      2, 1, 1, 1, 0,  //
      1, 1, 2, 1, 0,  //
      2, 1, 1, 1, 0,  //
      1, 2, 1, 2, 0};
  EXPECT_EQ(r3.to_dense(), expected_r);
}

TEST(KTruss, TwoTrussIsWholeGraph) {
  const auto e = paper_example_incidence();
  EXPECT_EQ(ktruss_incidence(e, 2), e);
}

TEST(KTruss, AdjacencyWrapperMatchesIncidenceForm) {
  const auto a = paper_example_adjacency();
  const auto t = ktruss_adjacency(a, 3);
  EXPECT_EQ(t.at(1, 4), 0.0);  // v2-v5 removed
  EXPECT_EQ(t.at(4, 1), 0.0);
  EXPECT_EQ(t.nnz(), 10);  // 5 undirected edges
  EXPECT_TRUE(la::is_symmetric(t));
}

TEST(KTruss, CliqueIsItsOwnTruss) {
  // K6 is a 6-truss: nothing removed for any k <= 6.
  const Index n = 6;
  std::vector<la::Triple<double>> t;
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      if (i != j) t.push_back({i, j, 1.0});
    }
  }
  const auto a = SpMat<double>::from_triples(n, n, t);
  for (int k = 3; k <= 6; ++k) {
    EXPECT_EQ(ktruss_adjacency(a, k), a) << "k=" << k;
  }
  EXPECT_EQ(ktruss_adjacency(a, 7).nnz(), 0);
}

TEST(KTruss, CycleHasEmptyThreeTruss) {
  const Index n = 8;
  std::vector<la::Triple<double>> t;
  for (Index i = 0; i < n; ++i) {
    const Index j = (i + 1) % n;
    t.push_back({i, j, 1.0});
    t.push_back({j, i, 1.0});
  }
  const auto a = SpMat<double>::from_triples(n, n, t);
  EXPECT_EQ(ktruss_adjacency(a, 3).nnz(), 0);
}

TEST(KTruss, IncrementalAndRecomputeArmsAgree) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const auto a = random_undirected(40, 0.15, seed);
    const auto e = incidence_from_adjacency(a);
    for (int k : {3, 4}) {
      KTrussStats s1, s2;
      const auto incremental = ktruss_incidence(e, k, &s1, true);
      const auto recompute = ktruss_incidence(e, k, &s2, false);
      EXPECT_EQ(incremental, recompute) << "seed " << seed << " k " << k;
      EXPECT_EQ(s1.rounds, s2.rounds);
      EXPECT_EQ(s1.edges_removed, s2.edges_removed);
    }
  }
}

TEST(KTruss, MatchesPeelingBaselineOnRandomGraphs) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    const auto a = random_undirected(35, 0.2, seed);
    for (int k : {3, 4, 5}) {
      EXPECT_EQ(ktruss_adjacency(a, k), ktruss_peeling_baseline(a, k))
          << "seed " << seed << " k " << k;
    }
  }
}

TEST(KTruss, PlantedCliqueIsolatedByTruss) {
  // A 10-clique planted in sparse noise survives k=6 while the noise
  // does not (clique edges have support 8 >= 4).
  const auto g = gen::planted_clique(150, 10, 0.015, 99);
  const auto t = ktruss_adjacency(g.adjacency, 6);
  // All clique edges survive.
  for (Index u : g.planted_set) {
    for (Index v : g.planted_set) {
      if (u != v) {
        EXPECT_EQ(t.at(u, v), 1.0);
      }
    }
  }
  // The truss is not much larger than the clique itself.
  EXPECT_LE(t.nnz(), 10 * 9 + 20);
}

TEST(KTruss, NestednessProperty) {
  // "Any k-truss in a graph is part of a (k-1)-truss" (Section III-B):
  // every edge of the k-truss must appear in the (k-1)-truss.
  const auto a = random_undirected(40, 0.25, 21);
  auto prev = ktruss_adjacency(a, 3);
  for (int k = 4; k <= 6; ++k) {
    const auto current = ktruss_adjacency(a, k);
    for (const auto& t : current.to_triples()) {
      EXPECT_EQ(prev.at(t.row, t.col), 1.0) << "k=" << k;
    }
    prev = current;
  }
}

TEST(TrussDecomposition, PaperExample) {
  const auto decomp = truss_decomposition(paper_example_adjacency());
  ASSERT_EQ(decomp.edges.size(), 6u);
  // Edge (1,4) (0-indexed v2-v5) has truss number 2; all others 3.
  for (std::size_t i = 0; i < decomp.edges.size(); ++i) {
    const auto [u, v] = decomp.edges[i];
    const int expected = (u == 1 && v == 4) ? 2 : 3;
    EXPECT_EQ(decomp.truss_number[i], expected) << u << "-" << v;
  }
  EXPECT_EQ(decomp.max_k, 3);
}

TEST(TrussDecomposition, ConsistentWithDirectKTruss) {
  const auto a = random_undirected(30, 0.25, 31);
  const auto decomp = truss_decomposition(a);
  for (int k = 3; k <= decomp.max_k; ++k) {
    const auto tk = ktruss_adjacency(a, k);
    for (std::size_t i = 0; i < decomp.edges.size(); ++i) {
      const auto [u, v] = decomp.edges[i];
      const bool in_truss = tk.at(u, v) != 0.0;
      EXPECT_EQ(decomp.truss_number[i] >= k, in_truss)
          << "edge " << u << "-" << v << " k " << k;
    }
  }
}

TEST(TrussDecomposition, CliqueAllMaxK) {
  std::vector<la::Triple<double>> t;
  for (Index i = 0; i < 5; ++i) {
    for (Index j = 0; j < 5; ++j) {
      if (i != j) t.push_back({i, j, 1.0});
    }
  }
  const auto decomp = truss_decomposition(SpMat<double>::from_triples(5, 5, t));
  EXPECT_EQ(decomp.max_k, 5);
  for (int tn : decomp.truss_number) EXPECT_EQ(tn, 5);
}

TEST(IncidenceBuilders, RoundTripOnRandomGraphs) {
  for (std::uint64_t seed : {41u, 42u}) {
    const auto a = random_undirected(25, 0.3, seed);
    const auto e = incidence_from_adjacency(a);
    EXPECT_EQ(adjacency_from_incidence(e, 25), a);
    // Each incidence row has exactly two endpoints.
    for (Index r = 0; r < e.rows(); ++r) EXPECT_EQ(e.row_degree(r), 2);
  }
}

}  // namespace
}  // namespace graphulo::algo
