// The asynchronous write path: WAL group commit (sync modes and
// durability), the background flush/compaction scheduler (racing scans,
// back-pressure, quiesce), and the RFile block cache (LRU semantics,
// counters). Registered under the `concurrency` ctest label so the TSan
// build exercises every cross-thread handoff here.

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nosql/nosql.hpp"
#include "util/strings.hpp"

namespace graphulo::nosql {
namespace {

std::string temp_wal_path(const char* name) {
  return ::testing::TempDir() + "/graphulo_" + name + ".wal";
}

std::string cells_fingerprint(const std::vector<Cell>& cells) {
  std::string out;
  for (const auto& c : cells) {
    out += c.key.row + "|" + c.key.family + "|" + c.key.qualifier + "|" +
           std::to_string(c.key.ts) + "|" + (c.key.deleted ? "D" : "-") + "|" +
           c.value + "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// BlockCache

TEST(BlockCache, MissesInsertThenHit) {
  BlockCache cache(1 << 20, 1);
  auto data = std::make_shared<std::vector<int>>(16);
  BlockCache::Pin pin(data, data.get());
  EXPECT_FALSE(cache.touch(1, 0, pin, 100));  // miss inserts
  EXPECT_TRUE(cache.touch(1, 0, pin, 100));   // now resident
  EXPECT_FALSE(cache.touch(1, 1, pin, 100));  // different block
  EXPECT_FALSE(cache.touch(2, 0, pin, 100));  // different file
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.entries, 3u);
  EXPECT_EQ(s.bytes, 300u);
  EXPECT_EQ(s.evictions, 0u);
}

TEST(BlockCache, EvictsLeastRecentlyUsedWithinBudget) {
  BlockCache cache(250, 1);  // room for two 100-byte blocks
  auto data = std::make_shared<std::vector<int>>(16);
  BlockCache::Pin pin(data, data.get());
  cache.touch(1, 0, pin, 100);
  cache.touch(1, 1, pin, 100);
  EXPECT_TRUE(cache.touch(1, 0, pin, 100));  // block 0 now MRU
  cache.touch(1, 2, pin, 100);               // evicts block 1 (LRU)
  EXPECT_TRUE(cache.touch(1, 0, pin, 100));
  EXPECT_FALSE(cache.touch(1, 1, pin, 100));  // was evicted
  const auto s = cache.stats();
  EXPECT_GE(s.evictions, 1u);
  EXPECT_LE(s.bytes, 300u);
}

TEST(BlockCache, OversizedBlockStillCachedAlone) {
  // A single block larger than the budget is kept (never evict down to
  // zero entries), so pathological block sizes degrade instead of
  // looping.
  BlockCache cache(50, 1);
  auto data = std::make_shared<std::vector<int>>(16);
  BlockCache::Pin pin(data, data.get());
  cache.touch(1, 0, pin, 400);
  EXPECT_TRUE(cache.touch(1, 0, pin, 400));
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(BlockCache, EraseFileDropsOnlyThatFile) {
  BlockCache cache(1 << 20, 2);
  auto data = std::make_shared<std::vector<int>>(16);
  BlockCache::Pin pin(data, data.get());
  for (std::uint64_t b = 0; b < 8; ++b) {
    cache.touch(1, b, pin, 10);
    cache.touch(2, b, pin, 10);
  }
  cache.erase_file(1);
  const auto s = cache.stats();
  EXPECT_EQ(s.entries, 8u);
  EXPECT_EQ(s.bytes, 80u);
  EXPECT_FALSE(cache.touch(1, 0, pin, 10));  // gone
  EXPECT_TRUE(cache.touch(2, 0, pin, 10));   // untouched
}

TEST(BlockCache, ScansPopulateAndHitThroughTablet) {
  TableConfig cfg;
  cfg.flush_entries = 100;
  cfg.rfile.index_stride = 16;
  cfg.rfile.cache_bytes = 1 << 20;
  Instance db(1);
  db.create_table("t", cfg);
  for (int i = 0; i < 500; ++i) {
    Mutation m(util::zero_pad(static_cast<std::uint64_t>(i), 4));
    m.put("f", "q", "v" + std::to_string(i));
    db.apply("t", m);
  }
  db.flush("t");
  std::vector<Cell> first, second;
  {
    Scanner scan(db, "t");
    first = scan.read_all();
  }
  {
    Scanner scan(db, "t");
    second = scan.read_all();
  }
  EXPECT_EQ(cells_fingerprint(first), cells_fingerprint(second));
  const auto s = db.tablets_for_range("t", Range::all())[0].first->stats();
  EXPECT_GT(s.cache_misses, 0u);  // first scan populated
  EXPECT_GT(s.cache_hits, 0u);    // second scan hit
}

TEST(BlockCache, TinyBudgetEvictsUnderScan) {
  TableConfig cfg;
  cfg.flush_entries = 200;
  cfg.rfile.index_stride = 8;
  cfg.rfile.cache_bytes = 512;  // a handful of blocks at most
  Instance db(1);
  db.create_table("t", cfg);
  for (int i = 0; i < 1000; ++i) {
    Mutation m(util::zero_pad(static_cast<std::uint64_t>(i), 4));
    m.put("f", "q", "value-" + std::to_string(i));
    db.apply("t", m);
  }
  db.flush("t");
  for (int rep = 0; rep < 2; ++rep) {
    Scanner scan(db, "t");
    EXPECT_EQ(scan.read_all().size(), 1000u);
  }
  const auto s = db.tablets_for_range("t", Range::all())[0].first->stats();
  EXPECT_GT(s.cache_evictions, 0u);
}

// ---------------------------------------------------------------------------
// WAL sync modes

TEST(WalGroupCommit, PerAppendModeIsDurableRecordByRecord) {
  const auto path = temp_wal_path("per_append");
  std::remove(path.c_str());
  WalOptions opts;
  opts.sync_mode = WalSyncMode::kPerAppend;
  {
    WriteAheadLog wal(path, opts);
    Mutation m("r");
    m.put("f", "q", "v");
    wal.log_mutation("t", m, 1);
    // per-append: durable the moment the call returns, no sync needed.
    EXPECT_EQ(wal.durable_seq(), 1u);
    wal.log_create_table("t2");
    EXPECT_EQ(wal.durable_seq(), 2u);
  }
  std::size_t replayed = 0;
  replay_wal(path, [&](const WalRecord&) { ++replayed; });
  EXPECT_EQ(replayed, 2u);
  std::remove(path.c_str());
}

TEST(WalGroupCommit, GroupModeBlocksUntilDurable) {
  const auto path = temp_wal_path("group");
  std::remove(path.c_str());
  WalOptions opts;
  opts.sync_mode = WalSyncMode::kGroup;
  {
    WriteAheadLog wal(path, opts);
    for (int i = 0; i < 20; ++i) {
      Mutation m("r" + std::to_string(i));
      m.put("f", "q", "v");
      wal.log_mutation("t", m, static_cast<Timestamp>(i + 1));
      // Group commit still blocks the appender until ITS record is
      // durable — batching trades latency, not the durability contract.
      EXPECT_GE(wal.durable_seq(), static_cast<std::uint64_t>(i + 1));
    }
  }
  std::size_t replayed = 0;
  replay_wal(path, [&](const WalRecord&) { ++replayed; });
  EXPECT_EQ(replayed, 20u);
  std::remove(path.c_str());
}

TEST(WalGroupCommit, GroupModeManyConcurrentAppenders) {
  const auto path = temp_wal_path("group_mt");
  std::remove(path.c_str());
  WalOptions opts;
  opts.sync_mode = WalSyncMode::kGroup;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  {
    WriteAheadLog wal(path, opts);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&wal, t] {
        for (int i = 0; i < kPerThread; ++i) {
          Mutation m("t" + std::to_string(t) + "-" + std::to_string(i));
          m.put("f", "q", "v");
          wal.log_mutation("tbl", m, 1);
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(wal.durable_seq(),
              static_cast<std::uint64_t>(kThreads * kPerThread));
  }
  // Every record intact and strictly ordered by sequence.
  std::uint64_t prev = 0;
  std::size_t replayed = 0;
  replay_wal(path, [&](const WalRecord& r) {
    EXPECT_GT(r.seq, prev);
    prev = r.seq;
    ++replayed;
  });
  EXPECT_EQ(replayed, static_cast<std::size_t>(kThreads * kPerThread));
  std::remove(path.c_str());
}

TEST(WalGroupCommit, IntervalModeSyncMakesEverythingDurable) {
  const auto path = temp_wal_path("interval");
  std::remove(path.c_str());
  WalOptions opts;
  opts.sync_mode = WalSyncMode::kInterval;
  opts.max_batch_latency = std::chrono::microseconds(100000);
  {
    WriteAheadLog wal(path, opts);
    for (int i = 0; i < 10; ++i) {
      Mutation m("r" + std::to_string(i));
      m.put("f", "q", "v");
      wal.log_mutation("t", m, 1);
    }
    wal.sync();
    EXPECT_EQ(wal.durable_seq(), 10u);
  }
  std::size_t replayed = 0;
  replay_wal(path, [&](const WalRecord&) { ++replayed; });
  EXPECT_EQ(replayed, 10u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Background flush/compaction

TEST(BackgroundCompaction, CountersAdvanceAndDataSurvives) {
  TableConfig cfg;
  cfg.flush_entries = 50;
  cfg.compaction_fanin = 4;
  Instance db(1);
  auto sched = std::make_shared<CompactionScheduler>(2);
  db.attach_compaction_scheduler(sched);
  db.create_table("t", cfg);
  constexpr int kCells = 2000;
  for (int i = 0; i < kCells; ++i) {
    Mutation m(util::zero_pad(static_cast<std::uint64_t>(i), 5));
    m.put("f", "q", "v" + std::to_string(i));
    db.apply("t", m);
  }
  db.quiesce_compactions();
  const auto tablets = db.tablets_for_range("t", Range::all());
  ASSERT_EQ(tablets.size(), 1u);
  const auto s = tablets[0].first->stats();
  EXPECT_GT(s.compactions_queued, 0u);
  EXPECT_GT(s.compactions_completed, 0u);
  EXPECT_EQ(s.compactions_in_flight, 0u);
  EXPECT_GT(s.minor_compactions, 0u);
  const auto sstats = sched->stats();
  EXPECT_GT(sstats.queued, 0u);
  EXPECT_EQ(sstats.queued, sstats.completed);
  Scanner scan(db, "t");
  EXPECT_EQ(scan.read_all().size(), static_cast<std::size_t>(kCells));
}

// The core property: scans racing background compactions observe
// exactly the same cells, byte for byte, as an inline (quiesced)
// execution of the identical workload.
TEST(BackgroundCompaction, RacingScansMatchQuiescedRunByteForByte) {
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 800;
  auto workload = [](Instance& db) {
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&db, w] {
        for (int i = 0; i < kPerWriter; ++i) {
          // Disjoint key ranges per writer; the wrap-around overwrites
          // the first keys again, exercising newest-wins across the
          // memtable / frozen / file boundary without cross-thread
          // write races. Timestamps are EXPLICIT so the final state is
          // independent of thread interleaving (the instance clock
          // would hand out schedule-dependent values).
          Mutation m("w" + std::to_string(w) + "-" +
                     util::zero_pad(static_cast<std::uint64_t>(i % 790), 4));
          m.put("f", "q", "", static_cast<Timestamp>(i + 1),
                "v" + std::to_string(i));
          db.apply("t", m);
        }
      });
    }
    return writers;
  };

  // Reference: inline compactions, single-threaded writers (sequential
  // per-thread order preserved by running threads one after another).
  Instance ref(1);
  TableConfig ref_cfg;
  ref_cfg.flush_entries = 100;
  ref_cfg.compaction_fanin = 4;
  ref.create_table("t", ref_cfg);
  {
    auto writers = workload(ref);
    for (auto& th : writers) th.join();
  }
  ref.compact("t");
  std::string ref_fp;
  {
    Scanner scan(ref, "t");
    ref_fp = cells_fingerprint(scan.read_all());
  }

  // Racy run: background compactions on 3 threads, scans fired the
  // whole time, tiny flush threshold so installs churn constantly.
  Instance db(2);
  auto sched = std::make_shared<CompactionScheduler>(3);
  db.attach_compaction_scheduler(sched);
  TableConfig cfg;
  cfg.flush_entries = 100;
  cfg.compaction_fanin = 4;
  cfg.rfile.cache_bytes = 64 * 1024;
  db.create_table("t", cfg);
  std::atomic<bool> stop{false};
  std::thread scanner([&] {
    while (!stop.load(std::memory_order_acquire)) {
      Scanner scan(db, "t");
      const auto cells = scan.read_all();
      // Mid-race scans see a consistent sorted snapshot.
      for (std::size_t i = 1; i < cells.size(); ++i) {
        ASSERT_TRUE(cells[i - 1].key < cells[i].key ||
                    !(cells[i].key < cells[i - 1].key));
      }
    }
  });
  {
    auto writers = workload(db);
    for (auto& th : writers) th.join();
  }
  // All data applied; scans while compactions still churn must already
  // be byte-identical to the reference.
  {
    Scanner scan(db, "t");
    EXPECT_EQ(cells_fingerprint(scan.read_all()), ref_fp);
  }
  stop.store(true, std::memory_order_release);
  scanner.join();
  db.quiesce_compactions();
  db.compact("t");
  {
    Scanner scan(db, "t");
    EXPECT_EQ(cells_fingerprint(scan.read_all()), ref_fp);
  }
  const auto s = db.tablets_for_range("t", Range::all())[0].first->stats();
  EXPECT_GT(s.compactions_completed, 0u);
}

TEST(BackgroundCompaction, BackPressureBoundsFileCount) {
  TableConfig cfg;
  cfg.flush_entries = 20;
  cfg.compaction_fanin = 4;
  cfg.max_tablet_files = 6;
  Instance db(1);
  auto sched = std::make_shared<CompactionScheduler>(2);
  db.attach_compaction_scheduler(sched);
  db.create_table("t", cfg);
  for (int i = 0; i < 3000; ++i) {
    Mutation m(util::zero_pad(static_cast<std::uint64_t>(i), 5));
    m.put("f", "q", "v");
    db.apply("t", m);
  }
  db.quiesce_compactions();
  const auto s = db.tablets_for_range("t", Range::all())[0].first->stats();
  // Back-pressure + majors keep the file count at or under the ceiling.
  EXPECT_LE(s.file_count, cfg.max_tablet_files);
  Scanner scan(db, "t");
  EXPECT_EQ(scan.read_all().size(), 3000u);
}

TEST(BackgroundCompaction, FlushDrainsFrozenMemtablesSynchronously) {
  TableConfig cfg;
  cfg.flush_entries = 10;
  Instance db(1);
  auto sched = std::make_shared<CompactionScheduler>(1);
  db.attach_compaction_scheduler(sched);
  db.create_table("t", cfg);
  for (int i = 0; i < 95; ++i) {
    Mutation m(util::zero_pad(static_cast<std::uint64_t>(i), 3));
    m.put("f", "q", "v");
    db.apply("t", m);
  }
  db.flush("t");  // synchronous contract: nothing buffered on return
  const auto s = db.tablets_for_range("t", Range::all())[0].first->stats();
  EXPECT_EQ(s.memtable_entries, 0u);
  EXPECT_EQ(s.frozen_memtables, 0u);
  EXPECT_EQ(db.entry_estimate("t"), 95u);
}

TEST(BackgroundCompaction, CheckpointQuiescesAndRoundTrips) {
  const auto wal_path = temp_wal_path("bg_ckpt");
  const auto ckpt_path = ::testing::TempDir() + "/graphulo_bg_ckpt.img";
  std::remove(wal_path.c_str());
  std::remove(ckpt_path.c_str());
  {
    Instance db(1);
    db.attach_wal(std::make_shared<WriteAheadLog>(wal_path));
    auto sched = std::make_shared<CompactionScheduler>(2);
    db.attach_compaction_scheduler(sched);
    TableConfig cfg;
    cfg.flush_entries = 64;
    db.create_table("t", cfg);
    for (int i = 0; i < 500; ++i) {
      Mutation m(util::zero_pad(static_cast<std::uint64_t>(i), 4));
      m.put("f", "q", "v" + std::to_string(i));
      db.apply("t", m);
    }
    db.sync_wal();
    write_checkpoint(db, ckpt_path);
  }
  Instance recovered(1);
  recover_instance(recovered, ckpt_path, wal_path);
  Scanner scan(recovered, "t");
  EXPECT_EQ(scan.read_all().size(), 500u);
  std::remove(wal_path.c_str());
  std::remove(ckpt_path.c_str());
}

// ---------------------------------------------------------------------------
// Zero-cell flush early-outs

TEST(FlushEarlyOut, EmptyMemtableInstallsNoFile) {
  TableConfig cfg;
  Tablet tablet({"", ""}, &cfg);
  tablet.flush();  // nothing buffered
  EXPECT_EQ(tablet.stats().file_count, 0u);
  EXPECT_EQ(tablet.stats().minor_compactions, 0u);
  Mutation m("r");
  m.put("f", "q", "v");
  tablet.apply(m, 1);
  tablet.flush();
  EXPECT_EQ(tablet.stats().file_count, 1u);
  const auto before = tablet.stats().minor_compactions;
  tablet.flush();  // empty again: no new file, no counted compaction
  EXPECT_EQ(tablet.stats().file_count, 1u);
  EXPECT_EQ(tablet.stats().minor_compactions, before);
}

TEST(FlushEarlyOut, MincStackDroppingEverythingInstallsNoFile) {
  TableConfig cfg;
  IteratorSetting drop_all;
  drop_all.name = "drop_all";
  drop_all.scopes = kMincScope;
  drop_all.factory = [](IterPtr) -> IterPtr {
    return std::make_unique<VectorIterator>(
        std::make_shared<const std::vector<Cell>>());
  };
  cfg.attach_iterator(std::move(drop_all));
  Tablet tablet({"", ""}, &cfg);
  Mutation m("r");
  m.put("f", "q", "v");
  tablet.apply(m, 1);
  tablet.flush();
  EXPECT_EQ(tablet.stats().file_count, 0u);
  EXPECT_EQ(tablet.stats().memtable_entries, 0u);
}

}  // namespace
}  // namespace graphulo::nosql
