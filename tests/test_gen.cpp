// Generators: R-MAT, Erdos-Renyi, planted structures, synthetic tweets.

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "gen/erdos.hpp"
#include "gen/planted.hpp"
#include "gen/rmat.hpp"
#include "gen/tweets.hpp"
#include "la/reduce.hpp"
#include "la/structure.hpp"

namespace graphulo::gen {
namespace {

using la::Index;

TEST(Rmat, ShapeAndEdgeBudget) {
  RmatParams p;
  p.scale = 8;
  p.edge_factor = 8;
  auto a = rmat_adjacency(p);
  EXPECT_EQ(a.rows(), 256);
  EXPECT_EQ(a.cols(), 256);
  // Values are multiplicities; total equals 2x the sampled edges
  // (undirected mirror), minus nothing since self loops were rejected.
  const double total = la::reduce_all(a, [](double x, double y) { return x + y; });
  EXPECT_DOUBLE_EQ(total, 2.0 * 8 * 256);
}

TEST(Rmat, UndirectedIsSymmetricAndLoopFree) {
  RmatParams p;
  p.scale = 7;
  auto a = rmat_adjacency(p);
  EXPECT_TRUE(la::is_symmetric(a));
  for (Index i = 0; i < a.rows(); ++i) EXPECT_EQ(a.at(i, i), 0.0);
}

TEST(Rmat, DeterministicBySeed) {
  RmatParams p;
  p.scale = 7;
  p.seed = 5;
  EXPECT_EQ(rmat_adjacency(p), rmat_adjacency(p));
  RmatParams q = p;
  q.seed = 6;
  EXPECT_NE(rmat_adjacency(p), rmat_adjacency(q));
}

TEST(Rmat, SkewProducesHeavyTail) {
  // With Graph500 parameters the max degree should far exceed the mean.
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  auto a = rmat_simple_adjacency(p);
  const auto deg = la::row_nnz_counts(a);
  const double mean =
      static_cast<double>(a.nnz()) / static_cast<double>(a.rows());
  const double max_deg = *std::max_element(deg.begin(), deg.end());
  EXPECT_GT(max_deg, 4.0 * mean);
}

TEST(Rmat, SimpleAdjacencyIsZeroOne) {
  RmatParams p;
  p.scale = 6;
  auto a = rmat_simple_adjacency(p);
  for (double v : a.values()) EXPECT_EQ(v, 1.0);
}

TEST(Rmat, RejectsBadParameters) {
  RmatParams p;
  p.scale = 0;
  EXPECT_THROW(rmat_edges(p), std::invalid_argument);
  p.scale = 5;
  p.a = 0.9;
  p.b = 0.2;  // a+b+c > 1
  EXPECT_THROW(rmat_edges(p), std::invalid_argument);
}

TEST(ErdosRenyi, GnpEdgeCountNearExpectation) {
  const Index n = 200;
  const double p = 0.05;
  auto a = erdos_renyi_gnp(n, p, 7, true);
  EXPECT_TRUE(la::is_symmetric(a));
  const double edges = static_cast<double>(a.nnz()) / 2.0;
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(edges, expected, 4.0 * std::sqrt(expected));
}

TEST(ErdosRenyi, GnpExtremes) {
  EXPECT_EQ(erdos_renyi_gnp(50, 0.0, 1, true).nnz(), 0);
  auto full = erdos_renyi_gnp(20, 1.0, 1, true);
  EXPECT_EQ(full.nnz(), 20 * 19);  // complete graph, both directions
}

TEST(ErdosRenyi, GnpDirectedHasNoLoops) {
  auto a = erdos_renyi_gnp(60, 0.2, 3, false);
  for (Index i = 0; i < a.rows(); ++i) EXPECT_EQ(a.at(i, i), 0.0);
}

TEST(ErdosRenyi, GnmExactEdgeCount) {
  auto a = erdos_renyi_gnm(100, 250, 9, true);
  EXPECT_EQ(a.nnz(), 500);
  EXPECT_TRUE(la::is_symmetric(a));
  EXPECT_THROW(erdos_renyi_gnm(10, 1000, 9, true), std::invalid_argument);
}

TEST(Planted, CliqueVerticesFormClique) {
  auto g = planted_clique(100, 10, 0.02, 17);
  ASSERT_EQ(g.planted_set.size(), 10u);
  for (Index u : g.planted_set) {
    for (Index v : g.planted_set) {
      if (u != v) {
        EXPECT_EQ(g.adjacency.at(u, v), 1.0);
      }
    }
  }
  EXPECT_TRUE(la::is_symmetric(g.adjacency));
}

TEST(Planted, CliqueLargerThanGraphThrows) {
  EXPECT_THROW(planted_clique(5, 6, 0.1, 1), std::invalid_argument);
}

TEST(Planted, PartitionDensityContrast) {
  auto g = planted_partition(120, 3, 0.3, 0.01, 19);
  const auto labels = partition_labels(120, 3);
  std::size_t in = 0, out = 0, in_possible = 0, out_possible = 0;
  for (Index i = 0; i < 120; ++i) {
    for (Index j = i + 1; j < 120; ++j) {
      const bool same = labels[static_cast<std::size_t>(i)] ==
                        labels[static_cast<std::size_t>(j)];
      const bool edge = g.adjacency.at(i, j) != 0.0;
      (same ? in_possible : out_possible) += 1;
      if (edge) (same ? in : out) += 1;
    }
  }
  const double p_in = static_cast<double>(in) / static_cast<double>(in_possible);
  const double p_out = static_cast<double>(out) / static_cast<double>(out_possible);
  EXPECT_GT(p_in, 5.0 * p_out);
}

TEST(Tweets, CorpusShapeMatchesParameters) {
  TweetParams p;
  p.num_tweets = 500;
  auto corpus = generate_tweets(p);
  EXPECT_EQ(corpus.tweets.size(), 500u);
  EXPECT_EQ(corpus.topic_names.size(), 5u);
  for (const auto& t : corpus.tweets) {
    EXPECT_GE(static_cast<int>(t.words.size()), p.words_min);
    EXPECT_LE(static_cast<int>(t.words.size()), p.words_max);
    EXPECT_GE(t.true_topic, 0);
    EXPECT_LT(t.true_topic, 5);
  }
}

TEST(Tweets, IdsAreSortableAndUnique) {
  TweetParams p;
  p.num_tweets = 100;
  auto corpus = generate_tweets(p);
  std::set<std::string> ids;
  for (const auto& t : corpus.tweets) ids.insert(t.id);
  EXPECT_EQ(ids.size(), 100u);
  EXPECT_LT(corpus.tweets[9].id, corpus.tweets[10].id);
}

TEST(Tweets, TopicWordsDominateTheirTopic) {
  TweetParams p;
  p.num_tweets = 2000;
  p.seed = 3;
  auto corpus = generate_tweets(p);
  // For each topic, count how often its pool words appear in tweets of
  // that topic vs other topics.
  for (int topic = 0; topic < tweet_topic_count(); ++topic) {
    const auto& pool = tweet_topic_pool(topic);
    std::set<std::string> pool_set(pool.begin(), pool.end());
    std::size_t own = 0, other = 0, own_words = 0, other_words = 0;
    for (const auto& t : corpus.tweets) {
      for (const auto& w : t.words) {
        const bool in_pool = pool_set.count(w) > 0;
        if (t.true_topic == topic) {
          own_words += 1;
          own += in_pool;
        } else {
          other_words += 1;
          other += in_pool;
        }
      }
    }
    const double own_rate = static_cast<double>(own) / static_cast<double>(own_words);
    const double other_rate =
        static_cast<double>(other) / static_cast<double>(other_words);
    EXPECT_GT(own_rate, 5.0 * other_rate) << "topic " << topic;
  }
}

TEST(Tweets, DeterministicBySeed) {
  TweetParams p;
  p.num_tweets = 50;
  auto a = generate_tweets(p);
  auto b = generate_tweets(p);
  ASSERT_EQ(a.tweets.size(), b.tweets.size());
  for (std::size_t i = 0; i < a.tweets.size(); ++i) {
    EXPECT_EQ(a.tweets[i].words, b.tweets[i].words);
  }
}

TEST(Tweets, RejectsBadParameters) {
  TweetParams p;
  p.words_min = 0;
  EXPECT_THROW(generate_tweets(p), std::invalid_argument);
  TweetParams q;
  q.topic_word_prob = 0.9;
  q.stopword_prob = 0.3;
  EXPECT_THROW(generate_tweets(q), std::invalid_argument);
}

TEST(Tweets, TopicAccessorsGuardRange) {
  EXPECT_THROW(tweet_topic_name(-1), std::out_of_range);
  EXPECT_THROW(tweet_topic_pool(5), std::out_of_range);
  EXPECT_EQ(tweet_topic_name(0), "turkish");
}

}  // namespace
}  // namespace graphulo::gen
