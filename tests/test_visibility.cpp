// Column-visibility expressions and authorization-filtered scans.

#include <gtest/gtest.h>

#include "nosql/nosql.hpp"

namespace graphulo::nosql {
namespace {

TEST(Visibility, EmptyExpressionIsPublic) {
  EXPECT_EQ(evaluate_visibility("", {}), true);
  EXPECT_EQ(evaluate_visibility("  ", {"x"}), true);
}

TEST(Visibility, SingleLabel) {
  EXPECT_EQ(evaluate_visibility("admin", {"admin"}), true);
  EXPECT_EQ(evaluate_visibility("admin", {"user"}), false);
  EXPECT_EQ(evaluate_visibility("admin", {}), false);
}

TEST(Visibility, ConjunctionAndDisjunction) {
  EXPECT_EQ(evaluate_visibility("a&b", {"a", "b"}), true);
  EXPECT_EQ(evaluate_visibility("a&b", {"a"}), false);
  EXPECT_EQ(evaluate_visibility("a|b", {"b"}), true);
  EXPECT_EQ(evaluate_visibility("a|b", {"c"}), false);
}

TEST(Visibility, PrecedenceAndParentheses) {
  // & binds tighter than |.
  EXPECT_EQ(evaluate_visibility("a|b&c", {"a"}), true);
  EXPECT_EQ(evaluate_visibility("a|b&c", {"b"}), false);
  EXPECT_EQ(evaluate_visibility("a|b&c", {"b", "c"}), true);
  EXPECT_EQ(evaluate_visibility("(a|b)&c", {"a"}), false);
  EXPECT_EQ(evaluate_visibility("(a|b)&c", {"a", "c"}), true);
  EXPECT_EQ(evaluate_visibility("((a))", {"a"}), true);
}

TEST(Visibility, LabelCharacterSet) {
  EXPECT_EQ(evaluate_visibility("org.team-1:pii_x",
                                {"org.team-1:pii_x"}), true);
  EXPECT_EQ(evaluate_visibility("a & b", {"a", "b"}), true);  // spaces ok
}

TEST(Visibility, MalformedExpressionsRejected) {
  for (const char* bad : {"&", "a&", "|b", "(a", "a)", "a b", "a&&b", "()"}) {
    EXPECT_FALSE(visibility_is_valid(bad)) << bad;
    EXPECT_FALSE(evaluate_visibility(bad, {"a", "b"}).has_value()) << bad;
  }
  EXPECT_TRUE(visibility_is_valid("a&(b|c)"));
}

TEST(Visibility, ScanFiltersByAuthorizations) {
  Instance db;
  db.create_table("t");
  auto put = [&](const char* row, const char* vis) {
    Mutation m(row);
    m.put("f", "q", vis, 1, "v");
    db.apply("t", m);
  };
  put("public", "");
  put("secret", "admin");
  put("shared", "admin|analyst");
  put("both", "admin&analyst");

  auto rows_for = [&](std::set<std::string> auths) {
    Scanner scan(db, "t");
    scan.set_authorizations(std::move(auths));
    std::set<std::string> rows;
    scan.for_each([&rows](const Key& k, const Value&) { rows.insert(k.row); });
    return rows;
  };

  EXPECT_EQ(rows_for({}), (std::set<std::string>{"public"}));
  EXPECT_EQ(rows_for({"analyst"}),
            (std::set<std::string>{"public", "shared"}));
  EXPECT_EQ(rows_for({"admin"}), (std::set<std::string>{"public", "secret",
                                                        "shared"}));
  EXPECT_EQ(rows_for({"admin", "analyst"}),
            (std::set<std::string>{"public", "secret", "shared", "both"}));
}

TEST(Visibility, UnfilteredScanSeesEverything) {
  Instance db;
  db.create_table("t");
  Mutation m("r");
  m.put("f", "q", "classified", 1, "v");
  db.apply("t", m);
  Scanner scan(db, "t");  // no set_authorizations: open-trust default
  EXPECT_EQ(scan.read_all().size(), 1u);
}

TEST(Visibility, MalformedCellFailsClosed) {
  Instance db;
  db.create_table("t");
  Mutation m("r");
  m.put("f", "q", "a&&b", 1, "v");  // malformed expression
  db.apply("t", m);
  Scanner scan(db, "t");
  scan.set_authorizations({"a", "b"});
  EXPECT_TRUE(scan.read_all().empty());
}

TEST(Visibility, BatchScannerHonorsAuthorizations) {
  Instance db(2);
  db.create_table("t");
  db.add_splits("t", {"m"});
  for (const char* row : {"a", "z"}) {
    Mutation pub(row);
    pub.put("f", "public", "", 1, "v");
    db.apply("t", pub);
    Mutation sec(row);
    sec.put("f", "secret", "clearance", 1, "v");
    db.apply("t", sec);
  }
  BatchScanner scan(db, "t");
  scan.set_authorizations({});
  EXPECT_EQ(scan.read_all().size(), 2u);  // only the public cells
}

}  // namespace
}  // namespace graphulo::nosql
