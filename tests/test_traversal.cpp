// BFS (linear-algebraic vs classical), DFS, k-hop neighborhoods,
// betweenness centrality.

#include <set>

#include <gtest/gtest.h>

#include "algo/betweenness.hpp"
#include "algo/traversal.hpp"
#include "gen/rmat.hpp"
#include "la/la.hpp"
#include "test_helpers.hpp"

namespace graphulo::algo {
namespace {

using graphulo::testing::random_undirected;
using la::Index;
using la::SpMat;

TEST(Bfs, LevelsOnPathGraph) {
  auto a = SpMat<double>::from_triples(
      4, 4, {{0, 1, 1.0}, {1, 0, 1.0}, {1, 2, 1.0}, {2, 1, 1.0},
             {2, 3, 1.0}, {3, 2, 1.0}});
  const auto r = bfs_linalg(a, 0);
  EXPECT_EQ(r.level, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(r.parent, (std::vector<Index>{-1, 0, 1, 2}));
  EXPECT_EQ(r.max_level, 3);
}

TEST(Bfs, UnreachableVerticesStayAtMinusOne) {
  auto a = SpMat<double>::from_triples(4, 4, {{0, 1, 1.0}});
  const auto r = bfs_linalg(a, 0);
  EXPECT_EQ(r.level[2], -1);
  EXPECT_EQ(r.level[3], -1);
  EXPECT_EQ(r.parent[2], -1);
}

TEST(Bfs, DirectedEdgesRespected) {
  // 1 -> 0: not reachable from 0.
  auto a = SpMat<double>::from_triples(2, 2, {{1, 0, 1.0}});
  const auto r = bfs_linalg(a, 0);
  EXPECT_EQ(r.level[1], -1);
}

TEST(Bfs, ParentsFormValidTree) {
  const auto a = random_undirected(60, 0.08, 101);
  const auto r = bfs_linalg(a, 0);
  for (Index v = 0; v < a.rows(); ++v) {
    const auto lv = r.level[static_cast<std::size_t>(v)];
    const auto pv = r.parent[static_cast<std::size_t>(v)];
    if (lv > 0) {
      ASSERT_GE(pv, 0);
      EXPECT_EQ(r.level[static_cast<std::size_t>(pv)], lv - 1);
      EXPECT_NE(a.at(pv, v), 0.0);  // parent edge exists
    }
  }
}

class BfsAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BfsAgreement, LinalgMatchesClassic) {
  const auto a = random_undirected(80, 0.06, GetParam());
  const auto fast = bfs_linalg(a, 0);
  const auto classic = bfs_classic(a, 0);
  EXPECT_EQ(fast.level, classic.level);  // levels are unique; parents may differ
  EXPECT_EQ(fast.max_level, classic.max_level);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BfsAgreement, ::testing::Values(1, 2, 3, 4));

TEST(Bfs, SourceValidation) {
  SpMat<double> a(3, 3);
  EXPECT_THROW(bfs_linalg(a, 3), std::out_of_range);
  EXPECT_THROW(bfs_linalg(a, -1), std::out_of_range);
  SpMat<double> rect(2, 3);
  EXPECT_THROW(bfs_linalg(rect, 0), std::invalid_argument);
}

TEST(Dfs, PreorderOnTree) {
  //      0
  //     / |
  //    1   4
  //   / |
  //  2   3
  auto a = SpMat<double>::from_triples(
      5, 5, {{0, 1, 1.0}, {0, 4, 1.0}, {1, 2, 1.0}, {1, 3, 1.0}});
  EXPECT_EQ(dfs_preorder(a, 0), (std::vector<Index>{0, 1, 2, 3, 4}));
}

TEST(Dfs, VisitsReachableOnlyOnce) {
  const auto a = random_undirected(40, 0.2, 111);
  const auto order = dfs_preorder(a, 0);
  std::set<Index> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), order.size());
  // Connected enough at this density that all vertices are reached.
  EXPECT_EQ(order.size(), 40u);
}

TEST(KHop, GrowsMonotonically) {
  const auto a = random_undirected(50, 0.08, 121);
  std::size_t prev = 0;
  for (int h = 0; h <= 4; ++h) {
    const auto nb = k_hop_neighborhood(a, {0}, h);
    EXPECT_GE(nb.size(), prev);
    prev = nb.size();
  }
  // 0 hops = just the seed.
  EXPECT_EQ(k_hop_neighborhood(a, {0}, 0), (std::vector<Index>{0}));
}

TEST(KHop, MatchesBfsLevels) {
  const auto a = random_undirected(50, 0.1, 122);
  const auto r = bfs_classic(a, 0);
  const auto nb = k_hop_neighborhood(a, {0}, 2);
  std::set<Index> nb_set(nb.begin(), nb.end());
  for (Index v = 0; v < a.rows(); ++v) {
    const bool within = r.level[static_cast<std::size_t>(v)] >= 0 &&
                        r.level[static_cast<std::size_t>(v)] <= 2;
    EXPECT_EQ(nb_set.count(v) > 0, within) << "v=" << v;
  }
}

TEST(Betweenness, PathGraphInteriorDominates) {
  // Path 0-1-2-3-4: betweenness (undirected convention: both directions
  // counted) peaks at the middle vertex.
  const Index n = 5;
  std::vector<la::Triple<double>> t;
  for (Index i = 0; i + 1 < n; ++i) {
    t.push_back({i, i + 1, 1.0});
    t.push_back({i + 1, i, 1.0});
  }
  const auto a = SpMat<double>::from_triples(n, n, t);
  const auto bc = betweenness_centrality(a);
  // Closed form (directed counts both orders): v1: 2*(1*3)=6, v2: 2*4=8.
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[1], 6.0);
  EXPECT_DOUBLE_EQ(bc[2], 8.0);
  EXPECT_DOUBLE_EQ(bc[3], 6.0);
  EXPECT_DOUBLE_EQ(bc[4], 0.0);
}

TEST(Betweenness, StarHubCarriesAllPairs) {
  // Star with hub 0 and k=4 leaves: every leaf pair's shortest path
  // passes the hub; bc(hub) = k*(k-1) = 12 (ordered pairs).
  std::vector<la::Triple<double>> t;
  for (Index v = 1; v <= 4; ++v) {
    t.push_back({0, v, 1.0});
    t.push_back({v, 0, 1.0});
  }
  const auto bc = betweenness_centrality(SpMat<double>::from_triples(5, 5, t));
  EXPECT_DOUBLE_EQ(bc[0], 12.0);
  for (int v = 1; v <= 4; ++v) EXPECT_DOUBLE_EQ(bc[static_cast<std::size_t>(v)], 0.0);
}

TEST(Betweenness, MultipleShortestPathsSplitCredit) {
  // 4-cycle: two shortest paths between opposite corners; each
  // intermediate gets half per ordered pair -> bc = 1 for every vertex.
  std::vector<la::Triple<double>> t;
  for (Index i = 0; i < 4; ++i) {
    const Index j = (i + 1) % 4;
    t.push_back({i, j, 1.0});
    t.push_back({j, i, 1.0});
  }
  const auto bc = betweenness_centrality(SpMat<double>::from_triples(4, 4, t));
  for (double v : bc) EXPECT_DOUBLE_EQ(v, 1.0);
}

class BetweennessAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BetweennessAgreement, LinalgMatchesBrandesBaseline) {
  const auto a = random_undirected(35, 0.15, GetParam());
  std::vector<Index> sources;
  for (Index s = 0; s < a.rows(); ++s) sources.push_back(s);
  const auto fast = betweenness_centrality(a, sources);
  const auto slow = betweenness_brandes_baseline(a, sources);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t v = 0; v < fast.size(); ++v) {
    EXPECT_NEAR(fast[v], slow[v], 1e-9) << "v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BetweennessAgreement,
                         ::testing::Values(5, 6, 7));

TEST(Betweenness, SampledSourcesSubsetOfExact) {
  const auto a = random_undirected(30, 0.2, 131);
  const auto sampled = betweenness_centrality(a, {0, 5, 10});
  const auto sampled_ref = betweenness_brandes_baseline(a, {0, 5, 10});
  for (std::size_t v = 0; v < sampled.size(); ++v) {
    EXPECT_NEAR(sampled[v], sampled_ref[v], 1e-9);
  }
}

}  // namespace
}  // namespace graphulo::algo
