// The Section IV / future-work extensions: closeness centrality, the
// fused k-truss support kernel, and the fused upper-triangular Jaccard
// kernel — each validated against the kernel-composed forms.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "algo/centrality.hpp"
#include "algo/jaccard.hpp"
#include "algo/ktruss.hpp"
#include "algo/sssp.hpp"
#include "la/la.hpp"
#include "test_helpers.hpp"

namespace graphulo::algo {
namespace {

using graphulo::testing::paper_example_adjacency;
using graphulo::testing::random_undirected;
using la::Index;
using la::SpMat;

TEST(Closeness, PathGraphCenterIsClosest) {
  // Path 0-1-2-3-4: vertex 2 minimizes total distance.
  std::vector<la::Triple<double>> t;
  for (Index i = 0; i + 1 < 5; ++i) {
    t.push_back({i, i + 1, 1.0});
    t.push_back({i + 1, i, 1.0});
  }
  const auto c = closeness_centrality(SpMat<double>::from_triples(5, 5, t));
  EXPECT_GT(c[2], c[1]);
  EXPECT_GT(c[1], c[0]);
  EXPECT_NEAR(c[0], c[4], 1e-12);  // symmetric ends
  // Exact: center has distances 1+1+2+2=6 -> 4/6.
  EXPECT_NEAR(c[2], 4.0 / 6.0, 1e-12);
}

TEST(Closeness, MatchesBfsDistancesOnRandomGraph) {
  const auto a = random_undirected(40, 0.1, 301);
  const auto c = closeness_centrality(a);
  // Reference via Bellman-Ford on the 0/1 weights.
  const Index n = a.rows();
  for (Index v = 0; v < n; ++v) {
    const auto dist = bellman_ford(a, v);
    double sum = 0.0;
    double reached = 0.0;
    for (double d : dist) {
      if (d < std::numeric_limits<double>::infinity() && d > 0.0) {
        sum += d;
        ++reached;
      }
    }
    const double expected =
        sum > 0 ? (reached / (n - 1)) * (reached / sum) : 0.0;
    EXPECT_NEAR(c[static_cast<std::size_t>(v)], expected, 1e-9) << "v=" << v;
  }
}

TEST(Closeness, IsolatedVertexScoresZero) {
  SpMat<double> a(3, 3);
  const auto c = closeness_centrality(a);
  EXPECT_EQ(c, (std::vector<double>{0, 0, 0}));
}

TEST(FusedKTrussSupport, MatchesAlgorithmOneSupports) {
  const auto a = paper_example_adjacency();
  // Edges in upper-triangle order: (0,1) (0,2) (0,3) (1,2) (1,4) (2,3).
  std::vector<std::pair<Index, Index>> edges;
  for (const auto& t : la::triu(a).to_triples()) {
    edges.emplace_back(t.row, t.col);
  }
  const auto support = ktruss_support_fused(a, edges);
  // Supports: common-neighbor counts per edge. v1v2 share v3 -> 1;
  // v1v3 share v2,v4 -> 2; v1v4 share v3 -> 1; v2v3 share v1 -> 1;
  // v2v5 share none -> 0; v3v4 share v1 -> 1.
  ASSERT_EQ(support.size(), 6u);
  EXPECT_EQ(support[0], 1.0);  // (0,1)
  EXPECT_EQ(support[1], 2.0);  // (0,2)
  EXPECT_EQ(support[2], 1.0);  // (0,3)
  EXPECT_EQ(support[3], 1.0);  // (1,2)
  EXPECT_EQ(support[4], 0.0);  // (1,4)
  EXPECT_EQ(support[5], 1.0);  // (2,3)
}

class FusedKTrussAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FusedKTrussAgreement, FusedMatchesAlgorithmOne) {
  const auto a = random_undirected(45, 0.18, GetParam());
  for (int k : {3, 4, 5}) {
    KTrussStats s_alg1, s_fused;
    const auto alg1 = ktruss_adjacency(a, k, &s_alg1);
    const auto fused = ktruss_adjacency_fused(a, k, &s_fused);
    EXPECT_EQ(alg1, fused) << "k=" << k;
    // Simultaneous-removal rounds are identical by construction.
    EXPECT_EQ(s_alg1.edges_removed, s_fused.edges_removed) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusedKTrussAgreement,
                         ::testing::Values(21, 22, 23));

TEST(FusedKTruss, TwoTrussKeepsEverythingAndStripsLoops) {
  auto a = SpMat<double>::from_triples(
      3, 3, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 0, 2.0}});
  const auto result = ktruss_adjacency_fused(a, 2);
  EXPECT_EQ(result.at(0, 0), 0.0);  // loop stripped
  EXPECT_EQ(result.at(0, 1), 1.0);  // kept, value normalized to pattern
}

TEST(FusedJaccard, MatchesAlgorithmTwoOnPaperExample) {
  const auto a = paper_example_adjacency();
  const auto fused = jaccard_fused(a);
  const auto alg2 = jaccard_linalg(a);
  EXPECT_EQ(fused.nnz(), alg2.nnz());
  EXPECT_LT(la::fro_diff(fused, alg2), 1e-12);
  EXPECT_NEAR(fused.at(1, 3), 2.0 / 3.0, 1e-12);
}

class FusedJaccardAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FusedJaccardAgreement, FusedMatchesAlgorithmTwo) {
  const auto a = random_undirected(50, 0.15, GetParam());
  const auto fused = jaccard_fused(a);
  const auto alg2 = jaccard_linalg(a);
  ASSERT_EQ(fused.nnz(), alg2.nnz());
  EXPECT_LT(la::fro_diff(fused, alg2), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusedJaccardAgreement,
                         ::testing::Values(31, 32, 33, 34));

TEST(FusedJaccard, SymmetricOutput) {
  const auto a = random_undirected(30, 0.2, 41);
  EXPECT_TRUE(la::is_symmetric(jaccard_fused(a)));
}

}  // namespace
}  // namespace graphulo::algo
