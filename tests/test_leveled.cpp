// Leveled compaction + versioned MANIFEST: level invariants, the
// compaction picker, delete-marker drop gating, manifest round-trip
// and torn-tail replay, checkpoint v2 leveled recovery, block-cache
// eviction of retired files, the storage-amplification gauges, and the
// crash-consistency property test over the manifest fault sites.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nosql/nosql.hpp"
#include "obs/metrics.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace graphulo {
namespace {

using nosql::Cell;
using nosql::CompactionConfig;
using nosql::CompactionPick;
using nosql::FileMeta;
using nosql::Instance;
using nosql::Key;
using nosql::ManifestWriter;
using nosql::Mutation;
using nosql::Range;
using nosql::RFile;
using nosql::Scanner;
using nosql::TableConfig;
using nosql::Version;
using nosql::VersionEdit;
using nosql::VersionSet;
using nosql::WriteAheadLog;
using nosql::pick_compaction;
using nosql::recover_instance;
using nosql::replay_manifest;
using nosql::write_checkpoint;
namespace fault = util::fault;
namespace sites = util::fault::sites;

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/graphulo_leveled_" + name;
}

/// Disarms every site after each test so injection never leaks.
class LeveledFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::reset(); }
};

/// Generous retries + negligible backoff, as in test_fault.cpp.
util::RetryPolicy test_retry() {
  util::RetryPolicy p;
  p.max_attempts = 25;
  p.initial_backoff = std::chrono::microseconds(1);
  p.max_backoff = std::chrono::microseconds(10);
  return p;
}

/// Metadata-only FileMeta for picker/version tests (no backing RFile —
/// the picker and VersionSet only read the metadata).
FileMeta fm(std::uint64_t id, int level, std::uint64_t seq,
            const std::string& lo, const std::string& hi,
            std::uint64_t bytes = 100) {
  FileMeta m;
  m.file_id = id;
  m.level = level;
  m.seq = seq;
  m.cells = 1;
  m.bytes = bytes;
  m.first_key.row = lo;
  m.last_key.row = hi;
  return m;
}

std::vector<Cell> cells_of(Instance& db, const std::string& table) {
  Scanner scan(db, table);
  return scan.read_all();
}

/// Scan folded to (row|family|qualifier) -> value: the model-map view
/// for workloads with versioning on (latest version wins).
std::map<std::string, std::string> value_map(Instance& db,
                                             const std::string& table) {
  std::map<std::string, std::string> out;
  for (const auto& c : cells_of(db, table)) {
    out.emplace(c.key.row + "|" + c.key.family + "|" + c.key.qualifier,
                c.value);
  }
  return out;
}

/// Raw (pre-delete-resolution) cells of every tablet of `table`.
std::vector<Cell> raw_cells_of(Instance& db, const std::string& table) {
  std::vector<Cell> out;
  for (const auto& [tablet, sid] : db.tablets_for_range(table, Range::all())) {
    auto stack = tablet->raw_stack();
    auto part = nosql::drain(*stack, Range::all());
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

bool raw_has_delete_marker(Instance& db, const std::string& table,
                           const std::string& row) {
  for (const auto& c : raw_cells_of(db, table)) {
    if (c.key.row == row && c.key.deleted) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// VersionSet: level invariants
// ---------------------------------------------------------------------------

TEST(LeveledVersionSet, L0NewestFirstAndSortedLevelsDisjoint) {
  VersionSet vs;
  VersionEdit e;
  e.added = {fm(1, 0, 1, "a", "m"), fm(2, 0, 2, "g", "z")};
  ASSERT_TRUE(vs.apply(e));
  auto v = vs.current();
  ASSERT_EQ(v->levels[0].size(), 2u);
  // Newest (highest seq) first, regardless of insertion order.
  EXPECT_EQ(v->levels[0][0].file_id, 2u);
  EXPECT_EQ(v->levels[0][1].file_id, 1u);

  // Disjoint L1 files sort by first_key.
  VersionEdit e1;
  e1.added = {fm(3, 1, 3, "n", "r"), fm(4, 1, 3, "a", "e")};
  ASSERT_TRUE(vs.apply(e1));
  v = vs.current();
  ASSERT_EQ(v->levels[1].size(), 2u);
  EXPECT_EQ(v->levels[1][0].file_id, 4u);
  EXPECT_EQ(v->levels[1][1].file_id, 3u);

  // An overlapping L1 add breaks the invariant: rejected loudly, no
  // partial install.
  VersionEdit bad;
  bad.added = {fm(5, 1, 4, "d", "p")};
  EXPECT_THROW(vs.apply(bad), std::logic_error);
  EXPECT_EQ(vs.current()->levels[1].size(), 2u);

  // Removing an unknown file id rejects the whole edit with no change
  // (a compaction raced and its inputs are gone).
  VersionEdit stale;
  stale.removed = {99};
  stale.added = {fm(6, 1, 5, "s", "t")};
  EXPECT_FALSE(vs.apply(stale));
  EXPECT_EQ(vs.current()->file_count(), 4u);
}

// ---------------------------------------------------------------------------
// Compaction picker
// ---------------------------------------------------------------------------

TEST(LeveledPicker, L0TriggerTakesAllL0PlusNextLevelOverlap) {
  CompactionConfig cfg;  // leveled, trigger 4, max_levels 5
  Version v;
  v.levels = {{fm(4, 0, 4, "a", "f"), fm(3, 0, 3, "c", "k"),
               fm(2, 0, 2, "a", "d"), fm(1, 0, 1, "e", "m")},
              {fm(10, 1, 0, "a", "g"), fm(11, 1, 0, "x", "z")}};
  const auto pick = pick_compaction(v, cfg, /*flat_fanin=*/10, false);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->input_level, 0u);
  EXPECT_EQ(pick->output_level, 1u);
  // All 4 L0 files + the overlapping L1 file [a,g]; [x,z] is outside
  // the L0 span [a,m] and survives untouched.
  ASSERT_EQ(pick->inputs.size(), 5u);
  std::set<std::uint64_t> ids;
  for (const auto& m : pick->inputs) ids.insert(m.file_id);
  EXPECT_EQ(ids, (std::set<std::uint64_t>{1, 2, 3, 4, 10}));
  // Nothing deeper than L1 overlaps: bottommost, deletes may drop.
  EXPECT_TRUE(pick->bottommost);
}

TEST(LeveledPicker, BelowTriggerNoPickAndDeeperOverlapBlocksDrop) {
  CompactionConfig cfg;
  Version small;
  small.levels = {{fm(1, 0, 1, "a", "b"), fm(2, 0, 2, "c", "d"),
                   fm(3, 0, 3, "e", "f")}};
  EXPECT_FALSE(pick_compaction(small, cfg, 10, false).has_value());

  Version deep;
  deep.levels = {{fm(4, 0, 4, "a", "f"), fm(3, 0, 3, "c", "k"),
                  fm(2, 0, 2, "a", "d"), fm(1, 0, 1, "e", "m")},
                 {},
                 {fm(20, 2, 0, "d", "h")}};  // L2 holds part of the span
  const auto pick = pick_compaction(deep, cfg, 10, false);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->output_level, 1u);
  EXPECT_FALSE(pick->bottommost);  // "d".."h" still lives at L2
}

TEST(LeveledPicker, OverBudgetLevelPushesVictimSliceDown) {
  CompactionConfig cfg;
  cfg.level_base_bytes = 100;
  cfg.level_multiplier = 4;
  Version v;
  v.levels = {{},
              {fm(1, 1, 1, "a", "f", 90), fm(2, 1, 1, "g", "p", 80)},
              {fm(10, 2, 0, "h", "k", 50), fm(11, 2, 0, "q", "z", 50)}};
  // L1 holds 170 bytes > 100: pick the largest L1 file (id 1, 90B)
  // plus its L2 overlap (none for [a,f]) and push it to L2.
  const auto pick = pick_compaction(v, cfg, 10, false);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->input_level, 1u);
  EXPECT_EQ(pick->output_level, 2u);
  ASSERT_EQ(pick->inputs.size(), 1u);
  EXPECT_EQ(pick->inputs[0].file_id, 1u);
  EXPECT_TRUE(pick->bottommost);  // nothing deeper than L2
}

TEST(LeveledPicker, FlatModeUsesFaninAndFullMerge) {
  CompactionConfig cfg;
  cfg.leveled = false;
  Version v;
  v.levels = {{fm(1, 0, 1, "a", "b"), fm(2, 0, 2, "c", "d")}};
  EXPECT_FALSE(pick_compaction(v, cfg, /*flat_fanin=*/3, false).has_value());
  v.levels[0].insert(v.levels[0].begin(), fm(3, 0, 3, "e", "f"));
  const auto pick = pick_compaction(v, cfg, 3, false);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(pick->output_level, 0u);
  EXPECT_EQ(pick->inputs.size(), 3u);
  EXPECT_TRUE(pick->bottommost);  // full merge: every file participates
}

// ---------------------------------------------------------------------------
// MANIFEST round-trip + torn tails
// ---------------------------------------------------------------------------

VersionEdit sample_edit() {
  VersionEdit e;
  e.table = "graph";
  e.has_extent_start = true;
  e.extent_start = "row-m";
  FileMeta a = fm(7, 1, 42, "a", "k", 4096);
  a.cells = 123;
  a.first_key.family = "f";
  a.first_key.ts = 17;
  a.last_key.deleted = true;
  FileMeta b = fm(9, 2, 40, "m", "z", 8192);
  e.added = {a, b};
  e.removed = {3, 5};
  return e;
}

void expect_edit_eq(const VersionEdit& got, const VersionEdit& want) {
  EXPECT_EQ(got.table, want.table);
  EXPECT_EQ(got.has_extent_start, want.has_extent_start);
  EXPECT_EQ(got.extent_start, want.extent_start);
  EXPECT_EQ(got.removed, want.removed);
  ASSERT_EQ(got.added.size(), want.added.size());
  for (std::size_t i = 0; i < got.added.size(); ++i) {
    EXPECT_EQ(got.added[i].file_id, want.added[i].file_id);
    EXPECT_EQ(got.added[i].level, want.added[i].level);
    EXPECT_EQ(got.added[i].seq, want.added[i].seq);
    EXPECT_EQ(got.added[i].cells, want.added[i].cells);
    EXPECT_EQ(got.added[i].bytes, want.added[i].bytes);
    EXPECT_EQ(got.added[i].first_key, want.added[i].first_key);
    EXPECT_EQ(got.added[i].last_key, want.added[i].last_key);
  }
}

TEST(LeveledManifest, RoundTripsEveryField) {
  const std::string path = temp_path("manifest_roundtrip");
  std::remove(path.c_str());
  const VersionEdit e1 = sample_edit();
  VersionEdit e2;
  e2.table = "other";
  e2.added = {fm(11, 0, 50, "b", "c")};
  {
    ManifestWriter w(path);
    w.append(e1);
    w.append(e2);
    w.sync();
    EXPECT_EQ(w.records_written(), 2u);
  }
  const auto replay = replay_manifest(path);
  EXPECT_FALSE(replay.truncated);
  ASSERT_EQ(replay.edits.size(), 2u);
  expect_edit_eq(replay.edits[0], e1);
  expect_edit_eq(replay.edits[1], e2);
  // Replayed metadata carries no runtime handle until recovery loads
  // the bytes.
  EXPECT_EQ(replay.edits[0].added[0].file, nullptr);
}

TEST(LeveledManifest, TornTailStopsCleanlyAndKeepsValidPrefix) {
  const std::string path = temp_path("manifest_torn");
  std::remove(path.c_str());
  {
    ManifestWriter w(path);
    w.append(sample_edit());
    w.sync();
  }
  const auto clean = replay_manifest(path);
  ASSERT_EQ(clean.edits.size(), 1u);

  // A torn write: half a record's worth of garbage at the tail.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("\x40\x00\x00\x00garbage", 11);
  }
  auto torn = replay_manifest(path);
  EXPECT_TRUE(torn.truncated);
  ASSERT_EQ(torn.edits.size(), 1u);
  expect_edit_eq(torn.edits[0], sample_edit());
  EXPECT_EQ(torn.valid_bytes, clean.valid_bytes);

  // A corrupt byte INSIDE the only record: CRC catches it, zero edits.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(12);
    f.put('\xFF');
  }
  auto corrupt = replay_manifest(path);
  EXPECT_TRUE(corrupt.truncated);
  EXPECT_TRUE(corrupt.edits.empty());

  // Missing file: empty replay, not an error.
  const auto missing = replay_manifest(temp_path("manifest_nonexistent"));
  EXPECT_TRUE(missing.edits.empty());
  EXPECT_FALSE(missing.truncated);
}

TEST_F(LeveledFaultTest, ManifestAppendFaultLeavesNoPartialRecord) {
  const std::string path = temp_path("manifest_fault");
  std::remove(path.c_str());
  ManifestWriter w(path);
  fault::FaultSpec spec;
  spec.fire_on_hits = {1};
  fault::arm(sites::kManifestAppend, spec);
  EXPECT_THROW(w.append(sample_edit()), util::TransientError);
  w.sync();
  // The site fires before any bytes reach the stream: nothing durable.
  EXPECT_TRUE(replay_manifest(path).edits.empty());
  // Schedule exhausted: the retry writes a complete record.
  w.append(sample_edit());
  w.sync();
  EXPECT_EQ(replay_manifest(path).edits.size(), 1u);
}

// ---------------------------------------------------------------------------
// Leveled store: bounded read amplification under sustained ingest
// ---------------------------------------------------------------------------

TEST(LeveledStore, SustainedIngestKeepsPerLevelInvariantsAndBoundsReadAmp) {
  TableConfig cfg;
  cfg.flush_entries = 8;  // every 8 writes is one flush: 64+ flushes below
  cfg.compaction.level0_trigger = 4;
  cfg.compaction.max_levels = 4;
  cfg.compaction.level_base_bytes = 4096;  // force push-downs past L1
  cfg.compaction.level_multiplier = 4;
  Instance db(1);
  db.create_table("t", cfg);
  const int kCells = 8 * 70;  // 70 threshold flushes
  for (int i = 0; i < kCells; ++i) {
    Mutation m(util::zero_pad(static_cast<std::uint64_t>(i * 37 % kCells), 4));
    m.put("f", "q", "value-" + std::to_string(i) + std::string(64, 'x'));
    db.apply("t", m);
  }
  db.flush("t");

  const auto tablet = db.tablets_for_range("t", Range::all())[0].first;
  const auto v = tablet->version();
  ASSERT_FALSE(v->levels.empty());
  // Level invariants: L0 newest-first by seq; L1+ sorted and disjoint.
  for (std::size_t i = 1; i < v->levels[0].size(); ++i) {
    EXPECT_GT(v->levels[0][i - 1].seq, v->levels[0][i].seq);
  }
  for (std::size_t l = 1; l < v->levels.size(); ++l) {
    const auto& files = v->levels[l];
    for (std::size_t i = 1; i < files.size(); ++i) {
      EXPECT_TRUE(files[i - 1].last_key < files[i].first_key)
          << "overlap inside L" << l;
    }
  }
  // Read amplification is bounded by the SHAPE, not the flush count: a
  // point read consults every L0 file but at most one file per sorted
  // level. 70 flushes under the flat layout would mean up to
  // max_tablet_files consulted; leveled keeps it at trigger + levels.
  const std::size_t sorted_levels = v->levels.size() - 1;
  const std::size_t worst_point_read = v->levels[0].size() + sorted_levels;
  EXPECT_LE(v->levels[0].size(), cfg.compaction.level0_trigger);
  EXPECT_LE(worst_point_read,
            cfg.compaction.level0_trigger + cfg.compaction.max_levels);
  // Compactions actually merged: far fewer live files than flushes.
  EXPECT_LT(v->file_count(), 20u);
  EXPECT_GT(sorted_levels, 0u);

  // And the data is intact: every key present with its newest value.
  const auto all = cells_of(db, "t");
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kCells));
}

// ---------------------------------------------------------------------------
// Delete-marker drop gating
// ---------------------------------------------------------------------------

TEST(LeveledStore, DeleteMarkersSurvivePartialCompactionWhenKeyIsDeeper) {
  TableConfig cfg;
  cfg.flush_entries = 1000000;  // manual flushes only
  cfg.compaction.level0_trigger = 4;
  Instance db(1);
  db.create_table("t", cfg);
  const auto tablet = db.tablets_for_range("t", Range::all())[0].first;

  // Seed L2 with the old value of "k" directly (the recovery-path
  // installer), so a later partial compaction's output is NOT
  // bottommost for that key.
  Cell old_cell;
  old_cell.key.row = "k";
  old_cell.key.family = "f";
  old_cell.key.qualifier = "q";
  old_cell.key.ts = 1;
  old_cell.value = "old";
  auto deep = RFile::from_sorted({old_cell}, cfg.rfile);
  tablet->restore_files({FileMeta::describe(deep, /*level=*/2, /*seq=*/1)});
  db.advance_clock(1);

  // Delete "k", then pile up enough L0 files to trip the L0 trigger.
  Mutation del("k");
  del.put_delete("f", "q");
  db.apply("t", del);
  db.flush("t");
  for (int f = 0; f < 4; ++f) {
    Mutation m("fill-" + std::to_string(f));
    m.put("f", "q", "v");
    db.apply("t", m);
    db.flush("t");
  }
  // Run the picker to completion inline (the threshold path normally
  // does this; with manual flushes we drive it through a write).
  Mutation trigger("fill-z");
  trigger.put("f", "q", "v");
  {
    TableConfig& live = db.table_config("t");
    live.flush_entries = 1;  // next apply flushes + settles the picker
  }
  db.apply("t", trigger);

  const auto v = tablet->version();
  ASSERT_GE(v->levels.size(), 3u);
  EXPECT_TRUE(v->levels[0].size() <= 1);  // L0 was compacted away
  // The output landed at L1 while "k"'s old value lives at L2: the
  // marker MUST survive, and the scan must keep suppressing "old".
  EXPECT_TRUE(raw_has_delete_marker(db, "t", "k"));
  for (const auto& c : cells_of(db, "t")) EXPECT_NE(c.key.row, "k");

  // A full major compaction IS bottommost: marker and old value drop.
  db.compact("t");
  EXPECT_FALSE(raw_has_delete_marker(db, "t", "k"));
  for (const auto& c : raw_cells_of(db, "t")) EXPECT_NE(c.key.row, "k");
  EXPECT_EQ(cells_of(db, "t").size(), 5u);  // the five fill rows
}

TEST(LeveledStore, DeleteMarkersDropAtBottommostPartialCompaction) {
  TableConfig cfg;
  cfg.flush_entries = 2;  // every 2 writes flushes, picker runs inline
  cfg.compaction.level0_trigger = 4;
  Instance db(1);
  db.create_table("t", cfg);
  // Put + delete "k" in the FIRST flush, then enough filler flushes to
  // trigger L0 -> L1. Nothing deeper exists, so the L0 compaction is
  // bottommost and resolves the delete entirely.
  Mutation put("k");
  put.put("f", "q", "doomed");
  db.apply("t", put);
  Mutation del("k");
  del.put_delete("f", "q");
  db.apply("t", del);  // flush #1 (2 entries)
  for (int i = 0; i < 8; ++i) {
    Mutation m("fill-" + std::to_string(i));
    m.put("f", "q", "v");
    db.apply("t", m);
  }
  const auto tablet = db.tablets_for_range("t", Range::all())[0].first;
  const auto v = tablet->version();
  ASSERT_GE(v->levels.size(), 2u);  // the trigger fired at least once
  EXPECT_FALSE(raw_has_delete_marker(db, "t", "k"));
  for (const auto& c : raw_cells_of(db, "t")) EXPECT_NE(c.key.row, "k");
}

// ---------------------------------------------------------------------------
// Satellite: compaction evicts retired files' blocks from the cache
// ---------------------------------------------------------------------------

TEST(LeveledStore, CompactionEvictsRetiredFilesFromBlockCache) {
  TableConfig cfg;
  cfg.flush_entries = 1000000;
  cfg.rfile.index_stride = 16;
  cfg.rfile.cache_bytes = 1 << 20;
  Instance db(1);
  db.create_table("t", cfg);
  for (int f = 0; f < 3; ++f) {
    for (int i = 0; i < 100; ++i) {
      Mutation m(util::zero_pad(static_cast<std::uint64_t>(f * 100 + i), 4));
      m.put("f", "q", "value-" + std::to_string(i));
      db.apply("t", m);
    }
    db.flush("t");
  }
  {
    Scanner scan(db, "t");
    EXPECT_EQ(scan.read_all().size(), 300u);
  }
  const auto tablet = db.tablets_for_range("t", Range::all())[0].first;
  const auto before = tablet->stats();
  EXPECT_GT(before.cache_entries, 0u);  // the scan populated the cache

  // The compaction retires all three inputs; their blocks must leave
  // the cache immediately (not linger until LRU pressure), and the
  // fresh output has not been scanned yet.
  db.compact("t");
  const auto after = tablet->stats();
  EXPECT_EQ(after.cache_entries, 0u);
  EXPECT_EQ(after.cache_bytes, 0u);

  // Scans still work (and repopulate from the new file).
  Scanner scan(db, "t");
  EXPECT_EQ(scan.read_all().size(), 300u);
  EXPECT_GT(tablet->stats().cache_entries, 0u);
}

// ---------------------------------------------------------------------------
// Satellite: storage-amplification gauges
// ---------------------------------------------------------------------------

TEST(LeveledObs, StorageGaugesReportLevelShape) {
  TableConfig cfg;
  cfg.flush_entries = 8;
  cfg.compaction.level0_trigger = 4;
  cfg.compaction.level_base_bytes = 4096;
  Instance db(1);
  db.create_table("t", cfg);
  for (int i = 0; i < 200; ++i) {
    Mutation m(util::zero_pad(static_cast<std::uint64_t>(i), 4));
    m.put("f", "q", "value-" + std::to_string(i) + std::string(32, 'y'));
    db.apply("t", m);
  }
  const auto report = db.metrics_report();  // refreshes the gauges
  EXPECT_NE(report.find("tablet.level.files"), std::string::npos);
  EXPECT_NE(report.find("tablet.bytes.live_ratio_pct"), std::string::npos);

  // The gauges mirror the tablet's actual level shape.
  const auto stats = db.tablets_for_range("t", Range::all())[0].first->stats();
  auto& reg = obs::MetricsRegistry::global();
  for (std::size_t l = 0; l < stats.level_files.size(); ++l) {
    const obs::Labels labels = {{"level", std::to_string(l)}};
    EXPECT_EQ(reg.gauge("tablet.level.files",
                        "Files per LSM level across all tablets", labels)
                  .value(),
              static_cast<std::int64_t>(stats.level_files[l]))
        << "level " << l;
  }
  const auto ratio =
      reg.gauge("tablet.bytes.live_ratio_pct",
                "Deepest-level bytes as a percentage of total file bytes "
                "(space-amplification inverse)")
          .value();
  EXPECT_GE(ratio, 0);
  EXPECT_LE(ratio, 100);
}

// ---------------------------------------------------------------------------
// Checkpoint v2: leveled recovery
// ---------------------------------------------------------------------------

TEST_F(LeveledFaultTest, CheckpointRecoveryReproducesLeveledStateByteIdentical) {
  const std::string ck = temp_path("ck_leveled");
  const std::string wal_path = temp_path("ck_leveled.wal");
  std::remove(ck.c_str());
  std::remove(wal_path.c_str());
  std::filesystem::remove_all(ck + ".files-1");

  TableConfig cfg;
  cfg.flush_entries = 8;
  cfg.compaction.level0_trigger = 4;
  cfg.compaction.level_base_bytes = 4096;
  const auto provider = [&](const std::string&) { return cfg; };

  Instance db(2);
  db.attach_wal(std::make_shared<WriteAheadLog>(wal_path));
  db.create_table("t", cfg);
  db.add_splits("t", {"0100"});
  for (int i = 0; i < 200; ++i) {
    Mutation m(util::zero_pad(static_cast<std::uint64_t>(i), 4));
    m.put("f", "q", "value-" + std::to_string(i) + std::string(32, 'z'));
    db.apply("t", m);
  }
  // Leave some cells unflushed so the snapshot carries both kinds.
  const auto stats = write_checkpoint(db, ck);
  EXPECT_GT(stats.files, 0u);
  EXPECT_EQ(stats.cells, 200u);  // file-resident + unflushed

  // Post-checkpoint writes live only in the rotated WAL tail.
  for (int i = 200; i < 230; ++i) {
    Mutation m(util::zero_pad(static_cast<std::uint64_t>(i), 4));
    m.put("f", "q", "tail-" + std::to_string(i));
    db.apply("t", m);
  }
  db.sync_wal();
  const auto reference = cells_of(db, "t");

  // Capture the leveled shape the checkpoint must reproduce.
  std::vector<std::vector<std::size_t>> want_shape;
  for (const auto& [tablet, sid] : db.tablets_for_range("t", Range::all())) {
    std::vector<std::size_t> per_level;
    for (const auto& level : tablet->version()->levels) {
      per_level.push_back(level.size());
    }
    want_shape.push_back(std::move(per_level));
  }

  Instance recovered(2);
  const auto rec = recover_instance(recovered, ck, wal_path, provider);
  EXPECT_TRUE(rec.checkpoint_loaded);
  EXPECT_EQ(rec.files_restored, stats.files);
  EXPECT_GT(rec.records_replayed, 0u);  // the 30 tail mutations

  // Byte-identical scans: same cells, same timestamps, same values.
  EXPECT_EQ(cells_of(recovered, "t"), reference);

  // The sorted levels (L1+) come back file-for-file; L0 may differ by
  // the tail-replay flush pattern but the restored files are intact.
  const auto tablets = recovered.tablets_for_range("t", Range::all());
  ASSERT_EQ(tablets.size(), want_shape.size());
  for (std::size_t t = 0; t < tablets.size(); ++t) {
    const auto v = tablets[t].first->version();
    for (std::size_t l = 1; l < want_shape[t].size(); ++l) {
      ASSERT_LT(l, v->levels.size()) << "tablet " << t;
      EXPECT_EQ(v->levels[l].size(), want_shape[t][l])
          << "tablet " << t << " L" << l;
    }
  }
}

// ---------------------------------------------------------------------------
// Crash-consistency property test over the manifest fault sites
// ---------------------------------------------------------------------------

TEST_F(LeveledFaultTest, WorkloadSurvivesManifestFaultsAndRecoversExactly) {
  const std::string ck = temp_path("ck_fault");
  const std::string wal_path = temp_path("ck_fault.wal");
  std::remove(ck.c_str());
  std::remove(wal_path.c_str());

  TableConfig cfg;
  cfg.flush_entries = 6;
  cfg.compaction.level0_trigger = 3;
  cfg.compaction.level_base_bytes = 2048;
  const auto provider = [&](const std::string&) { return cfg; };

  Instance db(1);
  db.set_retry_policy(test_retry());
  db.attach_wal(std::make_shared<WriteAheadLog>(wal_path));
  db.create_table("t", cfg);

  // Probabilistic faults on BOTH manifest sites (and the checkpoint
  // write) while a mixed put/delete/flush/compact workload runs. The
  // version install firing means compaction outputs get discarded and
  // retried; the workload must never lose an acknowledged write.
  fault::seed(4242);
  fault::FaultSpec spec;
  spec.probability = 0.05;
  fault::arm(sites::kManifestInstall, spec);
  fault::arm(sites::kManifestAppend, spec);
  fault::arm(sites::kCheckpointWrite, spec);

  util::Xoshiro256 rng(99);
  std::map<std::string, std::string> model;
  for (int op = 0; op < 600; ++op) {
    const std::string row =
        "r" + util::zero_pad(rng.uniform_int(80), 2);
    if (rng.uniform() < 0.15) {
      Mutation m(row);
      m.put_delete("f", "q");
      db.apply("t", m);
      model.erase(row + "|f|q");
    } else {
      const std::string value = "v" + std::to_string(op);
      Mutation m(row);
      m.put("f", "q", value);
      db.apply("t", m);
      model[row + "|f|q"] = value;
    }
    if (op % 97 == 0) db.flush("t");
    if (op % 211 == 0) db.compact("t");
  }
  EXPECT_EQ(value_map(db, "t"), model);

  // Checkpoint under fire (with_retries absorbs the injected faults),
  // then a little more write traffic for the WAL tail.
  const auto stats = write_checkpoint(db, ck);
  EXPECT_GT(stats.files, 0u);
  for (int op = 0; op < 40; ++op) {
    const std::string row = "r" + util::zero_pad(rng.uniform_int(80), 2);
    Mutation m(row);
    m.put("f", "q", "post-" + std::to_string(op));
    db.apply("t", m);
    model[row + "|f|q"] = "post-" + std::to_string(op);
  }
  db.sync_wal();

  // Crash + recover with faults STILL armed on the load/install path:
  // manifest.install fires during restore_files and must be retried
  // into a consistent file set.
  fault::reset();
  fault::seed(777);
  fault::arm(sites::kManifestInstall, spec);
  fault::arm(sites::kCheckpointLoad, spec);
  Instance recovered(1);
  recovered.set_retry_policy(test_retry());
  const auto rec = recover_instance(recovered, ck, wal_path, provider);
  EXPECT_TRUE(rec.checkpoint_loaded);
  EXPECT_EQ(value_map(recovered, "t"), model);
  EXPECT_EQ(value_map(recovered, "t"), value_map(db, "t"));
}

// ---------------------------------------------------------------------------
// Flat-mode fallback stays available as the baseline
// ---------------------------------------------------------------------------

TEST(LeveledStore, FlatModeKeepsLegacyFaninBehavior) {
  TableConfig cfg;
  cfg.flush_entries = 4;
  cfg.compaction.leveled = false;
  cfg.compaction_fanin = 3;
  Instance db(1);
  db.create_table("t", cfg);
  for (int i = 0; i < 40; ++i) {
    Mutation m(util::zero_pad(static_cast<std::uint64_t>(i), 3));
    m.put("f", "q", "v" + std::to_string(i));
    db.apply("t", m);
  }
  db.flush("t");
  const auto tablet = db.tablets_for_range("t", Range::all())[0].first;
  const auto v = tablet->version();
  // Everything lives in L0; the fanin trigger kept the count below it.
  EXPECT_EQ(v->levels.size(), 1u);
  EXPECT_LE(v->levels[0].size(), 3u);
  EXPECT_EQ(cells_of(db, "t").size(), 40u);
}

}  // namespace
}  // namespace graphulo
