// Algebraic property tests over randomized inputs: the identities the
// GraphBLAS kernel set must satisfy for the paper's algorithm
// derivations (A = E'E - diag, the Jaccard decomposition, the k-truss
// update rule) to be sound. Small-integer values keep arithmetic exact,
// so every identity is checked with operator== — no tolerances.

#include <algorithm>
#include <tuple>

#include <gtest/gtest.h>

#include "la/la.hpp"
#include "test_helpers.hpp"

namespace graphulo::la {
namespace {

using graphulo::testing::random_sparse_int;

class LaAlgebra : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  SpMat<double> A() const { return random_sparse_int(14, 14, 0.3, GetParam()); }
  SpMat<double> B() const {
    return random_sparse_int(14, 14, 0.3, GetParam() + 1000);
  }
  SpMat<double> C() const {
    return random_sparse_int(14, 14, 0.3, GetParam() + 2000);
  }
};

TEST_P(LaAlgebra, MatrixMultiplicationIsAssociative) {
  const auto a = A(), b = B(), c = C();
  EXPECT_EQ(spgemm_arith(spgemm_arith(a, b), c),
            spgemm_arith(a, spgemm_arith(b, c)));
}

TEST_P(LaAlgebra, MultiplicationDistributesOverAddition) {
  const auto a = A(), b = B(), c = C();
  EXPECT_EQ(spgemm_arith(a, add(b, c)),
            add(spgemm_arith(a, b), spgemm_arith(a, c)));
  EXPECT_EQ(spgemm_arith(add(a, b), c),
            add(spgemm_arith(a, c), spgemm_arith(b, c)));
}

TEST_P(LaAlgebra, TransposeReversesProducts) {
  const auto a = A(), b = B();
  EXPECT_EQ(transpose(spgemm_arith(a, b)),
            spgemm_arith(transpose(b), transpose(a)));
}

TEST_P(LaAlgebra, TransposeDistributesOverAddition) {
  const auto a = A(), b = B();
  EXPECT_EQ(transpose(add(a, b)), add(transpose(a), transpose(b)));
}

TEST_P(LaAlgebra, ScaleCommutesWithMultiply) {
  const auto a = A(), b = B();
  EXPECT_EQ(scale(spgemm_arith(a, b), 3.0), spgemm_arith(scale(a, 3.0), b));
  EXPECT_EQ(scale(spgemm_arith(a, b), 3.0), spgemm_arith(a, scale(b, 3.0)));
}

TEST_P(LaAlgebra, HadamardIsCommutativeAndAssociative) {
  const auto a = A(), b = B(), c = C();
  EXPECT_EQ(hadamard(a, b), hadamard(b, a));
  EXPECT_EQ(hadamard(hadamard(a, b), c), hadamard(a, hadamard(b, c)));
}

TEST_P(LaAlgebra, SpMvAgreesWithSpGemmOnColumnMatrix) {
  const auto a = A();
  // x as an n x 1 matrix: A*x via SpGEMM must equal spmv.
  std::vector<Triple<double>> xt;
  for (Index i = 0; i < 14; ++i) {
    xt.push_back({i, 0, static_cast<double>((i % 5) - 2)});
  }
  const auto x_mat = SpMat<double>::from_triples(14, 1, xt);
  std::vector<double> x_vec(14);
  for (Index i = 0; i < 14; ++i) {
    x_vec[static_cast<std::size_t>(i)] = static_cast<double>((i % 5) - 2);
  }
  const auto via_gemm = spgemm_arith(a, x_mat);
  const auto via_spmv = spmv<PlusTimes<double>>(a, x_vec);
  for (Index i = 0; i < 14; ++i) {
    EXPECT_EQ(via_gemm.at(i, 0), via_spmv[static_cast<std::size_t>(i)]);
  }
}

TEST_P(LaAlgebra, ReduceRowsEqualsSpMvWithOnes) {
  const auto a = A();
  const std::vector<double> ones(14, 1.0);
  EXPECT_EQ(row_sums(a), (spmv<PlusTimes<double>>(a, ones)));
}

TEST_P(LaAlgebra, KronMixedProductProperty) {
  // (A (x) B)(C (x) D) = (AC) (x) (BD) on small operands.
  const auto a = random_sparse_int(4, 5, 0.5, GetParam() + 1);
  const auto b = random_sparse_int(3, 4, 0.5, GetParam() + 2);
  const auto c = random_sparse_int(5, 4, 0.5, GetParam() + 3);
  const auto d = random_sparse_int(4, 3, 0.5, GetParam() + 4);
  EXPECT_EQ(spgemm_arith(kron(a, b), kron(c, d)),
            kron(spgemm_arith(a, c), spgemm_arith(b, d)));
}

TEST_P(LaAlgebra, KronDistributesOverAddition) {
  const auto a = random_sparse_int(4, 4, 0.5, GetParam() + 5);
  const auto b = random_sparse_int(4, 4, 0.5, GetParam() + 6);
  const auto c = random_sparse_int(3, 3, 0.5, GetParam() + 7);
  EXPECT_EQ(kron(add(a, b), c), add(kron(a, c), kron(b, c)));
}

TEST_P(LaAlgebra, SpRefComposesWithSpGemm) {
  // (A B)(rows, :) == A(rows, :) B — the identity the k-truss update
  // rule relies on when restricting R to surviving edges.
  const auto a = A(), b = B();
  const std::vector<Index> rows = {0, 3, 7, 11};
  EXPECT_EQ(spref_rows(spgemm_arith(a, b), rows),
            spgemm_arith(spref_rows(a, rows), b));
}

TEST_P(LaAlgebra, TriuTrilDiagPartition) {
  const auto a = A();
  EXPECT_EQ(add(add(triu(a), tril(a)), diag_matrix(diag_vector(a))), a);
  // triu and tril are idempotent.
  EXPECT_EQ(triu(triu(a)), triu(a));
  EXPECT_EQ(tril(tril(a)), tril(a));
}

TEST_P(LaAlgebra, BooleanSemiringMatchesPatternOfArithmetic) {
  // Over 0/1 matrices, the OrAndDouble product's pattern equals the
  // arithmetic product's pattern.
  const auto a = pattern(A());
  const auto b = pattern(B());
  const auto boolean = spgemm<OrAndDouble>(a, b);
  const auto arithmetic = pattern(spgemm_arith(a, b));
  EXPECT_EQ(boolean, arithmetic);
}

TEST_P(LaAlgebra, MinPlusProductIsTwoHopDistances) {
  // Over (min, +), (A^2)(i, j) <= A(i, k) + A(k, j) for every k, with
  // equality for some k — verified entry-wise against brute force.
  using SR = MinPlus<double>;
  const auto raw = random_sparse_int(10, 10, 0.3, GetParam() + 8);
  const auto a2 = spgemm<SR>(raw, raw);
  const auto dense = raw.to_dense();
  for (Index i = 0; i < 10; ++i) {
    for (Index j = 0; j < 10; ++j) {
      double best = SR::zero();
      for (Index k = 0; k < 10; ++k) {
        const double x = dense[static_cast<std::size_t>(i) * 10 + k];
        const double y = dense[static_cast<std::size_t>(k) * 10 + j];
        if (x != 0.0 && y != 0.0) best = std::min(best, x + y);
      }
      EXPECT_EQ(a2.at(i, j, SR::zero()), best) << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LaAlgebra,
                         ::testing::Values(1, 7, 42, 99, 1234));

TEST(PrettyPrint, RendersMatricesAndVectors) {
  const auto a = SpMat<double>::from_dense(2, 2, std::vector<double>{1, 0,
                                                                     0.5, 2});
  const auto s = to_pretty_string(a);
  EXPECT_NE(s.find("1"), std::string::npos);
  EXPECT_NE(s.find("0.500"), std::string::npos);
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);

  Dense<double> d(1, 3);
  d(0, 2) = 4.25;
  EXPECT_NE(to_pretty_string(d, 2).find("4.25"), std::string::npos);

  EXPECT_EQ(to_pretty_string(std::vector<double>{1.0, 2.5}, 1), "[ 1 2.5 ]");
}

}  // namespace
}  // namespace graphulo::la
