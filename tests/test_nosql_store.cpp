// The LSM store end to end: memtable, RFile (incl. disk round trip),
// tablets with compaction, instance routing/splits, scanners, batch
// writer — plus a model-based property test that replays a random
// workload against a reference std::map.

#include <cstdio>
#include <fstream>
#include <map>
#include <random>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "nosql/nosql.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace graphulo::nosql {
namespace {

TEST(Memtable, AppliesMutationsWithAssignedTimestamps) {
  Memtable mem;
  Mutation m("row1");
  m.put("f", "q1", "v1").put("f", "q2", "v2");
  mem.apply(m, 42);
  EXPECT_EQ(mem.entry_count(), 2u);
  const auto snap = mem.snapshot();
  EXPECT_EQ((*snap)[0].key.ts, 42);
  EXPECT_EQ((*snap)[0].key.qualifier, "q1");
}

TEST(Memtable, LastWriteWinsOnIdenticalKey) {
  Memtable mem;
  Mutation m1("r");
  m1.put("f", "q", "", 5, "first");
  Mutation m2("r");
  m2.put("f", "q", "", 5, "second");
  mem.apply(m1, 0);
  mem.apply(m2, 0);
  EXPECT_EQ(mem.entry_count(), 1u);
  EXPECT_EQ((*mem.snapshot())[0].value, "second");
}

TEST(Memtable, ClearResets) {
  Memtable mem;
  Mutation m("r");
  m.put("f", "q", "v");
  mem.apply(m, 1);
  EXPECT_GT(mem.approximate_bytes(), 0u);
  mem.clear();
  EXPECT_TRUE(mem.empty());
  EXPECT_EQ(mem.approximate_bytes(), 0u);
}

TEST(RFile, DiskRoundTrip) {
  std::vector<Cell> cells;
  for (int i = 0; i < 100; ++i) {
    Cell c;
    c.key.row = util::zero_pad(static_cast<std::uint64_t>(i), 4);
    c.key.family = "f";
    c.key.qualifier = "q";
    c.key.ts = i;
    c.value = "value-" + util::zero_pad(static_cast<std::uint64_t>(i), 3);
    cells.push_back(std::move(c));
  }
  std::sort(cells.begin(), cells.end(),
            [](const Cell& a, const Cell& b) { return a.key < b.key; });
  auto rf = RFile::from_sorted(cells);
  const std::string path = ::testing::TempDir() + "/graphulo_rfile_test.rf";
  ASSERT_TRUE(rf->write_to(path));
  auto loaded = RFile::read_from(path);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->entry_count(), 100u);
  auto it = loaded->iterator();
  EXPECT_EQ(drain(*it, Range::all()), cells);
  std::remove(path.c_str());
}

TEST(RFile, ReadRejectsBitFlippedFile) {
  // CRC32 integrity: any single flipped bit in the payload must be
  // detected and the file rejected instead of silently loading wrong
  // cells.
  std::vector<Cell> cells;
  for (int i = 0; i < 50; ++i) {
    Cell c;
    c.key.row = util::zero_pad(static_cast<std::uint64_t>(i), 4);
    c.key.family = "f";
    c.key.qualifier = "q";
    c.key.ts = i;
    c.value = "payload-" + util::zero_pad(static_cast<std::uint64_t>(i), 3);
    cells.push_back(std::move(c));
  }
  auto rf = RFile::from_sorted(cells);
  const std::string path = ::testing::TempDir() + "/graphulo_rfile_flip.rf";
  ASSERT_TRUE(rf->write_to(path));
  ASSERT_NE(RFile::read_from(path), nullptr);  // pristine file loads

  // Read the raw bytes once, then try several corruption positions
  // spread across the file (header excluded; its corruption is covered
  // by ReadRejectsGarbage).
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    bytes = ss.str();
  }
  ASSERT_GT(bytes.size(), 16u);
  for (const std::size_t at : {bytes.size() / 4, bytes.size() / 2,
                               bytes.size() - 3}) {
    std::string corrupted = bytes;
    corrupted[at] = static_cast<char>(corrupted[at] ^ 0x10);  // one bit
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(corrupted.data(),
                static_cast<std::streamsize>(corrupted.size()));
    }
    EXPECT_EQ(RFile::read_from(path), nullptr) << "bit flip at " << at;
  }
  std::remove(path.c_str());
}

TEST(RFile, SampleRowsReachesTail) {
  // 1000 single-cell rows, small sample budget: the ceil-rounded stride
  // must spread samples across the file and always include the last
  // row, instead of clustering at the head.
  std::vector<Cell> cells;
  for (int i = 0; i < 1000; ++i) {
    Cell c;
    c.key.row = util::zero_pad(static_cast<std::uint64_t>(i), 4);
    c.key.family = "f";
    c.key.qualifier = "q";
    c.key.ts = 1;
    c.value = "v";
    cells.push_back(std::move(c));
  }
  auto rf = RFile::from_sorted(std::move(cells));
  const auto rows = rf->sample_rows(7);
  ASSERT_FALSE(rows.empty());
  EXPECT_LE(rows.size(), 7u);
  EXPECT_EQ(rows.back(), "0999");             // tail always covered
  EXPECT_GE(rows[rows.size() / 2], "0300");   // not skewed toward low keys
}

TEST(RFile, BloomAndBoundsPruneSeeks) {
  std::vector<Cell> cells;
  for (int i = 0; i < 200; i += 2) {  // even rows only
    Cell c;
    c.key.row = util::zero_pad(static_cast<std::uint64_t>(i), 4);
    c.key.family = "f";
    c.key.qualifier = "q";
    c.key.ts = 1;
    c.value = "v";
    cells.push_back(std::move(c));
  }
  auto rf = RFile::from_sorted(std::move(cells));
  // Bounds: rows outside [first, last] are provably absent.
  EXPECT_FALSE(rf->may_contain_row("0199"));
  EXPECT_FALSE(rf->may_contain_row("9999"));
  EXPECT_TRUE(rf->may_contain_row("0100"));
  EXPECT_FALSE(rf->may_intersect(Range::row_range("0200", "0300")));
  EXPECT_TRUE(rf->may_intersect(Range::exact_row("0100")));
  // A pruned seek exhausts the iterator without scanning.
  auto it = rf->iterator();
  it->seek(Range::exact_row("9999"));
  EXPECT_FALSE(it->has_top());
  // Bloom is probabilistic the other way only: present rows always pass.
  std::size_t in_file_hits = 0;
  for (int i = 0; i < 200; i += 2) {
    in_file_hits +=
        rf->may_contain_row(util::zero_pad(static_cast<std::uint64_t>(i), 4));
  }
  EXPECT_EQ(in_file_hits, 100u);  // no false negatives ever
}

TEST(RFile, ReadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/graphulo_rfile_bad.rf";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not an rfile at all";
  }
  EXPECT_EQ(RFile::read_from(path), nullptr);
  EXPECT_EQ(RFile::read_from(path + ".does.not.exist"), nullptr);
  std::remove(path.c_str());
}

TEST(Tablet, FlushMovesDataToFiles) {
  TableConfig cfg;
  cfg.flush_entries = 1000000;  // manual flush only
  Tablet tablet({"", ""}, &cfg);
  Mutation m("r1");
  m.put("f", "q", "v");
  tablet.apply(m, 1);
  EXPECT_EQ(tablet.stats().memtable_entries, 1u);
  tablet.flush();
  const auto s = tablet.stats();
  EXPECT_EQ(s.memtable_entries, 0u);
  EXPECT_EQ(s.file_count, 1u);
  EXPECT_EQ(s.file_entries, 1u);
  EXPECT_EQ(s.minor_compactions, 1u);
}

TEST(Tablet, AutoFlushAtThreshold) {
  TableConfig cfg;
  cfg.flush_entries = 10;
  Tablet tablet({"", ""}, &cfg);
  for (int i = 0; i < 35; ++i) {
    Mutation m("row" + util::zero_pad(static_cast<std::uint64_t>(i), 3));
    m.put("f", "q", "v");
    tablet.apply(m, i);
  }
  const auto s = tablet.stats();
  EXPECT_GE(s.minor_compactions, 3u);
  EXPECT_EQ(s.memtable_entries + s.file_entries, 35u);
}

TEST(Tablet, MajorCompactionMergesFilesAndDropsDeletes) {
  TableConfig cfg;
  cfg.flush_entries = 1000000;
  Tablet tablet({"", ""}, &cfg);
  Mutation put("r");
  put.put("f", "q", "", 1, "old");
  tablet.apply(put, 0);
  tablet.flush();
  Mutation del("r");
  del.put_delete("f", "q");
  tablet.apply(del, 5);
  tablet.flush();
  EXPECT_EQ(tablet.stats().file_count, 2u);
  tablet.major_compact();
  const auto s = tablet.stats();
  // Delete resolved, marker dropped; a merge with no surviving cells
  // installs no file at all rather than a zero-cell one.
  EXPECT_EQ(s.file_count, 0u);
  EXPECT_EQ(s.file_entries, 0u);
  auto stack = tablet.scan_stack();
  EXPECT_TRUE(drain(*stack, Range::all()).empty());
}

TEST(Tablet, ScanAppliesVersioning) {
  TableConfig cfg;
  Tablet tablet({"", ""}, &cfg);
  Mutation m1("r");
  m1.put("f", "q", "", 1, "v1");
  Mutation m2("r");
  m2.put("f", "q", "", 2, "v2");
  tablet.apply(m1, 0);
  tablet.flush();
  tablet.apply(m2, 0);
  auto stack = tablet.scan_stack();
  const auto cells = drain(*stack, Range::all());
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].value, "v2");
}

TEST(Tablet, RejectsRowOutsideExtent) {
  TableConfig cfg;
  Tablet tablet({"m", "t"}, &cfg);
  Mutation m("a");
  m.put("f", "q", "v");
  EXPECT_THROW(tablet.apply(m, 1), std::logic_error);
}

TEST(Instance, CreateDeleteAndCatalog) {
  Instance db(2);
  db.create_table("t1");
  db.create_table("t2");
  EXPECT_TRUE(db.table_exists("t1"));
  EXPECT_THROW(db.create_table("t1"), std::invalid_argument);
  EXPECT_EQ(db.table_names(), (std::vector<std::string>{"t1", "t2"}));
  db.delete_table("t1");
  EXPECT_FALSE(db.table_exists("t1"));
  EXPECT_THROW(db.delete_table("t1"), std::invalid_argument);
  EXPECT_THROW(db.apply("t1", Mutation("r")), std::invalid_argument);
}

TEST(Instance, WriteAndScanRoundTrip) {
  Instance db;
  db.create_table("t");
  for (int i = 0; i < 50; ++i) {
    Mutation m("row" + util::zero_pad(static_cast<std::uint64_t>(i), 3));
    m.put("f", "q", "value" + std::to_string(i));
    db.apply("t", m);
  }
  Scanner scanner(db, "t");
  const auto cells = scanner.read_all();
  ASSERT_EQ(cells.size(), 50u);
  EXPECT_EQ(cells[0].key.row, "row000");
  EXPECT_EQ(cells[49].key.row, "row049");
  // Range scan.
  Scanner ranged(db, "t");
  ranged.set_range(Range::row_range("row010", "row019"));
  EXPECT_EQ(ranged.read_all().size(), 10u);
}

TEST(Instance, SplitsRepartitionData) {
  Instance db(3);
  db.create_table("t");
  for (int i = 0; i < 90; ++i) {
    Mutation m(util::zero_pad(static_cast<std::uint64_t>(i), 3));
    m.put("f", "q", std::to_string(i));
    db.apply("t", m);
  }
  db.add_splits("t", {"030", "060"});
  EXPECT_EQ(db.list_splits("t"), (std::vector<std::string>{"030", "060"}));
  EXPECT_EQ(db.tablets_for_range("t", Range::all()).size(), 3u);
  // All data still visible, in order.
  Scanner scanner(db, "t");
  const auto cells = scanner.read_all();
  ASSERT_EQ(cells.size(), 90u);
  for (int i = 0; i < 90; ++i) {
    EXPECT_EQ(cells[static_cast<std::size_t>(i)].key.row,
              util::zero_pad(static_cast<std::uint64_t>(i), 3));
  }
  // Writes after the split route correctly.
  Mutation m("045");
  m.put("f", "q2", "new");
  db.apply("t", m);
  Scanner check(db, "t");
  check.set_range(Range::exact_row("045"));
  EXPECT_EQ(check.read_all().size(), 2u);
}

TEST(Instance, TabletsForRangePrunes) {
  Instance db;
  db.create_table("t");
  db.add_splits("t", {"b", "d", "f"});
  EXPECT_EQ(db.tablets_for_range("t", Range::all()).size(), 4u);
  EXPECT_EQ(db.tablets_for_range("t", Range::exact_row("a")).size(), 1u);
  EXPECT_EQ(db.tablets_for_range("t", Range::row_range("c", "e")).size(), 2u);
  EXPECT_EQ(db.tablets_for_range("t", Range::at_least_row("g")).size(), 1u);
}

TEST(Instance, DeleteMarkerHidesCellAcrossFlush) {
  Instance db;
  db.create_table("t");
  Mutation put("r");
  put.put("f", "q", "visible");
  db.apply("t", put);
  db.flush("t");
  Mutation del("r");
  del.put_delete("f", "q");
  db.apply("t", del);
  Scanner scanner(db, "t");
  EXPECT_TRUE(scanner.read_all().empty());
  db.compact("t");
  EXPECT_EQ(db.entry_estimate("t"), 0u);
}

TEST(Instance, ScanScopeIteratorApplied) {
  Instance db;
  TableConfig cfg;
  cfg.attach_iterator(
      {30, "grep-bob", kScanScope,
       [](IterPtr src) { return make_grep_iterator(std::move(src), "bob"); }});
  db.create_table("t", std::move(cfg));
  Mutation m1("alice");
  m1.put("f", "q", "1");
  Mutation m2("bob");
  m2.put("f", "q", "1");
  db.apply("t", m1);
  db.apply("t", m2);
  Scanner scanner(db, "t");
  const auto cells = scanner.read_all();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].key.row, "bob");
}

TEST(Instance, CombinerAtAllScopesSumsPartials) {
  // The Graphulo write pattern: many partial-product puts to the same
  // cell, summed by a combiner at scan + compaction scope.
  Instance db;
  TableConfig cfg;
  cfg.versioning = false;  // the combiner must see every version
  cfg.flush_entries = 8;   // force flushes mid-stream
  cfg.attach_iterator({10, "sum", kAllScopes, [](IterPtr src) {
                         return std::make_unique<CombinerIterator>(
                             std::move(src), sum_double_reducer());
                       }});
  db.create_table("t", std::move(cfg));
  double expected = 0.0;
  for (int i = 1; i <= 40; ++i) {
    Mutation m("c");
    m.put("f", "q", encode_double(i));
    db.apply("t", m);
    expected += i;
  }
  Scanner scanner(db, "t");
  const auto cells = scanner.read_all();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(decode_double(cells[0].value), expected);
  // After a full compaction the table physically holds one combined cell.
  db.compact("t");
  EXPECT_EQ(db.entry_estimate("t"), 1u);
}

TEST(BatchScanner, MultipleRangesAcrossSplits) {
  Instance db(4);
  db.create_table("t");
  db.add_splits("t", {"25", "50", "75"});
  for (int i = 0; i < 100; ++i) {
    Mutation m(util::zero_pad(static_cast<std::uint64_t>(i), 2));
    m.put("f", "q", std::to_string(i));
    db.apply("t", m);
  }
  BatchScanner bs(db, "t");
  bs.set_ranges({Range::row_range("10", "19"), Range::row_range("60", "69")});
  const auto cells = bs.read_all();
  EXPECT_EQ(cells.size(), 20u);
  std::set<std::string> rows;
  for (const auto& c : cells) rows.insert(c.key.row);
  EXPECT_TRUE(rows.count("15"));
  EXPECT_TRUE(rows.count("65"));
  EXPECT_FALSE(rows.count("30"));
}

TEST(BatchWriter, BuffersAndFlushes) {
  Instance db;
  db.create_table("t");
  {
    BatchWriter writer(db, "t", 1 << 20);
    for (int i = 0; i < 100; ++i) {
      std::string row = "r";
      row += util::zero_pad(static_cast<std::uint64_t>(i), 3);
      Mutation m(std::move(row));
      m.put("f", "q", "v");
      writer.add_mutation(std::move(m));
    }
    EXPECT_EQ(writer.mutations_written(), 0u);  // still buffered
    writer.flush();
    EXPECT_EQ(writer.mutations_written(), 100u);
  }
  Scanner scanner(db, "t");
  EXPECT_EQ(scanner.read_all().size(), 100u);
}

TEST(BatchWriter, AutoFlushOnBufferSizeAndDestructor) {
  Instance db;
  db.create_table("t");
  {
    BatchWriter writer(db, "t", 256);  // tiny buffer: frequent autoflush
    for (int i = 0; i < 50; ++i) {
      std::string row = "r";
      row += util::zero_pad(static_cast<std::uint64_t>(i), 3);
      Mutation m(std::move(row));
      m.put("f", "q", "some-value-payload");
      writer.add_mutation(std::move(m));
    }
    EXPECT_GT(writer.mutations_written(), 0u);  // autoflush happened
  }  // destructor flushes the rest
  Scanner scanner(db, "t");
  EXPECT_EQ(scanner.read_all().size(), 50u);
}

TEST(Instance, ServerStatsTrackTraffic) {
  Instance db(2);
  db.create_table("t");
  for (int i = 0; i < 10; ++i) {
    Mutation m("r" + std::to_string(i));
    m.put("f", "q", "v");
    db.apply("t", m);
  }
  Scanner scanner(db, "t");
  scanner.read_all();
  std::size_t written = 0, scans = 0;
  for (int s = 0; s < db.tablet_server_count(); ++s) {
    written += db.server(s).stats().entries_written;
    scans += db.server(s).stats().scans_started;
  }
  EXPECT_EQ(written, 10u);
  EXPECT_GE(scans, 1u);
}

// ---------------------------------------------------------------------------
// Model-based property test: random puts/deletes/flushes/compactions/
// splits replayed against a std::map reference. After every batch, a full
// scan of the store must equal the reference's visible state.
// ---------------------------------------------------------------------------

struct CellId {
  std::string row, fam, qual;
  auto operator<=>(const CellId&) const = default;
};

TEST(StoreModel, RandomWorkloadMatchesReferenceMap) {
  util::Xoshiro256 rng(2024);
  Instance db(3);
  TableConfig cfg;
  cfg.flush_entries = 16;     // force frequent minor compactions
  cfg.compaction_fanin = 3;   // and frequent major compactions
  db.create_table("t", std::move(cfg));

  std::map<CellId, std::string> model;
  const int kRows = 12, kQuals = 4;
  auto random_cell = [&]() -> CellId {
    std::string row = "row";
    row += util::zero_pad(rng.uniform_int(kRows), 2);
    std::string qual = "q";
    qual += std::to_string(rng.uniform_int(kQuals));
    return {std::move(row), "f", std::move(qual)};
  };

  for (int step = 0; step < 60; ++step) {
    // A batch of random operations.
    for (int op = 0; op < 20; ++op) {
      const auto id = random_cell();
      const double dice = rng.uniform();
      if (dice < 0.75) {
        std::string value = "v";
        value += std::to_string(rng.next() % 1000);
        Mutation m(id.row);
        m.put(id.fam, id.qual, value);
        db.apply("t", m);
        model[id] = value;
      } else {
        Mutation m(id.row);
        m.put_delete(id.fam, id.qual);
        db.apply("t", m);
        model.erase(id);
      }
    }
    // Occasional structural operations.
    const double dice = rng.uniform();
    if (dice < 0.2) {
      db.flush("t");
    } else if (dice < 0.3) {
      db.compact("t");
    } else if (dice < 0.4 && db.list_splits("t").size() < 4) {
      db.add_splits("t", {"row" + util::zero_pad(rng.uniform_int(kRows), 2)});
    }

    // Full-scan equivalence check.
    Scanner scanner(db, "t");
    const auto cells = scanner.read_all();
    ASSERT_EQ(cells.size(), model.size()) << "step " << step;
    std::size_t i = 0;
    for (const auto& [id, value] : model) {
      EXPECT_EQ(cells[i].key.row, id.row) << "step " << step;
      EXPECT_EQ(cells[i].key.qualifier, id.qual) << "step " << step;
      EXPECT_EQ(cells[i].value, value) << "step " << step;
      ++i;
    }
  }
}

}  // namespace
}  // namespace graphulo::nosql
