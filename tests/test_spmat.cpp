// Unit and property tests for the CSR sparse matrix container.

#include <vector>

#include <gtest/gtest.h>

#include "la/spmat.hpp"
#include "test_helpers.hpp"

namespace graphulo::la {
namespace {

using graphulo::testing::random_sparse;

TEST(SpMat, EmptyMatrixHasNoEntries) {
  SpMat<double> m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.at(2, 3), 0.0);
  m.check_invariants();
}

TEST(SpMat, FromTriplesSortsAndStores) {
  auto m = SpMat<double>::from_triples(2, 3, {{1, 2, 5.0}, {0, 1, 3.0}, {1, 0, 4.0}});
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_EQ(m.at(0, 1), 3.0);
  EXPECT_EQ(m.at(1, 0), 4.0);
  EXPECT_EQ(m.at(1, 2), 5.0);
  EXPECT_EQ(m.at(0, 0), 0.0);
  m.check_invariants();
}

TEST(SpMat, DuplicatesCombineWithDefaultAdd) {
  auto m = SpMat<double>::from_triples(2, 2, {{0, 0, 1.0}, {0, 0, 2.5}});
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_EQ(m.at(0, 0), 3.5);
}

TEST(SpMat, DuplicatesCombineWithCustomOp) {
  auto m = SpMat<double>::from_triples(
      2, 2, {{0, 0, 3.0}, {0, 0, 5.0}},
      [](double a, double b) { return std::max(a, b); });
  EXPECT_EQ(m.at(0, 0), 5.0);
}

TEST(SpMat, ZeroValuesAreDropped) {
  auto m = SpMat<double>::from_triples(2, 2, {{0, 0, 1.0}, {0, 1, 0.0},
                                              {1, 1, 2.0}, {1, 1, -2.0}});
  EXPECT_EQ(m.nnz(), 1);  // (0,1) explicit zero and (1,1) cancel both drop
  EXPECT_EQ(m.at(0, 0), 1.0);
}

TEST(SpMat, OutOfRangeTripleThrows) {
  EXPECT_THROW(SpMat<double>::from_triples(2, 2, {{2, 0, 1.0}}),
               std::out_of_range);
  EXPECT_THROW(SpMat<double>::from_triples(2, 2, {{0, -1, 1.0}}),
               std::out_of_range);
}

TEST(SpMat, FromCsrValidates) {
  EXPECT_NO_THROW(SpMat<double>::from_csr(2, 2, {0, 1, 2}, {0, 1}, {1.0, 2.0}));
  // row_ptr.back() != nnz
  EXPECT_THROW(SpMat<double>::from_csr(2, 2, {0, 1, 3}, {0, 1}, {1.0, 2.0}),
               std::invalid_argument);
  // columns not strictly increasing within a row
  EXPECT_THROW(
      SpMat<double>::from_csr(1, 3, {0, 2}, {1, 1}, {1.0, 2.0}),
      std::logic_error);
}

TEST(SpMat, DenseRoundTrip) {
  const std::vector<double> dense = {0, 1, 0, 2, 0, 0, 0, 3, 4, 0, 0, 0};
  auto m = SpMat<double>::from_dense(3, 4, dense);
  EXPECT_EQ(m.nnz(), 4);
  EXPECT_EQ(m.to_dense(), dense);
}

TEST(SpMat, TriplesRoundTrip) {
  auto m = random_sparse(17, 23, 0.2, 99);
  auto rebuilt = SpMat<double>::from_triples(17, 23, m.to_triples());
  EXPECT_EQ(m, rebuilt);
}

TEST(SpMat, RowAccessors) {
  auto m = SpMat<double>::from_triples(3, 4, {{1, 0, 9.0}, {1, 3, 8.0}});
  EXPECT_EQ(m.row_degree(0), 0);
  EXPECT_EQ(m.row_degree(1), 2);
  const auto cols = m.row_cols(1);
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], 0);
  EXPECT_EQ(cols[1], 3);
  const auto vals = m.row_vals(1);
  EXPECT_EQ(vals[0], 9.0);
  EXPECT_EQ(vals[1], 8.0);
  EXPECT_THROW(m.row_cols(3), std::out_of_range);
}

TEST(SpMat, TransposeInvolution) {
  auto m = random_sparse(13, 29, 0.15, 5);
  auto t = transpose(m);
  EXPECT_EQ(t.rows(), m.cols());
  EXPECT_EQ(t.cols(), m.rows());
  t.check_invariants();
  EXPECT_EQ(transpose(t), m);
}

TEST(SpMat, TransposeMatchesDense) {
  auto m = random_sparse(7, 5, 0.4, 8);
  auto t = transpose(m);
  const auto md = m.to_dense();
  const auto td = t.to_dense();
  for (Index i = 0; i < 7; ++i) {
    for (Index j = 0; j < 5; ++j) {
      EXPECT_EQ(md[static_cast<std::size_t>(i) * 5 + j],
                td[static_cast<std::size_t>(j) * 7 + i]);
    }
  }
}

TEST(SpMat, IdentityIsDiagonal) {
  auto eye = identity<double>(4);
  EXPECT_EQ(eye.nnz(), 4);
  for (Index i = 0; i < 4; ++i) {
    for (Index j = 0; j < 4; ++j) {
      EXPECT_EQ(eye.at(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(SpMat, EqualityDistinguishesValueAndShape) {
  auto a = SpMat<double>::from_triples(2, 2, {{0, 0, 1.0}});
  auto b = SpMat<double>::from_triples(2, 2, {{0, 0, 2.0}});
  auto c = SpMat<double>::from_triples(2, 3, {{0, 0, 1.0}});
  EXPECT_EQ(a, a);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
}

TEST(SpMat, NegativeDimensionThrows) {
  EXPECT_THROW(SpMat<double>(-1, 2), std::invalid_argument);
}

// Parameterized property: from_triples -> to_triples -> from_triples is
// the identity on random matrices over a grid of shapes/densities.
class SpMatRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(SpMatRoundTrip, TripleRoundTripAndInvariants) {
  const auto [rows, cols, density] = GetParam();
  auto m = random_sparse(rows, cols, density,
                         static_cast<std::uint64_t>(rows * 1000 + cols));
  m.check_invariants();
  auto rebuilt = SpMat<double>::from_triples(rows, cols, m.to_triples());
  EXPECT_EQ(m, rebuilt);
  auto tt = transpose(transpose(m));
  EXPECT_EQ(tt, m);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpMatRoundTrip,
    ::testing::Combine(::testing::Values(1, 5, 32, 101),
                       ::testing::Values(1, 7, 64),
                       ::testing::Values(0.0, 0.05, 0.3, 0.9)));

}  // namespace
}  // namespace graphulo::la
