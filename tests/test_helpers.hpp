#pragma once
// Shared helpers for the test suite: dense reference implementations the
// sparse kernels are checked against, and random sparse matrix builders.

#include <cstdint>
#include <vector>

#include "la/la.hpp"
#include "util/rng.hpp"

namespace graphulo::testing {

using la::Index;
using la::SpMat;
using la::Triple;

/// Random sparse matrix: each cell nonzero with probability `density`,
/// value uniform in [lo, hi].
inline SpMat<double> random_sparse(Index rows, Index cols, double density,
                                   std::uint64_t seed, double lo = 0.5,
                                   double hi = 2.0) {
  util::Xoshiro256 rng(seed);
  std::vector<Triple<double>> triples;
  for (Index i = 0; i < rows; ++i) {
    for (Index j = 0; j < cols; ++j) {
      if (rng.uniform() < density) triples.push_back({i, j, rng.uniform(lo, hi)});
    }
  }
  return SpMat<double>::from_triples(rows, cols, std::move(triples));
}

/// Random sparse matrix with small-integer values (exact arithmetic).
inline SpMat<double> random_sparse_int(Index rows, Index cols, double density,
                                       std::uint64_t seed, int max_value = 4) {
  util::Xoshiro256 rng(seed);
  std::vector<Triple<double>> triples;
  for (Index i = 0; i < rows; ++i) {
    for (Index j = 0; j < cols; ++j) {
      if (rng.uniform() < density) {
        triples.push_back(
            {i, j, static_cast<double>(1 + rng.uniform_int(
                       static_cast<std::uint64_t>(max_value)))});
      }
    }
  }
  return SpMat<double>::from_triples(rows, cols, std::move(triples));
}

/// Random simple undirected graph as a 0/1 symmetric adjacency matrix.
inline SpMat<double> random_undirected(Index n, double density,
                                       std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<Triple<double>> triples;
  for (Index i = 0; i < n; ++i) {
    for (Index j = i + 1; j < n; ++j) {
      if (rng.uniform() < density) {
        triples.push_back({i, j, 1.0});
        triples.push_back({j, i, 1.0});
      }
    }
  }
  return SpMat<double>::from_triples(n, n, std::move(triples));
}

/// Dense reference SpGEMM over an arbitrary semiring.
template <class SR>
std::vector<typename SR::value_type> dense_gemm_ref(
    const std::vector<typename SR::value_type>& a, Index m, Index k,
    const std::vector<typename SR::value_type>& b, Index n) {
  using T = typename SR::value_type;
  std::vector<T> c(static_cast<std::size_t>(m) * n, SR::zero());
  for (Index i = 0; i < m; ++i) {
    for (Index p = 0; p < k; ++p) {
      const T av = a[static_cast<std::size_t>(i) * k + p];
      for (Index j = 0; j < n; ++j) {
        const T bv = b[static_cast<std::size_t>(p) * n + j];
        c[static_cast<std::size_t>(i) * n + j] =
            SR::add(c[static_cast<std::size_t>(i) * n + j], SR::mul(av, bv));
      }
    }
  }
  return c;
}

/// The 5-vertex example graph of the paper's Fig. 1. Edges (1-indexed in
/// the paper, 0-indexed here): e1=(v1,v2), e2=(v2,v3), e3=(v1,v4),
/// e4=(v3,v4), e5=(v1,v3), e6=(v2,v5), read off the incidence matrix E
/// printed in Section III-B.
inline SpMat<double> paper_example_incidence() {
  // Rows = 6 edges, cols = 5 vertices; matches the matrix E in the paper.
  const std::vector<double> dense = {
      1, 1, 0, 0, 0,  //
      0, 1, 1, 0, 0,  //
      1, 0, 0, 1, 0,  //
      0, 0, 1, 1, 0,  //
      1, 0, 1, 0, 0,  //
      0, 1, 0, 0, 1};
  return SpMat<double>::from_dense(6, 5, dense);
}

/// Adjacency matrix of the same example graph (A = E^T E - diag(d)).
inline SpMat<double> paper_example_adjacency() {
  const std::vector<double> dense = {
      0, 1, 1, 1, 0,  //
      1, 0, 1, 0, 1,  //
      1, 1, 0, 1, 0,  //
      1, 0, 1, 0, 0,  //
      0, 1, 0, 0, 0};
  return SpMat<double>::from_dense(5, 5, dense);
}

}  // namespace graphulo::testing
