// Masked / filtered / fused TableMult (DESIGN.md §13), checked against
// the in-memory kernels: table_mult with a mask table must match
// la::spgemm_masked on the transposed left operand, scan-time
// row/column filters must match pre-multiplying by la::triu / la::tril,
// and the fused table_mult_reduce must return the sums a
// table_mult + scan round trip would produce — without creating C.

#include <cmath>
#include <cstdint>
#include <map>

#include <gtest/gtest.h>

#include "assoc/table_io.hpp"
#include "core/table_scan.hpp"
#include "core/tablemult.hpp"
#include "gen/rmat.hpp"
#include "la/la.hpp"
#include "obs/metrics.hpp"
#include "test_helpers.hpp"

namespace graphulo::core {
namespace {

using assoc::read_matrix;
using assoc::write_matrix;
using graphulo::testing::random_sparse_int;
using graphulo::testing::random_undirected;
using la::SpMat;

double matrix_sum(const SpMat<double>& m) {
  return la::reduce_all(m, [](double x, double y) { return x + y; });
}

TEST(MaskedTableMult, MatchesSpgemmMaskedOracle) {
  // C = A^T * B gated by M's stored cells, vs the in-memory masked
  // SpGEMM on the same operands.
  const auto a = random_sparse_int(18, 14, 0.3, 101);
  const auto b = random_sparse_int(18, 16, 0.3, 102);
  const auto mask = random_sparse_int(14, 16, 0.25, 103);
  nosql::Instance db(1);
  write_matrix(db, "A", a);
  write_matrix(db, "B", b);
  write_matrix(db, "M", mask);

  TableMultOptions options;
  options.compact_result = true;
  options.mask_table = "M";
  const auto stats = table_mult(db, "A", "B", "C", options);
  const auto c = read_matrix(db, "C", 14, 16);

  const auto oracle = la::spgemm_masked<la::PlusTimes<double>>(
      la::transpose(a), b, mask);
  EXPECT_EQ(c, oracle);

  // The mask partitions the unmasked emission count exactly.
  const auto unmasked = table_mult(db, "A", "B", "Cfull");
  EXPECT_EQ(stats.partial_products + stats.partial_products_pruned,
            unmasked.partial_products);
  EXPECT_GT(stats.partial_products_pruned, 0u);
}

TEST(MaskedTableMult, ComplementMaskMatchesComplementOracle) {
  const auto a = random_sparse_int(15, 12, 0.3, 104);
  const auto b = random_sparse_int(15, 13, 0.3, 105);
  const auto mask = random_sparse_int(12, 13, 0.3, 106);
  nosql::Instance db(1);
  write_matrix(db, "A", a);
  write_matrix(db, "B", b);
  write_matrix(db, "M", mask);

  TableMultOptions options;
  options.compact_result = true;
  options.mask_table = "M";
  options.complement_mask = true;
  table_mult(db, "A", "B", "C", options);
  const auto c = read_matrix(db, "C", 12, 13);

  const auto oracle = la::spgemm_masked<la::PlusTimes<double>>(
      la::transpose(a), b, mask, /*complement_mask=*/true);
  EXPECT_EQ(c, oracle);
}

TEST(MaskedTableMult, MissingMaskTableThrows) {
  nosql::Instance db(1);
  write_matrix(db, "A", random_sparse_int(4, 4, 0.5, 107));
  TableMultOptions options;
  options.mask_table = "NoSuchTable";
  EXPECT_THROW(table_mult(db, "A", "A", "C", options), std::invalid_argument);
  EXPECT_THROW(table_mult_reduce(db, "A", "A", options), std::invalid_argument);
}

TEST(MaskedTableMult, RowAndColFiltersReadTrianglesInPlace) {
  // row_filter = strict upper on A reads A as triu(A); col_filter =
  // strict lower on B reads B as tril(B). The product must equal the
  // oracle built from the pre-sliced matrices — no L/U tables needed.
  const auto a = random_sparse_int(16, 16, 0.35, 108);
  const auto b = random_sparse_int(16, 16, 0.35, 109);
  nosql::Instance db(1);
  write_matrix(db, "A", a);
  write_matrix(db, "B", b);

  TableMultOptions options;
  options.compact_result = true;
  options.row_filter = strict_upper_filter();
  options.col_filter = strict_lower_filter();
  table_mult(db, "A", "B", "C", options);
  const auto c = read_matrix(db, "C", 16, 16);

  const auto oracle = la::spgemm<la::PlusTimes<double>>(
      la::transpose(la::triu(a)), la::tril(b));
  EXPECT_EQ(c, oracle);
}

TEST(MaskedTableMult, MaskFilterRestrictsTheMaskWhileLoading) {
  // Mask = strict lower triangle of the symmetric adjacency itself:
  // the filter slices L out of A at mask-load time.
  const auto a = random_undirected(14, 0.4, 110);
  nosql::Instance db(1);
  write_matrix(db, "A", a);

  TableMultOptions options;
  options.compact_result = true;
  options.mask_table = "A";
  options.mask_filter = strict_lower_filter();
  table_mult(db, "A", "A", "C", options);
  const auto c = read_matrix(db, "C", 14, 14);

  const auto oracle = la::spgemm_masked<la::PlusTimes<double>>(
      la::transpose(a), a, la::tril(a));
  EXPECT_EQ(c, oracle);
}

TEST(FusedReduce, TotalMatchesMaterializedSum) {
  const auto a = random_sparse_int(20, 15, 0.3, 111);
  const auto b = random_sparse_int(20, 17, 0.3, 112);
  nosql::Instance db(1);
  write_matrix(db, "A", a);
  write_matrix(db, "B", b);

  const auto reduced = table_mult_reduce(db, "A", "B");
  table_mult(db, "A", "B", "C", {.compact_result = true});
  const auto c = read_matrix(db, "C", 15, 17);
  // Small-integer values: both sums are exact.
  EXPECT_EQ(reduced.total, matrix_sum(c));
  EXPECT_GT(reduced.stats.partial_products, 0u);
}

TEST(FusedReduce, PerRowTotalsMatchRowSums) {
  const auto a = random_sparse_int(12, 10, 0.4, 113);
  const auto b = random_sparse_int(12, 11, 0.4, 114);
  nosql::Instance db(1);
  write_matrix(db, "A", a);
  write_matrix(db, "B", b);

  const auto reduced = table_mult_reduce(db, "A", "B", {}, /*per_row=*/true);
  table_mult(db, "A", "B", "C", {.compact_result = true});
  const auto c = read_matrix(db, "C", 10, 11);

  std::map<std::string, double> expected;
  for (const auto& t : c.to_triples()) {
    expected[assoc::vertex_key(t.row)] += t.val;
  }
  EXPECT_EQ(reduced.row_totals, expected);
}

TEST(FusedReduce, MaskedReduceMatchesOracleAndCountsPrunes) {
  const auto a = random_undirected(16, 0.4, 115);
  nosql::Instance db(1);
  write_matrix(db, "A", a);

  auto& pruned_counter = obs::MetricsRegistry::global().counter(
      "tablemult.partial_products_pruned.total");
  const auto pruned_before = pruned_counter.value();

  TableMultOptions options;
  options.mask_table = "A";
  const auto reduced = table_mult_reduce(db, "A", "A", options);

  const auto oracle = la::spgemm_masked<la::PlusTimes<double>>(
      la::transpose(a), a, a);
  EXPECT_EQ(reduced.total, matrix_sum(oracle));
  EXPECT_GT(reduced.stats.partial_products_pruned, 0u);
  EXPECT_EQ(pruned_counter.value() - pruned_before,
            reduced.stats.partial_products_pruned);
}

TEST(MaskedTableMult, MultiWorkerMaskedPropertyOnRmat) {
  // Property test across seeds: the masked multiply over a partitioned
  // multi-worker run equals both the serial run and the in-memory
  // masked-SpGEMM oracle; triangle-style filters included.
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    gen::RmatParams p;
    p.scale = 6;
    p.edge_factor = 5;
    p.seed = seed;
    const auto a = gen::rmat_simple_adjacency(p);

    constexpr int kTablets = 4;
    nosql::Instance db(kTablets);
    write_matrix(db, "A", a);
    std::vector<std::string> splits;
    for (int s = 1; s < kTablets; ++s) {
      splits.push_back(assoc::vertex_key(a.rows() * s / kTablets));
    }
    db.add_splits("A", splits);

    TableMultOptions options;
    options.compact_result = true;
    options.mask_table = "A";
    options.mask_filter = strict_lower_filter();
    options.row_filter = strict_upper_filter();
    options.col_filter = strict_upper_filter();

    auto serial = options;
    serial.num_workers = 1;
    table_mult(db, "A", "A", "Cserial", serial);
    auto parallel = options;
    parallel.num_workers = 4;
    table_mult(db, "A", "A", "Cpar", parallel);

    const auto cs = read_matrix(db, "Cserial", a.cols(), a.cols());
    const auto cp = read_matrix(db, "Cpar", a.cols(), a.cols());
    const auto u = la::triu(a);
    const auto oracle = la::spgemm_masked<la::PlusTimes<double>>(
        la::transpose(u), u, la::tril(a));
    EXPECT_EQ(cs, oracle) << "seed " << seed;
    EXPECT_EQ(cp, oracle) << "seed " << seed;

    // The fused reduce of the same masked product is the triangle count.
    const auto reduced = table_mult_reduce(db, "A", "A", options);
    EXPECT_EQ(reduced.total, matrix_sum(oracle)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace graphulo::core
