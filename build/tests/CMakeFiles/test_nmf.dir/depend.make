# Empty dependencies file for test_nmf.
# This may be replaced when dependencies are built.
