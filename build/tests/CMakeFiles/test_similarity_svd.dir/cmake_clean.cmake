file(REMOVE_RECURSE
  "CMakeFiles/test_similarity_svd.dir/test_similarity_svd.cpp.o"
  "CMakeFiles/test_similarity_svd.dir/test_similarity_svd.cpp.o.d"
  "test_similarity_svd"
  "test_similarity_svd.pdb"
  "test_similarity_svd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_similarity_svd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
