# Empty dependencies file for test_similarity_svd.
# This may be replaced when dependencies are built.
