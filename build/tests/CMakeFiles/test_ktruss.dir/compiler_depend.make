# Empty compiler generated dependencies file for test_ktruss.
# This may be replaced when dependencies are built.
