file(REMOVE_RECURSE
  "CMakeFiles/test_ktruss.dir/test_ktruss.cpp.o"
  "CMakeFiles/test_ktruss.dir/test_ktruss.cpp.o.d"
  "test_ktruss"
  "test_ktruss.pdb"
  "test_ktruss[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ktruss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
