file(REMOVE_RECURSE
  "CMakeFiles/test_nosql_iterators.dir/test_nosql_iterators.cpp.o"
  "CMakeFiles/test_nosql_iterators.dir/test_nosql_iterators.cpp.o.d"
  "test_nosql_iterators"
  "test_nosql_iterators.pdb"
  "test_nosql_iterators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nosql_iterators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
