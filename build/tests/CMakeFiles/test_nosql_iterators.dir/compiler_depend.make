# Empty compiler generated dependencies file for test_nosql_iterators.
# This may be replaced when dependencies are built.
