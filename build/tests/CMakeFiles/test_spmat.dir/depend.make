# Empty dependencies file for test_spmat.
# This may be replaced when dependencies are built.
