file(REMOVE_RECURSE
  "CMakeFiles/test_spmat.dir/test_spmat.cpp.o"
  "CMakeFiles/test_spmat.dir/test_spmat.cpp.o.d"
  "test_spmat"
  "test_spmat.pdb"
  "test_spmat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spmat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
