# Empty compiler generated dependencies file for test_sssp.
# This may be replaced when dependencies are built.
