# Empty compiler generated dependencies file for test_la_properties.
# This may be replaced when dependencies are built.
