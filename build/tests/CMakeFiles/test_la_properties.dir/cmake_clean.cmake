file(REMOVE_RECURSE
  "CMakeFiles/test_la_properties.dir/test_la_properties.cpp.o"
  "CMakeFiles/test_la_properties.dir/test_la_properties.cpp.o.d"
  "test_la_properties"
  "test_la_properties.pdb"
  "test_la_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_la_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
