# Empty dependencies file for test_apply_reduce.
# This may be replaced when dependencies are built.
