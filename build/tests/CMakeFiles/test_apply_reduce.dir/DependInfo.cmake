
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_apply_reduce.cpp" "tests/CMakeFiles/test_apply_reduce.dir/test_apply_reduce.cpp.o" "gcc" "tests/CMakeFiles/test_apply_reduce.dir/test_apply_reduce.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algo/CMakeFiles/graphulo_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/graphulo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/assoc/CMakeFiles/graphulo_assoc.dir/DependInfo.cmake"
  "/root/repo/build/src/nosql/CMakeFiles/graphulo_nosql.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/graphulo_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/graphulo_la.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/graphulo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
