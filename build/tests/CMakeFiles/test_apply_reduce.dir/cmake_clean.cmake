file(REMOVE_RECURSE
  "CMakeFiles/test_apply_reduce.dir/test_apply_reduce.cpp.o"
  "CMakeFiles/test_apply_reduce.dir/test_apply_reduce.cpp.o.d"
  "test_apply_reduce"
  "test_apply_reduce.pdb"
  "test_apply_reduce[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apply_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
