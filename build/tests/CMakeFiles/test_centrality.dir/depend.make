# Empty dependencies file for test_centrality.
# This may be replaced when dependencies are built.
