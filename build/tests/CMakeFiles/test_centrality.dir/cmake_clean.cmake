file(REMOVE_RECURSE
  "CMakeFiles/test_centrality.dir/test_centrality.cpp.o"
  "CMakeFiles/test_centrality.dir/test_centrality.cpp.o.d"
  "test_centrality"
  "test_centrality.pdb"
  "test_centrality[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_centrality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
