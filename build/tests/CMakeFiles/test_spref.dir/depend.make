# Empty dependencies file for test_spref.
# This may be replaced when dependencies are built.
