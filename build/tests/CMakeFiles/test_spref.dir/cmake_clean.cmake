file(REMOVE_RECURSE
  "CMakeFiles/test_spref.dir/test_spref.cpp.o"
  "CMakeFiles/test_spref.dir/test_spref.cpp.o.d"
  "test_spref"
  "test_spref.pdb"
  "test_spref[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
