file(REMOVE_RECURSE
  "CMakeFiles/test_nosql_store.dir/test_nosql_store.cpp.o"
  "CMakeFiles/test_nosql_store.dir/test_nosql_store.cpp.o.d"
  "test_nosql_store"
  "test_nosql_store.pdb"
  "test_nosql_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nosql_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
