# Empty compiler generated dependencies file for test_nosql_store.
# This may be replaced when dependencies are built.
