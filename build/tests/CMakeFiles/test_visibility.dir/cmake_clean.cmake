file(REMOVE_RECURSE
  "CMakeFiles/test_visibility.dir/test_visibility.cpp.o"
  "CMakeFiles/test_visibility.dir/test_visibility.cpp.o.d"
  "test_visibility"
  "test_visibility.pdb"
  "test_visibility[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_visibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
