file(REMOVE_RECURSE
  "CMakeFiles/test_kron.dir/test_kron.cpp.o"
  "CMakeFiles/test_kron.dir/test_kron.cpp.o.d"
  "test_kron"
  "test_kron.pdb"
  "test_kron[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kron.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
