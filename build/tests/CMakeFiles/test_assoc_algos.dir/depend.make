# Empty dependencies file for test_assoc_algos.
# This may be replaced when dependencies are built.
