file(REMOVE_RECURSE
  "CMakeFiles/test_assoc_algos.dir/test_assoc_algos.cpp.o"
  "CMakeFiles/test_assoc_algos.dir/test_assoc_algos.cpp.o.d"
  "test_assoc_algos"
  "test_assoc_algos.pdb"
  "test_assoc_algos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assoc_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
