file(REMOVE_RECURSE
  "CMakeFiles/test_nosql_key.dir/test_nosql_key.cpp.o"
  "CMakeFiles/test_nosql_key.dir/test_nosql_key.cpp.o.d"
  "test_nosql_key"
  "test_nosql_key.pdb"
  "test_nosql_key[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nosql_key.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
