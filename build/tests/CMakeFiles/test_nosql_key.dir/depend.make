# Empty dependencies file for test_nosql_key.
# This may be replaced when dependencies are built.
