# Empty dependencies file for test_ewise.
# This may be replaced when dependencies are built.
