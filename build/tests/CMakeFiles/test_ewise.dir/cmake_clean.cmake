file(REMOVE_RECURSE
  "CMakeFiles/test_ewise.dir/test_ewise.cpp.o"
  "CMakeFiles/test_ewise.dir/test_ewise.cpp.o.d"
  "test_ewise"
  "test_ewise.pdb"
  "test_ewise[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ewise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
