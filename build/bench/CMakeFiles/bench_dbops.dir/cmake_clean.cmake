file(REMOVE_RECURSE
  "CMakeFiles/bench_dbops.dir/bench_dbops.cpp.o"
  "CMakeFiles/bench_dbops.dir/bench_dbops.cpp.o.d"
  "bench_dbops"
  "bench_dbops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dbops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
