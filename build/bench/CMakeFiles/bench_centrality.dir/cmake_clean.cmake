file(REMOVE_RECURSE
  "CMakeFiles/bench_centrality.dir/bench_centrality.cpp.o"
  "CMakeFiles/bench_centrality.dir/bench_centrality.cpp.o.d"
  "bench_centrality"
  "bench_centrality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_centrality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
