# Empty compiler generated dependencies file for bench_centrality.
# This may be replaced when dependencies are built.
