# Empty dependencies file for bench_table1_coverage.
# This may be replaced when dependencies are built.
