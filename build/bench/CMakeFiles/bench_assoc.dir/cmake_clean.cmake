file(REMOVE_RECURSE
  "CMakeFiles/bench_assoc.dir/bench_assoc.cpp.o"
  "CMakeFiles/bench_assoc.dir/bench_assoc.cpp.o.d"
  "bench_assoc"
  "bench_assoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_assoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
