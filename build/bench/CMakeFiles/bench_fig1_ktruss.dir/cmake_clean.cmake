file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_ktruss.dir/bench_fig1_ktruss.cpp.o"
  "CMakeFiles/bench_fig1_ktruss.dir/bench_fig1_ktruss.cpp.o.d"
  "bench_fig1_ktruss"
  "bench_fig1_ktruss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_ktruss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
