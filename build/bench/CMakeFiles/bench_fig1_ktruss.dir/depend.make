# Empty dependencies file for bench_fig1_ktruss.
# This may be replaced when dependencies are built.
