file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_nmf.dir/bench_fig3_nmf.cpp.o"
  "CMakeFiles/bench_fig3_nmf.dir/bench_fig3_nmf.cpp.o.d"
  "bench_fig3_nmf"
  "bench_fig3_nmf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_nmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
