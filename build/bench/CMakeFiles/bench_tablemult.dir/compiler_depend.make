# Empty compiler generated dependencies file for bench_tablemult.
# This may be replaced when dependencies are built.
