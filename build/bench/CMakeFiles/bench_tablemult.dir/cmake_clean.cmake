file(REMOVE_RECURSE
  "CMakeFiles/bench_tablemult.dir/bench_tablemult.cpp.o"
  "CMakeFiles/bench_tablemult.dir/bench_tablemult.cpp.o.d"
  "bench_tablemult"
  "bench_tablemult.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tablemult.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
