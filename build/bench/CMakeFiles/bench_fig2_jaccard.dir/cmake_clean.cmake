file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_jaccard.dir/bench_fig2_jaccard.cpp.o"
  "CMakeFiles/bench_fig2_jaccard.dir/bench_fig2_jaccard.cpp.o.d"
  "bench_fig2_jaccard"
  "bench_fig2_jaccard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_jaccard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
