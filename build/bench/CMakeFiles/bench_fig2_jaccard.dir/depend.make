# Empty dependencies file for bench_fig2_jaccard.
# This may be replaced when dependencies are built.
