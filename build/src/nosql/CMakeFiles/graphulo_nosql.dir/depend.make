# Empty dependencies file for graphulo_nosql.
# This may be replaced when dependencies are built.
