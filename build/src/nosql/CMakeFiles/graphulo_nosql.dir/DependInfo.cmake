
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nosql/batch_writer.cpp" "src/nosql/CMakeFiles/graphulo_nosql.dir/batch_writer.cpp.o" "gcc" "src/nosql/CMakeFiles/graphulo_nosql.dir/batch_writer.cpp.o.d"
  "/root/repo/src/nosql/codec.cpp" "src/nosql/CMakeFiles/graphulo_nosql.dir/codec.cpp.o" "gcc" "src/nosql/CMakeFiles/graphulo_nosql.dir/codec.cpp.o.d"
  "/root/repo/src/nosql/combiner.cpp" "src/nosql/CMakeFiles/graphulo_nosql.dir/combiner.cpp.o" "gcc" "src/nosql/CMakeFiles/graphulo_nosql.dir/combiner.cpp.o.d"
  "/root/repo/src/nosql/filter_iterators.cpp" "src/nosql/CMakeFiles/graphulo_nosql.dir/filter_iterators.cpp.o" "gcc" "src/nosql/CMakeFiles/graphulo_nosql.dir/filter_iterators.cpp.o.d"
  "/root/repo/src/nosql/instance.cpp" "src/nosql/CMakeFiles/graphulo_nosql.dir/instance.cpp.o" "gcc" "src/nosql/CMakeFiles/graphulo_nosql.dir/instance.cpp.o.d"
  "/root/repo/src/nosql/iterator.cpp" "src/nosql/CMakeFiles/graphulo_nosql.dir/iterator.cpp.o" "gcc" "src/nosql/CMakeFiles/graphulo_nosql.dir/iterator.cpp.o.d"
  "/root/repo/src/nosql/key.cpp" "src/nosql/CMakeFiles/graphulo_nosql.dir/key.cpp.o" "gcc" "src/nosql/CMakeFiles/graphulo_nosql.dir/key.cpp.o.d"
  "/root/repo/src/nosql/memtable.cpp" "src/nosql/CMakeFiles/graphulo_nosql.dir/memtable.cpp.o" "gcc" "src/nosql/CMakeFiles/graphulo_nosql.dir/memtable.cpp.o.d"
  "/root/repo/src/nosql/merge_iterator.cpp" "src/nosql/CMakeFiles/graphulo_nosql.dir/merge_iterator.cpp.o" "gcc" "src/nosql/CMakeFiles/graphulo_nosql.dir/merge_iterator.cpp.o.d"
  "/root/repo/src/nosql/mutation.cpp" "src/nosql/CMakeFiles/graphulo_nosql.dir/mutation.cpp.o" "gcc" "src/nosql/CMakeFiles/graphulo_nosql.dir/mutation.cpp.o.d"
  "/root/repo/src/nosql/rfile.cpp" "src/nosql/CMakeFiles/graphulo_nosql.dir/rfile.cpp.o" "gcc" "src/nosql/CMakeFiles/graphulo_nosql.dir/rfile.cpp.o.d"
  "/root/repo/src/nosql/scanner.cpp" "src/nosql/CMakeFiles/graphulo_nosql.dir/scanner.cpp.o" "gcc" "src/nosql/CMakeFiles/graphulo_nosql.dir/scanner.cpp.o.d"
  "/root/repo/src/nosql/tablet.cpp" "src/nosql/CMakeFiles/graphulo_nosql.dir/tablet.cpp.o" "gcc" "src/nosql/CMakeFiles/graphulo_nosql.dir/tablet.cpp.o.d"
  "/root/repo/src/nosql/visibility.cpp" "src/nosql/CMakeFiles/graphulo_nosql.dir/visibility.cpp.o" "gcc" "src/nosql/CMakeFiles/graphulo_nosql.dir/visibility.cpp.o.d"
  "/root/repo/src/nosql/wal.cpp" "src/nosql/CMakeFiles/graphulo_nosql.dir/wal.cpp.o" "gcc" "src/nosql/CMakeFiles/graphulo_nosql.dir/wal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/graphulo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
