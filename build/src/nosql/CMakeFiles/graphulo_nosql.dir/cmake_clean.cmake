file(REMOVE_RECURSE
  "CMakeFiles/graphulo_nosql.dir/batch_writer.cpp.o"
  "CMakeFiles/graphulo_nosql.dir/batch_writer.cpp.o.d"
  "CMakeFiles/graphulo_nosql.dir/codec.cpp.o"
  "CMakeFiles/graphulo_nosql.dir/codec.cpp.o.d"
  "CMakeFiles/graphulo_nosql.dir/combiner.cpp.o"
  "CMakeFiles/graphulo_nosql.dir/combiner.cpp.o.d"
  "CMakeFiles/graphulo_nosql.dir/filter_iterators.cpp.o"
  "CMakeFiles/graphulo_nosql.dir/filter_iterators.cpp.o.d"
  "CMakeFiles/graphulo_nosql.dir/instance.cpp.o"
  "CMakeFiles/graphulo_nosql.dir/instance.cpp.o.d"
  "CMakeFiles/graphulo_nosql.dir/iterator.cpp.o"
  "CMakeFiles/graphulo_nosql.dir/iterator.cpp.o.d"
  "CMakeFiles/graphulo_nosql.dir/key.cpp.o"
  "CMakeFiles/graphulo_nosql.dir/key.cpp.o.d"
  "CMakeFiles/graphulo_nosql.dir/memtable.cpp.o"
  "CMakeFiles/graphulo_nosql.dir/memtable.cpp.o.d"
  "CMakeFiles/graphulo_nosql.dir/merge_iterator.cpp.o"
  "CMakeFiles/graphulo_nosql.dir/merge_iterator.cpp.o.d"
  "CMakeFiles/graphulo_nosql.dir/mutation.cpp.o"
  "CMakeFiles/graphulo_nosql.dir/mutation.cpp.o.d"
  "CMakeFiles/graphulo_nosql.dir/rfile.cpp.o"
  "CMakeFiles/graphulo_nosql.dir/rfile.cpp.o.d"
  "CMakeFiles/graphulo_nosql.dir/scanner.cpp.o"
  "CMakeFiles/graphulo_nosql.dir/scanner.cpp.o.d"
  "CMakeFiles/graphulo_nosql.dir/tablet.cpp.o"
  "CMakeFiles/graphulo_nosql.dir/tablet.cpp.o.d"
  "CMakeFiles/graphulo_nosql.dir/visibility.cpp.o"
  "CMakeFiles/graphulo_nosql.dir/visibility.cpp.o.d"
  "CMakeFiles/graphulo_nosql.dir/wal.cpp.o"
  "CMakeFiles/graphulo_nosql.dir/wal.cpp.o.d"
  "libgraphulo_nosql.a"
  "libgraphulo_nosql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphulo_nosql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
