file(REMOVE_RECURSE
  "libgraphulo_nosql.a"
)
