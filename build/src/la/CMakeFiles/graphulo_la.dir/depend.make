# Empty dependencies file for graphulo_la.
# This may be replaced when dependencies are built.
