file(REMOVE_RECURSE
  "libgraphulo_la.a"
)
