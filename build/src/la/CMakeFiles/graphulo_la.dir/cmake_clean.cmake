file(REMOVE_RECURSE
  "CMakeFiles/graphulo_la.dir/io.cpp.o"
  "CMakeFiles/graphulo_la.dir/io.cpp.o.d"
  "CMakeFiles/graphulo_la.dir/print.cpp.o"
  "CMakeFiles/graphulo_la.dir/print.cpp.o.d"
  "libgraphulo_la.a"
  "libgraphulo_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphulo_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
