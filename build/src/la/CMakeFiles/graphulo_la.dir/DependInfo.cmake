
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/la/io.cpp" "src/la/CMakeFiles/graphulo_la.dir/io.cpp.o" "gcc" "src/la/CMakeFiles/graphulo_la.dir/io.cpp.o.d"
  "/root/repo/src/la/print.cpp" "src/la/CMakeFiles/graphulo_la.dir/print.cpp.o" "gcc" "src/la/CMakeFiles/graphulo_la.dir/print.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/graphulo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
