file(REMOVE_RECURSE
  "CMakeFiles/graphulo_assoc.dir/assoc_array.cpp.o"
  "CMakeFiles/graphulo_assoc.dir/assoc_array.cpp.o.d"
  "CMakeFiles/graphulo_assoc.dir/schemas.cpp.o"
  "CMakeFiles/graphulo_assoc.dir/schemas.cpp.o.d"
  "CMakeFiles/graphulo_assoc.dir/table_io.cpp.o"
  "CMakeFiles/graphulo_assoc.dir/table_io.cpp.o.d"
  "libgraphulo_assoc.a"
  "libgraphulo_assoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphulo_assoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
