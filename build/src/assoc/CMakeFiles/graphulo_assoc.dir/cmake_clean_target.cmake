file(REMOVE_RECURSE
  "libgraphulo_assoc.a"
)
