# Empty compiler generated dependencies file for graphulo_assoc.
# This may be replaced when dependencies are built.
