# Empty compiler generated dependencies file for graphulo_core.
# This may be replaced when dependencies are built.
