file(REMOVE_RECURSE
  "libgraphulo_core.a"
)
