file(REMOVE_RECURSE
  "CMakeFiles/graphulo_core.dir/assoc_algos.cpp.o"
  "CMakeFiles/graphulo_core.dir/assoc_algos.cpp.o.d"
  "CMakeFiles/graphulo_core.dir/remote_write.cpp.o"
  "CMakeFiles/graphulo_core.dir/remote_write.cpp.o.d"
  "CMakeFiles/graphulo_core.dir/table_algos.cpp.o"
  "CMakeFiles/graphulo_core.dir/table_algos.cpp.o.d"
  "CMakeFiles/graphulo_core.dir/table_ops.cpp.o"
  "CMakeFiles/graphulo_core.dir/table_ops.cpp.o.d"
  "CMakeFiles/graphulo_core.dir/table_scan.cpp.o"
  "CMakeFiles/graphulo_core.dir/table_scan.cpp.o.d"
  "CMakeFiles/graphulo_core.dir/tablemult.cpp.o"
  "CMakeFiles/graphulo_core.dir/tablemult.cpp.o.d"
  "libgraphulo_core.a"
  "libgraphulo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphulo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
