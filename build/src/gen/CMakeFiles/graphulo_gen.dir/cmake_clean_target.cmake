file(REMOVE_RECURSE
  "libgraphulo_gen.a"
)
