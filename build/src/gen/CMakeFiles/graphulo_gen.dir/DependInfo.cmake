
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/erdos.cpp" "src/gen/CMakeFiles/graphulo_gen.dir/erdos.cpp.o" "gcc" "src/gen/CMakeFiles/graphulo_gen.dir/erdos.cpp.o.d"
  "/root/repo/src/gen/planted.cpp" "src/gen/CMakeFiles/graphulo_gen.dir/planted.cpp.o" "gcc" "src/gen/CMakeFiles/graphulo_gen.dir/planted.cpp.o.d"
  "/root/repo/src/gen/rmat.cpp" "src/gen/CMakeFiles/graphulo_gen.dir/rmat.cpp.o" "gcc" "src/gen/CMakeFiles/graphulo_gen.dir/rmat.cpp.o.d"
  "/root/repo/src/gen/tweets.cpp" "src/gen/CMakeFiles/graphulo_gen.dir/tweets.cpp.o" "gcc" "src/gen/CMakeFiles/graphulo_gen.dir/tweets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/graphulo_la.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/graphulo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
