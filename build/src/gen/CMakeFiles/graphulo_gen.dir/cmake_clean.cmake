file(REMOVE_RECURSE
  "CMakeFiles/graphulo_gen.dir/erdos.cpp.o"
  "CMakeFiles/graphulo_gen.dir/erdos.cpp.o.d"
  "CMakeFiles/graphulo_gen.dir/planted.cpp.o"
  "CMakeFiles/graphulo_gen.dir/planted.cpp.o.d"
  "CMakeFiles/graphulo_gen.dir/rmat.cpp.o"
  "CMakeFiles/graphulo_gen.dir/rmat.cpp.o.d"
  "CMakeFiles/graphulo_gen.dir/tweets.cpp.o"
  "CMakeFiles/graphulo_gen.dir/tweets.cpp.o.d"
  "libgraphulo_gen.a"
  "libgraphulo_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphulo_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
