# Empty compiler generated dependencies file for graphulo_gen.
# This may be replaced when dependencies are built.
