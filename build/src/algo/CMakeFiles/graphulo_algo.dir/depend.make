# Empty dependencies file for graphulo_algo.
# This may be replaced when dependencies are built.
