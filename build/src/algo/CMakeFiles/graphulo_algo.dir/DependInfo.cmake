
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/betweenness.cpp" "src/algo/CMakeFiles/graphulo_algo.dir/betweenness.cpp.o" "gcc" "src/algo/CMakeFiles/graphulo_algo.dir/betweenness.cpp.o.d"
  "/root/repo/src/algo/centrality.cpp" "src/algo/CMakeFiles/graphulo_algo.dir/centrality.cpp.o" "gcc" "src/algo/CMakeFiles/graphulo_algo.dir/centrality.cpp.o.d"
  "/root/repo/src/algo/components.cpp" "src/algo/CMakeFiles/graphulo_algo.dir/components.cpp.o" "gcc" "src/algo/CMakeFiles/graphulo_algo.dir/components.cpp.o.d"
  "/root/repo/src/algo/inverse.cpp" "src/algo/CMakeFiles/graphulo_algo.dir/inverse.cpp.o" "gcc" "src/algo/CMakeFiles/graphulo_algo.dir/inverse.cpp.o.d"
  "/root/repo/src/algo/jaccard.cpp" "src/algo/CMakeFiles/graphulo_algo.dir/jaccard.cpp.o" "gcc" "src/algo/CMakeFiles/graphulo_algo.dir/jaccard.cpp.o.d"
  "/root/repo/src/algo/ktruss.cpp" "src/algo/CMakeFiles/graphulo_algo.dir/ktruss.cpp.o" "gcc" "src/algo/CMakeFiles/graphulo_algo.dir/ktruss.cpp.o.d"
  "/root/repo/src/algo/nmf.cpp" "src/algo/CMakeFiles/graphulo_algo.dir/nmf.cpp.o" "gcc" "src/algo/CMakeFiles/graphulo_algo.dir/nmf.cpp.o.d"
  "/root/repo/src/algo/nomination.cpp" "src/algo/CMakeFiles/graphulo_algo.dir/nomination.cpp.o" "gcc" "src/algo/CMakeFiles/graphulo_algo.dir/nomination.cpp.o.d"
  "/root/repo/src/algo/similarity_extra.cpp" "src/algo/CMakeFiles/graphulo_algo.dir/similarity_extra.cpp.o" "gcc" "src/algo/CMakeFiles/graphulo_algo.dir/similarity_extra.cpp.o.d"
  "/root/repo/src/algo/spectral.cpp" "src/algo/CMakeFiles/graphulo_algo.dir/spectral.cpp.o" "gcc" "src/algo/CMakeFiles/graphulo_algo.dir/spectral.cpp.o.d"
  "/root/repo/src/algo/sssp.cpp" "src/algo/CMakeFiles/graphulo_algo.dir/sssp.cpp.o" "gcc" "src/algo/CMakeFiles/graphulo_algo.dir/sssp.cpp.o.d"
  "/root/repo/src/algo/svd.cpp" "src/algo/CMakeFiles/graphulo_algo.dir/svd.cpp.o" "gcc" "src/algo/CMakeFiles/graphulo_algo.dir/svd.cpp.o.d"
  "/root/repo/src/algo/traversal.cpp" "src/algo/CMakeFiles/graphulo_algo.dir/traversal.cpp.o" "gcc" "src/algo/CMakeFiles/graphulo_algo.dir/traversal.cpp.o.d"
  "/root/repo/src/algo/tricount.cpp" "src/algo/CMakeFiles/graphulo_algo.dir/tricount.cpp.o" "gcc" "src/algo/CMakeFiles/graphulo_algo.dir/tricount.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/graphulo_la.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/graphulo_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/graphulo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
