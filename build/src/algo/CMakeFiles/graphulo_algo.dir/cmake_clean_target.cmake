file(REMOVE_RECURSE
  "libgraphulo_algo.a"
)
