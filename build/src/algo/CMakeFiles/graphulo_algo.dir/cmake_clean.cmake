file(REMOVE_RECURSE
  "CMakeFiles/graphulo_algo.dir/betweenness.cpp.o"
  "CMakeFiles/graphulo_algo.dir/betweenness.cpp.o.d"
  "CMakeFiles/graphulo_algo.dir/centrality.cpp.o"
  "CMakeFiles/graphulo_algo.dir/centrality.cpp.o.d"
  "CMakeFiles/graphulo_algo.dir/components.cpp.o"
  "CMakeFiles/graphulo_algo.dir/components.cpp.o.d"
  "CMakeFiles/graphulo_algo.dir/inverse.cpp.o"
  "CMakeFiles/graphulo_algo.dir/inverse.cpp.o.d"
  "CMakeFiles/graphulo_algo.dir/jaccard.cpp.o"
  "CMakeFiles/graphulo_algo.dir/jaccard.cpp.o.d"
  "CMakeFiles/graphulo_algo.dir/ktruss.cpp.o"
  "CMakeFiles/graphulo_algo.dir/ktruss.cpp.o.d"
  "CMakeFiles/graphulo_algo.dir/nmf.cpp.o"
  "CMakeFiles/graphulo_algo.dir/nmf.cpp.o.d"
  "CMakeFiles/graphulo_algo.dir/nomination.cpp.o"
  "CMakeFiles/graphulo_algo.dir/nomination.cpp.o.d"
  "CMakeFiles/graphulo_algo.dir/similarity_extra.cpp.o"
  "CMakeFiles/graphulo_algo.dir/similarity_extra.cpp.o.d"
  "CMakeFiles/graphulo_algo.dir/spectral.cpp.o"
  "CMakeFiles/graphulo_algo.dir/spectral.cpp.o.d"
  "CMakeFiles/graphulo_algo.dir/sssp.cpp.o"
  "CMakeFiles/graphulo_algo.dir/sssp.cpp.o.d"
  "CMakeFiles/graphulo_algo.dir/svd.cpp.o"
  "CMakeFiles/graphulo_algo.dir/svd.cpp.o.d"
  "CMakeFiles/graphulo_algo.dir/traversal.cpp.o"
  "CMakeFiles/graphulo_algo.dir/traversal.cpp.o.d"
  "CMakeFiles/graphulo_algo.dir/tricount.cpp.o"
  "CMakeFiles/graphulo_algo.dir/tricount.cpp.o.d"
  "libgraphulo_algo.a"
  "libgraphulo_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphulo_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
