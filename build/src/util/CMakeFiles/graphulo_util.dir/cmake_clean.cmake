file(REMOVE_RECURSE
  "CMakeFiles/graphulo_util.dir/csv.cpp.o"
  "CMakeFiles/graphulo_util.dir/csv.cpp.o.d"
  "CMakeFiles/graphulo_util.dir/log.cpp.o"
  "CMakeFiles/graphulo_util.dir/log.cpp.o.d"
  "CMakeFiles/graphulo_util.dir/parallel.cpp.o"
  "CMakeFiles/graphulo_util.dir/parallel.cpp.o.d"
  "CMakeFiles/graphulo_util.dir/rng.cpp.o"
  "CMakeFiles/graphulo_util.dir/rng.cpp.o.d"
  "CMakeFiles/graphulo_util.dir/stats.cpp.o"
  "CMakeFiles/graphulo_util.dir/stats.cpp.o.d"
  "CMakeFiles/graphulo_util.dir/strings.cpp.o"
  "CMakeFiles/graphulo_util.dir/strings.cpp.o.d"
  "CMakeFiles/graphulo_util.dir/table_printer.cpp.o"
  "CMakeFiles/graphulo_util.dir/table_printer.cpp.o.d"
  "CMakeFiles/graphulo_util.dir/threadpool.cpp.o"
  "CMakeFiles/graphulo_util.dir/threadpool.cpp.o.d"
  "CMakeFiles/graphulo_util.dir/zipf.cpp.o"
  "CMakeFiles/graphulo_util.dir/zipf.cpp.o.d"
  "libgraphulo_util.a"
  "libgraphulo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphulo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
