file(REMOVE_RECURSE
  "libgraphulo_util.a"
)
