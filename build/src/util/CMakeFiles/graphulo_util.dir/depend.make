# Empty dependencies file for graphulo_util.
# This may be replaced when dependencies are built.
