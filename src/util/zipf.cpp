#include "util/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace graphulo::util {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be >= 1");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(Xoshiro256& rng) const {
  const double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t rank) const {
  if (rank >= cdf_.size()) throw std::out_of_range("ZipfSampler::pmf");
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace graphulo::util
