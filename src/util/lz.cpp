#include "util/lz.hpp"

#include <cstdint>
#include <cstring>
#include <vector>

namespace graphulo::util {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr std::size_t kHashBits = 13;
constexpr std::size_t kHashSize = 1u << kHashBits;

std::uint32_t load32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint32_t hash4(std::uint32_t v) {
  // Fibonacci hashing of the next 4 bytes.
  return (v * 2654435761u) >> (32 - kHashBits);
}

void put_length(std::string& out, std::size_t len) {
  while (len >= 255) {
    out.push_back(static_cast<char>(0xff));
    len -= 255;
  }
  out.push_back(static_cast<char>(len));
}

void emit_sequence(std::string& out, const char* lit, std::size_t lit_len,
                   std::size_t match_len, std::size_t offset) {
  const std::size_t lit_nib = lit_len < 15 ? lit_len : 15;
  const std::size_t match_code = match_len == 0 ? 0 : match_len - kMinMatch;
  const std::size_t match_nib = match_code < 15 ? match_code : 15;
  out.push_back(static_cast<char>((lit_nib << 4) | match_nib));
  if (lit_nib == 15) put_length(out, lit_len - 15);
  out.append(lit, lit_len);
  if (match_len == 0) return;  // final literal-only sequence
  const auto off16 = static_cast<std::uint16_t>(offset);
  out.push_back(static_cast<char>(off16 & 0xff));
  out.push_back(static_cast<char>(off16 >> 8));
  if (match_nib == 15) put_length(out, match_code - 15);
}

}  // namespace

std::string lz_compress(std::string_view in) {
  std::string out;
  out.reserve(in.size() / 2 + 16);
  const char* base = in.data();
  const std::size_t n = in.size();
  if (n < kMinMatch + 1) {
    emit_sequence(out, base, n, 0, 0);
    return out;
  }
  std::vector<std::uint32_t> table(kHashSize, 0);  // 0 = empty (pos + 1)
  std::size_t pos = 0;
  std::size_t anchor = 0;  // start of the pending literal run
  // Leave room so load32 never reads past the end.
  const std::size_t match_limit = n - kMinMatch;
  while (pos <= match_limit) {
    const std::uint32_t cur = load32(base + pos);
    const std::uint32_t slot = hash4(cur);
    const std::uint32_t cand_plus1 = table[slot];
    table[slot] = static_cast<std::uint32_t>(pos + 1);
    if (cand_plus1 == 0) {
      ++pos;
      continue;
    }
    const std::size_t cand = cand_plus1 - 1;
    if (pos - cand > kMaxOffset || load32(base + cand) != cur) {
      ++pos;
      continue;
    }
    // Extend the match forward.
    std::size_t len = kMinMatch;
    while (pos + len < n && base[cand + len] == base[pos + len]) ++len;
    emit_sequence(out, base + anchor, pos - anchor, len, pos - cand);
    pos += len;
    anchor = pos;
  }
  emit_sequence(out, base + anchor, n - anchor, 0, 0);
  return out;
}

bool lz_decompress(std::string_view in, std::string& out,
                   std::size_t expected_size) {
  out.clear();
  out.reserve(expected_size);
  const char* p = in.data();
  const char* end = p + in.size();
  auto read_length = [&](std::size_t base_len) -> std::ptrdiff_t {
    std::size_t len = base_len;
    if (base_len == 15) {
      std::uint8_t b;
      do {
        if (p == end) return -1;
        b = static_cast<std::uint8_t>(*p++);
        len += b;
      } while (b == 255);
    }
    return static_cast<std::ptrdiff_t>(len);
  };
  while (p < end) {
    const auto token = static_cast<std::uint8_t>(*p++);
    const auto lit_len = read_length(token >> 4);
    if (lit_len < 0) return false;
    if (end - p < lit_len) return false;
    if (out.size() + static_cast<std::size_t>(lit_len) > expected_size) {
      return false;
    }
    out.append(p, static_cast<std::size_t>(lit_len));
    p += lit_len;
    if (p == end) {
      if ((token & 0x0f) != 0) return false;  // match promised, absent
      break;
    }
    if (end - p < 2) return false;
    const std::size_t offset =
        static_cast<std::uint8_t>(p[0]) |
        (static_cast<std::size_t>(static_cast<std::uint8_t>(p[1])) << 8);
    p += 2;
    const auto match_code = read_length(token & 0x0f);
    if (match_code < 0) return false;
    const std::size_t match_len =
        static_cast<std::size_t>(match_code) + kMinMatch;
    if (offset == 0 || offset > out.size()) return false;
    if (out.size() + match_len > expected_size) return false;
    // Byte-at-a-time copy: overlapping matches (offset < length) must
    // re-read freshly written bytes, which is how runs are encoded.
    std::size_t src = out.size() - offset;
    for (std::size_t i = 0; i < match_len; ++i) out.push_back(out[src + i]);
  }
  return out.size() == expected_size;
}

}  // namespace graphulo::util
