#pragma once
// Summary statistics over benchmark samples.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace graphulo::util {

/// Five-number-style summary of a sample of doubles.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stdev = 0.0;  // sample standard deviation (n-1)
  double min = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Computes a Summary. An empty sample yields an all-zero Summary.
Summary summarize(std::span<const double> samples);

/// Linear-interpolated percentile, q in [0, 1]. Sample must be non-empty.
double percentile(std::span<const double> samples, double q);

/// Geometric mean; samples must all be positive.
double geomean(std::span<const double> samples);

/// Formats a throughput (ops/sec) with a human-readable suffix, e.g.
/// "3.2M/s".
std::string human_rate(double per_second);

/// Formats a byte count with a binary suffix, e.g. "1.5 MiB".
std::string human_bytes(double bytes);

}  // namespace graphulo::util
