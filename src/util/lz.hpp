#pragma once
// Small self-contained byte-oriented LZ codec (LZ4-style token stream:
// literal runs + 16-bit-offset back-references, greedy hash-table
// matcher). Used as the optional per-block general-purpose compressor
// behind RFile prefix encoding — the container ships no compression
// library, so the codec is local. Favors decode speed and zero
// dependencies over ratio; typical graph-table blocks (already
// prefix-compressed, so dominated by varints and short tails) still
// shed 20-50% when values repeat.
//
// Format, repeated sequences:
//   token byte: high nibble = literal length, low nibble = match
//               length - kMinMatch; nibble 15 extends with 255-run
//               length bytes (LZ4's scheme)
//   <literal bytes>
//   2-byte little-endian match offset (1..65535), absent in the final
//   sequence (a stream may end after literals with match nibble 0)
// Matches may overlap their output (offset < length), which encodes
// runs. Decompression is fully bounds-checked: malformed input returns
// false, never reads or writes out of bounds.

#include <cstddef>
#include <string>
#include <string_view>

namespace graphulo::util {

/// Compresses `in` (any bytes, any size). The output is never larger
/// than in.size() + in.size()/255 + 16 (incompressible data costs only
/// literal-run framing).
std::string lz_compress(std::string_view in);

/// Decompresses into `out` (cleared first; capacity is reused).
/// `expected_size` is the exact decompressed size recorded by the
/// caller's framing; returns false on malformed input or any size
/// mismatch.
bool lz_decompress(std::string_view in, std::string& out,
                   std::size_t expected_size);

}  // namespace graphulo::util
