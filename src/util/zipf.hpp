#pragma once
// Zipf-distributed sampling over ranks {0, ..., n-1} with exponent s:
// P(rank k) proportional to 1 / (k+1)^s.
//
// Used by the synthetic tweet generator (word frequencies within a topic
// follow a Zipf law, as natural-language corpora do) and by skewed
// database workloads in the ingest benchmarks. Sampling is O(log n) by
// binary search over the precomputed CDF.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace graphulo::util {

/// Samples ranks from a Zipf(s) distribution over n items.
class ZipfSampler {
 public:
  /// `n` must be >= 1; `s` is the skew exponent (s = 0 -> uniform).
  ZipfSampler(std::size_t n, double s);

  /// Draws one rank in [0, n).
  std::size_t sample(Xoshiro256& rng) const;

  /// Number of items.
  std::size_t size() const noexcept { return cdf_.size(); }

  /// Probability mass of a given rank.
  double pmf(std::size_t rank) const;

 private:
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k)
};

}  // namespace graphulo::util
