#include "util/table_printer.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

namespace graphulo::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::to_string(const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  if (!title.empty()) out << "=== " << title << " ===\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << std::string(width[c] - row[c].size(), ' ');
      out << (c + 1 < row.size() ? "  " : "");
    }
    out << '\n';
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(width[c], '-') << (c + 1 < header_.size() ? "  " : "");
  }
  out << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TablePrinter::print(const std::string& title) const {
  std::cout << to_string(title) << std::flush;
}

}  // namespace graphulo::util
