#include "util/csv.hpp"

#include <stdexcept>

namespace graphulo::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  add_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  for (std::size_t c = 0; c < columns_; ++c) {
    if (c) out_ << ',';
    if (c < row.size()) out_ << escape(row[c]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string quoted = "\"";
  for (char ch : field) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

}  // namespace graphulo::util
