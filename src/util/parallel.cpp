#include "util/parallel.hpp"

#include <algorithm>
#include <exception>

namespace graphulo::util {

void parallel_for_blocked(std::size_t begin, std::size_t end,
                          const std::function<void(std::size_t, std::size_t)>& body,
                          ParallelOptions opts) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t grain = opts.grain == 0 ? 1 : opts.grain;
  ThreadPool& pool = opts.pool ? *opts.pool : ThreadPool::global();

  // One block, or nothing to gain from parallelism: run inline.
  if (n <= grain || pool.size() <= 1) {
    body(begin, end);
    return;
  }

  const std::size_t max_blocks = pool.size() * 4;
  const std::size_t block =
      std::max(grain, (n + max_blocks - 1) / max_blocks);

  std::vector<std::future<void>> futures;
  for (std::size_t lo = begin; lo < end; lo += block) {
    const std::size_t hi = std::min(end, lo + block);
    futures.push_back(pool.submit([&body, lo, hi] { body(lo, hi); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace graphulo::util
