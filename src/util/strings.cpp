#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace graphulo::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      fields.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::string join(const std::vector<std::string>& parts, char sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string zero_pad(std::uint64_t value, int width) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%0*llu", width,
                static_cast<unsigned long long>(value));
  return buf;
}

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

}  // namespace graphulo::util
