#pragma once
// Minimal CSV emission for experiment outputs. Every figure bench can
// optionally dump its series as CSV next to the console table so results
// are machine-readable.

#include <fstream>
#include <string>
#include <vector>

namespace graphulo::util {

/// Streams rows to a CSV file; fields containing commas, quotes, or
/// newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on I/O
  /// failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Writes one data row. Short rows are padded with empty fields.
  void add_row(const std::vector<std::string>& row);

  /// Escapes a single field per RFC 4180.
  static std::string escape(const std::string& field);

 private:
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace graphulo::util
