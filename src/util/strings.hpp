#pragma once
// Small string helpers shared by the D4M schema code (which lives and
// dies by string keys) and the NoSQL key encoding.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace graphulo::util {

/// Splits `s` on `sep`; empty fields are preserved ("a||b" -> 3 fields).
std::vector<std::string> split(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, char sep);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Zero-pads a non-negative integer to `width` digits, e.g. (7, 4) ->
/// "0007". Used to build lexicographically sortable numeric keys, the
/// standard D4M trick for keeping numeric ordering inside a string-sorted
/// store.
std::string zero_pad(std::uint64_t value, int width);

/// Lower-cases ASCII characters in place and returns the string.
std::string to_lower(std::string s);

}  // namespace graphulo::util
