#include "util/threadpool.hpp"

#include <algorithm>

namespace graphulo::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop();
    }
    job();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace graphulo::util
