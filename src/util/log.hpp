#pragma once
// Leveled logging to stderr. Benches run at Warn by default so their
// stdout tables stay clean; tests can raise verbosity via
// GRAPHULO_LOG=debug.

#include <sstream>
#include <string>

namespace graphulo::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are discarded.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Parses "debug"/"info"/"warn"/"error" (case-insensitive); unknown
/// strings map to kInfo.
LogLevel parse_log_level(const std::string& name) noexcept;

/// Emits one line: "[LEVEL] message\n" to stderr (thread-safe).
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  template <class T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace graphulo::util

#define GRAPHULO_LOG(level)                                              \
  if (static_cast<int>(level) < static_cast<int>(::graphulo::util::log_level())) \
    ;                                                                    \
  else                                                                   \
    ::graphulo::util::detail::LogLine(level)

#define GRAPHULO_DEBUG GRAPHULO_LOG(::graphulo::util::LogLevel::kDebug)
#define GRAPHULO_INFO GRAPHULO_LOG(::graphulo::util::LogLevel::kInfo)
#define GRAPHULO_WARN GRAPHULO_LOG(::graphulo::util::LogLevel::kWarn)
#define GRAPHULO_ERROR GRAPHULO_LOG(::graphulo::util::LogLevel::kError)
