#pragma once
// Leveled logging to stderr. Benches run at Warn by default so their
// stdout tables stay clean; tests can raise verbosity via
// GRAPHULO_LOG=debug.
//
// Every line carries an ISO-8601 UTC timestamp and a dense per-thread
// id. Two renderings, selected with GRAPHULO_LOG_FORMAT (or
// set_log_format):
//
//   plain (default):  2026-08-06T12:34:56.789Z [WARN] (tid 0) message
//   kv:               ts=2026-08-06T12:34:56.789Z level=warn tid=0 msg="message"
//
// Unrecognized GRAPHULO_LOG / GRAPHULO_LOG_FORMAT values warn once on
// stderr and fall back to the default instead of being silently
// remapped.

#include <sstream>
#include <string>

namespace graphulo::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Line rendering: human-readable (kPlain) or key=value (kKv).
enum class LogFormat { kPlain = 0, kKv = 1 };

/// Global threshold; messages below it are discarded.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Global line format (see the header comment).
LogFormat log_format() noexcept;
void set_log_format(LogFormat format) noexcept;

/// Parses "debug"/"info"/"warn"/"error" (case-insensitive) into `out`.
/// Returns false (out untouched) for anything else.
bool try_parse_log_level(const std::string& name, LogLevel& out) noexcept;

/// Parses "plain"/"kv" (case-insensitive) into `out`; false otherwise.
bool try_parse_log_format(const std::string& name, LogFormat& out) noexcept;

/// Parses "debug"/"info"/"warn"/"error" (case-insensitive); unknown
/// strings map to kInfo. Prefer try_parse_log_level when the caller
/// needs to distinguish bad input (the env-var path does, to warn).
LogLevel parse_log_level(const std::string& name) noexcept;

/// Renders one line (no trailing newline) in `format`: timestamp,
/// level, thread id, message. Exposed so tests can check the rendering
/// without capturing stderr.
std::string format_log_line(LogLevel level, const std::string& message,
                            LogFormat format);

/// Emits one line for `message` to stderr in the global format
/// (thread-safe).
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  template <class T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace graphulo::util

#define GRAPHULO_LOG(level)                                              \
  if (static_cast<int>(level) < static_cast<int>(::graphulo::util::log_level())) \
    ;                                                                    \
  else                                                                   \
    ::graphulo::util::detail::LogLine(level)

#define GRAPHULO_DEBUG GRAPHULO_LOG(::graphulo::util::LogLevel::kDebug)
#define GRAPHULO_INFO GRAPHULO_LOG(::graphulo::util::LogLevel::kInfo)
#define GRAPHULO_WARN GRAPHULO_LOG(::graphulo::util::LogLevel::kWarn)
#define GRAPHULO_ERROR GRAPHULO_LOG(::graphulo::util::LogLevel::kError)
