#pragma once
// Deterministic pseudo-random number generation.
//
// All stochastic pieces of the library (graph generators, NMF
// initialization, benchmark workloads) draw from these generators so that
// every experiment is reproducible from a single seed. Xoshiro256** is
// the workhorse; SplitMix64 seeds it and provides cheap stateless
// hashing of indices.

#include <array>
#include <cstdint>
#include <limits>

namespace graphulo::util {

/// SplitMix64: tiny, fast generator used for seeding and index hashing.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 pseudo-random bits.
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless hash of a 64-bit value (one SplitMix64 step). Useful for
/// deterministic per-element randomness without carrying generator state.
std::uint64_t hash64(std::uint64_t x) noexcept;

/// Xoshiro256**: fast, high-quality 64-bit generator
/// (Blackman & Vigna). Satisfies UniformRandomBitGenerator so it can be
/// plugged into <random> distributions as well.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64 of `seed`.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  /// Next 64 pseudo-random bits.
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). n must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t uniform_int(std::uint64_t n) noexcept;

  /// Standard normal variate (Marsaglia polar method).
  double normal() noexcept;

  /// Jump function: advances the state by 2^128 steps; used to carve
  /// independent streams for parallel workers.
  void jump() noexcept;

 private:
  std::array<std::uint64_t, 4> s_;
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace graphulo::util
