#pragma once
// parallel_for / parallel_reduce over an index range, built on ThreadPool.
//
// The iteration space [begin, end) is split into contiguous blocks of at
// least `grain` indices, one task per block. With a single hardware
// thread this degrades to a plain loop with no task overhead.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <vector>

#include "util/threadpool.hpp"

namespace graphulo::util {

/// Options controlling a parallel loop.
struct ParallelOptions {
  /// Minimum indices per task; blocks smaller than this run inline.
  std::size_t grain = 1024;
  /// Pool to run on; nullptr selects ThreadPool::global().
  ThreadPool* pool = nullptr;
};

/// Invokes `body(lo, hi)` over disjoint sub-ranges covering [begin, end).
/// Blocks until every sub-range completes. Exceptions from body tasks are
/// rethrown on the calling thread (first one wins).
void parallel_for_blocked(std::size_t begin, std::size_t end,
                          const std::function<void(std::size_t, std::size_t)>& body,
                          ParallelOptions opts = {});

/// Invokes `body(i)` for each i in [begin, end), parallelized in blocks.
template <class Body>
void parallel_for(std::size_t begin, std::size_t end, Body&& body,
                  ParallelOptions opts = {}) {
  parallel_for_blocked(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      opts);
}

/// Parallel reduction: `partial(lo, hi)` computes a block-local value,
/// `combine(a, b)` folds block results in block order.
template <class T, class Partial, class Combine>
T parallel_reduce(std::size_t begin, std::size_t end, T init, Partial&& partial,
                  Combine&& combine, ParallelOptions opts = {}) {
  if (begin >= end) return init;
  std::vector<std::pair<std::size_t, std::size_t>> blocks;
  const std::size_t n = end - begin;
  const std::size_t grain = opts.grain == 0 ? 1 : opts.grain;
  for (std::size_t lo = begin; lo < end; lo += grain) {
    blocks.emplace_back(lo, std::min(end, lo + grain));
  }
  if (blocks.size() == 1) {
    return combine(init, partial(begin, end));
  }
  ThreadPool& pool = opts.pool ? *opts.pool : ThreadPool::global();
  std::vector<std::future<T>> futures;
  futures.reserve(blocks.size());
  for (auto [lo, hi] : blocks) {
    futures.push_back(pool.submit([&partial, lo, hi] { return partial(lo, hi); }));
  }
  T acc = init;
  for (auto& f : futures) acc = combine(acc, f.get());
  (void)n;
  return acc;
}

}  // namespace graphulo::util
