#include "util/checksum.hpp"

#include <array>

namespace graphulo::util {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const char* data, std::size_t len) noexcept {
  static const auto table = make_crc_table();
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ static_cast<unsigned char>(data[i])) & 0xffu] ^
          (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace graphulo::util
