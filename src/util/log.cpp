#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

#include "util/strings.hpp"

namespace graphulo::util {

namespace {

// Env-init warnings print with raw fprintf, not log_message: they run
// inside the magic statics log_message itself reads, and a bad value
// should be reported exactly once regardless of threshold.

std::atomic<int>& level_storage() {
  static std::atomic<int> level = [] {
    if (const char* env = std::getenv("GRAPHULO_LOG")) {
      LogLevel parsed;
      if (try_parse_log_level(env, parsed)) return static_cast<int>(parsed);
      std::fprintf(stderr,
                   "[WARN] GRAPHULO_LOG=%s is not a log level "
                   "(debug|info|warn|error); keeping the default (warn)\n",
                   env);
    }
    return static_cast<int>(LogLevel::kWarn);
  }();
  return level;
}

std::atomic<int>& format_storage() {
  static std::atomic<int> format = [] {
    if (const char* env = std::getenv("GRAPHULO_LOG_FORMAT")) {
      LogFormat parsed;
      if (try_parse_log_format(env, parsed)) return static_cast<int>(parsed);
      std::fprintf(stderr,
                   "[WARN] GRAPHULO_LOG_FORMAT=%s is not a log format "
                   "(plain|kv); keeping the default (plain)\n",
                   env);
    }
    return static_cast<int>(LogFormat::kPlain);
  }();
  return format;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

const char* level_name_lower(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

/// Dense per-thread index, assigned on first log from a thread.
std::size_t log_thread_id() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// "2026-08-06T12:34:56.789Z" — ISO-8601 UTC with milliseconds.
std::string iso8601_now() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

/// Escapes `"` and `\` for the kv rendering's quoted msg value.
std::string kv_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) noexcept {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogFormat log_format() noexcept {
  return static_cast<LogFormat>(
      format_storage().load(std::memory_order_relaxed));
}

void set_log_format(LogFormat format) noexcept {
  format_storage().store(static_cast<int>(format), std::memory_order_relaxed);
}

bool try_parse_log_level(const std::string& name, LogLevel& out) noexcept {
  const std::string lower = to_lower(name);
  if (lower == "debug") out = LogLevel::kDebug;
  else if (lower == "info") out = LogLevel::kInfo;
  else if (lower == "warn" || lower == "warning") out = LogLevel::kWarn;
  else if (lower == "error") out = LogLevel::kError;
  else return false;
  return true;
}

bool try_parse_log_format(const std::string& name, LogFormat& out) noexcept {
  const std::string lower = to_lower(name);
  if (lower == "plain") out = LogFormat::kPlain;
  else if (lower == "kv") out = LogFormat::kKv;
  else return false;
  return true;
}

LogLevel parse_log_level(const std::string& name) noexcept {
  LogLevel level = LogLevel::kInfo;
  try_parse_log_level(name, level);
  return level;
}

std::string format_log_line(LogLevel level, const std::string& message,
                            LogFormat format) {
  const std::string ts = iso8601_now();
  const std::size_t tid = log_thread_id();
  if (format == LogFormat::kKv) {
    return "ts=" + ts + " level=" + level_name_lower(level) +
           " tid=" + std::to_string(tid) + " msg=\"" + kv_escape(message) +
           "\"";
  }
  return ts + " [" + level_name(level) + "] (tid " + std::to_string(tid) +
         ") " + message;
}

void log_message(LogLevel level, const std::string& message) {
  const std::string line = format_log_line(level, message, log_format());
  static std::mutex mutex;
  std::lock_guard lock(mutex);
  std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace graphulo::util
