#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "util/strings.hpp"

namespace graphulo::util {

namespace {
std::atomic<int>& level_storage() {
  static std::atomic<int> level = [] {
    if (const char* env = std::getenv("GRAPHULO_LOG")) {
      return static_cast<int>(parse_log_level(env));
    }
    return static_cast<int>(LogLevel::kWarn);
  }();
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) noexcept {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& name) noexcept {
  const std::string lower = to_lower(name);
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  return LogLevel::kInfo;
}

void log_message(LogLevel level, const std::string& message) {
  static std::mutex mutex;
  std::lock_guard lock(mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace graphulo::util
