#pragma once
// Aligned console tables for the experiment harnesses. The figure/table
// benches print the same rows/series the paper reports; this gives them
// a consistent, readable rendering.

#include <cstddef>
#include <string>
#include <vector>

namespace graphulo::util {

/// Collects rows of string cells and renders them with aligned columns,
/// a header rule, and an optional title, e.g.
///
///   === Table I: algorithm class coverage ===
///   class                  algorithm     kernels            time_ms
///   ---------------------  ------------  -----------------  -------
///   Exploration&Traversal  BFS           SpMSpV,Apply       12.1
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; it may have fewer cells than the header (padded).
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` digits.
  static std::string fmt(double v, int precision = 3);

  /// Renders the table to a string.
  std::string to_string(const std::string& title = "") const;

  /// Renders and writes to stdout.
  void print(const std::string& title = "") const;

  /// Number of data rows so far.
  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace graphulo::util
