#include "util/fault.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>

#include "util/rng.hpp"

namespace graphulo::util::fault {

namespace {

struct SiteState {
  FaultSpec spec;
  bool armed = false;
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
  SplitMix64 rng{0};
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, SiteState> sites;
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
};

Registry& registry() {
  static Registry r;
  return r;
}

// Armed-site count; point() bails on zero without touching the mutex.
std::atomic<std::size_t> g_armed{0};

std::uint64_t site_stream_seed(std::uint64_t seed, const std::string& site) {
  std::uint64_t h = seed;
  for (const char c : site) {
    h = hash64(h ^ static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  return h;
}

}  // namespace

const std::vector<std::string>& all_sites() {
  static const std::vector<std::string> kAll = {
      sites::kWalAppend,       sites::kWalSync,       sites::kWalCommit,
      sites::kRFileWrite,      sites::kRFileRead,     sites::kRFileSeek,
      sites::kMemtableFlush,   sites::kTabletCompact, sites::kInstanceApply,
      sites::kBatchWriterFlush, sites::kTableMultWorker,
      sites::kCheckpointWrite, sites::kCheckpointLoad,
      sites::kManifestAppend,  sites::kManifestInstall,
      sites::kRpcSend,         sites::kRpcRecv,       sites::kRpcAccept};
  return kAll;
}

void seed(std::uint64_t s) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  r.seed = s;
  for (auto& [name, state] : r.sites) {
    state.rng = SplitMix64(site_stream_seed(s, name));
  }
}

void arm(const std::string& site, FaultSpec spec) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  SiteState& state = r.sites[site];
  if (!state.armed) g_armed.fetch_add(1, std::memory_order_relaxed);
  std::sort(spec.fire_on_hits.begin(), spec.fire_on_hits.end());
  state.spec = std::move(spec);
  state.armed = true;
  state.hits = 0;
  state.fires = 0;
  state.rng = SplitMix64(site_stream_seed(r.seed, site));
}

void disarm(const std::string& site) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  auto it = r.sites.find(site);
  if (it != r.sites.end() && it->second.armed) {
    it->second.armed = false;
    g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void reset() {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  for (auto& [name, state] : r.sites) {
    if (state.armed) g_armed.fetch_sub(1, std::memory_order_relaxed);
    state = SiteState{};
  }
  r.sites.clear();
}

bool enabled() noexcept {
  return g_armed.load(std::memory_order_relaxed) > 0;
}

SiteStats stats(const std::string& site) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  auto it = r.sites.find(site);
  if (it == r.sites.end()) return {};
  return {it->second.hits, it->second.fires};
}

std::uint64_t total_fires() {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  std::uint64_t total = 0;
  for (const auto& [name, state] : r.sites) total += state.fires;
  return total;
}

void point(const char* site) {
  if (!enabled()) return;
  bool fire = false;
  bool fatal = false;
  std::uint64_t hit = 0;
  {
    Registry& r = registry();
    std::lock_guard lock(r.mutex);
    auto it = r.sites.find(site);
    if (it == r.sites.end() || !it->second.armed) return;
    SiteState& state = it->second;
    hit = ++state.hits;
    if (state.fires < state.spec.max_fires) {
      fire = std::binary_search(state.spec.fire_on_hits.begin(),
                                state.spec.fire_on_hits.end(), hit);
      if (!fire && state.spec.probability > 0.0) {
        const double u =
            static_cast<double>(state.rng.next() >> 11) * 0x1.0p-53;
        fire = u < state.spec.probability;
      }
      if (fire) {
        ++state.fires;
        fatal = state.spec.fatal;
      }
    }
  }
  if (fire) {
    const std::string what = "injected fault at " + std::string(site) +
                             " (hit #" + std::to_string(hit) + ")";
    if (fatal) throw FatalError(what);
    throw TransientError(what);
  }
}

}  // namespace graphulo::util::fault
