#pragma once
// Wall-clock timing for benchmarks and the experiment harnesses.

#include <chrono>
#include <cstdint>

namespace graphulo::util {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double millis() const { return seconds() * 1e3; }

  /// Microseconds elapsed.
  double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace graphulo::util
