#pragma once
// Fixed-size worker pool used by the parallel GraphBLAS kernels and the
// NoSQL batch scanner. Tasks are type-erased std::function<void()> jobs;
// submit() returns a std::future for the task's result.
//
// The pool is deliberately simple (single mutex + condition variable).
// Kernel-level parallelism in this library is coarse-grained (one task
// per row block / per tablet), so queue contention is negligible.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace graphulo::util {

/// A fixed-size pool of worker threads executing submitted jobs FIFO.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers. `num_threads == 0` is
  /// clamped to 1 so that submit() always makes progress.
  explicit ThreadPool(std::size_t num_threads);

  /// Joins all workers. Pending tasks are completed before destruction.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn(args...)` and returns a future for its result.
  template <class F, class... Args>
  auto submit(F&& fn, Args&&... args)
      -> std::future<std::invoke_result_t<F, Args...>> {
    using R = std::invoke_result_t<F, Args...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [f = std::forward<F>(fn),
         ... a = std::forward<Args>(args)]() mutable { return f(a...); });
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool::submit on stopped pool");
      }
      queue_.emplace([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Number of worker threads.
  std::size_t size() const noexcept { return workers_.size(); }

  /// A process-wide pool sized to the hardware concurrency. Kernels that
  /// accept no explicit pool use this one.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace graphulo::util
