#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace graphulo::util {

double percentile(std::span<const double> samples, double q) {
  if (samples.empty()) throw std::invalid_argument("percentile: empty sample");
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> samples) {
  Summary s;
  if (samples.empty()) return s;
  s.count = samples.size();
  double sum = 0.0;
  s.min = samples[0];
  s.max = samples[0];
  for (double x : samples) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(s.count);
  if (s.count > 1) {
    double ss = 0.0;
    for (double x : samples) ss += (x - s.mean) * (x - s.mean);
    s.stdev = std::sqrt(ss / static_cast<double>(s.count - 1));
  }
  s.p50 = percentile(samples, 0.50);
  s.p95 = percentile(samples, 0.95);
  s.p99 = percentile(samples, 0.99);
  return s;
}

double geomean(std::span<const double> samples) {
  if (samples.empty()) throw std::invalid_argument("geomean: empty sample");
  double log_sum = 0.0;
  for (double x : samples) {
    if (x <= 0.0) throw std::invalid_argument("geomean: non-positive sample");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(samples.size()));
}

namespace {
std::string with_suffix(double value, const char* const* suffixes,
                        std::size_t n_suffixes, double base) {
  std::size_t idx = 0;
  while (value >= base && idx + 1 < n_suffixes) {
    value /= base;
    ++idx;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f%s", value, suffixes[idx]);
  return buf;
}
}  // namespace

std::string human_rate(double per_second) {
  static const char* kSuffix[] = {"/s", "K/s", "M/s", "G/s"};
  return with_suffix(per_second, kSuffix, 4, 1000.0);
}

std::string human_bytes(double bytes) {
  static const char* kSuffix[] = {" B", " KiB", " MiB", " GiB", " TiB"};
  return with_suffix(bytes, kSuffix, 5, 1024.0);
}

}  // namespace graphulo::util
