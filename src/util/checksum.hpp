#pragma once
// CRC32 (IEEE 802.3, reflected) integrity checksum shared by the
// on-disk formats (RFile, WAL checkpoint).

#include <cstddef>
#include <cstdint>

namespace graphulo::util {

/// CRC32 of `len` bytes at `data`.
std::uint32_t crc32(const char* data, std::size_t len) noexcept;

}  // namespace graphulo::util
