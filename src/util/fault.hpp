#pragma once
// Deterministic fault injection + the failure taxonomy and retry policy
// the storage/compute layers use to survive injected (and real) faults.
//
// Injection model: code marks named *sites* with fault::point("name").
// A site does nothing until armed. Arming attaches a trigger — a seeded
// per-site probability, an explicit schedule of 1-based hit numbers, or
// both — and from then on every passage through the site increments its
// hit counter and may throw. Fired faults throw TransientError by
// default (the retryable class) or FatalError when the spec says so.
// All state is process-global and thread-safe; the disarmed fast path
// is a single relaxed atomic load.
//
// Determinism: scheduled triggers fire on exact hit numbers, so a
// single-threaded sequence of operations faults at exactly the same
// points on every run. Probabilistic triggers draw from a per-site
// SplitMix64 stream seeded from the global seed + the site name, so
// they are reproducible too (up to thread interleaving of the hit
// order, which retry-based recovery must tolerate anyway).

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/log.hpp"

namespace graphulo::util {

/// A failure the caller may retry: the operation had no durable effect
/// (injection sites sit before their operation's side effects) and a
/// later attempt can succeed.
class TransientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A failure retrying cannot fix (corruption, programming error,
/// injected "disk died"). Propagates through retry loops untouched.
class FatalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Bounded exponential backoff for retrying TransientError.
struct RetryPolicy {
  int max_attempts = 5;  ///< total tries (>= 1)
  std::chrono::microseconds initial_backoff{100};
  double multiplier = 2.0;
  std::chrono::microseconds max_backoff{5000};
};

/// Runs `fn`, retrying on TransientError with exponential backoff up to
/// `policy.max_attempts` total attempts. The final failure is rethrown;
/// FatalError and other exceptions propagate immediately. `what` labels
/// the operation in retry logs.
template <class F>
auto with_retries(const char* what, const RetryPolicy& policy, F&& fn)
    -> decltype(fn()) {
  auto backoff = policy.initial_backoff;
  for (int attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const TransientError& e) {
      if (attempt >= policy.max_attempts) {
        GRAPHULO_WARN << what << ": giving up after " << attempt
                      << " attempts: " << e.what();
        throw;
      }
      GRAPHULO_DEBUG << what << ": transient failure (attempt " << attempt
                     << "/" << policy.max_attempts << "), retrying: "
                     << e.what();
      if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
      backoff = std::min(
          policy.max_backoff,
          std::chrono::microseconds(static_cast<std::int64_t>(
              static_cast<double>(backoff.count()) * policy.multiplier)));
    }
  }
}

namespace fault {

// Every injection site threaded through the system, one constant per
// site so tests can enumerate them. point() accepts arbitrary names —
// this list is the catalog of what the tree currently marks.
namespace sites {
inline constexpr const char* kWalAppend = "wal.append";
inline constexpr const char* kWalSync = "wal.sync";
inline constexpr const char* kWalCommit = "wal.commit";
inline constexpr const char* kRFileWrite = "rfile.write";
inline constexpr const char* kRFileRead = "rfile.read";
inline constexpr const char* kRFileSeek = "rfile.seek";
inline constexpr const char* kMemtableFlush = "memtable.flush";
inline constexpr const char* kTabletCompact = "tablet.compact";
inline constexpr const char* kInstanceApply = "instance.apply";
inline constexpr const char* kBatchWriterFlush = "batch_writer.flush";
inline constexpr const char* kTableMultWorker = "tablemult.worker";
inline constexpr const char* kCheckpointWrite = "checkpoint.write";
inline constexpr const char* kCheckpointLoad = "checkpoint.load";
inline constexpr const char* kManifestAppend = "manifest.append";
inline constexpr const char* kManifestInstall = "manifest.install";
inline constexpr const char* kRpcSend = "rpc.send";
inline constexpr const char* kRpcRecv = "rpc.recv";
inline constexpr const char* kRpcAccept = "rpc.accept";
}  // namespace sites

/// All catalogued site names (the constants above).
const std::vector<std::string>& all_sites();

/// How an armed site decides to fire.
struct FaultSpec {
  /// Fires with this probability on every hit (seeded, per-site stream).
  double probability = 0.0;
  /// Fires on exactly these 1-based hit numbers (sorted or not).
  std::vector<std::uint64_t> fire_on_hits;
  /// Stops firing after this many fires (schedule + probability
  /// combined); the site stays armed and keeps counting hits.
  std::uint64_t max_fires = UINT64_MAX;
  /// Throw FatalError instead of TransientError.
  bool fatal = false;
};

/// Counters for one site since the last reset().
struct SiteStats {
  std::uint64_t hits = 0;   ///< times point() was reached while enabled
  std::uint64_t fires = 0;  ///< times a fault was thrown
};

/// Seeds the probabilistic trigger streams (also resets them).
void seed(std::uint64_t s);

/// Arms `site` with `spec` (replacing any previous spec) and resets its
/// counters.
void arm(const std::string& site, FaultSpec spec);

/// Disarms one site (its counters survive until reset()).
void disarm(const std::string& site);

/// Disarms every site and clears all counters. Tests call this in
/// teardown so injection never leaks across tests.
void reset();

/// True while at least one site is armed. Counters only accumulate
/// while enabled — the disarmed fast path does no bookkeeping.
bool enabled() noexcept;

/// Counters for `site` (zeros if never hit).
SiteStats stats(const std::string& site);

/// Total fires across all sites since the last reset().
std::uint64_t total_fires();

/// Marks an injection site: increments the hit counter and throws
/// TransientError/FatalError when the armed trigger fires. No-op (one
/// atomic load) while nothing is armed.
void point(const char* site);

}  // namespace fault
}  // namespace graphulo::util
