#include "util/rng.hpp"

#include <cmath>

namespace graphulo::util {

std::uint64_t hash64(std::uint64_t x) noexcept {
  return SplitMix64(x).next();
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Xoshiro256::uniform_int(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t threshold = -n % n;
    while (l < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::normal() noexcept {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return u * factor;
}

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next();
    }
  }
  s_ = {s0, s1, s2, s3};
}

}  // namespace graphulo::util
