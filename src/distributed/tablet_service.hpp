#pragma once
// TabletService: the verb semantics of one tablet-server process. The
// RPC transport (rpc::RpcServer) owns framing, deadlines and
// exception→status mapping; this class owns what each verb MEANS
// against the wrapped Instance:
//
//   kWriteBatch    exactly-once bulk apply — each (writer_id, table)
//                  stream carries sequence numbers and the service
//                  keeps a per-stream high-water mark, so a batch
//                  resent after a lost ack skips its already-applied
//                  prefix. Admission-charged per mutation; the WAL is
//                  synced before the ack (durable acknowledgements).
//   kScanOpen /    leased, resumable scans: open pins an MVCC snapshot,
//   kScanContinue/ takes an admission scan slot (RAII ticket, held for
//   kScanClose     the lease's life), and returns a lease id; continue
//                  drains the next batch of cells and refreshes the
//                  lease TTL; a lease idle past its TTL is reaped by a
//                  background sweeper and a later continue answers
//                  kNoSuchLease — the client re-opens from its last
//                  delivered key (ScanOpenRequest::resume_after).
//   kTabletLookup  the static tablet map: this server's index, the
//                  cluster size, and the interior row boundaries.
//   kEnsureTable / table control, broadcast by clients to every server
//   kCompactTable  (each server holds its row slice of every table).
//   kStatus        counters for tests and the bench harness.
//
// Cooperative deadlines: the propagated per-call deadline is checked
// between mutations of a write batch and around scan batch fills;
// overruns throw nosql::DeadlineExceeded (wire status kDeadline).
//
// Thread-safety: handle() is called concurrently from the server's
// per-connection threads. The Instance's entry points are thread-safe;
// the service's own state (dedup high-water marks, the lease table,
// per-table admission sessions) is mutex-protected. A lease is checked
// OUT of the table while a continue drains it, so concurrent continues
// on different leases never serialize on one scan.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "distributed/proto.hpp"
#include "nosql/instance.hpp"
#include "rpc/server.hpp"

namespace graphulo::distributed {

struct TabletServiceOptions {
  /// A lease not continued within this window is reaped; the client
  /// transparently re-opens with resume_after.
  std::chrono::milliseconds lease_ttl{30000};
  /// Default cells per kScanContinue when the open request passes 0.
  std::uint32_t scan_batch_cells = 2048;
  /// Sync the WAL before acking a write batch (durable acks). Leave on
  /// except in benchmarks that measure the difference.
  bool sync_wal_on_write = true;
};

class TabletService {
 public:
  /// `boundaries` are the cluster's interior row boundaries (sorted,
  /// server_count - 1 of them); this server owns rows in
  /// [boundaries[server_index - 1], boundaries[server_index]) with the
  /// outer sides unbounded.
  TabletService(nosql::Instance& db, std::vector<std::string> boundaries,
                std::uint32_t server_index, TabletServiceOptions options = {});
  ~TabletService();

  TabletService(const TabletService&) = delete;
  TabletService& operator=(const TabletService&) = delete;

  /// The rpc::RpcServer handler. Exceptions escape to the transport's
  /// status mapping (see rpc/server.hpp); statuses with no exception
  /// shape (kNoSuchTable) are returned directly.
  rpc::RpcServer::Response handle(
      rpc::Verb verb, const std::string& body,
      std::optional<std::chrono::steady_clock::time_point> deadline);

  /// Invoked whenever kEnsureTable actually creates a table, with the
  /// preset it used — the daemon persists these to its presets sidecar
  /// so recovery can recreate the config (iterator settings are code,
  /// not WAL records).
  using CreateHook =
      std::function<void(const std::string& table, const std::string& preset)>;
  void set_on_create(CreateHook hook) { on_create_ = std::move(hook); }

  /// The row range this server owns.
  nosql::Range owned_range() const;

  // Test hooks.
  std::size_t live_leases() const;
  void expire_leases_now();

 private:
  struct Lease {
    std::string table;
    std::shared_ptr<const nosql::Snapshot> snapshot;
    nosql::AdmissionController::ScanTicket ticket;
    nosql::IterPtr iter;                   ///< positioned; nullptr = drained
    std::uint32_t batch_cells = 0;
    std::chrono::steady_clock::time_point expires_at;
  };

  rpc::RpcServer::Response handle_write_batch(
      const std::string& body,
      std::optional<std::chrono::steady_clock::time_point> deadline);
  rpc::RpcServer::Response handle_scan_open(
      const std::string& body,
      std::optional<std::chrono::steady_clock::time_point> deadline);
  rpc::RpcServer::Response handle_scan_continue(
      const std::string& body,
      std::optional<std::chrono::steady_clock::time_point> deadline);
  rpc::RpcServer::Response handle_scan_close(const std::string& body);
  rpc::RpcServer::Response handle_tablet_lookup(const std::string& body);
  rpc::RpcServer::Response handle_ensure_table(const std::string& body);
  rpc::RpcServer::Response handle_compact_table(const std::string& body);
  rpc::RpcServer::Response handle_status();

  /// Shared admission session for `table` (created on first use).
  std::shared_ptr<nosql::AdmissionSession> write_session_for(
      const std::string& table);

  void sweep_loop();

  nosql::Instance& db_;
  std::vector<std::string> boundaries_;
  std::uint32_t server_index_;
  TabletServiceOptions options_;
  CreateHook on_create_;

  mutable std::mutex mutex_;  ///< guards leases_, dedup_, write_sessions_
  std::map<std::uint64_t, std::unique_ptr<Lease>> leases_;
  /// (writer_id + '\0' + table) -> next expected sequence number.
  std::map<std::string, std::uint64_t> dedup_;
  std::map<std::string, std::shared_ptr<nosql::AdmissionSession>>
      write_sessions_;
  std::atomic<std::uint64_t> next_lease_id_{1};

  std::atomic<std::uint64_t> writes_applied_{0};
  std::atomic<std::uint64_t> writes_skipped_{0};
  std::atomic<std::uint64_t> cells_scanned_{0};

  std::condition_variable sweep_cv_;
  bool stopping_ = false;  ///< guarded by mutex_
  std::thread sweeper_;
};

}  // namespace graphulo::distributed
