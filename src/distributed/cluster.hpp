#pragma once
// distributed::Cluster — the client library of the distributed mode.
//
// A Cluster is a static range-partitioned view of N tablet-server
// processes (graphulo_tsd daemons): server i owns rows in
// [boundaries[i-1], boundaries[i]) with the outer sides unbounded. It
// pools one connection per server (mutex-serialized — RpcClient is not
// thread-safe) and wraps control-plane calls in with_retries, so a
// dropped connection or a shed request retries exactly like a local
// transient fault.
//
// The two data surfaces implement the EXISTING process-local
// interfaces, which is what lets the TableMult kernel run unchanged
// against a fleet:
//
//   scan()    -> nosql::SortedKVIterator walking every owning server in
//               boundary order through leased, resumable remote scans.
//               A lease expiry or connection drop transparently
//               re-opens from the last delivered key.
//   writer()  -> nosql::MutationSink routing each mutation to the
//               owning server, with per-server sequence-numbered
//               batches the servers dedup — resends after lost acks
//               apply exactly once (see proto::WriteBatchRequest).
//
// ClusterDataPlane adapts a Cluster to core::TableMultDataPlane:
// table_mult(plane, ...) then scans its inputs remotely, cuts the row
// space at the cluster's server boundaries (one partition per server),
// and routes its partial products to the owning servers.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/data_plane.hpp"
#include "core/tablemult.hpp"
#include "distributed/proto.hpp"
#include "nosql/iterator.hpp"
#include "nosql/mutation.hpp"
#include "rpc/client.hpp"

namespace graphulo::distributed {

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct ClusterOptions {
  rpc::ClientOptions client;
  /// Retry budget for control-plane calls and write-batch sends.
  util::RetryPolicy retry;
  /// Cells fetched per kScanContinue.
  std::uint32_t scan_batch_cells = 2048;
  /// A ClusterBatchWriter flushes when its buffered mutations exceed
  /// this estimate (bytes, across all per-server buffers).
  std::size_t writer_buffer_bytes = 1 << 20;
};

class Cluster {
 public:
  /// `boundaries` are the sorted interior row boundaries; must number
  /// exactly endpoints.size() - 1.
  Cluster(std::vector<Endpoint> endpoints, std::vector<std::string> boundaries,
          ClusterOptions options = {});

  std::size_t num_servers() const noexcept { return endpoints_.size(); }
  const std::vector<std::string>& boundaries() const noexcept {
    return boundaries_;
  }
  const ClusterOptions& options() const noexcept { return options_; }

  /// The server owning `row` under the static partition map.
  std::size_t owner_of_row(const std::string& row) const;

  /// The half-open row range server `i` owns.
  nosql::Range server_range(std::size_t i) const;

  /// One RPC wrapped in with_retries: transport drops reconnect and
  /// retry, kTransient/kOverloaded back off and retry, kDeadline and
  /// remote fatal errors propagate.
  std::string call(std::size_t server, rpc::Verb verb,
                   const std::string& body);

  /// One RPC, single attempt — the scan path uses this and implements
  /// its own recovery (re-open + resume) instead of blind re-sends.
  std::string call_once(std::size_t server, rpc::Verb verb,
                        const std::string& body);

  // ---- control plane (broadcast to every server) ------------------------

  void ping_all();
  void ensure_table(const std::string& table, bool sum_combiner);
  void compact(const std::string& table);
  bool table_exists(const std::string& table);
  proto::StatusResponse status(std::size_t server);

  // ---- data plane -------------------------------------------------------

  /// Seeked iterator over `range` of `table` across every owning
  /// server, in global key order. Supports re-seek.
  nosql::IterPtr scan(const std::string& table, const nosql::Range& range);

  /// Buffered exactly-once writer into `table`. `writer_id` names the
  /// dedup stream: reuse the SAME id when re-generating and resending a
  /// logical stream (e.g. a retried TableMult partition) and a FRESH id
  /// for an unrelated stream.
  std::unique_ptr<nosql::MutationSink> writer(const std::string& table,
                                              const std::string& writer_id);

 private:
  struct Conn {
    std::mutex mutex;
    std::unique_ptr<rpc::RpcClient> client;
  };

  std::vector<Endpoint> endpoints_;
  std::vector<std::string> boundaries_;
  ClusterOptions options_;
  std::vector<std::unique_ptr<Conn>> conns_;
};

/// Adapts a Cluster to the TableMult data plane. Read views are
/// per-scan consistent: each remote scan pins an MVCC snapshot on each
/// server for the lease's life, but there is no cross-scan (or
/// cross-server) snapshot handle over the wire — a documented non-goal
/// (DESIGN.md §14); run distributed multiplies against quiescent inputs
/// or accept per-scan cuts. Write sessions are exactly-once: each
/// multiply draws a fresh session nonce, partition p writes stream
/// "tm/<nonce>/<p>", and retried partitions resend the stream from
/// sequence 0 while the owning servers skip the applied prefix.
class ClusterDataPlane : public core::TableMultDataPlane {
 public:
  explicit ClusterDataPlane(Cluster& cluster);

  bool table_exists(const std::string& table) override;
  void ensure_table(const std::string& table, bool sum_combiner) override;
  std::unique_ptr<ReadView> open_read_view(
      const std::vector<std::string>& tables, bool snapshot_isolation) override;
  std::unique_ptr<WriteSession> open_write_session(
      const std::string& table) override;
  /// The cluster's static server boundaries, regardless of `pieces`:
  /// one partition per server aligns each partition's scans and writes
  /// with one server's ownership range.
  std::vector<std::string> partition_rows(const std::string& table,
                                          std::size_t pieces) override;
  void compact(const std::string& table) override;
  util::RetryPolicy retry_policy() const override;

 private:
  Cluster& cluster_;
  std::atomic<std::uint64_t> next_session_;  ///< nonce per write session
};

/// C += A^T * B across the cluster's tablet servers: the core kernel
/// against a ClusterDataPlane.
core::TableMultStats table_mult(Cluster& cluster, const std::string& table_a,
                                const std::string& table_b,
                                const std::string& table_c,
                                const core::TableMultOptions& options = {});

}  // namespace graphulo::distributed
