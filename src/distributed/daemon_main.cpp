// graphulo_tsd — the tablet-server daemon of the distributed mode: one
// process wrapping an Instance behind an rpc::RpcServer whose verbs are
// TabletService's. N daemons with a shared boundary list form a static
// range-partitioned cluster that distributed::Cluster speaks to.
//
//   graphulo_tsd --port 0 --server-index 1 --boundaries v|0003000,v|0006000
//                --data-dir /tmp/tsd1 [--lease-ttl-ms 30000]
//                [--scan-batch 2048] [--max-frame-bytes N] [--no-wal-sync]
//
// Durability: every write batch is WAL-logged and synced before its ack
// (unless --no-wal-sync). On SIGTERM/SIGINT the daemon drains (every
// in-flight request answers kShuttingDown), checkpoints, and exits;
// after a kill -9 the next start replays checkpoint + WAL tail and
// serves byte-identical data. Table configs are code, not data: the
// presets sidecar (<data-dir>/presets.txt, "preset table" lines,
// appended whenever kEnsureTable creates a table) tells recovery which
// preset to recreate each table with.
//
// Startup handshake: once listening, the daemon prints
//   GRAPHULO_TSD LISTENING port=<port>
// on stdout (flushed) — spawners parse this to learn an ephemeral port.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/tablemult.hpp"
#include "distributed/tablet_service.hpp"
#include "nosql/checkpoint.hpp"
#include "nosql/instance.hpp"
#include "rpc/server.hpp"
#include "util/log.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

struct Args {
  std::uint16_t port = 0;
  std::uint32_t server_index = 0;
  std::vector<std::string> boundaries;
  std::string data_dir;
  std::uint32_t lease_ttl_ms = 30000;
  std::uint32_t scan_batch = 2048;
  std::uint32_t max_frame_bytes = graphulo::rpc::kDefaultMaxFrameBytes;
  bool wal_sync = true;
};

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::string piece;
  std::istringstream in(s);
  while (std::getline(in, piece, ',')) {
    if (!piece.empty()) out.push_back(piece);
  }
  return out;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --data-dir DIR [--port N] [--server-index N]\n"
               "  [--boundaries r1,r2,...] [--lease-ttl-ms N]\n"
               "  [--scan-batch N] [--max-frame-bytes N] [--no-wal-sync]\n";
  return 2;
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = next();
      if (!v) return false;
      args.port = static_cast<std::uint16_t>(std::stoul(v));
    } else if (arg == "--server-index") {
      const char* v = next();
      if (!v) return false;
      args.server_index = static_cast<std::uint32_t>(std::stoul(v));
    } else if (arg == "--boundaries") {
      const char* v = next();
      if (!v) return false;
      args.boundaries = split_commas(v);
    } else if (arg == "--data-dir") {
      const char* v = next();
      if (!v) return false;
      args.data_dir = v;
    } else if (arg == "--lease-ttl-ms") {
      const char* v = next();
      if (!v) return false;
      args.lease_ttl_ms = static_cast<std::uint32_t>(std::stoul(v));
    } else if (arg == "--scan-batch") {
      const char* v = next();
      if (!v) return false;
      args.scan_batch = static_cast<std::uint32_t>(std::stoul(v));
    } else if (arg == "--max-frame-bytes") {
      const char* v = next();
      if (!v) return false;
      args.max_frame_bytes = static_cast<std::uint32_t>(std::stoul(v));
    } else if (arg == "--no-wal-sync") {
      args.wal_sync = false;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  return !args.data_dir.empty();
}

/// The presets sidecar: which config preset each table was created
/// with, so recovery can reattach iterator settings (code, not data).
class PresetStore {
 public:
  explicit PresetStore(std::string path) : path_(std::move(path)) {
    std::ifstream in(path_);
    std::string line;
    while (std::getline(in, line)) {
      const auto space = line.find(' ');
      if (space == std::string::npos) continue;
      presets_[line.substr(space + 1)] = line.substr(0, space);
    }
  }

  graphulo::nosql::TableConfig config_for(const std::string& table) const {
    const auto it = presets_.find(table);
    if (it != presets_.end() && it->second == "sum") {
      return graphulo::core::sum_table_config();
    }
    return {};
  }

  void record(const std::string& table, const std::string& preset) {
    if (!presets_.emplace(table, preset).second) return;
    std::ofstream out(path_, std::ios::app);
    out << preset << ' ' << table << '\n';
    out.flush();
  }

 private:
  std::string path_;
  std::map<std::string, std::string> presets_;
};

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return usage(argv[0]);
  if (args.server_index > args.boundaries.size()) {
    std::cerr << "--server-index must be <= the boundary count\n";
    return 2;
  }

  namespace fs = std::filesystem;
  using namespace graphulo;

  fs::create_directories(args.data_dir);
  const std::string checkpoint_path = args.data_dir + "/checkpoint";
  const std::string wal_path = args.data_dir + "/wal";
  PresetStore presets(args.data_dir + "/presets.txt");

  nosql::Instance db;
  const auto recovered = nosql::recover_instance(
      db, checkpoint_path, wal_path,
      [&presets](const std::string& table) {
        return presets.config_for(table);
      });
  GRAPHULO_INFO << "graphulo_tsd: recovered " << recovered.tables_restored
                << " tables from checkpoint, replayed "
                << recovered.records_replayed << " WAL records";
  db.attach_wal(std::make_shared<nosql::WriteAheadLog>(wal_path));

  distributed::TabletServiceOptions service_options;
  service_options.lease_ttl = std::chrono::milliseconds(args.lease_ttl_ms);
  service_options.scan_batch_cells = args.scan_batch;
  service_options.sync_wal_on_write = args.wal_sync;
  distributed::TabletService service(db, args.boundaries, args.server_index,
                                     service_options);
  service.set_on_create([&presets](const std::string& table,
                                   const std::string& preset) {
    presets.record(table, preset);
  });

  rpc::RpcServerOptions server_options;
  server_options.max_frame_bytes = args.max_frame_bytes;
  rpc::RpcServer server(
      args.port,
      [&service](rpc::Verb verb, const std::string& body,
                 std::optional<std::chrono::steady_clock::time_point>
                     deadline) { return service.handle(verb, body, deadline); },
      server_options);

  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);
  // Spawners block on this line to learn the (possibly ephemeral) port.
  std::printf("GRAPHULO_TSD LISTENING port=%u\n",
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Graceful shutdown: drain (every request answers kShuttingDown),
  // settle compactions, checkpoint, then stop. A kill -9 skips all of
  // this and recovery replays the WAL tail instead.
  GRAPHULO_INFO << "graphulo_tsd: shutting down";
  server.set_draining(true);
  db.quiesce_compactions();
  try {
    const auto stats = nosql::write_checkpoint(db, checkpoint_path);
    GRAPHULO_INFO << "graphulo_tsd: checkpointed " << stats.tables
                  << " tables (" << stats.cells << " unflushed cells)";
  } catch (const std::exception& e) {
    GRAPHULO_WARN << "graphulo_tsd: shutdown checkpoint failed: " << e.what();
  }
  server.stop();
  return 0;
}
