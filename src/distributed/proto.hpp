#pragma once
// Verb-body message layouts of the distributed mode, shared by both
// ends of the wire: distributed::TabletService decodes requests and
// encodes responses; distributed::Cluster does the reverse. One
// encode/decode pair per message keeps the layouts in a single place
// (and gives the fuzz tests one surface to torture).
//
// All fields use the nosql::wire codecs (fixed-width little-endian
// integers, u32-length-prefixed strings, the Key/Cell/Mutation/Range
// codecs). Decoding is fully bounds-checked and rejects trailing bytes;
// malformed input throws nosql::wire::WireError, which the RPC server
// maps to kBadRequest.

#include <cstdint>
#include <string>
#include <vector>

#include "nosql/key.hpp"
#include "nosql/mutation.hpp"

namespace graphulo::distributed::proto {

// ---- kWriteBatch --------------------------------------------------------

/// One exactly-once write batch: `mutations[i]` carries stream sequence
/// number `first_seq + i` of the (writer_id, table) stream. The server
/// keeps a per-stream high-water mark and skips sequence numbers below
/// it, so a resent batch (connection drop after apply, before the ack)
/// applies each mutation exactly once.
struct WriteBatchRequest {
  std::string table;
  std::string writer_id;
  std::uint64_t first_seq = 0;
  std::vector<nosql::Mutation> mutations;
};

struct WriteBatchResponse {
  std::uint32_t applied = 0;  ///< mutations applied by this call
  std::uint32_t skipped = 0;  ///< deduped (seq below the high-water mark)
};

std::string encode(const WriteBatchRequest& m);
WriteBatchRequest decode_write_batch_request(const std::string& body);
std::string encode(const WriteBatchResponse& m);
WriteBatchResponse decode_write_batch_response(const std::string& body);

// ---- kScanOpen / kScanContinue / kScanClose -----------------------------

/// Opens a leased scan over `range` of `table` (the server additionally
/// clips to the rows it owns). With `has_resume`, the scan starts
/// strictly AFTER `resume_after` — how a client resumes after a lease
/// expiry or connection drop without re-reading delivered cells.
struct ScanOpenRequest {
  std::string table;
  nosql::Range range;
  std::uint32_t batch_cells = 0;  ///< cells per continue; 0 = server default
  bool has_resume = false;
  nosql::Key resume_after;
};

struct ScanOpenResponse {
  std::uint64_t lease_id = 0;
};

struct ScanContinueRequest {
  std::uint64_t lease_id = 0;
};

struct ScanContinueResponse {
  std::vector<nosql::Cell> cells;
  bool done = false;  ///< stream exhausted; the server closed the lease
};

struct ScanCloseRequest {
  std::uint64_t lease_id = 0;
};

std::string encode(const ScanOpenRequest& m);
ScanOpenRequest decode_scan_open_request(const std::string& body);
std::string encode(const ScanOpenResponse& m);
ScanOpenResponse decode_scan_open_response(const std::string& body);
std::string encode(const ScanContinueRequest& m);
ScanContinueRequest decode_scan_continue_request(const std::string& body);
std::string encode(const ScanContinueResponse& m);
ScanContinueResponse decode_scan_continue_response(const std::string& body);
std::string encode(const ScanCloseRequest& m);
ScanCloseRequest decode_scan_close_request(const std::string& body);

// ---- kTabletLookup ------------------------------------------------------

/// Asks a server for the cluster's static tablet map (and optionally
/// whether `table` exists there). Row ownership: server i owns rows in
/// [boundaries[i-1], boundaries[i]) with the outer sides unbounded.
struct TabletLookupRequest {
  bool has_table = false;
  std::string table;
};

struct TabletLookupResponse {
  std::uint32_t server_index = 0;
  std::uint32_t server_count = 0;
  std::vector<std::string> boundaries;  ///< server_count - 1 interior rows
  bool table_exists = false;            ///< valid when the request named one
};

std::string encode(const TabletLookupRequest& m);
TabletLookupRequest decode_tablet_lookup_request(const std::string& body);
std::string encode(const TabletLookupResponse& m);
TabletLookupResponse decode_tablet_lookup_response(const std::string& body);

// ---- kEnsureTable / kCompactTable ---------------------------------------

/// Creates `table` if missing, configured by preset: "default" (plain
/// TableConfig) or "sum" (TableMult result sink — versioning off,
/// summing combiner at every scope). Idempotent.
struct EnsureTableRequest {
  std::string table;
  std::string preset = "default";
};

struct CompactTableRequest {
  std::string table;
};

std::string encode(const EnsureTableRequest& m);
EnsureTableRequest decode_ensure_table_request(const std::string& body);
std::string encode(const CompactTableRequest& m);
CompactTableRequest decode_compact_table_request(const std::string& body);

// ---- kStatus ------------------------------------------------------------

struct StatusResponse {
  std::uint32_t server_index = 0;
  std::vector<std::string> tables;
  std::uint32_t live_leases = 0;
  std::uint64_t writes_applied = 0;   ///< mutations applied (dedup excluded)
  std::uint64_t writes_skipped = 0;   ///< mutations deduped
  std::uint64_t cells_scanned = 0;    ///< cells shipped by scan continues
};

std::string encode(const StatusResponse& m);
StatusResponse decode_status_response(const std::string& body);

}  // namespace graphulo::distributed::proto
