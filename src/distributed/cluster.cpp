#include "distributed/cluster.hpp"

#include <algorithm>
#include <thread>
#include <random>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace graphulo::distributed {

namespace {

obs::Counter& scan_reopens_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "distributed.scan.reopens.total",
      "Remote scans re-opened after a lease expiry or connection drop");
  return c;
}

obs::Counter& write_dedup_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "distributed.write.deduped.total",
      "Mutations a server skipped as already applied (resent batches)");
  return c;
}

/// Remote scan across every owning server, in boundary order. Each
/// server segment is drained through a leased scan; a lease expiry or
/// transport failure re-opens the segment's scan strictly after the
/// last delivered key, so cells are delivered exactly once in global
/// key order no matter how many times the stream is interrupted.
class ClusterScanIterator : public nosql::SortedKVIterator {
 public:
  ClusterScanIterator(Cluster& cluster, std::string table,
                      const nosql::Range& range)
      : cluster_(cluster), table_(std::move(table)) {
    seek(range);
  }

  ~ClusterScanIterator() override { close_lease(); }

  void seek(const nosql::Range& range) override {
    close_lease();
    segments_.clear();
    for (std::size_t s = 0; s < cluster_.num_servers(); ++s) {
      const nosql::Range clipped = range.intersect(cluster_.server_range(s));
      if (!clipped.is_empty()) segments_.emplace_back(s, clipped);
    }
    segment_ = 0;
    buffer_.clear();
    pos_ = 0;
    last_key_.reset();
    fill();
  }

  bool has_top() const override { return pos_ < buffer_.size(); }
  const nosql::Key& top_key() const override { return buffer_[pos_].key; }
  const nosql::Value& top_value() const override { return buffer_[pos_].value; }

  void next() override {
    ++pos_;
    if (pos_ >= buffer_.size()) {
      buffer_.clear();
      pos_ = 0;
      fill();
    }
  }

  std::size_t next_block(nosql::CellBlock& out, std::size_t max) override {
    std::size_t appended = 0;
    while (appended < max && has_top()) {
      // Bulk-copy the buffered run before refilling.
      const std::size_t take = std::min(max - appended, buffer_.size() - pos_);
      for (std::size_t i = 0; i < take; ++i, ++pos_) {
        out.append(buffer_[pos_].key, buffer_[pos_].value);
      }
      appended += take;
      if (pos_ >= buffer_.size()) {
        buffer_.clear();
        pos_ = 0;
        fill();
      }
    }
    return appended;
  }

 private:
  void close_lease() noexcept {
    if (lease_id_ == 0) return;
    try {
      proto::ScanCloseRequest req;
      req.lease_id = lease_id_;
      cluster_.call_once(segments_[segment_].first, rpc::Verb::kScanClose,
                         proto::encode(req));
    } catch (const std::exception&) {
      // Best effort; the server's TTL sweeper reaps it.
    }
    lease_id_ = 0;
  }

  void open_lease() {
    proto::ScanOpenRequest req;
    req.table = table_;
    req.range = segments_[segment_].second;
    req.batch_cells = cluster_.options().scan_batch_cells;
    if (last_key_) {
      req.has_resume = true;
      req.resume_after = *last_key_;
    }
    // call() retries transient opens (connection refused while a server
    // restarts, admission shed) with backoff.
    const std::string body = cluster_.call(
        segments_[segment_].first, rpc::Verb::kScanOpen, proto::encode(req));
    lease_id_ = proto::decode_scan_open_response(body).lease_id;
  }

  /// Refills the buffer from the current segment, advancing to later
  /// segments as streams drain. Leaves the buffer empty only when every
  /// segment is exhausted.
  void fill() {
    int failures = 0;
    while (buffer_.empty() && segment_ < segments_.size()) {
      try {
        if (lease_id_ == 0) open_lease();
        proto::ScanContinueRequest req;
        req.lease_id = lease_id_;
        const std::string body =
            cluster_.call_once(segments_[segment_].first,
                               rpc::Verb::kScanContinue, proto::encode(req));
        auto resp = proto::decode_scan_continue_response(body);
        failures = 0;
        if (!resp.cells.empty()) {
          last_key_ = resp.cells.back().key;
          buffer_ = std::move(resp.cells);
          pos_ = 0;
        }
        if (resp.done) {
          // Server closed the lease with the final batch.
          lease_id_ = 0;
          last_key_.reset();
          ++segment_;
        }
      } catch (const util::TransientError& e) {
        // Lease expired, connection dropped, server restarted or shed
        // us: re-open this segment's scan after the last delivered key.
        lease_id_ = 0;
        if (++failures > cluster_.options().retry.max_attempts) throw;
        scan_reopens_counter().inc();
        GRAPHULO_DEBUG << "remote scan of " << table_ << " re-opening (" <<
            e.what() << ")";
      }
    }
  }

  Cluster& cluster_;
  std::string table_;
  /// (server index, clipped range) per owning server, in row order.
  std::vector<std::pair<std::size_t, nosql::Range>> segments_;
  std::size_t segment_ = 0;
  std::uint64_t lease_id_ = 0;
  std::vector<nosql::Cell> buffer_;
  std::size_t pos_ = 0;
  std::optional<nosql::Key> last_key_;
};

/// Exactly-once buffered writer: mutations route to the owning server
/// and ship as sequence-numbered batches of one (writer_id, table)
/// stream per server. The sequence number of a mutation is fixed when
/// it is buffered, so a batch resent after a lost ack (or a flush
/// resumed after an exhausted retry) carries the same numbers and the
/// server's high-water mark dedups the already-applied prefix.
class ClusterBatchWriter : public nosql::MutationSink {
 public:
  ClusterBatchWriter(Cluster& cluster, std::string table,
                     std::string writer_id)
      : cluster_(cluster),
        table_(std::move(table)),
        writer_id_(std::move(writer_id)),
        streams_(cluster.num_servers()) {}

  ~ClusterBatchWriter() override {
    if (closed_) return;
    try {
      flush();
    } catch (const std::exception& e) {
      GRAPHULO_WARN << "ClusterBatchWriter: final flush failed: " << e.what();
    }
  }

  void add_mutation(nosql::Mutation mutation) override {
    const std::size_t owner = cluster_.owner_of_row(mutation.row());
    buffered_bytes_ += mutation.estimated_bytes();
    streams_[owner].buffer.push_back(std::move(mutation));
    if (buffered_bytes_ > cluster_.options().writer_buffer_bytes) flush();
  }

  void flush() override {
    for (std::size_t s = 0; s < streams_.size(); ++s) {
      Stream& stream = streams_[s];
      while (!stream.buffer.empty()) {
        // Bound each frame: ship a prefix chunk of the buffer, advance
        // the acked sequence, repeat. A chunk that fails after retries
        // leaves the buffer holding it (and everything after), so a
        // later flush resumes the stream where it stopped.
        const std::size_t chunk = chunk_size(stream.buffer);
        proto::WriteBatchRequest req;
        req.table = table_;
        req.writer_id = writer_id_;
        req.first_seq = stream.acked_seq;
        req.mutations.assign(stream.buffer.begin(),
                             stream.buffer.begin() +
                                 static_cast<std::ptrdiff_t>(chunk));
        std::string body;
        try {
          body = cluster_.call(s, rpc::Verb::kWriteBatch, proto::encode(req));
        } catch (const std::exception& e) {
          last_error_ = e.what();
          last_error_kind_ = nosql::classify_write_error(e);
          throw;
        }
        const auto resp = proto::decode_write_batch_response(body);
        if (resp.skipped > 0) write_dedup_counter().inc(resp.skipped);
        stream.acked_seq += chunk;
        written_ += chunk;
        for (std::size_t i = 0; i < chunk; ++i) {
          buffered_bytes_ -= stream.buffer[i].estimated_bytes();
        }
        stream.buffer.erase(stream.buffer.begin(),
                            stream.buffer.begin() +
                                static_cast<std::ptrdiff_t>(chunk));
      }
    }
  }

  void close() override {
    if (closed_) return;
    flush();
    closed_ = true;
  }

  void abandon() noexcept override {
    for (auto& stream : streams_) stream.buffer.clear();
    buffered_bytes_ = 0;
    closed_ = true;
  }

  std::size_t mutations_written() const noexcept override { return written_; }

  const std::optional<std::string>& last_error() const noexcept override {
    return last_error_;
  }

  ErrorKind last_error_kind() const noexcept override {
    return last_error_kind_;
  }

 private:
  struct Stream {
    std::vector<nosql::Mutation> buffer;  ///< unacked suffix of the stream
    std::uint64_t acked_seq = 0;          ///< sequence numbers below are acked
  };

  /// Mutations of the leading chunk that fit one bounded frame.
  std::size_t chunk_size(const std::vector<nosql::Mutation>& buffer) const {
    // Stay well under the frame limit: estimated_bytes underestimates
    // the wire form a little, so cap the chunk at a quarter of it.
    const std::size_t budget =
        cluster_.options().client.max_frame_bytes / 4;
    std::size_t bytes = 0;
    std::size_t n = 0;
    for (const auto& m : buffer) {
      bytes += m.estimated_bytes();
      if (n > 0 && bytes > budget) break;
      ++n;
    }
    return n;
  }

  Cluster& cluster_;
  std::string table_;
  std::string writer_id_;
  std::vector<Stream> streams_;  ///< one dedup stream per server
  std::size_t buffered_bytes_ = 0;
  std::size_t written_ = 0;
  bool closed_ = false;
  std::optional<std::string> last_error_;
  ErrorKind last_error_kind_ = ErrorKind::kNone;
};

}  // namespace

Cluster::Cluster(std::vector<Endpoint> endpoints,
                 std::vector<std::string> boundaries, ClusterOptions options)
    : endpoints_(std::move(endpoints)),
      boundaries_(std::move(boundaries)),
      options_(options) {
  if (endpoints_.empty()) {
    throw std::invalid_argument("Cluster: no endpoints");
  }
  if (boundaries_.size() + 1 != endpoints_.size()) {
    throw std::invalid_argument(
        "Cluster: need exactly one interior boundary per server gap");
  }
  if (!std::is_sorted(boundaries_.begin(), boundaries_.end())) {
    throw std::invalid_argument("Cluster: boundaries must be sorted");
  }
  conns_.reserve(endpoints_.size());
  for (const auto& ep : endpoints_) {
    auto conn = std::make_unique<Conn>();
    conn->client =
        std::make_unique<rpc::RpcClient>(ep.host, ep.port, options_.client);
    conns_.push_back(std::move(conn));
  }
}

std::size_t Cluster::owner_of_row(const std::string& row) const {
  // Number of boundaries <= row: rows below boundaries_[0] land on
  // server 0, rows in [boundaries_[i-1], boundaries_[i]) on server i.
  const auto it =
      std::upper_bound(boundaries_.begin(), boundaries_.end(), row);
  return static_cast<std::size_t>(it - boundaries_.begin());
}

nosql::Range Cluster::server_range(std::size_t i) const {
  const std::string low = i == 0 ? std::string() : boundaries_[i - 1];
  const std::string high =
      i == boundaries_.size() ? std::string() : boundaries_[i];
  return nosql::Range::half_open_row_range(low, high);
}

std::string Cluster::call(std::size_t server, rpc::Verb verb,
                          const std::string& body) {
  Conn& conn = *conns_[server];
  std::lock_guard lock(conn.mutex);
  return util::with_retries("Cluster::call", options_.retry, [&] {
    return conn.client->call(verb, body);
  });
}

std::string Cluster::call_once(std::size_t server, rpc::Verb verb,
                               const std::string& body) {
  Conn& conn = *conns_[server];
  std::lock_guard lock(conn.mutex);
  return conn.client->call(verb, body);
}

void Cluster::ping_all() {
  for (std::size_t s = 0; s < num_servers(); ++s) {
    call(s, rpc::Verb::kPing, "");
  }
}

void Cluster::ensure_table(const std::string& table, bool sum_combiner) {
  proto::EnsureTableRequest req;
  req.table = table;
  req.preset = sum_combiner ? "sum" : "default";
  const std::string body = proto::encode(req);
  for (std::size_t s = 0; s < num_servers(); ++s) {
    call(s, rpc::Verb::kEnsureTable, body);
  }
}

void Cluster::compact(const std::string& table) {
  proto::CompactTableRequest req;
  req.table = table;
  const std::string body = proto::encode(req);
  for (std::size_t s = 0; s < num_servers(); ++s) {
    call(s, rpc::Verb::kCompactTable, body);
  }
}

bool Cluster::table_exists(const std::string& table) {
  proto::TabletLookupRequest req;
  req.has_table = true;
  req.table = table;
  const std::string body =
      call(0, rpc::Verb::kTabletLookup, proto::encode(req));
  return proto::decode_tablet_lookup_response(body).table_exists;
}

proto::StatusResponse Cluster::status(std::size_t server) {
  return proto::decode_status_response(call(server, rpc::Verb::kStatus, ""));
}

nosql::IterPtr Cluster::scan(const std::string& table,
                             const nosql::Range& range) {
  return std::make_unique<ClusterScanIterator>(*this, table, range);
}

std::unique_ptr<nosql::MutationSink> Cluster::writer(
    const std::string& table, const std::string& writer_id) {
  return std::make_unique<ClusterBatchWriter>(*this, table, writer_id);
}

// ---- ClusterDataPlane ---------------------------------------------------

namespace {

class RemoteReadView : public core::TableMultDataPlane::ReadView {
 public:
  explicit RemoteReadView(Cluster& cluster) : cluster_(cluster) {}

  nosql::IterPtr open_scan(const std::string& table,
                           const nosql::Range& range) override {
    return cluster_.scan(table, range);
  }

 private:
  Cluster& cluster_;
};

class RemoteWriteSession : public core::TableMultDataPlane::WriteSession {
 public:
  RemoteWriteSession(Cluster& cluster, std::string table,
                     std::uint64_t session_nonce)
      : cluster_(cluster),
        table_(std::move(table)),
        prefix_("tm/" + std::to_string(session_nonce) + "/") {}

  std::unique_ptr<nosql::MutationSink> open_writer(
      std::size_t partition) override {
    // A retried partition re-opens the SAME index, hence the SAME
    // writer id: its resent stream dedups against the prior attempt's
    // server-side high-water marks.
    return cluster_.writer(table_, prefix_ + std::to_string(partition));
  }

  bool exactly_once() const noexcept override { return true; }

 private:
  Cluster& cluster_;
  std::string table_;
  std::string prefix_;
};

}  // namespace

ClusterDataPlane::ClusterDataPlane(Cluster& cluster) : cluster_(cluster) {
  // Nonce space per client process: two multiplies (or two client
  // processes) must not share dedup streams on the servers.
  std::random_device rd;
  next_session_ = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
}

bool ClusterDataPlane::table_exists(const std::string& table) {
  return cluster_.table_exists(table);
}

void ClusterDataPlane::ensure_table(const std::string& table,
                                    bool sum_combiner) {
  cluster_.ensure_table(table, sum_combiner);
}

std::unique_ptr<core::TableMultDataPlane::ReadView>
ClusterDataPlane::open_read_view(const std::vector<std::string>& tables,
                                 bool snapshot_isolation) {
  // Per-scan consistency only (each remote scan pins per-server
  // snapshots for its lease's life); there is no cross-scan snapshot
  // handle over the wire. See the class comment.
  (void)tables;
  (void)snapshot_isolation;
  return std::make_unique<RemoteReadView>(cluster_);
}

std::unique_ptr<core::TableMultDataPlane::WriteSession>
ClusterDataPlane::open_write_session(const std::string& table) {
  return std::make_unique<RemoteWriteSession>(
      cluster_, table, next_session_.fetch_add(1, std::memory_order_relaxed));
}

std::vector<std::string> ClusterDataPlane::partition_rows(
    const std::string& table, std::size_t pieces) {
  (void)table;
  (void)pieces;
  return cluster_.boundaries();
}

void ClusterDataPlane::compact(const std::string& table) {
  cluster_.compact(table);
}

util::RetryPolicy ClusterDataPlane::retry_policy() const {
  return cluster_.options().retry;
}

core::TableMultStats table_mult(Cluster& cluster, const std::string& table_a,
                                const std::string& table_b,
                                const std::string& table_c,
                                const core::TableMultOptions& options) {
  ClusterDataPlane plane(cluster);
  core::TableMultOptions resolved = options;
  // Default the fan-out to the fleet size, not this client's core
  // count: partitioning cuts at the server boundaries, so fewer workers
  // than servers would leave servers idle (and a 1-core client would
  // collapse the whole multiply to one serial partition).
  if (resolved.num_workers == 0) {
    resolved.num_workers =
        std::max<std::size_t>(cluster.num_servers(),
                              std::thread::hardware_concurrency());
  }
  return core::table_mult(plane, table_a, table_b, table_c, resolved);
}

}  // namespace graphulo::distributed
