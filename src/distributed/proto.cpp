#include "distributed/proto.hpp"

#include "nosql/codec.hpp"

namespace graphulo::distributed::proto {

namespace wire = nosql::wire;

namespace {

/// Bounded list-count read: a hostile count prefix must not reserve
/// gigabytes before the per-element bounds checks catch the truncation.
std::uint32_t get_count(wire::Cursor& c, std::size_t min_element_bytes) {
  const std::uint32_t n = wire::get_u32(c);
  if (min_element_bytes * static_cast<std::size_t>(n) > c.remaining()) {
    throw wire::WireError("wire: list count exceeds remaining bytes");
  }
  return n;
}

bool get_bool(wire::Cursor& c) {
  const std::uint8_t v = wire::get_u8(c);
  if (v > 1) throw wire::WireError("wire: boolean out of range");
  return v != 0;
}

}  // namespace

// ---- kWriteBatch --------------------------------------------------------

std::string encode(const WriteBatchRequest& m) {
  std::string out;
  wire::put_string(out, m.table);
  wire::put_string(out, m.writer_id);
  wire::put_u64(out, m.first_seq);
  wire::put_u32(out, static_cast<std::uint32_t>(m.mutations.size()));
  for (const auto& mutation : m.mutations) wire::put_mutation(out, mutation);
  return out;
}

WriteBatchRequest decode_write_batch_request(const std::string& body) {
  wire::Cursor c(body);
  WriteBatchRequest m;
  m.table = wire::get_string(c);
  m.writer_id = wire::get_string(c);
  m.first_seq = wire::get_u64(c);
  const std::uint32_t n = get_count(c, 4);
  m.mutations.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    m.mutations.push_back(wire::get_mutation(c));
  }
  c.expect_end();
  return m;
}

std::string encode(const WriteBatchResponse& m) {
  std::string out;
  wire::put_u32(out, m.applied);
  wire::put_u32(out, m.skipped);
  return out;
}

WriteBatchResponse decode_write_batch_response(const std::string& body) {
  wire::Cursor c(body);
  WriteBatchResponse m;
  m.applied = wire::get_u32(c);
  m.skipped = wire::get_u32(c);
  c.expect_end();
  return m;
}

// ---- scans --------------------------------------------------------------

std::string encode(const ScanOpenRequest& m) {
  std::string out;
  wire::put_string(out, m.table);
  wire::put_range(out, m.range);
  wire::put_u32(out, m.batch_cells);
  wire::put_u8(out, m.has_resume ? 1 : 0);
  if (m.has_resume) wire::put_key(out, m.resume_after);
  return out;
}

ScanOpenRequest decode_scan_open_request(const std::string& body) {
  wire::Cursor c(body);
  ScanOpenRequest m;
  m.table = wire::get_string(c);
  m.range = wire::get_range(c);
  m.batch_cells = wire::get_u32(c);
  m.has_resume = get_bool(c);
  if (m.has_resume) m.resume_after = wire::get_key(c);
  c.expect_end();
  return m;
}

std::string encode(const ScanOpenResponse& m) {
  std::string out;
  wire::put_u64(out, m.lease_id);
  return out;
}

ScanOpenResponse decode_scan_open_response(const std::string& body) {
  wire::Cursor c(body);
  ScanOpenResponse m;
  m.lease_id = wire::get_u64(c);
  c.expect_end();
  return m;
}

std::string encode(const ScanContinueRequest& m) {
  std::string out;
  wire::put_u64(out, m.lease_id);
  return out;
}

ScanContinueRequest decode_scan_continue_request(const std::string& body) {
  wire::Cursor c(body);
  ScanContinueRequest m;
  m.lease_id = wire::get_u64(c);
  c.expect_end();
  return m;
}

std::string encode(const ScanContinueResponse& m) {
  std::string out;
  wire::put_u32(out, static_cast<std::uint32_t>(m.cells.size()));
  for (const auto& cell : m.cells) wire::put_cell(out, cell);
  wire::put_u8(out, m.done ? 1 : 0);
  return out;
}

ScanContinueResponse decode_scan_continue_response(const std::string& body) {
  wire::Cursor c(body);
  ScanContinueResponse m;
  const std::uint32_t n = get_count(c, 4);
  m.cells.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.cells.push_back(wire::get_cell(c));
  m.done = get_bool(c);
  c.expect_end();
  return m;
}

std::string encode(const ScanCloseRequest& m) {
  std::string out;
  wire::put_u64(out, m.lease_id);
  return out;
}

ScanCloseRequest decode_scan_close_request(const std::string& body) {
  wire::Cursor c(body);
  ScanCloseRequest m;
  m.lease_id = wire::get_u64(c);
  c.expect_end();
  return m;
}

// ---- tablet map ---------------------------------------------------------

std::string encode(const TabletLookupRequest& m) {
  std::string out;
  wire::put_u8(out, m.has_table ? 1 : 0);
  if (m.has_table) wire::put_string(out, m.table);
  return out;
}

TabletLookupRequest decode_tablet_lookup_request(const std::string& body) {
  wire::Cursor c(body);
  TabletLookupRequest m;
  m.has_table = get_bool(c);
  if (m.has_table) m.table = wire::get_string(c);
  c.expect_end();
  return m;
}

std::string encode(const TabletLookupResponse& m) {
  std::string out;
  wire::put_u32(out, m.server_index);
  wire::put_u32(out, m.server_count);
  wire::put_u32(out, static_cast<std::uint32_t>(m.boundaries.size()));
  for (const auto& b : m.boundaries) wire::put_string(out, b);
  wire::put_u8(out, m.table_exists ? 1 : 0);
  return out;
}

TabletLookupResponse decode_tablet_lookup_response(const std::string& body) {
  wire::Cursor c(body);
  TabletLookupResponse m;
  m.server_index = wire::get_u32(c);
  m.server_count = wire::get_u32(c);
  const std::uint32_t n = get_count(c, 4);
  m.boundaries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.boundaries.push_back(wire::get_string(c));
  m.table_exists = get_bool(c);
  c.expect_end();
  return m;
}

// ---- table control ------------------------------------------------------

std::string encode(const EnsureTableRequest& m) {
  std::string out;
  wire::put_string(out, m.table);
  wire::put_string(out, m.preset);
  return out;
}

EnsureTableRequest decode_ensure_table_request(const std::string& body) {
  wire::Cursor c(body);
  EnsureTableRequest m;
  m.table = wire::get_string(c);
  m.preset = wire::get_string(c);
  c.expect_end();
  return m;
}

std::string encode(const CompactTableRequest& m) {
  std::string out;
  wire::put_string(out, m.table);
  return out;
}

CompactTableRequest decode_compact_table_request(const std::string& body) {
  wire::Cursor c(body);
  CompactTableRequest m;
  m.table = wire::get_string(c);
  c.expect_end();
  return m;
}

// ---- status -------------------------------------------------------------

std::string encode(const StatusResponse& m) {
  std::string out;
  wire::put_u32(out, m.server_index);
  wire::put_u32(out, static_cast<std::uint32_t>(m.tables.size()));
  for (const auto& t : m.tables) wire::put_string(out, t);
  wire::put_u32(out, m.live_leases);
  wire::put_u64(out, m.writes_applied);
  wire::put_u64(out, m.writes_skipped);
  wire::put_u64(out, m.cells_scanned);
  return out;
}

StatusResponse decode_status_response(const std::string& body) {
  wire::Cursor c(body);
  StatusResponse m;
  m.server_index = wire::get_u32(c);
  const std::uint32_t n = get_count(c, 4);
  m.tables.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.tables.push_back(wire::get_string(c));
  m.live_leases = wire::get_u32(c);
  m.writes_applied = wire::get_u64(c);
  m.writes_skipped = wire::get_u64(c);
  m.cells_scanned = wire::get_u64(c);
  c.expect_end();
  return m;
}

}  // namespace graphulo::distributed::proto
