#include "distributed/tablet_service.hpp"

#include <algorithm>

#include "core/table_scan.hpp"
#include "core/tablemult.hpp"
#include "nosql/codec.hpp"
#include "util/log.hpp"

namespace graphulo::distributed {

using rpc::RpcServer;
using rpc::Status;
using rpc::Verb;

namespace {

bool deadline_passed(
    const std::optional<std::chrono::steady_clock::time_point>& deadline) {
  return deadline && std::chrono::steady_clock::now() > *deadline;
}

}  // namespace

TabletService::TabletService(nosql::Instance& db,
                             std::vector<std::string> boundaries,
                             std::uint32_t server_index,
                             TabletServiceOptions options)
    : db_(db),
      boundaries_(std::move(boundaries)),
      server_index_(server_index),
      options_(options) {
  if (server_index_ > boundaries_.size()) {
    throw std::invalid_argument(
        "TabletService: server_index past the last boundary");
  }
  sweeper_ = std::thread([this] { sweep_loop(); });
}

TabletService::~TabletService() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  sweep_cv_.notify_all();
  if (sweeper_.joinable()) sweeper_.join();
}

nosql::Range TabletService::owned_range() const {
  const std::string low =
      server_index_ == 0 ? std::string() : boundaries_[server_index_ - 1];
  const std::string high = server_index_ == boundaries_.size()
                               ? std::string()
                               : boundaries_[server_index_];
  return nosql::Range::half_open_row_range(low, high);
}

RpcServer::Response TabletService::handle(
    Verb verb, const std::string& body,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  switch (verb) {
    case Verb::kPing:
      return {Status::kOk, body};
    case Verb::kWriteBatch:
      return handle_write_batch(body, deadline);
    case Verb::kScanOpen:
      return handle_scan_open(body, deadline);
    case Verb::kScanContinue:
      return handle_scan_continue(body, deadline);
    case Verb::kScanClose:
      return handle_scan_close(body);
    case Verb::kTabletLookup:
      return handle_tablet_lookup(body);
    case Verb::kEnsureTable:
      return handle_ensure_table(body);
    case Verb::kCompactTable:
      return handle_compact_table(body);
    case Verb::kStatus:
      return handle_status();
  }
  return {Status::kBadRequest, "unhandled verb"};
}

std::shared_ptr<nosql::AdmissionSession> TabletService::write_session_for(
    const std::string& table) {
  nosql::AdmissionController* controller = db_.admission(table);
  if (controller == nullptr) return nullptr;
  std::lock_guard lock(mutex_);
  auto& session = write_sessions_[table];
  if (!session) session = controller->make_session();
  return session;
}

RpcServer::Response TabletService::handle_write_batch(
    const std::string& body,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  const auto req = proto::decode_write_batch_request(body);
  if (!db_.table_exists(req.table)) {
    return {Status::kNoSuchTable, "no such table: " + req.table};
  }
  // Admission is charged for the whole batch up front: a shed batch is
  // rejected before any of it applies, and the client's resend dedups
  // cleanly either way.
  if (auto session = write_session_for(req.table)) {
    db_.admission(req.table)->admit_write(*session,
                                          req.mutations.size());
  }

  const std::string stream_key = req.writer_id + '\0' + req.table;
  std::uint64_t hwm;  // next expected sequence number for this stream
  {
    std::lock_guard lock(mutex_);
    hwm = dedup_[stream_key];
  }
  const nosql::Range owned = owned_range();
  proto::WriteBatchResponse resp;
  std::uint64_t seen = hwm;
  try {
    for (std::size_t i = 0; i < req.mutations.size(); ++i) {
      if (deadline_passed(deadline)) {
        throw nosql::DeadlineExceeded(
            "write batch exceeded its deadline after " +
            std::to_string(resp.applied) + " mutations");
      }
      const std::uint64_t seq = req.first_seq + i;
      if (seq < hwm) {
        ++resp.skipped;
        continue;
      }
      const auto& m = req.mutations[i];
      if (!owned.contains(nosql::min_key_for_row(m.row()))) {
        throw nosql::wire::WireError("mutation row '" + m.row() +
                                     "' routed to the wrong server");
      }
      db_.apply(req.table, m);
      ++resp.applied;
      seen = std::max(seen, seq + 1);
    }
    // Durable ack: the WAL holds everything this batch applied before
    // the client sees kOk.
    if (resp.applied > 0 && options_.sync_wal_on_write) db_.sync_wal();
  } catch (...) {
    // The applied prefix is real; record it so the client's resend of
    // this batch (same first_seq) dedups instead of double-applying.
    std::lock_guard lock(mutex_);
    auto& entry = dedup_[stream_key];
    entry = std::max(entry, seen);
    writes_applied_ += resp.applied;
    writes_skipped_ += resp.skipped;
    throw;
  }
  {
    std::lock_guard lock(mutex_);
    auto& entry = dedup_[stream_key];
    entry = std::max(entry, seen);
  }
  writes_applied_ += resp.applied;
  writes_skipped_ += resp.skipped;
  return {Status::kOk, proto::encode(resp)};
}

RpcServer::Response TabletService::handle_scan_open(
    const std::string& body,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  const auto req = proto::decode_scan_open_request(body);
  if (!db_.table_exists(req.table)) {
    return {Status::kNoSuchTable, "no such table: " + req.table};
  }
  // Clip to the rows this server owns — the client clips too, but a
  // defensive server never ships another server's rows.
  nosql::Range range = req.range.intersect(owned_range());
  if (req.has_resume) {
    // Resume strictly after the last delivered key.
    nosql::Range after;
    after.has_start = true;
    after.start = req.resume_after;
    after.start_inclusive = false;
    range = range.intersect(after);
  }

  auto lease = std::make_unique<Lease>();
  lease->table = req.table;
  // The scan slot is held for the lease's whole life (RAII ticket), so
  // max_inflight_scans bounds concurrent remote scans exactly like
  // local ones; a shed open throws OverloadedError -> kOverloaded.
  if (auto* controller = db_.admission(req.table)) {
    lease->ticket = controller->admit_scan(nullptr, deadline);
  }
  lease->snapshot = db_.open_snapshot(req.table);
  lease->iter = range.is_empty()
                    ? nullptr
                    : core::open_table_scan(*lease->snapshot, range);
  lease->batch_cells =
      req.batch_cells > 0 ? req.batch_cells : options_.scan_batch_cells;
  lease->expires_at = std::chrono::steady_clock::now() + options_.lease_ttl;

  proto::ScanOpenResponse resp;
  resp.lease_id = next_lease_id_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(mutex_);
    leases_[resp.lease_id] = std::move(lease);
  }
  return {Status::kOk, proto::encode(resp)};
}

RpcServer::Response TabletService::handle_scan_continue(
    const std::string& body,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  const auto req = proto::decode_scan_continue_request(body);
  if (deadline_passed(deadline)) {
    throw nosql::DeadlineExceeded("scan continue arrived past its deadline");
  }
  // Check the lease OUT of the table while draining, so continues on
  // other leases never serialize on this scan.
  std::unique_ptr<Lease> lease;
  {
    std::lock_guard lock(mutex_);
    auto it = leases_.find(req.lease_id);
    if (it == leases_.end() ||
        std::chrono::steady_clock::now() > it->second->expires_at) {
      if (it != leases_.end()) leases_.erase(it);
      throw rpc::LeaseExpired("scan lease " + std::to_string(req.lease_id) +
                              " expired or unknown; re-open to resume");
    }
    lease = std::move(it->second);
    leases_.erase(it);
  }

  proto::ScanContinueResponse resp;
  nosql::CellBlock block;
  if (lease->iter != nullptr) {
    lease->iter->next_block(block, lease->batch_cells);
    resp.cells.reserve(block.size());
    for (const auto& cell : block) resp.cells.push_back(cell);
    resp.done = !lease->iter->has_top();
  } else {
    resp.done = true;  // empty effective range
  }
  cells_scanned_ += resp.cells.size();

  if (!resp.done) {
    lease->expires_at = std::chrono::steady_clock::now() + options_.lease_ttl;
    std::lock_guard lock(mutex_);
    leases_[req.lease_id] = std::move(lease);
  }
  // done: the lease (snapshot pin + admission ticket) releases here.
  return {Status::kOk, proto::encode(resp)};
}

RpcServer::Response TabletService::handle_scan_close(const std::string& body) {
  const auto req = proto::decode_scan_close_request(body);
  std::lock_guard lock(mutex_);
  leases_.erase(req.lease_id);  // closing an unknown lease is a no-op
  return {Status::kOk, ""};
}

RpcServer::Response TabletService::handle_tablet_lookup(
    const std::string& body) {
  const auto req = proto::decode_tablet_lookup_request(body);
  proto::TabletLookupResponse resp;
  resp.server_index = server_index_;
  resp.server_count = static_cast<std::uint32_t>(boundaries_.size() + 1);
  resp.boundaries = boundaries_;
  resp.table_exists = req.has_table && db_.table_exists(req.table);
  return {Status::kOk, proto::encode(resp)};
}

RpcServer::Response TabletService::handle_ensure_table(
    const std::string& body) {
  const auto req = proto::decode_ensure_table_request(body);
  if (req.preset != "default" && req.preset != "sum") {
    throw nosql::wire::WireError("unknown table preset: " + req.preset);
  }
  if (db_.table_exists(req.table)) return {Status::kOk, ""};
  try {
    if (req.preset == "sum") {
      db_.create_table(req.table, core::sum_table_config());
    } else {
      db_.create_table(req.table);
    }
  } catch (const std::exception&) {
    // Lost a create race with a concurrent ensure; existing is fine.
    if (!db_.table_exists(req.table)) throw;
    return {Status::kOk, ""};
  }
  if (on_create_) on_create_(req.table, req.preset);
  return {Status::kOk, ""};
}

RpcServer::Response TabletService::handle_compact_table(
    const std::string& body) {
  const auto req = proto::decode_compact_table_request(body);
  if (!db_.table_exists(req.table)) {
    return {Status::kNoSuchTable, "no such table: " + req.table};
  }
  db_.compact(req.table);
  return {Status::kOk, ""};
}

RpcServer::Response TabletService::handle_status() {
  proto::StatusResponse resp;
  resp.server_index = server_index_;
  resp.tables = db_.table_names();
  {
    std::lock_guard lock(mutex_);
    resp.live_leases = static_cast<std::uint32_t>(leases_.size());
  }
  resp.writes_applied = writes_applied_.load(std::memory_order_relaxed);
  resp.writes_skipped = writes_skipped_.load(std::memory_order_relaxed);
  resp.cells_scanned = cells_scanned_.load(std::memory_order_relaxed);
  return {Status::kOk, proto::encode(resp)};
}

std::size_t TabletService::live_leases() const {
  std::lock_guard lock(mutex_);
  return leases_.size();
}

void TabletService::expire_leases_now() {
  std::lock_guard lock(mutex_);
  leases_.clear();
}

void TabletService::sweep_loop() {
  const auto interval =
      std::max(options_.lease_ttl / 4, std::chrono::milliseconds(50));
  std::unique_lock lock(mutex_);
  while (!stopping_) {
    sweep_cv_.wait_for(lock, interval, [this] { return stopping_; });
    if (stopping_) return;
    const auto now = std::chrono::steady_clock::now();
    for (auto it = leases_.begin(); it != leases_.end();) {
      if (now > it->second->expires_at) {
        GRAPHULO_DEBUG << "reaping expired scan lease " << it->first;
        it = leases_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

}  // namespace graphulo::distributed
