#pragma once
// RpcServer: accepts connections on a loopback TCP port and runs one
// worker thread per connection, dispatching each framed request to a
// caller-supplied handler. The transport owns framing, request ids,
// deadline propagation, exception→status mapping, and per-verb
// observability; the handler (distributed::TabletService) owns the verb
// semantics.
//
// Threading: one accept thread plus one thread per live connection.
// stop() shuts down the listener and every connection socket, which
// wakes the blocked poll()s, then joins all threads. A server set
// draining() answers every request with kShuttingDown (the daemon uses
// this while it checkpoints on SIGTERM).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "rpc/wire.hpp"

namespace graphulo::rpc {

struct RpcServerOptions {
  std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
};

class RpcServer {
 public:
  /// What a handler returns: a status plus either a result body (kOk)
  /// or an error message.
  struct Response {
    Status status = Status::kOk;
    std::string body;
  };

  /// Invoked once per request, possibly concurrently from different
  /// connection threads. `deadline` is the client's propagated
  /// per-call deadline (nullopt = none); long handlers should check it
  /// cooperatively. Exceptions are mapped to statuses: WireError →
  /// kBadRequest, OverloadedError → kOverloaded, DeadlineExceeded →
  /// kDeadline, LeaseExpired → kNoSuchLease, TransientError →
  /// kTransient, anything else → kFatal.
  using Handler = std::function<Response(
      Verb verb, const std::string& body,
      std::optional<std::chrono::steady_clock::time_point> deadline)>;

  /// Binds 127.0.0.1:`port` (0 = ephemeral; read back via port()) and
  /// starts accepting. Throws ConnectionError if the bind fails.
  RpcServer(std::uint16_t port, Handler handler,
            RpcServerOptions options = {});
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// While true, every request is answered kShuttingDown without
  /// reaching the handler.
  void set_draining(bool draining) noexcept {
    draining_.store(draining, std::memory_order_relaxed);
  }

  /// Stops accepting, severs live connections, joins all threads.
  /// Idempotent; also called by the destructor.
  void stop();

 private:
  struct Connection {
    Socket socket;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve_connection(Connection* conn);
  Response dispatch(Verb verb, const std::string& body,
                    std::optional<std::chrono::steady_clock::time_point>
                        deadline) noexcept;
  void reap_finished_locked();

  Handler handler_;
  RpcServerOptions options_;
  Listener listener_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace graphulo::rpc
