#pragma once
// Thin POSIX TCP wrappers used by the RPC layer: a move-only connected
// Socket with deadline-aware blocking send/recv (non-blocking fd +
// poll), and a Listener that can be woken from another thread via
// shutdown() so servers stop cleanly.
//
// Failure model: every transport-level problem — refused connection,
// peer reset, EOF mid-message, poll deadline expiry — throws
// ConnectionError, which derives from util::TransientError so the
// standard with_retries loops treat a dropped connection like any
// other retryable fault. Fault-injection sites rpc.send / rpc.recv /
// rpc.accept sit in front of the corresponding syscalls.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "util/fault.hpp"

namespace graphulo::rpc {

/// Transport failure (connect/send/recv/accept, including deadline
/// expiry while blocked). Transient: reconnect-and-retry may succeed.
class ConnectionError : public util::TransientError {
 public:
  using util::TransientError::TransientError;
};

/// A connected TCP socket (non-blocking fd, blocking-style API via
/// poll). Move-only; the destructor closes the fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd);
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to host:port (numeric IPv4 or "localhost") within
  /// `timeout`; throws ConnectionError on failure or timeout.
  static Socket connect_tcp(const std::string& host, std::uint16_t port,
                            std::chrono::milliseconds timeout);

  /// All subsequent send/recv calls fail with ConnectionError once
  /// `deadline` passes; nullopt blocks indefinitely.
  void set_deadline(
      std::optional<std::chrono::steady_clock::time_point> deadline) {
    deadline_ = deadline;
  }

  /// Writes exactly `n` bytes; throws ConnectionError on error/deadline.
  void send_all(const char* data, std::size_t n);

  /// Reads exactly `n` bytes; throws ConnectionError on EOF, error, or
  /// deadline.
  void recv_all(char* data, std::size_t n);

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }

  /// Half-closes both directions, waking any thread blocked in poll on
  /// this fd (used to cancel in-flight I/O from another thread).
  void shutdown() noexcept;

  void close() noexcept;

 private:
  int wait_ready(short events);

  int fd_ = -1;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
};

/// A listening TCP socket bound to 127.0.0.1. Move-only.
class Listener {
 public:
  Listener() = default;
  ~Listener();

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned, read back via
  /// port()); throws ConnectionError on failure.
  static Listener listen_tcp(std::uint16_t port);

  /// Blocks for the next connection. Throws ConnectionError on failure
  /// — including when another thread called shutdown(), which is the
  /// server's stop signal.
  Socket accept();

  std::uint16_t port() const noexcept { return port_; }
  bool valid() const noexcept { return fd_ >= 0; }

  /// Wakes a blocked accept() with an error (stop signal).
  void shutdown() noexcept;

  void close() noexcept;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace graphulo::rpc
