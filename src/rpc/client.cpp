#include "rpc/client.hpp"

#include <array>

#include "nosql/admission.hpp"
#include "nosql/codec.hpp"
#include "obs/metrics.hpp"

namespace graphulo::rpc {

namespace {

obs::Counter& requests_counter(Verb verb) {
  static std::array<obs::Counter*, kMaxVerb + 1> handles = [] {
    std::array<obs::Counter*, kMaxVerb + 1> out{};
    auto& reg = obs::MetricsRegistry::global();
    for (std::uint8_t v = 0; v <= kMaxVerb; ++v) {
      out[v] = &reg.counter("rpc.client.requests.total",
                            "RPC calls issued, by verb",
                            {{"verb", verb_name(static_cast<Verb>(v))}});
    }
    return out;
  }();
  return *handles[static_cast<std::uint8_t>(verb)];
}

obs::Counter& reconnects_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "rpc.client.reconnects.total", "RPC client (re)connect attempts");
  return c;
}

obs::Counter& bytes_sent_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "rpc.client.bytes.sent", "Request payload bytes sent");
  return c;
}

obs::Counter& bytes_recv_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "rpc.client.bytes.recv", "Response payload bytes received");
  return c;
}

}  // namespace

RpcClient::RpcClient(std::string host, std::uint16_t port,
                     ClientOptions options)
    : host_(std::move(host)), port_(port), options_(options) {}

void RpcClient::connect() {
  if (socket_.valid()) return;
  reconnects_counter().inc();
  socket_ = Socket::connect_tcp(host_, port_, options_.connect_timeout);
}

void RpcClient::disconnect() noexcept { socket_.close(); }

std::string RpcClient::call(Verb verb, const std::string& body) {
  return call(verb, body, options_.call_timeout);
}

std::string RpcClient::call(Verb verb, const std::string& body,
                            std::chrono::milliseconds timeout) {
  connect();
  requests_counter(verb).inc();

  RequestHeader header;
  header.verb = verb;
  header.request_id = next_request_id_++;
  header.deadline_ms = timeout.count() > 0
                           ? static_cast<std::uint32_t>(timeout.count())
                           : 0;
  const std::string request = encode_request(header, body);

  std::string payload;
  try {
    if (timeout.count() > 0) {
      socket_.set_deadline(std::chrono::steady_clock::now() + timeout);
    } else {
      socket_.set_deadline(std::nullopt);
    }
    send_frame(socket_, request, options_.max_frame_bytes);
    bytes_sent_counter().inc(request.size());
    payload = recv_frame(socket_, options_.max_frame_bytes);
    bytes_recv_counter().inc(payload.size());
  } catch (const ConnectionError&) {
    // The stream is dead or unsynchronized; the next call reconnects.
    disconnect();
    throw;
  }

  ResponseHeader response;
  std::size_t body_offset = 0;
  try {
    response = decode_response(payload, body_offset);
  } catch (const nosql::wire::WireError& e) {
    disconnect();
    throw ConnectionError(std::string("rpc: bad response header: ") +
                          e.what());
  }
  if (response.request_id != header.request_id) {
    disconnect();
    throw ConnectionError("rpc: response id mismatch (got " +
                          std::to_string(response.request_id) + ", want " +
                          std::to_string(header.request_id) + ")");
  }

  std::string result = payload.substr(body_offset);
  switch (response.status) {
    case Status::kOk:
      return result;
    case Status::kTransient:
      throw util::TransientError("remote transient: " + result);
    case Status::kOverloaded:
      throw nosql::OverloadedError("remote overloaded: " + result);
    case Status::kDeadline:
      throw nosql::DeadlineExceeded("remote deadline: " + result);
    case Status::kNoSuchLease:
      throw LeaseExpired("remote lease lost: " + result);
    case Status::kShuttingDown:
      disconnect();
      throw ConnectionError("remote shutting down: " + result);
    case Status::kBadRequest:
    case Status::kNoSuchTable:
    case Status::kFatal:
      throw RemoteError(response.status, result);
  }
  disconnect();
  throw ConnectionError("rpc: unknown response status");
}

}  // namespace graphulo::rpc
