#include "rpc/wire.hpp"

#include "nosql/codec.hpp"
#include "util/checksum.hpp"

namespace graphulo::rpc {

namespace wire = nosql::wire;

const char* verb_name(Verb verb) noexcept {
  switch (verb) {
    case Verb::kPing: return "ping";
    case Verb::kWriteBatch: return "write_batch";
    case Verb::kScanOpen: return "scan_open";
    case Verb::kScanContinue: return "scan_continue";
    case Verb::kScanClose: return "scan_close";
    case Verb::kTabletLookup: return "tablet_lookup";
    case Verb::kEnsureTable: return "ensure_table";
    case Verb::kCompactTable: return "compact_table";
    case Verb::kStatus: return "status";
  }
  return "unknown";
}

const char* status_name(Status status) noexcept {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kTransient: return "transient";
    case Status::kOverloaded: return "overloaded";
    case Status::kDeadline: return "deadline_exceeded";
    case Status::kBadRequest: return "bad_request";
    case Status::kNoSuchTable: return "no_such_table";
    case Status::kNoSuchLease: return "no_such_lease";
    case Status::kFatal: return "fatal";
    case Status::kShuttingDown: return "shutting_down";
  }
  return "unknown";
}

std::string encode_request(const RequestHeader& header,
                           const std::string& body) {
  std::string out;
  out.reserve(13 + body.size());
  wire::put_u8(out, static_cast<std::uint8_t>(header.verb));
  wire::put_u64(out, header.request_id);
  wire::put_u32(out, header.deadline_ms);
  out.append(body);
  return out;
}

RequestHeader decode_request(const std::string& payload,
                             std::size_t& body_offset) {
  wire::Cursor cursor(payload);
  RequestHeader header;
  const std::uint8_t verb = wire::get_u8(cursor);
  if (verb > kMaxVerb) {
    throw wire::WireError("wire: unknown verb " + std::to_string(verb));
  }
  header.verb = static_cast<Verb>(verb);
  header.request_id = wire::get_u64(cursor);
  header.deadline_ms = wire::get_u32(cursor);
  body_offset = cursor.pos;
  return header;
}

std::string encode_response(const ResponseHeader& header,
                            const std::string& body) {
  std::string out;
  out.reserve(10 + body.size());
  wire::put_u8(out, static_cast<std::uint8_t>(header.verb));
  wire::put_u64(out, header.request_id);
  wire::put_u8(out, static_cast<std::uint8_t>(header.status));
  out.append(body);
  return out;
}

ResponseHeader decode_response(const std::string& payload,
                               std::size_t& body_offset) {
  wire::Cursor cursor(payload);
  ResponseHeader header;
  const std::uint8_t verb = wire::get_u8(cursor);
  if (verb > kMaxVerb) {
    throw wire::WireError("wire: unknown verb " + std::to_string(verb));
  }
  header.verb = static_cast<Verb>(verb);
  header.request_id = wire::get_u64(cursor);
  const std::uint8_t status = wire::get_u8(cursor);
  if (status > static_cast<std::uint8_t>(Status::kShuttingDown)) {
    throw wire::WireError("wire: unknown status " + std::to_string(status));
  }
  header.status = static_cast<Status>(status);
  body_offset = cursor.pos;
  return header;
}

void send_frame(Socket& sock, const std::string& payload,
                std::uint32_t max_frame_bytes) {
  if (payload.size() > max_frame_bytes) {
    throw std::length_error("rpc: frame payload " +
                            std::to_string(payload.size()) +
                            " bytes exceeds max_frame_bytes " +
                            std::to_string(max_frame_bytes));
  }
  std::string header;
  header.reserve(kFrameHeaderBytes);
  wire::put_u32(header, kFrameMagic);
  wire::put_u32(header, static_cast<std::uint32_t>(payload.size()));
  wire::put_u32(header, util::crc32(payload.data(), payload.size()));
  sock.send_all(header.data(), header.size());
  sock.send_all(payload.data(), payload.size());
}

std::string recv_frame(Socket& sock, std::uint32_t max_frame_bytes) {
  char header[kFrameHeaderBytes];
  sock.recv_all(header, sizeof(header));
  wire::Cursor cursor(header, sizeof(header));
  const std::uint32_t magic = wire::get_u32(cursor);
  if (magic != kFrameMagic) {
    throw ConnectionError("rpc: bad frame magic (stream unsynchronized)");
  }
  const std::uint32_t len = wire::get_u32(cursor);
  if (len > max_frame_bytes) {
    throw ConnectionError("rpc: frame length " + std::to_string(len) +
                          " exceeds max_frame_bytes " +
                          std::to_string(max_frame_bytes));
  }
  const std::uint32_t want_crc = wire::get_u32(cursor);
  std::string payload(len, '\0');
  if (len > 0) sock.recv_all(payload.data(), len);
  const std::uint32_t got_crc = util::crc32(payload.data(), payload.size());
  if (got_crc != want_crc) {
    throw ConnectionError("rpc: frame crc mismatch (corrupt stream)");
  }
  return payload;
}

}  // namespace graphulo::rpc
