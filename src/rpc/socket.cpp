#include "rpc/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace graphulo::rpc {

namespace {

[[noreturn]] void throw_errno(const std::string& what, int err) {
  throw ConnectionError(what + ": " + std::strerror(err));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)", errno);
  }
}

sockaddr_in loopback_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const char* numeric =
      (host.empty() || host == "localhost") ? "127.0.0.1" : host.c_str();
  if (::inet_pton(AF_INET, numeric, &addr.sin_addr) != 1) {
    throw ConnectionError("bad host address: " + host);
  }
  return addr;
}

}  // namespace

Socket::Socket(int fd) : fd_(fd) {}

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_), deadline_(other.deadline_) {
  other.fd_ = -1;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    deadline_ = other.deadline_;
    other.fd_ = -1;
  }
  return *this;
}

Socket Socket::connect_tcp(const std::string& host, std::uint16_t port,
                           std::chrono::milliseconds timeout) {
  const sockaddr_in addr = loopback_addr(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket", errno);
  Socket sock(fd);
  set_nonblocking(fd);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (errno != EINPROGRESS) throw_errno("connect", errno);
    pollfd pfd{fd, POLLOUT, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    if (rc == 0) throw ConnectionError("connect: timed out");
    if (rc < 0) throw_errno("poll(connect)", errno);
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      throw_errno("getsockopt(SO_ERROR)", errno);
    }
    if (err != 0) throw_errno("connect", err);
  }
  return sock;
}

int Socket::wait_ready(short events) {
  int timeout_ms = -1;
  if (deadline_) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= *deadline_) return 0;
    timeout_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(*deadline_ - now)
            .count() +
        1);
  }
  pollfd pfd{fd_, events, 0};
  return ::poll(&pfd, 1, timeout_ms);
}

void Socket::send_all(const char* data, std::size_t n) {
  util::fault::point(util::fault::sites::kRpcSend);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const int prc = wait_ready(POLLOUT);
      if (prc == 0) throw ConnectionError("send: deadline exceeded");
      if (prc < 0 && errno != EINTR) throw_errno("poll(send)", errno);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    throw_errno("send", errno);
  }
}

void Socket::recv_all(char* data, std::size_t n) {
  util::fault::point(util::fault::sites::kRpcRecv);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::recv(fd_, data + got, n - got, 0);
    if (rc > 0) {
      got += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc == 0) throw ConnectionError("recv: connection closed by peer");
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const int prc = wait_ready(POLLIN);
      if (prc == 0) throw ConnectionError("recv: deadline exceeded");
      if (prc < 0 && errno != EINTR) throw_errno("poll(recv)", errno);
      continue;
    }
    if (errno == EINTR) continue;
    throw_errno("recv", errno);
  }
}

void Socket::shutdown() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::~Listener() { close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

Listener Listener::listen_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket", errno);
  Listener lst;
  lst.fd_ = fd;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr("127.0.0.1", port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    throw_errno("bind", errno);
  }
  if (::listen(fd, 64) < 0) throw_errno("listen", errno);
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    throw_errno("getsockname", errno);
  }
  lst.port_ = ntohs(bound.sin_port);
  return lst;
}

Socket Listener::accept() {
  util::fault::point(util::fault::sites::kRpcAccept);
  for (;;) {
    const int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd >= 0) {
      Socket sock(cfd);
      set_nonblocking(cfd);
      const int one = 1;
      ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return sock;
    }
    if (errno == EINTR) continue;
    throw_errno("accept", errno);
  }
}

void Listener::shutdown() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Listener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace graphulo::rpc
