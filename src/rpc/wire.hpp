#pragma once
// The RPC wire protocol: CRC-framed, length-prefixed binary messages
// over a Socket.
//
//   frame    = magic u32 | len u32 | crc32 u32 | payload[len]
//   request  = verb u8 | request_id u64 | deadline_ms u32 | body
//   response = verb u8 | request_id u64 | status u8 | body
//
// All integers are fixed-width little-endian (nosql::wire codecs);
// strings inside bodies are u32-length-prefixed. The crc covers the
// payload only. len is bounded by max_frame_bytes on both ends; a bad
// magic, oversized length, or crc mismatch means the byte stream is
// unsynchronized and the connection is abandoned (ConnectionError).
//
// A non-kOk response carries a human-readable error message as its
// body. The client maps statuses back onto the process-local failure
// taxonomy (see RpcClient::call) so remote failures retry and classify
// exactly like local ones.

#include <cstdint>
#include <stdexcept>
#include <string>

#include "rpc/socket.hpp"

namespace graphulo::rpc {

inline constexpr std::uint32_t kFrameMagic = 0x554C5247;  // "GRLU" LE
inline constexpr std::size_t kFrameHeaderBytes = 12;
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 8u << 20;

/// The four RPC surfaces (plus ping): bulk writes, lease-based
/// resumable scans, tablet-map/table control, and server status.
enum class Verb : std::uint8_t {
  kPing = 0,
  kWriteBatch = 1,
  kScanOpen = 2,
  kScanContinue = 3,
  kScanClose = 4,
  kTabletLookup = 5,
  kEnsureTable = 6,
  kCompactTable = 7,
  kStatus = 8,
};
inline constexpr std::uint8_t kMaxVerb = 8;

enum class Status : std::uint8_t {
  kOk = 0,
  kTransient = 1,     ///< retry same server (maps to util::TransientError)
  kOverloaded = 2,    ///< admission shed (maps to nosql::OverloadedError)
  kDeadline = 3,      ///< server hit the propagated deadline
  kBadRequest = 4,    ///< malformed frame body / unknown verb
  kNoSuchTable = 5,   ///< table not present on the server
  kNoSuchLease = 6,   ///< scan lease expired or unknown (resume via re-open)
  kFatal = 7,         ///< server-side FatalError / unexpected exception
  kShuttingDown = 8,  ///< server draining; reconnect elsewhere / later
};

const char* verb_name(Verb verb) noexcept;
const char* status_name(Status status) noexcept;

/// A scan lease the server no longer holds (expired TTL, server
/// restart). Transient from the caller's perspective: the remote
/// scanner re-opens the scan from its last continuation key.
class LeaseExpired : public util::TransientError {
 public:
  using util::TransientError::TransientError;
};

/// Non-retryable remote failure (kBadRequest, kNoSuchTable, kFatal),
/// carrying the server's status code and message.
class RemoteError : public std::runtime_error {
 public:
  RemoteError(Status status, const std::string& message)
      : std::runtime_error(std::string(status_name(status)) + ": " + message),
        status_(status) {}
  Status status() const noexcept { return status_; }

 private:
  Status status_;
};

struct RequestHeader {
  Verb verb = Verb::kPing;
  std::uint64_t request_id = 0;
  std::uint32_t deadline_ms = 0;  ///< 0 = no deadline
};

struct ResponseHeader {
  Verb verb = Verb::kPing;
  std::uint64_t request_id = 0;
  Status status = Status::kOk;
};

/// Prepends the request header to `body`, producing a frame payload.
std::string encode_request(const RequestHeader& header,
                           const std::string& body);

/// Parses a request payload; on return `body_cursor` covers the body.
/// Throws nosql::wire::WireError on truncation or an unknown verb.
RequestHeader decode_request(const std::string& payload,
                             std::size_t& body_offset);

std::string encode_response(const ResponseHeader& header,
                            const std::string& body);
ResponseHeader decode_response(const std::string& payload,
                               std::size_t& body_offset);

/// Frames and sends one payload. Throws ConnectionError on transport
/// failure, std::length_error if payload exceeds max_frame_bytes.
void send_frame(Socket& sock, const std::string& payload,
                std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

/// Receives one frame and returns its payload. Throws ConnectionError
/// on EOF/transport failure, bad magic, oversized length, or crc
/// mismatch (the stream cannot be resynchronized after any of these).
std::string recv_frame(Socket& sock,
                       std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

}  // namespace graphulo::rpc
