#pragma once
// RpcClient: one connection to one tablet server. call() frames a
// request, propagates the caller's deadline over the wire, and maps
// the response status back onto the process-local failure taxonomy so
// remote failures flow through the same with_retries /
// BatchWriter-classification machinery as local ones:
//
//   wire status     -> thrown exception
//   ------------------------------------------------------------------
//   kTransient      -> util::TransientError        (retry, same server)
//   kOverloaded     -> nosql::OverloadedError      (admission shed)
//   kDeadline       -> nosql::DeadlineExceeded     (not auto-retried)
//   kNoSuchLease    -> rpc::LeaseExpired           (scan re-open + resume)
//   kShuttingDown   -> rpc::ConnectionError        (reconnect + retry)
//   kBadRequest,
//   kNoSuchTable,
//   kFatal          -> rpc::RemoteError            (not retryable)
//   transport fault -> rpc::ConnectionError        (reconnect + retry)
//
// Not thread-safe; distributed::Cluster pools clients and serializes
// access per connection. A transport failure disconnects the client;
// the next call() reconnects.

#include <chrono>
#include <cstdint>
#include <string>

#include "rpc/wire.hpp"

namespace graphulo::rpc {

struct ClientOptions {
  std::chrono::milliseconds connect_timeout{5000};
  /// Default per-call deadline, sent to the server as deadline_ms and
  /// enforced locally on the socket.
  std::chrono::milliseconds call_timeout{30000};
  std::uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
};

class RpcClient {
 public:
  RpcClient(std::string host, std::uint16_t port, ClientOptions options = {});

  /// Sends one request and returns the kOk response body; reconnects
  /// first if the connection is down. Throws per the mapping above.
  std::string call(Verb verb, const std::string& body);
  std::string call(Verb verb, const std::string& body,
                   std::chrono::milliseconds timeout);

  /// Connects if not connected; throws ConnectionError on failure.
  void connect();
  void disconnect() noexcept;
  bool connected() const noexcept { return socket_.valid(); }

  const std::string& host() const noexcept { return host_; }
  std::uint16_t port() const noexcept { return port_; }

 private:
  std::string host_;
  std::uint16_t port_;
  ClientOptions options_;
  Socket socket_;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace graphulo::rpc
