#include "rpc/server.hpp"

#include <array>

#include "nosql/admission.hpp"
#include "nosql/codec.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace graphulo::rpc {

namespace {

struct VerbMetrics {
  obs::Counter* requests = nullptr;
  obs::Counter* errors = nullptr;
  obs::Histogram* latency = nullptr;
};

/// Per-verb handles resolved once; index by the verb's wire value.
VerbMetrics& verb_metrics(Verb verb) {
  static std::array<VerbMetrics, kMaxVerb + 1> handles = [] {
    std::array<VerbMetrics, kMaxVerb + 1> out;
    auto& reg = obs::MetricsRegistry::global();
    for (std::uint8_t v = 0; v <= kMaxVerb; ++v) {
      const obs::Labels labels = {{"verb", verb_name(static_cast<Verb>(v))}};
      out[v].requests = &reg.counter("rpc.server.requests.total",
                                     "RPC requests served, by verb", labels);
      out[v].errors = &reg.counter("rpc.server.errors.total",
                                   "Non-ok RPC responses, by verb", labels);
      out[v].latency = &reg.histogram(
          "rpc.server.latency.seconds", "RPC handler latency, by verb",
          obs::default_latency_buckets(), labels);
    }
    return out;
  }();
  return handles[static_cast<std::uint8_t>(verb)];
}

obs::Counter& bytes_in_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "rpc.server.bytes.in", "Request payload bytes received");
  return c;
}

obs::Counter& bytes_out_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "rpc.server.bytes.out", "Response payload bytes sent");
  return c;
}

obs::Gauge& connections_gauge() {
  static obs::Gauge& g = obs::MetricsRegistry::global().gauge(
      "rpc.server.connections", "Live RPC connections");
  return g;
}

}  // namespace

RpcServer::RpcServer(std::uint16_t port, Handler handler,
                     RpcServerOptions options)
    : handler_(std::move(handler)), options_(options) {
  listener_ = Listener::listen_tcp(port);
  port_ = listener_.port();
  accept_thread_ = std::thread([this] { accept_loop(); });
}

RpcServer::~RpcServer() { stop(); }

void RpcServer::stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  listener_.shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard lock(connections_mutex_);
    conns.swap(connections_);
  }
  for (auto& conn : conns) conn->socket.shutdown();
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  listener_.close();
}

void RpcServer::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void RpcServer::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    Socket sock;
    try {
      sock = listener_.accept();
    } catch (const util::TransientError& e) {
      if (stopping_.load(std::memory_order_relaxed)) return;
      GRAPHULO_DEBUG << "rpc accept failed, continuing: " << e.what();
      continue;
    }
    std::lock_guard lock(connections_mutex_);
    if (stopping_.load(std::memory_order_relaxed)) return;
    reap_finished_locked();
    auto conn = std::make_unique<Connection>();
    conn->socket = std::move(sock);
    Connection* raw = conn.get();
    conn->thread = std::thread([this, raw] { serve_connection(raw); });
    connections_.push_back(std::move(conn));
  }
}

RpcServer::Response RpcServer::dispatch(
    Verb verb, const std::string& body,
    std::optional<std::chrono::steady_clock::time_point> deadline) noexcept {
  try {
    return handler_(verb, body, deadline);
  } catch (const nosql::wire::WireError& e) {
    return {Status::kBadRequest, e.what()};
  } catch (const nosql::OverloadedError& e) {
    return {Status::kOverloaded, e.what()};
  } catch (const nosql::DeadlineExceeded& e) {
    return {Status::kDeadline, e.what()};
  } catch (const LeaseExpired& e) {
    return {Status::kNoSuchLease, e.what()};
  } catch (const util::FatalError& e) {
    return {Status::kFatal, e.what()};
  } catch (const util::TransientError& e) {
    return {Status::kTransient, e.what()};
  } catch (const std::exception& e) {
    return {Status::kFatal, e.what()};
  }
}

void RpcServer::serve_connection(Connection* conn) {
  connections_gauge().add(1);
  for (;;) {
    std::string payload;
    try {
      conn->socket.set_deadline(std::nullopt);
      payload = recv_frame(conn->socket, options_.max_frame_bytes);
    } catch (const util::TransientError&) {
      break;  // peer closed, corrupt stream, or stop() severed us
    }
    bytes_in_counter().inc(payload.size());

    ResponseHeader response_header;
    Response response;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    try {
      std::size_t body_offset = 0;
      const RequestHeader request = decode_request(payload, body_offset);
      response_header.verb = request.verb;
      response_header.request_id = request.request_id;
      if (request.deadline_ms > 0) {
        deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(request.deadline_ms);
      }
      VerbMetrics& metrics = verb_metrics(request.verb);
      metrics.requests->inc();
      if (draining_.load(std::memory_order_relaxed) ||
          stopping_.load(std::memory_order_relaxed)) {
        response = {Status::kShuttingDown, "server shutting down"};
      } else {
        util::Timer timer;
        response = dispatch(request.verb, payload.substr(body_offset),
                            deadline);
        metrics.latency->observe(timer.seconds());
      }
      if (response.status != Status::kOk) metrics.errors->inc();
    } catch (const nosql::wire::WireError& e) {
      // Header itself unparseable; answer with what we can.
      response = {Status::kBadRequest, e.what()};
    }

    response_header.status = response.status;
    const std::string out = encode_response(response_header, response.body);
    try {
      // The response send honors the request's deadline so a stuck
      // client cannot pin this worker forever.
      conn->socket.set_deadline(deadline);
      send_frame(conn->socket, out, options_.max_frame_bytes);
      bytes_out_counter().inc(out.size());
    } catch (const util::TransientError&) {
      break;
    } catch (const std::length_error& e) {
      GRAPHULO_WARN << "rpc response exceeds frame limit, dropping "
                       "connection: "
                    << e.what();
      break;
    }
  }
  conn->socket.close();
  connections_gauge().add(-1);
  conn->done.store(true, std::memory_order_release);
}

}  // namespace graphulo::rpc
