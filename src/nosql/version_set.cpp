#include "nosql/version_set.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/fault.hpp"

namespace graphulo::nosql {

std::size_t Version::file_count() const {
  std::size_t n = 0;
  for (const auto& level : levels) n += level.size();
  return n;
}

std::uint64_t Version::total_bytes() const {
  std::uint64_t n = 0;
  for (const auto& level : levels)
    for (const FileMeta& m : level) n += m.bytes;
  return n;
}

std::uint64_t Version::total_cells() const {
  std::uint64_t n = 0;
  for (const auto& level : levels)
    for (const FileMeta& m : level) n += m.cells;
  return n;
}

std::uint64_t Version::level_bytes(std::size_t level) const {
  if (level >= levels.size()) return 0;
  std::uint64_t n = 0;
  for (const FileMeta& m : levels[level]) n += m.bytes;
  return n;
}

std::vector<FileMeta> Version::overlapping(std::size_t level, const Key& lo,
                                           const Key& hi) const {
  std::vector<FileMeta> out;
  if (level >= levels.size()) return out;
  for (const FileMeta& m : levels[level]) {
    if (m.overlaps(lo, hi)) out.push_back(m);
  }
  return out;
}

bool Version::any_overlap_below(std::size_t level, const Key& lo,
                                const Key& hi) const {
  for (std::size_t l = level + 1; l < levels.size(); ++l) {
    for (const FileMeta& m : levels[l]) {
      if (m.overlaps(lo, hi)) return true;
    }
  }
  return false;
}

std::vector<FileMeta> Version::all_files() const {
  std::vector<FileMeta> out;
  out.reserve(file_count());
  for (const auto& level : levels) {
    out.insert(out.end(), level.begin(), level.end());
  }
  return out;
}

bool VersionSet::apply(const VersionEdit& edit) {
  // Fires before any state changes: a fired fault leaves the previous
  // version installed and the caller's output files unreferenced.
  util::fault::point(util::fault::sites::kManifestInstall);
  auto next = std::make_shared<Version>(*current_);
  for (const std::uint64_t id : edit.removed) {
    bool found = false;
    for (auto& level : next->levels) {
      const auto it = std::find_if(
          level.begin(), level.end(),
          [&](const FileMeta& m) { return m.file_id == id; });
      if (it != level.end()) {
        level.erase(it);
        found = true;
        break;
      }
    }
    // A removed input vanished: this edit raced another rewrite of the
    // same files. Reject wholesale; the caller discards its output.
    if (!found) return false;
  }
  for (const FileMeta& m : edit.added) {
    const auto lvl = static_cast<std::size_t>(m.level);
    if (next->levels.size() <= lvl) next->levels.resize(lvl + 1);
    auto& level = next->levels[lvl];
    if (lvl == 0) {
      // L0 stays newest-first by data seq.
      const auto pos = std::find_if(
          level.begin(), level.end(),
          [&](const FileMeta& f) { return f.seq < m.seq; });
      level.insert(pos, m);
    } else {
      const auto pos = std::lower_bound(
          level.begin(), level.end(), m,
          [](const FileMeta& a, const FileMeta& b) {
            return a.first_key < b.first_key;
          });
      const auto at = level.insert(pos, m);
      const auto idx = static_cast<std::size_t>(at - level.begin());
      // Disjointness is COLUMN-level (see compare_columns): two files
      // holding different versions of one column overlap even though
      // their full-key ranges would not.
      if ((idx > 0 && compare_columns(level[idx - 1].last_key,
                                      level[idx].first_key) >= 0) ||
          (idx + 1 < level.size() &&
           compare_columns(level[idx].last_key,
                           level[idx + 1].first_key) >= 0)) {
        throw std::logic_error(
            "VersionSet: overlapping key ranges inside sorted level " +
            std::to_string(lvl));
      }
    }
  }
  while (!next->levels.empty() && next->levels.back().empty()) {
    next->levels.pop_back();
  }
  current_ = std::move(next);
  return true;
}

namespace {

/// Key span [lo, hi] covered by `files` (files must be non-empty).
void span_of(const std::vector<FileMeta>& files, Key& lo, Key& hi) {
  lo = files.front().first_key;
  hi = files.front().last_key;
  for (const FileMeta& m : files) {
    if (m.first_key < lo) lo = m.first_key;
    if (hi < m.last_key) hi = m.last_key;
  }
}

/// All of L0 plus its overlap in the next sorted level.
CompactionPick pick_l0(const Version& v, const CompactionConfig& cfg) {
  CompactionPick p;
  p.input_level = 0;
  p.output_level = cfg.max_levels > 1 ? 1 : 0;
  p.inputs = v.levels[0];  // newest-first already
  Key lo, hi;
  span_of(p.inputs, lo, hi);
  if (p.output_level > 0) {
    const auto overlap = v.overlapping(p.output_level, lo, hi);
    p.inputs.insert(p.inputs.end(), overlap.begin(), overlap.end());
    span_of(p.inputs, lo, hi);
  }
  p.bottommost = !v.any_overlap_below(p.output_level, lo, hi);
  return p;
}

/// The largest file of `level` plus its overlap one level down.
CompactionPick pick_push_down(const Version& v, std::size_t level) {
  const auto& files = v.levels[level];
  std::size_t victim = 0;
  for (std::size_t i = 1; i < files.size(); ++i) {
    if (files[i].bytes > files[victim].bytes) victim = i;
  }
  CompactionPick p;
  p.input_level = level;
  p.output_level = level + 1;
  p.inputs.push_back(files[victim]);
  const auto overlap = v.overlapping(level + 1, files[victim].first_key,
                                     files[victim].last_key);
  p.inputs.insert(p.inputs.end(), overlap.begin(), overlap.end());
  Key lo, hi;
  span_of(p.inputs, lo, hi);
  p.bottommost = !v.any_overlap_below(p.output_level, lo, hi);
  return p;
}

}  // namespace

std::optional<CompactionPick> pick_compaction(const Version& v,
                                              const CompactionConfig& cfg,
                                              std::size_t flat_fanin,
                                              bool pressure) {
  const std::size_t l0 = v.levels.empty() ? 0 : v.levels[0].size();
  if (!cfg.leveled) {
    // Flat layout: every file lives in L0 and a "compaction" is the
    // legacy full merge, triggered by fanin or back-pressure.
    if (l0 < 2) return std::nullopt;
    if (l0 < flat_fanin && !pressure) return std::nullopt;
    CompactionPick p;
    p.input_level = 0;
    p.output_level = 0;
    p.inputs = v.levels[0];
    p.bottommost = v.file_count() == p.inputs.size();
    return p;
  }
  if (l0 >= cfg.level0_trigger && l0 >= 1) return pick_l0(v, cfg);
  for (std::size_t l = 1; l < v.levels.size(); ++l) {
    if (l + 1 >= cfg.max_levels) break;  // bottom level: nowhere to push
    if (v.levels[l].empty()) continue;
    if (v.level_bytes(l) <= cfg.budget_for(l)) continue;
    return pick_push_down(v, l);
  }
  if (pressure) {
    // Progress guarantee for back-pressured writers: shrink the file
    // count even when no size trigger is due.
    if (l0 >= 2) return pick_l0(v, cfg);
    std::size_t fullest = 0, most = 0;
    for (std::size_t l = 1; l < v.levels.size(); ++l) {
      if (v.levels[l].size() > most) {
        most = v.levels[l].size();
        fullest = l;
      }
    }
    if (most >= 2) {
      if (fullest + 1 < cfg.max_levels) return pick_push_down(v, fullest);
      // Bottom level: merge it into one file in place.
      CompactionPick p;
      p.input_level = fullest;
      p.output_level = fullest;
      p.inputs = v.levels[fullest];
      p.bottommost = fullest + 1 >= v.levels.size();
      return p;
    }
  }
  return std::nullopt;
}

}  // namespace graphulo::nosql
