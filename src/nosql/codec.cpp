#include "nosql/codec.hpp"

#include <charconv>
#include <cstdio>

namespace graphulo::nosql {

std::string encode_double(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) {  // cannot happen for finite doubles in 64 bytes
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  }
  return std::string(buf, ptr);
}

std::optional<double> decode_double(const std::string& bytes) {
  double v = 0.0;
  const char* first = bytes.data();
  const char* last = bytes.data() + bytes.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last || bytes.empty()) return std::nullopt;
  return v;
}

std::string encode_int(std::int64_t v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  return std::string(buf, ptr);
}

std::optional<std::int64_t> decode_int(const std::string& bytes) {
  std::int64_t v = 0;
  const char* first = bytes.data();
  const char* last = bytes.data() + bytes.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last || bytes.empty()) return std::nullopt;
  return v;
}

std::string encode_u64_be(std::uint64_t v) {
  std::string out(8, '\0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = static_cast<char>(v & 0xff);
    v >>= 8;
  }
  return out;
}

std::optional<std::uint64_t> decode_u64_be(const std::string& bytes) {
  if (bytes.size() != 8) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : bytes) {
    v = (v << 8) | static_cast<unsigned char>(c);
  }
  return v;
}

// ---- wire codecs --------------------------------------------------------

namespace wire {

namespace {

void put_le(std::string& out, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out.push_back(static_cast<char>(v & 0xff));
    v >>= 8;
  }
}

std::uint64_t get_le(Cursor& c, std::size_t bytes) {
  if (c.remaining() < bytes) {
    throw WireError("wire: truncated integer (need " + std::to_string(bytes) +
                    " bytes, have " + std::to_string(c.remaining()) + ")");
  }
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(c.data[c.pos + i]))
         << (8 * i);
  }
  c.pos += bytes;
  return v;
}

}  // namespace

void Cursor::expect_end() const {
  if (pos != size) {
    throw WireError("wire: " + std::to_string(size - pos) +
                    " trailing bytes after message end");
  }
}

void put_u8(std::string& out, std::uint8_t v) { put_le(out, v, 1); }
void put_u16(std::string& out, std::uint16_t v) { put_le(out, v, 2); }
void put_u32(std::string& out, std::uint32_t v) { put_le(out, v, 4); }
void put_u64(std::string& out, std::uint64_t v) { put_le(out, v, 8); }
void put_i64(std::string& out, std::int64_t v) {
  put_le(out, static_cast<std::uint64_t>(v), 8);
}

void put_string(std::string& out, const std::string& s) {
  if (s.size() > UINT32_MAX) throw WireError("wire: string too long");
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

std::uint8_t get_u8(Cursor& c) { return static_cast<std::uint8_t>(get_le(c, 1)); }
std::uint16_t get_u16(Cursor& c) {
  return static_cast<std::uint16_t>(get_le(c, 2));
}
std::uint32_t get_u32(Cursor& c) {
  return static_cast<std::uint32_t>(get_le(c, 4));
}
std::uint64_t get_u64(Cursor& c) { return get_le(c, 8); }
std::int64_t get_i64(Cursor& c) { return static_cast<std::int64_t>(get_le(c, 8)); }

std::string get_string(Cursor& c) {
  const std::uint32_t len = get_u32(c);
  if (c.remaining() < len) {
    throw WireError("wire: truncated string (need " + std::to_string(len) +
                    " bytes, have " + std::to_string(c.remaining()) + ")");
  }
  std::string s(c.data + c.pos, len);
  c.pos += len;
  return s;
}

void put_key(std::string& out, const Key& key) {
  put_string(out, key.row);
  put_string(out, key.family);
  put_string(out, key.qualifier);
  put_string(out, key.visibility);
  put_i64(out, key.ts);
  put_u8(out, key.deleted ? 1 : 0);
}

Key get_key(Cursor& c) {
  Key k;
  k.row = get_string(c);
  k.family = get_string(c);
  k.qualifier = get_string(c);
  k.visibility = get_string(c);
  k.ts = get_i64(c);
  k.deleted = get_u8(c) != 0;
  return k;
}

void put_cell(std::string& out, const Cell& cell) {
  put_key(out, cell.key);
  put_string(out, cell.value);
}

Cell get_cell(Cursor& c) {
  Cell cell;
  cell.key = get_key(c);
  cell.value = get_string(c);
  return cell;
}

void put_mutation(std::string& out, const Mutation& m) {
  put_string(out, m.row());
  const auto& updates = m.updates();
  if (updates.size() > UINT32_MAX) throw WireError("wire: mutation too large");
  put_u32(out, static_cast<std::uint32_t>(updates.size()));
  for (const auto& u : updates) {
    put_string(out, u.family);
    put_string(out, u.qualifier);
    put_string(out, u.visibility);
    put_i64(out, u.ts);
    put_u8(out, static_cast<std::uint8_t>((u.has_ts ? 1 : 0) |
                                          (u.deleted ? 2 : 0)));
    put_string(out, u.value);
  }
}

Mutation get_mutation(Cursor& c) {
  Mutation m(get_string(c));
  const std::uint32_t count = get_u32(c);
  for (std::uint32_t i = 0; i < count; ++i) {
    ColumnUpdate u;
    u.family = get_string(c);
    u.qualifier = get_string(c);
    u.visibility = get_string(c);
    u.ts = get_i64(c);
    const std::uint8_t flags = get_u8(c);
    if (flags > 3) throw WireError("wire: bad ColumnUpdate flags");
    u.has_ts = (flags & 1) != 0;
    u.deleted = (flags & 2) != 0;
    u.value = get_string(c);
    m.add_update(std::move(u));
  }
  return m;
}

void put_range(std::string& out, const Range& r) {
  put_u8(out, static_cast<std::uint8_t>(
                  (r.has_start ? 1 : 0) | (r.start_inclusive ? 2 : 0) |
                  (r.has_end ? 4 : 0) | (r.end_inclusive ? 8 : 0)));
  if (r.has_start) put_key(out, r.start);
  if (r.has_end) put_key(out, r.end);
}

Range get_range(Cursor& c) {
  const std::uint8_t flags = get_u8(c);
  if (flags > 15) throw WireError("wire: bad Range flags");
  Range r;
  r.has_start = (flags & 1) != 0;
  r.start_inclusive = (flags & 2) != 0;
  r.has_end = (flags & 4) != 0;
  r.end_inclusive = (flags & 8) != 0;
  if (r.has_start) r.start = get_key(c);
  if (r.has_end) r.end = get_key(c);
  return r;
}

}  // namespace wire

}  // namespace graphulo::nosql
