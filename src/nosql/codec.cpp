#include "nosql/codec.hpp"

#include <charconv>
#include <cstdio>

namespace graphulo::nosql {

std::string encode_double(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) {  // cannot happen for finite doubles in 64 bytes
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  }
  return std::string(buf, ptr);
}

std::optional<double> decode_double(const std::string& bytes) {
  double v = 0.0;
  const char* first = bytes.data();
  const char* last = bytes.data() + bytes.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last || bytes.empty()) return std::nullopt;
  return v;
}

std::string encode_int(std::int64_t v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  return std::string(buf, ptr);
}

std::optional<std::int64_t> decode_int(const std::string& bytes) {
  std::int64_t v = 0;
  const char* first = bytes.data();
  const char* last = bytes.data() + bytes.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last || bytes.empty()) return std::nullopt;
  return v;
}

std::string encode_u64_be(std::uint64_t v) {
  std::string out(8, '\0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = static_cast<char>(v & 0xff);
    v >>= 8;
  }
  return out;
}

std::optional<std::uint64_t> decode_u64_be(const std::string& bytes) {
  if (bytes.size() != 8) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : bytes) {
    v = (v << 8) | static_cast<unsigned char>(c);
  }
  return v;
}

}  // namespace graphulo::nosql
