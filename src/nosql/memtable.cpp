#include "nosql/memtable.hpp"

#include <algorithm>

namespace graphulo::nosql {

void Memtable::apply(const Mutation& mutation, Timestamp assigned_ts) {
  for (const auto& u : mutation.updates()) {
    Key key;
    key.row = mutation.row();
    key.family = u.family;
    key.qualifier = u.qualifier;
    key.visibility = u.visibility;
    key.ts = u.has_ts ? u.ts : assigned_ts;
    key.deleted = u.deleted;
    insert(std::move(key), u.deleted ? Value{} : u.value);
  }
}

void Memtable::insert(Key key, Value value) {
  bytes_ += key.row.size() + key.family.size() + key.qualifier.size() +
            key.visibility.size() + value.size() + sizeof(Key);
  // Identical keys (same cell, same timestamp, same delete flag)
  // overwrite: last write wins, as in Accumulo's in-memory map.
  auto [it, inserted] = cells_.insert_or_assign(std::move(key), std::move(value));
  (void)it;
  (void)inserted;
}

std::shared_ptr<const std::vector<Cell>> Memtable::snapshot() const {
  auto cells = std::make_shared<std::vector<Cell>>();
  cells->reserve(cells_.size());
  for (const auto& [k, v] : cells_) cells->push_back({k, v});
  return cells;
}

std::vector<std::string> Memtable::sample_rows(std::size_t n) const {
  std::vector<std::string> rows;
  if (cells_.empty() || n == 0) return rows;
  rows.reserve(n);
  // Ceil stride + always considering the final row: same tail-coverage
  // fix as RFile::sample_rows (a floor stride oversamples the head).
  const std::size_t stride = (cells_.size() + n - 1) / n;
  std::size_t i = 0;
  const std::string* last_row = nullptr;
  for (const auto& [k, v] : cells_) {
    last_row = &k.row;
    if (i++ % stride != 0) continue;
    if (rows.size() < n && (rows.empty() || rows.back() != k.row)) {
      rows.push_back(k.row);
    }
  }
  if (last_row && !rows.empty() && rows.back() != *last_row) {
    if (rows.size() < n) {
      rows.push_back(*last_row);
    } else {
      rows.back() = *last_row;
    }
  }
  return rows;
}

void Memtable::clear() {
  cells_.clear();
  bytes_ = 0;
}

}  // namespace graphulo::nosql
