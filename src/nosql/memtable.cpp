#include "nosql/memtable.hpp"

#include <algorithm>

namespace graphulo::nosql {

void Memtable::apply(const Mutation& mutation, Timestamp assigned_ts) {
  for (const auto& u : mutation.updates()) {
    Key key;
    key.row = mutation.row();
    key.family = u.family;
    key.qualifier = u.qualifier;
    key.visibility = u.visibility;
    key.ts = u.has_ts ? u.ts : assigned_ts;
    key.deleted = u.deleted;
    insert(std::move(key), u.deleted ? Value{} : u.value);
  }
}

void Memtable::insert(Key key, Value value) {
  bytes_ += key.row.size() + key.family.size() + key.qualifier.size() +
            key.visibility.size() + value.size() + sizeof(Key);
  // Identical keys (same cell, same timestamp, same delete flag)
  // overwrite: last write wins, as in Accumulo's in-memory map.
  auto [it, inserted] = cells_.insert_or_assign(std::move(key), std::move(value));
  (void)it;
  (void)inserted;
}

std::shared_ptr<const std::vector<Cell>> Memtable::snapshot() const {
  auto cells = std::make_shared<std::vector<Cell>>();
  cells->reserve(cells_.size());
  for (const auto& [k, v] : cells_) cells->push_back({k, v});
  return cells;
}

std::vector<std::string> Memtable::sample_rows(std::size_t n) const {
  std::vector<std::string> rows;
  if (cells_.empty() || n == 0) return rows;
  rows.reserve(n);
  const std::size_t stride = std::max<std::size_t>(1, cells_.size() / n);
  std::size_t i = 0;
  for (const auto& [k, v] : cells_) {
    if (i++ % stride != 0) continue;
    if (rows.empty() || rows.back() != k.row) rows.push_back(k.row);
    if (rows.size() >= n) break;
  }
  return rows;
}

void Memtable::clear() {
  cells_.clear();
  bytes_ = 0;
}

}  // namespace graphulo::nosql
