#pragma once
// Combiner iterator: folds all versions of a cell into one value — the
// server-side reduction Graphulo leans on. When TableMult writes partial
// products C(i,j) += A(i,k)*B(k,j) as separate timestamped puts, a
// SummingCombiner attached at scan and compaction scope makes the table
// *be* the accumulated sum, with no client round trip (Sections I-A and
// IV of the paper).

#include <functional>
#include <optional>
#include <set>
#include <string>

#include "nosql/iterator.hpp"

namespace graphulo::nosql {

/// Folds the (newest-first) version stream of each cell into one cell.
class CombinerIterator : public SortedKVIterator {
 public:
  /// Reduces two encoded values into one.
  using Reducer = std::function<Value(const Value&, const Value&)>;

  /// `families`: if non-empty, only cells in these column families are
  /// combined; others pass through unmodified (all versions).
  CombinerIterator(IterPtr source, Reducer reduce,
                   std::set<std::string> families = {});

  void seek(const Range& range) override;
  bool has_top() const override { return have_top_; }
  const Key& top_key() const override { return top_key_; }
  const Value& top_value() const override { return top_value_; }
  void next() override;

  /// Emits up to `max` combined cells. Groups are folded out of an
  /// internal read-ahead block pulled from the source, so the per-cell
  /// work below the combiner is batched too.
  std::size_t next_block(CellBlock& out, std::size_t max) override;

 private:
  void load_group();
  const Cell* peek();
  void advance() { ++buf_pos_; }

  IterPtr source_;
  Reducer reduce_;
  std::set<std::string> families_;
  bool have_top_ = false;
  Key top_key_;
  Value top_value_;
  CellBlock buf_;  ///< read-ahead from source_, reused across refills
  std::size_t buf_pos_ = 0;
};

/// Reducer over decimal-double encoded values: addition. Malformed
/// operands are treated as 0 (matching Accumulo's lossy combiners).
CombinerIterator::Reducer sum_double_reducer();

/// Reducer over decimal-int64 encoded values: addition.
CombinerIterator::Reducer sum_int_reducer();

/// Reducer over decimal-double encoded values: minimum.
CombinerIterator::Reducer min_double_reducer();

/// Reducer over decimal-double encoded values: maximum.
CombinerIterator::Reducer max_double_reducer();

}  // namespace graphulo::nosql
