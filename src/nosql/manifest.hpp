#pragma once
// MANIFEST: a checksummed, append-only log of immutable VersionEdit
// records describing a tablet file set — which RFiles exist, at which
// level, and over which key range. The manifest replaces the raw-cell
// catalog snapshot as the durable source of truth for flushed data:
// a checkpoint persists each live RFile plus one manifest whose replay
// reconstructs the exact leveled structure (recovery is then
// byte-identical, not merely cell-identical).
//
// Record format (little-endian, mirrors the WAL framing):
//   u32 payload_len | u32 crc32(payload) | payload
// Payload:
//   table | extent_start_present(u8) | extent_start |
//   n_added(u64) | n_added x FileMetaRecord | n_removed(u64) | u64 ids
// FileMetaRecord:
//   file_id(u64) | level(u64) | seq(u64) | cells(u64) | bytes(u64) |
//   first_key | last_key            (keys fully encoded incl. ts/delete)
//
// Replay is torn-tail tolerant: decoding stops cleanly at the first
// short, corrupt, or CRC-mismatched record and reports how many bytes
// were valid. Fault sites: writes pass through `manifest.append`
// (before any bytes reach the stream, so a fired fault has no durable
// effect and the caller may rewrite from scratch).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nosql/key.hpp"
#include "nosql/rfile.hpp"

namespace graphulo::nosql {

/// Orders keys by COLUMN position only — (row, family, qualifier,
/// visibility), timestamp and delete flag excluded. All level-overlap
/// logic compares columns, never full keys: full-key order is
/// timestamp-DESCENDING within a column, so a newer cell of column C
/// sorts before an older one and interval arithmetic over full keys
/// would conclude two files holding different versions of C are
/// disjoint. A file "contains" a column if it holds ANY version of it.
/// Returns <0, 0, >0 like strcmp.
int compare_columns(const Key& a, const Key& b) noexcept;

/// Metadata for one immutable RFile in a tablet's leveled file set.
/// `file` is the runtime handle (null in freshly replayed edits until
/// recovery reloads the bytes); `file_id` doubles as the durable file
/// number (checkpoint artifact `f<id>.rf`) and, for live files, always
/// equals `file->file_id()` so BlockCache eviction can key off it.
struct FileMeta {
  std::uint64_t file_id = 0;
  int level = 0;
  std::uint64_t seq = 0;  ///< data seq of the newest input (L0 ordering)
  std::uint64_t cells = 0;
  std::uint64_t bytes = 0;
  Key first_key;
  Key last_key;
  std::shared_ptr<RFile> file;

  /// Wraps a live RFile. Precondition: `rf` is non-empty.
  static FileMeta describe(std::shared_ptr<RFile> rf, int level,
                           std::uint64_t seq);

  /// True when this file's COLUMN range intersects [lo, hi] — a file
  /// holding any version (or a delete marker) of a column in the span
  /// overlaps it, regardless of timestamps.
  bool overlaps(const Key& lo, const Key& hi) const {
    return compare_columns(last_key, lo) >= 0 &&
           compare_columns(hi, first_key) >= 0;
  }
};

/// One immutable mutation of a tablet's file set: files added and file
/// ids removed, tagged with the owning table and tablet extent start so
/// a single manifest can describe a whole instance.
struct VersionEdit {
  std::string table;
  bool has_extent_start = false;  ///< false = first tablet (-inf start)
  std::string extent_start;
  std::vector<FileMeta> added;
  std::vector<std::uint64_t> removed;
};

/// Serialises one VersionEdit as a framed record (len | crc | payload).
std::string encode_version_edit(const VersionEdit& edit);

/// Appends framed VersionEdit records to a file. The writer truncates
/// on open: checkpoint retries rewrite the manifest wholesale rather
/// than appending duplicates.
class ManifestWriter {
 public:
  /// Opens (truncating) `path`. Throws TransientError on I/O failure.
  explicit ManifestWriter(const std::string& path);

  /// Appends one record. Fires the `manifest.append` fault site before
  /// writing; throws TransientError on I/O failure.
  void append(const VersionEdit& edit);

  /// Flushes buffered bytes. Throws TransientError on I/O failure.
  void sync();

  std::size_t records_written() const { return records_; }

 private:
  std::string path_;
  std::unique_ptr<std::ofstream> out_;
  std::size_t records_ = 0;
};

/// Result of replaying a manifest file.
struct ManifestReplay {
  std::vector<VersionEdit> edits;
  std::size_t valid_bytes = 0;  ///< prefix that decoded + checksummed clean
  bool truncated = false;       ///< a torn/corrupt tail was discarded
};

/// Replays every valid record in `path` (missing file = zero edits,
/// not an error — an empty instance has an empty manifest). Stops at
/// the first torn or corrupt record.
ManifestReplay replay_manifest(const std::string& path);

}  // namespace graphulo::nosql
