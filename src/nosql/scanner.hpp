#pragma once
// Read path: Scanner (ordered, single range) and BatchScanner (multiple
// ranges, parallel across tablets, unordered delivery) — the Accumulo
// client read APIs Graphulo drives.

#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "nosql/admission.hpp"
#include "nosql/instance.hpp"
#include "nosql/iterator.hpp"
#include "nosql/snapshot.hpp"
#include "util/threadpool.hpp"

namespace graphulo::nosql {

/// A scan-time iterator stage the client attaches for one scan only
/// (in addition to the table's configured iterators).
using ScanIterator = std::function<IterPtr(IterPtr)>;

/// Default number of cells pulled per next_block() fill by the scan
/// clients (Scanner/BatchScanner).
inline constexpr std::size_t kDefaultScanBatch = 1024;

/// Ordered scan over one range of one table.
class Scanner {
 public:
  Scanner(Instance& instance, std::string table);

  /// Restricts the scan to `range` (default: whole table).
  Scanner& set_range(Range range);

  /// Keeps only the given column families.
  Scanner& fetch_column_families(std::set<std::string> families);

  /// Restricts the scan to cells whose visibility expression these
  /// authorizations satisfy. Without this call no visibility filtering
  /// happens (the open-trust default of the simulation).
  Scanner& set_authorizations(std::set<std::string> auths);

  /// Attaches a scan-time iterator (outermost last).
  Scanner& add_scan_iterator(ScanIterator stage);

  /// Cells pulled per block from the server-side stack. 1 selects the
  /// legacy cell-at-a-time path (the benchmark baseline).
  Scanner& set_batch_size(std::size_t batch);

  /// Reads through a pinned MVCC snapshot (Instance::open_snapshot)
  /// instead of the live tablets: the scan sees exactly the snapshot's
  /// cut regardless of concurrent writes/compactions. The snapshot must
  /// belong to this scanner's table. nullptr returns to live reads.
  Scanner& set_snapshot(std::shared_ptr<const Snapshot> snapshot);

  /// Cooperative deadline over the whole scan: for_each throws
  /// DeadlineExceeded once it passes (checked between blocks), and a
  /// queued admission never waits beyond it. 0 = no deadline.
  Scanner& set_timeout(std::chrono::milliseconds timeout);

  /// Admission session (rate-limit identity). Defaults to a private
  /// session created on first use; share one session across clients
  /// that should share a rate budget.
  Scanner& set_session(std::shared_ptr<AdmissionSession> session);

  /// Invokes `fn` for every cell in key order. Returns cells delivered.
  /// Throws OverloadedError when admission sheds the scan and
  /// DeadlineExceeded when set_timeout's deadline passes mid-scan.
  std::size_t for_each(const std::function<void(const Key&, const Value&)>& fn);

  /// Collects all cells (bounded result sets).
  std::vector<Cell> read_all();

 private:
  IterPtr build_stack(const std::shared_ptr<Tablet>& tablet, int server_id);

  Instance& instance_;
  std::string table_;
  Range range_ = Range::all();
  std::set<std::string> families_;
  std::optional<std::set<std::string>> auths_;
  std::vector<ScanIterator> stages_;
  std::size_t batch_size_ = kDefaultScanBatch;
  std::shared_ptr<const Snapshot> snapshot_;
  std::chrono::milliseconds timeout_{0};
  std::shared_ptr<AdmissionSession> session_;
};

/// Unordered parallel scan over many ranges. Results from different
/// tablets are delivered concurrently; the callback must be thread-safe
/// (read_all() handles locking internally).
class BatchScanner {
 public:
  /// `pool` defaults to the process-global pool.
  BatchScanner(Instance& instance, std::string table,
               util::ThreadPool* pool = nullptr);

  BatchScanner& set_ranges(std::vector<Range> ranges);
  BatchScanner& fetch_column_families(std::set<std::string> families);
  BatchScanner& set_authorizations(std::set<std::string> auths);
  BatchScanner& add_scan_iterator(ScanIterator stage);

  /// Cells pulled per block from each tablet stack; 1 = cell-at-a-time.
  BatchScanner& set_batch_size(std::size_t batch);

  /// Reads every range through a pinned MVCC snapshot (see
  /// Scanner::set_snapshot). nullptr returns to live reads.
  BatchScanner& set_snapshot(std::shared_ptr<const Snapshot> snapshot);

  /// Cooperative deadline over the whole multi-range scan (see
  /// Scanner::set_timeout). 0 = no deadline.
  BatchScanner& set_timeout(std::chrono::milliseconds timeout);

  /// Admission session (see Scanner::set_session). One BatchScanner
  /// for_each = one admitted scan operation, however many tablet tasks
  /// it fans out to.
  BatchScanner& set_session(std::shared_ptr<AdmissionSession> session);

  /// Invokes `fn(key, value)` for every cell of every range; cells of
  /// one (tablet, range) task arrive in order, tasks interleave
  /// arbitrarily. `fn` must be thread-safe. Returns cells delivered.
  /// Throws OverloadedError when admission sheds the scan and
  /// DeadlineExceeded when set_timeout's deadline passes mid-scan.
  std::size_t for_each(const std::function<void(const Key&, const Value&)>& fn);

  /// Collects all cells, unordered.
  std::vector<Cell> read_all();

 private:
  Instance& instance_;
  std::string table_;
  util::ThreadPool* pool_;
  std::vector<Range> ranges_ = {Range::all()};
  std::set<std::string> families_;
  std::optional<std::set<std::string>> auths_;
  std::vector<ScanIterator> stages_;
  std::size_t batch_size_ = kDefaultScanBatch;
  std::shared_ptr<const Snapshot> snapshot_;
  std::chrono::milliseconds timeout_{0};
  std::shared_ptr<AdmissionSession> session_;
};

}  // namespace graphulo::nosql
