#pragma once
// Per-table configuration: LSM tuning knobs and attached server-side
// iterators, mirroring Accumulo's table properties + iterator settings.

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "nosql/admission.hpp"
#include "nosql/iterator.hpp"
#include "nosql/rfile.hpp"
#include "nosql/version_set.hpp"
#include "nosql/wal_options.hpp"

namespace graphulo::nosql {

/// Where an attached iterator runs (bitmask).
enum IteratorScope : unsigned {
  kScanScope = 1u << 0,   ///< applied to every scan
  kMincScope = 1u << 1,   ///< applied when flushing the memtable
  kMajcScope = 1u << 2,   ///< applied when merging files
  kAllScopes = kScanScope | kMincScope | kMajcScope,
};

/// One attached iterator: a factory that wraps a source with the
/// iterator's behaviour. Lower priority runs closer to the data (is
/// applied first), as in Accumulo.
struct IteratorSetting {
  int priority = 20;
  std::string name;
  unsigned scopes = kScanScope;
  std::function<IterPtr(IterPtr)> factory;
};

/// Table properties.
struct TableConfig {
  /// Minor compaction (memtable flush) threshold, in entries.
  std::size_t flush_entries = 100000;
  /// Flat-layout major compaction trigger: full merge when a tablet
  /// holds this many files (ignored while `compaction.leveled` is on).
  std::size_t compaction_fanin = 10;
  /// Leveled-compaction knobs: L0 trigger, per-level byte budgets, and
  /// the leveled/flat layout switch.
  CompactionConfig compaction;
  /// Hard ceiling on a tablet's file count when a background
  /// CompactionScheduler is attached: writers block (back-pressure)
  /// until a major compaction brings the count back down.
  std::size_t max_tablet_files = 64;
  /// WAL durability knobs (sync mode, group-commit batch limits) for
  /// instances whose WriteAheadLog is built from this config.
  WalOptions wal;
  /// Keep only the newest version of each cell (disable when an attached
  /// combiner needs to see every version).
  bool versioning = true;
  int max_versions = 1;
  /// Acceleration structures built into the table's RFiles (sparse seek
  /// index stride, row Bloom filter sizing).
  RFileOptions rfile;
  /// Admission control for mixed read/write traffic (in-flight scan
  /// bound, per-session token buckets, queue-or-shed policy) plus the
  /// MVCC max-snapshot-age horizon bound. Defaults admit everything.
  AdmissionConfig admission;
  /// Attached server-side iterators.
  std::vector<IteratorSetting> iterators;

  /// Attaches an iterator; keeps the list sorted by priority.
  void attach_iterator(IteratorSetting setting) {
    iterators.push_back(std::move(setting));
    std::stable_sort(iterators.begin(), iterators.end(),
                     [](const IteratorSetting& a, const IteratorSetting& b) {
                       return a.priority < b.priority;
                     });
  }

  /// Removes the iterator with the given name; returns whether found.
  bool remove_iterator(const std::string& name) {
    const auto before = iterators.size();
    std::erase_if(iterators,
                  [&](const IteratorSetting& s) { return s.name == name; });
    return iterators.size() != before;
  }
};

}  // namespace graphulo::nosql
