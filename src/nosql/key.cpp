#include "nosql/key.hpp"

#include <limits>
#include <sstream>

namespace graphulo::nosql {

std::strong_ordering Key::operator<=>(const Key& other) const noexcept {
  if (auto c = row.compare(other.row); c != 0) {
    return c < 0 ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  if (auto c = family.compare(other.family); c != 0) {
    return c < 0 ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  if (auto c = qualifier.compare(other.qualifier); c != 0) {
    return c < 0 ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  if (auto c = visibility.compare(other.visibility); c != 0) {
    return c < 0 ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  // Newest first.
  if (ts != other.ts) {
    return ts > other.ts ? std::strong_ordering::less
                         : std::strong_ordering::greater;
  }
  // Deletes sort before non-deletes at the same timestamp.
  if (deleted != other.deleted) {
    return deleted ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  return std::strong_ordering::equal;
}

bool Key::same_cell(const Key& other) const noexcept {
  // Qualifier first: the hot callers (versioning, deleting, combiners)
  // test consecutive cells of a sorted stream, where row and family
  // almost always match and the qualifier is what differs — so it is
  // the component most likely to short-circuit the conjunction.
  return qualifier == other.qualifier && row == other.row &&
         family == other.family && visibility == other.visibility;
}

std::string Key::to_string() const {
  std::ostringstream out;
  out << row << ' ' << family << ':' << qualifier;
  if (!visibility.empty()) out << " [" << visibility << ']';
  out << ' ' << ts;
  if (deleted) out << " (del)";
  return out.str();
}

Range Range::all() { return Range{}; }

Range Range::exact_row(const std::string& row) {
  return row_range(row, row);
}

Range Range::row_range(const std::string& start_row,
                       const std::string& end_row) {
  Range r;
  r.has_start = true;
  r.start = min_key_for_row(start_row);
  r.start_inclusive = true;
  r.has_end = true;
  r.end = key_after_row(end_row);
  r.end_inclusive = false;
  return r;
}

Range Range::half_open_row_range(const std::string& start_row,
                                 const std::string& end_row) {
  Range r;
  if (!start_row.empty()) {
    r.has_start = true;
    r.start = min_key_for_row(start_row);
    r.start_inclusive = true;
  }
  if (!end_row.empty()) {
    r.has_end = true;
    r.end = min_key_for_row(end_row);
    r.end_inclusive = false;
  }
  return r;
}

Range Range::prefix(const std::string& row_prefix) {
  Range r;
  r.has_start = true;
  r.start = min_key_for_row(row_prefix);
  r.start_inclusive = true;
  // The prefix successor: bump the last byte (append 0xFF-safe approach:
  // prefix + '\xff'... simplest correct bound is prefix with a 0xFF
  // sentinel appended repeatedly; we use prefix + char(0xFF) which covers
  // all practical keys that extend the prefix with bytes < 0xFF, and fall
  // back to unbounded if the prefix is empty).
  if (row_prefix.empty()) return all();
  std::string hi = row_prefix;
  hi.push_back('\xff');
  r.has_end = true;
  r.end = key_after_row(hi);
  r.end_inclusive = false;
  return r;
}

Range Range::at_least_row(const std::string& row) {
  Range r;
  r.has_start = true;
  r.start = min_key_for_row(row);
  r.start_inclusive = true;
  return r;
}

bool Range::contains(const Key& key) const noexcept {
  if (has_start) {
    const auto c = key <=> start;
    if (c < 0 || (c == 0 && !start_inclusive)) return false;
  }
  if (has_end) {
    const auto c = key <=> end;
    if (c > 0 || (c == 0 && !end_inclusive)) return false;
  }
  return true;
}

bool Range::is_past_end(const Key& key) const noexcept {
  if (!has_end) return false;
  const auto c = key <=> end;
  return c > 0 || (c == 0 && !end_inclusive);
}

bool Range::may_intersect_rows(const std::string& row_lo,
                               const std::string& row_hi) const noexcept {
  // Tablet covers rows in [row_lo, row_hi); empty row_hi = unbounded.
  if (has_end && !row_lo.empty()) {
    if (end.row < row_lo) return false;
    if (end.row == row_lo && !end_inclusive && end == min_key_for_row(row_lo)) {
      return false;
    }
  }
  if (has_start && !row_hi.empty()) {
    if (start.row >= row_hi) return false;
  }
  return true;
}

Range Range::intersect(const Range& other) const {
  Range out = *this;
  if (other.has_start) {
    if (!out.has_start) {
      out.has_start = true;
      out.start = other.start;
      out.start_inclusive = other.start_inclusive;
    } else {
      const auto c = other.start <=> out.start;
      if (c > 0 || (c == 0 && !other.start_inclusive)) {
        out.start = other.start;
        out.start_inclusive = other.start_inclusive;
      }
    }
  }
  if (other.has_end) {
    if (!out.has_end) {
      out.has_end = true;
      out.end = other.end;
      out.end_inclusive = other.end_inclusive;
    } else {
      const auto c = other.end <=> out.end;
      if (c < 0 || (c == 0 && !other.end_inclusive)) {
        out.end = other.end;
        out.end_inclusive = other.end_inclusive;
      }
    }
  }
  return out;
}

bool Range::is_empty() const noexcept {
  if (!has_start || !has_end) return false;
  const auto c = start <=> end;
  if (c > 0) return true;
  return c == 0 && !(start_inclusive && end_inclusive);
}

Key min_key_for_row(const std::string& row) {
  Key k;
  k.row = row;
  k.ts = std::numeric_limits<Timestamp>::max();
  k.deleted = true;  // deletes sort first at equal ts
  return k;
}

Key key_after_row(const std::string& row) {
  Key k;
  k.row = row;
  k.row.push_back('\0');
  k.ts = std::numeric_limits<Timestamp>::max();
  k.deleted = true;
  return k;
}

}  // namespace graphulo::nosql
