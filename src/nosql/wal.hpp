#pragma once
// Write-ahead log: durability for the in-process store. Every catalog
// event (create/delete/clone table, split additions) and every mutation
// is appended as a length-prefixed, sequence-numbered record before it
// is applied; recovery replays the log into a fresh instance. Torn
// tails — a record cut off mid-write by a crash — are detected and
// ignored.
//
// Appends go through one of three sync modes (WalOptions::sync_mode):
//
//   per_append  every append is written + fsync'd before it returns;
//   group       appends buffer their encoded record and block until a
//               background committer thread has made their sequence
//               number durable — concurrent writers share one write()
//               + one fsync() per batch (group commit);
//   interval    appends return immediately; the committer flushes the
//               batch on a byte/latency trigger and records are
//               durable only after an explicit sync().
//
// The sequence number is assigned under the log mutex in append order,
// and batches are committed in seq order, so the on-disk record order
// is always a seq-sorted prefix of the append history — a crash (or a
// failed commit) loses only a suffix.
//
// Checkpointing (see nosql/checkpoint.hpp) bounds replay: a checkpoint
// snapshots the live instance and then rotate() truncates the log, so
// recovery reads checkpoint + post-checkpoint tail instead of the full
// write history. Sequence numbers are monotonic ACROSS rotations; the
// checkpoint records the sequence it covers up to, which makes replay
// idempotent even if a crash lands between the checkpoint rename and
// the log truncation.

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "nosql/mutation.hpp"
#include "nosql/wal_options.hpp"

namespace graphulo::nosql {

/// One replayed log record.
struct WalRecord {
  enum class Kind : std::uint8_t {
    kCreateTable = 1,
    kDeleteTable = 2,
    kMutation = 3,
    kCloneTable = 4,  ///< table = source, aux = clone target
    kAddSplits = 5,   ///< splits = the added split rows
  };
  Kind kind;
  std::uint64_t seq = 0;  ///< monotonic record sequence number
  std::string table;
  std::string aux;                  ///< clone target for kCloneTable
  std::vector<std::string> splits;  ///< for kAddSplits
  Timestamp assigned_ts = 0;        ///< for mutations
  Mutation mutation{""};            ///< valid when kind == kMutation
};

/// Append-only log writer (thread-safe). Each record is assigned the
/// next sequence number; on open of an existing log the sequence
/// continues after the last intact record.
class WriteAheadLog {
 public:
  /// Opens (appends to) `path`. Throws on I/O failure.
  explicit WriteAheadLog(const std::string& path, WalOptions options = {});

  /// Drains any buffered records to the file (without fsync), stops the
  /// committer thread, and closes the log. Never throws. If a commit
  /// already failed fatally, buffered records are dropped instead —
  /// their appenders were never acknowledged.
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  void log_create_table(const std::string& table);
  void log_delete_table(const std::string& table);
  void log_clone_table(const std::string& source, const std::string& target);
  void log_add_splits(const std::string& table,
                      const std::vector<std::string>& splits);
  void log_mutation(const std::string& table, const Mutation& mutation,
                    Timestamp assigned_ts);

  /// Makes every record appended so far durable (write + fsync),
  /// regardless of sync mode.
  void sync();

  /// Truncates the log file after a checkpoint has captured its
  /// contents. Buffered-but-uncommitted records are dropped: their
  /// sequence numbers are below the checkpoint's covers_seq, so they
  /// are covered by the snapshot. Sequence numbers keep counting from
  /// where they were, so records written after rotation sort after the
  /// checkpoint. Callers must quiesce writers around checkpoint+rotate.
  void rotate();

  /// The sequence number the NEXT record will receive.
  std::uint64_t next_seq() const;

  /// Highest sequence number known to be safely in the file (fsync'd
  /// in per_append/group modes; written in interval mode).
  std::uint64_t durable_seq() const;

  const WalOptions& options() const noexcept { return options_; }
  const std::string& path() const noexcept { return path_; }

 private:
  struct PendingRecord {
    std::uint64_t seq = 0;
    std::string framed;  ///< magic + length + body, ready for write()
  };

  void write_record(WalRecord record);
  /// Steals the pending buffer and writes (+ optionally fsyncs) it to
  /// the fd; serialized via committing_. Updates durable_seq_ and wakes
  /// waiters. On failure, records the sticky commit error. Called with
  /// `lock` held; returns with it held.
  void commit_pending_locked(std::unique_lock<std::mutex>& lock,
                             bool do_fsync);
  void committer_loop();
  void start_committer_locked();
  void throw_if_failed_locked() const;

  std::string path_;
  WalOptions options_;
  int fd_ = -1;

  mutable std::mutex mutex_;
  std::condition_variable committer_cv_;  ///< wakes the committer
  std::condition_variable durable_cv_;    ///< wakes append/sync waiters
  std::vector<PendingRecord> pending_;
  std::size_t pending_bytes_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t durable_seq_ = 0;
  bool committing_ = false;  ///< a thread is inside write/fsync
  bool stop_ = false;
  std::exception_ptr commit_error_;  ///< sticky: set once, never cleared

  bool committer_started_ = false;
  std::thread committer_;
};

/// Replays a log, invoking `apply` per intact record with
/// record.seq >= `min_seq`, in order. Returns the number of records
/// DELIVERED (records below min_seq are skipped silently — they are
/// covered by the checkpoint that supplied min_seq). A torn or corrupt
/// tail terminates replay cleanly (everything intact before it is
/// still delivered). A missing file yields 0.
std::size_t replay_wal(const std::string& path,
                       const std::function<void(const WalRecord&)>& apply,
                       std::uint64_t min_seq = 0);

}  // namespace graphulo::nosql
