#pragma once
// Write-ahead log: durability for the in-process store. Every catalog
// event (create/delete table) and every mutation is appended as a
// length-prefixed record before it is applied; recovery replays the log
// into a fresh instance. There is no checkpoint/truncation — the log
// retains the full history (RFiles live in memory in this simulation,
// so the log is the single durable artifact). Torn tails — a record cut
// off mid-write by a crash — are detected and ignored.

#include <cstdint>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>

#include "nosql/mutation.hpp"

namespace graphulo::nosql {

/// One replayed log record.
struct WalRecord {
  enum class Kind : std::uint8_t {
    kCreateTable = 1,
    kDeleteTable = 2,
    kMutation = 3,
  };
  Kind kind;
  std::string table;
  Timestamp assigned_ts = 0;  ///< for mutations
  Mutation mutation{""};      ///< valid when kind == kMutation
};

/// Append-only log writer (thread-safe).
class WriteAheadLog {
 public:
  /// Opens (appends to) `path`. Throws on I/O failure.
  explicit WriteAheadLog(const std::string& path);

  void log_create_table(const std::string& table);
  void log_delete_table(const std::string& table);
  void log_mutation(const std::string& table, const Mutation& mutation,
                    Timestamp assigned_ts);

  /// Flushes buffered records to the OS.
  void sync();

  const std::string& path() const noexcept { return path_; }

 private:
  void write_record(const WalRecord& record);

  std::string path_;
  std::mutex mutex_;
  std::ofstream out_;
};

/// Replays a log, invoking `apply` per intact record in order. Returns
/// the number of records replayed. A torn or corrupt tail terminates
/// replay cleanly (everything before it is delivered). A missing file
/// yields 0.
std::size_t replay_wal(const std::string& path,
                       const std::function<void(const WalRecord&)>& apply);

}  // namespace graphulo::nosql
