#pragma once
// Write-ahead log: durability for the in-process store. Every catalog
// event (create/delete/clone table, split additions) and every mutation
// is appended as a length-prefixed, sequence-numbered record before it
// is applied; recovery replays the log into a fresh instance. Torn
// tails — a record cut off mid-write by a crash — are detected and
// ignored.
//
// Checkpointing (see nosql/checkpoint.hpp) bounds replay: a checkpoint
// snapshots the live instance and then rotate() truncates the log, so
// recovery reads checkpoint + post-checkpoint tail instead of the full
// write history. Sequence numbers are monotonic ACROSS rotations; the
// checkpoint records the sequence it covers up to, which makes replay
// idempotent even if a crash lands between the checkpoint rename and
// the log truncation.

#include <cstdint>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "nosql/mutation.hpp"

namespace graphulo::nosql {

/// One replayed log record.
struct WalRecord {
  enum class Kind : std::uint8_t {
    kCreateTable = 1,
    kDeleteTable = 2,
    kMutation = 3,
    kCloneTable = 4,  ///< table = source, aux = clone target
    kAddSplits = 5,   ///< splits = the added split rows
  };
  Kind kind;
  std::uint64_t seq = 0;  ///< monotonic record sequence number
  std::string table;
  std::string aux;                  ///< clone target for kCloneTable
  std::vector<std::string> splits;  ///< for kAddSplits
  Timestamp assigned_ts = 0;        ///< for mutations
  Mutation mutation{""};            ///< valid when kind == kMutation
};

/// Append-only log writer (thread-safe). Each record is assigned the
/// next sequence number; on open of an existing log the sequence
/// continues after the last intact record.
class WriteAheadLog {
 public:
  /// Opens (appends to) `path`. Throws on I/O failure.
  explicit WriteAheadLog(const std::string& path);

  void log_create_table(const std::string& table);
  void log_delete_table(const std::string& table);
  void log_clone_table(const std::string& source, const std::string& target);
  void log_add_splits(const std::string& table,
                      const std::vector<std::string>& splits);
  void log_mutation(const std::string& table, const Mutation& mutation,
                    Timestamp assigned_ts);

  /// Flushes buffered records to the OS.
  void sync();

  /// Truncates the log file after a checkpoint has captured its
  /// contents. Sequence numbers keep counting from where they were, so
  /// records written after rotation sort after the checkpoint. Callers
  /// must quiesce writers around checkpoint+rotate.
  void rotate();

  /// The sequence number the NEXT record will receive.
  std::uint64_t next_seq() const;

  const std::string& path() const noexcept { return path_; }

 private:
  void write_record(WalRecord record);

  std::string path_;
  mutable std::mutex mutex_;
  std::ofstream out_;
  std::uint64_t next_seq_ = 1;
};

/// Replays a log, invoking `apply` per intact record with
/// record.seq >= `min_seq`, in order. Returns the number of records
/// DELIVERED (records below min_seq are skipped silently — they are
/// covered by the checkpoint that supplied min_seq). A torn or corrupt
/// tail terminates replay cleanly (everything intact before it is
/// still delivered). A missing file yields 0.
std::size_t replay_wal(const std::string& path,
                       const std::function<void(const WalRecord&)>& apply,
                       std::uint64_t min_seq = 0);

}  // namespace graphulo::nosql
