#pragma once
// Stock server-side iterators: delete handling, versioning, filters, and
// value transforms. These mirror Accumulo's built-in iterator palette —
// the machinery Graphulo composes graph analytics from.

#include <cstdint>
#include <functional>
#include <set>
#include <string>

#include "nosql/iterator.hpp"

namespace graphulo::nosql {

/// Suppresses cells shadowed by delete markers and the markers
/// themselves. Relies on key order: within a cell, newest first and a
/// delete sorting before a put of equal timestamp, so a marker at ts T
/// hides every same-cell version with ts <= T.
class DeletingIterator : public WrappingIterator {
 public:
  explicit DeletingIterator(IterPtr source)
      : WrappingIterator(std::move(source)) {}

  void seek(const Range& range) override;
  void next() override;
  /// Pulls raw blocks from the source and resolves deletes in place
  /// (markers can shadow cells across block boundaries; the marker state
  /// persists between fills).
  std::size_t next_block(CellBlock& out, std::size_t max) override;

 private:
  void skip_suppressed();

  bool have_delete_ = false;
  Key delete_key_;
};

/// Keeps only the newest `max_versions` versions of each cell.
class VersioningIterator : public WrappingIterator {
 public:
  explicit VersioningIterator(IterPtr source, int max_versions = 1);

  void seek(const Range& range) override;
  void next() override;
  /// Drops excess versions in place on whole blocks.
  std::size_t next_block(CellBlock& out, std::size_t max) override;

 private:
  void skip_excess();

  int max_versions_;
  int seen_in_cell_ = 0;
  bool have_cell_ = false;
  Key cell_key_;
};

/// Generic predicate filter over (key, value).
class FilterIterator : public WrappingIterator {
 public:
  using Predicate = std::function<bool(const Key&, const Value&)>;

  FilterIterator(IterPtr source, Predicate keep);

  void seek(const Range& range) override;
  void next() override;
  /// Applies the predicate in place on whole blocks, compacting kept
  /// cells toward the front.
  std::size_t next_block(CellBlock& out, std::size_t max) override;

 private:
  void skip_rejected();

  Predicate keep_;
};

/// Keeps only cells whose column family is in `families`.
IterPtr make_column_family_filter(IterPtr source, std::set<std::string> families);

/// Keeps only cells whose timestamp lies in [min_ts, max_ts].
IterPtr make_timestamp_filter(IterPtr source, Timestamp min_ts, Timestamp max_ts);

/// Accumulo's GrepIterator: keeps cells where `needle` occurs as a
/// substring of the row, family, qualifier, or value.
IterPtr make_grep_iterator(IterPtr source, std::string needle);

/// Rewrites the value of every cell: the table-scope Apply kernel.
/// The transform sees the key too, so positional functions (e.g. the
/// paper's triu-via-user-defined-Hadamard) are expressible.
class TransformIterator : public WrappingIterator {
 public:
  using Transform = std::function<Value(const Key&, const Value&)>;

  TransformIterator(IterPtr source, Transform fn)
      : WrappingIterator(std::move(source)), fn_(std::move(fn)) {}

  const Value& top_value() const override {
    cached_ = fn_(top_key(), WrappingIterator::top_value());
    return cached_;
  }

  /// Delegates the fill to the source, then rewrites the values in
  /// place.
  std::size_t next_block(CellBlock& out, std::size_t max) override {
    const std::size_t start = out.size();
    const std::size_t n = source().next_block(out, max);
    for (std::size_t i = start; i < start + n; ++i) {
      out[i].value = fn_(out[i].key, out[i].value);
    }
    return n;
  }

 private:
  Transform fn_;
  mutable Value cached_;
};

}  // namespace graphulo::nosql
