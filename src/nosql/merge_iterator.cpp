#include "nosql/merge_iterator.hpp"

namespace graphulo::nosql {

MergeIterator::MergeIterator(std::vector<IterPtr> children)
    : children_(std::move(children)) {}

void MergeIterator::seek(const Range& range) {
  for (auto& child : children_) child->seek(range);
  choose_current();
}

void MergeIterator::next() {
  children_[current_]->next();
  choose_current();
}

void MergeIterator::choose_current() {
  // Linear scan over children: tablet scan stacks have only a handful of
  // sources (1 memtable + O(compaction fan-in) files), so a heap would
  // not pay for itself.
  current_ = kNone;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->has_top()) continue;
    if (current_ == kNone ||
        children_[i]->top_key() < children_[current_]->top_key()) {
      current_ = i;
    }
  }
}

}  // namespace graphulo::nosql
