#include "nosql/merge_iterator.hpp"

#include <algorithm>

#include "nosql/block_cache.hpp"

namespace graphulo::nosql {

MergeIterator::MergeIterator(std::vector<IterPtr> children)
    : children_(std::move(children)) {}

void MergeIterator::seek(const Range& range) {
  for (auto& child : children_) child->seek(range);
  choose_current();
}

void MergeIterator::next() {
  children_[current_]->next();
  choose_current();
}

std::size_t MergeIterator::next_block(CellBlock& out, std::size_t max) {
  std::size_t appended = 0;
  while (appended < max && current_ != kNone) {
    SortedKVIterator& win = *children_[current_];
    // Barrier: the smallest top key among the OTHER children (lowest
    // index wins ties, matching choose_current's tie-break). It stays
    // valid through the run because only the winner is advanced.
    const Key* barrier = nullptr;
    std::size_t barrier_idx = kNone;
    for (std::size_t i = 0; i < children_.size(); ++i) {
      if (i == current_ || !children_[i]->has_top()) continue;
      const Key& k = children_[i]->top_key();
      if (!barrier || k < *barrier) {
        barrier = &k;
        barrier_idx = i;
      }
    }
    if (!barrier) {
      // Sole surviving child: delegate the whole remainder of the block
      // to its (possibly bulk) next_block.
      appended += win.next_block(out, max - appended);
      if (!win.has_top()) current_ = kNone;
    } else {
      // Emit the winner's whole run below the barrier in one bounded
      // bulk call (leaves gallop to the run's end instead of paying a
      // comparison plus virtual dispatch per cell). At a tie the winner
      // goes first only when its child index is lower (newer source),
      // matching choose_current's tie-break.
      appended += win.next_block_until(out, max - appended, *barrier,
                                       /*allow_equal=*/current_ < barrier_idx);
      // Re-elect without rescanning every child: the others sat still,
      // so the new minimum is either the winner (run stopped at the
      // block cap) or the barrier child (run stopped at the barrier).
      // One comparison decides; `barrier` stayed valid throughout.
      if (!win.has_top()) {
        current_ = barrier_idx;
      } else {
        const auto cmp = win.top_key() <=> *barrier;
        if (cmp > 0 || (cmp == 0 && current_ > barrier_idx)) {
          current_ = barrier_idx;
        }
      }
    }
  }
  return appended;
}

LevelIterator::LevelIterator(
    std::vector<FileMeta> files, BlockCache* cache,
    std::shared_ptr<std::atomic<std::uint64_t>> consulted)
    : files_(std::move(files)),
      cache_(cache),
      consulted_(std::move(consulted)) {}

void LevelIterator::seek(const Range& range) {
  range_ = range;
  current_.reset();
  // First file whose last key reaches the range start; earlier files
  // lie entirely below the range and are never opened.
  std::size_t idx = 0;
  if (range.has_start) {
    const auto it = std::lower_bound(
        files_.begin(), files_.end(), range.start,
        [](const FileMeta& m, const Key& k) { return m.last_key < k; });
    idx = static_cast<std::size_t>(it - files_.begin());
  }
  open_from(idx);
}

void LevelIterator::open_from(std::size_t idx) {
  for (; idx < files_.size(); ++idx) {
    const FileMeta& m = files_[idx];
    // Files are in key order: once one starts past the range end, the
    // rest do too.
    if (range_.is_past_end(m.first_key)) break;
    if (!m.file->may_intersect(range_)) continue;  // bounds prune, free
    if (consulted_) consulted_->fetch_add(1, std::memory_order_relaxed);
    IterPtr it = m.file->iterator(cache_);
    it->seek(range_);
    if (it->has_top()) {
      current_ = std::move(it);
      index_ = idx;
      return;
    }
  }
  current_.reset();
  index_ = files_.size();
}

void LevelIterator::next() {
  current_->next();
  if (!current_->has_top()) open_from(index_ + 1);
}

std::size_t LevelIterator::next_block(CellBlock& out, std::size_t max) {
  std::size_t appended = 0;
  while (appended < max && has_top()) {
    appended += current_->next_block(out, max - appended);
    if (!current_->has_top()) open_from(index_ + 1);
  }
  return appended;
}

std::size_t LevelIterator::next_block_until(CellBlock& out, std::size_t max,
                                            const Key& bound,
                                            bool allow_equal) {
  std::size_t appended = 0;
  while (appended < max && has_top()) {
    appended += current_->next_block_until(out, max - appended, bound,
                                           allow_equal);
    if (current_->has_top()) break;  // hit the bound (or the cap)
    open_from(index_ + 1);
  }
  return appended;
}

void MergeIterator::choose_current() {
  // Linear scan over children: tablet scan stacks have only a handful of
  // sources (1 memtable + O(compaction fan-in) files), so a heap would
  // not pay for itself.
  current_ = kNone;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->has_top()) continue;
    if (current_ == kNone ||
        children_[i]->top_key() < children_[current_]->top_key()) {
      current_ = i;
    }
  }
}

}  // namespace graphulo::nosql
