#pragma once
// WAL checkpoint + rotation: bounds crash-recovery time by live data
// instead of total write history.
//
// A checkpoint snapshots the instance — catalog (table names + split
// points), every tablet's raw cells (versions and delete markers
// preserved), and the logical clock — into a single CRC-protected file,
// records the WAL sequence number it covers up to, and then truncates
// (rotates) the WAL. Recovery loads the checkpoint and replays only the
// post-checkpoint WAL tail, filtered by sequence number, which makes
// replay idempotent even when a crash lands between the checkpoint
// rename and the WAL truncation (the stale pre-checkpoint records are
// skipped by their sequence numbers).
//
// The checkpoint is written to `<path>.tmp` and renamed into place, so
// a crash mid-checkpoint leaves the previous checkpoint (or none)
// intact and the full WAL still replayable.
//
// Table configs (iterator settings, LSM knobs) are code, not data:
// recovery recreates tables through the caller's TableConfigProvider,
// exactly as WAL-only recovery does.
//
// Caller contract: quiesce writers while checkpointing — the snapshot
// is per-tablet consistent but not cross-tablet atomic under
// concurrent writes.

#include <cstdint>
#include <string>

#include "nosql/instance.hpp"

namespace graphulo::nosql {

/// Outcome of write_checkpoint().
struct CheckpointStats {
  std::size_t tables = 0;
  std::size_t cells = 0;          ///< raw cells captured
  std::uint64_t covers_seq = 0;   ///< WAL records with seq < this are covered
};

/// Outcome of recover_instance().
struct RecoveryStats {
  bool checkpoint_loaded = false;
  std::size_t tables_restored = 0;    ///< from the checkpoint
  std::size_t cells_restored = 0;     ///< from the checkpoint
  std::size_t records_replayed = 0;   ///< from the WAL tail
};

/// Snapshots `db` into `checkpoint_path` (tmp + rename), then rotates
/// the attached WAL so the log is truncated to empty. Requires an
/// attached WAL (the covered sequence comes from it). Transient I/O
/// faults are retried per the instance's retry policy. Throws on
/// unrecoverable failure — the WAL is only rotated after the checkpoint
/// file is durably in place.
CheckpointStats write_checkpoint(Instance& db,
                                 const std::string& checkpoint_path);

/// Rebuilds `db` (normally fresh) from `checkpoint_path` +
/// `wal_path`: loads the checkpoint when present and valid (CRC), then
/// replays the WAL tail (records at or past the checkpoint's covered
/// sequence; the full log when no checkpoint loaded). `config_for`
/// supplies table configs at creation, as in recover_from_wal. The WAL
/// is NOT attached to `db`.
RecoveryStats recover_instance(Instance& db,
                               const std::string& checkpoint_path,
                               const std::string& wal_path,
                               const TableConfigProvider& config_for = {});

}  // namespace graphulo::nosql
