#pragma once
// WAL checkpoint + rotation: bounds crash-recovery time by live data
// instead of total write history.
//
// A checkpoint (format GCK2) persists the instance as three artifacts:
//
//   <path>                 main snapshot: catalog (table names + split
//                          points), each tablet's UNFLUSHED cells
//                          (memtable + frozen, versions and delete
//                          markers preserved), the logical clock, the
//                          covered WAL sequence, and the artifact epoch
//                          — CRC-protected, written tmp + rename.
//   <path>.manifest-<E>    a MANIFEST (see manifest.hpp): one
//                          VersionEdit per tablet describing its
//                          leveled file set (level, key range, seq,
//                          cell/byte counts per file).
//   <path>.files-<E>/f<id>.rf   every live RFile, serialized.
//
// Flushed data is therefore no longer re-encoded as raw cells: the
// files are persisted verbatim and the manifest replay reconstructs
// the exact leveled structure, so recovery is byte-identical including
// read-amplification shape, not merely cell-identical.
//
// Epoch discipline: each write_checkpoint() picks an epoch strictly
// above every artifact epoch present on disk, writes the new artifacts
// first, and only then renames the main snapshot into place (the
// atomic commit point) and rotates the WAL. A crash mid-write leaves
// the previous checkpoint's artifacts untouched; stale epochs are
// garbage-collected only after the rename succeeds. Recovery loads the
// main snapshot (CRC), replays the manifest named by its epoch
// (torn-tail tolerant), reloads the RFiles, then replays the WAL tail
// filtered by sequence number — idempotent even when the crash landed
// between rename and rotation.
//
// Table configs (iterator settings, LSM knobs) are code, not data:
// recovery recreates tables through the caller's TableConfigProvider,
// exactly as WAL-only recovery does.
//
// Caller contract: quiesce writers while checkpointing — the snapshot
// is per-tablet consistent but not cross-tablet atomic under
// concurrent writes.

#include <cstdint>
#include <string>

#include "nosql/instance.hpp"

namespace graphulo::nosql {

/// Outcome of write_checkpoint().
struct CheckpointStats {
  std::size_t tables = 0;
  std::size_t cells = 0;          ///< unflushed + file-resident cells captured
  std::size_t files = 0;          ///< RFiles persisted alongside the manifest
  std::uint64_t covers_seq = 0;   ///< WAL records with seq < this are covered
};

/// Outcome of recover_instance().
struct RecoveryStats {
  bool checkpoint_loaded = false;
  std::size_t tables_restored = 0;    ///< from the checkpoint
  std::size_t cells_restored = 0;     ///< from the checkpoint
  std::size_t files_restored = 0;     ///< RFiles reloaded via the manifest
  std::size_t records_replayed = 0;   ///< from the WAL tail
};

/// Snapshots `db` into `checkpoint_path` (+ manifest and file
/// artifacts; see the header comment), then rotates the attached WAL
/// so the log is truncated to empty. Requires an attached WAL (the
/// covered sequence comes from it). Transient I/O faults are retried
/// per the instance's retry policy; a retry rewrites the new epoch's
/// artifacts wholesale, never the previous checkpoint's. Throws on
/// unrecoverable failure — the WAL is only rotated after the main
/// snapshot is durably in place.
CheckpointStats write_checkpoint(Instance& db,
                                 const std::string& checkpoint_path);

/// Rebuilds `db` (normally fresh) from `checkpoint_path` +
/// `wal_path`: loads the main snapshot when present and valid (CRC),
/// restores the catalog, replays the manifest to reload every RFile
/// into its recorded level, restores unflushed cells, then replays the
/// WAL tail (records at or past the checkpoint's covered sequence; the
/// full log when no checkpoint loaded). `config_for` supplies table
/// configs at creation, as in recover_from_wal. The WAL is NOT
/// attached to `db`.
RecoveryStats recover_instance(Instance& db,
                               const std::string& checkpoint_path,
                               const std::string& wal_path,
                               const TableConfigProvider& config_for = {});

}  // namespace graphulo::nosql
