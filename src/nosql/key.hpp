#pragma once
// The sorted key/value data model of the NoSQL substrate.
//
// This mirrors Apache Accumulo's cell model, which the paper identifies
// as isomorphic to a sparse associative array (Section II): a cell is
//   (row, column family, column qualifier, visibility, timestamp)
//     -> value
// and the table is totally ordered by that key (timestamp descending, so
// the newest version of a cell is encountered first). Delete markers are
// part of the key ordering: at equal timestamps a delete sorts before a
// non-delete so it can suppress it.

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

namespace graphulo::nosql {

/// Cell timestamp (logical clock or wall micros; caller's choice).
using Timestamp = std::int64_t;

/// Cell value: uninterpreted bytes.
using Value = std::string;

/// A fully-qualified cell key.
struct Key {
  std::string row;
  std::string family;     ///< column family
  std::string qualifier;  ///< column qualifier
  std::string visibility; ///< carried and filterable; not evaluated
  Timestamp ts = 0;
  bool deleted = false;   ///< delete marker

  /// Sort order: row, family, qualifier, visibility ascending; ts
  /// DESCENDING; deletes before non-deletes at the same ts.
  std::strong_ordering operator<=>(const Key& other) const noexcept;
  bool operator==(const Key& other) const noexcept = default;

  /// True when two keys name the same logical column (all fields except
  /// ts and the delete marker).
  bool same_cell(const Key& other) const noexcept;

  /// Renders "row family:qualifier [vis] ts (del)" for diagnostics.
  std::string to_string() const;
};

/// A key/value cell.
struct Cell {
  Key key;
  Value value;

  bool operator==(const Cell& other) const noexcept = default;
};

/// A half-open-ish scan range [start, end] over keys. Empty optional
/// bounds mean -infinity / +infinity. Bound keys are compared with the
/// full Key ordering; the usual pattern is row-only bounds built with
/// the factory helpers.
struct Range {
  bool has_start = false;
  Key start;            ///< valid when has_start
  bool start_inclusive = true;
  bool has_end = false;
  Key end;              ///< valid when has_end
  bool end_inclusive = true;

  /// The unbounded range (full table).
  static Range all();

  /// All cells of one row.
  static Range exact_row(const std::string& row);

  /// All cells with row in [start_row, end_row] (inclusive both ends).
  static Range row_range(const std::string& start_row,
                         const std::string& end_row);

  /// All cells with row in [start_row, end_row): inclusive start,
  /// EXCLUSIVE end. An empty string leaves that side unbounded. Adjacent
  /// ranges built from a sorted boundary list tile the key space with no
  /// overlap and no gap — the partition shape of the parallel TableMult
  /// pipeline.
  static Range half_open_row_range(const std::string& start_row,
                                   const std::string& end_row);

  /// All cells with the given row prefix.
  static Range prefix(const std::string& row_prefix);

  /// All cells at or after the given row.
  static Range at_least_row(const std::string& row);

  /// True when `key` lies inside this range.
  bool contains(const Key& key) const noexcept;

  /// True when `key` is strictly past the end of this range (scan can
  /// stop).
  bool is_past_end(const Key& key) const noexcept;

  /// True when the rows [row_lo, row_hi) of a tablet may intersect this
  /// range (row_hi empty = unbounded tablet).
  bool may_intersect_rows(const std::string& row_lo,
                          const std::string& row_hi) const noexcept;

  /// The intersection of this range and `other`: the tighter of the two
  /// start bounds and the tighter of the two end bounds (at equal keys
  /// an exclusive bound is tighter than an inclusive one). May return a
  /// range that contains no key — check with is_empty(). The
  /// distributed scan router clips a client range against each server's
  /// ownership range with this.
  Range intersect(const Range& other) const;

  /// True when no key can satisfy the range (start bound past the end
  /// bound). Unbounded sides never make a range empty.
  bool is_empty() const noexcept;
};

/// The smallest key with the given row (used for seeks).
Key min_key_for_row(const std::string& row);

/// A key that sorts immediately after every key of `row` (the row
/// successor: row + '\0').
Key key_after_row(const std::string& row);

}  // namespace graphulo::nosql
