#include "nosql/manifest.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/checksum.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace graphulo::nosql {

namespace {

void put_u32(std::string& buf, std::uint32_t v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_u64(std::string& buf, std::uint64_t v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_string(std::string& buf, const std::string& s) {
  put_u32(buf, static_cast<std::uint32_t>(s.size()));
  buf.append(s);
}

// Keys are encoded in full — timestamp and delete flag included — so a
// replayed FileMeta prunes scans exactly as the live one did.
void put_key(std::string& buf, const Key& k) {
  put_string(buf, k.row);
  put_string(buf, k.family);
  put_string(buf, k.qualifier);
  put_string(buf, k.visibility);
  put_u64(buf, static_cast<std::uint64_t>(k.ts));
  buf.push_back(k.deleted ? 1 : 0);
}

struct PayloadReader {
  const char* p;
  std::size_t remaining;

  bool read_raw(void* dst, std::size_t n) {
    if (remaining < n) return false;
    std::memcpy(dst, p, n);
    p += n;
    remaining -= n;
    return true;
  }

  bool read_u32(std::uint32_t& v) { return read_raw(&v, sizeof(v)); }
  bool read_u64(std::uint64_t& v) { return read_raw(&v, sizeof(v)); }

  bool read_string(std::string& s) {
    std::uint32_t len = 0;
    if (!read_u32(len)) return false;
    if (remaining < len) return false;
    s.assign(p, len);
    p += len;
    remaining -= len;
    return true;
  }

  bool read_key(Key& k) {
    std::uint64_t ts = 0;
    char del = 0;
    if (!read_string(k.row) || !read_string(k.family) ||
        !read_string(k.qualifier) || !read_string(k.visibility) ||
        !read_u64(ts) || !read_raw(&del, 1)) {
      return false;
    }
    k.ts = static_cast<Timestamp>(ts);
    k.deleted = del != 0;
    return true;
  }
};

bool decode_payload(const std::string& payload, VersionEdit& edit) {
  PayloadReader r{payload.data(), payload.size()};
  char has_start = 0;
  if (!r.read_string(edit.table) || !r.read_raw(&has_start, 1)) return false;
  edit.has_extent_start = has_start != 0;
  if (!r.read_string(edit.extent_start)) return false;
  std::uint64_t n_added = 0;
  if (!r.read_u64(n_added)) return false;
  for (std::uint64_t i = 0; i < n_added; ++i) {
    FileMeta m;
    std::uint64_t level = 0;
    if (!r.read_u64(m.file_id) || !r.read_u64(level) || !r.read_u64(m.seq) ||
        !r.read_u64(m.cells) || !r.read_u64(m.bytes) ||
        !r.read_key(m.first_key) || !r.read_key(m.last_key)) {
      return false;
    }
    m.level = static_cast<int>(level);
    edit.added.push_back(std::move(m));
  }
  std::uint64_t n_removed = 0;
  if (!r.read_u64(n_removed)) return false;
  for (std::uint64_t i = 0; i < n_removed; ++i) {
    std::uint64_t id = 0;
    if (!r.read_u64(id)) return false;
    edit.removed.push_back(id);
  }
  return r.remaining == 0;
}

}  // namespace

int compare_columns(const Key& a, const Key& b) noexcept {
  if (int c = a.row.compare(b.row)) return c;
  if (int c = a.family.compare(b.family)) return c;
  if (int c = a.qualifier.compare(b.qualifier)) return c;
  return a.visibility.compare(b.visibility);
}

FileMeta FileMeta::describe(std::shared_ptr<RFile> rf, int level,
                            std::uint64_t seq) {
  FileMeta m;
  m.file_id = rf->file_id();
  m.level = level;
  m.seq = seq;
  m.cells = rf->entry_count();
  m.bytes = rf->approximate_bytes();
  m.first_key = rf->first_key();
  m.last_key = rf->last_key();
  m.file = std::move(rf);
  return m;
}

std::string encode_version_edit(const VersionEdit& edit) {
  std::string payload;
  put_string(payload, edit.table);
  payload.push_back(edit.has_extent_start ? 1 : 0);
  put_string(payload, edit.extent_start);
  put_u64(payload, edit.added.size());
  for (const FileMeta& m : edit.added) {
    put_u64(payload, m.file_id);
    put_u64(payload, static_cast<std::uint64_t>(m.level));
    put_u64(payload, m.seq);
    put_u64(payload, m.cells);
    put_u64(payload, m.bytes);
    put_key(payload, m.first_key);
    put_key(payload, m.last_key);
  }
  put_u64(payload, edit.removed.size());
  for (const std::uint64_t id : edit.removed) put_u64(payload, id);

  std::string record;
  put_u32(record, static_cast<std::uint32_t>(payload.size()));
  put_u32(record, util::crc32(payload.data(), payload.size()));
  record.append(payload);
  return record;
}

ManifestWriter::ManifestWriter(const std::string& path) : path_(path) {
  out_ = std::make_unique<std::ofstream>(
      path, std::ios::binary | std::ios::trunc);
  if (!*out_) {
    throw util::TransientError("manifest: cannot open " + path);
  }
}

void ManifestWriter::append(const VersionEdit& edit) {
  // The fault site precedes the write: a fired fault leaves the stream
  // untouched and the caller rewrites the whole manifest on retry.
  util::fault::point(util::fault::sites::kManifestAppend);
  const std::string record = encode_version_edit(edit);
  out_->write(record.data(), static_cast<std::streamsize>(record.size()));
  if (!*out_) {
    throw util::TransientError("manifest: append failed on " + path_);
  }
  ++records_;
}

void ManifestWriter::sync() {
  out_->flush();
  if (!*out_) {
    throw util::TransientError("manifest: sync failed on " + path_);
  }
}

ManifestReplay replay_manifest(const std::string& path) {
  ManifestReplay result;
  std::ifstream in(path, std::ios::binary);
  if (!in) return result;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  std::size_t off = 0;
  while (off + 2 * sizeof(std::uint32_t) <= bytes.size()) {
    std::uint32_t len = 0, stored_crc = 0;
    std::memcpy(&len, bytes.data() + off, sizeof(len));
    std::memcpy(&stored_crc, bytes.data() + off + sizeof(len),
                sizeof(stored_crc));
    const std::size_t body = off + 2 * sizeof(std::uint32_t);
    if (body + len > bytes.size()) break;  // torn tail
    const std::string payload = bytes.substr(body, len);
    if (util::crc32(payload.data(), payload.size()) != stored_crc) break;
    VersionEdit edit;
    if (!decode_payload(payload, edit)) break;
    result.edits.push_back(std::move(edit));
    off = body + len;
    result.valid_bytes = off;
  }
  result.truncated = result.valid_bytes != bytes.size();
  if (result.truncated) {
    GRAPHULO_WARN << "manifest: discarding "
                  << (bytes.size() - result.valid_bytes)
                  << " torn/corrupt trailing bytes in " << path;
  }
  return result;
}

}  // namespace graphulo::nosql
