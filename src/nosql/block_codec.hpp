#pragma once
// Per-block key/value codec for packed RFile data blocks (the RFL3
// layout): shared-prefix delta compression of (row, family, qualifier,
// visibility) with varint lengths, zigzag-varint timestamp deltas, and
// restart points every K entries at which keys are stored whole.
//
// Graph tables are pathologically prefix-heavy — adjacency rows repeat
// the row key across every edge and D4M exploded schemas share long
// qualifier prefixes — so the common entry is a handful of varint
// bytes plus the key tail that actually changed. Restart points bound
// the decode work of a point lookup: a seek binary-searches the
// restart array (restart entries decode standalone) and then linearly
// decodes at most `restart_interval` entries.
//
// Raw block layout (before any general-purpose compressor):
//   entry*        delta-coded cells, restart entries have all shared
//                 lengths = 0 and an absolute timestamp
//   u32 * n       restart offsets (little-endian, ascending)
//   u32           restart count (>= 1 for any non-empty block)
// Entry:
//   varint shared/non-shared + bytes, for row, family, qualifier,
//   visibility; zigzag varint ts delta vs previous entry (absolute at
//   restarts); u8 flags (bit0 = delete marker); varint value length +
//   value bytes.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "nosql/key.hpp"

namespace graphulo::nosql::blockcodec {

// ---- varint primitives (shared with the RFL3 header writer) ------------

void put_varint(std::string& out, std::uint64_t v);

/// Reads one varint at `*p`, never past `end`; false on truncation or
/// overlong encoding (> 10 bytes).
bool get_varint(const char*& p, const char* end, std::uint64_t& v);

inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

// ---- block encode / decode ----------------------------------------------

/// Encodes `n` sorted cells into the raw block layout. `restart_interval`
/// is clamped to >= 1; the first entry is always a restart.
std::string encode_block(const Cell* cells, std::size_t n,
                         std::size_t restart_interval);

/// Decodes a raw block into `out`, which is resized to `expected_count`
/// — existing slots keep their string capacity, so a reused buffer
/// decodes without reallocating. Returns false on any malformed input
/// (truncation, shared length exceeding the previous component, bad
/// restart trailer, count mismatch).
bool decode_block(std::string_view raw, std::size_t expected_count,
                  std::vector<Cell>& out);

/// Index of the first entry with key >= `key` inside a raw block
/// (`count` when every entry is smaller). Binary search over the
/// restart array, then a bounded linear decode of keys only (values are
/// skipped). Returns `count` on malformed input — the block-level CRC
/// is the integrity gate; this is a best-effort position.
std::size_t block_lower_bound(std::string_view raw, std::size_t count,
                              std::size_t restart_interval, const Key& key);

}  // namespace graphulo::nosql::blockcodec
