#pragma once
// Sharded LRU cache of RFile data blocks, modelled on Accumulo's
// tserver data-block cache. Entries are keyed by (file id, block
// index), where a block is one index-stride window of an RFile — the
// unit the sparse seek index narrows to. Each resident entry pins its
// file's cell storage and charges the block's approximate byte size
// against a fixed byte budget; insertion past the budget evicts
// least-recently-used blocks.
//
// In this in-process stand-in RFiles are memory-resident, so a "miss"
// does not fault a disk read — the cache is the residency/accounting
// model the real system's cache-hit economics hang off: hits, misses
// and evictions are counted exactly as a disk-backed cache would count
// them, and the hit rate over a workload measures its real reuse.
//
// Thread-safe. Sharded by key hash so concurrent scans touching
// different files (or different regions of one file) do not serialize
// on a single mutex.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace graphulo::nosql {

struct BlockCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::size_t capacity_bytes = 0;
};

class BlockCache {
 public:
  /// A resident block: pins the owning storage (keeping the bytes
  /// "loaded") and records its charge against the budget.
  using Pin = std::shared_ptr<const void>;

  /// `capacity_bytes` is the total budget across all shards (each shard
  /// gets an equal slice). `num_shards` is rounded up to a power of
  /// two.
  explicit BlockCache(std::size_t capacity_bytes, std::size_t num_shards = 8);

  /// Looks up (file_id, block_index), refreshing its LRU position.
  /// Returns true on a hit. On a miss the block is inserted with the
  /// given pin and byte charge, evicting LRU entries until the shard is
  /// back under budget (an oversized block may evict everything and
  /// still be admitted — the budget is approximate, as in Accumulo).
  bool touch(std::uint64_t file_id, std::uint64_t block_index, const Pin& pin,
             std::size_t charge);

  /// Lookup-only half of the decode-through protocol: returns the
  /// resident pin (refreshing its LRU position) or nullptr on a miss.
  /// Hit/miss counters update either way; a miss does NOT insert — the
  /// caller decodes the block and hands the result to insert().
  Pin find(std::uint64_t file_id, std::uint64_t block_index);

  /// Inserts a freshly decoded block (typically after a find() miss),
  /// evicting LRU entries past the shard budget. If the key is already
  /// resident (another scan raced the decode) the existing entry is
  /// refreshed and kept — dropping the duplicate charge keeps the
  /// budget accounting exact. No hit/miss counting: find() did that.
  void insert(std::uint64_t file_id, std::uint64_t block_index, const Pin& pin,
              std::size_t charge);

  /// Drops every block of `file_id` (called when a compaction retires
  /// the file, so dead blocks stop occupying budget). O(entries).
  void erase_file(std::uint64_t file_id);

  /// Aggregate counters across shards.
  BlockCacheStats stats() const;

  std::size_t capacity_bytes() const noexcept { return capacity_; }

 private:
  struct BlockKey {
    std::uint64_t file_id;
    std::uint64_t block_index;
    bool operator==(const BlockKey&) const = default;
  };
  struct BlockKeyHash {
    std::size_t operator()(const BlockKey& k) const noexcept;
  };
  struct Entry {
    BlockKey key;
    Pin pin;
    std::size_t charge = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recent
    std::unordered_map<BlockKey, std::list<Entry>::iterator, BlockKeyHash> map;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  Shard& shard_for(const BlockKey& key);

  std::size_t capacity_;
  std::size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace graphulo::nosql
