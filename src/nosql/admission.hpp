#pragma once
// Admission control for mixed read/write traffic: bounded in-flight
// scans, per-session token-bucket rate limits, and a queue-or-shed
// overload policy — the layer that keeps long TableMult scans and heavy
// ingest from starving each other on one instance.
//
// Model: every Table owns one AdmissionController driven by its
// TableConfig::admission knobs (all zero = everything admitted, zero
// cost). Scans take a ScanTicket before building their stacks; the
// ticket is RAII and bounds the number of concurrently executing scan
// operations. Clients (Scanner, BatchScanner, BatchWriter) each carry an
// AdmissionSession whose token buckets meter their individual rate, so
// one chatty client saturates its own bucket before it can crowd out
// the rest.
//
// Overload surfaces as a TYPED error: OverloadedError derives from
// util::TransientError, so util::with_retries (and therefore
// BatchWriter's per-mutation retry loop) treats a shed write as
// back-pressure — bounded backoff, then a typed failure the caller can
// distinguish from corruption (BatchWriter::last_error_kind()).
// Deadlines propagate: a queued admission never waits past the caller's
// deadline, and scan loops abort with DeadlineExceeded once theirs
// passes.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "util/fault.hpp"

namespace graphulo::nosql {

/// The instance is over its admission limits and the policy said shed
/// (or a queued wait timed out). Derives from TransientError: retry
/// loops back off and re-attempt, which IS the back-pressure — callers
/// that exhaust their retries see a typed, distinguishable failure.
class OverloadedError : public util::TransientError {
 public:
  using util::TransientError::TransientError;
};

/// A cooperative deadline expired inside a scan loop (or while queued
/// for admission with a deadline attached). Deliberately NOT transient:
/// an immediate retry of a timed-out scan would time out again; the
/// caller decides whether to re-issue with a fresh deadline.
class DeadlineExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// What to do with work that exceeds an admission limit.
enum class AdmissionPolicy {
  kQueue,  ///< wait (bounded by max_queue_wait / the caller's deadline)
  kShed,   ///< fail immediately with OverloadedError
};

/// Per-table admission knobs (TableConfig::admission). Zeros disable
/// each limit individually; the default config admits everything.
struct AdmissionConfig {
  /// Concurrent scan operations allowed to execute (0 = unlimited).
  std::size_t max_inflight_scans = 0;
  /// Queue or shed when a limit is hit.
  AdmissionPolicy policy = AdmissionPolicy::kQueue;
  /// Longest a queued admission may wait before shedding anyway.
  std::chrono::milliseconds max_queue_wait{1000};
  /// Per-session scan admissions per second (0 = unlimited).
  double scan_rate = 0.0;
  double scan_burst = 16.0;
  /// Per-session mutations per second through BatchWriter (0 =
  /// unlimited).
  double write_rate = 0.0;
  double write_burst = 1024.0;
  /// MVCC snapshot handles older than this stop gating compaction and
  /// fail subsequent scans with SnapshotExpired, so an abandoned handle
  /// cannot stall delete-marker GC forever (0 = never expire).
  std::chrono::milliseconds max_snapshot_age{0};
};

/// One client's token-bucket state (scan + write buckets). Sessions are
/// cheap; create one per logical client (a Scanner loop, a BatchWriter)
/// via AdmissionController::make_session(). Thread-safe — a session may
/// be shared by the client's worker threads, in which case they share
/// its rate.
class AdmissionSession {
 public:
  explicit AdmissionSession(const AdmissionConfig* config);

 private:
  friend class AdmissionController;

  const AdmissionConfig* config_;
  std::mutex mutex_;
  double scan_tokens_;
  double write_tokens_;
  std::chrono::steady_clock::time_point scan_refill_;
  std::chrono::steady_clock::time_point write_refill_;
};

/// The per-table admission gate. `config` must outlive the controller
/// (it lives inside the owning Table's TableConfig, same contract as
/// every other config consumer).
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig* config)
      : config_(config) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// RAII in-flight-scan slot. Empty (default-constructed or moved-
  /// from) tickets release nothing.
  class ScanTicket {
   public:
    ScanTicket() = default;
    ScanTicket(ScanTicket&& other) noexcept : ctrl_(other.ctrl_) {
      other.ctrl_ = nullptr;
    }
    ScanTicket& operator=(ScanTicket&& other) noexcept {
      if (this != &other) {
        release();
        ctrl_ = other.ctrl_;
        other.ctrl_ = nullptr;
      }
      return *this;
    }
    ~ScanTicket() { release(); }
    explicit operator bool() const noexcept { return ctrl_ != nullptr; }

   private:
    friend class AdmissionController;
    explicit ScanTicket(AdmissionController* ctrl) : ctrl_(ctrl) {}
    void release() noexcept;

    AdmissionController* ctrl_ = nullptr;
  };

  /// Admits one scan operation: charges the session's scan bucket (when
  /// one is supplied and a rate is configured), then takes an in-flight
  /// slot. Queue policy waits — bounded by max_queue_wait and by
  /// `deadline` when given — shed policy fails immediately. Throws
  /// OverloadedError when the scan cannot be admitted.
  ScanTicket admit_scan(
      AdmissionSession* session = nullptr,
      std::optional<std::chrono::steady_clock::time_point> deadline = {});

  /// Charges `mutations` write tokens from the session's bucket; the
  /// write-path back-pressure hook BatchWriter::flush calls before each
  /// apply. Queue policy sleeps until the bucket refills (bounded by
  /// max_queue_wait); shed policy throws OverloadedError immediately
  /// when the bucket is dry.
  void admit_write(AdmissionSession& session, std::size_t mutations = 1);

  /// A fresh session with full buckets.
  std::shared_ptr<AdmissionSession> make_session() const {
    return std::make_shared<AdmissionSession>(config_);
  }

  const AdmissionConfig& config() const noexcept { return *config_; }

  /// Scans currently holding a slot (0 when max_inflight_scans is 0 —
  /// unlimited scans take no slot).
  std::size_t inflight_scans() const;

 private:
  void release_scan() noexcept;

  const AdmissionConfig* config_;
  mutable std::mutex mutex_;
  std::condition_variable slot_cv_;
  std::size_t inflight_ = 0;
};

}  // namespace graphulo::nosql
