#pragma once
// Durability knobs for the write-ahead log. Mirrors Accumulo's
// tserver.wal sync settings: the trade-off is per-append latency
// against the window of acknowledged-but-volatile records lost on a
// crash.

#include <chrono>
#include <cstddef>

namespace graphulo::nosql {

/// When an appended WAL record becomes durable relative to the append
/// call returning.
enum class WalSyncMode {
  /// Every append is written and fsync'd before it returns. Maximum
  /// durability, minimum throughput — each writer pays a full sync.
  kPerAppend,
  /// Group commit: appends are batched by a committer thread into one
  /// buffered write + a single fsync; each append blocks only until
  /// its own sequence number is durable. Concurrent writers share the
  /// sync cost.
  kGroup,
  /// Appends return immediately; the committer flushes the batch every
  /// `max_batch_latency` (or when `max_batch_bytes` accumulate).
  /// Records are durable only after an explicit sync() — the legacy
  /// buffered-stream behaviour, and the default.
  kInterval,
};

struct WalOptions {
  WalSyncMode sync_mode = WalSyncMode::kInterval;
  /// Committer writes a batch as soon as this many encoded bytes are
  /// pending, even before the latency deadline.
  std::size_t max_batch_bytes = 1u << 20;
  /// Upper bound on how long a pending record waits for co-travellers
  /// before the committer writes the batch anyway.
  std::chrono::microseconds max_batch_latency{2000};
};

}  // namespace graphulo::nosql
