#pragma once
// Shared background executor for tablet minor/major compactions,
// analogous to Accumulo's tserver compaction thread pools. Tablets
// enqueue flush/merge work here instead of running it inline under the
// tablet lock; the scheduler tracks queued / in-flight / completed
// counts and offers drain() so checkpointing and shutdown can quiesce
// every background compaction before touching on-disk state.
//
// Tasks must be self-contained and non-throwing from the scheduler's
// point of view: a task that lets an exception escape is logged and
// counted as completed (the owning tablet contains its own failures —
// see Tablet's background compaction paths).

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>

#include "util/threadpool.hpp"

namespace graphulo::nosql {

struct CompactionSchedulerStats {
  std::uint64_t queued = 0;     ///< tasks ever enqueued
  std::uint64_t completed = 0;  ///< tasks finished (incl. failed)
  std::size_t in_flight = 0;    ///< queued or running right now
};

class CompactionScheduler {
 public:
  /// `threads == 0` is clamped to 1 (the underlying pool always makes
  /// progress).
  explicit CompactionScheduler(std::size_t threads = 2);

  /// Drains all outstanding work, then joins the workers.
  ~CompactionScheduler();

  CompactionScheduler(const CompactionScheduler&) = delete;
  CompactionScheduler& operator=(const CompactionScheduler&) = delete;

  /// Schedules `task`. Returns false (without running it) when the
  /// scheduler is shutting down — callers fall back to doing the work
  /// inline or on a later trigger.
  bool enqueue(std::function<void()> task);

  /// Blocks until every task enqueued so far has completed. New tasks
  /// enqueued by running tasks (e.g. a flush chaining a major
  /// compaction) are waited for too.
  void drain();

  CompactionSchedulerStats stats() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  std::uint64_t queued_ = 0;
  std::uint64_t completed_ = 0;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  util::ThreadPool pool_;  ///< last member: destroyed (joined) first
};

}  // namespace graphulo::nosql
