#pragma once
// Immutable sorted run ("RFile", after Accumulo's file format). Produced
// by minor compactions (memtable flush) and major compactions (merging
// several files through the compaction iterator stack). Carries a sparse
// block index for seek; optionally serializable to disk.

#include <memory>
#include <string>
#include <vector>

#include "nosql/iterator.hpp"
#include "nosql/key.hpp"

namespace graphulo::nosql {

/// One immutable sorted cell file.
class RFile {
 public:
  /// Builds from sorted cells (asserted in debug; callers are the
  /// compaction paths which produce sorted output by construction).
  static std::shared_ptr<RFile> from_sorted(std::vector<Cell> cells);

  std::size_t entry_count() const noexcept { return cells_->size(); }
  bool empty() const noexcept { return cells_->empty(); }

  /// Smallest / largest key (preconditions: !empty()).
  const Key& first_key() const { return cells_->front().key; }
  const Key& last_key() const { return cells_->back().key; }

  /// A fresh iterator over this file's cells.
  IterPtr iterator() const;

  /// Up to `n` evenly spaced row keys from this file (distinct-adjacent,
  /// sorted). O(n) — the cells are index-addressable. Used to derive
  /// partition boundaries for parallel scans.
  std::vector<std::string> sample_rows(std::size_t n) const;

  /// Serializes to a simple length-prefixed binary file. Returns false
  /// on I/O failure.
  bool write_to(const std::string& path) const;

  /// Loads a file written by write_to(); nullptr on failure or if the
  /// content fails validation (unsorted keys, truncation).
  static std::shared_ptr<RFile> read_from(const std::string& path);

  /// Approximate in-memory footprint in bytes.
  std::size_t approximate_bytes() const noexcept { return bytes_; }

 private:
  explicit RFile(std::vector<Cell> cells);

  std::shared_ptr<const std::vector<Cell>> cells_;
  std::size_t bytes_ = 0;
};

}  // namespace graphulo::nosql
