#pragma once
// Immutable sorted run ("RFile", after Accumulo's file format). Produced
// by minor compactions (memtable flush) and major compactions (merging
// several files through the compaction iterator stack). Carries a sparse
// block index (every Nth key) consulted by seek, a per-file row Bloom
// filter plus first/last-key bounds for seek pruning, and is optionally
// serializable to disk with CRC32 integrity checksums.
//
// Two storage modes, chosen by RFileOptions::prefix_encode:
//   plain    every cell materialized in one sorted vector (the legacy
//            layout; default, zero-overhead scan path)
//   encoded  cells packed into per-block byte buffers: shared-prefix
//            delta compression with varint lengths and restart points
//            (nosql/block_codec.hpp), optionally followed by a
//            general-purpose per-block compressor (util/lz.hpp).
//            Blocks decode on demand; with a BlockCache attached, hot
//            blocks stay decoded in the cache while being charged at
//            their ENCODED byte size — the same cache_bytes budget
//            holds several times more cells than the plain layout.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nosql/iterator.hpp"
#include "nosql/key.hpp"

namespace graphulo::nosql {

class BlockCache;

/// Per-block general-purpose compressor applied AFTER prefix encoding.
enum class RFileCompressor : std::uint8_t {
  kNone = 0,
  kLz = 1,  ///< built-in LZ codec (util/lz.hpp); no external deps
};

/// Construction knobs for RFile acceleration structures.
struct RFileOptions {
  /// One sparse-index entry every `index_stride` cells. The index
  /// narrows seeks to a single stride window before the final search.
  /// Also the data-block granularity the block cache operates on.
  std::size_t index_stride = 128;
  /// Bits per distinct row in the row Bloom filter; 0 disables the
  /// filter (seek pruning then falls back to first/last-key bounds
  /// only).
  std::size_t bloom_bits_per_row = 10;
  /// Byte budget for the table's RFile block cache (see
  /// nosql/block_cache.hpp). 0 disables caching entirely — iterators
  /// never touch a cache and pay zero overhead.
  std::size_t cache_bytes = 0;
  /// Store cells in prefix-compressed packed blocks (the RFL3 layout)
  /// instead of one materialized vector. Off by default: the plain
  /// path is byte-for-byte the pre-RFL3 code.
  bool prefix_encode = false;
  /// Full (non-delta) key every `restart_interval` cells inside an
  /// encoded block; seeks binary-search the restart array and decode
  /// at most this many keys linearly. Only meaningful with
  /// prefix_encode.
  std::size_t restart_interval = 16;
  /// Optional per-block compressor applied after prefix encoding.
  RFileCompressor compressor = RFileCompressor::kNone;
};

/// One immutable sorted cell file.
class RFile : public std::enable_shared_from_this<RFile> {
 public:
  /// Builds from sorted cells (asserted in debug; callers are the
  /// compaction paths which produce sorted output by construction).
  static std::shared_ptr<RFile> from_sorted(std::vector<Cell> cells,
                                            const RFileOptions& options = {});

  std::size_t entry_count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  /// True when cells live in packed prefix-encoded blocks.
  bool prefix_encoded() const noexcept { return encoded_; }

  /// Smallest / largest key (preconditions: !empty()).
  const Key& first_key() const { return first_key_; }
  const Key& last_key() const { return last_key_; }

  /// A fresh iterator over this file's cells. Its seek() consults the
  /// sparse block index and skips the file entirely (exhausted
  /// immediately) when the range cannot intersect it — the first/last
  /// key bounds or, for single-row ranges, the row Bloom filter prove
  /// the target absent.
  IterPtr iterator() const;

  /// Same, but every data block the iterator reads is pulled through
  /// `cache` (see nosql/block_cache.hpp). `cache == nullptr` behaves
  /// exactly like iterator(). For encoded files the cache is
  /// decode-through: pins hold DECODED cell blocks (hot blocks never
  /// re-decode) charged at their encoded byte size.
  IterPtr iterator(BlockCache* cache) const;

  /// Process-unique id of this file, the cache key namespace.
  std::uint64_t file_id() const noexcept { return file_id_; }

  /// Data-block geometry for the cache: cells per block and per-block
  /// byte charges. Encoded files charge the actual encoded (possibly
  /// compressed) block size; plain files charge the materialized
  /// estimate, which is what they really pin.
  std::size_t block_stride() const noexcept { return stride_; }
  std::size_t block_count() const noexcept { return block_bytes_.size(); }
  std::size_t block_charge(std::size_t block) const {
    return block_bytes_[block];
  }
  /// Sum of block_charge over all blocks: the file's total cache cost.
  std::size_t total_block_bytes() const noexcept { return total_block_bytes_; }

  /// False when no cell of this file can lie inside `range` (bounds
  /// check + row Bloom filter for single-row ranges). Conservative:
  /// true does not guarantee a hit.
  bool may_intersect(const Range& range) const;

  /// False when the file provably holds no cell of `row` (Bloom filter
  /// + first/last row bounds). Conservative: true may be a false
  /// positive.
  bool may_contain_row(const std::string& row) const;

  /// Position of the first cell with key >= `key` (entry_count() when
  /// none). Sparse-index-accelerated binary search; on encoded files
  /// the in-block step binary-searches restart points and decodes at
  /// most restart_interval keys.
  std::size_t lower_bound_pos(const Key& key) const;

  /// Up to `n` evenly spaced row keys from this file (distinct-adjacent,
  /// sorted). The stride rounds UP and the file's last distinct row is
  /// always considered, so parallel-scan partitions derived from the
  /// samples cover the tail of the key space instead of skewing toward
  /// low keys. Plain files are O(n); encoded files decode one block per
  /// sample (keys only).
  std::vector<std::string> sample_rows(std::size_t n) const;

  /// Serializes to disk: plain files write the legacy RFL2 layout
  /// (length-prefixed cells, one trailing CRC32); encoded files write
  /// RFL3 (checksummed header + packed blocks with per-block CRC32s).
  /// Returns false on I/O failure.
  bool write_to(const std::string& path) const;

  /// Loads a file written by write_to(), dispatching on the format
  /// magic — RFL2 files from before the packed layout still load.
  /// nullptr on failure or if the content fails validation (bad magic,
  /// truncation, CRC mismatch, unsorted keys). `options` decides the
  /// in-memory mode of the loaded file (an RFL2 file read with
  /// prefix_encode on is re-encoded; an RFL3 file keeps its packed
  /// blocks verbatim).
  static std::shared_ptr<RFile> read_from(const std::string& path,
                                          const RFileOptions& options = {});

  /// Approximate in-memory footprint in bytes (encoded files: packed
  /// bytes + metadata, i.e. the compressed footprint).
  std::size_t approximate_bytes() const noexcept { return bytes_; }

 private:
  friend class RFileIterator;
  friend class EncodedRFileIterator;

  /// One packed data block: `stride_` cells (fewer in the last block)
  /// prefix-encoded and optionally compressed.
  struct EncodedBlock {
    std::string data;            ///< stored bytes (post-compressor)
    std::uint32_t crc = 0;       ///< crc32 of `data` as stored
    std::uint32_t count = 0;     ///< cells in this block
    std::uint32_t raw_bytes = 0; ///< pre-compressor size (== data.size()
                                 ///< when not compressed)
    bool compressed = false;
  };

  RFile(std::vector<Cell> cells, const RFileOptions& options);
  /// Adopts already-encoded blocks (the RFL3 load path).
  RFile(std::vector<EncodedBlock> blocks, std::vector<Key> block_first_keys,
        Key first_key, Key last_key, std::uint64_t count,
        std::vector<std::uint64_t> bloom, std::size_t bloom_bits,
        std::size_t stride, std::size_t restart_interval);

  void build_index(const RFileOptions& options);
  void build_bloom_from_cells(const std::vector<Cell>& cells,
                              const RFileOptions& options);
  void encode_cells(const std::vector<Cell>& cells,
                    const RFileOptions& options);
  void finish_block_accounting();

  /// Decodes block `b` into `out` (resized; slot capacity reused).
  /// Decompresses first when the block carries a compressor. Throws
  /// std::logic_error on malformed data — blocks are CRC-verified at
  /// load, so a decode failure is a program bug, not an I/O condition.
  void decode_block_into(std::size_t b, std::vector<Cell>& out) const;

  /// lower_bound over one encoded block via its restart points; returns
  /// an in-block index in [0, block count].
  std::size_t in_block_lower_bound(std::size_t b, const Key& key) const;

  bool write_rfl2(const std::string& path) const;
  bool write_rfl3(const std::string& path) const;
  static std::shared_ptr<RFile> read_rfl2(std::ifstream& in,
                                          const RFileOptions& options);
  static std::shared_ptr<RFile> read_rfl3(std::ifstream& in,
                                          const RFileOptions& options);

  // ---- common metadata --------------------------------------------------
  std::uint64_t file_id_ = 0;             ///< process-unique
  std::size_t count_ = 0;                 ///< total cells
  std::size_t bytes_ = 0;
  std::size_t stride_ = 1;                ///< cells per data block
  std::vector<std::size_t> block_bytes_;  ///< per-block byte charges
  std::size_t total_block_bytes_ = 0;
  std::vector<std::uint64_t> bloom_;      ///< row Bloom bits; empty = off
  std::size_t bloom_bits_ = 0;
  Key first_key_;
  Key last_key_;

  // ---- plain mode -------------------------------------------------------
  std::shared_ptr<const std::vector<Cell>> cells_;  ///< null when encoded
  std::vector<std::size_t> index_;        ///< cell positions 0, N, 2N, ...

  // ---- encoded mode -----------------------------------------------------
  bool encoded_ = false;
  std::vector<EncodedBlock> blocks_;
  std::vector<Key> block_first_keys_;     ///< sparse index of the blocks
  std::size_t restart_interval_ = 16;
};

}  // namespace graphulo::nosql
