#pragma once
// Immutable sorted run ("RFile", after Accumulo's file format). Produced
// by minor compactions (memtable flush) and major compactions (merging
// several files through the compaction iterator stack). Carries a sparse
// block index (every Nth key) consulted by seek, a per-file row Bloom
// filter plus first/last-key bounds for seek pruning, and is optionally
// serializable to disk with a CRC32 integrity checksum.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nosql/iterator.hpp"
#include "nosql/key.hpp"

namespace graphulo::nosql {

class BlockCache;

/// Construction knobs for RFile acceleration structures.
struct RFileOptions {
  /// One sparse-index entry every `index_stride` cells. The index
  /// narrows seeks to a single stride window before the final search.
  /// Also the data-block granularity the block cache operates on.
  std::size_t index_stride = 128;
  /// Bits per distinct row in the row Bloom filter; 0 disables the
  /// filter (seek pruning then falls back to first/last-key bounds
  /// only).
  std::size_t bloom_bits_per_row = 10;
  /// Byte budget for the table's RFile block cache (see
  /// nosql/block_cache.hpp). 0 disables caching entirely — iterators
  /// never touch a cache and pay zero overhead.
  std::size_t cache_bytes = 0;
};

/// One immutable sorted cell file.
class RFile : public std::enable_shared_from_this<RFile> {
 public:
  /// Builds from sorted cells (asserted in debug; callers are the
  /// compaction paths which produce sorted output by construction).
  static std::shared_ptr<RFile> from_sorted(std::vector<Cell> cells,
                                            const RFileOptions& options = {});

  std::size_t entry_count() const noexcept { return cells_->size(); }
  bool empty() const noexcept { return cells_->empty(); }

  /// Smallest / largest key (preconditions: !empty()).
  const Key& first_key() const { return cells_->front().key; }
  const Key& last_key() const { return cells_->back().key; }

  /// A fresh iterator over this file's cells. Its seek() consults the
  /// sparse block index and skips the file entirely (exhausted
  /// immediately) when the range cannot intersect it — the first/last
  /// key bounds or, for single-row ranges, the row Bloom filter prove
  /// the target absent.
  IterPtr iterator() const;

  /// Same, but every data block the iterator reads is pulled through
  /// `cache` (see nosql/block_cache.hpp). `cache == nullptr` behaves
  /// exactly like iterator().
  IterPtr iterator(BlockCache* cache) const;

  /// Process-unique id of this file, the cache key namespace.
  std::uint64_t file_id() const noexcept { return file_id_; }

  /// Data-block geometry for the cache: cells per block and per-block
  /// approximate byte charges.
  std::size_t block_stride() const noexcept { return stride_; }
  std::size_t block_count() const noexcept { return block_bytes_.size(); }
  std::size_t block_charge(std::size_t block) const {
    return block_bytes_[block];
  }

  /// False when no cell of this file can lie inside `range` (bounds
  /// check + row Bloom filter for single-row ranges). Conservative:
  /// true does not guarantee a hit.
  bool may_intersect(const Range& range) const;

  /// False when the file provably holds no cell of `row` (Bloom filter
  /// + first/last row bounds). Conservative: true may be a false
  /// positive.
  bool may_contain_row(const std::string& row) const;

  /// Position of the first cell with key >= `key` (entry_count() when
  /// none). Sparse-index-accelerated binary search.
  std::size_t lower_bound_pos(const Key& key) const;

  /// Up to `n` evenly spaced row keys from this file (distinct-adjacent,
  /// sorted). O(n) — the cells are index-addressable. The stride rounds
  /// UP and the file's last distinct row is always considered, so
  /// parallel-scan partitions derived from the samples cover the tail
  /// of the key space instead of skewing toward low keys.
  std::vector<std::string> sample_rows(std::size_t n) const;

  /// Serializes to a length-prefixed binary file with a trailing CRC32
  /// over the payload. Returns false on I/O failure.
  bool write_to(const std::string& path) const;

  /// Loads a file written by write_to(); nullptr on failure or if the
  /// content fails validation (bad magic, truncation, CRC mismatch,
  /// unsorted keys).
  static std::shared_ptr<RFile> read_from(const std::string& path,
                                          const RFileOptions& options = {});

  /// Approximate in-memory footprint in bytes.
  std::size_t approximate_bytes() const noexcept { return bytes_; }

 private:
  friend class RFileIterator;

  RFile(std::vector<Cell> cells, const RFileOptions& options);

  void build_index(const RFileOptions& options);
  void build_bloom(const RFileOptions& options);

  std::shared_ptr<const std::vector<Cell>> cells_;
  std::uint64_t file_id_ = 0;             ///< process-unique
  std::size_t bytes_ = 0;
  std::size_t stride_ = 1;                ///< cells per data block
  std::vector<std::size_t> index_;        ///< cell positions 0, N, 2N, ...
  std::vector<std::size_t> block_bytes_;  ///< per-block byte charges
  std::vector<std::uint64_t> bloom_;      ///< row Bloom bits; empty = off
  std::size_t bloom_bits_ = 0;
};

}  // namespace graphulo::nosql
