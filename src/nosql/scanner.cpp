#include "nosql/scanner.hpp"

#include <future>
#include <mutex>

#include "nosql/filter_iterators.hpp"
#include "nosql/visibility.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace graphulo::nosql {

namespace {

obs::Counter& scan_cells() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "scan.cells.total", "Cells delivered to scan callbacks");
  return c;
}
obs::Counter& scan_blocks() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "scan.blocks.total", "Cell blocks delivered on the batched scan path");
  return c;
}
obs::Counter& scan_deadline_exceeded() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "scan.deadline_exceeded.total",
      "Scans aborted mid-flight by their cooperative deadline");
  return c;
}

using ScanDeadline = std::optional<std::chrono::steady_clock::time_point>;

ScanDeadline deadline_from(std::chrono::milliseconds timeout) {
  if (timeout.count() <= 0) return std::nullopt;
  return std::chrono::steady_clock::now() + timeout;
}

void check_deadline(const ScanDeadline& deadline) {
  if (deadline && std::chrono::steady_clock::now() > *deadline) {
    scan_deadline_exceeded().inc();
    throw DeadlineExceeded("scan exceeded its deadline");
  }
}

IterPtr wrap_stages(IterPtr stack, const std::set<std::string>& families,
                    const std::optional<std::set<std::string>>& auths,
                    const std::vector<ScanIterator>& stages) {
  if (auths) {
    // Closest to the data, as Accumulo applies it.
    stack = make_visibility_filter(std::move(stack), *auths);
  }
  if (!families.empty()) {
    stack = make_column_family_filter(std::move(stack), families);
  }
  for (const auto& stage : stages) stack = stage(std::move(stack));
  return stack;
}

std::size_t run_scan(SortedKVIterator& stack, const Range& range,
                     std::size_t batch, const ScanDeadline& deadline,
                     const std::function<void(const Key&, const Value&)>& fn) {
  TRACE_SPAN("scan.range");
  std::size_t delivered = 0;
  stack.seek(range);
  if (batch <= 1) {
    // Legacy cell-at-a-time path (and the block-size-1 bench baseline).
    // The deadline is checked every kStride cells — a clock read per
    // cell would dominate this path.
    constexpr std::size_t kStride = 1024;
    while (stack.has_top()) {
      if (delivered % kStride == 0) check_deadline(deadline);
      fn(stack.top_key(), stack.top_value());
      ++delivered;
      stack.next();
    }
    scan_cells().inc(delivered);
    return delivered;
  }
  CellBlock block;
  std::size_t blocks = 0;
  while (stack.has_top()) {
    check_deadline(deadline);
    block.clear();
    if (stack.next_block(block, batch) == 0) break;
    for (const auto& c : block) fn(c.key, c.value);
    delivered += block.size();
    ++blocks;
  }
  scan_cells().inc(delivered);
  scan_blocks().inc(blocks);
  return delivered;
}

/// One ticket (and, lazily, one private session) per scan operation.
AdmissionController::ScanTicket admit(Instance& instance,
                                      const std::string& table,
                                      std::shared_ptr<AdmissionSession>& session,
                                      const ScanDeadline& deadline) {
  AdmissionController* ctrl = instance.admission(table);
  if (!ctrl) return {};
  if (!session) session = ctrl->make_session();
  return ctrl->admit_scan(session.get(), deadline);
}

}  // namespace

Scanner::Scanner(Instance& instance, std::string table)
    : instance_(instance), table_(std::move(table)) {}

Scanner& Scanner::set_range(Range range) {
  range_ = std::move(range);
  return *this;
}

Scanner& Scanner::fetch_column_families(std::set<std::string> families) {
  families_ = std::move(families);
  return *this;
}

Scanner& Scanner::set_authorizations(std::set<std::string> auths) {
  auths_ = std::move(auths);
  return *this;
}

Scanner& Scanner::add_scan_iterator(ScanIterator stage) {
  stages_.push_back(std::move(stage));
  return *this;
}

Scanner& Scanner::set_batch_size(std::size_t batch) {
  batch_size_ = batch == 0 ? 1 : batch;
  return *this;
}

Scanner& Scanner::set_snapshot(std::shared_ptr<const Snapshot> snapshot) {
  if (snapshot && snapshot->table_name() != table_) {
    throw std::invalid_argument("Scanner::set_snapshot: snapshot of table '" +
                                snapshot->table_name() +
                                "' attached to scanner of '" + table_ + "'");
  }
  snapshot_ = std::move(snapshot);
  return *this;
}

Scanner& Scanner::set_timeout(std::chrono::milliseconds timeout) {
  timeout_ = timeout;
  return *this;
}

Scanner& Scanner::set_session(std::shared_ptr<AdmissionSession> session) {
  session_ = std::move(session);
  return *this;
}

IterPtr Scanner::build_stack(const std::shared_ptr<Tablet>& tablet,
                             int server_id) {
  IterPtr stack = instance_.server(server_id).scan(*tablet);
  return wrap_stages(std::move(stack), families_, auths_, stages_);
}

std::size_t Scanner::for_each(
    const std::function<void(const Key&, const Value&)>& fn) {
  const ScanDeadline deadline = deadline_from(timeout_);
  // One Scanner::for_each = one admitted scan operation; the ticket
  // releases on every exit path.
  const auto ticket = admit(instance_, table_, session_, deadline);
  std::size_t delivered = 0;
  if (snapshot_) {
    // Snapshot cuts are disjoint and extent-ordered like live tablets.
    for (const auto& cut : snapshot_->tablets_for_range(range_)) {
      auto stack = wrap_stages(cut->scan_stack(), families_, auths_, stages_);
      delivered += run_scan(*stack, range_, batch_size_, deadline, fn);
    }
    return delivered;
  }
  // Tablets are disjoint and extent-ordered, so scanning them in order
  // yields globally ordered results.
  for (auto& [tablet, sid] : instance_.tablets_for_range(table_, range_)) {
    auto stack = build_stack(tablet, sid);
    delivered += run_scan(*stack, range_, batch_size_, deadline, fn);
  }
  return delivered;
}

std::vector<Cell> Scanner::read_all() {
  std::vector<Cell> out;
  for_each([&out](const Key& k, const Value& v) { out.push_back({k, v}); });
  return out;
}

BatchScanner::BatchScanner(Instance& instance, std::string table,
                           util::ThreadPool* pool)
    : instance_(instance),
      table_(std::move(table)),
      pool_(pool ? pool : &util::ThreadPool::global()) {}

BatchScanner& BatchScanner::set_ranges(std::vector<Range> ranges) {
  ranges_ = std::move(ranges);
  return *this;
}

BatchScanner& BatchScanner::fetch_column_families(
    std::set<std::string> families) {
  families_ = std::move(families);
  return *this;
}

BatchScanner& BatchScanner::set_authorizations(std::set<std::string> auths) {
  auths_ = std::move(auths);
  return *this;
}

BatchScanner& BatchScanner::add_scan_iterator(ScanIterator stage) {
  stages_.push_back(std::move(stage));
  return *this;
}

BatchScanner& BatchScanner::set_batch_size(std::size_t batch) {
  batch_size_ = batch == 0 ? 1 : batch;
  return *this;
}

BatchScanner& BatchScanner::set_snapshot(
    std::shared_ptr<const Snapshot> snapshot) {
  if (snapshot && snapshot->table_name() != table_) {
    throw std::invalid_argument(
        "BatchScanner::set_snapshot: snapshot of table '" +
        snapshot->table_name() + "' attached to scanner of '" + table_ + "'");
  }
  snapshot_ = std::move(snapshot);
  return *this;
}

BatchScanner& BatchScanner::set_timeout(std::chrono::milliseconds timeout) {
  timeout_ = timeout;
  return *this;
}

BatchScanner& BatchScanner::set_session(
    std::shared_ptr<AdmissionSession> session) {
  session_ = std::move(session);
  return *this;
}

std::size_t BatchScanner::for_each(
    const std::function<void(const Key&, const Value&)>& fn) {
  const ScanDeadline deadline = deadline_from(timeout_);
  // One BatchScanner::for_each = one admitted scan operation no matter
  // how many tablet tasks it fans out to; the ticket outlives them all.
  const auto ticket = admit(instance_, table_, session_, deadline);
  // One task per (tablet, range) pair — each opens its stack lazily on
  // the worker that runs it (snapshot cuts or live server scans).
  struct Task {
    std::function<IterPtr()> open;
    Range range;
  };
  std::vector<Task> work;
  for (const auto& range : ranges_) {
    if (snapshot_) {
      for (const auto& cut : snapshot_->tablets_for_range(range)) {
        work.push_back({[cut] { return cut->scan_stack(); }, range});
      }
    } else {
      for (auto& [tablet, sid] : instance_.tablets_for_range(table_, range)) {
        work.push_back({[this, tablet = tablet, sid = sid] {
                          return instance_.server(sid).scan(*tablet);
                        },
                        range});
      }
    }
  }
  auto run_one = [this, &fn, &deadline](const Task& task) -> std::size_t {
    IterPtr stack = wrap_stages(task.open(), families_, auths_, stages_);
    return run_scan(*stack, task.range, batch_size_, deadline, fn);
  };

  std::size_t delivered = 0;
  // Run inline when parallelism cannot help (single task or single
  // worker); this also keeps nested scans on a one-thread pool safe.
  if (work.size() <= 1 || pool_->size() <= 1) {
    for (const auto& task : work) delivered += run_one(task);
    return delivered;
  }
  std::vector<std::future<std::size_t>> tasks;
  tasks.reserve(work.size());
  for (const auto& task : work) {
    tasks.push_back(pool_->submit([&run_one, task] { return run_one(task); }));
  }
  for (auto& t : tasks) delivered += t.get();
  return delivered;
}

std::vector<Cell> BatchScanner::read_all() {
  std::vector<Cell> out;
  std::mutex out_mutex;
  for_each([&](const Key& k, const Value& v) {
    std::lock_guard lock(out_mutex);
    out.push_back({k, v});
  });
  return out;
}

}  // namespace graphulo::nosql
