#include "nosql/scanner.hpp"

#include <future>
#include <mutex>

#include "nosql/filter_iterators.hpp"
#include "nosql/visibility.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace graphulo::nosql {

namespace {

obs::Counter& scan_cells() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "scan.cells.total", "Cells delivered to scan callbacks");
  return c;
}
obs::Counter& scan_blocks() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "scan.blocks.total", "Cell blocks delivered on the batched scan path");
  return c;
}

IterPtr wrap_stages(IterPtr stack, const std::set<std::string>& families,
                    const std::optional<std::set<std::string>>& auths,
                    const std::vector<ScanIterator>& stages) {
  if (auths) {
    // Closest to the data, as Accumulo applies it.
    stack = make_visibility_filter(std::move(stack), *auths);
  }
  if (!families.empty()) {
    stack = make_column_family_filter(std::move(stack), families);
  }
  for (const auto& stage : stages) stack = stage(std::move(stack));
  return stack;
}

std::size_t run_scan(SortedKVIterator& stack, const Range& range,
                     std::size_t batch,
                     const std::function<void(const Key&, const Value&)>& fn) {
  TRACE_SPAN("scan.range");
  std::size_t delivered = 0;
  stack.seek(range);
  if (batch <= 1) {
    // Legacy cell-at-a-time path (and the block-size-1 bench baseline).
    while (stack.has_top()) {
      fn(stack.top_key(), stack.top_value());
      ++delivered;
      stack.next();
    }
    scan_cells().inc(delivered);
    return delivered;
  }
  CellBlock block;
  std::size_t blocks = 0;
  while (stack.has_top()) {
    block.clear();
    if (stack.next_block(block, batch) == 0) break;
    for (const auto& c : block) fn(c.key, c.value);
    delivered += block.size();
    ++blocks;
  }
  scan_cells().inc(delivered);
  scan_blocks().inc(blocks);
  return delivered;
}

}  // namespace

Scanner::Scanner(Instance& instance, std::string table)
    : instance_(instance), table_(std::move(table)) {}

Scanner& Scanner::set_range(Range range) {
  range_ = std::move(range);
  return *this;
}

Scanner& Scanner::fetch_column_families(std::set<std::string> families) {
  families_ = std::move(families);
  return *this;
}

Scanner& Scanner::set_authorizations(std::set<std::string> auths) {
  auths_ = std::move(auths);
  return *this;
}

Scanner& Scanner::add_scan_iterator(ScanIterator stage) {
  stages_.push_back(std::move(stage));
  return *this;
}

Scanner& Scanner::set_batch_size(std::size_t batch) {
  batch_size_ = batch == 0 ? 1 : batch;
  return *this;
}

IterPtr Scanner::build_stack(const std::shared_ptr<Tablet>& tablet,
                             int server_id) {
  IterPtr stack = instance_.server(server_id).scan(*tablet);
  return wrap_stages(std::move(stack), families_, auths_, stages_);
}

std::size_t Scanner::for_each(
    const std::function<void(const Key&, const Value&)>& fn) {
  std::size_t delivered = 0;
  // Tablets are disjoint and extent-ordered, so scanning them in order
  // yields globally ordered results.
  for (auto& [tablet, sid] : instance_.tablets_for_range(table_, range_)) {
    auto stack = build_stack(tablet, sid);
    delivered += run_scan(*stack, range_, batch_size_, fn);
  }
  return delivered;
}

std::vector<Cell> Scanner::read_all() {
  std::vector<Cell> out;
  for_each([&out](const Key& k, const Value& v) { out.push_back({k, v}); });
  return out;
}

BatchScanner::BatchScanner(Instance& instance, std::string table,
                           util::ThreadPool* pool)
    : instance_(instance),
      table_(std::move(table)),
      pool_(pool ? pool : &util::ThreadPool::global()) {}

BatchScanner& BatchScanner::set_ranges(std::vector<Range> ranges) {
  ranges_ = std::move(ranges);
  return *this;
}

BatchScanner& BatchScanner::fetch_column_families(
    std::set<std::string> families) {
  families_ = std::move(families);
  return *this;
}

BatchScanner& BatchScanner::set_authorizations(std::set<std::string> auths) {
  auths_ = std::move(auths);
  return *this;
}

BatchScanner& BatchScanner::add_scan_iterator(ScanIterator stage) {
  stages_.push_back(std::move(stage));
  return *this;
}

BatchScanner& BatchScanner::set_batch_size(std::size_t batch) {
  batch_size_ = batch == 0 ? 1 : batch;
  return *this;
}

std::size_t BatchScanner::for_each(
    const std::function<void(const Key&, const Value&)>& fn) {
  // One task per (tablet, range) pair.
  struct Task {
    std::shared_ptr<Tablet> tablet;
    int sid;
    Range range;
  };
  std::vector<Task> work;
  for (const auto& range : ranges_) {
    for (auto& [tablet, sid] : instance_.tablets_for_range(table_, range)) {
      work.push_back({tablet, sid, range});
    }
  }
  auto run_one = [this, &fn](const Task& task) -> std::size_t {
    IterPtr stack = instance_.server(task.sid).scan(*task.tablet);
    stack = wrap_stages(std::move(stack), families_, auths_, stages_);
    return run_scan(*stack, task.range, batch_size_, fn);
  };

  std::size_t delivered = 0;
  // Run inline when parallelism cannot help (single task or single
  // worker); this also keeps nested scans on a one-thread pool safe.
  if (work.size() <= 1 || pool_->size() <= 1) {
    for (const auto& task : work) delivered += run_one(task);
    return delivered;
  }
  std::vector<std::future<std::size_t>> tasks;
  tasks.reserve(work.size());
  for (const auto& task : work) {
    tasks.push_back(pool_->submit([&run_one, task] { return run_one(task); }));
  }
  for (auto& t : tasks) delivered += t.get();
  return delivered;
}

std::vector<Cell> BatchScanner::read_all() {
  std::vector<Cell> out;
  std::mutex out_mutex;
  for_each([&](const Key& k, const Value& v) {
    std::lock_guard lock(out_mutex);
    out.push_back({k, v});
  });
  return out;
}

}  // namespace graphulo::nosql
