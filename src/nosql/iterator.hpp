#pragma once
// The server-side iterator framework — the heart of the Accumulo
// execution model that Graphulo targets ("use Accumulo server
// components such as iterators to perform graph analytics", Section
// I-A).
//
// A SortedKVIterator yields cells in key order after a seek(). Iterators
// stack: filters, versioning, combiners and user analytics iterators all
// wrap a source iterator and present the same interface, so a scan is
// just the top of a stack whose bottom merges the tablet's memtable and
// immutable files. The same stacks run at compaction time, which is how
// summing combiners keep partial products collapsed on disk.

#include <memory>
#include <string>
#include <vector>

#include "nosql/key.hpp"

namespace graphulo::nosql {

/// Interface for all sorted key/value iterators.
class SortedKVIterator {
 public:
  virtual ~SortedKVIterator() = default;

  /// Positions the iterator at the first cell inside `range`.
  virtual void seek(const Range& range) = 0;

  /// True when positioned on a cell.
  virtual bool has_top() const = 0;

  /// Key of the current cell. Precondition: has_top().
  virtual const Key& top_key() const = 0;

  /// Value of the current cell. Precondition: has_top().
  virtual const Value& top_value() const = 0;

  /// Advances to the next cell (possibly exhausting the iterator).
  virtual void next() = 0;
};

using IterPtr = std::unique_ptr<SortedKVIterator>;

/// Convenience base for iterators that wrap one source.
class WrappingIterator : public SortedKVIterator {
 public:
  explicit WrappingIterator(IterPtr source) : source_(std::move(source)) {}

  void seek(const Range& range) override { source_->seek(range); }
  bool has_top() const override { return source_->has_top(); }
  const Key& top_key() const override { return source_->top_key(); }
  const Value& top_value() const override { return source_->top_value(); }
  void next() override { source_->next(); }

 protected:
  SortedKVIterator& source() { return *source_; }
  const SortedKVIterator& source() const { return *source_; }

 private:
  IterPtr source_;
};

/// Iterator over an in-memory sorted vector of cells (the building block
/// used by memtable snapshots, RFiles and tests).
class VectorIterator : public SortedKVIterator {
 public:
  /// `cells` must already be sorted by Key.
  explicit VectorIterator(std::shared_ptr<const std::vector<Cell>> cells)
      : cells_(std::move(cells)) {}

  void seek(const Range& range) override;
  bool has_top() const override { return pos_ < limit_; }
  const Key& top_key() const override { return (*cells_)[pos_].key; }
  const Value& top_value() const override { return (*cells_)[pos_].value; }
  void next() override { ++pos_; }

 private:
  std::shared_ptr<const std::vector<Cell>> cells_;
  std::size_t pos_ = 0;
  std::size_t limit_ = 0;
};

/// Drains an iterator into a vector (test/debug helper; scans of bounded
/// result size).
std::vector<Cell> drain(SortedKVIterator& it, const Range& range);

}  // namespace graphulo::nosql
