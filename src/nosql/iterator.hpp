#pragma once
// The server-side iterator framework — the heart of the Accumulo
// execution model that Graphulo targets ("use Accumulo server
// components such as iterators to perform graph analytics", Section
// I-A).
//
// A SortedKVIterator yields cells in key order after a seek(). Iterators
// stack: filters, versioning, combiners and user analytics iterators all
// wrap a source iterator and present the same interface, so a scan is
// just the top of a stack whose bottom merges the tablet's memtable and
// immutable files. The same stacks run at compaction time, which is how
// summing combiners keep partial products collapsed on disk.

#include <memory>
#include <string>
#include <vector>

#include "nosql/key.hpp"

namespace graphulo::nosql {

/// A contiguous batch of cells filled by SortedKVIterator::next_block().
/// Designed for reuse across fills: clear() only resets the logical size,
/// so each slot's key/value strings keep their heap buffers and the next
/// fill copy-assigns into warm capacity instead of allocating.
class CellBlock {
 public:
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Logically empties the block; slot capacity (including the string
  /// buffers inside each retained Cell) is kept for the next fill.
  void clear() noexcept { size_ = 0; }

  Cell& operator[](std::size_t i) noexcept { return slots_[i]; }
  const Cell& operator[](std::size_t i) const noexcept { return slots_[i]; }

  Cell* begin() noexcept { return slots_.data(); }
  Cell* end() noexcept { return slots_.data() + size_; }
  const Cell* begin() const noexcept { return slots_.data(); }
  const Cell* end() const noexcept { return slots_.data() + size_; }

  /// Appends one cell by copy-assignment into the next (possibly
  /// recycled) slot.
  void append(const Key& key, const Value& value) {
    Cell& c = grow();
    c.key = key;
    c.value = value;
  }

  /// Swaps two slots — used by filtering stages to compact kept cells
  /// toward the front without losing the dropped slots' buffers.
  void swap_cells(std::size_t a, std::size_t b) noexcept {
    std::swap(slots_[a], slots_[b]);
  }

  /// Shrinks the logical size to `n` (no-op when already smaller).
  void truncate(std::size_t n) noexcept {
    if (n < size_) size_ = n;
  }

 private:
  Cell& grow() {
    if (size_ == slots_.size()) slots_.emplace_back();
    return slots_[size_++];
  }

  std::vector<Cell> slots_;
  std::size_t size_ = 0;
};

/// Interface for all sorted key/value iterators.
class SortedKVIterator {
 public:
  virtual ~SortedKVIterator() = default;

  /// Positions the iterator at the first cell inside `range`.
  virtual void seek(const Range& range) = 0;

  /// True when positioned on a cell.
  virtual bool has_top() const = 0;

  /// Key of the current cell. Precondition: has_top().
  virtual const Key& top_key() const = 0;

  /// Value of the current cell. Precondition: has_top().
  virtual const Value& top_value() const = 0;

  /// Advances to the next cell (possibly exhausting the iterator).
  virtual void next() = 0;

  /// Batched advancement: APPENDS up to `max` cells to `out` (callers
  /// clear the block themselves) and consumes them from the stream.
  /// Returns the number appended; 0 means exhausted. Invariants:
  ///  - has_top() implies next_block(out, max >= 1) appends at least one
  ///    cell, so block consumers can use has_top() as "more data".
  ///  - After it returns, has_top()/top_key()/next() remain valid, so
  ///    cell-at-a-time and block calls can be mixed freely.
  /// The default walks the virtual cell interface; iterators with a
  /// cheaper bulk path override it. Wrappers that drop or rewrite cells
  /// MUST override it too (the stock filter/versioning/combiner stages
  /// do), otherwise blocks would bypass their transformation.
  virtual std::size_t next_block(CellBlock& out, std::size_t max) {
    std::size_t appended = 0;
    while (appended < max && has_top()) {
      out.append(top_key(), top_value());
      ++appended;
      next();
    }
    return appended;
  }

  /// Bounded batched advancement: like next_block(), but stops before
  /// the first key above `bound` (at `bound` itself when `allow_equal`
  /// is false). MergeIterator uses this to emit a winning child's whole
  /// run below the other children's tops in one call; leaves over sorted
  /// random-access storage override it with a gallop + binary search, so
  /// a run costs O(log run) key comparisons instead of one comparison
  /// plus four virtual calls per cell. Same invariants as next_block()
  /// except that 0 may be returned while has_top() is still true (the
  /// top is already past the bound).
  virtual std::size_t next_block_until(CellBlock& out, std::size_t max,
                                       const Key& bound, bool allow_equal) {
    std::size_t appended = 0;
    while (appended < max && has_top()) {
      const auto cmp = top_key() <=> bound;
      if (cmp > 0 || (cmp == 0 && !allow_equal)) break;
      out.append(top_key(), top_value());
      ++appended;
      next();
    }
    return appended;
  }
};

using IterPtr = std::unique_ptr<SortedKVIterator>;

/// Convenience base for iterators that wrap one source.
class WrappingIterator : public SortedKVIterator {
 public:
  explicit WrappingIterator(IterPtr source) : source_(std::move(source)) {}

  void seek(const Range& range) override { source_->seek(range); }
  bool has_top() const override { return source_->has_top(); }
  const Key& top_key() const override { return source_->top_key(); }
  const Value& top_value() const override { return source_->top_value(); }
  void next() override { source_->next(); }

 protected:
  SortedKVIterator& source() { return *source_; }
  const SortedKVIterator& source() const { return *source_; }

 private:
  IterPtr source_;
};

/// Iterator over an in-memory sorted vector of cells (the building block
/// used by memtable snapshots, RFiles and tests).
class VectorIterator : public SortedKVIterator {
 public:
  /// `cells` must already be sorted by Key.
  explicit VectorIterator(std::shared_ptr<const std::vector<Cell>> cells)
      : cells_(std::move(cells)) {}

  void seek(const Range& range) override;
  bool has_top() const override { return pos_ < limit_; }
  const Key& top_key() const override { return (*cells_)[pos_].key; }
  const Value& top_value() const override { return (*cells_)[pos_].value; }
  void next() override { ++pos_; }

  /// Bulk range copy straight out of the backing vector — no virtual
  /// dispatch per cell.
  std::size_t next_block(CellBlock& out, std::size_t max) override;

  /// Gallop + binary search for the end of the qualifying run, then a
  /// bulk copy.
  std::size_t next_block_until(CellBlock& out, std::size_t max,
                               const Key& bound, bool allow_equal) override;

 private:
  std::shared_ptr<const std::vector<Cell>> cells_;
  std::size_t pos_ = 0;
  std::size_t limit_ = 0;
};

/// Drains an iterator into a vector (test/debug helper; scans of bounded
/// result size).
std::vector<Cell> drain(SortedKVIterator& it, const Range& range);

}  // namespace graphulo::nosql
