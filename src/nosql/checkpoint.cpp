#include "nosql/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "nosql/manifest.hpp"
#include "util/checksum.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace graphulo::nosql {

namespace {

constexpr std::uint32_t kCheckpointMagic = 0x47434b32;  // "GCK2"

void put_u64(std::string& buf, std::uint64_t v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_string(std::string& buf, const std::string& s) {
  const auto len = static_cast<std::uint32_t>(s.size());
  buf.append(reinterpret_cast<const char*>(&len), sizeof(len));
  buf.append(s);
}

struct PayloadReader {
  const char* p;
  std::size_t remaining;

  bool read_raw(void* dst, std::size_t n) {
    if (remaining < n) return false;
    std::memcpy(dst, p, n);
    p += n;
    remaining -= n;
    return true;
  }

  bool read_u64(std::uint64_t& v) { return read_raw(&v, sizeof(v)); }

  bool read_string(std::string& s) {
    std::uint32_t len = 0;
    if (!read_raw(&len, sizeof(len))) return false;
    if (remaining < len) return false;
    s.assign(p, len);
    p += len;
    remaining -= len;
    return true;
  }
};

/// One table's snapshot (catalog + unflushed cells), decoded. Flushed
/// data travels separately as manifest + file artifacts.
struct TableSnapshot {
  std::string name;
  std::vector<std::string> splits;
  std::vector<Cell> cells;  ///< unflushed (memtable + frozen) only
};

/// Decoded main-snapshot payload.
struct CheckpointImage {
  Timestamp clock = 0;
  std::uint64_t covers_seq = 0;
  std::uint64_t epoch = 0;  ///< names the manifest/files artifacts
  std::vector<TableSnapshot> tables;
};

// -- artifact naming --------------------------------------------------------

std::string manifest_path_for(const std::string& path, std::uint64_t epoch) {
  return path + ".manifest-" + std::to_string(epoch);
}

std::string files_dir_for(const std::string& path, std::uint64_t epoch) {
  return path + ".files-" + std::to_string(epoch);
}

std::string rfile_path_in(const std::string& dir, std::uint64_t file_id) {
  return dir + "/f" + std::to_string(file_id) + ".rf";
}

/// True when `name` is `<base><suffix_prefix><digits>`; outputs the
/// parsed digits. Exact-prefix + all-digits, so e.g. a neighboring
/// "<base>.files-3.bak" never matches.
bool parse_epoch_artifact(const std::string& name, const std::string& base,
                          const char* suffix_prefix, std::uint64_t& epoch) {
  const std::string prefix = base + suffix_prefix;
  if (name.size() <= prefix.size() ||
      name.compare(0, prefix.size(), prefix) != 0) {
    return false;
  }
  const std::string digits = name.substr(prefix.size());
  if (digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  epoch = std::strtoull(digits.c_str(), nullptr, 10);
  return true;
}

/// Picks the epoch for a new checkpoint: at least `covers_seq` (so
/// epochs track WAL progress and are human-correlatable) and strictly
/// above every artifact epoch already on disk — a retried or repeated
/// checkpoint NEVER reuses a directory a previous (possibly still
/// live) checkpoint references.
std::uint64_t next_epoch(const std::string& checkpoint_path,
                         std::uint64_t covers_seq) {
  namespace fs = std::filesystem;
  std::uint64_t epoch = std::max<std::uint64_t>(covers_seq, 1);
  const fs::path p(checkpoint_path);
  fs::path dir = p.parent_path();
  if (dir.empty()) dir = ".";
  const std::string base = p.filename().string();
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return epoch;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    std::uint64_t found = 0;
    if (parse_epoch_artifact(name, base, ".manifest-", found) ||
        parse_epoch_artifact(name, base, ".files-", found)) {
      epoch = std::max(epoch, found + 1);
    }
  }
  return epoch;
}

/// Best-effort removal of every manifest/files artifact whose epoch is
/// not `keep` — run only AFTER the new main snapshot is durably
/// renamed into place, so a crash can never strand the live checkpoint
/// pointing at deleted artifacts.
void remove_stale_epochs(const std::string& checkpoint_path,
                         std::uint64_t keep) {
  namespace fs = std::filesystem;
  const fs::path p(checkpoint_path);
  fs::path dir = p.parent_path();
  if (dir.empty()) dir = ".";
  const std::string base = p.filename().string();
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return;
  std::vector<fs::path> stale;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    std::uint64_t found = 0;
    if ((parse_epoch_artifact(name, base, ".manifest-", found) ||
         parse_epoch_artifact(name, base, ".files-", found)) &&
        found != keep) {
      stale.push_back(entry.path());
    }
  }
  for (const auto& path : stale) {
    std::error_code rm_ec;
    fs::remove_all(path, rm_ec);  // ignore failures: retried next time
  }
}

// -- main snapshot encode/decode --------------------------------------------

std::string encode_checkpoint(Instance& db, std::uint64_t covers_seq,
                              std::uint64_t epoch, CheckpointStats& stats) {
  std::string payload;
  put_u64(payload, static_cast<std::uint64_t>(db.last_timestamp()));
  put_u64(payload, covers_seq);
  put_u64(payload, epoch);
  const auto names = db.table_names();
  put_u64(payload, names.size());
  for (const auto& name : names) {
    put_string(payload, name);
    const auto splits = db.list_splits(name);
    put_u64(payload, splits.size());
    for (const auto& s : splits) put_string(payload, s);
    // Unflushed cells only (all versions + delete markers), in extent
    // order across tablets so restore re-routes them identically.
    // Flushed data rides along as file artifacts, not re-encoded cells.
    std::vector<Cell> cells;
    for (const auto& [tablet, sid] : db.tablets_for_range(name, Range::all())) {
      auto part = tablet->unflushed_cells();
      cells.insert(cells.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
    }
    put_u64(payload, cells.size());
    for (const auto& c : cells) {
      put_string(payload, c.key.row);
      put_string(payload, c.key.family);
      put_string(payload, c.key.qualifier);
      put_string(payload, c.key.visibility);
      put_u64(payload, static_cast<std::uint64_t>(c.key.ts));
      payload.push_back(c.key.deleted ? 1 : 0);
      put_string(payload, c.value);
    }
    stats.cells += cells.size();
    ++stats.tables;
  }
  return payload;
}

bool decode_checkpoint(const std::string& payload, CheckpointImage& image) {
  PayloadReader reader{payload.data(), payload.size()};
  std::uint64_t clock = 0, covers_seq = 0, epoch = 0, table_count = 0;
  if (!reader.read_u64(clock) || !reader.read_u64(covers_seq) ||
      !reader.read_u64(epoch) || !reader.read_u64(table_count)) {
    return false;
  }
  image.clock = static_cast<Timestamp>(clock);
  image.covers_seq = covers_seq;
  image.epoch = epoch;
  for (std::uint64_t t = 0; t < table_count; ++t) {
    TableSnapshot snap;
    if (!reader.read_string(snap.name)) return false;
    std::uint64_t split_count = 0;
    if (!reader.read_u64(split_count)) return false;
    for (std::uint64_t i = 0; i < split_count; ++i) {
      std::string s;
      if (!reader.read_string(s)) return false;
      snap.splits.push_back(std::move(s));
    }
    std::uint64_t cell_count = 0;
    if (!reader.read_u64(cell_count)) return false;
    snap.cells.reserve(cell_count);
    for (std::uint64_t i = 0; i < cell_count; ++i) {
      Cell c;
      std::uint64_t ts = 0;
      if (!reader.read_string(c.key.row) ||
          !reader.read_string(c.key.family) ||
          !reader.read_string(c.key.qualifier) ||
          !reader.read_string(c.key.visibility) || !reader.read_u64(ts)) {
        return false;
      }
      c.key.ts = static_cast<Timestamp>(ts);
      char del = 0;
      if (!reader.read_raw(&del, 1)) return false;
      c.key.deleted = del != 0;
      if (!reader.read_string(c.value)) return false;
      snap.cells.push_back(std::move(c));
    }
    image.tables.push_back(std::move(snap));
  }
  return reader.remaining == 0;
}

/// Writes magic | len | payload | crc to `path`. False on I/O failure.
bool write_file(const std::string& path, const std::string& payload) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const auto payload_len = static_cast<std::uint64_t>(payload.size());
  const std::uint32_t crc = util::crc32(payload.data(), payload.size());
  out.write(reinterpret_cast<const char*>(&kCheckpointMagic),
            sizeof(kCheckpointMagic));
  out.write(reinterpret_cast<const char*>(&payload_len), sizeof(payload_len));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  out.flush();
  return static_cast<bool>(out);
}

/// Loads and validates a checkpoint main file. False on missing file,
/// bad magic, truncation, or CRC mismatch.
bool load_file(const std::string& path, CheckpointImage& image) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::uint32_t magic = 0;
  if (!in.read(reinterpret_cast<char*>(&magic), sizeof(magic)) ||
      magic != kCheckpointMagic) {
    return false;
  }
  std::uint64_t payload_len = 0;
  if (!in.read(reinterpret_cast<char*>(&payload_len), sizeof(payload_len))) {
    return false;
  }
  std::string payload(payload_len, '\0');
  if (!in.read(payload.data(), static_cast<std::streamsize>(payload_len))) {
    return false;
  }
  std::uint32_t stored_crc = 0;
  if (!in.read(reinterpret_cast<char*>(&stored_crc), sizeof(stored_crc))) {
    return false;
  }
  if (util::crc32(payload.data(), payload.size()) != stored_crc) return false;
  return decode_checkpoint(payload, image);
}

/// Persists every live RFile under `dir` and appends one VersionEdit
/// per non-empty tablet to `manifest`. Throws TransientError on I/O
/// failure (caller retries, rewriting this epoch's artifacts wholesale).
void persist_file_sets(Instance& db, const std::string& dir,
                       ManifestWriter& manifest, CheckpointStats& stats) {
  for (const auto& name : db.table_names()) {
    for (const auto& [tablet, sid] : db.tablets_for_range(name, Range::all())) {
      const auto version = tablet->version();
      VersionEdit edit;
      edit.table = name;
      edit.extent_start = tablet->extent().start_row;
      edit.has_extent_start = !edit.extent_start.empty();
      for (const auto& level : version->levels) {
        for (const FileMeta& meta : level) {
          const std::string fpath = rfile_path_in(dir, meta.file_id);
          if (!meta.file->write_to(fpath)) {
            throw util::TransientError("write_checkpoint: I/O failure on " +
                                       fpath);
          }
          edit.added.push_back(meta);
          stats.cells += meta.cells;
          ++stats.files;
        }
      }
      if (!edit.added.empty()) manifest.append(edit);
    }
  }
  manifest.sync();
}

}  // namespace

CheckpointStats write_checkpoint(Instance& db,
                                 const std::string& checkpoint_path) {
  const auto& wal = db.wal();
  if (!wal) {
    throw std::logic_error("write_checkpoint: instance has no attached WAL");
  }
  CheckpointStats stats;
  // Settle background compactions first so the snapshot captures a
  // stable {memtable, frozen, files} set instead of racing installs
  // mid-encode. (The encode would still be CORRECT mid-race — tablet
  // snapshots are consistent — but quiescing keeps checkpoint sizes
  // deterministic.)
  db.quiesce_compactions();
  const std::uint64_t covers_seq = wal->next_seq();
  // Epoch chosen ONCE, outside the retry scope: every retry rewrites
  // the same fresh epoch's artifacts, never an older epoch a previous
  // checkpoint still references.
  const std::uint64_t epoch = next_epoch(checkpoint_path, covers_seq);
  const std::string dir = files_dir_for(checkpoint_path, epoch);
  const std::string tmp_path = checkpoint_path + ".tmp";
  // All artifact writes live inside the retry scope: persisting RFiles
  // passes their own rfile.write fault site, the manifest writer passes
  // manifest.append, and re-running the whole sequence is idempotent
  // (same epoch, same paths, truncate-on-open).
  util::with_retries("write_checkpoint", db.retry_policy(), [&] {
    util::fault::point(util::fault::sites::kCheckpointWrite);
    CheckpointStats fresh;
    fresh.covers_seq = covers_seq;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      throw util::TransientError("write_checkpoint: cannot create " + dir);
    }
    ManifestWriter manifest(manifest_path_for(checkpoint_path, epoch));
    persist_file_sets(db, dir, manifest, fresh);
    const std::string payload =
        encode_checkpoint(db, covers_seq, epoch, fresh);
    if (!write_file(tmp_path, payload)) {
      throw util::TransientError("write_checkpoint: I/O failure on " +
                                 tmp_path);
    }
    stats = fresh;
  });
  // The rename is the commit point: before it, recovery still sees the
  // previous checkpoint (whose artifacts are untouched); after it, the
  // new epoch's manifest + files are what the main snapshot names.
  if (std::rename(tmp_path.c_str(), checkpoint_path.c_str()) != 0) {
    throw std::runtime_error("write_checkpoint: rename to " +
                             checkpoint_path + " failed");
  }
  // Only after the checkpoint is durably in place may the log shrink.
  // A crash before this rotate leaves stale records in the WAL, which
  // recovery skips by sequence number.
  wal->rotate();
  remove_stale_epochs(checkpoint_path, epoch);
  GRAPHULO_INFO << "checkpoint: " << stats.tables << " tables, "
                << stats.cells << " cells (" << stats.files
                << " files, epoch " << epoch << "), WAL truncated at seq "
                << stats.covers_seq;
  return stats;
}

RecoveryStats recover_instance(Instance& db,
                               const std::string& checkpoint_path,
                               const std::string& wal_path,
                               const TableConfigProvider& config_for) {
  RecoveryStats stats;
  CheckpointImage image;
  bool loaded = false;
  try {
    util::with_retries("recover_instance: checkpoint load",
                       db.retry_policy(), [&] {
                         util::fault::point(util::fault::sites::kCheckpointLoad);
                         image = CheckpointImage{};
                         loaded = load_file(checkpoint_path, image);
                       });
  } catch (const util::TransientError&) {
    loaded = false;  // exhausted retries: fall back to WAL-only recovery
  }
  std::uint64_t min_seq = 0;
  if (loaded) {
    // Catalog first: tables + splits reproduce the tablet layout, so
    // the manifest's per-tablet edits land on matching extents.
    for (const auto& snap : image.tables) {
      db.create_table(snap.name,
                      config_for ? config_for(snap.name) : TableConfig{});
      if (!snap.splits.empty()) db.add_splits(snap.name, snap.splits);
    }
    // Leveled file sets next (BEFORE unflushed cells: restore_files
    // seeds each tablet's data-seq counter, so post-restore flushes
    // sort newer than every recovered file). The manifest replay is
    // torn-tail tolerant; a missing manifest just means no flushed
    // data was captured.
    const auto replay =
        replay_manifest(manifest_path_for(checkpoint_path, image.epoch));
    const std::string dir = files_dir_for(checkpoint_path, image.epoch);
    for (const auto& edit : replay.edits) {
      if (!db.table_exists(edit.table)) {
        GRAPHULO_WARN << "recover_instance: manifest names unknown table '"
                      << edit.table << "', skipping its files";
        continue;
      }
      const RFileOptions rfile_options = db.table_config(edit.table).rfile;
      std::vector<FileMeta> files;
      for (const FileMeta& record : edit.added) {
        const std::string fpath = rfile_path_in(dir, record.file_id);
        std::shared_ptr<RFile> file;
        try {
          util::with_retries("recover_instance: file load",
                             db.retry_policy(), [&] {
                               file = RFile::read_from(fpath, rfile_options);
                             });
        } catch (const util::TransientError&) {
          file = nullptr;
        }
        if (!file) {
          // Corrupt/missing artifact: recover what we can; the loss is
          // loud, not silent.
          GRAPHULO_ERROR << "recover_instance: cannot load " << fpath
                         << ", dropping " << record.cells << " cells";
          continue;
        }
        FileMeta meta = record;
        meta.file = std::move(file);
        meta.file_id = meta.file->file_id();  // runtime ids differ per process
        stats.cells_restored += meta.cells;
        ++stats.files_restored;
        files.push_back(std::move(meta));
      }
      if (!files.empty()) {
        // Copy per attempt: restore_files consumes its argument and the
        // manifest.install fault site may fire inside.
        util::with_retries("recover_instance: restore files",
                           db.retry_policy(), [&] {
                             db.restore_files(edit.table, edit.extent_start,
                                              files);
                           });
      }
    }
    // Unflushed cells last; their flush (if any) gets a data seq newer
    // than every restored file.
    for (auto& snap : image.tables) {
      stats.cells_restored += snap.cells.size();
      db.restore_cells(snap.name, std::move(snap.cells));
      ++stats.tables_restored;
    }
    db.advance_clock(image.clock);
    min_seq = image.covers_seq;
    stats.checkpoint_loaded = true;
  }
  stats.records_replayed = recover_from_wal(db, wal_path, config_for, min_seq);
  return stats;
}

}  // namespace graphulo::nosql
