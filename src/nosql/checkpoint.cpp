#include "nosql/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/checksum.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace graphulo::nosql {

namespace {

constexpr std::uint32_t kCheckpointMagic = 0x47434b31;  // "GCK1"

void put_u64(std::string& buf, std::uint64_t v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_string(std::string& buf, const std::string& s) {
  const auto len = static_cast<std::uint32_t>(s.size());
  buf.append(reinterpret_cast<const char*>(&len), sizeof(len));
  buf.append(s);
}

struct PayloadReader {
  const char* p;
  std::size_t remaining;

  bool read_raw(void* dst, std::size_t n) {
    if (remaining < n) return false;
    std::memcpy(dst, p, n);
    p += n;
    remaining -= n;
    return true;
  }

  bool read_u64(std::uint64_t& v) { return read_raw(&v, sizeof(v)); }

  bool read_string(std::string& s) {
    std::uint32_t len = 0;
    if (!read_raw(&len, sizeof(len))) return false;
    if (remaining < len) return false;
    s.assign(p, len);
    p += len;
    remaining -= len;
    return true;
  }
};

/// One table's snapshot, decoded.
struct TableSnapshot {
  std::string name;
  std::vector<std::string> splits;
  std::vector<Cell> cells;
};

/// Decoded checkpoint payload.
struct CheckpointImage {
  Timestamp clock = 0;
  std::uint64_t covers_seq = 0;
  std::vector<TableSnapshot> tables;
};

std::string encode_checkpoint(Instance& db, std::uint64_t covers_seq,
                              CheckpointStats& stats) {
  std::string payload;
  put_u64(payload, static_cast<std::uint64_t>(db.last_timestamp()));
  put_u64(payload, covers_seq);
  const auto names = db.table_names();
  put_u64(payload, names.size());
  for (const auto& name : names) {
    put_string(payload, name);
    const auto splits = db.list_splits(name);
    put_u64(payload, splits.size());
    for (const auto& s : splits) put_string(payload, s);
    // Raw cells (all versions + delete markers), in extent order across
    // tablets so restore re-routes them identically.
    std::vector<Cell> cells;
    for (const auto& [tablet, sid] : db.tablets_for_range(name, Range::all())) {
      auto stack = tablet->raw_stack();
      auto part = drain(*stack, Range::all());
      cells.insert(cells.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
    }
    put_u64(payload, cells.size());
    for (const auto& c : cells) {
      put_string(payload, c.key.row);
      put_string(payload, c.key.family);
      put_string(payload, c.key.qualifier);
      put_string(payload, c.key.visibility);
      put_u64(payload, static_cast<std::uint64_t>(c.key.ts));
      payload.push_back(c.key.deleted ? 1 : 0);
      put_string(payload, c.value);
    }
    stats.cells += cells.size();
    ++stats.tables;
  }
  return payload;
}

bool decode_checkpoint(const std::string& payload, CheckpointImage& image) {
  PayloadReader reader{payload.data(), payload.size()};
  std::uint64_t clock = 0, covers_seq = 0, table_count = 0;
  if (!reader.read_u64(clock) || !reader.read_u64(covers_seq) ||
      !reader.read_u64(table_count)) {
    return false;
  }
  image.clock = static_cast<Timestamp>(clock);
  image.covers_seq = covers_seq;
  for (std::uint64_t t = 0; t < table_count; ++t) {
    TableSnapshot snap;
    if (!reader.read_string(snap.name)) return false;
    std::uint64_t split_count = 0;
    if (!reader.read_u64(split_count)) return false;
    for (std::uint64_t i = 0; i < split_count; ++i) {
      std::string s;
      if (!reader.read_string(s)) return false;
      snap.splits.push_back(std::move(s));
    }
    std::uint64_t cell_count = 0;
    if (!reader.read_u64(cell_count)) return false;
    snap.cells.reserve(cell_count);
    for (std::uint64_t i = 0; i < cell_count; ++i) {
      Cell c;
      std::uint64_t ts = 0;
      if (!reader.read_string(c.key.row) ||
          !reader.read_string(c.key.family) ||
          !reader.read_string(c.key.qualifier) ||
          !reader.read_string(c.key.visibility) || !reader.read_u64(ts)) {
        return false;
      }
      c.key.ts = static_cast<Timestamp>(ts);
      char del = 0;
      if (!reader.read_raw(&del, 1)) return false;
      c.key.deleted = del != 0;
      if (!reader.read_string(c.value)) return false;
      snap.cells.push_back(std::move(c));
    }
    image.tables.push_back(std::move(snap));
  }
  return reader.remaining == 0;
}

/// Writes magic | len | payload | crc to `path`. False on I/O failure.
bool write_file(const std::string& path, const std::string& payload) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const auto payload_len = static_cast<std::uint64_t>(payload.size());
  const std::uint32_t crc = util::crc32(payload.data(), payload.size());
  out.write(reinterpret_cast<const char*>(&kCheckpointMagic),
            sizeof(kCheckpointMagic));
  out.write(reinterpret_cast<const char*>(&payload_len), sizeof(payload_len));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  out.flush();
  return static_cast<bool>(out);
}

/// Loads and validates a checkpoint file. False on missing file, bad
/// magic, truncation, or CRC mismatch.
bool load_file(const std::string& path, CheckpointImage& image) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::uint32_t magic = 0;
  if (!in.read(reinterpret_cast<char*>(&magic), sizeof(magic)) ||
      magic != kCheckpointMagic) {
    return false;
  }
  std::uint64_t payload_len = 0;
  if (!in.read(reinterpret_cast<char*>(&payload_len), sizeof(payload_len))) {
    return false;
  }
  std::string payload(payload_len, '\0');
  if (!in.read(payload.data(), static_cast<std::streamsize>(payload_len))) {
    return false;
  }
  std::uint32_t stored_crc = 0;
  if (!in.read(reinterpret_cast<char*>(&stored_crc), sizeof(stored_crc))) {
    return false;
  }
  if (util::crc32(payload.data(), payload.size()) != stored_crc) return false;
  return decode_checkpoint(payload, image);
}

}  // namespace

CheckpointStats write_checkpoint(Instance& db,
                                 const std::string& checkpoint_path) {
  const auto& wal = db.wal();
  if (!wal) {
    throw std::logic_error("write_checkpoint: instance has no attached WAL");
  }
  CheckpointStats stats;
  // Settle background compactions first so the snapshot drains a stable
  // {memtable, frozen, files} set instead of racing installs mid-encode.
  // (The encode would still be CORRECT mid-race — tablet snapshots are
  // consistent — but quiescing keeps checkpoint sizes deterministic.)
  db.quiesce_compactions();
  const std::uint64_t covers_seq = wal->next_seq();
  const std::string tmp_path = checkpoint_path + ".tmp";
  // Encode inside the retry scope: draining the tablets is a read-only
  // pass that may itself hit transient (injected) scan faults, and
  // re-encoding on retry just re-reads the same snapshot.
  util::with_retries("write_checkpoint", db.retry_policy(), [&] {
    util::fault::point(util::fault::sites::kCheckpointWrite);
    CheckpointStats fresh;
    fresh.covers_seq = covers_seq;
    const std::string payload = encode_checkpoint(db, covers_seq, fresh);
    if (!write_file(tmp_path, payload)) {
      throw util::TransientError("write_checkpoint: I/O failure on " +
                                 tmp_path);
    }
    stats = fresh;
  });
  if (std::rename(tmp_path.c_str(), checkpoint_path.c_str()) != 0) {
    throw std::runtime_error("write_checkpoint: rename to " +
                             checkpoint_path + " failed");
  }
  // Only after the checkpoint is durably in place may the log shrink.
  // A crash before this rotate leaves stale records in the WAL, which
  // recovery skips by sequence number.
  wal->rotate();
  GRAPHULO_INFO << "checkpoint: " << stats.tables << " tables, "
                << stats.cells << " cells, WAL truncated at seq "
                << stats.covers_seq;
  return stats;
}

RecoveryStats recover_instance(Instance& db,
                               const std::string& checkpoint_path,
                               const std::string& wal_path,
                               const TableConfigProvider& config_for) {
  RecoveryStats stats;
  CheckpointImage image;
  bool loaded = false;
  try {
    util::with_retries("recover_instance: checkpoint load",
                       db.retry_policy(), [&] {
                         util::fault::point(util::fault::sites::kCheckpointLoad);
                         image = CheckpointImage{};
                         loaded = load_file(checkpoint_path, image);
                       });
  } catch (const util::TransientError&) {
    loaded = false;  // exhausted retries: fall back to WAL-only recovery
  }
  std::uint64_t min_seq = 0;
  if (loaded) {
    for (auto& snap : image.tables) {
      db.create_table(snap.name,
                      config_for ? config_for(snap.name) : TableConfig{});
      if (!snap.splits.empty()) db.add_splits(snap.name, snap.splits);
      stats.cells_restored += snap.cells.size();
      db.restore_cells(snap.name, std::move(snap.cells));
      ++stats.tables_restored;
    }
    db.advance_clock(image.clock);
    min_seq = image.covers_seq;
    stats.checkpoint_loaded = true;
  }
  stats.records_replayed = recover_from_wal(db, wal_path, config_for, min_seq);
  return stats;
}

}  // namespace graphulo::nosql
