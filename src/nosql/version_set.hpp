#pragma once
// Leveled file-set versions, LevelDB style. A Version is an immutable
// snapshot of one tablet's files arranged in levels:
//
//   L0   raw memtable flushes; key ranges may overlap; ordered newest
//        first by data seq (scans must consult every L0 file).
//   L1+  non-overlapping key ranges, sorted by first_key; a point read
//        consults at most one file per level.
//
// VersionSet owns the current Version and installs successors
// atomically by applying VersionEdits (the same records the MANIFEST
// persists). Readers grab a shared_ptr snapshot and are never blocked
// by — or exposed to — an in-flight install. The `manifest.install`
// fault site fires before any state changes, so a fired fault leaves
// the previous version intact (the caller discards its compaction
// output and retries later).

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "nosql/manifest.hpp"

namespace graphulo::nosql {

/// Leveled-compaction tuning knobs (per table).
struct CompactionConfig {
  /// Leveled layout. When false the tablet keeps the flat (everything
  /// in L0) layout with full-merge majors at `compaction_fanin` — the
  /// baseline the bench compares against.
  bool leveled = true;
  /// L0 file count that triggers an L0 -> L1 compaction.
  std::size_t level0_trigger = 4;
  /// Deepest level (levels are 0..max_levels-1).
  std::size_t max_levels = 5;
  /// Byte budget for L1; level l holds level_base_bytes *
  /// level_multiplier^(l-1).
  std::uint64_t level_base_bytes = 1u << 20;
  std::uint64_t level_multiplier = 8;

  std::uint64_t budget_for(std::size_t level) const {
    std::uint64_t b = level_base_bytes;
    for (std::size_t l = 1; l < level; ++l) b *= level_multiplier;
    return b;
  }
};

/// Immutable snapshot of a tablet's leveled file set.
struct Version {
  /// levels[0] newest-first by seq; levels[l>=1] sorted by first_key
  /// with pairwise-disjoint ranges. Trailing empty levels are trimmed.
  std::vector<std::vector<FileMeta>> levels;

  std::size_t file_count() const;
  std::uint64_t total_bytes() const;
  std::uint64_t total_cells() const;
  std::uint64_t level_bytes(std::size_t level) const;
  bool empty() const { return file_count() == 0; }

  /// Files in `level` whose key range intersects [lo, hi].
  std::vector<FileMeta> overlapping(std::size_t level, const Key& lo,
                                    const Key& hi) const;

  /// True when any file STRICTLY BELOW `level` (i.e. at a deeper level)
  /// overlaps [lo, hi] — if so, delete markers in that range must
  /// survive a compaction whose output lands at `level`.
  bool any_overlap_below(std::size_t level, const Key& lo,
                         const Key& hi) const;

  /// All files, L0 newest-first, then L1, L2, ... in key order — the
  /// order a MergeIterator wants (lower child index = newer data).
  std::vector<FileMeta> all_files() const;
};

/// A compaction the picker selected: rewrite `inputs` into one file at
/// `output_level`. Inputs are ordered newest-data-first (L0 files by
/// seq desc, then next-level overlap), ready for a MergeIterator.
struct CompactionPick {
  std::size_t input_level = 0;
  std::size_t output_level = 0;
  std::vector<FileMeta> inputs;
  /// Output is bottommost for its key range: no live file at a deeper
  /// level overlaps it, so delete markers (and shadowed versions) may
  /// be dropped — provided the tablet also has no frozen memtables.
  bool bottommost = false;
};

/// Holds the current Version; applies edits atomically.
class VersionSet {
 public:
  VersionSet() : current_(std::make_shared<const Version>()) {}

  /// Snapshot of the current version (cheap; never null).
  std::shared_ptr<const Version> current() const { return current_; }

  /// Builds the successor version and installs it atomically. Fires
  /// `manifest.install` (TransientError) BEFORE any state changes.
  /// Returns false — with no state change — when a removed file id is
  /// not present (the compaction raced a concurrent rewrite and its
  /// output must be discarded). Throws std::logic_error if the edit
  /// would break the level invariants (overlap inside L1+).
  bool apply(const VersionEdit& edit);

 private:
  std::shared_ptr<const Version> current_;
};

/// Chooses the next compaction for `v` under `cfg`, or nullopt when no
/// level is over budget. `flat_fanin` / `pressure` carry the legacy
/// flat-mode trigger (fanin) and the back-pressure ceiling state.
std::optional<CompactionPick> pick_compaction(const Version& v,
                                              const CompactionConfig& cfg,
                                              std::size_t flat_fanin,
                                              bool pressure);

}  // namespace graphulo::nosql
