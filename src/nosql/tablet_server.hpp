#pragma once
// A logical tablet server: hosts tablets and tracks write/scan traffic.
// In real Accumulo these are separate processes; here they are in-process
// shards that give the batch scanner its parallelism domain and the
// ingest benchmarks their scaling axis.

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "nosql/tablet.hpp"

namespace graphulo::nosql {

/// Cumulative traffic counters for one server.
struct ServerStats {
  std::size_t entries_written = 0;
  std::size_t mutations_applied = 0;
  std::size_t scans_started = 0;
};

class TabletServer {
 public:
  explicit TabletServer(int id) : id_(id) {}

  int id() const noexcept { return id_; }

  /// Registers a tablet with this server (called by the Instance when
  /// tables are created or split).
  void host(std::shared_ptr<Tablet> tablet) {
    hosted_.push_back(std::move(tablet));
  }

  /// Applies a mutation to a hosted tablet, updating traffic counters.
  void apply(Tablet& tablet, const Mutation& mutation, Timestamp ts) {
    tablet.apply(mutation, ts);
    entries_written_.fetch_add(mutation.updates().size(),
                               std::memory_order_relaxed);
    mutations_applied_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Builds a scan stack for a hosted tablet, counting the scan.
  IterPtr scan(const Tablet& tablet) {
    scans_started_.fetch_add(1, std::memory_order_relaxed);
    return tablet.scan_stack();
  }

  const std::vector<std::shared_ptr<Tablet>>& hosted() const noexcept {
    return hosted_;
  }

  ServerStats stats() const {
    return {entries_written_.load(std::memory_order_relaxed),
            mutations_applied_.load(std::memory_order_relaxed),
            scans_started_.load(std::memory_order_relaxed)};
  }

 private:
  int id_;
  std::vector<std::shared_ptr<Tablet>> hosted_;
  std::atomic<std::size_t> entries_written_{0};
  std::atomic<std::size_t> mutations_applied_{0};
  std::atomic<std::size_t> scans_started_{0};
};

}  // namespace graphulo::nosql
