#pragma once
// A logical tablet server: hosts tablets and tracks write/scan traffic.
// In real Accumulo these are separate processes; here they are in-process
// shards that give the batch scanner its parallelism domain and the
// ingest benchmarks their scaling axis.
//
// Traffic counters live in the global MetricsRegistry (labeled per
// server) rather than in hand-rolled atomics; ServerStats is a view
// over those series. Each TabletServer object gets a process-unique
// `uid` label so servers of different Instances never alias a series
// — stats() on a fresh Instance always starts from zero.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nosql/tablet.hpp"
#include "obs/metrics.hpp"

namespace graphulo::nosql {

/// Cumulative traffic counters for one server (a point-in-time view
/// over the registry series).
struct ServerStats {
  std::size_t entries_written = 0;
  std::size_t mutations_applied = 0;
  std::size_t scans_started = 0;
};

namespace detail {
/// Process-unique id for metric labels: distinct from the Instance's
/// dense server id, which repeats across Instances.
inline std::uint64_t next_server_uid() {
  static std::atomic<std::uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail

class TabletServer {
 public:
  explicit TabletServer(int id)
      : id_(id),
        labels_({{"server", std::to_string(id)},
                 {"uid", std::to_string(detail::next_server_uid())}}),
        entries_written_(obs::MetricsRegistry::global().counter(
            "server.entries.total", "Cell updates written through a server",
            labels_)),
        mutations_applied_(obs::MetricsRegistry::global().counter(
            "server.mutations.total", "Mutations applied through a server",
            labels_)),
        scans_started_(obs::MetricsRegistry::global().counter(
            "server.scans.total", "Scan stacks opened through a server",
            labels_)) {}

  int id() const noexcept { return id_; }

  /// Registers a tablet with this server (called by the Instance when
  /// tables are created or split).
  void host(std::shared_ptr<Tablet> tablet) {
    hosted_.push_back(std::move(tablet));
  }

  /// Applies a mutation to a hosted tablet, updating traffic counters.
  void apply(Tablet& tablet, const Mutation& mutation, Timestamp ts) {
    tablet.apply(mutation, ts);
    entries_written_.inc(mutation.updates().size());
    mutations_applied_.inc();
  }

  /// Builds a scan stack for a hosted tablet, counting the scan.
  IterPtr scan(const Tablet& tablet) {
    scans_started_.inc();
    return tablet.scan_stack();
  }

  const std::vector<std::shared_ptr<Tablet>>& hosted() const noexcept {
    return hosted_;
  }

  ServerStats stats() const {
    return {static_cast<std::size_t>(entries_written_.value()),
            static_cast<std::size_t>(mutations_applied_.value()),
            static_cast<std::size_t>(scans_started_.value())};
  }

 private:
  int id_;
  obs::Labels labels_;
  std::vector<std::shared_ptr<Tablet>> hosted_;
  obs::Counter& entries_written_;
  obs::Counter& mutations_applied_;
  obs::Counter& scans_started_;
};

}  // namespace graphulo::nosql
