#pragma once
// Column-visibility expressions, Accumulo style: each cell carries a
// boolean expression over security labels ("admin", "pii&legal",
// "(a|b)&c"); a scan presents a set of authorizations and sees only
// cells whose expression it satisfies. '&' binds tighter than '|',
// parentheses group, and the empty expression is visible to everyone.

#include <optional>
#include <set>
#include <string>

#include "nosql/iterator.hpp"

namespace graphulo::nosql {

/// Evaluates a visibility expression against an authorization set.
/// Returns nullopt on a malformed expression (callers treat that as
/// not visible — fail closed).
std::optional<bool> evaluate_visibility(const std::string& expression,
                                        const std::set<std::string>& auths);

/// True when the expression parses. Useful for validating writes.
bool visibility_is_valid(const std::string& expression);

/// Wraps `source` so only cells whose visibility is satisfied by
/// `auths` pass (malformed expressions are dropped — fail closed).
IterPtr make_visibility_filter(IterPtr source, std::set<std::string> auths);

}  // namespace graphulo::nosql
