#pragma once
// In-memory sorted write buffer of a tablet. Mutations land here; when
// the buffer exceeds the table's flush threshold the tablet performs a
// minor compaction, turning the memtable into an immutable RFile.

#include <map>
#include <memory>

#include "nosql/iterator.hpp"
#include "nosql/key.hpp"
#include "nosql/mutation.hpp"

namespace graphulo::nosql {

/// Sorted in-memory cell buffer.
class Memtable {
 public:
  /// Applies one mutation; updates without an explicit timestamp get
  /// `assigned_ts`.
  void apply(const Mutation& mutation, Timestamp assigned_ts);

  /// Inserts one fully-formed cell (used by compactions and tests).
  void insert(Key key, Value value);

  std::size_t entry_count() const noexcept { return cells_.size(); }
  std::size_t approximate_bytes() const noexcept { return bytes_; }
  bool empty() const noexcept { return cells_.empty(); }

  /// Immutable snapshot of the current contents as a sorted cell vector.
  /// Cost is O(entries); tablets bound memtable size via the flush
  /// threshold, so snapshots stay cheap relative to scan work.
  std::shared_ptr<const std::vector<Cell>> snapshot() const;

  /// Up to `n` evenly spaced row keys (distinct-adjacent, sorted) —
  /// partition-boundary candidates for parallel scans. O(entries) walk,
  /// no value copies.
  std::vector<std::string> sample_rows(std::size_t n) const;

  /// Clears the buffer (after a flush has persisted the snapshot).
  void clear();

 private:
  std::map<Key, Value> cells_;
  std::size_t bytes_ = 0;
};

}  // namespace graphulo::nosql
