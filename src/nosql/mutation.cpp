#include "nosql/mutation.hpp"

#include "nosql/admission.hpp"

namespace graphulo::nosql {

MutationSink::ErrorKind classify_write_error(
    const std::exception& error) noexcept {
  if (dynamic_cast<const OverloadedError*>(&error) != nullptr) {
    return MutationSink::ErrorKind::kOverloaded;
  }
  if (dynamic_cast<const util::TransientError*>(&error) != nullptr) {
    return MutationSink::ErrorKind::kTransient;
  }
  return MutationSink::ErrorKind::kFatal;
}

Mutation& Mutation::put(std::string family, std::string qualifier,
                        Value value) {
  ColumnUpdate u;
  u.family = std::move(family);
  u.qualifier = std::move(qualifier);
  u.value = std::move(value);
  updates_.push_back(std::move(u));
  return *this;
}

Mutation& Mutation::put(std::string family, std::string qualifier,
                        std::string visibility, Timestamp ts, Value value) {
  ColumnUpdate u;
  u.family = std::move(family);
  u.qualifier = std::move(qualifier);
  u.visibility = std::move(visibility);
  u.ts = ts;
  u.has_ts = true;
  u.value = std::move(value);
  updates_.push_back(std::move(u));
  return *this;
}

Mutation& Mutation::put_delete(std::string family, std::string qualifier) {
  ColumnUpdate u;
  u.family = std::move(family);
  u.qualifier = std::move(qualifier);
  u.deleted = true;
  updates_.push_back(std::move(u));
  return *this;
}

std::size_t Mutation::estimated_bytes() const noexcept {
  std::size_t bytes = row_.size() + sizeof(Mutation);
  for (const auto& u : updates_) {
    bytes += u.family.size() + u.qualifier.size() + u.visibility.size() +
             u.value.size() + sizeof(ColumnUpdate);
  }
  return bytes;
}

}  // namespace graphulo::nosql
