#include "nosql/filter_iterators.hpp"

namespace graphulo::nosql {

void DeletingIterator::seek(const Range& range) {
  have_delete_ = false;
  WrappingIterator::seek(range);
  skip_suppressed();
}

void DeletingIterator::next() {
  WrappingIterator::next();
  skip_suppressed();
}

std::size_t DeletingIterator::next_block(CellBlock& out, std::size_t max) {
  std::size_t appended = 0;
  auto& src = source();
  while (appended < max && src.has_top()) {
    const std::size_t start = out.size();
    const std::size_t pulled = src.next_block(out, max - appended);
    std::size_t w = start;
    for (std::size_t r = start; r < start + pulled; ++r) {
      const Key& k = out[r].key;
      if (k.deleted) {
        have_delete_ = true;
        delete_key_ = k;
        continue;
      }
      if (have_delete_ && k.same_cell(delete_key_) && k.ts <= delete_key_.ts) {
        continue;
      }
      if (w != r) out.swap_cells(w, r);
      ++w;
    }
    appended += w - start;
    out.truncate(w);
  }
  // Restore the cell-at-a-time invariant (source top is a live cell) so
  // has_top() stays exact and block/cell calls can be mixed.
  skip_suppressed();
  return appended;
}

void DeletingIterator::skip_suppressed() {
  while (source().has_top()) {
    const Key& k = source().top_key();
    if (k.deleted) {
      // Remember the newest delete for this cell and consume the marker.
      have_delete_ = true;
      delete_key_ = k;
      source().next();
      continue;
    }
    if (have_delete_ && k.same_cell(delete_key_) && k.ts <= delete_key_.ts) {
      source().next();  // shadowed by the marker
      continue;
    }
    return;
  }
}

VersioningIterator::VersioningIterator(IterPtr source, int max_versions)
    : WrappingIterator(std::move(source)),
      max_versions_(max_versions < 1 ? 1 : max_versions) {}

void VersioningIterator::seek(const Range& range) {
  have_cell_ = false;
  seen_in_cell_ = 0;
  WrappingIterator::seek(range);
  skip_excess();
}

void VersioningIterator::next() {
  ++seen_in_cell_;
  WrappingIterator::next();
  skip_excess();
}

std::size_t VersioningIterator::next_block(CellBlock& out, std::size_t max) {
  const std::size_t base = out.size();
  std::size_t appended = 0;
  auto& src = source();
  while (appended < max && src.has_top()) {
    const std::size_t start = out.size();
    const std::size_t pulled = src.next_block(out, max - appended);
    std::size_t w = start;
    for (std::size_t r = start; r < start + pulled; ++r) {
      const Key& k = out[r].key;
      // seen_in_cell_ counts versions already emitted for the current
      // cell (the cell path's next()/skip_excess convention). Inside
      // this call the last kept version sits in the output block, so
      // the same-cell test reads it there instead of copy-assigning
      // cell_key_ (four string copies) on every new cell; cell_key_ is
      // synced once per call, below. Dropped versions are contiguous
      // with their kept ones, so out[w-1] is always the right witness.
      const bool same = (w > base) ? k.same_cell(out[w - 1].key)
                                   : (have_cell_ && k.same_cell(cell_key_));
      if (!same) {
        seen_in_cell_ = 1;
      } else if (seen_in_cell_ < max_versions_) {
        ++seen_in_cell_;
      } else {
        continue;
      }
      if (w != r) out.swap_cells(w, r);
      ++w;
    }
    appended += w - start;
    out.truncate(w);
  }
  if (appended > 0) {
    have_cell_ = true;
    cell_key_ = out[base + appended - 1].key;
  }
  skip_excess();  // restore: source top is a kept version
  return appended;
}

void VersioningIterator::skip_excess() {
  while (source().has_top()) {
    const Key& k = source().top_key();
    if (!have_cell_ || !k.same_cell(cell_key_)) {
      have_cell_ = true;
      cell_key_ = k;
      seen_in_cell_ = 0;
      return;
    }
    if (seen_in_cell_ < max_versions_) return;
    source().next();
  }
}

FilterIterator::FilterIterator(IterPtr source, Predicate keep)
    : WrappingIterator(std::move(source)), keep_(std::move(keep)) {}

void FilterIterator::seek(const Range& range) {
  WrappingIterator::seek(range);
  skip_rejected();
}

void FilterIterator::next() {
  WrappingIterator::next();
  skip_rejected();
}

std::size_t FilterIterator::next_block(CellBlock& out, std::size_t max) {
  std::size_t appended = 0;
  auto& src = source();
  while (appended < max && src.has_top()) {
    const std::size_t start = out.size();
    const std::size_t pulled = src.next_block(out, max - appended);
    std::size_t w = start;
    for (std::size_t r = start; r < start + pulled; ++r) {
      if (!keep_(out[r].key, out[r].value)) continue;
      if (w != r) out.swap_cells(w, r);
      ++w;
    }
    appended += w - start;
    out.truncate(w);
  }
  skip_rejected();  // restore: source top passes the predicate
  return appended;
}

void FilterIterator::skip_rejected() {
  while (source().has_top() &&
         !keep_(source().top_key(), source().top_value())) {
    source().next();
  }
}

IterPtr make_column_family_filter(IterPtr source,
                                  std::set<std::string> families) {
  return std::make_unique<FilterIterator>(
      std::move(source),
      [families = std::move(families)](const Key& k, const Value&) {
        return families.count(k.family) > 0;
      });
}

IterPtr make_timestamp_filter(IterPtr source, Timestamp min_ts,
                              Timestamp max_ts) {
  return std::make_unique<FilterIterator>(
      std::move(source), [min_ts, max_ts](const Key& k, const Value&) {
        return k.ts >= min_ts && k.ts <= max_ts;
      });
}

IterPtr make_grep_iterator(IterPtr source, std::string needle) {
  return std::make_unique<FilterIterator>(
      std::move(source),
      [needle = std::move(needle)](const Key& k, const Value& v) {
        return k.row.find(needle) != std::string::npos ||
               k.family.find(needle) != std::string::npos ||
               k.qualifier.find(needle) != std::string::npos ||
               v.find(needle) != std::string::npos;
      });
}

}  // namespace graphulo::nosql
