#pragma once
// MVCC snapshot scans: a snapshot handle pins one consistent cut of a
// tablet — the memtable contents, frozen memtables, and immutable file
// set as they stood at a single data sequence number — so a
// long-running scan (or a TableMult partition worker) reads a stable
// view while writers, flushes, and compactions proceed untouched.
//
// The cut is STRUCTURAL, not filtered: open_snapshot() captures, under
// the tablet lock, shared_ptrs to every immutable source (a memtable
// snapshot, each frozen memtable's cell vector, the current Version).
// Readers never consult live tablet state again, so consistency is
// immediate — and retired RFiles stay alive for exactly as long as a
// snapshot references them. No write, flush, or compaction ever blocks
// on a reader.
//
// Compaction horizon: each tablet registers its live snapshots (id,
// pinned seq). Delete markers and version collapse are suppressed for a
// compaction whose inputs a live snapshot could still observe (pinned
// seq <= max input seq) — extending the bottommost-only drop rule of
// DESIGN.md §11 — so the store's CURRENT file set also never loses a
// cell a snapshot could see. TableConfig::admission.max_snapshot_age
// bounds how long an abandoned handle may hold that horizon: expired
// handles deregister (compaction proceeds) and subsequent scans through
// them throw SnapshotExpired.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "nosql/iterator.hpp"
#include "nosql/key.hpp"
#include "nosql/table_config.hpp"
#include "nosql/tablet.hpp"
#include "nosql/version_set.hpp"

namespace graphulo::nosql {

class BlockCache;

/// Scanning through a handle older than
/// TableConfig::admission.max_snapshot_age: the handle no longer pins
/// the compaction horizon, so reads through it are refused rather than
/// silently served from a cut the store has moved past.
class SnapshotExpired : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The pinned immutable sources of one consistent per-tablet cut.
struct PinnedSources {
  /// Active-memtable cells at pin time (null when it was empty).
  std::shared_ptr<const std::vector<Cell>> memtable;
  /// Frozen memtables, newest first, each with its freeze data-seq.
  std::vector<std::pair<std::uint64_t,
                        std::shared_ptr<const std::vector<Cell>>>>
      frozen;
  std::shared_ptr<const Version> version;
};

/// Merge over pinned sources, newest source first: memtable, then
/// frozen memtables and L0 files interleaved by data seq, then one
/// LevelIterator per sorted level. Shared by live tablet scans
/// (Tablet::scan_stack) and snapshot scans — one definition of "the
/// read view" for both. `consulted` (nullable) counts files actually
/// opened.
IterPtr merge_pinned_sources(
    const PinnedSources& sources, BlockCache* cache,
    std::shared_ptr<std::atomic<std::uint64_t>> consulted);

/// Read-amplification probe for a scan stack: every LevelIterator file
/// open bumps it; when the stack dies the total is observed into the
/// scan.files_consulted histogram.
std::shared_ptr<std::atomic<std::uint64_t>> make_consulted_probe();

/// Wraps `source` with every iterator in `settings` matching `scope`,
/// priority order (lowest first = closest to the data).
IterPtr apply_scope_iterators(IterPtr source,
                              const std::vector<IteratorSetting>& settings,
                              unsigned scope);

/// One tablet's pinned cut. Obtained from Tablet::open_snapshot() (the
/// tablet must be shared_ptr-owned); deregisters from the tablet's
/// snapshot registry on destruction. Handles are immutable after open
/// and safe to share across scan threads; each scan_stack() call builds
/// a fresh independent stack.
class TabletSnapshot {
 public:
  ~TabletSnapshot();
  TabletSnapshot(const TabletSnapshot&) = delete;
  TabletSnapshot& operator=(const TabletSnapshot&) = delete;

  const TabletExtent& extent() const noexcept { return extent_; }

  /// The pinned data sequence number: the tablet's next_data_seq at
  /// open. Every source in the cut carries seq < this.
  std::uint64_t seq() const noexcept { return seq_; }

  /// True once max_snapshot_age has passed (or a compaction horizon
  /// sweep expired the handle): the cut no longer gates compaction.
  bool expired() const;

  /// Full scan stack over the pinned cut: merge -> deletes ->
  /// versioning -> scan-scope iterators, mirroring Tablet::scan_stack.
  /// Throws SnapshotExpired once the handle has expired.
  IterPtr scan_stack() const;

  /// The pinned merge WITHOUT delete/versioning resolution
  /// (diagnostics; mirrors Tablet::raw_stack).
  IterPtr raw_stack() const;

 private:
  friend class Tablet;
  TabletSnapshot() = default;

  std::shared_ptr<Tablet> tablet_;  ///< keeps the registry owner alive
  std::uint64_t id_ = 0;
  std::uint64_t seq_ = 0;
  TabletExtent extent_;
  PinnedSources sources_;
  BlockCache* cache_ = nullptr;
  /// Config captured at open so the cut's read semantics are as stable
  /// as its data (a later attach_iterator must not change what an open
  /// snapshot returns).
  bool versioning_ = true;
  int max_versions_ = 1;
  std::vector<IteratorSetting> iterators_;
  std::chrono::steady_clock::time_point opened_;
  std::chrono::milliseconds max_age_{0};
  /// Set by the tablet's expiry sweep; also consulted by expired().
  std::shared_ptr<std::atomic<bool>> expired_flag_;
};

/// A whole-table snapshot: one pinned cut per tablet, captured in
/// extent order by Instance::open_snapshot(). Self-contained — scans
/// iterate these handles directly, so later splits or tablet reshuffles
/// in the live table cannot perturb an open snapshot.
class Snapshot {
 public:
  Snapshot(std::string table,
           std::vector<std::shared_ptr<TabletSnapshot>> tablets)
      : table_(std::move(table)), tablets_(std::move(tablets)) {}

  const std::string& table_name() const noexcept { return table_; }

  const std::vector<std::shared_ptr<TabletSnapshot>>& tablets()
      const noexcept {
    return tablets_;
  }

  /// Tablet cuts whose extents intersect `range`, in extent order.
  std::vector<std::shared_ptr<TabletSnapshot>> tablets_for_range(
      const Range& range) const;

  /// True when ANY tablet handle has expired (a partial cut is no cut).
  bool expired() const;

 private:
  std::string table_;
  std::vector<std::shared_ptr<TabletSnapshot>> tablets_;
};

}  // namespace graphulo::nosql
