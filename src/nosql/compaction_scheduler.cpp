#include "nosql/compaction_scheduler.hpp"

#include <exception>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace graphulo::nosql {

namespace {

obs::Counter& tasks_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "compaction.tasks.total", "Background compaction tasks enqueued");
  return c;
}
obs::Gauge& queue_depth() {
  static obs::Gauge& g = obs::MetricsRegistry::global().gauge(
      "compaction.queue.depth",
      "Background compaction tasks queued or running");
  return g;
}

}  // namespace

CompactionScheduler::CompactionScheduler(std::size_t threads)
    : pool_(threads == 0 ? 1 : threads) {}

CompactionScheduler::~CompactionScheduler() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  drain();
  // pool_ (declared last) is destroyed first, joining the workers.
}

bool CompactionScheduler::enqueue(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return false;
    ++queued_;
    ++in_flight_;
  }
  tasks_total().inc();
  queue_depth().add(1);
  try {
    pool_.submit([this, task = std::move(task)] {
      try {
        TRACE_SPAN("compaction.task");
        task();
      } catch (const std::exception& e) {
        GRAPHULO_WARN << "CompactionScheduler: task failed: " << e.what();
      } catch (...) {
        GRAPHULO_WARN << "CompactionScheduler: task failed with unknown error";
      }
      queue_depth().add(-1);
      std::lock_guard lock(mutex_);
      ++completed_;
      --in_flight_;
      idle_cv_.notify_all();
    });
  } catch (const std::exception&) {
    // Pool refused (stopped): roll the accounting back.
    queue_depth().add(-1);
    std::lock_guard lock(mutex_);
    --queued_;
    --in_flight_;
    return false;
  }
  return true;
}

void CompactionScheduler::drain() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [&] { return in_flight_ == 0; });
}

CompactionSchedulerStats CompactionScheduler::stats() const {
  std::lock_guard lock(mutex_);
  return {queued_, completed_, in_flight_};
}

}  // namespace graphulo::nosql
