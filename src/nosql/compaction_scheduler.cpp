#include "nosql/compaction_scheduler.hpp"

#include <exception>

#include "util/log.hpp"

namespace graphulo::nosql {

CompactionScheduler::CompactionScheduler(std::size_t threads)
    : pool_(threads == 0 ? 1 : threads) {}

CompactionScheduler::~CompactionScheduler() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  drain();
  // pool_ (declared last) is destroyed first, joining the workers.
}

bool CompactionScheduler::enqueue(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return false;
    ++queued_;
    ++in_flight_;
  }
  try {
    pool_.submit([this, task = std::move(task)] {
      try {
        task();
      } catch (const std::exception& e) {
        GRAPHULO_WARN << "CompactionScheduler: task failed: " << e.what();
      } catch (...) {
        GRAPHULO_WARN << "CompactionScheduler: task failed with unknown error";
      }
      std::lock_guard lock(mutex_);
      ++completed_;
      --in_flight_;
      idle_cv_.notify_all();
    });
  } catch (const std::exception&) {
    // Pool refused (stopped): roll the accounting back.
    std::lock_guard lock(mutex_);
    --queued_;
    --in_flight_;
    return false;
  }
  return true;
}

void CompactionScheduler::drain() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [&] { return in_flight_ == 0; });
}

CompactionSchedulerStats CompactionScheduler::stats() const {
  std::lock_guard lock(mutex_);
  return {queued_, completed_, in_flight_};
}

}  // namespace graphulo::nosql
