#pragma once
// Write-path types: a Mutation collects puts/deletes for one row, like
// Accumulo's Mutation. BatchWriter buffers mutations and routes them to
// tablets.

#include <optional>
#include <string>
#include <vector>

#include "nosql/key.hpp"

namespace graphulo::nosql {

/// One column update inside a mutation.
struct ColumnUpdate {
  std::string family;
  std::string qualifier;
  std::string visibility;
  Timestamp ts = 0;
  bool has_ts = false;  ///< false -> server assigns a logical timestamp
  bool deleted = false;
  Value value;
};

/// All updates to one row, applied atomically by the owning tablet.
class Mutation {
 public:
  explicit Mutation(std::string row) : row_(std::move(row)) {}

  /// Adds a put of `value` at (family, qualifier).
  Mutation& put(std::string family, std::string qualifier, Value value);

  /// Adds a put with an explicit visibility and/or timestamp.
  Mutation& put(std::string family, std::string qualifier,
                std::string visibility, Timestamp ts, Value value);

  /// Adds a delete marker for (family, qualifier).
  Mutation& put_delete(std::string family, std::string qualifier);

  /// Adds a fully-specified update verbatim (wire decode / replay
  /// paths, where has_ts/deleted combinations the sugar above cannot
  /// express must round-trip exactly).
  Mutation& add_update(ColumnUpdate update) {
    updates_.push_back(std::move(update));
    return *this;
  }

  const std::string& row() const noexcept { return row_; }
  const std::vector<ColumnUpdate>& updates() const noexcept { return updates_; }

  /// Approximate serialized size, for writer buffering decisions.
  std::size_t estimated_bytes() const noexcept;

 private:
  std::string row_;
  std::vector<ColumnUpdate> updates_;
};

/// Abstract destination for a stream of mutations — the writer surface
/// BatchWriter (local) and distributed::ClusterBatchWriter (remote)
/// both implement, so producers like RemoteWriteIterator and the
/// TableMult partition workers are agnostic to where their output
/// lands. Contract mirrors BatchWriter: add_mutation may auto-flush
/// and throw; close() is the explicit way to observe the final flush;
/// abandon() discards buffered work for callers that re-generate it on
/// retry; mutations_written() is exact and meaningful mid-failure.
class MutationSink {
 public:
  /// What kind of failure last_error() records — callers distinguish a
  /// shed write (back off and retry later) from corruption without
  /// string matching. Shared by every sink so the classification is
  /// identical whether the write failed locally or across the wire.
  enum class ErrorKind {
    kNone,        ///< no flush/close has failed
    kTransient,   ///< retryable (WAL/flush/transport fault); retries exhausted
    kOverloaded,  ///< admission shed the write (back-pressure) — transient
    kFatal,       ///< non-transient (logic error, corruption, fatal fault)
  };

  virtual ~MutationSink() = default;

  virtual void add_mutation(Mutation mutation) = 0;
  virtual void flush() = 0;
  virtual void close() = 0;
  virtual void abandon() noexcept = 0;
  virtual std::size_t mutations_written() const noexcept = 0;
  virtual const std::optional<std::string>& last_error() const noexcept = 0;
  virtual ErrorKind last_error_kind() const noexcept = 0;
};

/// The one classification every sink uses for last_error_kind():
/// OverloadedError (checked first — it derives from TransientError) →
/// kOverloaded, any other TransientError → kTransient, everything else
/// → kFatal. Remote failures classify identically because the RPC
/// client re-throws wire statuses as these same types.
MutationSink::ErrorKind classify_write_error(
    const std::exception& error) noexcept;

}  // namespace graphulo::nosql
