#pragma once
// Write-path types: a Mutation collects puts/deletes for one row, like
// Accumulo's Mutation. BatchWriter buffers mutations and routes them to
// tablets.

#include <string>
#include <vector>

#include "nosql/key.hpp"

namespace graphulo::nosql {

/// One column update inside a mutation.
struct ColumnUpdate {
  std::string family;
  std::string qualifier;
  std::string visibility;
  Timestamp ts = 0;
  bool has_ts = false;  ///< false -> server assigns a logical timestamp
  bool deleted = false;
  Value value;
};

/// All updates to one row, applied atomically by the owning tablet.
class Mutation {
 public:
  explicit Mutation(std::string row) : row_(std::move(row)) {}

  /// Adds a put of `value` at (family, qualifier).
  Mutation& put(std::string family, std::string qualifier, Value value);

  /// Adds a put with an explicit visibility and/or timestamp.
  Mutation& put(std::string family, std::string qualifier,
                std::string visibility, Timestamp ts, Value value);

  /// Adds a delete marker for (family, qualifier).
  Mutation& put_delete(std::string family, std::string qualifier);

  const std::string& row() const noexcept { return row_; }
  const std::vector<ColumnUpdate>& updates() const noexcept { return updates_; }

  /// Approximate serialized size, for writer buffering decisions.
  std::size_t estimated_bytes() const noexcept;

 private:
  std::string row_;
  std::vector<ColumnUpdate> updates_;
};

}  // namespace graphulo::nosql
