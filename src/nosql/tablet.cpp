#include "nosql/tablet.hpp"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <limits>
#include <stdexcept>

#include "nosql/filter_iterators.hpp"
#include "nosql/merge_iterator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace graphulo::nosql {

namespace {

obs::Counter& flush_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "tablet.flush.total", "Minor compactions (memtable flushes) completed");
  return c;
}
obs::Counter& major_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "tablet.compaction.total", "Major compactions completed");
  return c;
}
obs::Gauge& frozen_gauge() {
  static obs::Gauge& g = obs::MetricsRegistry::global().gauge(
      "tablet.frozen.memtables",
      "Frozen (immutable) memtables awaiting background flush");
  return g;
}

/// Ceiling on frozen memtables per tablet before writers block: enough
/// to ride out a slow flush, small enough to bound memory.
constexpr std::size_t kMaxFrozenMemtables = 4;

/// Wraps `source` with every iterator in `settings` matching `scope`,
/// priority order (lowest first = closest to the data).
IterPtr apply_scope_iterators(IterPtr source,
                              const std::vector<IteratorSetting>& settings,
                              unsigned scope) {
  for (const auto& setting : settings) {
    if (setting.scopes & scope) source = setting.factory(std::move(source));
  }
  return source;
}

/// Runs `stack` to completion over everything and collects the cells.
std::vector<Cell> drain_all(SortedKVIterator& stack) {
  return drain(stack, Range::all());
}

}  // namespace

Tablet::~Tablet() {
  if (!frozen_.empty()) {
    frozen_gauge().add(-static_cast<std::int64_t>(frozen_.size()));
  }
}

void Tablet::set_compaction_scheduler(CompactionScheduler* s) {
  std::lock_guard lock(mutex_);
  scheduler_ = s;
}

void Tablet::apply(const Mutation& mutation, Timestamp assigned_ts) {
  std::unique_lock lock(mutex_);
  if (!extent_.contains_row(mutation.row())) {
    throw std::logic_error("Tablet::apply: row outside extent");
  }
  wait_for_capacity_locked(lock);
  memtable_.apply(mutation, assigned_ts);
  maybe_compact_locked();
}

void Tablet::insert_cell(Cell cell) {
  std::unique_lock lock(mutex_);
  wait_for_capacity_locked(lock);
  memtable_.insert(std::move(cell.key), std::move(cell.value));
  maybe_compact_locked();
}

void Tablet::maybe_compact_locked() {
  if (memtable_.entry_count() < config_->flush_entries) return;
  if (scheduler_) {
    // Background mode: O(1) freeze + enqueue; the writer returns
    // immediately and the flush runs on the scheduler's pool.
    freeze_active_locked();
    maybe_enqueue_major_locked();
    return;
  }
  // Threshold-triggered compactions are opportunistic: a transient
  // failure (injected or real) leaves the memtable intact — the write
  // that got us here already succeeded — and the next write past the
  // threshold retries the flush. Mirrors a tablet server whose minor
  // compaction failed: data stays in memory + WAL, nothing is lost.
  try {
    flush_locked();
    if (files_.size() >= config_->compaction_fanin) major_compact_locked();
  } catch (const util::TransientError& e) {
    GRAPHULO_WARN << "Tablet[" << extent_.start_row << "," << extent_.end_row
                  << "): deferred flush/compaction failed transiently, will "
                  << "retry on a later write: " << e.what();
  }
}

void Tablet::wait_for_capacity_locked(std::unique_lock<std::mutex>& lock) {
  if (!scheduler_) return;
  while (files_.size() >= config_->max_tablet_files ||
         frozen_.size() >= kMaxFrozenMemtables) {
    if (!minor_inflight_ && !frozen_.empty()) enqueue_minor_locked();
    maybe_enqueue_major_locked();
    if (minor_inflight_ || major_inflight_) {
      state_cv_.wait_for(lock, std::chrono::microseconds(200));
      continue;
    }
    // Nothing is in flight and nothing could be queued (scheduler
    // shutting down, or the file pattern cannot trigger a major):
    // relieve the pressure inline rather than spinning.
    try {
      flush_locked();
      major_compact_locked();
    } catch (const util::TransientError& e) {
      GRAPHULO_WARN << "Tablet: inline back-pressure relief failed "
                    << "transiently: " << e.what();
    }
    break;
  }
}

std::vector<Cell> Tablet::build_minor_cells(
    const std::shared_ptr<const std::vector<Cell>>& snapshot,
    const std::vector<IteratorSetting>& settings) const {
  // Site fires before any state change: a failed flush leaves memtable
  // and file set exactly as they were.
  util::fault::point(util::fault::sites::kMemtableFlush);
  TRACE_SPAN("tablet.flush");
  IterPtr stack = std::make_unique<VectorIterator>(snapshot);
  stack = apply_scope_iterators(std::move(stack), settings, kMincScope);
  return drain_all(*stack);
}

void Tablet::freeze_active_locked() {
  if (memtable_.empty()) return;  // never enqueue a no-op flush
  frozen_.insert(frozen_.begin(),
                 FrozenMemtable{next_data_seq_++, memtable_.snapshot()});
  frozen_gauge().add(1);
  memtable_.clear();
  enqueue_minor_locked();
}

void Tablet::enqueue_minor_locked() {
  if (!scheduler_ || minor_inflight_) return;
  minor_inflight_ = true;
  auto self = shared_from_this();
  if (scheduler_->enqueue([self] { self->run_background_minor(); })) {
    ++bg_queued_;
  } else {
    minor_inflight_ = false;  // scheduler stopping; flush() rescues later
  }
}

void Tablet::maybe_enqueue_major_locked() {
  if (!scheduler_ || major_inflight_) return;
  // Only files older than every pending frozen memtable are mergeable
  // (see run_background_major); trigger on the fan-in among those, or
  // unconditionally at the hard file ceiling.
  const std::uint64_t min_pending =
      frozen_.empty() ? std::numeric_limits<std::uint64_t>::max()
                      : frozen_.back().seq;
  std::size_t eligible = 0;
  for (const auto& f : files_) {
    if (f.seq < min_pending) ++eligible;
  }
  if (eligible < 2) return;
  if (eligible < config_->compaction_fanin &&
      files_.size() < config_->max_tablet_files) {
    return;
  }
  major_inflight_ = true;
  auto self = shared_from_this();
  if (scheduler_->enqueue([self] { self->run_background_major(); })) {
    ++bg_queued_;
  } else {
    major_inflight_ = false;
  }
}

void Tablet::run_background_minor() {
  std::unique_lock lock(mutex_);
  while (!frozen_.empty()) {
    const FrozenMemtable target = frozen_.back();  // oldest first
    const auto settings = config_->iterators;      // copied under the lock
    const RFileOptions rfile_opts = config_->rfile;
    lock.unlock();
    std::shared_ptr<RFile> file;
    bool ok = true;
    try {
      auto cells = build_minor_cells(target.cells, settings);
      if (!cells.empty()) {
        file = RFile::from_sorted(std::move(cells), rfile_opts);
      }
    } catch (const std::exception& e) {
      // Contained exactly like an inline threshold flush: the frozen
      // memtable stays queued in memory (and in the WAL) and a later
      // trigger or an explicit flush() retries it.
      GRAPHULO_WARN << "Tablet[" << extent_.start_row << ","
                    << extent_.end_row
                    << "): background flush failed, keeping memtable "
                    << "frozen for retry: " << e.what();
      ok = false;
    }
    lock.lock();
    if (!ok) break;
    install_minor_locked(target.seq, file);
    maybe_enqueue_major_locked();
  }
  minor_inflight_ = false;
  ++bg_completed_;
  state_cv_.notify_all();
}

void Tablet::run_background_major() {
  std::unique_lock lock(mutex_);
  // Mergeable inputs: files older than every pending frozen memtable.
  // A flush finishing mid-merge then lands a file NEWER than all
  // inputs and the output, so install order stays seq-consistent.
  const std::uint64_t min_pending =
      frozen_.empty() ? std::numeric_limits<std::uint64_t>::max()
                      : frozen_.back().seq;
  std::vector<TabletFile> inputs;
  for (const auto& f : files_) {
    if (f.seq < min_pending) inputs.push_back(f);
  }
  // A merge of every file with nothing frozen is a FULL major: delete
  // markers resolve and drop. A partial merge keeps them for scan-time
  // resolution (Accumulo partial-major semantics).
  const bool full = frozen_.empty() && inputs.size() == files_.size();
  if (inputs.size() < 2) {
    major_inflight_ = false;
    ++bg_completed_;
    state_cv_.notify_all();
    return;
  }
  const auto settings = config_->iterators;  // copied under the lock
  const bool versioning = config_->versioning;
  const int max_versions = config_->max_versions;
  const RFileOptions rfile_opts = config_->rfile;
  lock.unlock();

  std::shared_ptr<RFile> output;
  bool ok = true;
  try {
    TRACE_SPAN("tablet.compact");
    util::fault::point(util::fault::sites::kTabletCompact);
    std::vector<IterPtr> children;
    children.reserve(inputs.size());
    for (const auto& f : inputs) children.push_back(f.file->iterator());
    IterPtr stack = std::make_unique<MergeIterator>(std::move(children));
    if (full) stack = std::make_unique<DeletingIterator>(std::move(stack));
    if (versioning) {
      stack = std::make_unique<VersioningIterator>(std::move(stack),
                                                   max_versions);
    }
    stack = apply_scope_iterators(std::move(stack), settings, kMajcScope);
    auto cells = drain_all(*stack);
    if (!cells.empty()) {
      output = RFile::from_sorted(std::move(cells), rfile_opts);
    }
  } catch (const std::exception& e) {
    GRAPHULO_WARN << "Tablet[" << extent_.start_row << "," << extent_.end_row
                  << "): background major compaction failed, keeping "
                  << "inputs: " << e.what();
    ok = false;
  }

  lock.lock();
  if (ok) {
    // Install only if every input is still present (an explicit
    // major_compact() may have raced us and already merged them).
    std::size_t present = 0;
    for (const auto& in : inputs) {
      for (const auto& f : files_) {
        if (f.seq == in.seq && f.file == in.file) {
          ++present;
          break;
        }
      }
    }
    if (present == inputs.size()) {
      for (const auto& in : inputs) {
        if (cache_) cache_->erase_file(in.file->file_id());
        std::erase_if(files_,
                      [&](const TabletFile& f) { return f.seq == in.seq; });
      }
      // The output ranks where its newest input ranked: nothing else
      // can hold a sequence number inside the merged range.
      if (output) insert_file_locked(inputs.front().seq, output);
      ++major_compactions_;
      major_total().inc();
    } else {
      GRAPHULO_DEBUG << "Tablet: discarding background major result "
                     << "(inputs changed during merge)";
    }
  }
  major_inflight_ = false;
  ++bg_completed_;
  state_cv_.notify_all();
}

void Tablet::install_minor_locked(std::uint64_t seq,
                                  const std::shared_ptr<RFile>& file) {
  const auto erased = std::erase_if(
      frozen_, [&](const FrozenMemtable& f) { return f.seq == seq; });
  frozen_gauge().add(-static_cast<std::int64_t>(erased));
  // A minc stack may legitimately drop every cell (filters): count the
  // flush but never install a zero-cell file.
  if (file && !file->empty()) insert_file_locked(seq, file);
  ++minor_compactions_;
  flush_total().inc();
  state_cv_.notify_all();
}

void Tablet::insert_file_locked(std::uint64_t seq,
                                const std::shared_ptr<RFile>& file) {
  const auto pos =
      std::find_if(files_.begin(), files_.end(),
                   [&](const TabletFile& f) { return f.seq < seq; });
  files_.insert(pos, TabletFile{seq, file});
}

void Tablet::flush() {
  std::unique_lock lock(mutex_);
  // Let an in-flight background flush finish rather than duplicating
  // its work, then drain whatever is left inline.
  if (scheduler_) state_cv_.wait(lock, [&] { return !minor_inflight_; });
  flush_locked();
}

void Tablet::flush_locked() {
  // Rescue path: frozen memtables whose background flush failed (or
  // was never queued) drain here, oldest first, preserving seq order.
  while (!frozen_.empty()) {
    const FrozenMemtable target = frozen_.back();
    auto cells = build_minor_cells(target.cells, config_->iterators);
    std::shared_ptr<RFile> file;
    if (!cells.empty()) {
      file = RFile::from_sorted(std::move(cells), config_->rfile);
    }
    install_minor_locked(target.seq, file);
  }
  if (memtable_.empty()) return;
  const std::uint64_t seq = next_data_seq_;
  auto cells = build_minor_cells(memtable_.snapshot(), config_->iterators);
  // Past the fault site: commit the sequence number and install.
  ++next_data_seq_;
  if (!cells.empty()) {
    insert_file_locked(seq,
                       RFile::from_sorted(std::move(cells), config_->rfile));
  }
  memtable_.clear();
  ++minor_compactions_;
  flush_total().inc();
  state_cv_.notify_all();
}

void Tablet::major_compact() {
  std::unique_lock lock(mutex_);
  if (scheduler_) {
    state_cv_.wait(lock,
                   [&] { return !minor_inflight_ && !major_inflight_; });
  }
  flush_locked();
  major_compact_locked();
}

void Tablet::major_compact_locked() {
  // A single file is still rewritten: one-shot majc-scope iterators
  // (table_apply / table_filter) and delete resolution depend on every
  // cell passing through the compaction stack.
  if (files_.empty()) return;
  TRACE_SPAN("tablet.compact");
  // Before any state change, like the flush site above.
  util::fault::point(util::fault::sites::kTabletCompact);
  std::vector<IterPtr> children;
  children.reserve(files_.size());
  for (const auto& f : files_) children.push_back(f.file->iterator());
  IterPtr stack = std::make_unique<MergeIterator>(std::move(children));
  // Full major compaction: deletes are resolved and dropped, versions
  // collapsed, then majc-scope iterators (e.g. combiners) run.
  stack = std::make_unique<DeletingIterator>(std::move(stack));
  if (config_->versioning) {
    stack = std::make_unique<VersioningIterator>(std::move(stack),
                                                 config_->max_versions);
  }
  stack = apply_scope_iterators(std::move(stack), config_->iterators,
                                kMajcScope);
  auto cells = drain_all(*stack);
  const std::uint64_t out_seq = files_.front().seq;
  for (const auto& f : files_) {
    if (cache_) cache_->erase_file(f.file->file_id());
  }
  files_.clear();
  if (!cells.empty()) {
    insert_file_locked(out_seq,
                       RFile::from_sorted(std::move(cells), config_->rfile));
  }
  ++major_compactions_;
  major_total().inc();
  state_cv_.notify_all();
}

IterPtr Tablet::merged_sources_locked() const {
  std::vector<IterPtr> children;
  children.reserve(frozen_.size() + files_.size() + 1);
  // Newest source first: at equal keys the merge prefers lower child
  // indices. The active memtable is always newest; frozen memtables
  // and files interleave by data sequence number (a file can be newer
  // than a frozen memtable when flushes complete out of order).
  if (!memtable_.empty()) {
    children.push_back(std::make_unique<VectorIterator>(memtable_.snapshot()));
  }
  auto fz = frozen_.begin();
  auto fl = files_.begin();
  while (fz != frozen_.end() || fl != files_.end()) {
    if (fl == files_.end() ||
        (fz != frozen_.end() && fz->seq > fl->seq)) {
      children.push_back(std::make_unique<VectorIterator>(fz->cells));
      ++fz;
    } else {
      children.push_back(fl->file->iterator(cache_));
      ++fl;
    }
  }
  return std::make_unique<MergeIterator>(std::move(children));
}

IterPtr Tablet::scan_stack() const {
  std::lock_guard lock(mutex_);
  IterPtr stack = merged_sources_locked();
  stack = std::make_unique<DeletingIterator>(std::move(stack));
  if (config_->versioning) {
    stack = std::make_unique<VersioningIterator>(std::move(stack),
                                                 config_->max_versions);
  }
  return apply_scope_iterators(std::move(stack), config_->iterators,
                               kScanScope);
}

IterPtr Tablet::raw_stack() const {
  std::lock_guard lock(mutex_);
  return merged_sources_locked();
}

TabletStats Tablet::stats() const {
  std::lock_guard lock(mutex_);
  TabletStats s;
  s.memtable_entries = memtable_.entry_count();
  s.frozen_memtables = frozen_.size();
  for (const auto& f : frozen_) s.frozen_entries += f.cells->size();
  s.file_count = files_.size();
  for (const auto& f : files_) {
    s.file_entries += f.file->entry_count();
    s.file_block_bytes += f.file->total_block_bytes();
  }
  s.minor_compactions = minor_compactions_;
  s.major_compactions = major_compactions_;
  s.compactions_queued = bg_queued_;
  s.compactions_completed = bg_completed_;
  s.compactions_in_flight =
      (minor_inflight_ ? 1u : 0u) + (major_inflight_ ? 1u : 0u);
  if (cache_) {
    const auto cs = cache_->stats();
    s.cache_hits = cs.hits;
    s.cache_misses = cs.misses;
    s.cache_evictions = cs.evictions;
  }
  return s;
}

std::size_t Tablet::entry_estimate() const {
  const auto s = stats();
  return s.memtable_entries + s.frozen_entries + s.file_entries;
}

std::vector<std::string> Tablet::sample_split_rows(std::size_t n) const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> rows = memtable_.sample_rows(n);
  for (const auto& frozen : frozen_) {
    const auto& cells = *frozen.cells;
    if (cells.empty()) continue;
    const std::size_t stride = (cells.size() + n - 1) / std::max<std::size_t>(1, n);
    for (std::size_t i = 0; i < cells.size(); i += std::max<std::size_t>(1, stride)) {
      rows.push_back(cells[i].key.row);
    }
    rows.push_back(cells.back().key.row);
  }
  for (const auto& f : files_) {
    auto from_file = f.file->sample_rows(n);
    rows.insert(rows.end(), std::make_move_iterator(from_file.begin()),
                std::make_move_iterator(from_file.end()));
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return rows;
}

}  // namespace graphulo::nosql
