#include "nosql/tablet.hpp"

#include <algorithm>
#include <iterator>
#include <stdexcept>

#include "nosql/filter_iterators.hpp"
#include "nosql/merge_iterator.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace graphulo::nosql {

namespace {

/// Wraps `source` with every attached iterator matching `scope`,
/// priority order (lowest first = closest to the data).
IterPtr apply_scope_iterators(IterPtr source, const TableConfig& config,
                              unsigned scope) {
  for (const auto& setting : config.iterators) {
    if (setting.scopes & scope) source = setting.factory(std::move(source));
  }
  return source;
}

/// Runs `stack` to completion over everything and collects the cells.
std::vector<Cell> drain_all(SortedKVIterator& stack) {
  return drain(stack, Range::all());
}

}  // namespace

void Tablet::apply(const Mutation& mutation, Timestamp assigned_ts) {
  std::lock_guard lock(mutex_);
  if (!extent_.contains_row(mutation.row())) {
    throw std::logic_error("Tablet::apply: row outside extent");
  }
  memtable_.apply(mutation, assigned_ts);
  maybe_compact_locked();
}

void Tablet::insert_cell(Cell cell) {
  std::lock_guard lock(mutex_);
  memtable_.insert(std::move(cell.key), std::move(cell.value));
  maybe_compact_locked();
}

void Tablet::maybe_compact_locked() {
  if (memtable_.entry_count() < config_->flush_entries) return;
  // Threshold-triggered compactions are opportunistic: a transient
  // failure (injected or real) leaves the memtable intact — the write
  // that got us here already succeeded — and the next write past the
  // threshold retries the flush. Mirrors a tablet server whose minor
  // compaction failed: data stays in memory + WAL, nothing is lost.
  try {
    flush_locked();
    if (files_.size() >= config_->compaction_fanin) major_compact_locked();
  } catch (const util::TransientError& e) {
    GRAPHULO_WARN << "Tablet[" << extent_.start_row << "," << extent_.end_row
                  << "): deferred flush/compaction failed transiently, will "
                  << "retry on a later write: " << e.what();
  }
}

void Tablet::flush() {
  std::lock_guard lock(mutex_);
  flush_locked();
}

void Tablet::flush_locked() {
  if (memtable_.empty()) return;
  // Site fires before any state change: a failed flush leaves memtable
  // and file set exactly as they were.
  util::fault::point(util::fault::sites::kMemtableFlush);
  auto snapshot = memtable_.snapshot();
  IterPtr stack = std::make_unique<VectorIterator>(snapshot);
  stack = apply_scope_iterators(std::move(stack), *config_, kMincScope);
  auto cells = drain_all(*stack);
  files_.insert(files_.begin(),
                RFile::from_sorted(std::move(cells), config_->rfile));
  memtable_.clear();
  ++minor_compactions_;
}

void Tablet::major_compact() {
  std::lock_guard lock(mutex_);
  flush_locked();
  major_compact_locked();
}

void Tablet::major_compact_locked() {
  // A single file is still rewritten: one-shot majc-scope iterators
  // (table_apply / table_filter) and delete resolution depend on every
  // cell passing through the compaction stack.
  if (files_.empty()) return;
  // Before any state change, like the flush site above.
  util::fault::point(util::fault::sites::kTabletCompact);
  std::vector<IterPtr> children;
  children.reserve(files_.size());
  for (const auto& f : files_) children.push_back(f->iterator());
  IterPtr stack = std::make_unique<MergeIterator>(std::move(children));
  // Full major compaction: deletes are resolved and dropped, versions
  // collapsed, then majc-scope iterators (e.g. combiners) run.
  stack = std::make_unique<DeletingIterator>(std::move(stack));
  if (config_->versioning) {
    stack = std::make_unique<VersioningIterator>(std::move(stack),
                                                 config_->max_versions);
  }
  stack = apply_scope_iterators(std::move(stack), *config_, kMajcScope);
  auto cells = drain_all(*stack);
  files_.clear();
  files_.push_back(RFile::from_sorted(std::move(cells), config_->rfile));
  ++major_compactions_;
}

IterPtr Tablet::merged_sources_locked() const {
  std::vector<IterPtr> children;
  children.reserve(files_.size() + 1);
  // Memtable first: at equal keys the merge prefers lower child indices,
  // and the memtable holds the newest data.
  if (!memtable_.empty()) {
    children.push_back(std::make_unique<VectorIterator>(memtable_.snapshot()));
  }
  for (const auto& f : files_) children.push_back(f->iterator());
  return std::make_unique<MergeIterator>(std::move(children));
}

IterPtr Tablet::scan_stack() const {
  std::lock_guard lock(mutex_);
  IterPtr stack = merged_sources_locked();
  stack = std::make_unique<DeletingIterator>(std::move(stack));
  if (config_->versioning) {
    stack = std::make_unique<VersioningIterator>(std::move(stack),
                                                 config_->max_versions);
  }
  return apply_scope_iterators(std::move(stack), *config_, kScanScope);
}

IterPtr Tablet::raw_stack() const {
  std::lock_guard lock(mutex_);
  return merged_sources_locked();
}

TabletStats Tablet::stats() const {
  std::lock_guard lock(mutex_);
  TabletStats s;
  s.memtable_entries = memtable_.entry_count();
  s.file_count = files_.size();
  for (const auto& f : files_) s.file_entries += f->entry_count();
  s.minor_compactions = minor_compactions_;
  s.major_compactions = major_compactions_;
  return s;
}

std::size_t Tablet::entry_estimate() const {
  const auto s = stats();
  return s.memtable_entries + s.file_entries;
}

std::vector<std::string> Tablet::sample_split_rows(std::size_t n) const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> rows = memtable_.sample_rows(n);
  for (const auto& f : files_) {
    auto from_file = f->sample_rows(n);
    rows.insert(rows.end(), std::make_move_iterator(from_file.begin()),
                std::make_move_iterator(from_file.end()));
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return rows;
}

}  // namespace graphulo::nosql
