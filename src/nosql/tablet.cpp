#include "nosql/tablet.hpp"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <limits>
#include <stdexcept>

#include "nosql/filter_iterators.hpp"
#include "nosql/merge_iterator.hpp"
#include "nosql/snapshot.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace graphulo::nosql {

namespace {

obs::Counter& flush_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "tablet.flush.total", "Minor compactions (memtable flushes) completed");
  return c;
}
obs::Counter& major_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "tablet.compaction.total", "Major/leveled compactions completed");
  return c;
}
obs::Counter& flush_cells_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "tablet.flush.cells.total",
      "Cells written to L0 by minor compactions (flushes)");
  return c;
}
obs::Counter& compact_cells_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "tablet.compaction.cells.total",
      "Cells rewritten by compactions (write-amplification numerator)");
  return c;
}
obs::Gauge& frozen_gauge() {
  static obs::Gauge& g = obs::MetricsRegistry::global().gauge(
      "tablet.frozen.memtables",
      "Frozen (immutable) memtables awaiting background flush");
  return g;
}
obs::Counter& relief_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "tablet.relief.total",
      "Inline back-pressure reliefs (flush+compact under the write lock)");
  return c;
}
obs::Counter& relief_failure_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "tablet.relief.failures.total",
      "Inline back-pressure reliefs that failed after bounded retries");
  return c;
}
obs::Gauge& snapshot_live_gauge() {
  static obs::Gauge& g = obs::MetricsRegistry::global().gauge(
      "snapshot.live", "Open MVCC snapshot handles pinning a tablet cut");
  return g;
}
obs::Counter& snapshot_opened_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "snapshot.opened.total", "MVCC tablet snapshots opened");
  return c;
}
obs::Counter& snapshot_expired_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "snapshot.expired.total",
      "Abandoned snapshot handles expired by the max-snapshot-age sweep");
  return c;
}
obs::Counter& gc_held_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "snapshot.gc_held.total",
      "Compactions that kept delete markers/versions for a live snapshot");
  return c;
}

/// Ceiling on frozen memtables per tablet before writers block: enough
/// to ride out a slow flush, small enough to bound memory.
constexpr std::size_t kMaxFrozenMemtables = 4;

/// Bound on the inline picker loop per trigger; budgets grow
/// geometrically so real cascades settle in a couple of steps.
constexpr int kMaxInlineCompactions = 16;

/// Runs `stack` to completion over everything and collects the cells.
std::vector<Cell> drain_all(SortedKVIterator& stack) {
  return drain(stack, Range::all());
}

std::uint64_t max_input_seq(const std::vector<FileMeta>& inputs) {
  std::uint64_t seq = 0;
  for (const FileMeta& m : inputs) seq = std::max(seq, m.seq);
  return seq;
}

/// Builds the compaction stack over `inputs` (already newest-first) and
/// drains it. `drop` = bottommost full semantics: deletes resolve and
/// vanish. Versioning and majc-scope iterators run regardless, exactly
/// as partial majors always have.
std::vector<Cell> merge_compaction_inputs(
    const std::vector<FileMeta>& inputs, bool drop, bool versioning,
    int max_versions, const std::vector<IteratorSetting>& settings) {
  std::vector<IterPtr> children;
  children.reserve(inputs.size());
  for (const FileMeta& m : inputs) children.push_back(m.file->iterator());
  IterPtr stack = std::make_unique<MergeIterator>(std::move(children));
  if (drop) stack = std::make_unique<DeletingIterator>(std::move(stack));
  if (versioning) {
    stack = std::make_unique<VersioningIterator>(std::move(stack),
                                                 max_versions);
  }
  stack = apply_scope_iterators(std::move(stack), settings, kMajcScope);
  return drain_all(*stack);
}

}  // namespace

Tablet::~Tablet() {
  if (!frozen_.empty()) {
    frozen_gauge().add(-static_cast<std::int64_t>(frozen_.size()));
  }
}

void Tablet::set_compaction_scheduler(CompactionScheduler* s) {
  std::lock_guard lock(mutex_);
  scheduler_ = s;
}

void Tablet::apply(const Mutation& mutation, Timestamp assigned_ts) {
  std::unique_lock lock(mutex_);
  if (!extent_.contains_row(mutation.row())) {
    throw std::logic_error("Tablet::apply: row outside extent");
  }
  wait_for_capacity_locked(lock);
  memtable_.apply(mutation, assigned_ts);
  maybe_compact_locked();
}

void Tablet::insert_cell(Cell cell) {
  std::unique_lock lock(mutex_);
  wait_for_capacity_locked(lock);
  memtable_.insert(std::move(cell.key), std::move(cell.value));
  maybe_compact_locked();
}

void Tablet::maybe_compact_locked() {
  if (memtable_.entry_count() < config_->flush_entries) return;
  if (scheduler_) {
    // Background mode: O(1) freeze + enqueue; the writer returns
    // immediately and the flush runs on the scheduler's pool.
    freeze_active_locked();
    maybe_enqueue_major_locked();
    return;
  }
  // Threshold-triggered compactions are opportunistic: a transient
  // failure (injected or real) leaves the memtable intact — the write
  // that got us here already succeeded — and the next write past the
  // threshold retries the flush. Mirrors a tablet server whose minor
  // compaction failed: data stays in memory + WAL, nothing is lost.
  try {
    flush_locked();
    // Settle the levels: an L0->L1 compaction can push L1 over budget,
    // which pushes a slice into L2, and so on down the tree.
    for (int round = 0; round < kMaxInlineCompactions; ++round) {
      const auto pick = pick_locked();
      if (!pick) break;
      run_compaction_locked(*pick);
    }
  } catch (const util::TransientError& e) {
    GRAPHULO_WARN << "Tablet[" << extent_.start_row << "," << extent_.end_row
                  << "): deferred flush/compaction failed transiently, will "
                  << "retry on a later write: " << e.what();
  }
}

void Tablet::wait_for_capacity_locked(std::unique_lock<std::mutex>& lock) {
  if (!scheduler_) return;
  while (versions_.current()->file_count() >= config_->max_tablet_files ||
         frozen_.size() >= kMaxFrozenMemtables) {
    if (!minor_inflight_ && !frozen_.empty()) enqueue_minor_locked();
    maybe_enqueue_major_locked();
    if (minor_inflight_ || major_inflight_) {
      state_cv_.wait_for(lock, std::chrono::microseconds(200));
      continue;
    }
    // Nothing is in flight and nothing could be queued (scheduler
    // shutting down, or the picker found no work): relieve the
    // pressure inline rather than spinning. Transient failures
    // (injected or real) get bounded-backoff retries — giving up on
    // the first fault would let the writer proceed with the ceiling
    // still breached and the pressure unrelieved.
    ++relief_runs_;
    relief_total().inc();
    try {
      util::with_retries("Tablet: back-pressure relief", util::RetryPolicy{},
                         [&] {
                           flush_locked();
                           major_compact_locked();
                         });
    } catch (const util::TransientError& e) {
      ++relief_failures_;
      relief_failure_total().inc();
      GRAPHULO_WARN << "Tablet: inline back-pressure relief failed after "
                    << "retries: " << e.what();
    }
    break;
  }
}

std::vector<Cell> Tablet::build_minor_cells(
    const std::shared_ptr<const std::vector<Cell>>& snapshot,
    const std::vector<IteratorSetting>& settings) const {
  // Site fires before any state change: a failed flush leaves memtable
  // and file set exactly as they were.
  util::fault::point(util::fault::sites::kMemtableFlush);
  TRACE_SPAN("tablet.flush");
  IterPtr stack = std::make_unique<VectorIterator>(snapshot);
  stack = apply_scope_iterators(std::move(stack), settings, kMincScope);
  return drain_all(*stack);
}

void Tablet::freeze_active_locked() {
  if (memtable_.empty()) return;  // never enqueue a no-op flush
  frozen_.insert(frozen_.begin(),
                 FrozenMemtable{next_data_seq_++, memtable_.snapshot()});
  frozen_gauge().add(1);
  memtable_.clear();
  enqueue_minor_locked();
}

void Tablet::enqueue_minor_locked() {
  if (!scheduler_ || minor_inflight_) return;
  minor_inflight_ = true;
  auto self = shared_from_this();
  if (scheduler_->enqueue([self] { self->run_background_minor(); })) {
    ++bg_queued_;
  } else {
    minor_inflight_ = false;  // scheduler stopping; flush() rescues later
  }
}

void Tablet::maybe_enqueue_major_locked() {
  if (!scheduler_ || major_inflight_) return;
  if (!pick_locked()) return;
  major_inflight_ = true;
  auto self = shared_from_this();
  if (scheduler_->enqueue([self] { self->run_background_major(); })) {
    ++bg_queued_;
  } else {
    major_inflight_ = false;
  }
}

std::optional<CompactionPick> Tablet::pick_locked() const {
  const auto v = versions_.current();
  const bool pressure = v->file_count() >= config_->max_tablet_files;
  return pick_compaction(*v, config_->compaction, config_->compaction_fanin,
                         pressure);
}

void Tablet::run_background_minor() {
  std::unique_lock lock(mutex_);
  while (!frozen_.empty()) {
    const FrozenMemtable target = frozen_.back();  // oldest first
    const auto settings = config_->iterators;      // copied under the lock
    const RFileOptions rfile_opts = config_->rfile;
    lock.unlock();
    std::shared_ptr<RFile> file;
    bool ok = true;
    try {
      auto cells = build_minor_cells(target.cells, settings);
      if (!cells.empty()) {
        file = RFile::from_sorted(std::move(cells), rfile_opts);
      }
    } catch (const std::exception& e) {
      // Contained exactly like an inline threshold flush: the frozen
      // memtable stays queued in memory (and in the WAL) and a later
      // trigger or an explicit flush() retries it.
      GRAPHULO_WARN << "Tablet[" << extent_.start_row << ","
                    << extent_.end_row
                    << "): background flush failed, keeping memtable "
                    << "frozen for retry: " << e.what();
      ok = false;
    }
    lock.lock();
    if (!ok) break;
    try {
      install_minor_locked(target.seq, file);
    } catch (const util::TransientError& e) {
      // The version install faulted: the frozen memtable is untouched
      // (install fires before any state change) and a later trigger or
      // explicit flush() retries it.
      GRAPHULO_WARN << "Tablet: background flush install failed "
                    << "transiently, keeping memtable frozen: " << e.what();
      break;
    }
    maybe_enqueue_major_locked();
  }
  minor_inflight_ = false;
  ++bg_completed_;
  state_cv_.notify_all();
}

void Tablet::run_background_major() {
  std::unique_lock lock(mutex_);
  const auto pick = pick_locked();
  if (!pick) {
    major_inflight_ = false;
    ++bg_completed_;
    state_cv_.notify_all();
    return;
  }
  // Delete markers drop only when the output is bottommost for its key
  // range AND nothing newer is buffered (a frozen memtable may hold a
  // write the markers must still suppress at scan time) AND no live
  // snapshot can still observe the inputs — the MVCC horizon. Version
  // collapse is held back by the horizon too: a snapshot's cut may
  // include versions the current state would otherwise discard.
  const bool allow_gc = horizon_allows_gc_locked(max_input_seq(pick->inputs));
  const bool drop = pick->bottommost && frozen_.empty() && allow_gc;
  const auto settings = config_->iterators;  // copied under the lock
  const bool versioning = config_->versioning && allow_gc;
  const int max_versions = config_->max_versions;
  const RFileOptions rfile_opts = config_->rfile;
  lock.unlock();

  std::shared_ptr<RFile> output;
  std::size_t out_cells = 0;
  bool ok = true;
  try {
    TRACE_SPAN("tablet.compact");
    util::fault::point(util::fault::sites::kTabletCompact);
    auto cells = merge_compaction_inputs(pick->inputs, drop, versioning,
                                         max_versions, settings);
    out_cells = cells.size();
    if (!cells.empty()) {
      output = RFile::from_sorted(std::move(cells), rfile_opts);
    }
  } catch (const std::exception& e) {
    GRAPHULO_WARN << "Tablet[" << extent_.start_row << "," << extent_.end_row
                  << "): background compaction failed, keeping "
                  << "inputs: " << e.what();
    ok = false;
  }

  lock.lock();
  bool installed = false;
  if (ok) {
    VersionEdit edit;
    for (const FileMeta& m : pick->inputs) edit.removed.push_back(m.file_id);
    if (output) {
      edit.added.push_back(FileMeta::describe(
          output, static_cast<int>(pick->output_level),
          max_input_seq(pick->inputs)));
    }
    try {
      // apply_edit rejects the edit when an input vanished (an explicit
      // major_compact() raced us and already merged it): discard ours.
      installed = apply_edit_locked(edit);
      if (installed) {
        ++major_compactions_;
        major_total().inc();
        compact_cells_total().inc(out_cells);
      } else {
        GRAPHULO_DEBUG << "Tablet: discarding background compaction result "
                       << "(inputs changed during merge)";
      }
    } catch (const util::TransientError& e) {
      GRAPHULO_WARN << "Tablet: background compaction install failed "
                    << "transiently, keeping inputs: " << e.what();
    }
  }
  major_inflight_ = false;
  ++bg_completed_;
  // Cascade: this install may have pushed the next level over budget.
  if (installed) maybe_enqueue_major_locked();
  state_cv_.notify_all();
}

void Tablet::run_compaction_locked(const CompactionPick& pick) {
  TRACE_SPAN("tablet.compact");
  // Before any state change, like the flush site above.
  util::fault::point(util::fault::sites::kTabletCompact);
  // Same GC gate as the background path: bottommost + nothing frozen +
  // no live snapshot observing the inputs.
  const bool allow_gc = horizon_allows_gc_locked(max_input_seq(pick.inputs));
  const bool drop = pick.bottommost && frozen_.empty() && allow_gc;
  auto cells = merge_compaction_inputs(pick.inputs, drop,
                                       config_->versioning && allow_gc,
                                       config_->max_versions,
                                       config_->iterators);
  const std::size_t out_cells = cells.size();
  VersionEdit edit;
  for (const FileMeta& m : pick.inputs) edit.removed.push_back(m.file_id);
  if (!cells.empty()) {
    edit.added.push_back(FileMeta::describe(
        RFile::from_sorted(std::move(cells), config_->rfile),
        static_cast<int>(pick.output_level), max_input_seq(pick.inputs)));
  }
  if (apply_edit_locked(edit)) {
    ++major_compactions_;
    major_total().inc();
    compact_cells_total().inc(out_cells);
    state_cv_.notify_all();
  }
}

bool Tablet::apply_edit_locked(const VersionEdit& edit) {
  // The install (and its fault site) runs before anything observable
  // changes; cache eviction of retired files happens only afterwards.
  if (!versions_.apply(edit)) return false;
  if (cache_) {
    for (const std::uint64_t id : edit.removed) cache_->erase_file(id);
  }
  return true;
}

void Tablet::install_minor_locked(std::uint64_t seq,
                                  const std::shared_ptr<RFile>& file) {
  // A minc stack may legitimately drop every cell (filters): count the
  // flush but never install a zero-cell file. The version install runs
  // FIRST — it can fault, and must leave the frozen entry queued.
  if (file && !file->empty()) {
    VersionEdit edit;
    edit.added.push_back(FileMeta::describe(file, /*level=*/0, seq));
    apply_edit_locked(edit);
    flush_cells_total().inc(file->entry_count());
  }
  const auto erased = std::erase_if(
      frozen_, [&](const FrozenMemtable& f) { return f.seq == seq; });
  frozen_gauge().add(-static_cast<std::int64_t>(erased));
  ++minor_compactions_;
  flush_total().inc();
  state_cv_.notify_all();
}

void Tablet::flush() {
  std::unique_lock lock(mutex_);
  // Let an in-flight background flush finish rather than duplicating
  // its work, then drain whatever is left inline.
  if (scheduler_) state_cv_.wait(lock, [&] { return !minor_inflight_; });
  flush_locked();
}

void Tablet::flush_locked() {
  // Rescue path: frozen memtables whose background flush failed (or
  // was never queued) drain here, oldest first, preserving seq order.
  while (!frozen_.empty()) {
    const FrozenMemtable target = frozen_.back();
    auto cells = build_minor_cells(target.cells, config_->iterators);
    std::shared_ptr<RFile> file;
    if (!cells.empty()) {
      file = RFile::from_sorted(std::move(cells), config_->rfile);
    }
    install_minor_locked(target.seq, file);
  }
  if (memtable_.empty()) return;
  const std::uint64_t seq = next_data_seq_;
  auto cells = build_minor_cells(memtable_.snapshot(), config_->iterators);
  if (!cells.empty()) {
    auto file = RFile::from_sorted(std::move(cells), config_->rfile);
    VersionEdit edit;
    edit.added.push_back(FileMeta::describe(file, /*level=*/0, seq));
    // May fault: nothing is committed until the install lands.
    apply_edit_locked(edit);
    flush_cells_total().inc(file->entry_count());
  }
  // Past every fault site: commit the sequence number and clear.
  ++next_data_seq_;
  memtable_.clear();
  ++minor_compactions_;
  flush_total().inc();
  state_cv_.notify_all();
}

void Tablet::major_compact() {
  std::unique_lock lock(mutex_);
  if (scheduler_) {
    state_cv_.wait(lock,
                   [&] { return !minor_inflight_ && !major_inflight_; });
  }
  flush_locked();
  major_compact_locked();
}

void Tablet::major_compact_locked() {
  // A single file is still rewritten: one-shot majc-scope iterators
  // (table_apply / table_filter) and delete resolution depend on every
  // cell passing through the compaction stack.
  const auto v = versions_.current();
  if (v->empty()) return;
  TRACE_SPAN("tablet.compact");
  // Before any state change, like the flush site above.
  util::fault::point(util::fault::sites::kTabletCompact);
  const auto inputs = v->all_files();
  // Full major compaction: every file participates, so deletes resolve
  // and drop, versions collapse, then majc-scope iterators run —
  // unless a live snapshot still observes the inputs, in which case
  // markers and versions ride along to the output and a later
  // compaction (after the snapshot closes) retires them.
  const bool allow_gc = horizon_allows_gc_locked(max_input_seq(inputs));
  auto cells = merge_compaction_inputs(inputs, /*drop=*/allow_gc,
                                       config_->versioning && allow_gc,
                                       config_->max_versions,
                                       config_->iterators);
  const std::size_t out_cells = cells.size();
  // The single output is bottommost by construction; park it at the
  // deepest occupied level (L1 minimum when leveled) so L0 stays clear
  // for fresh flushes.
  std::size_t out_level = 0;
  if (config_->compaction.leveled && config_->compaction.max_levels > 1) {
    out_level = std::max<std::size_t>(
        1, v->levels.empty() ? 1 : v->levels.size() - 1);
    out_level = std::min(out_level, config_->compaction.max_levels - 1);
  }
  VersionEdit edit;
  for (const FileMeta& m : inputs) edit.removed.push_back(m.file_id);
  if (!cells.empty()) {
    edit.added.push_back(FileMeta::describe(
        RFile::from_sorted(std::move(cells), config_->rfile),
        static_cast<int>(out_level), max_input_seq(inputs)));
  }
  apply_edit_locked(edit);
  ++major_compactions_;
  major_total().inc();
  compact_cells_total().inc(out_cells);
  state_cv_.notify_all();
}

PinnedSources Tablet::pinned_sources_locked() const {
  PinnedSources s;
  if (!memtable_.empty()) s.memtable = memtable_.snapshot();
  s.frozen.reserve(frozen_.size());
  for (const auto& f : frozen_) s.frozen.emplace_back(f.seq, f.cells);
  s.version = versions_.current();
  return s;
}

IterPtr Tablet::merged_sources_locked(
    std::shared_ptr<std::atomic<std::uint64_t>> consulted) const {
  // Live scans and snapshot scans share one definition of the read
  // view: a pinned-source merge (see snapshot.hpp).
  return merge_pinned_sources(pinned_sources_locked(), cache_,
                              std::move(consulted));
}

std::shared_ptr<TabletSnapshot> Tablet::open_snapshot() {
  std::lock_guard lock(mutex_);
  expire_overdue_snapshots_locked();
  auto snap = std::shared_ptr<TabletSnapshot>(new TabletSnapshot());
  snap->tablet_ = shared_from_this();
  snap->id_ = next_snapshot_id_++;
  snap->seq_ = next_data_seq_;
  snap->extent_ = extent_;
  snap->sources_ = pinned_sources_locked();
  snap->cache_ = cache_;
  snap->versioning_ = config_->versioning;
  snap->max_versions_ = config_->max_versions;
  snap->iterators_ = config_->iterators;
  snap->opened_ = std::chrono::steady_clock::now();
  snap->max_age_ = config_->admission.max_snapshot_age;
  snap->expired_flag_ = std::make_shared<std::atomic<bool>>(false);
  live_snapshots_.push_back(
      LiveSnapshot{snap->id_, snap->seq_, snap->opened_, snap->expired_flag_});
  snapshot_live_gauge().add(1);
  snapshot_opened_total().inc();
  return snap;
}

void Tablet::release_snapshot(std::uint64_t id) noexcept {
  std::lock_guard lock(mutex_);
  const auto erased = std::erase_if(
      live_snapshots_, [&](const LiveSnapshot& s) { return s.id == id; });
  // Zero when the age sweep already expired this handle — the gauge was
  // decremented then.
  if (erased > 0) snapshot_live_gauge().add(-1);
}

void Tablet::expire_overdue_snapshots_locked() {
  const auto age = config_->admission.max_snapshot_age;
  if (age.count() <= 0 || live_snapshots_.empty()) return;
  const auto cutoff = std::chrono::steady_clock::now() - age;
  const auto erased =
      std::erase_if(live_snapshots_, [&](const LiveSnapshot& s) {
        if (s.opened > cutoff) return false;
        s.expired->store(true, std::memory_order_release);
        return true;
      });
  if (erased > 0) {
    snapshots_expired_ += erased;
    snapshot_expired_total().inc(erased);
    snapshot_live_gauge().add(-static_cast<std::int64_t>(erased));
  }
}

bool Tablet::horizon_allows_gc_locked(std::uint64_t max_input_seq) {
  expire_overdue_snapshots_locked();
  for (const LiveSnapshot& s : live_snapshots_) {
    // A snapshot pinned at S observes every source sealed before it —
    // all with seq < S. Inputs whose max seq reaches S therefore hold
    // data (or markers shadowing data) inside some live cut: keep
    // everything and let a later compaction retire it.
    if (s.seq <= max_input_seq) {
      gc_held_total().inc();
      return false;
    }
  }
  return true;
}

IterPtr Tablet::scan_stack() const {
  std::lock_guard lock(mutex_);
  IterPtr stack = merged_sources_locked(make_consulted_probe());
  stack = std::make_unique<DeletingIterator>(std::move(stack));
  if (config_->versioning) {
    stack = std::make_unique<VersioningIterator>(std::move(stack),
                                                 config_->max_versions);
  }
  return apply_scope_iterators(std::move(stack), config_->iterators,
                               kScanScope);
}

IterPtr Tablet::raw_stack() const {
  std::lock_guard lock(mutex_);
  return merged_sources_locked(nullptr);
}

std::shared_ptr<const Version> Tablet::version() const {
  std::lock_guard lock(mutex_);
  return versions_.current();
}

std::vector<Cell> Tablet::unflushed_cells() const {
  std::lock_guard lock(mutex_);
  std::vector<IterPtr> children;
  children.reserve(frozen_.size() + 1);
  if (!memtable_.empty()) {
    children.push_back(std::make_unique<VectorIterator>(memtable_.snapshot()));
  }
  for (const auto& f : frozen_) {  // newest first already
    children.push_back(std::make_unique<VectorIterator>(f.cells));
  }
  MergeIterator merged(std::move(children));
  return drain_all(merged);
}

void Tablet::restore_files(std::vector<FileMeta> files) {
  std::lock_guard lock(mutex_);
  VersionEdit edit;
  edit.added = std::move(files);
  versions_.apply(edit);  // fires manifest.install; caller retries
  for (const FileMeta& m : edit.added) {
    next_data_seq_ = std::max(next_data_seq_, m.seq + 1);
  }
}

TabletStats Tablet::stats() const {
  std::lock_guard lock(mutex_);
  TabletStats s;
  s.memtable_entries = memtable_.entry_count();
  s.frozen_memtables = frozen_.size();
  for (const auto& f : frozen_) s.frozen_entries += f.cells->size();
  const auto v = versions_.current();
  s.file_count = v->file_count();
  for (const auto& level : v->levels) {
    s.level_files.push_back(level.size());
    std::uint64_t bytes = 0;
    for (const FileMeta& m : level) {
      s.file_entries += m.file->entry_count();
      s.file_block_bytes += m.file->total_block_bytes();
      bytes += m.bytes;
    }
    s.level_bytes.push_back(bytes);
  }
  s.minor_compactions = minor_compactions_;
  s.major_compactions = major_compactions_;
  s.compactions_queued = bg_queued_;
  s.compactions_completed = bg_completed_;
  s.live_snapshots = live_snapshots_.size();
  for (const LiveSnapshot& snap : live_snapshots_) {
    if (s.oldest_snapshot_seq == 0 || snap.seq < s.oldest_snapshot_seq) {
      s.oldest_snapshot_seq = snap.seq;
    }
  }
  s.snapshots_expired = snapshots_expired_;
  s.relief_runs = relief_runs_;
  s.relief_failures = relief_failures_;
  s.compactions_in_flight =
      (minor_inflight_ ? 1u : 0u) + (major_inflight_ ? 1u : 0u);
  if (cache_) {
    const auto cs = cache_->stats();
    s.cache_hits = cs.hits;
    s.cache_misses = cs.misses;
    s.cache_evictions = cs.evictions;
    s.cache_entries = cs.entries;
    s.cache_bytes = cs.bytes;
  }
  return s;
}

std::size_t Tablet::entry_estimate() const {
  const auto s = stats();
  return s.memtable_entries + s.frozen_entries + s.file_entries;
}

std::vector<std::string> Tablet::sample_split_rows(std::size_t n) const {
  if (n == 0) return {};
  std::lock_guard lock(mutex_);
  std::vector<std::string> rows = memtable_.sample_rows(n);
  for (const auto& frozen : frozen_) {
    const auto& cells = *frozen.cells;
    if (cells.empty()) continue;
    const std::size_t stride =
        std::max<std::size_t>(1, (cells.size() + n - 1) / n);
    for (std::size_t i = 0; i < cells.size(); i += stride) {
      rows.push_back(cells[i].key.row);
    }
    rows.push_back(cells.back().key.row);
  }
  for (const FileMeta& m : versions_.current()->all_files()) {
    auto from_file = m.file->sample_rows(n);
    rows.insert(rows.end(), std::make_move_iterator(from_file.begin()),
                std::make_move_iterator(from_file.end()));
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  // Partition callers turn these into half-open range bounds, where an
  // empty row means "unbounded" — an empty sample (possible with empty
  // row keys in the data) must never masquerade as one.
  if (!rows.empty() && rows.front().empty()) rows.erase(rows.begin());
  return rows;
}

}  // namespace graphulo::nosql
