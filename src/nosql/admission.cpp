#include "nosql/admission.hpp"

#include <algorithm>
#include <thread>

#include "obs/metrics.hpp"

namespace graphulo::nosql {
namespace {

obs::Counter& scans_admitted_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "admission.scans.admitted.total", "Scan operations admitted");
  return c;
}

obs::Counter& scans_queued_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "admission.scans.queued.total",
      "Scan admissions that had to wait for an in-flight slot");
  return c;
}

obs::Counter& scans_shed_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "admission.scans.shed.total",
      "Scan admissions rejected with OverloadedError");
  return c;
}

obs::Counter& writes_throttled_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "admission.writes.throttled.total",
      "Write admissions that slept on a dry token bucket");
  return c;
}

obs::Counter& writes_shed_total() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "admission.writes.shed.total",
      "Write admissions rejected with OverloadedError");
  return c;
}

obs::Gauge& scans_inflight_gauge() {
  static obs::Gauge& g = obs::MetricsRegistry::global().gauge(
      "admission.scans.inflight", "Scans currently holding an in-flight slot");
  return g;
}

obs::Histogram& queue_wait_hist() {
  static obs::Histogram& h = obs::MetricsRegistry::global().histogram(
      "admission.queue_wait.seconds",
      "Time spent queued for admission (slots and token buckets)",
      obs::default_latency_buckets());
  return h;
}

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Charges `cost` tokens from one bucket, refilling at `rate`/s up to
/// `burst`. When the bucket is dry, sleeps until enough tokens accrue —
/// but never past `give_up` (pass `now` for an immediate shed). Returns
/// the seconds slept, or nullopt when the charge could not be satisfied
/// in time. The session mutex is only held for the bookkeeping, never
/// across a sleep, so concurrent users of one session stay honest: each
/// wakes, re-checks, and may find another thread drained the refill.
std::optional<double> charge_bucket(std::mutex& mutex, double& tokens,
                                    Clock::time_point& last_refill,
                                    double rate, double burst, double cost,
                                    Clock::time_point give_up) {
  double waited = 0.0;
  for (;;) {
    Clock::duration need{};
    {
      std::lock_guard<std::mutex> lock(mutex);
      const auto now = Clock::now();
      tokens = std::min(burst,
                        tokens + rate * seconds_between(last_refill, now));
      last_refill = now;
      if (tokens >= cost) {
        tokens -= cost;
        return waited;
      }
      need = std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>((cost - tokens) / rate));
    }
    const auto now = Clock::now();
    if (now + need > give_up) return std::nullopt;
    std::this_thread::sleep_for(need);
    waited += std::chrono::duration<double>(need).count();
  }
}

}  // namespace

AdmissionSession::AdmissionSession(const AdmissionConfig* config)
    : config_(config),
      scan_tokens_(config->scan_burst),
      write_tokens_(config->write_burst),
      scan_refill_(Clock::now()),
      write_refill_(Clock::now()) {}

AdmissionController::ScanTicket AdmissionController::admit_scan(
    AdmissionSession* session,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  const AdmissionConfig& cfg = *config_;
  const auto now = Clock::now();
  // Queue policy waits up to max_queue_wait but never past the caller's
  // deadline; shed policy gets a give-up point of "now" and so never
  // waits at all.
  Clock::time_point give_up = now;
  if (cfg.policy == AdmissionPolicy::kQueue) {
    give_up = now + cfg.max_queue_wait;
    if (deadline && *deadline < give_up) give_up = *deadline;
  }

  if (session != nullptr && cfg.scan_rate > 0) {
    const auto waited =
        charge_bucket(session->mutex_, session->scan_tokens_,
                      session->scan_refill_, cfg.scan_rate, cfg.scan_burst,
                      1.0, give_up);
    if (!waited) {
      scans_shed_total().inc();
      throw OverloadedError(
          "admission: session scan rate exceeded (policy=" +
          std::string(cfg.policy == AdmissionPolicy::kQueue ? "queue"
                                                            : "shed") +
          ")");
    }
    if (*waited > 0) queue_wait_hist().observe(*waited);
  }

  if (cfg.max_inflight_scans == 0) {
    scans_admitted_total().inc();
    return ScanTicket(nullptr);
  }

  std::unique_lock<std::mutex> lock(mutex_);
  if (inflight_ >= cfg.max_inflight_scans) {
    scans_queued_total().inc();
    const auto wait_start = Clock::now();
    const bool got_slot = slot_cv_.wait_until(lock, give_up, [&] {
      return inflight_ < cfg.max_inflight_scans;
    });
    queue_wait_hist().observe(seconds_between(wait_start, Clock::now()));
    if (!got_slot) {
      scans_shed_total().inc();
      throw OverloadedError(
          "admission: too many in-flight scans (limit=" +
          std::to_string(cfg.max_inflight_scans) + ")");
    }
  }
  ++inflight_;
  lock.unlock();
  scans_inflight_gauge().add(1);
  scans_admitted_total().inc();
  return ScanTicket(this);
}

void AdmissionController::admit_write(AdmissionSession& session,
                                      std::size_t mutations) {
  const AdmissionConfig& cfg = *config_;
  if (cfg.write_rate <= 0) return;
  const auto now = Clock::now();
  const Clock::time_point give_up = cfg.policy == AdmissionPolicy::kQueue
                                        ? now + cfg.max_queue_wait
                                        : now;
  const auto waited = charge_bucket(
      session.mutex_, session.write_tokens_, session.write_refill_,
      cfg.write_rate, cfg.write_burst,
      static_cast<double>(mutations), give_up);
  if (!waited) {
    writes_shed_total().inc();
    throw OverloadedError("admission: session write rate exceeded");
  }
  if (*waited > 0) {
    writes_throttled_total().inc();
    queue_wait_hist().observe(*waited);
  }
}

std::size_t AdmissionController::inflight_scans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return inflight_;
}

void AdmissionController::release_scan() noexcept {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (inflight_ > 0) --inflight_;
  }
  scans_inflight_gauge().add(-1);
  slot_cv_.notify_one();
}

void AdmissionController::ScanTicket::release() noexcept {
  if (ctrl_ != nullptr) {
    ctrl_->release_scan();
    ctrl_ = nullptr;
  }
}

}  // namespace graphulo::nosql
