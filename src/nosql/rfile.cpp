#include "nosql/rfile.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <fstream>

namespace graphulo::nosql {

namespace {

constexpr std::uint32_t kMagic = 0x52464c31;  // "RFL1"

void write_string(std::ofstream& out, const std::string& s) {
  const auto len = static_cast<std::uint32_t>(s.size());
  out.write(reinterpret_cast<const char*>(&len), sizeof(len));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool read_string(std::ifstream& in, std::string& s) {
  std::uint32_t len = 0;
  if (!in.read(reinterpret_cast<char*>(&len), sizeof(len))) return false;
  s.resize(len);
  return static_cast<bool>(in.read(s.data(), static_cast<std::streamsize>(len)));
}

}  // namespace

RFile::RFile(std::vector<Cell> cells) {
  for (const auto& c : cells) {
    bytes_ += c.key.row.size() + c.key.family.size() + c.key.qualifier.size() +
              c.key.visibility.size() + c.value.size() + sizeof(Key);
  }
  cells_ = std::make_shared<const std::vector<Cell>>(std::move(cells));
}

std::shared_ptr<RFile> RFile::from_sorted(std::vector<Cell> cells) {
#ifndef NDEBUG
  for (std::size_t i = 1; i < cells.size(); ++i) {
    assert(!(cells[i].key < cells[i - 1].key) && "RFile cells must be sorted");
  }
#endif
  return std::shared_ptr<RFile>(new RFile(std::move(cells)));
}

IterPtr RFile::iterator() const {
  return std::make_unique<VectorIterator>(cells_);
}

std::vector<std::string> RFile::sample_rows(std::size_t n) const {
  std::vector<std::string> rows;
  const auto& cells = *cells_;
  if (cells.empty() || n == 0) return rows;
  rows.reserve(n);
  const std::size_t stride = std::max<std::size_t>(1, cells.size() / n);
  for (std::size_t i = 0; i < cells.size() && rows.size() < n; i += stride) {
    if (rows.empty() || rows.back() != cells[i].key.row) {
      rows.push_back(cells[i].key.row);
    }
  }
  return rows;
}

bool RFile::write_to(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  const auto count = static_cast<std::uint64_t>(cells_->size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& c : *cells_) {
    write_string(out, c.key.row);
    write_string(out, c.key.family);
    write_string(out, c.key.qualifier);
    write_string(out, c.key.visibility);
    out.write(reinterpret_cast<const char*>(&c.key.ts), sizeof(c.key.ts));
    const char del = c.key.deleted ? 1 : 0;
    out.write(&del, 1);
    write_string(out, c.value);
  }
  return static_cast<bool>(out);
}

std::shared_ptr<RFile> RFile::read_from(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return nullptr;
  std::uint32_t magic = 0;
  if (!in.read(reinterpret_cast<char*>(&magic), sizeof(magic)) ||
      magic != kMagic) {
    return nullptr;
  }
  std::uint64_t count = 0;
  if (!in.read(reinterpret_cast<char*>(&count), sizeof(count))) return nullptr;
  std::vector<Cell> cells;
  cells.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Cell c;
    if (!read_string(in, c.key.row) || !read_string(in, c.key.family) ||
        !read_string(in, c.key.qualifier) ||
        !read_string(in, c.key.visibility)) {
      return nullptr;
    }
    if (!in.read(reinterpret_cast<char*>(&c.key.ts), sizeof(c.key.ts))) {
      return nullptr;
    }
    char del = 0;
    if (!in.read(&del, 1)) return nullptr;
    c.key.deleted = del != 0;
    if (!read_string(in, c.value)) return nullptr;
    if (!cells.empty() && c.key < cells.back().key) return nullptr;  // corrupt
    cells.push_back(std::move(c));
  }
  return from_sorted(std::move(cells));
}

}  // namespace graphulo::nosql
