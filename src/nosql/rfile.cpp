#include "nosql/rfile.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstring>
#include <fstream>
#include <functional>
#include <stdexcept>

#include "nosql/block_cache.hpp"
#include "nosql/block_codec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/checksum.hpp"
#include "util/fault.hpp"
#include "util/lz.hpp"

namespace graphulo::nosql {

using util::crc32;

namespace {

constexpr std::uint32_t kMagic = 0x52464c32;   // "RFL2" (RFL1 + CRC trailer)
constexpr std::uint32_t kMagic3 = 0x52464c33;  // "RFL3" (packed blocks)

// ---- obs instrumentation ------------------------------------------------
// Process-wide encode/decode accounting: how many logical key/value
// bytes went in, how many encoded bytes came out (the compression-ratio
// gauge is their running quotient), and how much block decoding the
// read path performs.

obs::Counter& encode_raw_bytes() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "rfile.encode.raw_bytes.total",
      "Logical cell bytes fed to the RFile block encoder");
  return c;
}
obs::Counter& encode_packed_bytes() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "rfile.encode.encoded_bytes.total",
      "Encoded (post-compressor) RFile block bytes produced");
  return c;
}
obs::Gauge& compression_ratio_gauge() {
  static obs::Gauge& g = obs::MetricsRegistry::global().gauge(
      "rfile.encode.ratio_x1000",
      "Running raw/encoded byte ratio across all encoded RFiles, x1000");
  return g;
}
obs::Counter& decode_blocks() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "rfile.decode.blocks.total", "RFile data blocks decoded");
  return c;
}
obs::Counter& decode_raw_bytes() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "rfile.decode.raw_bytes.total",
      "Prefix-encoded bytes run through the RFile block decoder");
  return c;
}

// ---- payload (de)serialization -----------------------------------------

void append_raw(std::string& out, const void* p, std::size_t n) {
  out.append(static_cast<const char*>(p), n);
}

void append_string(std::string& out, const std::string& s) {
  const auto len = static_cast<std::uint32_t>(s.size());
  append_raw(out, &len, sizeof(len));
  out.append(s);
}

/// Cursor over an in-memory payload; read_* return false on truncation.
struct PayloadReader {
  const char* p;
  std::size_t remaining;

  bool read_raw(void* dst, std::size_t n) {
    if (remaining < n) return false;
    std::memcpy(dst, p, n);
    p += n;
    remaining -= n;
    return true;
  }

  bool read_string(std::string& s) {
    std::uint32_t len = 0;
    if (!read_raw(&len, sizeof(len))) return false;
    if (remaining < len) return false;
    s.assign(p, len);
    p += len;
    remaining -= len;
    return true;
  }
};

void append_key(std::string& out, const Key& k) {
  append_string(out, k.row);
  append_string(out, k.family);
  append_string(out, k.qualifier);
  append_string(out, k.visibility);
  append_raw(out, &k.ts, sizeof(k.ts));
  const char del = k.deleted ? 1 : 0;
  append_raw(out, &del, 1);
}

bool read_key(PayloadReader& reader, Key& k) {
  if (!reader.read_string(k.row) || !reader.read_string(k.family) ||
      !reader.read_string(k.qualifier) || !reader.read_string(k.visibility)) {
    return false;
  }
  if (!reader.read_raw(&k.ts, sizeof(k.ts))) return false;
  char del = 0;
  if (!reader.read_raw(&del, 1)) return false;
  k.deleted = del != 0;
  return true;
}

std::size_t key_bytes(const Key& k) {
  return k.row.size() + k.family.size() + k.qualifier.size() +
         k.visibility.size();
}

// ---- row Bloom hashing --------------------------------------------------

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Returns the single row `range` can contain cells of, or nullptr when
/// the range spans more than one row. Recognizes both end.row ==
/// start.row and the Range::exact_row shape (exclusive end at the
/// minimal key of the row successor start.row + '\0').
const std::string* single_row_of(const Range& range) {
  if (!range.has_start || !range.has_end) return nullptr;
  if (range.end.row == range.start.row) return &range.start.row;
  if (!range.end_inclusive && range.end.row.size() == range.start.row.size() + 1 &&
      range.end.row.back() == '\0' &&
      range.end.row.compare(0, range.start.row.size(), range.start.row) == 0 &&
      !(min_key_for_row(range.end.row) < range.end)) {
    // No key of the successor row clears the exclusive end bound, so
    // every containable key has exactly start.row.
    return &range.start.row;
  }
  return nullptr;
}

}  // namespace

// ---- construction -------------------------------------------------------

RFile::RFile(std::vector<Cell> cells, const RFileOptions& options) {
  static std::atomic<std::uint64_t> next_file_id{1};
  file_id_ = next_file_id.fetch_add(1, std::memory_order_relaxed);
  count_ = cells.size();
  stride_ = std::max<std::size_t>(1, options.index_stride);
  restart_interval_ = std::max<std::size_t>(1, options.restart_interval);
  if (!cells.empty()) {
    first_key_ = cells.front().key;
    last_key_ = cells.back().key;
  }
  build_bloom_from_cells(cells, options);
  if (options.prefix_encode) {
    encoded_ = true;
    encode_cells(cells, options);
  } else {
    for (const auto& c : cells) {
      bytes_ += c.key.row.size() + c.key.family.size() +
                c.key.qualifier.size() + c.key.visibility.size() +
                c.value.size() + sizeof(Key);
    }
    cells_ = std::make_shared<const std::vector<Cell>>(std::move(cells));
    build_index(options);
  }
  finish_block_accounting();
}

RFile::RFile(std::vector<EncodedBlock> blocks,
             std::vector<Key> block_first_keys, Key first_key, Key last_key,
             std::uint64_t count, std::vector<std::uint64_t> bloom,
             std::size_t bloom_bits, std::size_t stride,
             std::size_t restart_interval) {
  static std::atomic<std::uint64_t> next_file_id{1};
  file_id_ = next_file_id.fetch_add(1, std::memory_order_relaxed);
  encoded_ = true;
  blocks_ = std::move(blocks);
  block_first_keys_ = std::move(block_first_keys);
  first_key_ = std::move(first_key);
  last_key_ = std::move(last_key);
  count_ = static_cast<std::size_t>(count);
  bloom_ = std::move(bloom);
  bloom_bits_ = bloom_bits;
  stride_ = std::max<std::size_t>(1, stride);
  restart_interval_ = std::max<std::size_t>(1, restart_interval);
  block_bytes_.reserve(blocks_.size());
  for (const auto& b : blocks_) {
    block_bytes_.push_back(b.data.size());
    bytes_ += b.data.size() + sizeof(EncodedBlock);
  }
  for (const auto& k : block_first_keys_) bytes_ += key_bytes(k) + sizeof(Key);
  bytes_ += bloom_.size() * sizeof(std::uint64_t);
  finish_block_accounting();
}

std::shared_ptr<RFile> RFile::from_sorted(std::vector<Cell> cells,
                                          const RFileOptions& options) {
#ifndef NDEBUG
  for (std::size_t i = 1; i < cells.size(); ++i) {
    assert(!(cells[i].key < cells[i - 1].key) && "RFile cells must be sorted");
  }
#endif
  return std::shared_ptr<RFile>(new RFile(std::move(cells), options));
}

void RFile::build_index(const RFileOptions& options) {
  const auto& cells = *cells_;
  index_.reserve(cells.size() / stride_ + 1);
  block_bytes_.reserve(cells.size() / stride_ + 1);
  for (std::size_t i = 0; i < cells.size(); i += stride_) {
    index_.push_back(i);
    // Byte charge of the data block [i, i + stride): what this block
    // costs the block cache while resident.
    std::size_t charge = 0;
    const std::size_t end = std::min(cells.size(), i + stride_);
    for (std::size_t j = i; j < end; ++j) {
      const Cell& c = cells[j];
      charge += c.key.row.size() + c.key.family.size() +
                c.key.qualifier.size() + c.key.visibility.size() +
                c.value.size() + sizeof(Cell);
    }
    block_bytes_.push_back(charge);
  }
  bytes_ += (index_.size() + block_bytes_.size()) * sizeof(std::size_t);
  (void)options;
}

void RFile::build_bloom_from_cells(const std::vector<Cell>& cells,
                                   const RFileOptions& options) {
  if (options.bloom_bits_per_row == 0 || cells.empty()) return;
  std::size_t distinct = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i == 0 || cells[i].key.row != cells[i - 1].key.row) ++distinct;
  }
  bloom_bits_ = std::max<std::size_t>(64, distinct * options.bloom_bits_per_row);
  bloom_.assign((bloom_bits_ + 63) / 64, 0);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0 && cells[i].key.row == cells[i - 1].key.row) continue;
    const auto h1 = static_cast<std::uint64_t>(
        std::hash<std::string>{}(cells[i].key.row));
    const auto h2 = splitmix64(h1);
    for (const auto h : {h1, h2}) {
      const std::size_t bit = h % bloom_bits_;
      bloom_[bit / 64] |= 1ull << (bit % 64);
    }
  }
  bytes_ += bloom_.size() * sizeof(std::uint64_t);
}

void RFile::encode_cells(const std::vector<Cell>& cells,
                         const RFileOptions& options) {
  TRACE_SPAN("rfile.encode");
  const std::size_t nblocks = (cells.size() + stride_ - 1) / stride_;
  blocks_.reserve(nblocks);
  block_first_keys_.reserve(nblocks);
  block_bytes_.reserve(nblocks);
  std::size_t raw_total = 0;
  for (std::size_t i = 0; i < cells.size(); i += stride_) {
    const std::size_t n = std::min(stride_, cells.size() - i);
    for (std::size_t j = i; j < i + n; ++j) {
      raw_total += key_bytes(cells[j].key) + cells[j].value.size() +
                   sizeof(Timestamp) + 1;
    }
    EncodedBlock block;
    block.count = static_cast<std::uint32_t>(n);
    std::string raw =
        blockcodec::encode_block(cells.data() + i, n, restart_interval_);
    block.raw_bytes = static_cast<std::uint32_t>(raw.size());
    if (options.compressor == RFileCompressor::kLz) {
      std::string packed = util::lz_compress(raw);
      if (packed.size() < raw.size()) {
        block.data = std::move(packed);
        block.compressed = true;
      }
    }
    if (!block.compressed) block.data = std::move(raw);
    block.data.shrink_to_fit();
    block.crc = crc32(block.data.data(), block.data.size());
    block_first_keys_.push_back(cells[i].key);
    block_bytes_.push_back(block.data.size());
    bytes_ += block.data.size() + sizeof(EncodedBlock) +
              key_bytes(cells[i].key) + sizeof(Key);
    blocks_.push_back(std::move(block));
  }
  std::size_t packed_total = 0;
  for (const auto& b : blocks_) packed_total += b.data.size();
  encode_raw_bytes().inc(raw_total);
  encode_packed_bytes().inc(packed_total);
  const auto raw_cum = encode_raw_bytes().value();
  const auto packed_cum = encode_packed_bytes().value();
  if (packed_cum > 0) {
    compression_ratio_gauge().set(
        static_cast<std::int64_t>(raw_cum * 1000 / packed_cum));
  }
}

void RFile::finish_block_accounting() {
  total_block_bytes_ = 0;
  for (const auto b : block_bytes_) total_block_bytes_ += b;
}

// ---- encoded-block access -----------------------------------------------

namespace {
/// Decompressed-block scratch, one per thread: RFiles are shared across
/// scan threads, and the scratch keeps repeated point lookups from
/// allocating a fresh buffer per block.
std::string& decompress_scratch() {
  thread_local std::string scratch;
  return scratch;
}
}  // namespace

void RFile::decode_block_into(std::size_t b, std::vector<Cell>& out) const {
  TRACE_SPAN("rfile.block_decode");
  const EncodedBlock& block = blocks_[b];
  std::string_view raw(block.data);
  if (block.compressed) {
    std::string& scratch = decompress_scratch();
    if (!util::lz_decompress(block.data, scratch, block.raw_bytes)) {
      throw std::logic_error("RFile: corrupt compressed block (post-CRC)");
    }
    raw = scratch;
  }
  if (!blockcodec::decode_block(raw, block.count, out)) {
    throw std::logic_error("RFile: corrupt encoded block (post-CRC)");
  }
  decode_blocks().inc();
  decode_raw_bytes().inc(raw.size());
}

std::size_t RFile::in_block_lower_bound(std::size_t b, const Key& key) const {
  const EncodedBlock& block = blocks_[b];
  std::string_view raw(block.data);
  if (block.compressed) {
    std::string& scratch = decompress_scratch();
    if (!util::lz_decompress(block.data, scratch, block.raw_bytes)) {
      throw std::logic_error("RFile: corrupt compressed block (post-CRC)");
    }
    raw = scratch;
  }
  return blockcodec::block_lower_bound(raw, block.count, restart_interval_,
                                       key);
}

// ---- pruning ------------------------------------------------------------

bool RFile::may_contain_row(const std::string& row) const {
  if (empty()) return false;
  if (row < first_key_.row || last_key_.row < row) return false;
  if (bloom_.empty()) return true;
  const auto h1 = static_cast<std::uint64_t>(std::hash<std::string>{}(row));
  const auto h2 = splitmix64(h1);
  for (const auto h : {h1, h2}) {
    const std::size_t bit = h % bloom_bits_;
    if (!(bloom_[bit / 64] & (1ull << (bit % 64)))) return false;
  }
  return true;
}

bool RFile::may_intersect(const Range& range) const {
  if (empty()) return false;
  // Bounds pruning: the whole file sorts before the start or after the
  // end of the range (conservative about inclusivity edge cases).
  if (range.has_start && last_key_ < range.start) return false;
  if (range.has_end && range.end < first_key_) return false;
  if (const std::string* row = single_row_of(range)) {
    return may_contain_row(*row);
  }
  return true;
}

std::size_t RFile::lower_bound_pos(const Key& key) const {
  if (encoded_) {
    if (count_ == 0) return 0;
    // Narrow to the one block that can hold the answer: the last block
    // whose first key is < key (an earlier block cannot contain a
    // larger-or-equal first hit; a later block's first key is already
    // >= key). Duplicate full keys across a block boundary resolve to
    // the earlier block, matching plain-mode lower_bound semantics.
    const auto ge = std::partition_point(
        block_first_keys_.begin(), block_first_keys_.end(),
        [&](const Key& k) { return k < key; });
    if (ge == block_first_keys_.begin()) return 0;
    const auto b =
        static_cast<std::size_t>(ge - block_first_keys_.begin()) - 1;
    return b * stride_ + in_block_lower_bound(b, key);
  }
  const auto& cells = *cells_;
  // Narrow to one stride window via the sparse index, then binary-search
  // only that window.
  std::size_t lo = 0;
  std::size_t hi = cells.size();
  if (!index_.empty()) {
    const auto first_ge = std::partition_point(
        index_.begin(), index_.end(),
        [&](std::size_t pos) { return cells[pos].key < key; });
    lo = first_ge == index_.begin() ? 0 : *(first_ge - 1);
    // cells[*first_ge].key >= key, so the answer is at or before it.
    hi = first_ge == index_.end() ? cells.size() : *first_ge;
  }
  const auto it = std::lower_bound(
      cells.begin() + static_cast<std::ptrdiff_t>(lo),
      cells.begin() + static_cast<std::ptrdiff_t>(hi), key,
      [](const Cell& c, const Key& k) { return c.key < k; });
  const auto pos = static_cast<std::size_t>(it - cells.begin());
  // When the window [lo, hi) held only smaller keys the answer is hi
  // itself (the indexed cell known to be >= key), which lower_bound
  // already returns.
  return pos;
}

// ---- iterators ----------------------------------------------------------

/// Iterator over one plain (materialized) RFile with pruning seeks:
/// consults the file's bounds + Bloom filter to skip impossible ranges
/// in O(1), and the sparse block index to narrow in-range seeks.
class RFileIterator : public SortedKVIterator {
 public:
  explicit RFileIterator(std::shared_ptr<const RFile> file,
                         BlockCache* cache = nullptr)
      : file_(std::move(file)), cache_(cache) {}

  void seek(const Range& range) override {
    util::fault::point(util::fault::sites::kRFileSeek);
    pos_ = limit_ = 0;
    if (!file_->may_intersect(range)) return;  // pruned: exhausted
    const auto& cells = *file_->cells_;
    if (range.has_start) {
      pos_ = file_->lower_bound_pos(range.start);
      while (pos_ < cells.size() && !range.start_inclusive &&
             cells[pos_].key == range.start) {
        ++pos_;
      }
    }
    if (range.has_end) {
      limit_ = file_->lower_bound_pos(range.end);
      while (limit_ < cells.size() && range.end_inclusive &&
             cells[limit_].key == range.end) {
        ++limit_;
      }
    } else {
      limit_ = cells.size();
    }
    if (limit_ < pos_) limit_ = pos_;
    if (cache_ && pos_ < limit_) {
      // The seek landed inside a block: that block is the first read.
      block_end_ = pos_ - pos_ % file_->block_stride();
      touch_through(pos_);
    }
  }

  bool has_top() const override { return pos_ < limit_; }
  const Key& top_key() const override { return (*file_->cells_)[pos_].key; }
  const Value& top_value() const override {
    return (*file_->cells_)[pos_].value;
  }
  void next() override {
    ++pos_;
    if (cache_ && pos_ < limit_) touch_through(pos_);
  }

  std::size_t next_block(CellBlock& out, std::size_t max) override {
    const auto& cells = *file_->cells_;
    const std::size_t n = std::min(max, limit_ - pos_);
    for (std::size_t i = 0; i < n; ++i) {
      const Cell& c = cells[pos_ + i];
      out.append(c.key, c.value);
    }
    pos_ += n;
    if (cache_ && n > 0) touch_through(std::min(pos_, limit_ - 1));
    return n;
  }

  std::size_t next_block_until(CellBlock& out, std::size_t max,
                               const Key& bound, bool allow_equal) override {
    // Gallop + binary search for the end of the qualifying run (keys
    // ascend, so the bound test is a true-prefix predicate), then copy.
    const std::size_t cap = std::min(max, limit_ - pos_);
    const Cell* base = file_->cells_->data() + pos_;
    auto within = [&](const Cell& c) {
      const auto cmp = c.key <=> bound;
      return cmp < 0 || (cmp == 0 && allow_equal);
    };
    if (cap == 0 || !within(base[0])) return 0;
    std::size_t lo = 1, hi = 1;
    while (hi < cap && within(base[hi])) {
      lo = hi + 1;
      hi *= 2;
    }
    if (hi > cap) hi = cap;
    const std::size_t n = static_cast<std::size_t>(
        std::partition_point(base + lo, base + hi, within) - base);
    for (std::size_t i = 0; i < n; ++i) out.append(base[i].key, base[i].value);
    pos_ += n;
    if (cache_ && n > 0) touch_through(std::min(pos_, limit_ - 1));
    return n;
  }

 private:
  /// Pulls every block covering positions up to `last` (inclusive)
  /// through the cache. Iteration is forward-only, so `block_end_`
  /// (end position of the newest touched block) makes each block cost
  /// one cache touch per scan pass.
  void touch_through(std::size_t last) {
    const std::size_t stride = file_->block_stride();
    while (block_end_ <= last) {
      const std::size_t block = block_end_ / stride;
      cache_->touch(file_->file_id(), block, file_->cells_,
                    file_->block_charge(block));
      block_end_ += stride;
    }
  }

  std::shared_ptr<const RFile> file_;
  BlockCache* cache_ = nullptr;
  std::size_t pos_ = 0;
  std::size_t limit_ = 0;
  std::size_t block_end_ = 0;  ///< first position past the touched blocks
};

/// Iterator over one prefix-encoded RFile. Blocks decode on demand:
/// through the BlockCache when one is attached (the pin holds the
/// DECODED cells, charged at encoded size, so hot blocks never
/// re-decode), or into a private reusable buffer otherwise. Invariant:
/// whenever has_top(), the block containing pos_ is loaded.
class EncodedRFileIterator : public SortedKVIterator {
 public:
  explicit EncodedRFileIterator(std::shared_ptr<const RFile> file,
                                BlockCache* cache = nullptr)
      : file_(std::move(file)), cache_(cache) {}

  void seek(const Range& range) override {
    util::fault::point(util::fault::sites::kRFileSeek);
    pos_ = limit_ = 0;
    if (!file_->may_intersect(range)) return;  // pruned: exhausted
    const std::size_t total = file_->count_;
    if (range.has_start) {
      pos_ = file_->lower_bound_pos(range.start);
      while (pos_ < total && !range.start_inclusive &&
             key_at(pos_) == range.start) {
        ++pos_;
      }
    }
    if (range.has_end) {
      limit_ = file_->lower_bound_pos(range.end);
      while (limit_ < total && range.end_inclusive &&
             key_at(limit_) == range.end) {
        ++limit_;
      }
    } else {
      limit_ = total;
    }
    if (limit_ < pos_) limit_ = pos_;
    if (pos_ < limit_) load_block(pos_ / file_->stride_);
  }

  bool has_top() const override { return pos_ < limit_; }
  const Key& top_key() const override { return cell_at(pos_).key; }
  const Value& top_value() const override { return cell_at(pos_).value; }
  void next() override {
    ++pos_;
    if (pos_ < limit_) ensure_block(pos_);
  }

  std::size_t next_block(CellBlock& out, std::size_t max) override {
    std::size_t appended = 0;
    while (appended < max && pos_ < limit_) {
      ensure_block(pos_);
      const std::size_t base = cur_block_ * file_->stride_;
      const std::size_t block_end = std::min(limit_, base + cur_->size());
      const std::size_t take = std::min(max - appended, block_end - pos_);
      const Cell* cells = cur_->data() + (pos_ - base);
      for (std::size_t i = 0; i < take; ++i) {
        out.append(cells[i].key, cells[i].value);
      }
      pos_ += take;
      appended += take;
    }
    if (pos_ < limit_) ensure_block(pos_);
    return appended;
  }

  std::size_t next_block_until(CellBlock& out, std::size_t max,
                               const Key& bound, bool allow_equal) override {
    auto within = [&](const Cell& c) {
      const auto cmp = c.key <=> bound;
      return cmp < 0 || (cmp == 0 && allow_equal);
    };
    std::size_t appended = 0;
    while (appended < max && pos_ < limit_) {
      ensure_block(pos_);
      const std::size_t base = cur_block_ * file_->stride_;
      const std::size_t block_end = std::min(limit_, base + cur_->size());
      const std::size_t cap = std::min(max - appended, block_end - pos_);
      const Cell* cells = cur_->data() + (pos_ - base);
      if (cap == 0 || !within(cells[0])) break;
      // Gallop + binary search inside this decoded block.
      std::size_t lo = 1, hi = 1;
      while (hi < cap && within(cells[hi])) {
        lo = hi + 1;
        hi *= 2;
      }
      if (hi > cap) hi = cap;
      const std::size_t n = static_cast<std::size_t>(
          std::partition_point(cells + lo, cells + hi, within) - cells);
      for (std::size_t i = 0; i < n; ++i) {
        out.append(cells[i].key, cells[i].value);
      }
      pos_ += n;
      appended += n;
      if (n < cap) break;  // stopped by the bound, not the block edge
    }
    if (pos_ < limit_) ensure_block(pos_);
    return appended;
  }

 private:
  const Cell& cell_at(std::size_t pos) const {
    return (*cur_)[pos - cur_block_ * file_->stride_];
  }

  const Key& key_at(std::size_t pos) {
    ensure_block(pos);
    return cell_at(pos).key;
  }

  void ensure_block(std::size_t pos) { load_block(pos / file_->stride_); }

  void load_block(std::size_t b) {
    if (b == cur_block_ && cur_) return;
    if (cache_) {
      if (auto pin = cache_->find(file_->file_id(), b)) {
        cur_ = std::static_pointer_cast<const std::vector<Cell>>(pin);
      } else {
        auto decoded = std::make_shared<std::vector<Cell>>();
        file_->decode_block_into(b, *decoded);
        cache_->insert(file_->file_id(), b, decoded, file_->block_charge(b));
        cur_ = std::move(decoded);
      }
    } else {
      // No cache: decode into a private buffer whose slots (and their
      // string capacity) are reused across blocks.
      if (!own_) own_ = std::make_shared<std::vector<Cell>>();
      file_->decode_block_into(b, *own_);
      cur_ = own_;
    }
    cur_block_ = b;
  }

  std::shared_ptr<const RFile> file_;
  BlockCache* cache_ = nullptr;
  std::size_t pos_ = 0;
  std::size_t limit_ = 0;
  std::size_t cur_block_ = static_cast<std::size_t>(-1);
  std::shared_ptr<const std::vector<Cell>> cur_;  ///< decoded cur_block_
  std::shared_ptr<std::vector<Cell>> own_;        ///< cache-less buffer
};

IterPtr RFile::iterator() const {
  if (encoded_) return std::make_unique<EncodedRFileIterator>(shared_from_this());
  return std::make_unique<RFileIterator>(shared_from_this());
}

IterPtr RFile::iterator(BlockCache* cache) const {
  if (encoded_) {
    return std::make_unique<EncodedRFileIterator>(shared_from_this(), cache);
  }
  return std::make_unique<RFileIterator>(shared_from_this(), cache);
}

// ---- sampling -----------------------------------------------------------

std::vector<std::string> RFile::sample_rows(std::size_t n) const {
  std::vector<std::string> rows;
  if (count_ == 0 || n == 0) return rows;
  rows.reserve(n);
  // Round the stride UP: a floor stride of size/n oversamples the head
  // and can exhaust the budget before the tail rows are ever visited,
  // skewing parallel-scan partitions toward low keys.
  const std::size_t stride = (count_ + n - 1) / n;
  if (encoded_) {
    std::vector<Cell> scratch;
    std::size_t loaded = static_cast<std::size_t>(-1);
    for (std::size_t i = 0; i < count_ && rows.size() < n; i += stride) {
      const std::size_t b = i / stride_;
      if (b != loaded) {
        decode_block_into(b, scratch);
        loaded = b;
      }
      const std::string& row = scratch[i - b * stride_].key.row;
      if (rows.empty() || rows.back() != row) rows.push_back(row);
    }
  } else {
    const auto& cells = *cells_;
    for (std::size_t i = 0; i < cells.size() && rows.size() < n; i += stride) {
      if (rows.empty() || rows.back() != cells[i].key.row) {
        rows.push_back(cells[i].key.row);
      }
    }
  }
  // Always consider the last distinct row so the sample spans the file.
  const std::string& last_row = last_key_.row;
  if (!rows.empty() && rows.back() != last_row) {
    if (rows.size() < n) {
      rows.push_back(last_row);
    } else {
      rows.back() = last_row;
    }
  }
  return rows;
}

// ---- disk formats -------------------------------------------------------
// RFL2 (plain): magic(4) | payload_len(8) | payload | crc32(payload)(4)
// RFL3 (packed): magic(4) | header_len(8) | header | crc32(header)(4) |
//                block data bytes, concatenated (lengths + per-block
//                crc32s live in the header)

bool RFile::write_to(const std::string& path) const {
  util::fault::point(util::fault::sites::kRFileWrite);
  return encoded_ ? write_rfl3(path) : write_rfl2(path);
}

bool RFile::write_rfl2(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  std::string payload;
  payload.reserve(bytes_ + cells_->size() * 8);
  const auto count = static_cast<std::uint64_t>(cells_->size());
  append_raw(payload, &count, sizeof(count));
  for (const auto& c : *cells_) {
    append_string(payload, c.key.row);
    append_string(payload, c.key.family);
    append_string(payload, c.key.qualifier);
    append_string(payload, c.key.visibility);
    append_raw(payload, &c.key.ts, sizeof(c.key.ts));
    const char del = c.key.deleted ? 1 : 0;
    append_raw(payload, &del, 1);
    append_string(payload, c.value);
  }
  const auto payload_len = static_cast<std::uint64_t>(payload.size());
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&payload_len), sizeof(payload_len));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return static_cast<bool>(out);
}

bool RFile::write_rfl3(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  std::string header;
  const auto count = static_cast<std::uint64_t>(count_);
  const auto stride = static_cast<std::uint64_t>(stride_);
  const auto restart = static_cast<std::uint64_t>(restart_interval_);
  append_raw(header, &count, sizeof(count));
  append_raw(header, &stride, sizeof(stride));
  append_raw(header, &restart, sizeof(restart));
  const auto bloom_bits = static_cast<std::uint64_t>(bloom_bits_);
  const auto bloom_words = static_cast<std::uint64_t>(bloom_.size());
  append_raw(header, &bloom_bits, sizeof(bloom_bits));
  append_raw(header, &bloom_words, sizeof(bloom_words));
  append_raw(header, bloom_.data(), bloom_.size() * sizeof(std::uint64_t));
  if (count_ > 0) {
    append_key(header, first_key_);
    append_key(header, last_key_);
  }
  const auto nblocks = static_cast<std::uint64_t>(blocks_.size());
  append_raw(header, &nblocks, sizeof(nblocks));
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    const EncodedBlock& block = blocks_[b];
    append_key(header, block_first_keys_[b]);
    append_raw(header, &block.count, sizeof(block.count));
    append_raw(header, &block.raw_bytes, sizeof(block.raw_bytes));
    const auto data_len = static_cast<std::uint32_t>(block.data.size());
    append_raw(header, &data_len, sizeof(data_len));
    const char compressed = block.compressed ? 1 : 0;
    append_raw(header, &compressed, 1);
    append_raw(header, &block.crc, sizeof(block.crc));
  }
  const auto header_len = static_cast<std::uint64_t>(header.size());
  const std::uint32_t header_crc = crc32(header.data(), header.size());
  out.write(reinterpret_cast<const char*>(&kMagic3), sizeof(kMagic3));
  out.write(reinterpret_cast<const char*>(&header_len), sizeof(header_len));
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(reinterpret_cast<const char*>(&header_crc), sizeof(header_crc));
  for (const auto& block : blocks_) {
    out.write(block.data.data(),
              static_cast<std::streamsize>(block.data.size()));
  }
  return static_cast<bool>(out);
}

std::shared_ptr<RFile> RFile::read_from(const std::string& path,
                                        const RFileOptions& options) {
  util::fault::point(util::fault::sites::kRFileRead);
  std::ifstream in(path, std::ios::binary);
  if (!in) return nullptr;
  std::uint32_t magic = 0;
  if (!in.read(reinterpret_cast<char*>(&magic), sizeof(magic))) return nullptr;
  // Version dispatch: RFL2 files written before the packed layout still
  // load (and re-encode in memory when the options ask for it); RFL3
  // files keep their packed blocks verbatim.
  if (magic == kMagic) return read_rfl2(in, options);
  if (magic == kMagic3) return read_rfl3(in, options);
  return nullptr;
}

std::shared_ptr<RFile> RFile::read_rfl2(std::ifstream& in,
                                        const RFileOptions& options) {
  std::uint64_t payload_len = 0;
  if (!in.read(reinterpret_cast<char*>(&payload_len), sizeof(payload_len))) {
    return nullptr;
  }
  std::string payload(payload_len, '\0');
  if (!in.read(payload.data(), static_cast<std::streamsize>(payload_len))) {
    return nullptr;  // truncated
  }
  std::uint32_t stored_crc = 0;
  if (!in.read(reinterpret_cast<char*>(&stored_crc), sizeof(stored_crc))) {
    return nullptr;
  }
  if (crc32(payload.data(), payload.size()) != stored_crc) {
    return nullptr;  // corrupt (bit flips, partial writes)
  }
  PayloadReader reader{payload.data(), payload.size()};
  std::uint64_t count = 0;
  if (!reader.read_raw(&count, sizeof(count))) return nullptr;
  std::vector<Cell> cells;
  cells.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Cell c;
    if (!reader.read_string(c.key.row) || !reader.read_string(c.key.family) ||
        !reader.read_string(c.key.qualifier) ||
        !reader.read_string(c.key.visibility)) {
      return nullptr;
    }
    if (!reader.read_raw(&c.key.ts, sizeof(c.key.ts))) return nullptr;
    char del = 0;
    if (!reader.read_raw(&del, 1)) return nullptr;
    c.key.deleted = del != 0;
    if (!reader.read_string(c.value)) return nullptr;
    if (!cells.empty() && c.key < cells.back().key) return nullptr;  // corrupt
    cells.push_back(std::move(c));
  }
  if (reader.remaining != 0) return nullptr;  // trailing garbage
  return from_sorted(std::move(cells), options);
}

std::shared_ptr<RFile> RFile::read_rfl3(std::ifstream& in,
                                        const RFileOptions& options) {
  std::uint64_t header_len = 0;
  if (!in.read(reinterpret_cast<char*>(&header_len), sizeof(header_len))) {
    return nullptr;
  }
  std::string header(header_len, '\0');
  if (!in.read(header.data(), static_cast<std::streamsize>(header_len))) {
    return nullptr;  // truncated
  }
  std::uint32_t stored_crc = 0;
  if (!in.read(reinterpret_cast<char*>(&stored_crc), sizeof(stored_crc))) {
    return nullptr;
  }
  if (crc32(header.data(), header.size()) != stored_crc) {
    return nullptr;  // corrupt header
  }
  PayloadReader reader{header.data(), header.size()};
  std::uint64_t count = 0, stride = 0, restart = 0;
  if (!reader.read_raw(&count, sizeof(count)) ||
      !reader.read_raw(&stride, sizeof(stride)) ||
      !reader.read_raw(&restart, sizeof(restart))) {
    return nullptr;
  }
  if (stride == 0 || restart == 0) return nullptr;
  std::uint64_t bloom_bits = 0, bloom_words = 0;
  if (!reader.read_raw(&bloom_bits, sizeof(bloom_bits)) ||
      !reader.read_raw(&bloom_words, sizeof(bloom_words))) {
    return nullptr;
  }
  if (bloom_words > reader.remaining / sizeof(std::uint64_t)) return nullptr;
  std::vector<std::uint64_t> bloom(bloom_words);
  if (!reader.read_raw(bloom.data(), bloom_words * sizeof(std::uint64_t))) {
    return nullptr;
  }
  Key first_key, last_key;
  if (count > 0) {
    if (!read_key(reader, first_key) || !read_key(reader, last_key)) {
      return nullptr;
    }
    if (last_key < first_key) return nullptr;
  }
  std::uint64_t nblocks = 0;
  if (!reader.read_raw(&nblocks, sizeof(nblocks))) return nullptr;
  if (nblocks != (count + stride - 1) / stride) return nullptr;
  std::vector<EncodedBlock> blocks;
  std::vector<Key> first_keys;
  blocks.reserve(nblocks);
  first_keys.reserve(nblocks);
  std::uint64_t cells_seen = 0;
  for (std::uint64_t b = 0; b < nblocks; ++b) {
    Key fk;
    if (!read_key(reader, fk)) return nullptr;
    if (!first_keys.empty() && fk < first_keys.back()) return nullptr;
    EncodedBlock block;
    std::uint32_t data_len = 0;
    char compressed = 0;
    if (!reader.read_raw(&block.count, sizeof(block.count)) ||
        !reader.read_raw(&block.raw_bytes, sizeof(block.raw_bytes)) ||
        !reader.read_raw(&data_len, sizeof(data_len)) ||
        !reader.read_raw(&compressed, 1) ||
        !reader.read_raw(&block.crc, sizeof(block.crc))) {
      return nullptr;
    }
    if (block.count == 0 || block.count > stride) return nullptr;
    block.compressed = compressed != 0;
    block.data.resize(data_len);  // filled from the data section below
    cells_seen += block.count;
    blocks.push_back(std::move(block));
    first_keys.push_back(std::move(fk));
  }
  if (reader.remaining != 0) return nullptr;  // trailing header garbage
  if (cells_seen != count) return nullptr;
  for (auto& block : blocks) {
    if (!in.read(block.data.data(),
                 static_cast<std::streamsize>(block.data.size()))) {
      return nullptr;  // truncated data section
    }
    if (crc32(block.data.data(), block.data.size()) != block.crc) {
      return nullptr;  // per-block corruption (bit flips, torn writes)
    }
  }
  if (in.peek() != std::ifstream::traits_type::eof()) return nullptr;
  (void)options;  // the stored layout wins for packed files
  return std::shared_ptr<RFile>(new RFile(
      std::move(blocks), std::move(first_keys), std::move(first_key),
      std::move(last_key), count, std::move(bloom),
      static_cast<std::size_t>(bloom_bits), static_cast<std::size_t>(stride),
      static_cast<std::size_t>(restart)));
}

}  // namespace graphulo::nosql
