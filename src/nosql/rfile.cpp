#include "nosql/rfile.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstring>
#include <fstream>
#include <functional>

#include "nosql/block_cache.hpp"
#include "util/checksum.hpp"
#include "util/fault.hpp"

namespace graphulo::nosql {

using util::crc32;

namespace {

constexpr std::uint32_t kMagic = 0x52464c32;  // "RFL2" (RFL1 + CRC trailer)

// ---- payload (de)serialization -----------------------------------------

void append_raw(std::string& out, const void* p, std::size_t n) {
  out.append(static_cast<const char*>(p), n);
}

void append_string(std::string& out, const std::string& s) {
  const auto len = static_cast<std::uint32_t>(s.size());
  append_raw(out, &len, sizeof(len));
  out.append(s);
}

/// Cursor over an in-memory payload; read_* return false on truncation.
struct PayloadReader {
  const char* p;
  std::size_t remaining;

  bool read_raw(void* dst, std::size_t n) {
    if (remaining < n) return false;
    std::memcpy(dst, p, n);
    p += n;
    remaining -= n;
    return true;
  }

  bool read_string(std::string& s) {
    std::uint32_t len = 0;
    if (!read_raw(&len, sizeof(len))) return false;
    if (remaining < len) return false;
    s.assign(p, len);
    p += len;
    remaining -= len;
    return true;
  }
};

// ---- row Bloom hashing --------------------------------------------------

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Returns the single row `range` can contain cells of, or nullptr when
/// the range spans more than one row. Recognizes both end.row ==
/// start.row and the Range::exact_row shape (exclusive end at the
/// minimal key of the row successor start.row + '\0').
const std::string* single_row_of(const Range& range) {
  if (!range.has_start || !range.has_end) return nullptr;
  if (range.end.row == range.start.row) return &range.start.row;
  if (!range.end_inclusive && range.end.row.size() == range.start.row.size() + 1 &&
      range.end.row.back() == '\0' &&
      range.end.row.compare(0, range.start.row.size(), range.start.row) == 0 &&
      !(min_key_for_row(range.end.row) < range.end)) {
    // No key of the successor row clears the exclusive end bound, so
    // every containable key has exactly start.row.
    return &range.start.row;
  }
  return nullptr;
}

}  // namespace

// ---- construction -------------------------------------------------------

RFile::RFile(std::vector<Cell> cells, const RFileOptions& options) {
  static std::atomic<std::uint64_t> next_file_id{1};
  file_id_ = next_file_id.fetch_add(1, std::memory_order_relaxed);
  for (const auto& c : cells) {
    bytes_ += c.key.row.size() + c.key.family.size() + c.key.qualifier.size() +
              c.key.visibility.size() + c.value.size() + sizeof(Key);
  }
  cells_ = std::make_shared<const std::vector<Cell>>(std::move(cells));
  build_index(options);
  build_bloom(options);
}

std::shared_ptr<RFile> RFile::from_sorted(std::vector<Cell> cells,
                                          const RFileOptions& options) {
#ifndef NDEBUG
  for (std::size_t i = 1; i < cells.size(); ++i) {
    assert(!(cells[i].key < cells[i - 1].key) && "RFile cells must be sorted");
  }
#endif
  return std::shared_ptr<RFile>(new RFile(std::move(cells), options));
}

void RFile::build_index(const RFileOptions& options) {
  const auto& cells = *cells_;
  stride_ = std::max<std::size_t>(1, options.index_stride);
  index_.reserve(cells.size() / stride_ + 1);
  block_bytes_.reserve(cells.size() / stride_ + 1);
  for (std::size_t i = 0; i < cells.size(); i += stride_) {
    index_.push_back(i);
    // Byte charge of the data block [i, i + stride): what this block
    // costs the block cache while resident.
    std::size_t charge = 0;
    const std::size_t end = std::min(cells.size(), i + stride_);
    for (std::size_t j = i; j < end; ++j) {
      const Cell& c = cells[j];
      charge += c.key.row.size() + c.key.family.size() +
                c.key.qualifier.size() + c.key.visibility.size() +
                c.value.size() + sizeof(Cell);
    }
    block_bytes_.push_back(charge);
  }
  bytes_ += (index_.size() + block_bytes_.size()) * sizeof(std::size_t);
}

void RFile::build_bloom(const RFileOptions& options) {
  const auto& cells = *cells_;
  if (options.bloom_bits_per_row == 0 || cells.empty()) return;
  std::size_t distinct = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i == 0 || cells[i].key.row != cells[i - 1].key.row) ++distinct;
  }
  bloom_bits_ = std::max<std::size_t>(64, distinct * options.bloom_bits_per_row);
  bloom_.assign((bloom_bits_ + 63) / 64, 0);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0 && cells[i].key.row == cells[i - 1].key.row) continue;
    const auto h1 = static_cast<std::uint64_t>(
        std::hash<std::string>{}(cells[i].key.row));
    const auto h2 = splitmix64(h1);
    for (const auto h : {h1, h2}) {
      const std::size_t bit = h % bloom_bits_;
      bloom_[bit / 64] |= 1ull << (bit % 64);
    }
  }
  bytes_ += bloom_.size() * sizeof(std::uint64_t);
}

bool RFile::may_contain_row(const std::string& row) const {
  if (empty()) return false;
  if (row < first_key().row || last_key().row < row) return false;
  if (bloom_.empty()) return true;
  const auto h1 = static_cast<std::uint64_t>(std::hash<std::string>{}(row));
  const auto h2 = splitmix64(h1);
  for (const auto h : {h1, h2}) {
    const std::size_t bit = h % bloom_bits_;
    if (!(bloom_[bit / 64] & (1ull << (bit % 64)))) return false;
  }
  return true;
}

bool RFile::may_intersect(const Range& range) const {
  if (empty()) return false;
  // Bounds pruning: the whole file sorts before the start or after the
  // end of the range (conservative about inclusivity edge cases).
  if (range.has_start && last_key() < range.start) return false;
  if (range.has_end && range.end < first_key()) return false;
  if (const std::string* row = single_row_of(range)) {
    return may_contain_row(*row);
  }
  return true;
}

std::size_t RFile::lower_bound_pos(const Key& key) const {
  const auto& cells = *cells_;
  // Narrow to one stride window via the sparse index, then binary-search
  // only that window.
  std::size_t lo = 0;
  std::size_t hi = cells.size();
  if (!index_.empty()) {
    const auto first_ge = std::partition_point(
        index_.begin(), index_.end(),
        [&](std::size_t pos) { return cells[pos].key < key; });
    lo = first_ge == index_.begin() ? 0 : *(first_ge - 1);
    // cells[*first_ge].key >= key, so the answer is at or before it.
    hi = first_ge == index_.end() ? cells.size() : *first_ge;
  }
  const auto it = std::lower_bound(
      cells.begin() + static_cast<std::ptrdiff_t>(lo),
      cells.begin() + static_cast<std::ptrdiff_t>(hi), key,
      [](const Cell& c, const Key& k) { return c.key < k; });
  const auto pos = static_cast<std::size_t>(it - cells.begin());
  // When the window [lo, hi) held only smaller keys the answer is hi
  // itself (the indexed cell known to be >= key), which lower_bound
  // already returns.
  return pos;
}

// ---- iterator -----------------------------------------------------------

/// Iterator over one RFile with pruning seeks: consults the file's
/// bounds + Bloom filter to skip impossible ranges in O(1), and the
/// sparse block index to narrow in-range seeks.
class RFileIterator : public SortedKVIterator {
 public:
  explicit RFileIterator(std::shared_ptr<const RFile> file,
                         BlockCache* cache = nullptr)
      : file_(std::move(file)), cache_(cache) {}

  void seek(const Range& range) override {
    util::fault::point(util::fault::sites::kRFileSeek);
    pos_ = limit_ = 0;
    if (!file_->may_intersect(range)) return;  // pruned: exhausted
    const auto& cells = *file_->cells_;
    if (range.has_start) {
      pos_ = file_->lower_bound_pos(range.start);
      while (pos_ < cells.size() && !range.start_inclusive &&
             cells[pos_].key == range.start) {
        ++pos_;
      }
    }
    if (range.has_end) {
      limit_ = file_->lower_bound_pos(range.end);
      while (limit_ < cells.size() && range.end_inclusive &&
             cells[limit_].key == range.end) {
        ++limit_;
      }
    } else {
      limit_ = cells.size();
    }
    if (limit_ < pos_) limit_ = pos_;
    if (cache_ && pos_ < limit_) {
      // The seek landed inside a block: that block is the first read.
      block_end_ = pos_ - pos_ % file_->block_stride();
      touch_through(pos_);
    }
  }

  bool has_top() const override { return pos_ < limit_; }
  const Key& top_key() const override { return (*file_->cells_)[pos_].key; }
  const Value& top_value() const override {
    return (*file_->cells_)[pos_].value;
  }
  void next() override {
    ++pos_;
    if (cache_ && pos_ < limit_) touch_through(pos_);
  }

  std::size_t next_block(CellBlock& out, std::size_t max) override {
    const auto& cells = *file_->cells_;
    const std::size_t n = std::min(max, limit_ - pos_);
    for (std::size_t i = 0; i < n; ++i) {
      const Cell& c = cells[pos_ + i];
      out.append(c.key, c.value);
    }
    pos_ += n;
    if (cache_ && n > 0) touch_through(std::min(pos_, limit_ - 1));
    return n;
  }

  std::size_t next_block_until(CellBlock& out, std::size_t max,
                               const Key& bound, bool allow_equal) override {
    // Gallop + binary search for the end of the qualifying run (keys
    // ascend, so the bound test is a true-prefix predicate), then copy.
    const std::size_t cap = std::min(max, limit_ - pos_);
    const Cell* base = file_->cells_->data() + pos_;
    auto within = [&](const Cell& c) {
      const auto cmp = c.key <=> bound;
      return cmp < 0 || (cmp == 0 && allow_equal);
    };
    if (cap == 0 || !within(base[0])) return 0;
    std::size_t lo = 1, hi = 1;
    while (hi < cap && within(base[hi])) {
      lo = hi + 1;
      hi *= 2;
    }
    if (hi > cap) hi = cap;
    const std::size_t n = static_cast<std::size_t>(
        std::partition_point(base + lo, base + hi, within) - base);
    for (std::size_t i = 0; i < n; ++i) out.append(base[i].key, base[i].value);
    pos_ += n;
    if (cache_ && n > 0) touch_through(std::min(pos_, limit_ - 1));
    return n;
  }

 private:
  /// Pulls every block covering positions up to `last` (inclusive)
  /// through the cache. Iteration is forward-only, so `block_end_`
  /// (end position of the newest touched block) makes each block cost
  /// one cache touch per scan pass.
  void touch_through(std::size_t last) {
    const std::size_t stride = file_->block_stride();
    while (block_end_ <= last) {
      const std::size_t block = block_end_ / stride;
      cache_->touch(file_->file_id(), block, file_->cells_,
                    file_->block_charge(block));
      block_end_ += stride;
    }
  }

  std::shared_ptr<const RFile> file_;
  BlockCache* cache_ = nullptr;
  std::size_t pos_ = 0;
  std::size_t limit_ = 0;
  std::size_t block_end_ = 0;  ///< first position past the touched blocks
};

IterPtr RFile::iterator() const {
  return std::make_unique<RFileIterator>(shared_from_this());
}

IterPtr RFile::iterator(BlockCache* cache) const {
  return std::make_unique<RFileIterator>(shared_from_this(), cache);
}

// ---- sampling -----------------------------------------------------------

std::vector<std::string> RFile::sample_rows(std::size_t n) const {
  std::vector<std::string> rows;
  const auto& cells = *cells_;
  if (cells.empty() || n == 0) return rows;
  rows.reserve(n);
  // Round the stride UP: a floor stride of size/n oversamples the head
  // and can exhaust the budget before the tail rows are ever visited,
  // skewing parallel-scan partitions toward low keys.
  const std::size_t stride = (cells.size() + n - 1) / n;
  for (std::size_t i = 0; i < cells.size() && rows.size() < n; i += stride) {
    if (rows.empty() || rows.back() != cells[i].key.row) {
      rows.push_back(cells[i].key.row);
    }
  }
  // Always consider the last distinct row so the sample spans the file.
  const std::string& last_row = cells.back().key.row;
  if (!rows.empty() && rows.back() != last_row) {
    if (rows.size() < n) {
      rows.push_back(last_row);
    } else {
      rows.back() = last_row;
    }
  }
  return rows;
}

// ---- disk format --------------------------------------------------------
// magic(4) | payload_len(8) | payload | crc32(payload)(4)

bool RFile::write_to(const std::string& path) const {
  util::fault::point(util::fault::sites::kRFileWrite);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  std::string payload;
  payload.reserve(bytes_ + cells_->size() * 8);
  const auto count = static_cast<std::uint64_t>(cells_->size());
  append_raw(payload, &count, sizeof(count));
  for (const auto& c : *cells_) {
    append_string(payload, c.key.row);
    append_string(payload, c.key.family);
    append_string(payload, c.key.qualifier);
    append_string(payload, c.key.visibility);
    append_raw(payload, &c.key.ts, sizeof(c.key.ts));
    const char del = c.key.deleted ? 1 : 0;
    append_raw(payload, &del, 1);
    append_string(payload, c.value);
  }
  const auto payload_len = static_cast<std::uint64_t>(payload.size());
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&payload_len), sizeof(payload_len));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return static_cast<bool>(out);
}

std::shared_ptr<RFile> RFile::read_from(const std::string& path,
                                        const RFileOptions& options) {
  util::fault::point(util::fault::sites::kRFileRead);
  std::ifstream in(path, std::ios::binary);
  if (!in) return nullptr;
  std::uint32_t magic = 0;
  if (!in.read(reinterpret_cast<char*>(&magic), sizeof(magic)) ||
      magic != kMagic) {
    return nullptr;
  }
  std::uint64_t payload_len = 0;
  if (!in.read(reinterpret_cast<char*>(&payload_len), sizeof(payload_len))) {
    return nullptr;
  }
  std::string payload(payload_len, '\0');
  if (!in.read(payload.data(), static_cast<std::streamsize>(payload_len))) {
    return nullptr;  // truncated
  }
  std::uint32_t stored_crc = 0;
  if (!in.read(reinterpret_cast<char*>(&stored_crc), sizeof(stored_crc))) {
    return nullptr;
  }
  if (crc32(payload.data(), payload.size()) != stored_crc) {
    return nullptr;  // corrupt (bit flips, partial writes)
  }
  PayloadReader reader{payload.data(), payload.size()};
  std::uint64_t count = 0;
  if (!reader.read_raw(&count, sizeof(count))) return nullptr;
  std::vector<Cell> cells;
  cells.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Cell c;
    if (!reader.read_string(c.key.row) || !reader.read_string(c.key.family) ||
        !reader.read_string(c.key.qualifier) ||
        !reader.read_string(c.key.visibility)) {
      return nullptr;
    }
    if (!reader.read_raw(&c.key.ts, sizeof(c.key.ts))) return nullptr;
    char del = 0;
    if (!reader.read_raw(&del, 1)) return nullptr;
    c.key.deleted = del != 0;
    if (!reader.read_string(c.value)) return nullptr;
    if (!cells.empty() && c.key < cells.back().key) return nullptr;  // corrupt
    cells.push_back(std::move(c));
  }
  if (reader.remaining != 0) return nullptr;  // trailing garbage
  return from_sorted(std::move(cells), options);
}

}  // namespace graphulo::nosql
