#pragma once
// Umbrella header for the NoSQL substrate: the in-process Accumulo-model
// store (sorted cells, LSM tablets, server-side iterator stacks, batch
// clients) that the Graphulo core executes GraphBLAS kernels against.

#include "nosql/batch_writer.hpp"
#include "nosql/block_cache.hpp"
#include "nosql/checkpoint.hpp"
#include "nosql/codec.hpp"
#include "nosql/combiner.hpp"
#include "nosql/compaction_scheduler.hpp"
#include "nosql/filter_iterators.hpp"
#include "nosql/instance.hpp"
#include "nosql/iterator.hpp"
#include "nosql/key.hpp"
#include "nosql/manifest.hpp"
#include "nosql/memtable.hpp"
#include "nosql/merge_iterator.hpp"
#include "nosql/mutation.hpp"
#include "nosql/rfile.hpp"
#include "nosql/scanner.hpp"
#include "nosql/table_config.hpp"
#include "nosql/tablet.hpp"
#include "nosql/tablet_server.hpp"
#include "nosql/version_set.hpp"
#include "nosql/visibility.hpp"
#include "nosql/wal.hpp"
#include "nosql/wal_options.hpp"
