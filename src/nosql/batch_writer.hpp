#pragma once
// Buffered write client, modeled on Accumulo's BatchWriter: mutations
// accumulate in a client-side buffer and are pushed to the instance when
// the buffer exceeds a byte threshold, on flush(), on close(), or at
// destruction.
//
// Failure contract: flush() retries each mutation on TransientError
// with bounded exponential backoff; when retries are exhausted the
// exception propagates and the UNAPPLIED suffix of the buffer is
// retained (already-applied mutations are dropped from it), so a later
// flush()/close() resumes where the failure struck and nothing is
// applied twice. close() is the explicit way to observe final-flush
// errors; the destructor still flushes as a convenience but can only
// WARN about failures (recorded in last_error() until then). abandon()
// discards the buffer for callers that will re-generate the mutations
// themselves (e.g. a retried TableMult partition).
//
// Concurrency contract (audited for the parallel TableMult pipeline):
// one BatchWriter instance is NOT thread-safe — it buffers in plain
// members and must be confined to a single thread. Any number of
// BatchWriter instances MAY write to the same table concurrently:
// flush() funnels into Instance::apply, which routes under a shared
// catalog lock, stamps timestamps from an atomic clock, and lands in
// per-tablet mutexes. Writers therefore interleave at mutation
// granularity with no lost updates; relative order across writers is
// unspecified, so concurrent writers to one table should only be used
// when the table's semantics are order-independent (e.g. a commutative
// combiner folding partial products).

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nosql/admission.hpp"
#include "nosql/instance.hpp"
#include "nosql/mutation.hpp"
#include "util/fault.hpp"

namespace graphulo::nosql {

class BatchWriter : public MutationSink {
 public:
  /// Typed failure classification (see MutationSink::ErrorKind — the
  /// alias keeps existing BatchWriter::ErrorKind call sites working).
  using ErrorKind = MutationSink::ErrorKind;

  /// Buffers up to `max_buffer_bytes` of mutations before auto-flushing.
  /// `retry` bounds the per-mutation retry of transient apply failures.
  BatchWriter(Instance& instance, std::string table,
              std::size_t max_buffer_bytes = 4 << 20,
              util::RetryPolicy retry = {});

  /// Flushes remaining mutations unless close()/abandon() already ran.
  /// Destruction never throws; a failing final flush is logged as a
  /// warning and recorded — call close() explicitly to observe it.
  ~BatchWriter() override;

  BatchWriter(const BatchWriter&) = delete;
  BatchWriter& operator=(const BatchWriter&) = delete;

  /// Queues one mutation. May throw if the buffer threshold triggers an
  /// auto-flush that fails after retries.
  void add_mutation(Mutation mutation) override;

  /// Pushes every buffered mutation to the instance, retrying transient
  /// failures per mutation. On exhaustion the failing exception
  /// propagates; mutations already applied are removed from the buffer
  /// so a subsequent flush() resumes without duplicates.
  void flush() override;

  /// Final flush + marks the writer closed (destructor becomes a
  /// no-op). Throws on failure, with the error also in last_error().
  void close() override;

  /// Discards the buffered (unapplied) mutations and marks the writer
  /// closed. For callers that re-generate their writes on retry.
  void abandon() noexcept override;

  /// The last flush/close error message, if any.
  const std::optional<std::string>& last_error() const noexcept override {
    return last_error_;
  }

  /// Typed classification of last_error() (kNone when no failure has
  /// been recorded). A successful flush does NOT reset it — like
  /// last_error(), it reports the most recent failure. Classified by
  /// classify_write_error, so a remote OverloadedError surfaced through
  /// the RPC client reports kOverloaded exactly like a local shed.
  ErrorKind last_error_kind() const noexcept override {
    return last_error_kind_;
  }

  /// Admission session used to meter this writer's mutations (see
  /// AdmissionController). Defaults to a private session created at
  /// first flush; share one across writers that share a rate budget.
  void set_session(std::shared_ptr<AdmissionSession> session) {
    session_ = std::move(session);
  }

  /// Mutations applied to the instance so far (exact, maintained
  /// per-mutation — meaningful mid-failure).
  std::size_t mutations_written() const noexcept override { return written_; }

  /// Mutations still buffered (unapplied).
  std::size_t mutations_pending() const noexcept { return buffer_.size(); }

 private:
  Instance& instance_;
  std::string table_;
  std::size_t max_buffer_bytes_;
  util::RetryPolicy retry_;
  std::size_t buffered_bytes_ = 0;
  std::vector<Mutation> buffer_;
  std::size_t written_ = 0;
  bool closed_ = false;
  std::optional<std::string> last_error_;
  ErrorKind last_error_kind_ = ErrorKind::kNone;
  std::shared_ptr<AdmissionSession> session_;
  /// Resolved once at first flush (stable for the writer's life; a
  /// dropped-and-recreated table is a new writer's problem).
  AdmissionController* admission_ = nullptr;
  bool admission_resolved_ = false;
};

}  // namespace graphulo::nosql
