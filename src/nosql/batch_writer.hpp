#pragma once
// Buffered write client, modeled on Accumulo's BatchWriter: mutations
// accumulate in a client-side buffer and are pushed to the instance when
// the buffer exceeds a byte threshold, on flush(), or at destruction.

#include <string>
#include <vector>

#include "nosql/instance.hpp"
#include "nosql/mutation.hpp"

namespace graphulo::nosql {

class BatchWriter {
 public:
  /// Buffers up to `max_buffer_bytes` of mutations before auto-flushing.
  BatchWriter(Instance& instance, std::string table,
              std::size_t max_buffer_bytes = 4 << 20);

  /// Flushes remaining mutations. Destruction never throws; errors from
  /// the final flush are swallowed (call flush() explicitly to observe
  /// them).
  ~BatchWriter();

  BatchWriter(const BatchWriter&) = delete;
  BatchWriter& operator=(const BatchWriter&) = delete;

  /// Queues one mutation.
  void add_mutation(Mutation mutation);

  /// Pushes every buffered mutation to the instance.
  void flush();

  /// Mutations pushed so far (after flushes).
  std::size_t mutations_written() const noexcept { return written_; }

 private:
  Instance& instance_;
  std::string table_;
  std::size_t max_buffer_bytes_;
  std::size_t buffered_bytes_ = 0;
  std::vector<Mutation> buffer_;
  std::size_t written_ = 0;
};

}  // namespace graphulo::nosql
