#pragma once
// Buffered write client, modeled on Accumulo's BatchWriter: mutations
// accumulate in a client-side buffer and are pushed to the instance when
// the buffer exceeds a byte threshold, on flush(), or at destruction.
//
// Concurrency contract (audited for the parallel TableMult pipeline):
// one BatchWriter instance is NOT thread-safe — it buffers in plain
// members and must be confined to a single thread. Any number of
// BatchWriter instances MAY write to the same table concurrently:
// flush() funnels into Instance::apply, which routes under a shared
// catalog lock, stamps timestamps from an atomic clock, and lands in
// per-tablet mutexes. Writers therefore interleave at mutation
// granularity with no lost updates; relative order across writers is
// unspecified, so concurrent writers to one table should only be used
// when the table's semantics are order-independent (e.g. a commutative
// combiner folding partial products).

#include <string>
#include <vector>

#include "nosql/instance.hpp"
#include "nosql/mutation.hpp"

namespace graphulo::nosql {

class BatchWriter {
 public:
  /// Buffers up to `max_buffer_bytes` of mutations before auto-flushing.
  BatchWriter(Instance& instance, std::string table,
              std::size_t max_buffer_bytes = 4 << 20);

  /// Flushes remaining mutations. Destruction never throws; errors from
  /// the final flush are swallowed (call flush() explicitly to observe
  /// them).
  ~BatchWriter();

  BatchWriter(const BatchWriter&) = delete;
  BatchWriter& operator=(const BatchWriter&) = delete;

  /// Queues one mutation.
  void add_mutation(Mutation mutation);

  /// Pushes every buffered mutation to the instance.
  void flush();

  /// Mutations pushed so far (after flushes).
  std::size_t mutations_written() const noexcept { return written_; }

 private:
  Instance& instance_;
  std::string table_;
  std::size_t max_buffer_bytes_;
  std::size_t buffered_bytes_ = 0;
  std::vector<Mutation> buffer_;
  std::size_t written_ = 0;
};

}  // namespace graphulo::nosql
