#include "nosql/instance.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/table_printer.hpp"

namespace graphulo::nosql {

Instance::Instance(int num_tablet_servers) {
  if (num_tablet_servers < 1) {
    throw std::invalid_argument("Instance: need at least one tablet server");
  }
  for (int i = 0; i < num_tablet_servers; ++i) {
    servers_.push_back(std::make_unique<TabletServer>(i));
  }
}

void Instance::create_table(const std::string& name, TableConfig config) {
  std::unique_lock lock(catalog_mutex_);
  if (tables_.count(name)) {
    throw std::invalid_argument("create_table: table exists: " + name);
  }
  auto table = std::make_unique<Table>(name, std::move(config));
  auto tablet = std::make_shared<Tablet>(TabletExtent{"", ""},
                                         &table->config(), table->cache(),
                                         scheduler_.get());
  const int sid = next_server_;
  next_server_ = (next_server_ + 1) % static_cast<int>(servers_.size());
  servers_[static_cast<std::size_t>(sid)]->host(tablet);
  table->tablets_.push_back(std::move(tablet));
  table->tablet_server_of_.push_back(sid);
  tables_.emplace(name, std::move(table));
  // Journal writes are retryable in isolation: the WAL's injection site
  // fires before any byte or sequence number is consumed, so a retried
  // append lands exactly one record.
  if (wal_) {
    util::with_retries("Instance::create_table: journal", retry_policy_,
                       [&] { wal_->log_create_table(name); });
  }
}

void Instance::delete_table(const std::string& name) {
  std::unique_lock lock(catalog_mutex_);
  if (!tables_.erase(name)) {
    throw std::invalid_argument("delete_table: no such table: " + name);
  }
  if (wal_) {
    util::with_retries("Instance::delete_table: journal", retry_policy_,
                       [&] { wal_->log_delete_table(name); });
  }
}

bool Instance::table_exists(const std::string& name) const {
  std::shared_lock lock(catalog_mutex_);
  return tables_.count(name) > 0;
}

void Instance::clone_table(const std::string& source,
                           const std::string& target) {
  std::unique_lock lock(catalog_mutex_);
  const Table& src = get_table(source);
  if (tables_.count(target)) {
    throw std::invalid_argument("clone_table: target exists: " + target);
  }
  auto table = std::make_unique<Table>(target, src.config());
  for (std::size_t i = 0; i < src.tablets().size(); ++i) {
    const auto& src_tablet = src.tablets()[i];
    auto tablet = std::make_shared<Tablet>(src_tablet->extent(),
                                           &table->config(), table->cache(),
                                           scheduler_.get());
    auto stack = src_tablet->raw_stack();
    for (auto& cell : drain(*stack, Range::all())) {
      tablet->insert_cell(std::move(cell));
    }
    const int sid = next_server_;
    next_server_ = (next_server_ + 1) % static_cast<int>(servers_.size());
    servers_[static_cast<std::size_t>(sid)]->host(tablet);
    table->tablets_.push_back(std::move(tablet));
    table->tablet_server_of_.push_back(sid);
  }
  tables_.emplace(target, std::move(table));
  // Journaled so clones survive recovery. Replay order makes this
  // correct: at the point the kCloneTable record replays, the source
  // holds exactly its state at original clone time (later records have
  // not been applied yet).
  if (wal_) {
    util::with_retries("Instance::clone_table: journal", retry_policy_,
                       [&] { wal_->log_clone_table(source, target); });
  }
}

void Instance::attach_compaction_scheduler(
    std::shared_ptr<CompactionScheduler> s) {
  std::unique_lock lock(catalog_mutex_);
  scheduler_ = std::move(s);
  for (const auto& [name, table] : tables_) {
    for (const auto& tablet : table->tablets_) {
      tablet->set_compaction_scheduler(scheduler_.get());
    }
  }
}

std::vector<std::string> Instance::table_names() const {
  std::shared_lock lock(catalog_mutex_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [n, t] : tables_) names.push_back(n);
  return names;
}

Table& Instance::get_table(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    throw std::invalid_argument("no such table: " + name);
  }
  return *it->second;
}

const Table& Instance::get_table(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    throw std::invalid_argument("no such table: " + name);
  }
  return *it->second;
}

TableConfig& Instance::table_config(const std::string& name) {
  std::shared_lock lock(catalog_mutex_);
  return get_table(name).config();
}

void Instance::add_splits(const std::string& name,
                          std::vector<std::string> split_rows) {
  std::unique_lock lock(catalog_mutex_);
  Table& table = get_table(name);

  // Union of existing and new split points.
  std::set<std::string> splits(split_rows.begin(), split_rows.end());
  for (const auto& t : table.tablets_) {
    if (!t->extent().start_row.empty()) splits.insert(t->extent().start_row);
  }

  // Collect every cell currently stored (raw, preserving versions and
  // delete markers), then rebuild the tablet set.
  std::vector<Cell> all_cells;
  for (const auto& t : table.tablets_) {
    auto stack = t->raw_stack();
    auto cells = drain(*stack, Range::all());
    all_cells.insert(all_cells.end(), cells.begin(), cells.end());
  }
  std::sort(all_cells.begin(), all_cells.end(),
            [](const Cell& a, const Cell& b) { return a.key < b.key; });

  std::vector<std::shared_ptr<Tablet>> tablets;
  std::vector<int> server_of;
  std::string prev;
  auto add_tablet = [&](const std::string& lo, const std::string& hi) {
    auto tablet = std::make_shared<Tablet>(TabletExtent{lo, hi},
                                           &table.config(), table.cache(),
                                           scheduler_.get());
    const int sid = next_server_;
    next_server_ = (next_server_ + 1) % static_cast<int>(servers_.size());
    servers_[static_cast<std::size_t>(sid)]->host(tablet);
    tablets.push_back(std::move(tablet));
    server_of.push_back(sid);
  };
  for (const auto& s : splits) {
    add_tablet(prev, s);
    prev = s;
  }
  add_tablet(prev, "");

  // Redistribute the data.
  std::size_t t_idx = 0;
  for (auto& cell : all_cells) {
    while (!tablets[t_idx]->extent().contains_row(cell.key.row)) ++t_idx;
    tablets[t_idx]->insert_cell(std::move(cell));
  }
  table.tablets_ = std::move(tablets);
  table.tablet_server_of_ = std::move(server_of);
  if (wal_) {
    util::with_retries("Instance::add_splits: journal", retry_policy_,
                       [&] { wal_->log_add_splits(name, split_rows); });
  }
}

std::vector<std::string> Instance::list_splits(const std::string& name) const {
  std::shared_lock lock(catalog_mutex_);
  const Table& table = get_table(name);
  std::vector<std::string> splits;
  for (const auto& t : table.tablets_) {
    if (!t->extent().start_row.empty()) splits.push_back(t->extent().start_row);
  }
  return splits;
}

std::vector<std::string> Instance::partition_rows(
    const std::string& name, std::size_t target_partitions) const {
  std::vector<std::shared_ptr<Tablet>> tablets;
  std::set<std::string> candidates;
  {
    std::shared_lock lock(catalog_mutex_);
    const Table& table = get_table(name);
    tablets = table.tablets_;
  }
  if (target_partitions < 2) return {};
  for (const auto& t : tablets) {
    if (!t->extent().start_row.empty()) candidates.insert(t->extent().start_row);
  }
  if (candidates.size() < target_partitions - 1) {
    // Not enough tablet boundaries: refine with data samples. Sampling
    // happens outside the catalog lock — tablets are individually
    // thread-safe and shared_ptr-held, so a concurrent split/drop cannot
    // invalidate them.
    const std::size_t per_tablet =
        std::max<std::size_t>(4, 4 * target_partitions / std::max<std::size_t>(1, tablets.size()));
    for (const auto& t : tablets) {
      for (auto& row : t->sample_split_rows(per_tablet)) {
        if (!row.empty()) candidates.insert(std::move(row));
      }
    }
  }
  candidates.erase("");  // "" means "unbounded" to range builders
  std::vector<std::string> sorted(candidates.begin(), candidates.end());
  if (sorted.size() <= target_partitions - 1) return sorted;
  // Evenly spaced subset of the candidates. The indices are strictly
  // increasing over a duplicate-free sorted set, but dedupe anyway —
  // adjacent partition bounds must never coincide (a duplicate bound
  // would make the partition range between them empty).
  std::vector<std::string> bounds;
  bounds.reserve(target_partitions - 1);
  for (std::size_t i = 1; i < target_partitions; ++i) {
    bounds.push_back(sorted[i * sorted.size() / target_partitions]);
  }
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  return bounds;
}

std::shared_ptr<Tablet> Instance::route_locked(Table& table,
                                               const std::string& row,
                                               int* server_id) const {
  // Tablets are sorted by extent; binary search on start_row.
  const auto& tablets = table.tablets_;
  std::size_t lo = 0, hi = tablets.size();
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (!tablets[mid]->extent().start_row.empty() &&
        row < tablets[mid]->extent().start_row) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  if (server_id) *server_id = table.tablet_server_of_[lo];
  return tablets[lo];
}

void Instance::apply(const std::string& name, const Mutation& mutation) {
  // The timestamp is assigned ONCE: a retried attempt reuses it, so the
  // logical clock sequence (and therefore recovered state) is identical
  // whether or not transient faults fired along the way.
  const Timestamp ts = next_timestamp();
  util::with_retries("Instance::apply", retry_policy_, [&] {
    util::fault::point(util::fault::sites::kInstanceApply);
    std::shared_lock lock(catalog_mutex_);
    Table& table = get_table(name);
    int sid = 0;
    auto tablet = route_locked(table, mutation.row(), &sid);
    // Log-then-apply: the injection sites inside the WAL fire before
    // any byte lands, so a retry after a WAL failure appends exactly
    // one record. The tablet apply below contains its own transient
    // failures (deferred flush/compaction), so nothing after the log
    // write throws transiently — no double-logging window.
    if (wal_) wal_->log_mutation(name, mutation, ts);
    servers_[static_cast<std::size_t>(sid)]->apply(*tablet, mutation, ts);
  });
}

void Instance::apply_replayed(const std::string& name,
                              const Mutation& mutation,
                              Timestamp assigned_ts) {
  std::shared_lock lock(catalog_mutex_);
  Table& table = get_table(name);
  int sid = 0;
  auto tablet = route_locked(table, mutation.row(), &sid);
  // Keep the clock ahead of everything replayed so post-recovery writes
  // sort newer.
  advance_clock(assigned_ts);
  servers_[static_cast<std::size_t>(sid)]->apply(*tablet, mutation,
                                                 assigned_ts);
}

void Instance::restore_cells(const std::string& name,
                             std::vector<Cell> cells) {
  std::shared_lock lock(catalog_mutex_);
  Table& table = get_table(name);
  for (auto& cell : cells) {
    auto tablet = route_locked(table, cell.key.row, nullptr);
    tablet->insert_cell(std::move(cell));
  }
}

void Instance::restore_files(const std::string& name,
                             const std::string& extent_start,
                             std::vector<FileMeta> files) {
  std::shared_lock lock(catalog_mutex_);
  Table& table = get_table(name);
  for (const auto& tablet : table.tablets_) {
    if (tablet->extent().start_row == extent_start) {
      tablet->restore_files(std::move(files));
      return;
    }
  }
  throw std::invalid_argument("restore_files: no tablet of " + name +
                              " starts at \"" + extent_start + "\"");
}

void Instance::flush(const std::string& name) {
  std::shared_lock lock(catalog_mutex_);
  for (const auto& t : get_table(name).tablets_) {
    util::with_retries("Instance::flush", retry_policy_,
                       [&] { t->flush(); });
  }
}

void Instance::compact(const std::string& name) {
  std::shared_lock lock(catalog_mutex_);
  for (const auto& t : get_table(name).tablets_) {
    util::with_retries("Instance::compact", retry_policy_,
                       [&] { t->major_compact(); });
  }
}

std::vector<std::pair<std::shared_ptr<Tablet>, int>>
Instance::tablets_for_range(const std::string& name, const Range& range) const {
  std::shared_lock lock(catalog_mutex_);
  const Table& table = get_table(name);
  std::vector<std::pair<std::shared_ptr<Tablet>, int>> out;
  for (std::size_t i = 0; i < table.tablets_.size(); ++i) {
    const auto& extent = table.tablets_[i]->extent();
    if (range.may_intersect_rows(extent.start_row, extent.end_row)) {
      out.emplace_back(table.tablets_[i], table.tablet_server_of_[i]);
    }
  }
  return out;
}

std::shared_ptr<const Snapshot> Instance::open_snapshot(
    const std::string& name) const {
  // Grab the tablet list under the catalog lock, then pin each cut
  // outside it: open_snapshot() takes per-tablet locks and there is no
  // reason to hold the catalog closed meanwhile. The per-tablet cuts
  // are not mutually atomic — like Accumulo, cross-tablet consistency
  // is per-mutation (a mutation targets one row = one tablet), so each
  // row's history is still a consistent prefix.
  std::vector<std::shared_ptr<Tablet>> tablets;
  {
    std::shared_lock lock(catalog_mutex_);
    tablets = get_table(name).tablets_;
  }
  std::vector<std::shared_ptr<TabletSnapshot>> cuts;
  cuts.reserve(tablets.size());
  for (const auto& t : tablets) cuts.push_back(t->open_snapshot());
  return std::make_shared<const Snapshot>(name, std::move(cuts));
}

AdmissionController* Instance::admission(const std::string& name) const {
  std::shared_lock lock(catalog_mutex_);
  const auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second->admission();
}

std::size_t recover_from_wal(Instance& db, const std::string& path,
                             const TableConfigProvider& config_for,
                             std::uint64_t min_seq) {
  return replay_wal(
      path,
      [&db, &config_for](const WalRecord& record) {
        switch (record.kind) {
          case WalRecord::Kind::kCreateTable:
            if (!db.table_exists(record.table)) {
              db.create_table(record.table,
                              config_for ? config_for(record.table)
                                         : TableConfig{});
            }
            break;
          case WalRecord::Kind::kDeleteTable:
            if (db.table_exists(record.table)) db.delete_table(record.table);
            break;
          case WalRecord::Kind::kCloneTable:
            if (db.table_exists(record.table) &&
                !db.table_exists(record.aux)) {
              db.clone_table(record.table, record.aux);
            }
            break;
          case WalRecord::Kind::kAddSplits:
            if (db.table_exists(record.table)) {
              db.add_splits(record.table, record.splits);
            }
            break;
          case WalRecord::Kind::kMutation:
            if (db.table_exists(record.table)) {
              db.apply_replayed(record.table, record.mutation,
                                record.assigned_ts);
            }
            break;
        }
      },
      min_seq);
}

std::size_t Instance::entry_estimate(const std::string& name) const {
  std::shared_lock lock(catalog_mutex_);
  std::size_t total = 0;
  for (const auto& t : get_table(name).tablets_) total += t->entry_estimate();
  return total;
}

void Instance::update_storage_gauges() const {
  auto& reg = obs::MetricsRegistry::global();
  // Aggregate the leveled shape across every tablet of every table.
  std::vector<std::size_t> level_files;
  std::vector<std::uint64_t> level_bytes;
  std::uint64_t total_bytes = 0, deepest_bytes = 0;
  {
    std::shared_lock lock(catalog_mutex_);
    for (const auto& [name, table] : tables_) {
      for (const auto& tablet : table->tablets_) {
        const auto s = tablet->stats();
        if (s.level_files.size() > level_files.size()) {
          level_files.resize(s.level_files.size());
          level_bytes.resize(s.level_files.size());
        }
        for (std::size_t l = 0; l < s.level_files.size(); ++l) {
          level_files[l] += s.level_files[l];
          level_bytes[l] += s.level_bytes[l];
        }
        for (const auto b : s.level_bytes) total_bytes += b;
        if (!s.level_bytes.empty()) deepest_bytes += s.level_bytes.back();
      }
    }
  }
  for (std::size_t l = 0; l < level_files.size(); ++l) {
    const obs::Labels labels = {{"level", std::to_string(l)}};
    reg.gauge("tablet.level.files", "Files per LSM level across all tablets",
              labels)
        .set(static_cast<std::int64_t>(level_files[l]));
    reg.gauge("tablet.level.bytes", "Bytes per LSM level across all tablets",
              labels)
        .set(static_cast<std::int64_t>(level_bytes[l]));
  }
  // Share of file bytes already settled in the deepest levels: 100 =
  // fully compacted (no space amplification from stale overlap).
  reg.gauge("tablet.bytes.live_ratio_pct",
            "Deepest-level bytes as a percentage of total file bytes "
            "(space-amplification inverse)")
      .set(total_bytes == 0
               ? 100
               : static_cast<std::int64_t>(100 * deepest_bytes /
                                           total_bytes));
}

std::string Instance::metrics_report() const {
  update_storage_gauges();
  std::string out;
  {
    // The monitor's server summary: this instance's traffic only.
    util::TablePrinter servers(
        {"server", "entries_written", "mutations", "scans"});
    std::shared_lock lock(catalog_mutex_);
    for (const auto& server : servers_) {
      const auto s = server->stats();
      servers.add_row({std::to_string(server->id()),
                       std::to_string(s.entries_written),
                       std::to_string(s.mutations_applied),
                       std::to_string(s.scans_started)});
    }
    out += servers.to_string("tablet servers");
  }
  out += "\n";
  out += obs::metrics_table(obs::MetricsRegistry::global().snapshot(),
                            "runtime metrics");
  return out;
}

}  // namespace graphulo::nosql
