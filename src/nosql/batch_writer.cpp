#include "nosql/batch_writer.hpp"

#include "util/log.hpp"

namespace graphulo::nosql {

BatchWriter::BatchWriter(Instance& instance, std::string table,
                         std::size_t max_buffer_bytes,
                         util::RetryPolicy retry)
    : instance_(instance),
      table_(std::move(table)),
      max_buffer_bytes_(max_buffer_bytes),
      retry_(retry) {}

BatchWriter::~BatchWriter() {
  if (closed_) return;
  try {
    flush();
  } catch (const std::exception& e) {
    // Destructors must not throw. Unlike the old behaviour (silent
    // swallow), the dropped data is at least reported; callers that
    // care must close() and handle the error.
    GRAPHULO_WARN << "BatchWriter(" << table_ << "): final flush failed in "
                  << "destructor, " << buffer_.size()
                  << " mutations dropped: " << e.what();
  } catch (...) {
    GRAPHULO_WARN << "BatchWriter(" << table_ << "): final flush failed in "
                  << "destructor, " << buffer_.size()
                  << " mutations dropped (unknown error)";
  }
}

void BatchWriter::add_mutation(Mutation mutation) {
  buffered_bytes_ += mutation.estimated_bytes();
  buffer_.push_back(std::move(mutation));
  if (buffered_bytes_ >= max_buffer_bytes_) flush();
}

void BatchWriter::flush() {
  std::size_t applied = 0;
  try {
    for (; applied < buffer_.size(); ++applied) {
      util::with_retries("BatchWriter::flush", retry_, [&] {
        util::fault::point(util::fault::sites::kBatchWriterFlush);
        instance_.apply(table_, buffer_[applied]);
      });
      ++written_;
    }
  } catch (const std::exception& e) {
    last_error_ = e.what();
    // Keep only the unapplied suffix: a retried flush resumes exactly
    // where this one failed, with no duplicate applies.
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(applied));
    buffered_bytes_ = 0;
    for (const auto& m : buffer_) buffered_bytes_ += m.estimated_bytes();
    throw;
  }
  buffer_.clear();
  buffered_bytes_ = 0;
}

void BatchWriter::close() {
  if (closed_) return;
  try {
    flush();
  } catch (...) {
    closed_ = true;  // the caller saw the error; don't re-flush on destroy
    throw;
  }
  closed_ = true;
}

void BatchWriter::abandon() noexcept {
  buffer_.clear();
  buffered_bytes_ = 0;
  closed_ = true;
}

}  // namespace graphulo::nosql
