#include "nosql/batch_writer.hpp"

namespace graphulo::nosql {

BatchWriter::BatchWriter(Instance& instance, std::string table,
                         std::size_t max_buffer_bytes)
    : instance_(instance),
      table_(std::move(table)),
      max_buffer_bytes_(max_buffer_bytes) {}

BatchWriter::~BatchWriter() {
  try {
    flush();
  } catch (...) {
    // Destructors must not throw; data loss here means the caller
    // dropped the writer without flushing after a failure.
  }
}

void BatchWriter::add_mutation(Mutation mutation) {
  buffered_bytes_ += mutation.estimated_bytes();
  buffer_.push_back(std::move(mutation));
  if (buffered_bytes_ >= max_buffer_bytes_) flush();
}

void BatchWriter::flush() {
  for (const auto& m : buffer_) {
    instance_.apply(table_, m);
  }
  written_ += buffer_.size();
  buffer_.clear();
  buffered_bytes_ = 0;
}

}  // namespace graphulo::nosql
