#include "nosql/batch_writer.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace graphulo::nosql {

namespace {

obs::Counter& bw_flushes() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "batch_writer.flushes.total", "BatchWriter flushes of a non-empty buffer");
  return c;
}
obs::Counter& bw_mutations() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "batch_writer.mutations.total", "Mutations applied through BatchWriter");
  return c;
}
obs::Counter& bw_retries() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter(
      "batch_writer.retries.total",
      "Re-attempted applies after a transient flush failure");
  return c;
}

}  // namespace

BatchWriter::BatchWriter(Instance& instance, std::string table,
                         std::size_t max_buffer_bytes,
                         util::RetryPolicy retry)
    : instance_(instance),
      table_(std::move(table)),
      max_buffer_bytes_(max_buffer_bytes),
      retry_(retry) {}

BatchWriter::~BatchWriter() {
  if (closed_) return;
  try {
    flush();
  } catch (const std::exception& e) {
    // Destructors must not throw. Unlike the old behaviour (silent
    // swallow), the dropped data is at least reported; callers that
    // care must close() and handle the error.
    GRAPHULO_WARN << "BatchWriter(" << table_ << "): final flush failed in "
                  << "destructor, " << buffer_.size()
                  << " mutations dropped: " << e.what();
  } catch (...) {
    GRAPHULO_WARN << "BatchWriter(" << table_ << "): final flush failed in "
                  << "destructor, " << buffer_.size()
                  << " mutations dropped (unknown error)";
  }
}

void BatchWriter::add_mutation(Mutation mutation) {
  buffered_bytes_ += mutation.estimated_bytes();
  buffer_.push_back(std::move(mutation));
  if (buffered_bytes_ >= max_buffer_bytes_) flush();
}

void BatchWriter::flush() {
  if (buffer_.empty()) return;
  TRACE_SPAN("batch_writer.flush");
  bw_flushes().inc();
  if (!admission_resolved_) {
    admission_ = instance_.admission(table_);
    if (admission_ && !session_) session_ = admission_->make_session();
    admission_resolved_ = true;
  }
  std::size_t applied = 0;
  try {
    for (; applied < buffer_.size(); ++applied) {
      std::size_t attempts = 0;
      util::with_retries("BatchWriter::flush", retry_, [&] {
        if (++attempts > 1) bw_retries().inc();
        util::fault::point(util::fault::sites::kBatchWriterFlush);
        // Inside the retry loop: an OverloadedError (TransientError)
        // from a dry token bucket backs off and re-attempts — the
        // admission layer's back-pressure, surfaced typed to callers
        // once retries run out.
        if (admission_) admission_->admit_write(*session_);
        instance_.apply(table_, buffer_[applied]);
      });
      ++written_;
      bw_mutations().inc();
    }
  } catch (const std::exception& e) {
    last_error_ = e.what();
    last_error_kind_ = classify_write_error(e);
    // Keep only the unapplied suffix: a retried flush resumes exactly
    // where this one failed, with no duplicate applies.
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(applied));
    buffered_bytes_ = 0;
    for (const auto& m : buffer_) buffered_bytes_ += m.estimated_bytes();
    throw;
  }
  buffer_.clear();
  buffered_bytes_ = 0;
}

void BatchWriter::close() {
  if (closed_) return;
  try {
    flush();
  } catch (...) {
    closed_ = true;  // the caller saw the error; don't re-flush on destroy
    throw;
  }
  closed_ = true;
}

void BatchWriter::abandon() noexcept {
  buffer_.clear();
  buffered_bytes_ = 0;
  closed_ = true;
}

}  // namespace graphulo::nosql
